#include "clftj/factorized.h"

#include <set>

#include "util/check.h"

namespace clftj {

std::size_t FactorizedSet::MemoryBytes() const {
  std::size_t total = entries.capacity() * sizeof(FactorizedEntry);
  for (const FactorizedEntry& entry : entries) {
    total += entry.local.capacity() * sizeof(Value);
    total += entry.children.capacity() * sizeof(FactorizedSetPtr);
  }
  return total;
}

namespace {

std::size_t DeepBytesRec(const FactorizedSet& set,
                         std::set<const FactorizedSet*>* seen) {
  if (!seen->insert(&set).second) return 0;
  std::size_t total = sizeof(FactorizedSet) + set.MemoryBytes();
  for (const FactorizedEntry& entry : set.entries) {
    for (const FactorizedSetPtr& child : entry.children) {
      if (child != nullptr) total += DeepBytesRec(*child, seen);
    }
  }
  return total;
}

}  // namespace

std::size_t FactorizedSet::DeepMemoryBytes() const {
  std::set<const FactorizedSet*> seen;
  return DeepBytesRec(*this, &seen);
}

std::uint64_t FactorizedCount(const FactorizedSet& set) {
  std::uint64_t total = 0;
  for (const FactorizedEntry& entry : set.entries) {
    std::uint64_t prod = 1;
    for (const FactorizedSetPtr& child : entry.children) {
      if (child == nullptr) {
        prod = 0;
        break;
      }
      prod *= FactorizedCount(*child);
      if (prod == 0) break;
    }
    total += prod;
  }
  return total;
}

namespace {

// Expands the product of pending[i..] depth-first. Children sets of an
// entry are appended to `pending` while that entry is active; since all
// pending sets are independent (a pure product), expansion order does not
// affect the result.
void ExpandRec(std::vector<const FactorizedSet*>* pending, std::size_t index,
               const CachedPlan& plan, Tuple* assignment,
               const std::function<void()>& emit) {
  if (index == pending->size()) {
    emit();
    return;
  }
  const FactorizedSet& set = *(*pending)[index];
  const int first = plan.first_depth[set.node];
  const int last = plan.last_depth[set.node];
  for (const FactorizedEntry& entry : set.entries) {
    CLFTJ_DCHECK(static_cast<int>(entry.local.size()) == last - first + 1);
    bool has_null_child = false;
    for (const FactorizedSetPtr& child : entry.children) {
      if (child == nullptr) has_null_child = true;
    }
    if (has_null_child) continue;  // empty product contributes nothing
    for (int d = first; d <= last; ++d) {
      (*assignment)[plan.order[d]] = entry.local[d - first];
    }
    const std::size_t old_size = pending->size();
    for (const FactorizedSetPtr& child : entry.children) {
      pending->push_back(child.get());
    }
    ExpandRec(pending, index + 1, plan, assignment, emit);
    pending->resize(old_size);
  }
  for (int d = first; d <= last; ++d) {
    (*assignment)[plan.order[d]] = kNullValue;
  }
}

}  // namespace

void FactorizedExpand(const std::vector<const FactorizedSet*>& sets,
                      const CachedPlan& plan, Tuple* assignment,
                      const std::function<void()>& emit) {
  std::vector<const FactorizedSet*> pending = sets;
  ExpandRec(&pending, 0, plan, assignment, emit);
}

FactorizedQueryResult::FactorizedQueryResult(
    std::shared_ptr<const CachedPlan> plan, FactorizedSetPtr root)
    : plan_(std::move(plan)), root_(std::move(root)) {
  CLFTJ_CHECK(plan_ != nullptr);
  CLFTJ_CHECK(root_ != nullptr);
}

std::uint64_t FactorizedQueryResult::Count() const {
  return FactorizedCount(*root_);
}

void FactorizedQueryResult::Enumerate(
    const std::function<void(const Tuple&)>& cb) const {
  Tuple assignment(plan_->order.size(), kNullValue);
  FactorizedExpand({root_.get()}, *plan_, &assignment,
                   [&assignment, &cb] { cb(assignment); });
}

namespace {

// Sets are shared (cached subtrees are referenced, not copied), so size is
// measured over *distinct* sets — sharing is exactly where the compression
// comes from.
std::uint64_t CountEntries(const FactorizedSet& set,
                           std::set<const FactorizedSet*>* seen) {
  if (!seen->insert(&set).second) return 0;
  std::uint64_t total = set.entries.size();
  for (const FactorizedEntry& entry : set.entries) {
    for (const FactorizedSetPtr& child : entry.children) {
      if (child != nullptr) total += CountEntries(*child, seen);
    }
  }
  return total;
}

}  // namespace

std::uint64_t FactorizedQueryResult::NumEntries() const {
  std::set<const FactorizedSet*> seen;
  return CountEntries(*root_, &seen);
}

}  // namespace clftj
