#include "clftj/cached_trie_join.h"

#include <utility>

#include "clftj/factorized.h"
#include "lftj/trie_join.h"
#include "util/check.h"

namespace clftj {

namespace {

// Key extraction and admission both live on CachedPlan now: keys are packed
// into a fixed-size PackedKey straight from the assignment (allocation-free
// for adhesions up to PackedKey::kInlineDims; wider adhesions stage their
// values in a per-node spill buffer), and the support-threshold probe is a
// precomputed per-value bitmap test (CachedPlan::AdmitsKey) instead of a
// hash lookup per dimension.

// Counting run: RCachedJoin of Figure 2, with f carried as a multiplicative
// factor and intrmd(v) as plain counters.
class CountRun {
 public:
  CountRun(const CachedPlan& plan, const CacheOptions& cache_options,
           TrieJoinContext* ctx, ExecStats* stats, const RunLimits& limits)
      : plan_(plan),
        ctx_(ctx),
        cache_(static_cast<int>(plan.cacheable.size()), cache_options, stats),
        intrmd_(plan.cacheable.size(), 0),
        node_key_(plan.cacheable.size()),
        node_wide_(plan.cacheable.size()),
        assignment_(plan.order.size(), kNullValue),
        deadline_(limits.timeout_seconds) {}

  std::uint64_t Run() {
    RCachedJoin(0, 1);
    return total_;
  }

  bool timed_out() const { return aborted_; }

 private:
  void RCachedJoin(int d, std::uint64_t f) {
    if (d == static_cast<int>(plan_.order.size())) {
      total_ += f;
      return;
    }
    const NodeId v = plan_.owner_of_depth[d];
    const bool entering = d > 0 && plan_.owner_of_depth[d - 1] != v;
    PackedKey& key = node_key_[v];
    bool try_cache = false;
    if (entering) {
      intrmd_[v] = 0;
      if (plan_.cacheable[v]) {
        try_cache = true;
        key = plan_.AdhesionKey(v, assignment_, &node_wide_[v]);
        if (const std::uint64_t* hit = cache_.Lookup(v, key)) {
          intrmd_[v] = *hit;
          if (*hit != 0) {
            // Skip the whole subtree of v; its contribution is the factor.
            RCachedJoin(plan_.subtree_last_depth[v] + 1, f * *hit);
          }
          return;
        }
      }
    }

    LeapfrogJoin* join = ctx_->EnterDepth(d);
    const bool is_last_owned = d == plan_.last_depth[v];
    while (!join->AtEnd()) {
      if (deadline_.Expired()) {
        aborted_ = true;
        break;
      }
      assignment_[plan_.order[d]] = join->Key();
      RCachedJoin(d + 1, f);
      if (aborted_) break;
      if (is_last_owned) {
        std::uint64_t prod = 1;
        for (const NodeId c : plan_.children[v]) prod *= intrmd_[c];
        intrmd_[v] += prod;
      }
      join->Next();
    }
    assignment_[plan_.order[d]] = kNullValue;
    ctx_->LeaveDepth(d);

    if (try_cache && !aborted_ && plan_.AdmitsKey(v, key)) {
      cache_.Insert(v, key, intrmd_[v]);
    }
  }

  const CachedPlan& plan_;
  TrieJoinContext* ctx_;
  CacheManager<std::uint64_t> cache_;
  std::vector<std::uint64_t> intrmd_;
  std::vector<PackedKey> node_key_;
  std::vector<Tuple> node_wide_;  // spill buffers for wide adhesion keys
  Tuple assignment_;
  DeadlineChecker deadline_;
  std::uint64_t total_ = 0;
  bool aborted_ = false;
};

// Evaluation run: intermediate results become factorized sets; a cache hit
// pushes a skip record and the emission point expands the product of all
// active skips (Section 3.4).
class EvalRun {
 public:
  EvalRun(const CachedPlan& plan, const CacheOptions& cache_options,
          TrieJoinContext* ctx, ExecStats* stats, const TupleCallback& cb,
          const RunLimits& limits, bool expand_at_leaf = true)
      : expand_at_leaf_(expand_at_leaf),
        plan_(plan),
        ctx_(ctx),
        stats_(stats),
        cb_(cb),
        cache_(static_cast<int>(plan.cacheable.size()), cache_options, stats),
        building_(plan.cacheable.size()),
        completed_(plan.cacheable.size()),
        node_key_(plan.cacheable.size()),
        node_wide_(plan.cacheable.size()),
        assignment_(plan.order.size(), kNullValue),
        deadline_(limits.timeout_seconds),
        max_intermediates_(limits.max_intermediate_tuples) {}

  std::uint64_t Run() {
    RCachedJoin(0);
    return emitted_;
  }

  bool timed_out() const { return timed_out_; }
  bool out_of_memory() const { return out_of_memory_; }

  /// Freezes and returns the root node's accumulated factorized set (only
  /// meaningful after Run() in maintain-everything mode).
  FactorizedSetPtr TakeRootSet() {
    auto set = std::make_shared<FactorizedSet>();
    set->node = plan_.root;
    set->entries = std::move(building_[plan_.root]);
    building_[plan_.root].clear();
    return set;
  }

 private:
  bool aborted() const { return timed_out_ || out_of_memory_; }

  void Emit() {
    if (!expand_at_leaf_) return;  // factorized mode: the sets are the result
    if (skips_.empty()) {
      ++emitted_;
      stats_->memory_accesses += assignment_.size();
      cb_(assignment_);
      return;
    }
    std::vector<const FactorizedSet*> sets;
    sets.reserve(skips_.size());
    for (const auto& [node, set] : skips_) sets.push_back(set.get());
    FactorizedExpand(sets, plan_, &assignment_, [this] {
      ++emitted_;
      stats_->memory_accesses += assignment_.size();
      cb_(assignment_);
    });
  }

  void RCachedJoin(int d) {
    if (d == static_cast<int>(plan_.order.size())) {
      Emit();
      return;
    }
    const NodeId v = plan_.owner_of_depth[d];
    const bool entering = d > 0 && plan_.owner_of_depth[d - 1] != v;
    PackedKey& key = node_key_[v];
    bool try_cache = false;
    if (entering) {
      if (plan_.maintain[v]) {
        building_[v].clear();
        completed_[v] = nullptr;
      }
      if (plan_.cacheable[v]) {
        try_cache = true;
        key = plan_.AdhesionKey(v, assignment_, &node_wide_[v]);
        if (const FactorizedSetPtr* hit = cache_.Lookup(v, key)) {
          completed_[v] = *hit;
          if (!(*hit)->entries.empty()) {
            skips_.emplace_back(v, *hit);
            RCachedJoin(plan_.subtree_last_depth[v] + 1);
            skips_.pop_back();
          }
          return;
        }
      }
    }

    LeapfrogJoin* join = ctx_->EnterDepth(d);
    const bool is_last_owned = d == plan_.last_depth[v];
    while (!join->AtEnd()) {
      if (deadline_.Expired()) {
        timed_out_ = true;
        break;
      }
      assignment_[plan_.order[d]] = join->Key();
      RCachedJoin(d + 1);
      if (aborted()) break;
      if (is_last_owned && plan_.maintain[v]) {
        AppendEntry(v);
        if (aborted()) break;
      }
      join->Next();
    }
    assignment_[plan_.order[d]] = kNullValue;
    ctx_->LeaveDepth(d);
    if (aborted()) return;

    if (entering && plan_.maintain[v]) {
      // Leaving v: freeze its factorized set for the parent's entries.
      // try_cache can only be set here: cacheable[v] implies maintain[v]
      // (checked in CachedPlan::Build), so the insert is always reachable.
      auto set = std::make_shared<FactorizedSet>();
      set->node = v;
      set->entries = std::move(building_[v]);
      building_[v].clear();
      completed_[v] = std::move(set);
      if (try_cache && plan_.AdmitsKey(v, key)) {
        cache_.Insert(v, key, completed_[v]);
      }
    }
  }

  void AppendEntry(NodeId v) {
    FactorizedEntry entry;
    const int first = plan_.first_depth[v];
    const int last = plan_.last_depth[v];
    entry.local.reserve(last - first + 1);
    for (int d = first; d <= last; ++d) {
      entry.local.push_back(assignment_[plan_.order[d]]);
    }
    entry.children.reserve(plan_.children[v].size());
    bool empty_product = false;
    for (const NodeId c : plan_.children[v]) {
      const FactorizedSetPtr& child = completed_[c];
      if (child == nullptr || child->entries.empty()) {
        empty_product = true;
        break;
      }
      entry.children.push_back(child);
    }
    if (empty_product) return;  // contributes zero tuples — skip storing
    ++stats_->intermediate_tuples;
    stats_->memory_accesses += entry.local.size();
    if (max_intermediates_ > 0 &&
        stats_->intermediate_tuples > max_intermediates_) {
      out_of_memory_ = true;
      return;
    }
    building_[v].push_back(std::move(entry));
  }

  bool expand_at_leaf_;
  const CachedPlan& plan_;
  TrieJoinContext* ctx_;
  ExecStats* stats_;
  const TupleCallback& cb_;
  CacheManager<FactorizedSetPtr> cache_;
  std::vector<std::vector<FactorizedEntry>> building_;
  std::vector<FactorizedSetPtr> completed_;
  std::vector<PackedKey> node_key_;
  std::vector<Tuple> node_wide_;  // spill buffers for wide adhesion keys
  std::vector<std::pair<NodeId, FactorizedSetPtr>> skips_;
  Tuple assignment_;
  DeadlineChecker deadline_;
  std::uint64_t max_intermediates_;
  std::uint64_t emitted_ = 0;
  bool timed_out_ = false;
  bool out_of_memory_ = false;
};

}  // namespace

CachedPlan CachedTrieJoin::ResolvePlan(const Query& q,
                                       const Database& db) const {
  TdPlan base = options_.plan.has_value() ? *options_.plan
                                          : PlanQuery(q, db, options_.planner);
  return CachedPlan::Build(q, db, std::move(base), options_.cache);
}

RunResult CachedTrieJoin::Count(const Query& q, const Database& db,
                                const RunLimits& limits) {
  RunResult result;
  Timer timer;
  const CachedPlan plan = ResolvePlan(q, db);
  TrieJoinContext ctx(q, db, plan.order, &result.stats);
  if (!ctx.HasEmptyAtom()) {
    CountRun run(plan, options_.cache, &ctx, &result.stats, limits);
    result.count = run.Run();
    result.timed_out = run.timed_out();
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

std::optional<FactorizedQueryResult> CachedTrieJoin::EvaluateFactorized(
    const Query& q, const Database& db, const RunLimits& limits,
    RunResult* run) {
  CLFTJ_CHECK(run != nullptr);
  *run = RunResult();
  Timer timer;
  auto plan = std::make_shared<CachedPlan>(ResolvePlan(q, db));
  // Intermediate sets must be collected everywhere so the root's set is the
  // complete (factorized) result.
  std::fill(plan->maintain.begin(), plan->maintain.end(), true);
  TrieJoinContext ctx(q, db, plan->order, &run->stats);
  FactorizedSetPtr root;
  if (!ctx.HasEmptyAtom()) {
    const TupleCallback noop = [](const Tuple&) {};
    EvalRun eval(*plan, options_.cache, &ctx, &run->stats, noop, limits,
                 /*expand_at_leaf=*/false);
    eval.Run();
    run->timed_out = eval.timed_out();
    run->out_of_memory = eval.out_of_memory();
    if (run->ok()) root = eval.TakeRootSet();
  } else {
    // An empty atom view makes the result empty: an entry-less root set.
    auto empty_root = std::make_shared<FactorizedSet>();
    empty_root->node = plan->root;
    root = std::move(empty_root);
  }
  run->seconds = timer.Seconds();
  if (!run->ok()) return std::nullopt;
  run->count = root == nullptr ? 0 : FactorizedCount(*root);
  run->stats.output_tuples = run->count;
  return FactorizedQueryResult(std::move(plan), std::move(root));
}

RunResult CachedTrieJoin::Evaluate(const Query& q, const Database& db,
                                   const TupleCallback& cb,
                                   const RunLimits& limits) {
  RunResult result;
  Timer timer;
  const CachedPlan plan = ResolvePlan(q, db);
  TrieJoinContext ctx(q, db, plan.order, &result.stats);
  if (!ctx.HasEmptyAtom()) {
    EvalRun run(plan, options_.cache, &ctx, &result.stats, cb, limits);
    result.count = run.Run();
    result.timed_out = run.timed_out();
    result.out_of_memory = run.out_of_memory();
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace clftj
