#include "clftj/cached_trie_join.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace clftj {

// Key extraction and admission both live on CachedPlan: keys are packed
// into a fixed-size PackedKey straight from the assignment (allocation-free
// for adhesions up to PackedKey::kInlineDims; wider adhesions stage their
// values in a per-node spill buffer), and the support-threshold probe is a
// precomputed per-value bitmap test (CachedPlan::AdmitsKey) instead of a
// hash lookup per dimension.
//
// Both run states honor a FirstVarRange: at depth 0 the leapfrog join is
// seeked to range.lo before iteration and the loop stops at the first key
// >= range.hi. Because shards are contiguous value intervals and the trie
// enumerates keys in ascending order, concatenating the per-shard outputs
// in shard order reproduces the unrestricted run exactly.

void CountRun::RCachedJoin(int d, std::uint64_t f) {
  if (d == static_cast<int>(plan_.order.size())) {
    total_ += f;
    return;
  }
  const NodeId v = plan_.owner_of_depth[d];
  const bool entering = d > 0 && plan_.owner_of_depth[d - 1] != v;
  PackedKey& key = node_key_[v];
  bool try_cache = false;
  if (entering) {
    intrmd_[v] = 0;
    if (plan_.cacheable[v]) {
      try_cache = true;
      key = plan_.AdhesionKey(v, assignment_, &node_wide_[v]);
      std::uint64_t hit;
      if (cache_.Lookup(v, key, &hit)) {
        intrmd_[v] = hit;
        if (hit != 0) {
          // Skip the whole subtree of v; its contribution is the factor.
          RCachedJoin(plan_.subtree_last_depth[v] + 1, f * hit);
        }
        return;
      }
    }
  }

  LeapfrogJoin* join = ctx_->EnterDepth(d);
  const bool is_last_owned = d == plan_.last_depth[v];
  if (d == 0 && !join->AtEnd() && join->Key() < range_.lo) {
    join->Seek(range_.lo);
  }
  while (!join->AtEnd()) {
    if (d == 0 && range_.has_hi && join->Key() >= range_.hi) break;
    if (deadline_.Expired()) {
      aborted_ = true;
      break;
    }
    assignment_[plan_.order[d]] = join->Key();
    RCachedJoin(d + 1, f);
    if (aborted_) break;
    if (is_last_owned) {
      std::uint64_t prod = 1;
      for (const NodeId c : plan_.children[v]) prod *= intrmd_[c];
      intrmd_[v] += prod;
    }
    join->Next();
  }
  assignment_[plan_.order[d]] = kNullValue;
  ctx_->LeaveDepth(d);

  if (try_cache && !aborted_ && plan_.AdmitsKey(v, key)) {
    cache_.Insert(v, key, intrmd_[v]);
  }
}

void EvalRun::Emit() {
  if (!expand_at_leaf_) return;  // factorized mode: the sets are the result
  if (skips_.empty()) {
    ++emitted_;
    stats_->memory_accesses += assignment_.size();
    cb_(assignment_);
    return;
  }
  std::vector<const FactorizedSet*> sets;
  sets.reserve(skips_.size());
  for (const auto& [node, set] : skips_) sets.push_back(set.get());
  FactorizedExpand(sets, plan_, &assignment_, [this] {
    ++emitted_;
    stats_->memory_accesses += assignment_.size();
    cb_(assignment_);
  });
}

void EvalRun::RCachedJoin(int d) {
  if (d == static_cast<int>(plan_.order.size())) {
    Emit();
    return;
  }
  const NodeId v = plan_.owner_of_depth[d];
  const bool entering = d > 0 && plan_.owner_of_depth[d - 1] != v;
  PackedKey& key = node_key_[v];
  bool try_cache = false;
  if (entering) {
    if (plan_.maintain[v]) {
      building_[v].clear();
      completed_[v] = nullptr;
    }
    if (plan_.cacheable[v]) {
      try_cache = true;
      key = plan_.AdhesionKey(v, assignment_, &node_wide_[v]);
      FactorizedSetPtr hit;
      if (cache_.Lookup(v, key, &hit)) {
        completed_[v] = hit;
        if (!hit->entries.empty()) {
          skips_.emplace_back(v, std::move(hit));
          RCachedJoin(plan_.subtree_last_depth[v] + 1);
          skips_.pop_back();
        }
        return;
      }
    }
  }

  LeapfrogJoin* join = ctx_->EnterDepth(d);
  const bool is_last_owned = d == plan_.last_depth[v];
  if (d == 0 && !join->AtEnd() && join->Key() < range_.lo) {
    join->Seek(range_.lo);
  }
  while (!join->AtEnd()) {
    if (d == 0 && range_.has_hi && join->Key() >= range_.hi) break;
    if (deadline_.Expired()) {
      timed_out_ = true;
      break;
    }
    assignment_[plan_.order[d]] = join->Key();
    RCachedJoin(d + 1);
    if (aborted()) break;
    if (is_last_owned && plan_.maintain[v]) {
      AppendEntry(v);
      if (aborted()) break;
    }
    join->Next();
  }
  assignment_[plan_.order[d]] = kNullValue;
  ctx_->LeaveDepth(d);
  if (aborted()) return;

  if (entering && plan_.maintain[v]) {
    // Leaving v: freeze its factorized set for the parent's entries.
    // try_cache can only be set here: cacheable[v] implies maintain[v]
    // (checked in CachedPlan::Build), so the insert is always reachable.
    auto set = std::make_shared<FactorizedSet>();
    set->node = v;
    set->entries = std::move(building_[v]);
    building_[v].clear();
    completed_[v] = std::move(set);
    if (try_cache && plan_.AdmitsKey(v, key)) {
      cache_.Insert(v, key, completed_[v]);
    }
  }
}

void EvalRun::AppendEntry(NodeId v) {
  FactorizedEntry entry;
  const int first = plan_.first_depth[v];
  const int last = plan_.last_depth[v];
  entry.local.reserve(last - first + 1);
  for (int d = first; d <= last; ++d) {
    entry.local.push_back(assignment_[plan_.order[d]]);
  }
  entry.children.reserve(plan_.children[v].size());
  bool empty_product = false;
  for (const NodeId c : plan_.children[v]) {
    const FactorizedSetPtr& child = completed_[c];
    if (child == nullptr || child->entries.empty()) {
      empty_product = true;
      break;
    }
    entry.children.push_back(child);
  }
  if (empty_product) return;  // contributes zero tuples — skip storing
  ++stats_->intermediate_tuples;
  stats_->memory_accesses += entry.local.size();
  if (fault::Fire(fault::Site::kMaterialize)) {
    // Injected allocation failure while materializing: surfaces exactly as
    // the materialization budget does — a typed out-of-memory abort.
    out_of_memory_ = true;
    if (abort_ != nullptr) abort_->Trip(RunStatus::kOutOfMemory);
    return;
  }
  if (max_intermediates_ > 0) {
    // With a shared counter the budget spans all concurrent runs — K
    // shards together get the one budget a single-thread run gets.
    const std::uint64_t used =
        shared_intermediates_ != nullptr
            ? shared_intermediates_->fetch_add(1, std::memory_order_relaxed) +
                  1
            : stats_->intermediate_tuples;
    if (used > max_intermediates_) {
      out_of_memory_ = true;
      // Stop sibling workers too: the shared budget is blown for the whole
      // run, not just this shard.
      if (abort_ != nullptr) abort_->Trip(RunStatus::kOutOfMemory);
      return;
    }
  }
  building_[v].push_back(std::move(entry));
}

std::shared_ptr<FactorizedSet> EvalRun::TakeRootSet() {
  auto set = std::make_shared<FactorizedSet>();
  set->node = plan_.root;
  set->entries = std::move(building_[plan_.root]);
  building_[plan_.root].clear();
  return set;
}

CachedPlan CachedTrieJoin::ResolvePlan(const Query& q,
                                       const Database& db) const {
  return CachedPlan::Resolve(q, db, options_.plan, options_.planner,
                             options_.cache);
}

// The two reuse seams shared by Count/Evaluate/EvaluateFactorized: a
// prepared plan replaces local resolution, and a prepared substrate
// replaces the context's private trie build. Both are pure input
// substitutions — the run logic never knows which path provided them.

const CachedPlan* CachedTrieJoin::PlanFor(const Query& q, const Database& db,
                                          std::optional<CachedPlan>* local) {
  if (options_.prepared_plan != nullptr) return options_.prepared_plan.get();
  return &local->emplace(ResolvePlan(q, db));
}

void CachedTrieJoin::MakeContext(const Query& q, const Database& db,
                                 const CachedPlan& plan, ExecStats* stats,
                                 std::optional<TrieJoinContext>* ctx) {
  if (options_.prepared_substrate != nullptr) {
    // The substrate was built for one specific variable order; a mismatch
    // means the caller paired a plan and substrate from different shapes.
    CLFTJ_CHECK(options_.prepared_substrate->order() == plan.order);
    ctx->emplace(*options_.prepared_substrate, stats);
  } else {
    ctx->emplace(q, db, plan.order, stats);
  }
}

RunResult CachedTrieJoin::Count(const Query& q, const Database& db,
                                const RunLimits& limits) {
  RunResult result;
  Timer timer;
  std::optional<CachedPlan> local_plan;
  const CachedPlan* plan = PlanFor(q, db, &local_plan);
  std::optional<TrieJoinContext> ctx;
  MakeContext(q, db, *plan, &result.stats, &ctx);
  if (!ctx->HasEmptyAtom()) {
    CountRun run(*plan, options_.cache, &*ctx, &result.stats, limits,
                 FirstVarRange{}, limits.cancel, options_.shared_count_cache);
    result.count = run.Run();
    result.SetStatus(
        MergeRunStatus(run.timed_out(), /*any_out_of_memory=*/false,
                       limits.cancel));
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

std::optional<FactorizedQueryResult> CachedTrieJoin::EvaluateFactorized(
    const Query& q, const Database& db, const RunLimits& limits,
    RunResult* run) {
  CLFTJ_CHECK(run != nullptr);
  *run = RunResult();
  Timer timer;
  // A prepared plan is shared and immutable — copy it before the maintain
  // fill below mutates it. (The shared striped caches are NOT consulted
  // here: maintain-everything runs build different factorized sets than
  // plan-default runs, so their payloads must not mix.)
  auto plan = options_.prepared_plan != nullptr
                  ? std::make_shared<CachedPlan>(*options_.prepared_plan)
                  : std::make_shared<CachedPlan>(ResolvePlan(q, db));
  // Intermediate sets must be collected everywhere so the root's set is the
  // complete (factorized) result.
  std::fill(plan->maintain.begin(), plan->maintain.end(), true);
  std::optional<TrieJoinContext> ctx_storage;
  MakeContext(q, db, *plan, &run->stats, &ctx_storage);
  TrieJoinContext& ctx = *ctx_storage;
  FactorizedSetPtr root;
  if (!ctx.HasEmptyAtom()) {
    const TupleCallback noop = [](const Tuple&) {};
    EvalRun eval(*plan, options_.cache, &ctx, &run->stats, noop, limits,
                 /*expand_at_leaf=*/false, FirstVarRange{}, limits.cancel);
    eval.Run();
    run->SetStatus(MergeRunStatus(eval.timed_out(), eval.out_of_memory(),
                                  limits.cancel));
    if (run->ok()) root = eval.TakeRootSet();
  } else {
    // An empty atom view makes the result empty: an entry-less root set.
    auto empty_root = std::make_shared<FactorizedSet>();
    empty_root->node = plan->root;
    root = std::move(empty_root);
  }
  run->seconds = timer.Seconds();
  if (!run->ok()) return std::nullopt;
  run->count = root == nullptr ? 0 : FactorizedCount(*root);
  run->stats.output_tuples = run->count;
  return FactorizedQueryResult(std::move(plan), std::move(root));
}

RunResult CachedTrieJoin::Evaluate(const Query& q, const Database& db,
                                   const TupleCallback& cb,
                                   const RunLimits& limits) {
  RunResult result;
  Timer timer;
  std::optional<CachedPlan> local_plan;
  const CachedPlan* plan = PlanFor(q, db, &local_plan);
  std::optional<TrieJoinContext> ctx;
  MakeContext(q, db, *plan, &result.stats, &ctx);
  if (!ctx->HasEmptyAtom()) {
    EvalRun run(*plan, options_.cache, &*ctx, &result.stats, cb, limits,
                /*expand_at_leaf=*/true, FirstVarRange{}, limits.cancel,
                /*shared_intermediates=*/nullptr,
                options_.shared_eval_cache);
    result.count = run.Run();
    result.SetStatus(MergeRunStatus(run.timed_out(), run.out_of_memory(),
                                    limits.cancel));
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace clftj
