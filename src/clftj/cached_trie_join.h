#ifndef CLFTJ_CLFTJ_CACHED_TRIE_JOIN_H_
#define CLFTJ_CLFTJ_CACHED_TRIE_JOIN_H_

#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "clftj/cache.h"
#include "clftj/factorized.h"
#include "clftj/plan.h"
#include "engine/engine.h"
#include "lftj/trie_join.h"
#include "td/planner.h"
#include "util/packed_key.h"

namespace clftj {

/// Restriction of a CLFTJ run to first-variable values in the half-open
/// interval [lo, hi) — the sharding unit of the parallel executor
/// (ShardedCachedTrieJoin splits the first variable's sibling range into
/// contiguous shards of these). The default range covers the whole domain,
/// which makes an unrestricted run just the 1-shard special case.
struct FirstVarRange {
  Value lo = std::numeric_limits<Value>::min();
  /// When false, the range is unbounded above and `hi` is ignored.
  bool has_hi = false;
  Value hi = 0;
};

/// Per-run mutable state of counting CLFTJ (RCachedJoin of Figure 2 with f
/// carried as a multiplicative factor and intrmd(v) as plain counters).
///
/// This is the run half of the run/plan split: everything mutable —
/// iterators (via the TrieJoinContext cursor), the partial assignment,
/// intermediate counters, the cache, stats and the deadline — lives here,
/// while the CachedPlan and the trie substrate behind `ctx` are shared
/// immutable inputs. N CountRuns over one plan/substrate (each with its own
/// cursor, stats sink and cache) may execute concurrently.
class CountRun {
 public:
  /// `range` restricts the first variable; `abort` (optional) is a stop
  /// flag shared across concurrent runs — this run trips it on its own
  /// deadline expiry and halts within one deadline stride when any other
  /// run trips it. `shared_cache` (optional) replaces the run's private
  /// cache with the run-wide striped table (Sharing::kStriped): this run
  /// then probes and fills the one table all concurrent runs share, and
  /// `cache_options` budgets are ignored (the striped table carries the
  /// global budget itself).
  CountRun(const CachedPlan& plan, const CacheOptions& cache_options,
           TrieJoinContext* ctx, ExecStats* stats, const RunLimits& limits,
           const FirstVarRange& range = {}, AbortFlag* abort = nullptr,
           StripedCacheManager<std::uint64_t>* shared_cache = nullptr)
      : plan_(plan),
        ctx_(ctx),
        cache_(static_cast<int>(plan.cacheable.size()), cache_options, stats,
               shared_cache),
        intrmd_(plan.cacheable.size(), 0),
        node_key_(plan.cacheable.size()),
        node_wide_(plan.cacheable.size()),
        assignment_(plan.order.size(), kNullValue),
        range_(range),
        deadline_(limits.timeout_seconds, abort) {}

  std::uint64_t Run() {
    RCachedJoin(0, 1);
    return total_;
  }

  bool timed_out() const { return aborted_; }

 private:
  void RCachedJoin(int d, std::uint64_t f);

  const CachedPlan& plan_;
  TrieJoinContext* ctx_;
  RunCache<std::uint64_t> cache_;
  std::vector<std::uint64_t> intrmd_;
  std::vector<PackedKey> node_key_;
  std::vector<Tuple> node_wide_;  // spill buffers for wide adhesion keys
  Tuple assignment_;
  FirstVarRange range_;
  DeadlineChecker deadline_;
  std::uint64_t total_ = 0;
  bool aborted_ = false;
};

/// Per-run mutable state of evaluating CLFTJ: intermediate results become
/// factorized sets; a cache hit pushes a skip record and the emission point
/// expands the product of all active skips (Section 3.4). Same re-entrancy
/// contract as CountRun: plan and substrate are shared immutable inputs,
/// everything else is private to this run.
class EvalRun {
 public:
  /// `shared_intermediates` (optional) makes RunLimits::max_intermediate_
  /// tuples a *run-wide* budget across concurrent EvalRuns: every
  /// materialized entry is counted through the shared counter instead of
  /// this run's private stats, so K shards together never exceed the one
  /// budget a single-thread run gets. Null keeps the private accounting.
  /// `shared_cache` (optional) is the Sharing::kStriped table shared by all
  /// concurrent runs; factorized sets are frozen before insert and
  /// published through the stripe mutex, so a hit may hand this run a set
  /// built by another shard (see StripedCacheManager).
  EvalRun(const CachedPlan& plan, const CacheOptions& cache_options,
          TrieJoinContext* ctx, ExecStats* stats, const TupleCallback& cb,
          const RunLimits& limits, bool expand_at_leaf = true,
          const FirstVarRange& range = {}, AbortFlag* abort = nullptr,
          std::atomic<std::uint64_t>* shared_intermediates = nullptr,
          StripedCacheManager<FactorizedSetPtr>* shared_cache = nullptr)
      : expand_at_leaf_(expand_at_leaf),
        plan_(plan),
        ctx_(ctx),
        stats_(stats),
        cb_(cb),
        cache_(static_cast<int>(plan.cacheable.size()), cache_options, stats,
               shared_cache),
        building_(plan.cacheable.size()),
        completed_(plan.cacheable.size()),
        node_key_(plan.cacheable.size()),
        node_wide_(plan.cacheable.size()),
        assignment_(plan.order.size(), kNullValue),
        range_(range),
        deadline_(limits.timeout_seconds, abort),
        abort_(abort),
        shared_intermediates_(shared_intermediates),
        max_intermediates_(limits.max_intermediate_tuples) {}

  std::uint64_t Run() {
    RCachedJoin(0);
    return emitted_;
  }

  bool timed_out() const { return timed_out_; }
  bool out_of_memory() const { return out_of_memory_; }

  /// Freezes and returns the root node's accumulated factorized set (only
  /// meaningful after Run() in maintain-everything mode). Returned mutable
  /// and uniquely owned so a sharded caller can splice shard roots together
  /// without copying.
  std::shared_ptr<FactorizedSet> TakeRootSet();

 private:
  bool aborted() const { return timed_out_ || out_of_memory_; }

  void Emit();
  void RCachedJoin(int d);
  void AppendEntry(NodeId v);

  bool expand_at_leaf_;
  const CachedPlan& plan_;
  TrieJoinContext* ctx_;
  ExecStats* stats_;
  const TupleCallback& cb_;
  RunCache<FactorizedSetPtr> cache_;
  std::vector<std::vector<FactorizedEntry>> building_;
  std::vector<FactorizedSetPtr> completed_;
  std::vector<PackedKey> node_key_;
  std::vector<Tuple> node_wide_;  // spill buffers for wide adhesion keys
  std::vector<std::pair<NodeId, FactorizedSetPtr>> skips_;
  Tuple assignment_;
  FirstVarRange range_;
  DeadlineChecker deadline_;
  AbortFlag* abort_;
  std::atomic<std::uint64_t>* shared_intermediates_;
  std::uint64_t max_intermediates_;
  std::uint64_t emitted_ = 0;
  bool timed_out_ = false;
  bool out_of_memory_ = false;
};

/// CLFTJ — Leapfrog Trie Join with flexible caching (Figure 2 of the
/// paper). Runs LFTJ unchanged over a variable order that is strongly
/// compatible with an ordered tree decomposition; whenever execution enters
/// a TD node whose adhesion assignment was seen before, the entire subtree
/// scan is skipped and replaced by the cached intermediate count (or
/// factorized result set, in evaluation mode). Caching is optional per
/// entry — any admission/eviction decision preserves correctness — so the
/// memory footprint can be bounded dynamically.
///
/// This class is the single-threaded frontend over CountRun/EvalRun; the
/// parallel frontend over the same run states is ShardedCachedTrieJoin
/// (engine/sharded.h).
class CachedTrieJoin : public JoinEngine {
 public:
  struct Options {
    /// Explicit plan (e.g. a hand-built TD for the Figure 11/13
    /// experiments); when absent, PlanQuery chooses one per query.
    std::optional<TdPlan> plan;
    PlannerOptions planner;
    CacheOptions cache;

    // Cross-query reuse injection (the serving loop's CrossQueryReuse).
    // When set, the run skips its own plan resolution / trie builds and
    // uses the shared immutable state instead; the striped cache pointers
    // (borrowed, must outlive the run) replace the run's private cache so
    // successive requests of the same shape warm each other. Results are
    // identical either way.
    std::shared_ptr<const CachedPlan> prepared_plan;
    std::shared_ptr<const TrieJoinSubstrate> prepared_substrate;
    StripedCacheManager<std::uint64_t>* shared_count_cache = nullptr;
    StripedCacheManager<FactorizedSetPtr>* shared_eval_cache = nullptr;
  };

  CachedTrieJoin() = default;
  explicit CachedTrieJoin(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "CLFTJ"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;

  /// Computes q(D) as a persistent factorized representation instead of a
  /// flat tuple stream (Section 3.4): intermediate sets are maintained at
  /// every TD node and the root's set *is* the result — counting and
  /// enumeration happen on demand via FactorizedQueryResult. Returns
  /// nullopt if the run hit a limit (limits/result details in *run).
  std::optional<FactorizedQueryResult> EvaluateFactorized(
      const Query& q, const Database& db, const RunLimits& limits,
      RunResult* run);

 private:
  CachedPlan ResolvePlan(const Query& q, const Database& db) const;

  /// Returns the prepared plan if injected, else resolves into *local.
  const CachedPlan* PlanFor(const Query& q, const Database& db,
                            std::optional<CachedPlan>* local);
  /// Emplaces a cursor over the prepared substrate if injected (checking
  /// its order matches the plan), else over a freshly built private one.
  void MakeContext(const Query& q, const Database& db, const CachedPlan& plan,
                   ExecStats* stats, std::optional<TrieJoinContext>* ctx);

  Options options_;
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_CACHED_TRIE_JOIN_H_
