#ifndef CLFTJ_CLFTJ_CACHED_TRIE_JOIN_H_
#define CLFTJ_CLFTJ_CACHED_TRIE_JOIN_H_

#include <optional>

#include "clftj/cache.h"
#include "clftj/factorized.h"
#include "clftj/plan.h"
#include "engine/engine.h"
#include "td/planner.h"

namespace clftj {

/// CLFTJ — Leapfrog Trie Join with flexible caching (Figure 2 of the
/// paper). Runs LFTJ unchanged over a variable order that is strongly
/// compatible with an ordered tree decomposition; whenever execution enters
/// a TD node whose adhesion assignment was seen before, the entire subtree
/// scan is skipped and replaced by the cached intermediate count (or
/// factorized result set, in evaluation mode). Caching is optional per
/// entry — any admission/eviction decision preserves correctness — so the
/// memory footprint can be bounded dynamically.
class CachedTrieJoin : public JoinEngine {
 public:
  struct Options {
    /// Explicit plan (e.g. a hand-built TD for the Figure 11/13
    /// experiments); when absent, PlanQuery chooses one per query.
    std::optional<TdPlan> plan;
    PlannerOptions planner;
    CacheOptions cache;
  };

  CachedTrieJoin() = default;
  explicit CachedTrieJoin(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "CLFTJ"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;

  /// Computes q(D) as a persistent factorized representation instead of a
  /// flat tuple stream (Section 3.4): intermediate sets are maintained at
  /// every TD node and the root's set *is* the result — counting and
  /// enumeration happen on demand via FactorizedQueryResult. Returns
  /// nullopt if the run hit a limit (limits/result details in *run).
  std::optional<FactorizedQueryResult> EvaluateFactorized(
      const Query& q, const Database& db, const RunLimits& limits,
      RunResult* run);

 private:
  CachedPlan ResolvePlan(const Query& q, const Database& db) const;

  Options options_;
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_CACHED_TRIE_JOIN_H_
