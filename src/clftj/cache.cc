#include "clftj/cache.h"

#include <sstream>

namespace clftj {

std::string CacheOptions::ToString() const {
  if (!enabled) return "cache=off";
  std::ostringstream os;
  os << "cache=on admission="
     << (admission == Admission::kAll
             ? "all"
             : "support>=" + std::to_string(support_threshold))
     << " capacity=" << (capacity == 0 ? "unbounded" : std::to_string(capacity));
  if (capacity_bytes > 0) os << " capacity_bytes=" << capacity_bytes;
  os << " eviction="
     << (eviction == Eviction::kRejectNew ? "reject-new" : "lru")
     << " max_dim=" << max_dimension;
  if (sharing == Sharing::kStriped) {
    os << " sharing=striped";
    if (stripes > 0) os << " stripes=" << stripes;
  }
  return os.str();
}

}  // namespace clftj
