#ifndef CLFTJ_CLFTJ_CACHE_H_
#define CLFTJ_CLFTJ_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/hash.h"
#include "util/stats.h"

namespace clftj {

/// Caching policy knobs for CLFTJ (Sections 3.4 and 5.3.3 of the paper).
/// The cache size can be bounded *dynamically*: capacity is a global entry
/// budget shared by all per-node caches, which is what lets CLFTJ keep
/// LFTJ's bounded-memory property while still exploiting whatever memory is
/// available.
struct CacheOptions {
  /// Master switch; disabled turns CLFTJ into plain LFTJ on the same order.
  bool enabled = true;

  /// Admission policy of line 21 of Figure 2 ("should (α, µ|α) be
  /// cached?"): kAll caches every completed intermediate; kSupportThreshold
  /// caches only when every adhesion value has support (occurrence count in
  /// the base data) >= support_threshold — the paper's policy.
  enum class Admission { kAll, kSupportThreshold };
  Admission admission = Admission::kAll;
  std::uint64_t support_threshold = 0;

  /// Global bound on the number of cached entries (0 = unbounded).
  std::uint64_t capacity = 0;

  /// What to do on insert at capacity: reject the new entry, or evict the
  /// least recently used entry across all node caches.
  enum class Eviction { kRejectNew, kLru };
  Eviction eviction = Eviction::kLru;

  /// Adhesions wider than this are never cached (the paper's implementation
  /// supports keys of up to two dimensions).
  int max_dimension = 2;

  /// One-line description for bench output.
  std::string ToString() const;
};

/// A set of per-TD-node caches mapping adhesion assignments to payloads,
/// with a shared entry budget and a global LRU chain. V is the payload:
/// std::uint64_t for counting, a factorized-set pointer for evaluation.
template <typename V>
class CacheManager {
 public:
  CacheManager(int num_nodes, const CacheOptions& options, ExecStats* stats)
      : options_(options),
        bounded_(options.capacity > 0),
        stats_(stats),
        maps_(num_nodes),
        direct_maps_(num_nodes) {}

  /// Returns the payload cached for (node, key), or nullptr. Counts a hit
  /// or miss; under a bounded capacity also refreshes LRU recency.
  /// The returned pointer is invalidated by the next Insert.
  const V* Lookup(NodeId node, const Tuple& key) {
    stats_->memory_accesses += 1 + key.size();
    if (!bounded_) {
      // Unbounded fast path: plain hash map, no recency bookkeeping — this
      // is the configuration of the paper's main experiments and sits on
      // the join's hot path.
      auto& map = direct_maps_[node];
      const auto it = map.find(key);
      if (it == map.end()) {
        ++stats_->cache_misses;
        return nullptr;
      }
      ++stats_->cache_hits;
      return &it->second;
    }
    auto& map = maps_[node];
    const auto it = map.find(key);
    if (it == map.end()) {
      ++stats_->cache_misses;
      return nullptr;
    }
    ++stats_->cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return &it->second->value;
  }

  /// Inserts (node, key) -> value subject to the capacity policy. Replaces
  /// an existing entry for the same key.
  void Insert(NodeId node, const Tuple& key, V value) {
    stats_->memory_accesses += 1 + key.size();
    if (!bounded_) {
      auto& map = direct_maps_[node];
      const auto it = map.find(key);
      if (it != map.end()) {
        it->second = std::move(value);
        return;
      }
      map.emplace(key, std::move(value));
      ++size_;
      ++stats_->cache_inserts;
      stats_->cache_entries_peak =
          std::max<std::uint64_t>(stats_->cache_entries_peak, size_);
      return;
    }
    auto& map = maps_[node];
    const auto it = map.find(key);
    if (it != map.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    if (lru_.size() >= options_.capacity) {
      if (options_.eviction == CacheOptions::Eviction::kRejectNew) {
        ++stats_->cache_rejects;
        return;
      }
      // Evict globally least recently used.
      const Entry& victim = lru_.back();
      maps_[victim.node].erase(victim.key);
      lru_.pop_back();
      ++stats_->cache_evictions;
    }
    lru_.push_front(Entry{node, key, std::move(value)});
    map.emplace(key, lru_.begin());
    ++stats_->cache_inserts;
    stats_->cache_entries_peak =
        std::max<std::uint64_t>(stats_->cache_entries_peak, lru_.size());
  }

  /// Current number of entries across all node caches.
  std::size_t size() const { return bounded_ ? lru_.size() : size_; }

 private:
  struct Entry {
    NodeId node;
    Tuple key;
    V value;
  };
  using LruList = std::list<Entry>;

  CacheOptions options_;
  bool bounded_;
  ExecStats* stats_;
  LruList lru_;  // front = most recently used (bounded mode only)
  std::vector<std::unordered_map<Tuple, typename LruList::iterator, TupleHash>>
      maps_;
  std::vector<std::unordered_map<Tuple, V, TupleHash>> direct_maps_;
  std::size_t size_ = 0;
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_CACHE_H_
