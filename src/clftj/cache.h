#ifndef CLFTJ_CLFTJ_CACHE_H_
#define CLFTJ_CLFTJ_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/fault.h"
#include "util/hash.h"
#include "util/packed_key.h"
#include "util/stats.h"

namespace clftj {

/// Caching policy knobs for CLFTJ (Sections 3.4 and 5.3.3 of the paper).
/// The cache size can be bounded *dynamically*: capacity is a global entry
/// budget shared by all per-node caches, which is what lets CLFTJ keep
/// LFTJ's bounded-memory property while still exploiting whatever memory is
/// available.
struct CacheOptions {
  /// Master switch; disabled turns CLFTJ into plain LFTJ on the same order.
  bool enabled = true;

  /// Admission policy of line 21 of Figure 2 ("should (α, µ|α) be
  /// cached?"): kAll caches every completed intermediate; kSupportThreshold
  /// caches only when every adhesion value has support (occurrence count in
  /// the base data) >= support_threshold — the paper's policy.
  enum class Admission { kAll, kSupportThreshold };
  Admission admission = Admission::kAll;
  std::uint64_t support_threshold = 0;

  /// Global bound on the number of cached entries (0 = unbounded).
  std::uint64_t capacity = 0;

  /// Global bound on cached *payload bytes* (0 = entry-count mode via
  /// `capacity`). Factorized-set payloads vary wildly in size, so "whatever
  /// memory is available" needs a byte budget, not an entry budget: each
  /// entry is charged CachePayloadBytes of its payload at insert time and
  /// credited back on eviction/replacement. Both bounds may be active; an
  /// insert must satisfy both.
  std::uint64_t capacity_bytes = 0;

  /// What to do on insert at capacity: reject the new entry, or evict the
  /// least recently used entry across all node caches.
  enum class Eviction { kRejectNew, kLru };
  Eviction eviction = Eviction::kLru;

  /// Cache placement for parallel (sharded) execution. kPrivate: each shard
  /// owns a CacheManager sized capacity/K — no cross-shard coordination on
  /// the hot path, but shards recompute each other's subtrees. kStriped:
  /// all shards probe and fill one StripedCacheManager — S lock-striped
  /// segments whose per-stripe budgets sum to the global capacity — so a
  /// subtree computed by any shard is a hit for every other shard
  /// (cross-shard reuse at the price of a stripe mutex per cache call).
  /// Single-threaded CachedTrieJoin ignores the knob: one run with one
  /// private cache already *is* the global budget.
  enum class Sharing { kPrivate, kStriped };
  Sharing sharing = Sharing::kPrivate;

  /// Stripe count for Sharing::kStriped; 0 picks one from the worker count
  /// (see StripedCacheManager::ChooseStripes). Rounded up to a power of two
  /// and clamped so every stripe's share of a bounded budget is >= 1.
  int stripes = 0;

  /// Adhesions wider than this are never cached (the paper's implementation
  /// supports keys of up to two dimensions). Keys up to
  /// PackedKey::kInlineDims live entirely inside the table; wider keys take
  /// the interned spill path.
  int max_dimension = 2;

  /// One-line description for bench output.
  std::string ToString() const;
};

/// Payload byte accounting for the byte-budget mode
/// (CacheOptions::capacity_bytes). The generic fallback charges the value's
/// inline size — right for counters and semiring weights. Payloads owning
/// heap memory overload this in their own header (factorized.h charges a
/// FactorizedSetPtr its set's MemoryBytes); the overload is found by ADL at
/// CacheManager instantiation.
template <typename V>
inline std::uint64_t CachePayloadBytes(const V&) {
  return sizeof(V);
}

/// The shared cache of CLFTJ: (TD node, adhesion assignment) -> payload,
/// with a global entry budget and a global LRU chain. V is the payload:
/// std::uint64_t for counting, a factorized-set pointer for evaluation.
///
/// Layout: one open-addressing flat table (linear probing, power-of-two
/// capacity, load factor <= 1/2) whose slots embed the key, the payload and
/// an intrusive doubly-linked LRU via 32-bit slot indices. Deletion is
/// tombstone-free (backward-shift), so probe sequences never degrade under
/// eviction churn. Per Lookup the hot path performs zero heap allocations;
/// an Insert allocates at most when the table grows (doubling rehash).
/// Keys wider than PackedKey::kInlineDims are interned into a value arena
/// (`spill path`); with the default max_dimension = 2 the arena is never
/// touched.
template <typename V>
class CacheManager {
 public:
  CacheManager(int num_nodes, const CacheOptions& options, ExecStats* stats)
      : options_(options),
        bounded_(options.capacity > 0),
        byte_bounded_(options.capacity_bytes > 0),
        stats_(stats) {
    (void)num_nodes;  // node ids are mixed into the key hash; no per-node maps
  }

  /// Returns the payload cached for (node, key), or nullptr. Counts a hit
  /// or miss; under a bounded capacity also refreshes LRU recency. The
  /// returned pointer is invalidated by the next Insert.
  const V* Lookup(NodeId node, PackedKey key) {
    const std::uint64_t hash = HashKey(node, key);
    const std::uint32_t i = FindSlot(node, key, hash);
    if (i == kNil) {
      ++stats_->cache_misses;
      return nullptr;
    }
    ++stats_->cache_hits;
    if (bounded_ || byte_bounded_) MoveToFront(i);
    return &slots_[i].value;
  }

  /// Inserts (node, key) -> value subject to the capacity policies (entry
  /// count and payload bytes — both must hold). Replaces an existing entry
  /// for the same key. Returns true when the entry resides in the table
  /// after the call, false when policy rejected it (callers layering a
  /// lock-free read cache on top must not publish rejected entries).
  bool Insert(NodeId node, PackedKey key, V value) {
    if (fault::Fire(fault::Site::kCacheInsert)) {
      // Injected allocation failure at the insert: caching is optional per
      // entry, so the correct degradation is to drop this entry — results
      // must stay bit-identical, only hit rates suffer.
      ++stats_->cache_rejects;
      return false;
    }
    const std::uint64_t hash = HashKey(node, key);
    const std::uint64_t need = byte_bounded_ ? CachePayloadBytes(value) : 0;
    if (byte_bounded_ && need > options_.capacity_bytes) {
      // Larger than the whole budget: no sequence of evictions can fit it.
      ++stats_->cache_rejects;
      return false;
    }
    const std::uint32_t existing = FindSlot(node, key, hash);
    if (existing != kNil) {
      if (byte_bounded_ &&
          options_.eviction == CacheOptions::Eviction::kRejectNew &&
          bytes_ - slots_[existing].bytes + need > options_.capacity_bytes) {
        // A grown replacement that no longer fits: keep the old payload.
        ++stats_->cache_rejects;
        return false;
      }
      if (byte_bounded_) {
        bytes_ += need - slots_[existing].bytes;
        slots_[existing].bytes = need;
      }
      slots_[existing].value = std::move(value);
      if (bounded_ || byte_bounded_) MoveToFront(existing);
      // A grown replacement can overshoot the byte budget: shed LRU entries
      // until it fits again. The refreshed entry is MRU by now, so it is
      // never the victim — and `existing` is not re-read below, which
      // matters because backward-shift deletion may physically move it.
      while (byte_bounded_ && bytes_ > options_.capacity_bytes && size_ > 1) {
        EraseSlot(lru_tail_);
        ++stats_->cache_evictions;
      }
      if (byte_bounded_) TrackBytePeak();
      return true;
    }
    while ((bounded_ && size_ >= options_.capacity) ||
           (byte_bounded_ && bytes_ + need > options_.capacity_bytes)) {
      if (options_.eviction == CacheOptions::Eviction::kRejectNew) {
        ++stats_->cache_rejects;
        return false;
      }
      EraseSlot(lru_tail_);  // evict globally least recently used
      ++stats_->cache_evictions;
    }
    EnsureSpace();
    InsertFresh(node, key, hash, std::move(value), need);
    ++stats_->cache_inserts;
    stats_->cache_entries_peak =
        std::max<std::uint64_t>(stats_->cache_entries_peak, size_);
    if (byte_bounded_) TrackBytePeak();
    return true;
  }

  /// Maintenance eviction for targeted invalidation (see
  /// docs/incremental.md): removes every entry for which pred(node, values,
  /// dims) returns true, where `values` are the entry's adhesion key values.
  /// Two-phase on purpose — backward-shift deletion physically moves slots,
  /// so the predicate pass collects doomed keys into owned buffers first and
  /// each key is then re-located and erased. Runs between queries, not on
  /// the hot path; not counted as capacity evictions. Returns the number of
  /// entries removed.
  template <typename Pred>
  std::size_t EvictIf(const Pred& pred) {
    std::vector<std::pair<NodeId, std::vector<Value>>> doomed;
    for (const Slot& s : slots_) {
      if (!s.occupied()) continue;
      std::vector<Value> vals(s.dims);
      if (s.wide()) {
        for (std::uint32_t d = 0; d < s.dims; ++d) {
          vals[d] = arena_[s.lo + d];
        }
      } else {
        if (s.dims >= 1) vals[0] = static_cast<Value>(s.lo);
        if (s.dims == 2) vals[1] = static_cast<Value>(s.hi);
      }
      if (pred(s.node, vals.data(), static_cast<int>(s.dims))) {
        doomed.emplace_back(s.node, std::move(vals));
      }
    }
    for (const auto& [node, vals] : doomed) {
      const PackedKey key =
          PackedKey::Pack(vals.data(), static_cast<int>(vals.size()));
      const std::uint32_t i = FindSlot(node, key, HashKey(node, key));
      if (i != kNil) EraseSlot(i);
    }
    return doomed.size();
  }

  /// Read-only iteration over every live entry: fn(node, values, dims,
  /// value) with `values` pointing at the entry's adhesion key values
  /// (reconstructed the same way EvictIf's collection pass does). Used by
  /// cross-shape seeding (docs/serving.md "Batch admission") to copy count
  /// entries between shapes; charges no stats and never mutates the table,
  /// so recency and probe chains are untouched.
  template <typename Fn>
  void ForEach(const Fn& fn) const {
    Value inline_vals[2];
    for (const Slot& s : slots_) {
      if (!s.occupied()) continue;
      const Value* vals;
      if (s.wide()) {
        vals = arena_.data() + s.lo;
      } else {
        inline_vals[0] = static_cast<Value>(s.lo);
        inline_vals[1] = static_cast<Value>(s.hi);
        vals = inline_vals;
      }
      fn(s.node, vals, static_cast<int>(s.dims), s.value);
    }
  }

  /// Current number of entries across all node caches.
  std::size_t size() const { return size_; }

  /// Payload bytes currently charged against capacity_bytes (0 unless the
  /// byte budget is active).
  std::uint64_t payload_bytes() const { return bytes_; }

  /// Test observability: payloads in MRU -> LRU chain order (O(size)).
  /// Lets tests pin that recency survives rehash/backward-shift moves.
  std::vector<V> LruOrderForTest() const {
    std::vector<V> out;
    out.reserve(size_);
    for (std::uint32_t i = lru_head_; i != kNil; i = slots_[i].lru_next) {
      out.push_back(slots_[i].value);
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kEmptyDims = 0xFFFFFFFFu;
  static constexpr std::size_t kMinSlots = 16;

  struct Slot {
    std::uint64_t hash = 0;
    std::uint64_t lo = 0;  // inline values, or (wide) offset into arena_
    std::uint64_t hi = 0;
    std::uint64_t bytes = 0;  // payload charge (byte-budget mode only)
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
    NodeId node = kNone;
    std::uint32_t dims = kEmptyDims;  // kEmptyDims marks a free slot
    V value{};

    bool occupied() const { return dims != kEmptyDims; }
    bool wide() const {
      return occupied() &&
             dims > static_cast<std::uint32_t>(PackedKey::kInlineDims);
    }
  };

  std::uint64_t HashKey(NodeId node, PackedKey key) const {
    return key.Hash(HashCombine(0x2545f4914f6cdd1dull,
                                static_cast<std::uint64_t>(node)));
  }

  bool SlotMatches(const Slot& s, NodeId node, PackedKey key,
                   std::uint64_t hash) const {
    if (s.hash != hash || s.node != node || s.dims != key.dims) return false;
    if (!key.wide()) return s.lo == key.lo && s.hi == key.hi;
    const Value* stored = arena_.data() + s.lo;
    const Value* probe = key.wide_data();
    for (std::uint32_t i = 0; i < key.dims; ++i) {
      if (stored[i] != probe[i]) return false;
    }
    return true;
  }

  /// Linear probe for an existing entry; kNil on miss. Charges one memory
  /// access per slot inspected (each slot is one contiguous record — this
  /// is the proxy the paper's memory-access metric counts).
  std::uint32_t FindSlot(NodeId node, PackedKey key, std::uint64_t hash) {
    if (slots_.empty()) {
      stats_->memory_accesses += 1;
      return kNil;
    }
    std::uint32_t i = static_cast<std::uint32_t>(hash & mask_);
    while (true) {
      stats_->memory_accesses += 1;
      const Slot& s = slots_[i];
      if (!s.occupied()) return kNil;
      if (SlotMatches(s, node, key, hash)) return i;
      i = (i + 1) & mask_;
    }
  }

  // --- intrusive LRU (front = most recently used) ---

  void Unlink(std::uint32_t i) {
    Slot& s = slots_[i];
    if (s.lru_prev != kNil) {
      slots_[s.lru_prev].lru_next = s.lru_next;
    } else {
      lru_head_ = s.lru_next;
    }
    if (s.lru_next != kNil) {
      slots_[s.lru_next].lru_prev = s.lru_prev;
    } else {
      lru_tail_ = s.lru_prev;
    }
    s.lru_prev = s.lru_next = kNil;
  }

  void LinkFront(std::uint32_t i) {
    Slot& s = slots_[i];
    s.lru_prev = kNil;
    s.lru_next = lru_head_;
    if (lru_head_ != kNil) slots_[lru_head_].lru_prev = i;
    lru_head_ = i;
    if (lru_tail_ == kNil) lru_tail_ = i;
  }

  void MoveToFront(std::uint32_t i) {
    if (lru_head_ == i) return;
    Unlink(i);
    LinkFront(i);
  }

  /// An entry physically moved from slot `from` to slot `to` (backward
  /// shift): repoint its LRU neighbours (and head/tail) at the new index.
  void PatchLinksAfterMove(std::uint32_t to) {
    Slot& s = slots_[to];
    if (s.lru_prev != kNil) {
      slots_[s.lru_prev].lru_next = to;
    } else {
      lru_head_ = to;
    }
    if (s.lru_next != kNil) {
      slots_[s.lru_next].lru_prev = to;
    } else {
      lru_tail_ = to;
    }
  }

  /// Tombstone-free deletion: unlink, clear, then backward-shift the probe
  /// chain so linear probing invariants hold without deleted markers.
  void EraseSlot(std::uint32_t i) {
    Slot& victim = slots_[i];
    if (victim.wide()) arena_live_ -= victim.dims;
    Unlink(i);
    victim.value = V{};
    victim.dims = kEmptyDims;
    bytes_ -= victim.bytes;
    victim.bytes = 0;
    --size_;
    std::uint32_t hole = i;
    std::uint32_t j = (i + 1) & mask_;
    while (slots_[j].occupied()) {
      const std::uint32_t ideal =
          static_cast<std::uint32_t>(slots_[j].hash & mask_);
      // j's entry may shift back into the hole only if its ideal slot is
      // cyclically at or before the hole (i.e. the hole lies on its probe
      // path).
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = std::move(slots_[j]);
        PatchLinksAfterMove(hole);
        slots_[j].value = V{};
        slots_[j].dims = kEmptyDims;
        slots_[j].lru_prev = slots_[j].lru_next = kNil;
        hole = j;
      }
      j = (j + 1) & mask_;
    }
  }

  // Max load factor 1/2: misses pay the full probe chain up to the next
  // empty slot, so the table trades memory for short chains (~1.5 probes
  // per hit, ~2.5 per miss in expectation, vs ~8.5 per miss at 3/4 load).
  void EnsureSpace() {
    if (slots_.empty()) {
      std::size_t want = kMinSlots;
      if (bounded_) {
        // Size bounded caches for their full budget up front (capped so a
        // huge nominal budget does not preallocate the world).
        const std::uint64_t budget =
            std::min<std::uint64_t>(options_.capacity, 1u << 20);
        while (want < budget * 2) want <<= 1;
      }
      slots_.assign(want, Slot{});
      mask_ = want - 1;
      return;
    }
    if ((size_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
  }

  std::uint32_t FindEmpty(std::uint64_t hash) const {
    std::uint32_t i = static_cast<std::uint32_t>(hash & mask_);
    while (slots_[i].occupied()) i = (i + 1) & mask_;
    return i;
  }

  void TrackBytePeak() {
    stats_->cache_bytes_peak =
        std::max<std::uint64_t>(stats_->cache_bytes_peak, bytes_);
  }

  void InsertFresh(NodeId node, PackedKey key, std::uint64_t hash, V value,
                   std::uint64_t payload_bytes) {
    const std::uint32_t i = FindEmpty(hash);
    Slot& s = slots_[i];
    s.hash = hash;
    s.node = node;
    s.dims = key.dims;
    s.bytes = payload_bytes;
    bytes_ += payload_bytes;
    if (key.wide()) {
      // Spill path: intern the borrowed values. Compact first if eviction
      // churn left the arena mostly garbage (bounded caches never rehash in
      // steady state, so this is their reclamation point).
      if (arena_.size() > 2 * arena_live_ + 64) CompactArena();
      s.lo = arena_.size();
      s.hi = 0;
      arena_.insert(arena_.end(), key.wide_data(), key.wide_data() + key.dims);
      arena_live_ += key.dims;
      stats_->memory_accesses += key.dims;
    } else {
      s.lo = key.lo;
      s.hi = key.hi;
    }
    s.value = std::move(value);
    LinkFront(i);
    ++size_;
    stats_->memory_accesses += 1;
  }

  /// Doubling rehash. Walks the LRU chain MRU->LRU and re-links in order,
  /// so recency survives growth; wide-key arena segments are compacted into
  /// a fresh arena as a side effect.
  void Rehash(std::size_t new_slot_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{});
    mask_ = new_slot_count - 1;
    std::vector<Value> old_arena = std::move(arena_);
    arena_.clear();
    arena_.reserve(arena_live_);
    const std::uint32_t old_head = lru_head_;
    lru_head_ = lru_tail_ = kNil;
    for (std::uint32_t i = old_head; i != kNil;) {
      Slot& s = old[i];
      const std::uint32_t next = s.lru_next;
      const std::uint32_t j = FindEmpty(s.hash);
      Slot& t = slots_[j];
      t.hash = s.hash;
      t.node = s.node;
      t.dims = s.dims;
      t.bytes = s.bytes;
      if (s.wide()) {
        t.lo = arena_.size();
        t.hi = 0;
        arena_.insert(arena_.end(), old_arena.data() + s.lo,
                      old_arena.data() + s.lo + s.dims);
      } else {
        t.lo = s.lo;
        t.hi = s.hi;
      }
      t.value = std::move(s.value);
      // Append at tail: the walk is MRU-first, so order is preserved.
      t.lru_prev = lru_tail_;
      t.lru_next = kNil;
      if (lru_tail_ != kNil) slots_[lru_tail_].lru_next = j;
      lru_tail_ = j;
      if (lru_head_ == kNil) lru_head_ = j;
      i = next;
    }
  }

  /// Rewrites the arena with only live segments, updating slot offsets.
  void CompactArena() {
    std::vector<Value> fresh;
    fresh.reserve(arena_live_);
    for (std::uint32_t i = lru_head_; i != kNil; i = slots_[i].lru_next) {
      Slot& s = slots_[i];
      if (!s.wide()) continue;
      const std::uint64_t offset = fresh.size();
      fresh.insert(fresh.end(), arena_.data() + s.lo,
                   arena_.data() + s.lo + s.dims);
      s.lo = offset;
    }
    arena_ = std::move(fresh);
  }

  CacheOptions options_;
  bool bounded_;
  bool byte_bounded_;
  ExecStats* stats_;
  std::vector<Slot> slots_;
  std::vector<Value> arena_;      // interned wide-key values (spill path)
  std::size_t arena_live_ = 0;    // values in arena_ owned by live entries
  std::uint64_t bytes_ = 0;       // payload bytes charged to capacity_bytes
  std::uint64_t mask_ = 0;
  std::uint32_t lru_head_ = kNil;  // most recently used
  std::uint32_t lru_tail_ = kNil;  // least recently used
  std::size_t size_ = 0;
};

namespace cache_internal {

/// Atomic payload cell for the hot-slot read path (see StripedCacheManager).
/// Trivially copyable payloads (count mode's uint64_t) are a plain
/// std::atomic; shared_ptr payloads (eval mode's FactorizedSetPtr) go
/// through the std::atomic_load/atomic_store free functions — libstdc++
/// backs those with a small mutex pool, which is TSan-instrumented and
/// never held across user code, so the read path stays wait-free in
/// practice for counts and lock-brief for pointers.
template <typename V, bool kTrivial = std::is_trivially_copyable<V>::value>
struct HotPayload;

template <typename V>
struct HotPayload<V, true> {
  std::atomic<V> cell{};
  V load() const { return cell.load(std::memory_order_acquire); }
  void store(const V& v) { cell.store(v, std::memory_order_release); }
};

template <typename V>
struct HotPayload<V, false> {
  V cell{};
  V load() const {
    return std::atomic_load_explicit(&cell, std::memory_order_acquire);
  }
  void store(const V& v) {
    std::atomic_store_explicit(&cell, v, std::memory_order_release);
  }
};

}  // namespace cache_internal

/// The shared cache of CLFTJ-P under CacheOptions::Sharing::kStriped: one
/// logical (node, adhesion key) -> payload table that all shards of a
/// parallel run probe and fill, so a subtree computed by any shard is a hit
/// for every other shard — the cross-shard reuse that private capacity/K
/// caches cannot provide.
///
/// Layout: S lock-striped segments, each an independent CacheManager (the
/// flat open-addressing table with intrusive LRU) behind its own mutex,
/// with its own ExecStats sink and a per-stripe slice of the global
/// entry/byte budget (slices sum exactly to the global budget). A key's
/// stripe is chosen from the *top* bits of the same (node, key) hash the
/// segment table indexes with its *bottom* bits, so striping never skews a
/// segment's probe distribution. Eviction is LRU per stripe: recency is
/// local to a segment, which is what keeps a cache call one mutex + one
/// flat-table operation instead of a globally ordered structure.
///
/// Concurrency contract: Lookup copies the payload out under the stripe
/// mutex (a pointer into a slot would dangle the moment another shard
/// inserts), and Insert publishes under the same mutex, so a payload
/// frozen-before-insert is safely readable by every other thread. Stats
/// are charged to the owning stripe (hits, misses, probe memory accesses,
/// evictions, peaks) and aggregated deterministically in ascending stripe
/// order by AggregatedStats after the workers join.
///
/// Hot-slot read path (`hot_reads` in the constructor; used by the
/// persistent per-shape caches, see docs/serving.md "Batch admission"):
/// each stripe carries a small direct-mapped side array of seqlock-
/// published entries. A successful Insert and a locked Lookup hit publish
/// the (key, payload) into the hot slot for its hash; subsequent Lookups
/// probe the hot slot *before* taking the stripe mutex and return on a
/// stable match, so batch members polling the same hot subtree never
/// serialize. Every hot-slot field is individually atomic (the seq check
/// only guards against a *mixed* snapshot from two writes), writers are
/// already serialized by the stripe mutex, and wide keys are never
/// published. Hot hits skip the stripe's stat counters and LRU refresh
/// (recency becomes approximate for hot keys — acceptable for the
/// persistent caches, which are the only users); EvictIf clears a
/// stripe's hot slots so targeted invalidation cannot leave a deleted
/// entry readable. An entry evicted by *capacity* churn may linger in a
/// hot slot: that is safe, because cached payloads are deterministic per
/// (generation, key) — serving one is bit-identical to recomputing it.
template <typename V>
class StripedCacheManager {
 public:
  /// `workers` sizes the auto stripe count; `options` carries the *global*
  /// budget (split across stripes here — callers must not pre-divide).
  /// `hot_reads` engages the lock-free hot-slot read path above.
  StripedCacheManager(int num_nodes, const CacheOptions& options, int workers,
                      bool hot_reads = false)
      : stripe_shift_(0), hot_reads_(hot_reads) {
    const int count = ChooseStripes(options, workers);
    for (int s = 1; s < count; s <<= 1) ++stripe_shift_;
    stripes_.reserve(count);
    const std::uint64_t cap = options.capacity;
    const std::uint64_t cap_bytes = options.capacity_bytes;
    for (int s = 0; s < count; ++s) {
      CacheOptions slice = options;
      const std::uint64_t n = static_cast<std::uint64_t>(count);
      const std::uint64_t i = static_cast<std::uint64_t>(s);
      // Remainder-spread split: stripe budgets sum *exactly* to the global
      // budget (no flooring slack), and ChooseStripes guarantees every
      // bounded stripe gets at least 1.
      if (cap > 0) slice.capacity = cap / n + (i < cap % n ? 1 : 0);
      if (cap_bytes > 0) {
        slice.capacity_bytes = cap_bytes / n + (i < cap_bytes % n ? 1 : 0);
      }
      stripes_.push_back(std::make_unique<Stripe>(num_nodes, slice,
                                                  hot_reads ? kHotSlots : 0));
    }
  }

  /// Copies the payload cached for (node, key) into *out and returns true,
  /// or returns false on a miss. With hot_reads, a stable hot-slot match
  /// returns without touching the stripe mutex; otherwise counting, LRU
  /// refresh and hot publication happen in the owning stripe under its
  /// mutex.
  bool Lookup(NodeId node, PackedKey key, V* out) {
    const std::uint64_t hash = HashFor(node, key);
    Stripe& s = StripeAt(hash);
    if (!s.hot.empty() && !key.wide() && HotProbe(s, hash, node, key, out)) {
      s.hot_hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    std::lock_guard<std::mutex> lock(s.mu);
    const V* hit = s.cache.Lookup(node, key);
    if (hit == nullptr) return false;
    *out = *hit;
    if (!s.hot.empty() && !key.wide()) PublishHot(s, hash, node, key, *out);
    return true;
  }

  /// Inserts (node, key) -> value into the owning stripe, subject to that
  /// stripe's slice of the global budget. Concurrent same-key inserts
  /// serialize on the stripe mutex; the last one wins (both are correct —
  /// cached subtree results for one key are equal by construction). Only
  /// entries the stripe *accepted* are published to the hot slots.
  void Insert(NodeId node, PackedKey key, V value) {
    const std::uint64_t hash = HashFor(node, key);
    Stripe& s = StripeAt(hash);
    std::lock_guard<std::mutex> lock(s.mu);
    const bool publish = !s.hot.empty() && !key.wide();
    V copy = publish ? value : V{};
    if (s.cache.Insert(node, key, std::move(value)) && publish) {
      PublishHot(s, hash, node, key, copy);
    }
  }

  /// Per-stripe counters summed in ascending stripe order — flow counters
  /// *and* peaks (the stripes coexist, so the table's peak footprint is the
  /// sum of stripe peaks, an upper bound on the instantaneous global peak).
  /// Call only when no worker is mid-operation (after joins).
  ExecStats AggregatedStats() const {
    ExecStats out;
    std::uint64_t entries_peak = 0;
    std::uint64_t bytes_peak = 0;
    for (const auto& s : stripes_) {
      out.Merge(s->stats);  // flow counters sum; Merge max-merges peaks...
      entries_peak += s->stats.cache_entries_peak;
      bytes_peak += s->stats.cache_bytes_peak;
    }
    out.cache_entries_peak = entries_peak;  // ...so overwrite with the sums
    out.cache_bytes_peak = bytes_peak;
    return out;
  }

  /// Targeted invalidation across all stripes (each under its mutex); see
  /// CacheManager::EvictIf. Clears the stripe's hot slots wholesale — the
  /// predicate cannot be evaluated against a hot slot's published key
  /// without re-deriving its adhesion values, and invalidation correctness
  /// requires that no evicted entry stays readable. Returns the total
  /// number of entries removed.
  template <typename Pred>
  std::size_t EvictIf(const Pred& pred) {
    std::size_t total = 0;
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lock(s->mu);
      total += s->cache.EvictIf(pred);
      ClearHot(*s);
    }
    return total;
  }

  /// Read-only iteration over every live entry in every stripe (each under
  /// its mutex); see CacheManager::ForEach. Used by cross-shape seeding.
  template <typename Fn>
  void ForEach(const Fn& fn) {
    for (const auto& s : stripes_) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->cache.ForEach(fn);
    }
  }

  /// Lock-free hot-slot hits served since construction (test/bench
  /// observability; summed over stripes, relaxed reads).
  std::uint64_t HotHits() const {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) {
      total += s->hot_hits.load(std::memory_order_relaxed);
    }
    return total;
  }

  bool hot_reads_enabled() const { return hot_reads_; }

  int stripe_count() const { return static_cast<int>(stripes_.size()); }

  /// Entries currently cached across all stripes (quiescent callers only).
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : stripes_) total += s->cache.size();
    return total;
  }

  /// Payload bytes currently charged across all stripes.
  std::uint64_t payload_bytes() const {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s->cache.payload_bytes();
    return total;
  }

  /// Test observability: each stripe's (capacity, capacity_bytes) slice, in
  /// stripe order — lets tests pin that slices sum to the global budget.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> StripeBudgetsForTest()
      const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    out.reserve(stripes_.size());
    for (const auto& s : stripes_) {
      out.emplace_back(s->options.capacity, s->options.capacity_bytes);
    }
    return out;
  }

  /// Stripe-count policy: the smallest power of two >= 2x the worker count
  /// (clamped to [1, 64]) keeps the expected contention on any one mutex
  /// low without scattering a bounded budget too thin; a bounded budget
  /// additionally clamps the count so every stripe's slice is >= 1 entry
  /// (and >= 1 byte in byte mode). An explicit CacheOptions::stripes wins,
  /// rounded up to a power of two, under the same budget clamp.
  static int ChooseStripes(const CacheOptions& options, int workers) {
    int want;
    if (options.stripes > 0) {
      want = 1;
      while (want < options.stripes && want < 1024) want <<= 1;
    } else {
      const int w = workers < 1 ? 1 : workers;
      want = 1;
      while (want < 2 * w && want < 64) want <<= 1;
    }
    while (want > 1 &&
           ((options.capacity > 0 &&
             static_cast<std::uint64_t>(want) > options.capacity) ||
            (options.capacity_bytes > 0 &&
             static_cast<std::uint64_t>(want) > options.capacity_bytes))) {
      want >>= 1;
    }
    return want;
  }

 private:
  /// Hot slots per stripe (direct-mapped). Small on purpose: the point is
  /// the handful of subtree keys a batch polls repeatedly, not a second
  /// cache tier.
  static constexpr int kHotSlots = 64;
  static constexpr std::uint32_t kHotEmpty = 0xFFFFFFFFu;

  /// One seqlock-published entry: seq even = stable, odd = write in flight
  /// (writers are serialized by the stripe mutex). All fields are
  /// individually atomic, so the only hazard a reader must detect is a
  /// snapshot mixing two different writes — the seq double-check does that.
  struct HotSlot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> lo{0};
    std::atomic<std::uint64_t> hi{0};
    std::atomic<NodeId> node{kNone};
    std::atomic<std::uint32_t> dims{kHotEmpty};
    cache_internal::HotPayload<V> value;
  };

  // One segment: mutex + private stats + the PR 1 flat table over a slice
  // of the global budget. Cache-line aligned so neighbouring stripes'
  // mutexes never share a line (the unique_ptr indirection already gives
  // each stripe its own allocation; the alignment makes it explicit).
  struct alignas(64) Stripe {
    Stripe(int num_nodes, const CacheOptions& slice, int hot_slots)
        : options(slice), cache(num_nodes, slice, &stats), hot(hot_slots) {}
    CacheOptions options;
    ExecStats stats;
    std::mutex mu;
    CacheManager<V> cache;
    std::vector<HotSlot> hot;  // empty unless hot_reads
    std::atomic<std::uint64_t> hot_hits{0};
  };

  std::uint64_t HashFor(NodeId node, PackedKey key) const {
    // Same hash the segment table uses (seed constant must match
    // CacheManager::HashKey); the table indexes with the bottom bits, the
    // stripe choice takes the top bits, and the hot slot the middle bits,
    // so no two ever correlate.
    return key.Hash(HashCombine(0x2545f4914f6cdd1dull,
                                static_cast<std::uint64_t>(node)));
  }

  Stripe& StripeAt(std::uint64_t hash) {
    if (stripe_shift_ == 0) return *stripes_[0];  // >> 64 would be UB
    return *stripes_[hash >> (64 - stripe_shift_)];
  }

  static std::size_t HotIndex(std::uint64_t hash) {
    return static_cast<std::size_t>((hash >> 32) &
                                    static_cast<std::uint64_t>(kHotSlots - 1));
  }

  /// Seqlock read. Memory-order contract: every field load is acquire, so
  /// the trailing seq load cannot be reordered before them; if a field
  /// value from a newer write is observed, its (release) store
  /// happens-after that writer's odd seq store, which forces the trailing
  /// seq load to observe seq != s1 and the probe to fall back to the
  /// locked path. A stable even pair therefore brackets one consistent
  /// published entry.
  bool HotProbe(Stripe& s, std::uint64_t hash, NodeId node, PackedKey key,
                V* out) {
    const HotSlot& h = s.hot[HotIndex(hash)];
    const std::uint64_t s1 = h.seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) return false;
    const std::uint64_t lo = h.lo.load(std::memory_order_acquire);
    const std::uint64_t hi = h.hi.load(std::memory_order_acquire);
    const NodeId slot_node = h.node.load(std::memory_order_acquire);
    const std::uint32_t dims = h.dims.load(std::memory_order_acquire);
    V value = h.value.load();
    const std::uint64_t s2 = h.seq.load(std::memory_order_acquire);
    if (s1 != s2) return false;
    if (dims == kHotEmpty || slot_node != node || dims != key.dims ||
        lo != key.lo || hi != key.hi) {
      return false;
    }
    *out = std::move(value);
    return true;
  }

  /// Seqlock publish; caller holds the stripe mutex (writers serialized).
  void PublishHot(Stripe& s, std::uint64_t hash, NodeId node, PackedKey key,
                  const V& value) {
    HotSlot& h = s.hot[HotIndex(hash)];
    const std::uint64_t s0 = h.seq.load(std::memory_order_relaxed);
    h.seq.store(s0 + 1, std::memory_order_release);  // odd: readers back off
    h.lo.store(key.lo, std::memory_order_release);
    h.hi.store(key.hi, std::memory_order_release);
    h.node.store(node, std::memory_order_release);
    h.dims.store(key.dims, std::memory_order_release);
    h.value.store(value);
    h.seq.store(s0 + 2, std::memory_order_release);
  }

  /// Empties a stripe's hot slots (caller holds the stripe mutex). Drops
  /// payload references too, so invalidated factorized sets are released.
  void ClearHot(Stripe& s) {
    for (HotSlot& h : s.hot) {
      const std::uint64_t s0 = h.seq.load(std::memory_order_relaxed);
      h.seq.store(s0 + 1, std::memory_order_release);
      h.dims.store(kHotEmpty, std::memory_order_release);
      h.value.store(V{});
      h.seq.store(s0 + 2, std::memory_order_release);
    }
  }

  int stripe_shift_;  // log2(stripe count); 0 means a single stripe
  bool hot_reads_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// The cache a single run state (CountRun/EvalRun) sees: either a private
/// CacheManager owned by the run (sequential CLFTJ, or CLFTJ-P under
/// Sharing::kPrivate) or a borrowed pointer to the run-wide
/// StripedCacheManager (Sharing::kStriped). One predictable branch per
/// call; both paths return the payload by value so call sites are uniform
/// and never hold a pointer into a table another thread may mutate.
template <typename V>
class RunCache {
 public:
  RunCache(int num_nodes, const CacheOptions& options, ExecStats* stats,
           StripedCacheManager<V>* shared = nullptr)
      : shared_(shared), private_(num_nodes, options, stats) {}

  bool Lookup(NodeId node, PackedKey key, V* out) {
    if (shared_ != nullptr) return shared_->Lookup(node, key, out);
    const V* hit = private_.Lookup(node, key);
    if (hit == nullptr) return false;
    *out = *hit;
    return true;
  }

  void Insert(NodeId node, PackedKey key, V value) {
    if (shared_ != nullptr) {
      shared_->Insert(node, key, std::move(value));
    } else {
      private_.Insert(node, key, std::move(value));
    }
  }

 private:
  StripedCacheManager<V>* shared_;  // borrowed; outlives the run
  CacheManager<V> private_;         // unused (and empty) when shared_ set
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_CACHE_H_
