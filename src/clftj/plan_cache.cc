#include "clftj/plan_cache.h"

#include <utility>

#include "query/shape.h"
#include "util/timer.h"

namespace clftj {

std::shared_ptr<const CachedPlan> PlanCache::Resolve(
    const Query& q, const Database& db, const PlannerOptions& planner,
    const CacheOptions& cache_options, ExecStats* stats) {
  const std::string key =
      std::to_string(db.generation()) + "|" + CanonicalShapeKey(q);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      if (stats != nullptr) ++stats->plan_cache_hits;
      return it->second->plan;
    }
  }

  // Resolve outside the lock: planning can be expensive and must not
  // serialize unrelated shapes behind one mutex.
  Timer timer;
  auto plan = std::make_shared<const CachedPlan>(
      CachedPlan::Resolve(q, db, std::nullopt, planner, cache_options));
  const std::uint64_t resolve_ns =
      static_cast<std::uint64_t>(timer.Seconds() * 1e9);
  if (stats != nullptr) {
    ++stats->plan_cache_misses;
    stats->plan_resolve_ns += resolve_ns;
  }

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Lost a resolve race: adopt the winner so every caller shares one
    // instance (and the persistent caches keyed per shape see one plan).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->plan;
  }
  lru_.push_front(Entry{key, plan});
  index_[key] = lru_.begin();
  while (capacity_ > 0 && lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return plan;
}

std::size_t PlanCache::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace clftj
