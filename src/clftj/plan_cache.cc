#include "clftj/plan_cache.h"

#include <utility>

#include "query/shape.h"
#include "util/timer.h"

namespace clftj {

namespace {

// Each referenced relation's current visible cardinality, in first-mention
// atom order (deterministic; duplicates skipped).
std::vector<std::pair<std::string, std::size_t>> RelationSizes(
    const Query& q, const Database& db) {
  std::vector<std::pair<std::string, std::size_t>> sizes;
  for (const Atom& atom : q.atoms()) {
    bool seen = false;
    for (const auto& [name, n] : sizes) {
      if (name == atom.relation) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    const Relation* rel = db.Find(atom.relation);
    sizes.emplace_back(atom.relation, rel != nullptr ? rel->size() : 0);
  }
  return sizes;
}

// True iff some relation's cardinality moved beyond 2x of the baseline the
// plan was resolved against, or crossed zero — the point where cost-based
// choices (TD selection, variable order) could plausibly flip.
bool StatsDrifted(const std::vector<std::pair<std::string, std::size_t>>& base,
                  const Database& db) {
  for (const auto& [name, n0] : base) {
    const Relation* rel = db.Find(name);
    const std::size_t n1 = rel != nullptr ? rel->size() : 0;
    if ((n0 == 0) != (n1 == 0)) return true;
    if (n1 > 2 * n0 || 2 * n1 < n0) return true;
  }
  return false;
}

}  // namespace

std::shared_ptr<const CachedPlan> PlanCache::Resolve(
    const Query& q, const Database& db, const PlannerOptions& planner,
    const CacheOptions& cache_options, ExecStats* stats) {
  const std::string key = CanonicalShapeKey(q);
  const std::uint64_t generation = db.generation();
  const std::uint64_t minor = db.minor_version();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      Entry& entry = *it->second;
      if (entry.generation == generation &&
          (entry.minor == minor || !StatsDrifted(entry.sizes, db))) {
        entry.minor = minor;
        lru_.splice(lru_.begin(), lru_, it->second);
        if (stats != nullptr) ++stats->plan_cache_hits;
        return entry.plan;
      }
      // Stale (generation bump, or cardinalities drifted past the plan's
      // baseline): fall through and re-resolve, charged as a miss.
    }
  }

  // Resolve outside the lock: planning can be expensive and must not
  // serialize unrelated shapes behind one mutex.
  Timer timer;
  auto plan = std::make_shared<const CachedPlan>(
      CachedPlan::Resolve(q, db, std::nullopt, planner, cache_options));
  const std::uint64_t resolve_ns =
      static_cast<std::uint64_t>(timer.Seconds() * 1e9);
  if (stats != nullptr) {
    ++stats->plan_cache_misses;
    stats->plan_resolve_ns += resolve_ns;
  }
  std::vector<std::pair<std::string, std::size_t>> sizes =
      RelationSizes(q, db);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = *it->second;
    if (entry.generation == generation && entry.minor == minor) {
      // Lost a resolve race against the same data versions: adopt the
      // winner so every caller shares one instance (and the persistent
      // caches keyed per shape see one plan).
      lru_.splice(lru_.begin(), lru_, it->second);
      return entry.plan;
    }
    // The resident entry is the stale one we bypassed: refresh in place.
    entry.plan = plan;
    entry.generation = generation;
    entry.minor = minor;
    entry.sizes = std::move(sizes);
    lru_.splice(lru_.begin(), lru_, it->second);
    return plan;
  }
  lru_.push_front(Entry{key, plan, generation, minor, std::move(sizes)});
  index_[key] = lru_.begin();
  while (capacity_ > 0 && lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return plan;
}

std::size_t PlanCache::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::vector<std::string> SubtreeSignatures(const CachedPlan& plan,
                                           const std::vector<Atom>& atoms) {
  const int num_nodes = static_cast<int>(plan.cacheable.size());
  std::vector<std::string> out(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (!plan.cacheable[n] || !plan.HasSubtree(n)) continue;
    const int lo = plan.first_depth[n];
    const int hi = plan.subtree_last_depth[n];
    const std::vector<VarId>& adhesion = plan.adhesion_vars[n];
    const auto owned = [&](VarId x) {
      const int r = plan.var_rank[x];
      return r >= lo && r <= hi;
    };
    const auto adhesion_index = [&](VarId x) {
      for (std::size_t i = 0; i < adhesion.size(); ++i) {
        if (adhesion[i] == x) return static_cast<int>(i);
      }
      return kNone;
    };
    // Canonical owned-variable numbering: first occurrence scanning the
    // participating atoms in textual order (the same scheme
    // CanonicalShapeKey uses for whole queries).
    std::vector<int> owned_number(plan.var_rank.size(), kNone);
    int next_owned = 0;
    std::string sig;
    bool matchable = true;
    for (const Atom& atom : atoms) {
      bool participates = false;
      for (const Term& t : atom.terms) {
        if (t.is_variable && owned(t.var)) {
          participates = true;
          break;
        }
      }
      if (!participates) continue;
      sig += atom.relation;
      sig += '(';
      bool first = true;
      for (const Term& t : atom.terms) {
        if (!first) sig += ',';
        first = false;
        if (!t.is_variable) {
          sig += '=';
          sig += std::to_string(t.constant);
          continue;
        }
        if (owned(t.var)) {
          if (owned_number[t.var] == kNone) owned_number[t.var] = next_owned++;
          sig += 'v';
          sig += std::to_string(owned_number[t.var]);
          continue;
        }
        const int ai = adhesion_index(t.var);
        if (ai == kNone) {
          // The subjoin depends on a bound variable that is not part of
          // the adhesion key: its cached counts are conditioned on context
          // the signature cannot name. Never matchable.
          matchable = false;
          break;
        }
        sig += 'a';
        sig += std::to_string(ai);
      }
      if (!matchable) break;
      sig += ");";
    }
    // Pin the adhesion arity: a bag may carry an adhesion variable that
    // appears in no participating atom, and keys of different dims must
    // never match positionally.
    sig += '#';
    sig += std::to_string(adhesion.size());
    if (matchable) out[n] = std::move(sig);
  }
  return out;
}

}  // namespace clftj
