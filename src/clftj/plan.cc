#include "clftj/plan.h"

#include <algorithm>

#include "util/check.h"

namespace clftj {

CachedPlan CachedPlan::Build(const Query& q, const Database& db, TdPlan base,
                             const CacheOptions& cache_options) {
  CachedPlan plan;
  plan.order = base.order;
  const int n = q.num_vars();
  CLFTJ_CHECK(static_cast<int>(plan.order.size()) == n);
  CLFTJ_CHECK_MSG(base.td.IsStronglyCompatibleWith(plan.order),
                  "order is not strongly compatible with the TD");
  plan.var_rank.assign(n, kNone);
  for (int d = 0; d < n; ++d) plan.var_rank[plan.order[d]] = d;

  const TreeDecomposition& td = base.td;
  const int m = td.num_nodes();
  plan.root = td.root();
  const std::vector<NodeId> owners = td.Owners(n);

  plan.owner_of_depth.assign(n, kNone);
  plan.first_depth.assign(m, n);
  plan.last_depth.assign(m, -1);
  for (int d = 0; d < n; ++d) {
    const NodeId v = owners[plan.order[d]];
    CLFTJ_CHECK(v != kNone);
    plan.owner_of_depth[d] = v;
    plan.first_depth[v] = std::min(plan.first_depth[v], d);
    plan.last_depth[v] = std::max(plan.last_depth[v], d);
  }
  for (NodeId v = 0; v < m; ++v) {
    CLFTJ_CHECK_MSG(plan.last_depth[v] >= 0,
                    "a TD node owns no variable; eliminate redundant bags");
    // Owned depths must be contiguous and all belong to v.
    for (int d = plan.first_depth[v]; d <= plan.last_depth[v]; ++d) {
      CLFTJ_CHECK(plan.owner_of_depth[d] == v);
    }
  }

  plan.children.assign(m, {});
  plan.subtree_last_depth.assign(m, -1);
  for (NodeId v = 0; v < m; ++v) plan.children[v] = td.children(v);
  // Subtree intervals: process nodes in reverse preorder so children are
  // done before parents.
  const std::vector<NodeId> pre = td.Preorder();
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const NodeId v = *it;
    int last = plan.last_depth[v];
    for (const NodeId c : plan.children[v]) {
      last = std::max(last, plan.subtree_last_depth[c]);
    }
    plan.subtree_last_depth[v] = last;
    // Contiguity of the subtree interval (strong compatibility in action):
    // children segments must follow the node's own segment back to back.
    int expected = plan.last_depth[v] + 1;
    for (const NodeId c : plan.children[v]) {
      CLFTJ_CHECK_MSG(plan.first_depth[c] == expected,
                      "subtree depth interval is not contiguous");
      expected = plan.subtree_last_depth[c] + 1;
    }
  }

  plan.adhesion_vars.assign(m, {});
  plan.cacheable.assign(m, false);
  plan.maintain.assign(m, false);
  for (NodeId v = 0; v < m; ++v) {
    std::vector<VarId> adhesion = td.Adhesion(v);
    std::sort(adhesion.begin(), adhesion.end(),
              [&plan](VarId a, VarId b) {
                return plan.var_rank[a] < plan.var_rank[b];
              });
    // All adhesion variables are owned by ancestors, hence assigned before
    // this node is entered.
    for (const VarId x : adhesion) {
      CLFTJ_CHECK(plan.var_rank[x] < plan.first_depth[v]);
    }
    plan.adhesion_vars[v] = std::move(adhesion);
    plan.cacheable[v] =
        cache_options.enabled && v != plan.root &&
        static_cast<int>(plan.adhesion_vars[v].size()) <=
            cache_options.max_dimension;
  }
  for (const NodeId v : pre) {
    const NodeId p = td.parent(v);
    plan.maintain[v] = plan.cacheable[v] || (p != kNone && plan.maintain[p]);
  }

  // Support statistics for the threshold admission policy: for each
  // variable, the maximum occurrence count of each value over all columns
  // where the variable appears.
  if (cache_options.enabled &&
      cache_options.admission == CacheOptions::Admission::kSupportThreshold) {
    plan.support.resize(n);
    for (const Atom& atom : q.atoms()) {
      const Relation& rel = db.Get(atom.relation);
      for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
        if (!atom.terms[pos].is_variable) continue;
        const VarId x = atom.terms[pos].var;
        std::unordered_map<Value, std::uint64_t> column_counts;
        for (std::size_t i = 0; i < rel.size(); ++i) {
          ++column_counts[rel.At(i, static_cast<int>(pos))];
        }
        auto& agg = plan.support[x];
        for (const auto& [value, count] : column_counts) {
          auto [it, inserted] = agg.emplace(value, count);
          if (!inserted) it->second = std::max(it->second, count);
        }
      }
    }
  }

  plan.base = std::move(base);
  return plan;
}

}  // namespace clftj
