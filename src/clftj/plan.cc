#include "clftj/plan.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace clftj {

AdmissionFilter AdmissionFilter::Build(
    std::vector<std::vector<Value>> admissible, bool admit_all) {
  AdmissionFilter filter;
  filter.admit_all_ = admit_all;
  if (admit_all) return filter;
  filter.vars_.resize(admissible.size());
  for (std::size_t x = 0; x < admissible.size(); ++x) {
    std::vector<Value>& values = admissible[x];
    VarFilter& f = filter.vars_[x];
    if (values.empty()) continue;  // nothing admissible: empty dense bitmap
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    const Value lo = values.front();
    const Value hi = values.back();
    // Subtract in unsigned space: hi - lo can overflow Value when the
    // admissible values span more than half the int64 domain.
    const std::uint64_t range = static_cast<std::uint64_t>(hi) -
                                static_cast<std::uint64_t>(lo) + 1;
    // Dense bitmap when the range is compact relative to the population
    // (typical for graph node ids); sorted-array fallback otherwise so a
    // pathological domain cannot blow up plan memory.
    if (range != 0 && range <= 64 * values.size() + 4096) {
      f.base = lo;
      f.bits.assign((range + 63) / 64, 0);
      for (const Value v : values) {
        const std::uint64_t idx =
            static_cast<std::uint64_t>(v) - static_cast<std::uint64_t>(lo);
        f.bits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      }
    } else {
      f.sorted = std::move(values);
    }
  }
  return filter;
}

CachedPlan CachedPlan::Build(const Query& q, const Database& db, TdPlan base,
                             const CacheOptions& cache_options) {
  CachedPlan plan;
  plan.order = base.order;
  const int n = q.num_vars();
  CLFTJ_CHECK(static_cast<int>(plan.order.size()) == n);
  CLFTJ_CHECK_MSG(base.td.IsStronglyCompatibleWith(plan.order),
                  "order is not strongly compatible with the TD");
  plan.var_rank.assign(n, kNone);
  for (int d = 0; d < n; ++d) plan.var_rank[plan.order[d]] = d;

  const TreeDecomposition& td = base.td;
  const int m = td.num_nodes();
  plan.root = td.root();
  const std::vector<NodeId> owners = td.Owners(n);

  plan.owner_of_depth.assign(n, kNone);
  plan.first_depth.assign(m, n);
  plan.last_depth.assign(m, -1);
  for (int d = 0; d < n; ++d) {
    const NodeId v = owners[plan.order[d]];
    CLFTJ_CHECK(v != kNone);
    plan.owner_of_depth[d] = v;
    plan.first_depth[v] = std::min(plan.first_depth[v], d);
    plan.last_depth[v] = std::max(plan.last_depth[v], d);
  }
  for (NodeId v = 0; v < m; ++v) {
    CLFTJ_CHECK_MSG(plan.last_depth[v] >= 0,
                    "a TD node owns no variable; eliminate redundant bags");
    // Owned depths must be contiguous and all belong to v.
    for (int d = plan.first_depth[v]; d <= plan.last_depth[v]; ++d) {
      CLFTJ_CHECK(plan.owner_of_depth[d] == v);
    }
  }

  plan.children.assign(m, {});
  plan.subtree_last_depth.assign(m, -1);
  for (NodeId v = 0; v < m; ++v) plan.children[v] = td.children(v);
  // Subtree intervals: process nodes in reverse preorder so children are
  // done before parents.
  const std::vector<NodeId> pre = td.Preorder();
  for (auto it = pre.rbegin(); it != pre.rend(); ++it) {
    const NodeId v = *it;
    int last = plan.last_depth[v];
    for (const NodeId c : plan.children[v]) {
      last = std::max(last, plan.subtree_last_depth[c]);
    }
    plan.subtree_last_depth[v] = last;
    // Contiguity of the subtree interval (strong compatibility in action):
    // children segments must follow the node's own segment back to back.
    int expected = plan.last_depth[v] + 1;
    for (const NodeId c : plan.children[v]) {
      CLFTJ_CHECK_MSG(plan.first_depth[c] == expected,
                      "subtree depth interval is not contiguous");
      expected = plan.subtree_last_depth[c] + 1;
    }
  }

  plan.adhesion_vars.assign(m, {});
  plan.cacheable.assign(m, false);
  plan.maintain.assign(m, false);
  for (NodeId v = 0; v < m; ++v) {
    std::vector<VarId> adhesion = td.Adhesion(v);
    std::sort(adhesion.begin(), adhesion.end(),
              [&plan](VarId a, VarId b) {
                return plan.var_rank[a] < plan.var_rank[b];
              });
    // All adhesion variables are owned by ancestors, hence assigned before
    // this node is entered.
    for (const VarId x : adhesion) {
      CLFTJ_CHECK(plan.var_rank[x] < plan.first_depth[v]);
    }
    plan.adhesion_vars[v] = std::move(adhesion);
    plan.cacheable[v] =
        cache_options.enabled && v != plan.root &&
        static_cast<int>(plan.adhesion_vars[v].size()) <=
            cache_options.max_dimension;
  }
  for (const NodeId v : pre) {
    const NodeId p = td.parent(v);
    plan.maintain[v] = plan.cacheable[v] || (p != kNone && plan.maintain[p]);
  }
  // Invariant relied upon by EvalRun: the cache insert for a cacheable node
  // sits on the maintain path, so a cacheable node must be maintained.
  for (NodeId v = 0; v < m; ++v) {
    CLFTJ_CHECK(!plan.cacheable[v] || plan.maintain[v]);
  }

  // Support statistics for the threshold admission policy: for each
  // variable, the maximum occurrence count of each value over all columns
  // where the variable appears, folded into an O(1) per-value filter.
  const bool need_support =
      cache_options.enabled &&
      cache_options.admission == CacheOptions::Admission::kSupportThreshold &&
      cache_options.support_threshold > 0;
  if (need_support) {
    std::vector<std::unordered_map<Value, std::uint64_t>> support(n);
    for (const Atom& atom : q.atoms()) {
      const Relation& rel = db.Get(atom.relation);
      for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
        if (!atom.terms[pos].is_variable) continue;
        const VarId x = atom.terms[pos].var;
        // Stream the column as one contiguous span; the histogram is the
        // only per-value work left. No reserve: sizing the map from
        // Stats().distinct would force a whole column-stats build, and the
        // row count over-allocates badly on skewed columns.
        std::unordered_map<Value, std::uint64_t> column_counts;
        for (const Value v : rel.Column(static_cast<int>(pos))) {
          ++column_counts[v];
        }
        auto& agg = support[x];
        for (const auto& [value, count] : column_counts) {
          auto [it, inserted] = agg.emplace(value, count);
          if (!inserted) it->second = std::max(it->second, count);
        }
      }
    }
    std::vector<std::vector<Value>> admissible(n);
    for (int x = 0; x < n; ++x) {
      for (const auto& [value, count] : support[x]) {
        if (count >= cache_options.support_threshold) {
          admissible[x].push_back(value);
        }
      }
    }
    plan.admission = AdmissionFilter::Build(std::move(admissible),
                                            /*admit_all=*/false);
  }

  plan.base = std::move(base);
  return plan;
}

CachedPlan CachedPlan::Resolve(const Query& q, const Database& db,
                               const std::optional<TdPlan>& explicit_plan,
                               const PlannerOptions& planner,
                               const CacheOptions& cache_options) {
  TdPlan base =
      explicit_plan.has_value() ? *explicit_plan : PlanQuery(q, db, planner);
  return Build(q, db, std::move(base), cache_options);
}

}  // namespace clftj
