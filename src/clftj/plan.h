#ifndef CLFTJ_CLFTJ_PLAN_H_
#define CLFTJ_CLFTJ_PLAN_H_

#include <unordered_map>
#include <vector>

#include "clftj/cache.h"
#include "data/database.h"
#include "query/query.h"
#include "td/planner.h"
#include "util/common.h"

namespace clftj {

/// The fully precomputed execution plan of CLFTJ: a TdPlan (ordered TD +
/// strongly compatible variable order) lowered to depth-indexed arrays so
/// the inner join loop does no tree walking. Built once per run.
///
/// Depth d refers to position d of the variable order; by strong
/// compatibility the depths owned by any TD node form one contiguous
/// interval and the depths of a node's whole subtree likewise.
struct CachedPlan {
  TdPlan base;
  std::vector<VarId> order;          // = base.order
  std::vector<int> var_rank;         // inverse of order

  NodeId root = kNone;
  std::vector<NodeId> owner_of_depth;        // per depth
  std::vector<int> first_depth;              // per node: first owned depth
  std::vector<int> last_depth;               // per node: last owned depth
  std::vector<int> subtree_last_depth;       // per node
  std::vector<std::vector<NodeId>> children; // per node, TD child order
  std::vector<std::vector<VarId>> adhesion_vars;  // per node, by depth order

  /// cacheable[v]: v is a non-root node whose adhesion fits the cache
  /// dimension bound, with caching enabled.
  std::vector<bool> cacheable;
  /// maintain[v]: intermediate results must be collected at v (v or an
  /// ancestor is cacheable); downward closed. Evaluation mode only builds
  /// factorized sets under maintained nodes, preserving LFTJ's footprint
  /// everywhere else (Section 3.4).
  std::vector<bool> maintain;

  /// Per-variable value support (occurrence counts in the base relations),
  /// populated only when the admission policy needs it.
  std::vector<std::unordered_map<Value, std::uint64_t>> support;

  /// True if a hit at `node` can skip anything (its subtree owns depths).
  bool HasSubtree(NodeId node) const {
    return subtree_last_depth[node] >= first_depth[node];
  }

  /// Lowers a TdPlan. Aborts if the order is not strongly compatible, some
  /// node owns no variable (run EliminateRedundantBags first), or subtree
  /// depth intervals are not contiguous.
  static CachedPlan Build(const Query& q, const Database& db, TdPlan base,
                          const CacheOptions& cache_options);
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_PLAN_H_
