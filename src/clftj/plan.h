#ifndef CLFTJ_CLFTJ_PLAN_H_
#define CLFTJ_CLFTJ_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "clftj/cache.h"
#include "data/database.h"
#include "query/query.h"
#include "td/planner.h"
#include "util/check.h"
#include "util/common.h"
#include "util/packed_key.h"

namespace clftj {

/// Precomputed per-value admission filter for the support-threshold policy
/// (line 21 of Figure 2). Instead of probing a per-variable hash map of
/// occurrence counts on every cache insert, CachedPlan::Build folds the
/// threshold into a per-variable membership structure over the *admissible*
/// values: a dense bitmap over the value range when the range is compact
/// (graph node ids usually are), or a sorted array fallback when it is not.
/// Admission then costs O(1) bit tests per key on the hot path.
class AdmissionFilter {
 public:
  /// True when every key is admissible (kAll policy, or threshold 0 — any
  /// value has support >= 0).
  bool admit_all() const { return admit_all_; }

  /// True iff value `v` of variable `x` may appear in a cached key.
  bool Admits(VarId x, Value v) const {
    if (admit_all_) return true;
    const VarFilter& f = vars_[x];
    if (!f.sorted.empty()) {
      return std::binary_search(f.sorted.begin(), f.sorted.end(), v);
    }
    if (v < f.base) return false;
    // Unsigned subtraction: v - base can overflow Value for extreme spans.
    const std::uint64_t idx =
        static_cast<std::uint64_t>(v) - static_cast<std::uint64_t>(f.base);
    if (idx >= 64 * f.bits.size()) return false;
    return (f.bits[idx >> 6] >> (idx & 63)) & 1;
  }

  /// Builds the filter from per-variable admissible value lists (values
  /// with support >= threshold). Pass admit_all = true to disable
  /// filtering entirely.
  static AdmissionFilter Build(std::vector<std::vector<Value>> admissible,
                               bool admit_all);

 private:
  struct VarFilter {
    Value base = 0;
    std::vector<std::uint64_t> bits;  // dense bitmap over [base, base+64*n)
    std::vector<Value> sorted;        // fallback when the range is sparse
  };
  std::vector<VarFilter> vars_;
  bool admit_all_ = true;
};

/// The fully precomputed execution plan of CLFTJ: a TdPlan (ordered TD +
/// strongly compatible variable order) lowered to depth-indexed arrays so
/// the inner join loop does no tree walking. Built once per run.
///
/// Depth d refers to position d of the variable order; by strong
/// compatibility the depths owned by any TD node form one contiguous
/// interval and the depths of a node's whole subtree likewise.
struct CachedPlan {
  TdPlan base;
  std::vector<VarId> order;          // = base.order
  std::vector<int> var_rank;         // inverse of order

  NodeId root = kNone;
  std::vector<NodeId> owner_of_depth;        // per depth
  std::vector<int> first_depth;              // per node: first owned depth
  std::vector<int> last_depth;               // per node: last owned depth
  std::vector<int> subtree_last_depth;       // per node
  std::vector<std::vector<NodeId>> children; // per node, TD child order
  std::vector<std::vector<VarId>> adhesion_vars;  // per node, by depth order

  /// cacheable[v]: v is a non-root node whose adhesion fits the cache
  /// dimension bound, with caching enabled.
  std::vector<bool> cacheable;
  /// maintain[v]: intermediate results must be collected at v (v or an
  /// ancestor is cacheable); downward closed. Evaluation mode only builds
  /// factorized sets under maintained nodes, preserving LFTJ's footprint
  /// everywhere else (Section 3.4). Invariant: cacheable[v] implies
  /// maintain[v] — EvalRun's cache insert lives on the maintain path and
  /// relies on it.
  std::vector<bool> maintain;

  /// O(1)-per-value admission test, populated from the support statistics
  /// when the admission policy needs it (admit-all otherwise).
  AdmissionFilter admission;

  /// True if a hit at `node` can skip anything (its subtree owns depths).
  bool HasSubtree(NodeId node) const {
    return subtree_last_depth[node] >= first_depth[node];
  }

  /// Packs the adhesion assignment µ|α of `node` from the global partial
  /// assignment (indexed by VarId). Adhesions wider than
  /// PackedKey::kInlineDims are staged in *wide_buf, which must stay alive
  /// and unmodified for as long as the returned key is used; buffers are
  /// per-node in the join runners, which is safe because a node is never
  /// re-entered while one of its own activations is live.
  PackedKey AdhesionKey(NodeId node, const Tuple& assignment,
                        Tuple* wide_buf) const {
    const std::vector<VarId>& vars = adhesion_vars[node];
    const int n = static_cast<int>(vars.size());
    if (n <= PackedKey::kInlineDims) {
      Value inline_vals[PackedKey::kInlineDims] = {0, 0};
      for (int i = 0; i < n; ++i) {
        CLFTJ_DCHECK(assignment[vars[i]] != kNullValue);
        inline_vals[i] = assignment[vars[i]];
      }
      return PackedKey::Pack(inline_vals, n);
    }
    wide_buf->clear();
    for (const VarId x : vars) {
      CLFTJ_DCHECK(assignment[x] != kNullValue);
      wide_buf->push_back(assignment[x]);
    }
    return PackedKey::Pack(wide_buf->data(), n);
  }

  /// The admission decision of line 21 of Figure 2 for node `node` and its
  /// packed adhesion key: every key value must be admissible.
  bool AdmitsKey(NodeId node, PackedKey key) const {
    if (admission.admit_all()) return true;
    const std::vector<VarId>& vars = adhesion_vars[node];
    for (std::uint32_t i = 0; i < key.dims; ++i) {
      if (!admission.Admits(vars[i], key.At(static_cast<int>(i)))) {
        return false;
      }
    }
    return true;
  }

  /// Lowers a TdPlan. Aborts if the order is not strongly compatible, some
  /// node owns no variable (run EliminateRedundantBags first), or subtree
  /// depth intervals are not contiguous.
  static CachedPlan Build(const Query& q, const Database& db, TdPlan base,
                          const CacheOptions& cache_options);

  /// Resolves the plan for one run: `explicit_plan` when present, otherwise
  /// the planner's choice, lowered via Build. Shared by the single-thread
  /// and sharded engines so both execute the identical plan — a
  /// precondition for the sharded executor's bit-identical-results
  /// guarantee. The returned plan is immutable in execution and safe for
  /// concurrent shared reads (AdhesionKey/AdmitsKey are const and write
  /// only through caller-owned buffers).
  static CachedPlan Resolve(const Query& q, const Database& db,
                            const std::optional<TdPlan>& explicit_plan,
                            const PlannerOptions& planner,
                            const CacheOptions& cache_options);
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_PLAN_H_
