#ifndef CLFTJ_CLFTJ_SEMIRING_H_
#define CLFTJ_CLFTJ_SEMIRING_H_

#include <algorithm>
#include <cstdint>
#include <limits>

namespace clftj {

/// Commutative semirings for aggregate evaluation over joins (the paper's
/// Section 6 future-work direction, following Joglekar et al.'s AJAR and
/// Khamis et al.'s FAQ): a query aggregate is
///
///   ⊕ over assignments µ of  ⊗ over atoms φ of  w(φ, µ)
///
/// CLFTJ's caching carries over unchanged because cached subtree values
/// combine with the outer computation only through ⊗, and subtree
/// aggregates depend only on the adhesion assignment.
///
/// A semiring type provides:
///   using Value;                    // the carrier
///   static Value Zero();            // ⊕-identity, ⊗-annihilator
///   static Value One();             // ⊗-identity
///   static Value Plus(Value, Value);
///   static Value Times(Value, Value);

/// (ℕ, +, ×): counting. With weight ≡ One() this computes |q(D)|.
struct CountingSemiring {
  using Value = std::uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
};

/// (ℝ, +, ×): sum of products — probabilities, scores, weighted counts.
struct RealSemiring {
  using Value = double;
  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
};

/// (ℝ ∪ {-∞}, max, +): the heaviest result tuple's total weight.
struct MaxPlusSemiring {
  using Value = double;
  static Value Zero() { return -std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::max(a, b); }
  static Value Times(Value a, Value b) { return a + b; }
};

/// (ℝ ∪ {+∞}, min, +): the lightest result tuple's total weight.
struct MinPlusSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::min(a, b); }
  static Value Times(Value a, Value b) { return a + b; }
};

/// ({false,true}, ∨, ∧): boolean satisfiability of the query.
struct BooleanSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Plus(Value a, Value b) { return a || b; }
  static Value Times(Value a, Value b) { return a && b; }
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_SEMIRING_H_
