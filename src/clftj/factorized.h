#ifndef CLFTJ_CLFTJ_FACTORIZED_H_
#define CLFTJ_CLFTJ_FACTORIZED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "clftj/plan.h"
#include "util/common.h"

namespace clftj {

struct FactorizedSet;
using FactorizedSetPtr = std::shared_ptr<const FactorizedSet>;

/// One assignment to a TD node's owned variables together with, for each TD
/// child, the factorized set of that child's subtree under this assignment.
/// The cross product of the children sets (prefixed by `local`) is the set
/// of subtree assignments this entry represents — the factorized
/// representation of Section 3.4 (cf. Olteanu & Závodný).
struct FactorizedEntry {
  /// Values of the node's owned variables, in depth order.
  std::vector<Value> local;
  /// One set per TD child, aligned with CachedPlan::children[node].
  std::vector<FactorizedSetPtr> children;
};

/// The factorized result set of one TD node's subtree for one adhesion
/// assignment: a union of entries, each a product of its children.
struct FactorizedSet {
  NodeId node = kNone;
  std::vector<FactorizedEntry> entries;

  /// Heap footprint of this set's own storage: the entry array, each
  /// entry's local values and its child-pointer array. Child sets are
  /// *not* included — see DeepMemoryBytes for the transitive walk.
  std::size_t MemoryBytes() const;

  /// Heap footprint of this set *and every set reachable from it* through
  /// entry child pointers, each distinct set counted once (sets are shared
  /// by reference; a diamond is not double-charged within one walk). This
  /// is what an entry retains: caching a parent keeps all its children
  /// alive through the shared_ptr chain, so the byte budget must charge
  /// the whole closure, not just the top set (docs/cache.md, "Accounting
  /// contract").
  std::size_t DeepMemoryBytes() const;
};

/// Byte charge of a cached factorized payload under
/// CacheOptions::capacity_bytes (found by ADL from CacheManager::Insert):
/// the full retained closure of the set. A child shared by several cached
/// parents is charged under each of them — the budget stays an upper bound
/// on retained heap, which is the direction an admission bound must err.
inline std::uint64_t CachePayloadBytes(const FactorizedSetPtr& set) {
  return sizeof(FactorizedSetPtr) +
         (set == nullptr ? 0 : set->DeepMemoryBytes());
}

/// Number of flat tuples the set expands to (sum over entries of the
/// product of child counts).
std::uint64_t FactorizedCount(const FactorizedSet& set);

/// Expands `sets` (an independent product of factorized sets — e.g. the
/// skip records active at an emission point) into flat assignments: for
/// every combination, writes each entry's local values into
/// (*assignment)[order[depth]] positions dictated by `plan` and invokes
/// `emit`. The assignment buffer is shared and restored between siblings;
/// emit must consume it immediately.
void FactorizedExpand(const std::vector<const FactorizedSet*>& sets,
                      const CachedPlan& plan, Tuple* assignment,
                      const std::function<void()>& emit);

/// A complete factorized representation of a query result (Olteanu &
/// Závodný; the paper's Section 3.4 "the result constitutes a factorized
/// representation that may be decomposed upon need"). Produced by
/// CachedTrieJoin::EvaluateFactorized; can be counted in time linear in
/// its own (often exponentially smaller) size and expanded to flat tuples
/// on demand.
class FactorizedQueryResult {
 public:
  FactorizedQueryResult(std::shared_ptr<const CachedPlan> plan,
                        FactorizedSetPtr root);

  /// Number of flat tuples the representation encodes.
  std::uint64_t Count() const;

  /// Expands into flat result tuples, indexed by VarId, invoking `cb` once
  /// per tuple. The buffer passed to `cb` is reused between calls.
  void Enumerate(const std::function<void(const Tuple&)>& cb) const;

  /// Number of union/product entries stored (the representation's size —
  /// compare against Count() to see the compression factor).
  std::uint64_t NumEntries() const;

  const FactorizedSet& root() const { return *root_; }
  const CachedPlan& plan() const { return *plan_; }

 private:
  std::shared_ptr<const CachedPlan> plan_;
  FactorizedSetPtr root_;
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_FACTORIZED_H_
