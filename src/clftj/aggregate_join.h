#ifndef CLFTJ_CLFTJ_AGGREGATE_JOIN_H_
#define CLFTJ_CLFTJ_AGGREGATE_JOIN_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "clftj/cache.h"
#include "clftj/plan.h"
#include "clftj/semiring.h"
#include "engine/engine.h"
#include "lftj/trie_join.h"
#include "td/planner.h"
#include "util/check.h"

namespace clftj {

/// Semiring-generic CLFTJ (the paper's Section 6 extension to general
/// aggregates): computes
///
///   ⊕ over assignments µ ∈ q(D) of  ⊗ over atoms φ of  weight(φ, µ)
///
/// with the same flexible caching as CachedTrieJoin. Each atom's weight is
/// folded into the running ⊗-factor at the depth where the atom's last
/// variable is assigned; a cached subtree value is therefore the subtree's
/// full ⊕/⊗ aggregate given the adhesion assignment, and a cache hit
/// multiplies it into the factor exactly like a count. Correctness needs
/// only the semiring laws (⊕/⊗ commutative-associative, Zero annihilates).
///
/// CountingSemiring with the default weight reproduces CachedTrieJoin's
/// Count; MaxPlusSemiring with edge weights yields the heaviest pattern
/// instance, BooleanSemiring short-circuit-free satisfiability, etc.
template <typename S>
class AggregatingCachedTrieJoin {
 public:
  using Weight = typename S::Value;

  /// Weight of one atom under the current (full enough) assignment,
  /// indexed by VarId. Called exactly once per atom per enumerated
  /// assignment region; must be pure. The default weighs every atom One().
  using WeightFn = std::function<Weight(AtomId, const Tuple&)>;

  struct Options {
    std::optional<TdPlan> plan;
    PlannerOptions planner;
    CacheOptions cache;
  };

  struct AggregateResult {
    Weight value = S::Zero();
    bool timed_out = false;
    double seconds = 0.0;
    ExecStats stats;
  };

  AggregatingCachedTrieJoin() = default;
  explicit AggregatingCachedTrieJoin(Options options)
      : options_(std::move(options)) {}

  /// Computes the aggregate. With weight == nullptr every atom weighs
  /// S::One(), i.e. the result is the semiring "count" of q(D).
  AggregateResult Aggregate(const Query& q, const Database& db,
                            const WeightFn& weight = nullptr,
                            const RunLimits& limits = RunLimits()) {
    AggregateResult result;
    Timer timer;
    TdPlan base = options_.plan.has_value()
                      ? *options_.plan
                      : PlanQuery(q, db, options_.planner);
    const CachedPlan plan =
        CachedPlan::Build(q, db, std::move(base), options_.cache);
    TrieJoinContext ctx(q, db, plan.order, &result.stats);
    if (!ctx.HasEmptyAtom()) {
      Run run(q, plan, options_.cache, &ctx, &result.stats, weight, limits);
      result.value = run.Go();
      result.timed_out = run.timed_out();
    }
    result.seconds = timer.Seconds();
    return result;
  }

 private:
  class Run {
   public:
    Run(const Query& q, const CachedPlan& plan,
        const CacheOptions& cache_options, TrieJoinContext* ctx,
        ExecStats* stats, const WeightFn& weight, const RunLimits& limits)
        : plan_(plan),
          ctx_(ctx),
          weight_(weight),
          cache_(static_cast<int>(plan.cacheable.size()), cache_options,
                 stats),
          intrmd_(plan.cacheable.size(), S::Zero()),
          node_key_(plan.cacheable.size()),
          node_wide_(plan.cacheable.size()),
          depth_weight_(plan.order.size(), S::One()),
          atoms_ending_at_(plan.order.size()),
          assignment_(plan.order.size(), kNullValue),
          deadline_(limits.timeout_seconds) {
      // An atom's weight is applied at the depth of its last variable.
      for (AtomId a = 0; a < q.num_atoms(); ++a) {
        int last = 0;
        for (const VarId x : q.atom(a).Vars()) {
          last = std::max(last, plan_.var_rank[x]);
        }
        atoms_ending_at_[last].push_back(a);
      }
    }

    Weight Go() {
      RCachedJoin(0, S::One());
      return total_;
    }

    bool timed_out() const { return aborted_; }

   private:
    Weight WeightsAt(int d) const {
      Weight w = S::One();
      if (weight_ != nullptr) {
        for (const AtomId a : atoms_ending_at_[d]) {
          w = S::Times(w, weight_(a, assignment_));
        }
      }
      return w;
    }

    void RCachedJoin(int d, Weight f) {
      if (d == static_cast<int>(plan_.order.size())) {
        total_ = S::Plus(total_, f);
        return;
      }
      const NodeId v = plan_.owner_of_depth[d];
      const bool entering = d > 0 && plan_.owner_of_depth[d - 1] != v;
      PackedKey& key = node_key_[v];
      bool try_cache = false;
      if (entering) {
        intrmd_[v] = S::Zero();
        if (plan_.cacheable[v]) {
          try_cache = true;
          key = plan_.AdhesionKey(v, assignment_, &node_wide_[v]);
          if (const Weight* hit = cache_.Lookup(v, key)) {
            intrmd_[v] = *hit;
            // Zero annihilates ⊗: skipping the dead branch is sound.
            if (!(*hit == S::Zero())) {
              RCachedJoin(plan_.subtree_last_depth[v] + 1,
                          S::Times(f, *hit));
            }
            return;
          }
        }
      }

      LeapfrogJoin* join = ctx_->EnterDepth(d);
      const bool is_last_owned = d == plan_.last_depth[v];
      while (!join->AtEnd()) {
        if (deadline_.Expired()) {
          aborted_ = true;
          break;
        }
        assignment_[plan_.order[d]] = join->Key();
        depth_weight_[d] = WeightsAt(d);
        RCachedJoin(d + 1, S::Times(f, depth_weight_[d]));
        if (aborted_) break;
        if (is_last_owned) {
          // Weights of atoms completing at this node's own depths.
          Weight local = S::One();
          for (int dd = plan_.first_depth[v]; dd <= plan_.last_depth[v];
               ++dd) {
            local = S::Times(local, depth_weight_[dd]);
          }
          for (const NodeId c : plan_.children[v]) {
            local = S::Times(local, intrmd_[c]);
          }
          intrmd_[v] = S::Plus(intrmd_[v], local);
        }
        join->Next();
      }
      assignment_[plan_.order[d]] = kNullValue;
      ctx_->LeaveDepth(d);

      // Same admission rule as CachedTrieJoin (line 21 of Figure 2),
      // served by the plan's precomputed per-value filter.
      if (try_cache && !aborted_ && plan_.AdmitsKey(v, key)) {
        cache_.Insert(v, key, intrmd_[v]);
      }
    }

    const CachedPlan& plan_;
    TrieJoinContext* ctx_;
    const WeightFn& weight_;
    CacheManager<Weight> cache_;
    std::vector<Weight> intrmd_;
    std::vector<PackedKey> node_key_;
    std::vector<Tuple> node_wide_;  // spill buffers for wide adhesion keys
    std::vector<Weight> depth_weight_;
    std::vector<std::vector<AtomId>> atoms_ending_at_;
    Tuple assignment_;
    DeadlineChecker deadline_;
    Weight total_ = S::Zero();
    bool aborted_ = false;
  };

  Options options_;
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_AGGREGATE_JOIN_H_
