#ifndef CLFTJ_CLFTJ_PLAN_CACHE_H_
#define CLFTJ_CLFTJ_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clftj/plan.h"
#include "data/database.h"
#include "query/query.h"
#include "td/planner.h"
#include "util/stats.h"

namespace clftj {

/// LRU cache over resolved CachedPlans, keyed on the canonical query shape
/// alone. TD enumeration, order derivation and the admission-bitmap build
/// are pure overhead to repeat per request — a plan is a deterministic
/// function of the query shape and the database statistics, so each entry
/// records the statistics it was resolved under and is revalidated against
/// the live database on every hit:
///
///  - a *generation* change (bulk Put) always re-resolves — the data was
///    replaced wholesale, the old statistics say nothing (charged as a
///    miss, which is how full invalidation stays observable);
///  - a *minor-version* change (ApplyDelta, see docs/incremental.md)
///    re-resolves only when some referenced relation's cardinality drifted
///    beyond 2x of what the plan was resolved against (or crossed zero) —
///    small deltas leave the plan choice unchanged, so they stay hits.
///
/// One PlanCache is bound to a single (PlannerOptions, CacheOptions)
/// configuration — those knobs change the resolved plan but are fixed per
/// service, so they stay out of the key. Thread-safe; resolution happens
/// outside the lock, and when two threads race on the same cold shape the
/// first inserted plan wins and both report a miss (both did the work).
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the shared plan for q's shape, valid for db's current
  /// statistics, resolving and inserting it on a miss or on revalidation
  /// failure. Charges plan_cache_hits / plan_cache_misses / plan_resolve_ns
  /// to *stats (stats may be null).
  std::shared_ptr<const CachedPlan> Resolve(const Query& q, const Database& db,
                                            const PlannerOptions& planner,
                                            const CacheOptions& cache_options,
                                            ExecStats* stats);

  std::size_t Size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
    /// The statistics snapshot the plan was resolved under: database
    /// versions plus each referenced relation's visible cardinality (the
    /// drift baseline — deliberately not refreshed on minor-version hits,
    /// so cumulative small deltas eventually trip the 2x bound).
    std::uint64_t generation = 0;
    std::uint64_t minor = 0;
    std::vector<std::pair<std::string, std::size_t>> sizes;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

/// Canonical *subjoin signatures* for cross-shape cache seeding (see
/// docs/serving.md "Batch admission"). For each cacheable node n of `plan`,
/// the signature renders the subjoin that node's cache entries summarize —
/// the atoms touching the subtree's owned depths, with adhesion variables
/// numbered by their AdhesionKey packing position (`a0`, `a1`, ...), owned
/// variables by first occurrence across the participating atoms in textual
/// order (`v0`, `v1`, ...), and constants verbatim (`=c`). Two nodes with
/// equal signatures cache, for every adhesion key, the count of the *same*
/// subjoin — so count-mode entries are interchangeable between shapes even
/// when the surrounding queries differ (a 2-path's deep node seeds a
/// 3-path's; a 4-cycle's seeds a 5-cycle's).
///
/// Entries are "" (never matchable) for non-cacheable nodes and for nodes
/// whose participating atoms reach variables that are neither owned by the
/// subtree nor in the adhesion — such a subjoin depends on context the
/// signature cannot canonicalize. Eval-mode payloads are plan-structured
/// (factorized sets reference sibling nodes) and must never be seeded
/// across plans; this signature deliberately describes only the count
/// semantics.
std::vector<std::string> SubtreeSignatures(const CachedPlan& plan,
                                           const std::vector<Atom>& atoms);

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_PLAN_CACHE_H_
