#ifndef CLFTJ_CLFTJ_PLAN_CACHE_H_
#define CLFTJ_CLFTJ_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clftj/plan.h"
#include "data/database.h"
#include "query/query.h"
#include "td/planner.h"
#include "util/stats.h"

namespace clftj {

/// LRU cache over resolved CachedPlans, keyed on the canonical query shape
/// alone. TD enumeration, order derivation and the admission-bitmap build
/// are pure overhead to repeat per request — a plan is a deterministic
/// function of the query shape and the database statistics, so each entry
/// records the statistics it was resolved under and is revalidated against
/// the live database on every hit:
///
///  - a *generation* change (bulk Put) always re-resolves — the data was
///    replaced wholesale, the old statistics say nothing (charged as a
///    miss, which is how full invalidation stays observable);
///  - a *minor-version* change (ApplyDelta, see docs/incremental.md)
///    re-resolves only when some referenced relation's cardinality drifted
///    beyond 2x of what the plan was resolved against (or crossed zero) —
///    small deltas leave the plan choice unchanged, so they stay hits.
///
/// One PlanCache is bound to a single (PlannerOptions, CacheOptions)
/// configuration — those knobs change the resolved plan but are fixed per
/// service, so they stay out of the key. Thread-safe; resolution happens
/// outside the lock, and when two threads race on the same cold shape the
/// first inserted plan wins and both report a miss (both did the work).
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the shared plan for q's shape, valid for db's current
  /// statistics, resolving and inserting it on a miss or on revalidation
  /// failure. Charges plan_cache_hits / plan_cache_misses / plan_resolve_ns
  /// to *stats (stats may be null).
  std::shared_ptr<const CachedPlan> Resolve(const Query& q, const Database& db,
                                            const PlannerOptions& planner,
                                            const CacheOptions& cache_options,
                                            ExecStats* stats);

  std::size_t Size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
    /// The statistics snapshot the plan was resolved under: database
    /// versions plus each referenced relation's visible cardinality (the
    /// drift baseline — deliberately not refreshed on minor-version hits,
    /// so cumulative small deltas eventually trip the 2x bound).
    std::uint64_t generation = 0;
    std::uint64_t minor = 0;
    std::vector<std::pair<std::string, std::size_t>> sizes;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_PLAN_CACHE_H_
