#ifndef CLFTJ_CLFTJ_PLAN_CACHE_H_
#define CLFTJ_CLFTJ_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "clftj/plan.h"
#include "data/database.h"
#include "query/query.h"
#include "td/planner.h"
#include "util/stats.h"

namespace clftj {

/// LRU cache over resolved CachedPlans, keyed on (database generation,
/// canonical query shape). TD enumeration, order derivation and the
/// admission-bitmap build are pure overhead to repeat per request — a plan
/// is a deterministic function of the query shape and the database
/// statistics, both pinned by the key, so the serving loop resolves each
/// shape once per data generation and shares the immutable result.
///
/// One PlanCache is bound to a single (PlannerOptions, CacheOptions)
/// configuration — those knobs change the resolved plan but are fixed per
/// service, so they stay out of the key. Thread-safe; resolution happens
/// outside the lock, and when two threads race on the same cold shape the
/// first inserted plan wins and both report a miss (both did the work).
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Returns the shared plan for q's shape at db's current generation,
  /// resolving and inserting it on a miss. Charges plan_cache_hits /
  /// plan_cache_misses / plan_resolve_ns to *stats (stats may be null).
  std::shared_ptr<const CachedPlan> Resolve(const Query& q, const Database& db,
                                            const PlannerOptions& planner,
                                            const CacheOptions& cache_options,
                                            ExecStats* stats);

  std::size_t Size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CachedPlan> plan;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace clftj

#endif  // CLFTJ_CLFTJ_PLAN_CACHE_H_
