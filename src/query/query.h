#ifndef CLFTJ_QUERY_QUERY_H_
#define CLFTJ_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "util/common.h"

namespace clftj {

/// One argument position of an atom: either a query variable or a constant.
struct Term {
  bool is_variable = true;
  VarId var = kNone;      // valid when is_variable
  Value constant = 0;     // valid when !is_variable

  static Term Var(VarId v) { return Term{true, v, 0}; }
  static Term Const(Value c) { return Term{false, kNone, c}; }
};

/// A subgoal R(t1, ..., tk).
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  /// The distinct variables of this atom in order of first occurrence.
  std::vector<VarId> Vars() const;
};

/// A full conjunctive query (no projection): a sequence of atoms over a set
/// of named variables. Variables are identified by their index into
/// var_names; the canonical variable order used by the join engines is a
/// separate input (see td/ordering.h).
class Query {
 public:
  Query() = default;

  /// Registers a variable name and returns its id; returns the existing id
  /// if the name is already registered.
  VarId AddVariable(const std::string& name);

  /// Appends an atom. All variable ids must already be registered.
  void AddAtom(Atom atom);

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(AtomId i) const { return atoms_[i]; }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  const std::vector<std::string>& var_names() const { return var_names_; }

  /// Returns the id of a named variable, or kNone if not registered.
  VarId FindVariable(const std::string& name) const;

  /// Atom ids whose atoms contain variable v.
  std::vector<AtomId> AtomsWithVar(VarId v) const;

  /// Adjacency lists of the Gaifman graph: an edge between every two
  /// variables that co-occur in an atom. Indexed by VarId; lists are sorted
  /// and deduplicated, no self loops.
  std::vector<std::vector<VarId>> GaifmanGraph() const;

  /// True if every variable occurs in at least one atom (required by all
  /// engines: a variable with no atom has an unbounded domain).
  bool AllVarsCovered() const;

  /// Renders the query as parsable text, e.g. "E(x,y), E(y,z)".
  std::string ToString() const;

 private:
  std::vector<std::string> var_names_;
  std::vector<Atom> atoms_;
};

}  // namespace clftj

#endif  // CLFTJ_QUERY_QUERY_H_
