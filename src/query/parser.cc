#include "query/parser.h"

#include <cctype>
#include <sstream>

namespace clftj {

namespace {

// Minimal recursive-descent tokenizer/parser over the grammar:
//   query := atom (',' atom)*
//   atom  := ident '(' term (',' term)* ')'
//   term  := ident | integer
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Query> Run(std::string* error) {
    Query q;
    SkipSpace();
    if (AtEnd()) return Fail("empty query", error);
    while (true) {
      if (!ParseAtom(&q, error)) return std::nullopt;
      SkipSpace();
      if (AtEnd()) break;
      if (!Consume(',')) return Fail("expected ',' between atoms", error);
    }
    if (!q.AllVarsCovered()) {
      return Fail("internal: uncovered variable", error);
    }
    return q;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  std::optional<Query> Fail(const std::string& msg, std::string* error) {
    if (error != nullptr) {
      std::ostringstream os;
      os << msg << " (at offset " << pos_ << ")";
      *error = os.str();
    }
    return std::nullopt;
  }

  bool ParseIdent(std::string* out) {
    SkipSpace();
    if (AtEnd()) return false;
    char c = Peek();
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
    std::string ident;
    while (!AtEnd()) {
      c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        ident.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    *out = std::move(ident);
    return true;
  }

  bool ParseInteger(Value* out) {
    SkipSpace();
    std::size_t start = pos_;
    if (Peek() == '-' || Peek() == '+') ++pos_;
    std::size_t digits_start = pos_;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (pos_ == digits_start) {
      pos_ = start;
      return false;
    }
    *out = static_cast<Value>(std::stoll(text_.substr(start, pos_ - start)));
    return true;
  }

  bool ParseAtom(Query* q, std::string* error) {
    std::string rel;
    if (!ParseIdent(&rel)) {
      Fail("expected relation name", error);
      return false;
    }
    if (!Consume('(')) {
      Fail("expected '(' after relation name", error);
      return false;
    }
    Atom atom;
    atom.relation = std::move(rel);
    while (true) {
      std::string ident;
      Value constant = 0;
      if (ParseIdent(&ident)) {
        atom.terms.push_back(Term::Var(q->AddVariable(ident)));
      } else if (ParseInteger(&constant)) {
        atom.terms.push_back(Term::Const(constant));
      } else {
        Fail("expected variable or integer constant", error);
        return false;
      }
      if (Consume(')')) break;
      if (!Consume(',')) {
        Fail("expected ',' or ')' in argument list", error);
        return false;
      }
    }
    if (atom.terms.empty()) {
      Fail("atom must have at least one argument", error);
      return false;
    }
    q->AddAtom(std::move(atom));
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Query> ParseQuery(const std::string& text, std::string* error) {
  Parser parser(text);
  return parser.Run(error);
}

}  // namespace clftj
