#ifndef CLFTJ_QUERY_PARSER_H_
#define CLFTJ_QUERY_PARSER_H_

#include <optional>
#include <string>

#include "query/query.h"

namespace clftj {

/// Parses a textual full CQ of the form
///
///   E(x, y), E(y, z), R(z, 7)
///
/// Identifiers starting with a letter or '_' are variables (named in order
/// of first appearance); signed integer literals are constants. Whitespace
/// is insignificant. On failure returns nullopt and, if `error` is non-null,
/// stores a human-readable message with the offending position.
std::optional<Query> ParseQuery(const std::string& text,
                                std::string* error = nullptr);

}  // namespace clftj

#endif  // CLFTJ_QUERY_PARSER_H_
