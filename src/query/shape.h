#ifndef CLFTJ_QUERY_SHAPE_H_
#define CLFTJ_QUERY_SHAPE_H_

#include <string>

#include "query/query.h"

namespace clftj {

/// Canonical key for a query's *shape*: the structure the planner and the
/// trie substrate actually depend on — relation names, term patterns
/// (constants by value, variables by first-occurrence index) — with
/// variable *names* erased. Two parser-built queries that differ only in
/// variable naming ("E(x,y),E(y,z)" vs "E(a,b),E(b,c)") get the same key,
/// so a plan resolved for one serves the other verbatim.
///
/// A cached CachedPlan's arrays are indexed by VarId, so a plan is only
/// reusable by a query whose VarIds coincide with the canonical
/// first-occurrence numbering. The parser always registers variables in
/// first-occurrence order, making that the common case; a programmatically
/// built query whose VarIds deviate gets the numbering appended to its key
/// — a correct, merely unshared, cache line.
std::string CanonicalShapeKey(const Query& q);

}  // namespace clftj

#endif  // CLFTJ_QUERY_SHAPE_H_
