#include "query/patterns.h"

#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace clftj {

namespace {

// Registers variables x1..xk and returns their ids.
std::vector<VarId> MakeVars(Query* q, int k) {
  std::vector<VarId> vars;
  vars.reserve(k);
  for (int i = 1; i <= k; ++i) {
    vars.push_back(q->AddVariable("x" + std::to_string(i)));
  }
  return vars;
}

void AddEdgeAtom(Query* q, const std::string& relation, VarId a, VarId b) {
  Atom atom;
  atom.relation = relation;
  atom.terms = {Term::Var(a), Term::Var(b)};
  q->AddAtom(std::move(atom));
}

bool IsConnected(int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<int>> adj(n);
  for (const auto& [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::vector<bool> seen(n, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int u : adj[v]) {
      if (!seen[u]) {
        seen[u] = true;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == n;
}

}  // namespace

Query PathQuery(int k, const std::string& relation) {
  CLFTJ_CHECK(k >= 2);
  Query q;
  const std::vector<VarId> vars = MakeVars(&q, k);
  for (int i = 0; i + 1 < k; ++i) {
    AddEdgeAtom(&q, relation, vars[i], vars[i + 1]);
  }
  return q;
}

Query CycleQuery(int k, const std::string& relation) {
  CLFTJ_CHECK(k >= 3);
  Query q;
  const std::vector<VarId> vars = MakeVars(&q, k);
  for (int i = 0; i + 1 < k; ++i) {
    AddEdgeAtom(&q, relation, vars[i], vars[i + 1]);
  }
  AddEdgeAtom(&q, relation, vars[0], vars[k - 1]);
  return q;
}

Query CliqueQuery(int k, const std::string& relation) {
  CLFTJ_CHECK(k >= 2);
  Query q;
  const std::vector<VarId> vars = MakeVars(&q, k);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      AddEdgeAtom(&q, relation, vars[i], vars[j]);
    }
  }
  return q;
}

Query LollipopQuery(int m, int n, const std::string& relation) {
  CLFTJ_CHECK(m >= 3);
  CLFTJ_CHECK(n >= 1);
  Query q;
  const std::vector<VarId> vars = MakeVars(&q, m + n);
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      AddEdgeAtom(&q, relation, vars[i], vars[j]);
    }
  }
  // Tail hangs off the last clique node: x_m - x_{m+1} - ... - x_{m+n}.
  for (int i = m - 1; i + 1 < m + n; ++i) {
    AddEdgeAtom(&q, relation, vars[i], vars[i + 1]);
  }
  return q;
}

Query RandomPatternQuery(int num_vars, double p, std::uint64_t seed,
                         const std::string& relation) {
  CLFTJ_CHECK(num_vars >= 2);
  CLFTJ_CHECK(p > 0.0 && p <= 1.0);
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  // Resample until connected; with p >= 0.4 and n <= 8 this terminates
  // almost immediately.
  for (int attempt = 0; attempt < 100000; ++attempt) {
    edges.clear();
    for (int a = 0; a < num_vars; ++a) {
      for (int b = a + 1; b < num_vars; ++b) {
        if (rng.Flip(p)) edges.emplace_back(a, b);
      }
    }
    if (!edges.empty() && IsConnected(num_vars, edges)) break;
  }
  CLFTJ_CHECK_MSG(!edges.empty() && IsConnected(num_vars, edges),
                  "failed to sample a connected pattern");
  Query q;
  const std::vector<VarId> vars = MakeVars(&q, num_vars);
  for (const auto& [a, b] : edges) {
    AddEdgeAtom(&q, relation, vars[a], vars[b]);
  }
  return q;
}

}  // namespace clftj
