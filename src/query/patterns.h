#ifndef CLFTJ_QUERY_PATTERNS_H_
#define CLFTJ_QUERY_PATTERNS_H_

#include <cstdint>
#include <string>

#include "query/query.h"

namespace clftj {

/// Pattern-query generators matching Section 5.2.2 of the paper. All
/// patterns are expressed over a binary edge relation (default "E"); the
/// variables are named x1, x2, ... in the paper's canonical order.

/// k-path: E(x1,x2), E(x2,x3), ..., E(x_{k-1}, x_k). Requires k >= 2.
Query PathQuery(int k, const std::string& relation = "E");

/// k-cycle: the k-path plus the closing atom E(x1, x_k). Requires k >= 3.
Query CycleQuery(int k, const std::string& relation = "E");

/// k-clique: one atom per unordered variable pair. Requires k >= 2. Cliques
/// have no nontrivial tree decomposition, so CLFTJ degenerates to LFTJ on
/// them (as the paper notes).
Query CliqueQuery(int k, const std::string& relation = "E");

/// {m, n}-lollipop: an m-clique with an n-edge tail attached to one clique
/// node (the paper's Figure 12 uses {3,2}: a triangle 0-1-2 plus tail
/// 2-3-4). Requires m >= 3, n >= 1.
Query LollipopQuery(int m, int n, const std::string& relation = "E");

/// Random connected pattern: the Gaifman graph is an Erdős–Rényi G(n, p)
/// sample, resampled until connected (the paper's N-rand(P) queries with
/// N in {5,6}, P in {0.4,0.6}). One atom per undirected pattern edge.
Query RandomPatternQuery(int num_vars, double p, std::uint64_t seed,
                         const std::string& relation = "E");

}  // namespace clftj

#endif  // CLFTJ_QUERY_PATTERNS_H_
