#include "query/query.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace clftj {

std::vector<VarId> Atom::Vars() const {
  std::vector<VarId> vars;
  for (const Term& t : terms) {
    if (t.is_variable &&
        std::find(vars.begin(), vars.end(), t.var) == vars.end()) {
      vars.push_back(t.var);
    }
  }
  return vars;
}

VarId Query::AddVariable(const std::string& name) {
  const VarId existing = FindVariable(name);
  if (existing != kNone) return existing;
  var_names_.push_back(name);
  return static_cast<VarId>(var_names_.size()) - 1;
}

void Query::AddAtom(Atom atom) {
  for (const Term& t : atom.terms) {
    if (t.is_variable) {
      CLFTJ_CHECK(t.var >= 0 && t.var < num_vars());
    }
  }
  atoms_.push_back(std::move(atom));
}

VarId Query::FindVariable(const std::string& name) const {
  for (VarId v = 0; v < num_vars(); ++v) {
    if (var_names_[v] == name) return v;
  }
  return kNone;
}

std::vector<AtomId> Query::AtomsWithVar(VarId v) const {
  std::vector<AtomId> out;
  for (AtomId i = 0; i < num_atoms(); ++i) {
    const std::vector<VarId> vars = atoms_[i].Vars();
    if (std::find(vars.begin(), vars.end(), v) != vars.end()) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::vector<VarId>> Query::GaifmanGraph() const {
  std::vector<std::vector<VarId>> adj(num_vars());
  for (const Atom& atom : atoms_) {
    const std::vector<VarId> vars = atom.Vars();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      for (std::size_t j = i + 1; j < vars.size(); ++j) {
        adj[vars[i]].push_back(vars[j]);
        adj[vars[j]].push_back(vars[i]);
      }
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

bool Query::AllVarsCovered() const {
  std::vector<bool> seen(num_vars(), false);
  for (const Atom& atom : atoms_) {
    for (VarId v : atom.Vars()) seen[v] = true;
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

std::string Query::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < num_atoms(); ++i) {
    if (i > 0) os << ", ";
    os << atoms_[i].relation << "(";
    for (std::size_t j = 0; j < atoms_[i].terms.size(); ++j) {
      if (j > 0) os << ",";
      const Term& t = atoms_[i].terms[j];
      if (t.is_variable) {
        os << var_names_[t.var];
      } else {
        os << t.constant;
      }
    }
    os << ")";
  }
  return os.str();
}

}  // namespace clftj
