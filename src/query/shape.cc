#include "query/shape.h"

#include <vector>

namespace clftj {

std::string CanonicalShapeKey(const Query& q) {
  std::vector<int> canon(q.num_vars(), -1);
  std::vector<VarId> occurrence;  // VarId at each canonical index
  occurrence.reserve(q.num_vars());
  std::string key;
  for (const Atom& atom : q.atoms()) {
    key += atom.relation;
    key += '(';
    bool first = true;
    for (const Term& term : atom.terms) {
      if (!first) key += ',';
      first = false;
      if (term.is_variable) {
        if (canon[term.var] < 0) {
          canon[term.var] = static_cast<int>(occurrence.size());
          occurrence.push_back(term.var);
        }
        key += '~';
        key += std::to_string(canon[term.var]);
      } else {
        key += '=';
        key += std::to_string(term.constant);
      }
    }
    key += ");";
  }
  // VarId-indexed plan arrays only transfer between queries whose actual
  // numbering matches the canonical one. The parser registers variables in
  // first-occurrence order, so its queries always take the bare key;
  // anything else gets its numbering appended and forms its own cache line.
  bool identity = static_cast<int>(occurrence.size()) == q.num_vars();
  for (std::size_t i = 0; identity && i < occurrence.size(); ++i) {
    identity = occurrence[i] == static_cast<VarId>(i);
  }
  if (!identity) {
    key += '#';
    for (const VarId v : occurrence) {
      key += std::to_string(v);
      key += '.';
    }
  }
  return key;
}

}  // namespace clftj
