// clftj_cli — run a conjunctive query against a dataset with any engine.
//
// Usage examples:
//   clftj_cli --query "E(x,y), E(y,z), E(x,z)" --dataset wiki-Vote
//   clftj_cli --query-file q.txt --edges graph.txt --engine CLFTJ --mode eval
//   clftj_cli --query "E(a,b),E(b,c)" --dataset ca-GrQc --engine LFTJ
//             --timeout 30 --cache-capacity 100000

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include <utility>
#include <vector>

#include "data/loader.h"
#include "data/snap_profiles.h"
#include "engine/engine.h"
#include "engine/printer.h"
#include "engine/reuse.h"
#include "query/parser.h"
#include "td/planner.h"
#include "util/simd.h"

namespace {

void Usage() {
  std::cerr <<
      "clftj_cli — trie joins with flexible caching\n"
      "  --query <text>         query, e.g. \"E(x,y), E(y,z)\"\n"
      "  --query-file <path>    read the query from a file\n"
      "  --dataset <label>      synthetic profile: wiki-Vote, p2p-Gnutella04,\n"
      "                         ca-GrQc, ego-Facebook, ego-Twitter, imdb\n"
      "  --edges <path>         load relation E from an edge-list file;\n"
      "                         column types auto-detected (text keys are\n"
      "                         dictionary-encoded and decoded on output)\n"
      "  --relation <name=path> load any relation from a text file (repeat\n"
      "                         for several); arity and column types are\n"
      "                         auto-detected, quoted fields supported\n"
      "  --engine <name>        LFTJ | CLFTJ | CLFTJ-P | YTD | PairwiseHJ\n"
      "                         | GenericJoin | NestedLoop   (default CLFTJ)\n"
      "  --mode <count|eval|info>  default count (eval prints tuples; info\n"
      "                         prints the SIMD dispatch summary and exits)\n"
      "  --simd <auto|avx2|scalar>  kernel dispatch for the seek/filter hot\n"
      "                         paths (default auto: AVX2 when the CPU has\n"
      "                         it; results and counters are identical\n"
      "                         either way, see docs/simd.md)\n"
      "  --timeout <seconds>    wall-clock budget (default unlimited)\n"
      "  --threads <n>          CLFTJ-P worker count (default: all hardware\n"
      "                         threads; shards the first variable's domain)\n"
      "  --cache-capacity <n>   bound CLFTJ's cache entries (default unbounded)\n"
      "  --cache-bytes <n>      bound CLFTJ's cache payload bytes instead\n"
      "  --cache-sharing <m>    CLFTJ-P cache placement: private (capacity/K\n"
      "                         per shard, no cross-shard reuse) or striped\n"
      "                         (one lock-striped shared table, global budget)\n"
      "  --cache-stripes <n>    stripe count for --cache-sharing=striped\n"
      "                         (default: picked from the worker count)\n"
      "  --support-threshold <n> CLFTJ admission: min value support\n"
      "  --max-rows <n>         materialization budget for YTD/PairwiseHJ\n"
      "  --stats                print execution counters\n"
      "  --repeat <n>           run the query n times in one process; CLFTJ\n"
      "                         and CLFTJ-P reuse the prepared plan, shared\n"
      "                         tries and persistent cache across iterations\n"
      "                         (per-iteration wall clock is printed, so the\n"
      "                         warm-over-cold effect is directly visible)\n"
      "  --append <R=tuples>    with --repeat: apply a delta (tuples\n"
      "                         \"1,2;3,4\") to relation R after the first\n"
      "                         iteration — later iterations run on mutated\n"
      "                         data with plans/tries/caches surviving via\n"
      "                         targeted invalidation (repeatable flag)\n"
      "  --explain              print the chosen tree decomposition, the\n"
      "                         variable order and plan costs, then exit\n"
      "Exit codes: 0 success; 2 usage error or unparsable query;\n"
      "            3 TIMEOUT (--timeout expired); 4 OUT-OF-MEMORY\n"
      "            (--max-rows budget exceeded); 5 other failure.\n"
      "Failures print a diagnostic to stderr; stdout carries results only.\n";
}

// Parses "R=1,2;3,4" into an append-only DeltaBatch (values ','-separated
// within a tuple, tuples ';'-separated).
bool ParseAppendSpec(const std::string& spec, clftj::DeltaBatch* batch) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return false;
  }
  batch->relation = spec.substr(0, eq);
  std::stringstream in(spec.substr(eq + 1));
  std::string chunk;
  while (std::getline(in, chunk, ';')) {
    clftj::Tuple tuple;
    std::stringstream tin(chunk);
    std::string field;
    while (std::getline(tin, field, ',')) {
      if (field.empty()) return false;
      char* tail = nullptr;
      tuple.push_back(static_cast<clftj::Value>(
          std::strtoull(field.c_str(), &tail, 10)));
      if (tail == nullptr || *tail != '\0') return false;
    }
    if (tuple.empty()) return false;
    batch->adds.push_back(std::move(tuple));
  }
  return !batch->adds.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_text;
  std::string dataset;
  std::string edges_path;
  std::vector<std::pair<std::string, std::string>> relation_specs;
  std::string engine_name = "CLFTJ";
  std::string mode = "count";
  double timeout = 0.0;
  int threads = 0;
  std::uint64_t cache_capacity = 0;
  std::uint64_t cache_bytes = 0;
  std::string cache_sharing = "private";
  int cache_stripes = 0;
  std::uint64_t support_threshold = 0;
  std::uint64_t max_rows = 0;
  bool print_stats = false;
  bool explain = false;
  int repeat = 1;
  std::vector<clftj::DeltaBatch> appends;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--query") {
      query_text = next();
    } else if (arg == "--query-file") {
      std::ifstream in(next());
      std::stringstream ss;
      ss << in.rdbuf();
      query_text = ss.str();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--edges") {
      edges_path = next();
    } else if (arg == "--relation") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::cerr << "--relation expects name=path, got: " << spec << "\n";
        return 2;
      }
      relation_specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--engine") {
      engine_name = next();
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--simd") {
      const std::string spec = next();
      clftj::simd::Mode simd_mode;
      if (!clftj::simd::ParseMode(spec, &simd_mode)) {
        std::cerr << "unknown --simd mode: " << spec
                  << " (expected auto, avx2 or scalar)\n";
        return 2;
      }
      if (!clftj::simd::SetMode(simd_mode)) {
        std::cerr << "--simd avx2 requested but the AVX2 kernels are "
                     "unavailable here (" << clftj::simd::Describe() << ")\n";
        return 2;
      }
    } else if (arg == "--timeout") {
      timeout = std::stod(next());
    } else if (arg == "--threads") {
      threads = std::stoi(next());
    } else if (arg == "--cache-capacity") {
      cache_capacity = std::stoull(next());
    } else if (arg == "--cache-bytes") {
      cache_bytes = std::stoull(next());
    } else if (arg == "--cache-sharing") {
      cache_sharing = next();
    } else if (arg == "--cache-stripes") {
      cache_stripes = std::stoi(next());
    } else if (arg == "--support-threshold") {
      support_threshold = std::stoull(next());
    } else if (arg == "--max-rows") {
      max_rows = std::stoull(next());
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--repeat") {
      repeat = std::stoi(next());
    } else if (arg == "--append") {
      const std::string spec = next();
      clftj::DeltaBatch batch;
      if (!ParseAppendSpec(spec, &batch)) {
        std::cerr << "--append expects R=1,2;3,4, got: " << spec << "\n";
        return 2;
      }
      appends.push_back(std::move(batch));
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage();
      return 2;
    }
  }

  // --mode info is a pure introspection mode: report the resolved kernel
  // dispatch (after any --simd override) and exit without needing a query
  // or dataset.
  if (mode == "info") {
    std::cout << "simd: " << clftj::simd::Describe() << "\n";
    return 0;
  }

  if (query_text.empty()) {
    std::cerr << "a query is required (--query or --query-file)\n";
    Usage();
    return 2;
  }
  std::string error;
  const auto query = clftj::ParseQuery(query_text, &error);
  if (!query.has_value()) {
    std::cerr << "query parse error: " << error << "\n";
    return 2;
  }

  clftj::Database db;
  if (!edges_path.empty() || !relation_specs.empty()) {
    // File loads auto-detect column types; string keys are interned into
    // the database dictionary and decoded again when tuples are printed.
    if (!edges_path.empty()) {
      relation_specs.emplace_back("E", edges_path);
    }
    for (const auto& [name, path] : relation_specs) {
      clftj::LoadError err;
      std::vector<clftj::ColumnType> schema;
      auto rel = clftj::LoadRelationAuto(path, name, &db.dict(), &err,
                                         &schema);
      if (!rel.has_value()) {
        std::cerr << "failed to load " << name << ": " << err.ToString()
                  << "\n";
        return 2;
      }
      if (path == edges_path && rel->arity() != 2) {
        std::cerr << "failed to load edge list " << path << ": expected 2 "
                  << "columns, got " << rel->arity() << "\n";
        return 2;
      }
      if (rel->has_string_columns()) {
        // Say so out loud: one stray non-numeric token in an otherwise
        // integer file flips its whole column to strings, and the ids
        // would silently mean something different from the raw integers.
        std::cerr << "note: " << name << " (" << path << ") detected as [";
        for (std::size_t c = 0; c < schema.size(); ++c) {
          std::cerr << (c > 0 ? "," : "")
                    << (schema[c] == clftj::ColumnType::kString ? "string"
                                                                : "int");
        }
        std::cerr << "] — string keys are dictionary-encoded\n";
      }
      db.Put(std::move(*rel));
    }
  } else if (dataset == "imdb") {
    db = clftj::MakeImdbDatabase();
  } else if (!dataset.empty()) {
    db = clftj::MakeSnapDatabase(clftj::SnapProfileByLabel(dataset));
  } else {
    std::cerr << "a dataset is required (--dataset, --edges or --relation)\n";
    return 2;
  }

  if (explain) {
    const auto plans = clftj::EnumeratePlans(*query, db);
    std::cout << plans.size() << " candidate decomposition(s); best first:\n";
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const clftj::TdPlan& plan = plans[i];
      std::cout << "#" << (i + 1) << " " << plan.td.ToString(*query)
                << "\n   structural_cost=" << plan.structural_cost
                << " order_cost=" << plan.order_cost << " order=";
      for (const clftj::VarId v : plan.order) {
        std::cout << query->var_name(v) << " ";
      }
      std::cout << "\n   adhesions:";
      for (clftj::NodeId v = 0; v < plan.td.num_nodes(); ++v) {
        if (v == plan.td.root()) continue;
        std::cout << " {";
        const auto adhesion = plan.td.Adhesion(v);
        for (std::size_t j = 0; j < adhesion.size(); ++j) {
          std::cout << (j > 0 ? "," : "") << query->var_name(adhesion[j]);
        }
        std::cout << "}";
      }
      std::cout << "\n";
    }
    return 0;
  }

  clftj::EngineOptions engine_options;
  engine_options.threads = threads;
  engine_options.cache.capacity = cache_capacity;
  engine_options.cache.capacity_bytes = cache_bytes;
  engine_options.cache.stripes = cache_stripes;
  if (support_threshold > 0) {
    engine_options.cache.admission =
        clftj::CacheOptions::Admission::kSupportThreshold;
    engine_options.cache.support_threshold = support_threshold;
  }
  if (cache_sharing == "striped") {
    engine_options.cache.sharing = clftj::CacheOptions::Sharing::kStriped;
  } else if (cache_sharing != "private") {
    std::cerr << "unknown --cache-sharing mode: " << cache_sharing
              << " (expected private or striped)\n";
    return 2;
  }

  if (!clftj::IsKnownEngine(engine_name)) {
    std::cerr << "unknown engine: " << engine_name << "\n";
    return 2;
  }
  if (mode != "count" && mode != "eval") {
    std::cerr << "unknown mode: " << mode << "\n";
    return 2;
  }
  if (repeat < 1) repeat = 1;
  if (!appends.empty() && repeat < 2) {
    std::cerr << "--append only makes sense with --repeat >= 2 (the delta "
                 "applies after the first iteration)\n";
    return 2;
  }

  clftj::RunLimits limits;
  limits.timeout_seconds = timeout;
  limits.max_intermediate_tuples = max_rows;

  // --repeat with a CLFTJ-family engine exercises the same cross-query
  // reuse layer the query service uses: the first iteration plans, builds
  // tries and fills the persistent cache; later iterations ride on them.
  std::unique_ptr<clftj::CrossQueryReuse> reuse;
  if (repeat > 1 && (engine_name == "CLFTJ" || engine_name == "CLFTJ-P")) {
    reuse = std::make_unique<clftj::CrossQueryReuse>(
        clftj::ReuseOptions{}, clftj::PlannerOptions{}, engine_options.cache,
        std::max(1, threads));
  }

  clftj::RunResult result;
  for (int iter = 0; iter < repeat; ++iter) {
    const bool last = iter + 1 == repeat;
    clftj::EngineOptions iter_options = engine_options;
    clftj::ExecStats reuse_stats;
    clftj::CrossQueryReuse::Prepared prepared;  // outlives the engine run
    if (reuse != nullptr) {
      prepared = reuse->Prepare(*query, db, &reuse_stats);
      iter_options.prepared_plan = prepared.plan;
      iter_options.prepared_substrate = prepared.substrate;
      if (prepared.caches != nullptr) {
        if (mode == "count") {
          iter_options.shared_count_cache = &prepared.caches->count;
        } else {
          iter_options.shared_eval_cache = &prepared.caches->eval;
        }
      }
    }
    const std::unique_ptr<clftj::JoinEngine> engine =
        clftj::MakeEngine(engine_name, iter_options);
    if (mode == "count") {
      result = engine->Count(*query, db, limits);
    } else {
      // Tuples are printed once, on the last iteration; earlier warm-up
      // iterations still evaluate fully, they just discard the stream.
      clftj::TuplePrinter printer(*query, db, std::cout);
      const clftj::TupleCallback print = [&printer](const clftj::Tuple& t) {
        printer.Print(t);
      };
      const clftj::TupleCallback drop = [](const clftj::Tuple&) {};
      result = engine->Evaluate(*query, db, last ? print : drop, limits);
    }
    result.stats.Merge(reuse_stats);
    if (repeat > 1) {
      std::cout << "iter " << (iter + 1) << ": " << result.seconds << "s\n";
    }
    if (!result.ok()) break;
    if (iter == 0) {
      // Live mutation demo: the delta lands between iterations, so the
      // remaining warm runs show plans, shared tries and caches surviving
      // a data change (reuse is revalidated, not rebuilt).
      for (const clftj::DeltaBatch& batch : appends) {
        clftj::DeltaResult delta_result;
        if (!db.ApplyDelta(batch, &error, &delta_result)) {
          std::cerr << "--append failed for " << batch.relation << ": "
                    << error << "\n";
          return 2;
        }
        std::cout << "applied +" << delta_result.applied_adds << " to "
                  << batch.relation
                  << (delta_result.compacted ? " (compacted)" : "") << "\n";
      }
    }
  }
  std::cout << (mode == "count" ? "count: " : "tuples: ") << result.count
            << "\n";

  std::cout << "engine: " << engine_name << "  time: " << result.seconds
            << "s\n";
  if (print_stats) std::cout << result.stats.ToString() << "\n";
  if (!result.ok()) {
    // Scripts branch on the exit code and read the diagnostic from stderr;
    // stdout stays parseable result output even on failure.
    std::cerr << "error: " << clftj::RunStatusName(result.status);
    if (!result.message.empty()) std::cerr << ": " << result.message;
    if (result.status == clftj::RunStatus::kTimeout) {
      std::cerr << " (wall clock exceeded --timeout " << timeout << "s)";
    } else if (result.status == clftj::RunStatus::kOutOfMemory) {
      std::cerr << " (materialization exceeded --max-rows " << max_rows
                << ")";
    }
    std::cerr << "\n";
    switch (result.status) {
      case clftj::RunStatus::kTimeout:
        return 3;
      case clftj::RunStatus::kOutOfMemory:
        return 4;
      default:
        return 5;
    }
  }
  return 0;
}
