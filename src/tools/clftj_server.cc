// clftj_server — serve conjunctive queries over a local socket.
//
// Loads a dataset once, then answers line-protocol requests (see
// src/server/protocol.h) with a bounded queue, worker pool, per-request
// deadlines/budgets, and load shedding. Fault injection for chaos runs is
// armed via the CLFTJ_FAULTS environment variable (see src/util/fault.h).
//
// Usage:
//   clftj_server --socket /tmp/clftj.sock --dataset wiki-Vote
//   clftj_server --socket /tmp/clftj.sock --edges graph.txt --workers 4
//                --queue-capacity 128 --default-timeout-ms 5000

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "data/loader.h"
#include "data/snap_profiles.h"
#include "server/server.h"
#include "server/service.h"
#include "util/fault.h"
#include "util/simd.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage() {
  std::cerr <<
      "clftj_server — CLFTJ query service over a local socket\n"
      "  --socket <path>            AF_UNIX socket path (required; short)\n"
      "  --dataset <label>          synthetic profile (wiki-Vote, imdb, ...)\n"
      "  --edges <path>             load relation E from an edge list\n"
      "  --relation <name=path>     load any relation (repeatable)\n"
      "  --engine <name>            default engine (default CLFTJ)\n"
      "  --workers <n>              worker threads (default 2)\n"
      "  --queue-capacity <n>       bounded queue depth (default 64)\n"
      "  --aggregate-budget-bytes <n>  admission byte budget (default off)\n"
      "  --default-timeout-ms <n>   per-request deadline default\n"
      "  --default-max-tuples <n>   per-request materialization default\n"
      "  --retry-after-ms <n>       hint attached to SHED (default 50)\n"
      "The service is read-write: DELTA requests (clftj_client --append/\n"
      "--delete) mutate the loaded data between queries.\n"
      "Faults: set CLFTJ_FAULTS=seed=...,cache_insert=...,deadline=...\n"
      "to arm deterministic fault injection for chaos testing.\n"
      "SIMD: set CLFTJ_SIMD=auto|avx2|scalar to pick the kernel dispatch\n"
      "arm (default auto; results and counters are identical either way).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string dataset;
  std::string edges_path;
  std::vector<std::pair<std::string, std::string>> relation_specs;
  clftj::ServiceOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--edges") {
      edges_path = next();
    } else if (arg == "--relation") {
      const std::string spec = next();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::cerr << "--relation expects name=path, got: " << spec << "\n";
        return 2;
      }
      relation_specs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--engine") {
      options.engine = next();
    } else if (arg == "--workers") {
      options.workers = std::stoi(next());
    } else if (arg == "--queue-capacity") {
      options.queue_capacity = std::stoull(next());
    } else if (arg == "--aggregate-budget-bytes") {
      options.aggregate_budget_bytes = std::stoull(next());
    } else if (arg == "--default-timeout-ms") {
      options.default_timeout_ms = std::stoull(next());
    } else if (arg == "--default-max-tuples") {
      options.default_max_tuples = std::stoull(next());
    } else if (arg == "--retry-after-ms") {
      options.retry_after_ms = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage();
      return 2;
    }
  }

  if (socket_path.empty()) {
    std::cerr << "--socket is required\n";
    Usage();
    return 2;
  }

  clftj::Database db;
  if (!edges_path.empty() || !relation_specs.empty()) {
    if (!edges_path.empty()) relation_specs.emplace_back("E", edges_path);
    for (const auto& [name, path] : relation_specs) {
      clftj::LoadError err;
      auto rel = clftj::LoadRelationAuto(path, name, &db.dict(), &err);
      if (!rel.has_value()) {
        std::cerr << "failed to load " << name << ": " << err.ToString()
                  << "\n";
        return 2;
      }
      db.Put(std::move(*rel));
    }
  } else if (dataset == "imdb") {
    db = clftj::MakeImdbDatabase();
  } else if (!dataset.empty()) {
    db = clftj::MakeSnapDatabase(clftj::SnapProfileByLabel(dataset));
  } else {
    std::cerr << "a dataset is required (--dataset, --edges or --relation)\n";
    return 2;
  }

  if (clftj::fault::ConfigureFromEnv()) {
    std::cerr << "fault injection armed from CLFTJ_FAULTS\n";
  }

  // Kernel dispatch override for deployments: CLFTJ_SIMD=scalar pins the
  // reference arm (e.g. to rule the vector kernels out while debugging),
  // avx2 insists on it, auto (the default) probes the CPU.
  if (const char* simd_env = std::getenv("CLFTJ_SIMD")) {
    clftj::simd::Mode simd_mode;
    if (!clftj::simd::ParseMode(simd_env, &simd_mode)) {
      std::cerr << "unknown CLFTJ_SIMD mode: " << simd_env
                << " (expected auto, avx2 or scalar)\n";
      return 2;
    }
    if (!clftj::simd::SetMode(simd_mode)) {
      std::cerr << "CLFTJ_SIMD=avx2 requested but the AVX2 kernels are "
                   "unavailable here (" << clftj::simd::Describe() << ")\n";
      return 2;
    }
  }

  // Read-write service: the server owns its database, so DELTA requests
  // are accepted and interleave with queries under the service's data lock.
  clftj::QueryService service(&db, options);
  clftj::QueryServer server(&service);
  std::string error;
  if (!server.Start(socket_path, &error)) {
    std::cerr << "failed to start server on " << socket_path << ": " << error
              << "\n";
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cerr << "serving on " << socket_path << " (engine " << options.engine
            << ", " << options.workers << " workers, simd "
            << clftj::simd::Describe() << "); SIGINT drains and exits\n";
  while (g_stop == 0) {
    pause();  // signal-driven; requests are handled on server threads
  }
  std::cerr << "draining...\n";
  server.Stop();
  service.Shutdown(/*drain=*/true);
  return 0;
}
