// clftj_client — send one query to a running clftj_server.
//
// Retries transport failures and retryable statuses (SHED, INTERNAL) with
// exponential backoff + deterministic jitter; terminal statuses (TIMEOUT,
// OUT-OF-MEMORY, BAD-QUERY, CANCELLED) are reported immediately.
//
// Exit codes mirror clftj_cli: 0 OK, 2 usage/BAD-QUERY, 3 TIMEOUT,
// 4 OUT-OF-MEMORY, 5 other failure (SHED/CANCELLED/INTERNAL after all
// retries), 6 transport failure.
//
// Usage:
//   clftj_client --socket /tmp/clftj.sock --query "E(x,y), E(y,z)"
//   clftj_client --socket /tmp/clftj.sock --query-file q.txt --mode eval
//                --timeout-ms 5000 --max-attempts 6

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "server/client.h"

namespace {

void Usage() {
  std::cerr <<
      "clftj_client — client for clftj_server's line protocol\n"
      "  --socket <path>        server socket path (required)\n"
      "  --query <text>         query, e.g. \"E(x,y), E(y,z)\"\n"
      "  --query-file <path>    read the query from a file\n"
      "  --batch <path>         pipeline one query per non-empty line of\n"
      "                         the file over a single connection (shares\n"
      "                         --mode/--engine/--timeout-ms/--max-tuples);\n"
      "                         co-arriving same-shape queries let the\n"
      "                         server batch them into one shared run\n"
      "  --append <R=tuples>    send a DELTA adding tuples to relation R\n"
      "                         (tuples \"1,2;3,4\"; no --query needed)\n"
      "  --delete <R=tuples>    send a DELTA removing tuples from R;\n"
      "                         combinable with --append on the same R\n"
      "  --mode <count|eval>    default count (eval prints tuples)\n"
      "  --engine <name>        engine override (server default otherwise)\n"
      "  --timeout-ms <n>       per-request deadline (server default: 0)\n"
      "  --max-tuples <n>       materialization budget\n"
      "  --max-attempts <n>     total tries incl. the first (default 4)\n"
      "  --initial-backoff-ms <n>  first retry backoff (default 20)\n"
      "  --max-backoff-ms <n>   backoff ceiling (default 2000)\n"
      "  --request-timeout-ms <n>  transport read deadline (default 30000)\n"
      "  --jitter-seed <n>      backoff jitter seed (default 1)\n"
      "Exit codes: 0 OK; 2 usage or BAD-QUERY; 3 TIMEOUT;\n"
      "            4 OUT-OF-MEMORY; 5 SHED/CANCELLED/INTERNAL after all\n"
      "            retries; 6 transport failure.\n";
}

// Parses "R=1,2;3,4" into (relation, tuples): values ','-separated within
// a tuple, tuples ';'-separated — the wire format of DELTA's add=/del=.
bool ParseDeltaSpec(const std::string& spec, std::string* relation,
                    std::vector<clftj::Tuple>* tuples) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return false;
  }
  *relation = spec.substr(0, eq);
  std::stringstream in(spec.substr(eq + 1));
  std::string chunk;
  while (std::getline(in, chunk, ';')) {
    clftj::Tuple tuple;
    std::stringstream tin(chunk);
    std::string field;
    while (std::getline(tin, field, ',')) {
      if (field.empty()) return false;
      char* tail = nullptr;
      tuple.push_back(static_cast<clftj::Value>(
          std::strtoull(field.c_str(), &tail, 10)));
      if (tail == nullptr || *tail != '\0') return false;
    }
    if (tuple.empty()) return false;
    tuples->push_back(std::move(tuple));
  }
  return !tuples->empty();
}

int ExitCodeFor(clftj::RunStatus status) {
  switch (status) {
    case clftj::RunStatus::kOk:
      return 0;
    case clftj::RunStatus::kBadQuery:
      return 2;
    case clftj::RunStatus::kTimeout:
      return 3;
    case clftj::RunStatus::kOutOfMemory:
      return 4;
    default:
      return 5;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string batch_path;
  clftj::QueryRequest request;
  clftj::ClientOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--query") {
      request.query_text = next();
    } else if (arg == "--query-file") {
      std::ifstream in(next());
      std::stringstream ss;
      ss << in.rdbuf();
      request.query_text = ss.str();
    } else if (arg == "--batch") {
      batch_path = next();
    } else if (arg == "--append" || arg == "--delete") {
      const std::string spec = next();
      std::string relation;
      std::vector<clftj::Tuple>* tuples =
          arg == "--append" ? &request.delta.adds : &request.delta.deletes;
      if (!ParseDeltaSpec(spec, &relation, tuples)) {
        std::cerr << arg << " expects R=1,2;3,4, got: " << spec << "\n";
        return 2;
      }
      if (!request.delta.relation.empty() &&
          request.delta.relation != relation) {
        std::cerr << "one DELTA request targets one relation ("
                  << request.delta.relation << " vs " << relation << ")\n";
        return 2;
      }
      request.delta.relation = relation;
      request.kind = "delta";
    } else if (arg == "--mode") {
      request.mode = next();
    } else if (arg == "--engine") {
      request.engine = next();
    } else if (arg == "--timeout-ms") {
      request.timeout_ms = std::stoull(next());
    } else if (arg == "--max-tuples") {
      request.max_tuples = std::stoull(next());
    } else if (arg == "--max-attempts") {
      options.max_attempts = std::stoi(next());
    } else if (arg == "--initial-backoff-ms") {
      options.initial_backoff_ms = std::stoull(next());
    } else if (arg == "--max-backoff-ms") {
      options.max_backoff_ms = std::stoull(next());
    } else if (arg == "--request-timeout-ms") {
      options.request_timeout_ms = std::stoull(next());
    } else if (arg == "--jitter-seed") {
      options.jitter_seed = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      Usage();
      return 2;
    }
  }

  if (socket_path.empty() ||
      (batch_path.empty() && request.kind == "run" &&
       request.query_text.empty())) {
    std::cerr << "--socket and a query (--query/--query-file), a batch file "
                 "(--batch) or a delta (--append/--delete) are required\n";
    Usage();
    return 2;
  }
  if (!batch_path.empty() &&
      (request.kind == "delta" || !request.query_text.empty())) {
    std::cerr << "--batch cannot be combined with --query or a delta\n";
    return 2;
  }
  if (request.kind == "delta" && !request.query_text.empty()) {
    std::cerr << "--query cannot be combined with --append/--delete\n";
    return 2;
  }
  // Strip a trailing newline from --query-file so the request stays one
  // protocol line.
  while (!request.query_text.empty() &&
         (request.query_text.back() == '\n' ||
          request.query_text.back() == '\r')) {
    request.query_text.pop_back();
  }

  clftj::QueryClient client(socket_path, options);

  if (!batch_path.empty()) {
    std::ifstream in(batch_path);
    if (!in) {
      std::cerr << "cannot read batch file: " << batch_path << "\n";
      return 2;
    }
    std::vector<clftj::QueryRequest> requests;
    std::string line;
    while (std::getline(in, line)) {
      while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
        line.pop_back();
      }
      if (line.empty()) continue;
      clftj::QueryRequest r = request;  // shared mode/engine/limit flags
      r.query_text = line;
      requests.push_back(std::move(r));
    }
    if (requests.empty()) {
      std::cerr << "batch file has no queries: " << batch_path << "\n";
      return 2;
    }
    const std::vector<clftj::ClientResult> results =
        client.RunBatch(requests);
    int exit_code = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const clftj::ClientResult& r = results[i];
      std::cout << "[" << i << "] ";
      if (!r.transport_ok) {
        std::cout << "TRANSPORT-FAILURE: " << r.transport_error << "\n";
        exit_code = std::max(exit_code, 6);
        continue;
      }
      const clftj::QueryResponse& response = r.response;
      std::cout << clftj::RunStatusName(response.status);
      if (response.status == clftj::RunStatus::kOk) {
        std::cout << " count=" << response.count
                  << " time=" << response.seconds << "s";
        if (response.stats.batch_size > 0) {
          std::cout << " batch=" << response.stats.batch_size;
        }
      } else if (!response.message.empty()) {
        std::cout << ": " << response.message;
      }
      std::cout << "\n";
      if (request.mode == "eval" &&
          response.status == clftj::RunStatus::kOk) {
        for (const clftj::Tuple& tuple : response.tuples) {
          for (std::size_t c = 0; c < tuple.size(); ++c) {
            std::cout << (c > 0 ? " " : "") << tuple[c];
          }
          std::cout << "\n";
        }
      }
      exit_code = std::max(exit_code, ExitCodeFor(response.status));
    }
    return exit_code;
  }

  const clftj::ClientResult result = client.Run(request);
  if (!result.transport_ok) {
    std::cerr << "transport failure after " << result.attempts
              << " attempt(s): " << result.transport_error << "\n";
    return 6;
  }
  const clftj::QueryResponse& response = result.response;
  if (response.status != clftj::RunStatus::kOk) {
    std::cerr << "error: " << clftj::RunStatusName(response.status)
              << (response.message.empty() ? "" : ": " + response.message)
              << " (after " << result.attempts << " attempt(s))\n";
    return ExitCodeFor(response.status);
  }
  if (request.kind == "delta") {
    // Deltas are set operations (no-op adds/deletes are skipped), so the
    // client's retry policy cannot double-apply one.
    std::cout << "applied: " << response.count << "\n";
  } else if (request.mode == "eval") {
    for (const clftj::Tuple& tuple : response.tuples) {
      for (std::size_t i = 0; i < tuple.size(); ++i) {
        std::cout << (i > 0 ? " " : "") << tuple[i];
      }
      std::cout << "\n";
    }
    std::cout << "tuples: " << response.count << "\n";
  } else {
    std::cout << "count: " << response.count << "\n";
  }
  std::cout << "time: " << response.seconds << "s  attempts: "
            << result.attempts << "\n";
  return 0;
}
