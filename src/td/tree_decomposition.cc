#include "td/tree_decomposition.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace clftj {

NodeId TreeDecomposition::AddNode(std::vector<VarId> bag, NodeId parent) {
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  const NodeId id = static_cast<NodeId>(bags_.size());
  if (parent == kNone) {
    CLFTJ_CHECK_MSG(root_ == kNone, "tree decomposition already has a root");
    root_ = id;
  } else {
    CLFTJ_CHECK(parent >= 0 && parent < num_nodes());
    children_[parent].push_back(id);
  }
  bags_.push_back(std::move(bag));
  parents_.push_back(parent);
  children_.emplace_back();
  return id;
}

std::vector<NodeId> TreeDecomposition::Preorder() const {
  std::vector<NodeId> order;
  if (root_ == kNone) return order;
  order.reserve(bags_.size());
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    // Push children reversed so they pop in original order.
    for (auto it = children_[v].rbegin(); it != children_[v].rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

std::vector<VarId> TreeDecomposition::Adhesion(NodeId v) const {
  CLFTJ_CHECK(v >= 0 && v < num_nodes());
  std::vector<VarId> adhesion;
  if (parents_[v] == kNone) return adhesion;
  const std::vector<VarId>& mine = bags_[v];
  const std::vector<VarId>& theirs = bags_[parents_[v]];
  std::set_intersection(mine.begin(), mine.end(), theirs.begin(),
                        theirs.end(), std::back_inserter(adhesion));
  return adhesion;
}

std::vector<NodeId> TreeDecomposition::Owners(int num_vars) const {
  std::vector<NodeId> owners(num_vars, kNone);
  for (const NodeId v : Preorder()) {
    for (const VarId x : bags_[v]) {
      if (x >= 0 && x < num_vars && owners[x] == kNone) owners[x] = v;
    }
  }
  return owners;
}

int TreeDecomposition::Depth() const {
  if (root_ == kNone) return 0;
  std::vector<std::pair<NodeId, int>> stack = {{root_, 1}};
  int depth = 0;
  while (!stack.empty()) {
    const auto [v, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    for (const NodeId c : children_[v]) stack.emplace_back(c, d + 1);
  }
  return depth;
}

bool TreeDecomposition::IsValidFor(const Query& q, std::string* why) const {
  const auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (root_ == kNone) return fail("empty decomposition");
  // Every node reachable from the root exactly once.
  if (static_cast<int>(Preorder().size()) != num_nodes()) {
    return fail("tree is not connected");
  }
  // (1) Atom coverage.
  for (int i = 0; i < q.num_atoms(); ++i) {
    std::vector<VarId> vars = q.atom(i).Vars();
    std::sort(vars.begin(), vars.end());
    bool covered = false;
    for (const auto& bag : bags_) {
      if (std::includes(bag.begin(), bag.end(), vars.begin(), vars.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return fail("atom " + std::to_string(i) + " not covered by any bag");
    }
  }
  // (2) Connectedness of every variable's occurrence set: the number of
  // nodes containing x whose parent does not contain x must be exactly one
  // (the top of the occurrence subtree) for each occurring variable.
  for (VarId x = 0; x < q.num_vars(); ++x) {
    int tops = 0;
    int occurrences = 0;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      const bool has =
          std::binary_search(bags_[v].begin(), bags_[v].end(), x);
      if (!has) continue;
      ++occurrences;
      const NodeId p = parents_[v];
      const bool parent_has =
          p != kNone && std::binary_search(bags_[p].begin(), bags_[p].end(), x);
      if (!parent_has) ++tops;
    }
    if (occurrences == 0) {
      return fail("variable " + q.var_name(x) + " appears in no bag");
    }
    if (tops != 1) {
      return fail("variable " + q.var_name(x) +
                  " does not induce a connected subtree");
    }
  }
  return true;
}

bool TreeDecomposition::IsCompatibleWith(
    const std::vector<VarId>& order) const {
  const int n = static_cast<int>(order.size());
  std::vector<int> rank(n, kNone);
  for (int i = 0; i < n; ++i) rank[order[i]] = i;
  const std::vector<NodeId> owners = Owners(n);
  for (VarId a = 0; a < n; ++a) {
    for (VarId b = 0; b < n; ++b) {
      if (owners[a] == kNone || owners[b] == kNone) return false;
      if (owners[b] != kNone && parents_[owners[b]] == owners[a] &&
          owners[a] != owners[b] && rank[a] >= rank[b]) {
        return false;
      }
    }
  }
  return true;
}

bool TreeDecomposition::IsStronglyCompatibleWith(
    const std::vector<VarId>& order) const {
  const int n = static_cast<int>(order.size());
  const std::vector<NodeId> owners = Owners(n);
  const std::vector<NodeId> preorder = Preorder();
  std::vector<int> pre_rank(num_nodes(), kNone);
  for (int i = 0; i < static_cast<int>(preorder.size()); ++i) {
    pre_rank[preorder[i]] = i;
  }
  int last_owner_rank = -1;
  for (const VarId x : order) {
    if (x < 0 || x >= n || owners[x] == kNone) return false;
    const int r = pre_rank[owners[x]];
    if (r < last_owner_rank) return false;
    last_owner_rank = r;
  }
  return true;
}

int TreeDecomposition::EliminateRedundantBags() {
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (bags_[v].empty() && v != root_) continue;  // already removed
      // Contract v into its parent if bag(v) ⊆ bag(parent), or contract a
      // child into v if bag(v) ⊆ bag(child).
      const NodeId p = parents_[v];
      if (p != kNone &&
          std::includes(bags_[p].begin(), bags_[p].end(), bags_[v].begin(),
                        bags_[v].end())) {
        // Replace v by its children in p's child list (preserving order).
        auto& siblings = children_[p];
        const auto it = std::find(siblings.begin(), siblings.end(), v);
        CLFTJ_CHECK(it != siblings.end());
        const std::size_t at = static_cast<std::size_t>(it - siblings.begin());
        siblings.erase(it);
        siblings.insert(siblings.begin() + at, children_[v].begin(),
                        children_[v].end());
        for (const NodeId c : children_[v]) parents_[c] = p;
        children_[v].clear();
        bags_[v].clear();
        parents_[v] = kNone;
        ++removed;
        changed = true;
        continue;
      }
      for (const NodeId c : children_[v]) {
        if (std::includes(bags_[c].begin(), bags_[c].end(), bags_[v].begin(),
                          bags_[v].end())) {
          // Contract v into child c: c takes v's place.
          auto& my_children = children_[v];
          const auto it = std::find(my_children.begin(), my_children.end(), c);
          const std::size_t at =
              static_cast<std::size_t>(it - my_children.begin());
          my_children.erase(it);
          // c inherits v's other children at v's position.
          std::vector<NodeId> merged = children_[c];
          merged.insert(merged.begin(), my_children.begin(),
                        my_children.begin() + at);
          merged.insert(merged.end(), my_children.begin() + at,
                        my_children.end());
          children_[c] = std::move(merged);
          for (const NodeId other : children_[v]) {
            if (other != c) parents_[other] = c;
          }
          for (const NodeId cc : children_[c]) parents_[cc] = c;
          parents_[c] = parents_[v];
          if (parents_[v] != kNone) {
            auto& siblings = children_[parents_[v]];
            std::replace(siblings.begin(), siblings.end(), v, c);
          } else {
            root_ = c;
          }
          children_[v].clear();
          bags_[v].clear();
          parents_[v] = kNone;
          ++removed;
          changed = true;
          break;
        }
      }
      if (changed) break;
    }
  }
  if (removed > 0) Compact();
  return removed;
}

void TreeDecomposition::Compact() {
  // Rebuild with only live nodes (those reachable from root_), renumbering
  // ids into preorder; child order is preserved by the DFS pop order.
  TreeDecomposition out;
  std::vector<std::pair<NodeId, NodeId>> stack = {{root_, kNone}};
  while (!stack.empty()) {
    const auto [v, new_parent] = stack.back();
    stack.pop_back();
    const NodeId nv = out.AddNode(bags_[v], new_parent);
    for (auto it = children_[v].rbegin(); it != children_[v].rend(); ++it) {
      stack.emplace_back(*it, nv);
    }
  }
  *this = std::move(out);
}

std::string TreeDecomposition::ToString(const Query& q) const {
  std::ostringstream os;
  const std::function<void(NodeId)> render = [&](NodeId v) {
    os << "{";
    for (std::size_t i = 0; i < bags_[v].size(); ++i) {
      if (i > 0) os << ",";
      os << q.var_name(bags_[v][i]);
    }
    os << "}";
    if (!children_[v].empty()) {
      os << "[";
      for (const NodeId c : children_[v]) render(c);
      os << "]";
    }
  };
  if (root_ != kNone) render(root_);
  return os.str();
}

std::vector<VarId> StronglyCompatibleOrder(
    const TreeDecomposition& td, int num_vars,
    const std::vector<int>* within_bag_rank) {
  const std::vector<NodeId> owners = td.Owners(num_vars);
  std::vector<VarId> order;
  order.reserve(num_vars);
  for (const NodeId v : td.Preorder()) {
    std::vector<VarId> owned;
    for (VarId x = 0; x < num_vars; ++x) {
      if (owners[x] == v) owned.push_back(x);
    }
    if (within_bag_rank != nullptr) {
      std::stable_sort(owned.begin(), owned.end(),
                       [within_bag_rank](VarId a, VarId b) {
                         return (*within_bag_rank)[a] < (*within_bag_rank)[b];
                       });
    }
    order.insert(order.end(), owned.begin(), owned.end());
  }
  CLFTJ_CHECK_MSG(static_cast<int>(order.size()) == num_vars,
                  "some variable is not owned by any bag");
  return order;
}

}  // namespace clftj
