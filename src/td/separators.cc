#include "td/separators.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace clftj {

namespace {

// Connected components of g after removing `removed` nodes. Returns a label
// per node (-1 for removed) and the number of components.
int Components(const AdjacencyList& g, const std::vector<bool>& removed,
               std::vector<int>* label) {
  const int n = static_cast<int>(g.size());
  label->assign(n, -1);
  int comps = 0;
  for (int s = 0; s < n; ++s) {
    if (removed[s] || (*label)[s] != -1) continue;
    (*label)[s] = comps;
    std::vector<int> stack = {s};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const int u : g[v]) {
        if (u == v || removed[u] || (*label)[u] != -1) continue;
        (*label)[u] = comps;
        stack.push_back(u);
      }
    }
    ++comps;
  }
  return comps;
}

std::vector<bool> ToMask(int n, const std::vector<int>& nodes) {
  std::vector<bool> mask(n, false);
  for (const int v : nodes) {
    CLFTJ_CHECK(v >= 0 && v < n);
    mask[v] = true;
  }
  return mask;
}

// Unit-capacity node-split max-flow network for minimum vertex cut.
// Node v becomes v_in = 2v and v_out = 2v+1 with an internal arc of the
// node's capacity; undirected edge {a,b} becomes a_out->b_in and b_out->a_in
// with infinite capacity. A super-source feeds the source side.
class VertexCutSolver {
 public:
  VertexCutSolver(const AdjacencyList& g, const std::vector<bool>& deleted,
                  const std::vector<bool>& infinite_cap)
      : n_(static_cast<int>(g.size())) {
    const int num_vertices = 2 * n_ + 1;  // +1 for the super-source
    head_.assign(num_vertices, -1);
    for (int v = 0; v < n_; ++v) {
      if (deleted[v]) continue;
      AddArc(In(v), Out(v), infinite_cap[v] ? kInf : 1);
      for (const int u : g[v]) {
        if (u == v || deleted[u]) continue;
        AddArc(Out(v), In(u), kInf);
      }
    }
  }

  // Computes the min cut between `sources` (their in-nodes) and sink t's
  // in-node. Returns the cut size (possibly kInf) and fills `cut` with the
  // nodes whose internal arcs are saturated and cross the cut.
  int MinCut(const std::vector<int>& sources, int t, std::vector<int>* cut) {
    // Reset flow.
    for (auto& e : edges_) e.flow = 0;
    const int s = 2 * n_;
    source_arcs_.clear();
    for (const int src : sources) {
      source_arcs_.push_back(AddArc(s, In(src), kInf));
    }
    int total = 0;
    while (total < kInf) {
      const int pushed = Augment(s, In(t));
      if (pushed == 0) break;
      total += pushed;
      if (total >= kInf) return kInf;
    }
    // Remove the temporary source arcs (capacities zeroed so reachability
    // below ignores them is unnecessary: they remain; fine since s is the
    // BFS start anyway).
    cut->clear();
    std::vector<bool> reachable(2 * n_ + 1, false);
    Bfs(s, &reachable);
    for (int v = 0; v < n_; ++v) {
      if (head_[In(v)] == -1) continue;
      if (reachable[In(v)] && !reachable[Out(v)]) cut->push_back(v);
    }
    // Detach source arcs for the next call.
    for (const int arc : source_arcs_) edges_[arc].cap = 0;
    std::sort(cut->begin(), cut->end());
    return total;
  }

  static constexpr int kInf = 1 << 28;

 private:
  struct Edge {
    int to;
    int next;
    int cap;
    int flow;
  };

  int In(int v) const { return 2 * v; }
  int Out(int v) const { return 2 * v + 1; }

  int AddArc(int from, int to, int cap) {
    const int id = static_cast<int>(edges_.size());
    edges_.push_back({to, head_[from], cap, 0});
    head_[from] = id;
    edges_.push_back({from, head_[to], 0, 0});  // residual
    head_[to] = id + 1;
    return id;
  }

  // One BFS augmentation (Edmonds–Karp, unit capacities -> O(1) per path).
  int Augment(int s, int t) {
    std::vector<int> parent_edge(head_.size(), -1);
    std::vector<bool> seen(head_.size(), false);
    std::queue<int> q;
    q.push(s);
    seen[s] = true;
    while (!q.empty() && !seen[t]) {
      const int v = q.front();
      q.pop();
      for (int e = head_[v]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap - edges_[e].flow <= 0) continue;
        const int u = edges_[e].to;
        if (seen[u]) continue;
        seen[u] = true;
        parent_edge[u] = e;
        q.push(u);
      }
    }
    if (!seen[t]) return 0;
    // Find bottleneck and push.
    int bottleneck = kInf;
    for (int v = t; v != s;) {
      const int e = parent_edge[v];
      bottleneck = std::min(bottleneck, edges_[e].cap - edges_[e].flow);
      v = edges_[e ^ 1].to;
    }
    for (int v = t; v != s;) {
      const int e = parent_edge[v];
      edges_[e].flow += bottleneck;
      edges_[e ^ 1].flow -= bottleneck;
      v = edges_[e ^ 1].to;
    }
    return bottleneck;
  }

  void Bfs(int s, std::vector<bool>* reachable) {
    std::queue<int> q;
    q.push(s);
    (*reachable)[s] = true;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int e = head_[v]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap - edges_[e].flow <= 0) continue;
        const int u = edges_[e].to;
        if (!(*reachable)[u]) {
          (*reachable)[u] = true;
          q.push(u);
        }
      }
    }
  }

  int n_;
  std::vector<int> head_;
  std::vector<Edge> edges_;
  std::vector<int> source_arcs_;
};

}  // namespace

bool IsConstrainedSeparator(const AdjacencyList& g,
                            const std::vector<int>& constraint_set,
                            const std::vector<int>& separator) {
  const int n = static_cast<int>(g.size());
  const std::vector<bool> removed = ToMask(n, separator);
  std::vector<int> label;
  const int comps = Components(g, removed, &label);
  if (comps < 2) return false;
  // Component ids that intersect C.
  std::vector<bool> touched(comps, false);
  for (const int c : constraint_set) {
    if (!removed[c] && label[c] != -1) touched[label[c]] = true;
  }
  for (int comp = 0; comp < comps; ++comp) {
    if (!touched[comp]) return true;
  }
  return false;
}

std::optional<std::vector<int>> MinConstrainedSeparator(
    const AdjacencyList& g, const std::vector<int>& constraint_set,
    const std::vector<int>& include, const std::vector<int>& exclude) {
  const int n = static_cast<int>(g.size());
  if (n == 0) return std::nullopt;
  const std::vector<bool> in_c = ToMask(n, constraint_set);
  const std::vector<bool> in_i = ToMask(n, include);
  const std::vector<bool> in_x = ToMask(n, exclude);
  for (const int v : include) {
    if (in_x[v]) return std::nullopt;  // contradictory constraints
  }

  // Work on g - include: included nodes are committed to the separator.
  // A node t can witness the component disjoint from C, u the other side.
  // S = include ∪ (min vertex cut separating t from {u} ∪ C), where C and u
  // may themselves be cut (paying 1) — modeled by attaching the super-
  // source to their in-nodes — except u, which must survive, so u gets
  // infinite capacity. Excluded nodes also get infinite capacity.
  std::optional<std::vector<int>> best;
  for (int t = 0; t < n; ++t) {
    if (in_c[t] || in_i[t]) continue;
    for (int u = 0; u < n; ++u) {
      if (u == t || in_i[u]) continue;
      // u must not be cut: give it infinite capacity by rebuilding the
      // solver with u marked infinite. (Graphs here are Gaifman graphs of
      // queries — tiny — so rebuilding per pair is affordable and keeps the
      // flow network simple.)
      std::vector<bool> inf_cap = in_x;
      inf_cap[u] = true;
      VertexCutSolver solver(g, in_i, inf_cap);
      std::vector<int> sources = {u};
      for (const int c : constraint_set) {
        if (!in_i[c] && c != t) sources.push_back(c);
      }
      std::sort(sources.begin(), sources.end());
      sources.erase(std::unique(sources.begin(), sources.end()),
                    sources.end());
      std::vector<int> cut;
      const int value = solver.MinCut(sources, t, &cut);
      if (value >= VertexCutSolver::kInf) continue;
      std::vector<int> candidate = include;
      candidate.insert(candidate.end(), cut.begin(), cut.end());
      std::sort(candidate.begin(), candidate.end());
      candidate.erase(std::unique(candidate.begin(), candidate.end()),
                      candidate.end());
      if (!IsConstrainedSeparator(g, constraint_set, candidate)) continue;
      bool excluded_hit = false;
      for (const int v : candidate) {
        if (in_x[v]) excluded_hit = true;
      }
      if (excluded_hit) continue;
      if (!best.has_value() || candidate.size() < best->size()) {
        best = std::move(candidate);
      }
    }
  }
  return best;
}

ConstrainedSeparatorEnumerator::ConstrainedSeparatorEnumerator(
    AdjacencyList g, std::vector<int> constraint_set)
    : g_(std::move(g)), constraint_set_(std::move(constraint_set)) {
  Push({}, {});
}

void ConstrainedSeparatorEnumerator::Push(std::vector<int> include,
                                          std::vector<int> exclude) {
  std::optional<std::vector<int>> solution =
      MinConstrainedSeparator(g_, constraint_set_, include, exclude);
  if (!solution.has_value()) return;
  heap_.push_back(Subproblem{std::move(include), std::move(exclude),
                             std::move(*solution), next_tiebreak_++});
  std::push_heap(heap_.begin(), heap_.end(), SubproblemOrder());
}

std::optional<std::vector<int>> ConstrainedSeparatorEnumerator::Next() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), SubproblemOrder());
  const Subproblem top = std::move(heap_.back());
  heap_.pop_back();

  // Lawler–Murty branching: partition the remaining subspace
  // {T : include ⊆ T, T ∩ exclude = ∅, T ≠ S} around the emitted solution
  // S. Separator families are not antichains — proper supersets of S can be
  // separators too — so two branching dimensions are needed:
  //   (a) T ⊉ S: child i forces s1..s_{i-1} in and s_i out, where s1..sk
  //       enumerates S \ include;
  //   (b) T ⊋ S: child j forces S ∪ {v_j} in and v_1..v_{j-1} out, where
  //       v1..vm enumerates the nodes outside S ∪ exclude.
  // All subspaces are pairwise disjoint and jointly exhaustive, which is
  // what guarantees enumeration without repetition.
  std::vector<int> free_part;
  for (const int v : top.solution) {
    if (std::find(top.include.begin(), top.include.end(), v) ==
        top.include.end()) {
      free_part.push_back(v);
    }
  }
  for (std::size_t i = 0; i < free_part.size(); ++i) {
    std::vector<int> include = top.include;
    include.insert(include.end(), free_part.begin(), free_part.begin() + i);
    std::vector<int> exclude = top.exclude;
    exclude.push_back(free_part[i]);
    Push(std::move(include), std::move(exclude));
  }
  std::vector<int> outside;
  for (int v = 0; v < static_cast<int>(g_.size()); ++v) {
    const bool in_solution = std::find(top.solution.begin(),
                                       top.solution.end(),
                                       v) != top.solution.end();
    const bool excluded = std::find(top.exclude.begin(), top.exclude.end(),
                                    v) != top.exclude.end();
    if (!in_solution && !excluded) outside.push_back(v);
  }
  for (std::size_t j = 0; j < outside.size(); ++j) {
    std::vector<int> include = top.solution;
    include.push_back(outside[j]);
    std::vector<int> exclude = top.exclude;
    exclude.insert(exclude.end(), outside.begin(), outside.begin() + j);
    Push(std::move(include), std::move(exclude));
  }
  return top.solution;
}

}  // namespace clftj
