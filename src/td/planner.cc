#include "td/planner.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/check.h"

namespace clftj {

namespace {

std::atomic<std::uint64_t> planner_searches{0};

}  // namespace

std::uint64_t PlannerSearchCount() {
  return planner_searches.load(std::memory_order_relaxed);
}

TdPlan MakePlanFromTd(const Query& q, const Database& db,
                      TreeDecomposition td, const PlannerOptions& options) {
  std::string why;
  CLFTJ_CHECK_MSG(td.IsValidFor(q, &why), why.c_str());
  TdPlan plan;
  plan.order = StronglyCompatibleOrder(td, q.num_vars());
  plan.structural_cost = StructuralTdCost(q, td, options.weights);
  plan.order_cost =
      options.use_order_cost ? ChuOrderCost(q, db, plan.order) : 0.0;
  plan.cached_cost =
      options.use_order_cost ? CachedPlanCost(q, db, td, plan.order) : 0.0;
  plan.td = std::move(td);
  CLFTJ_CHECK(plan.td.IsStronglyCompatibleWith(plan.order));
  return plan;
}

std::vector<TdPlan> EnumeratePlans(const Query& q, const Database& db,
                                   const PlannerOptions& options) {
  planner_searches.fetch_add(1, std::memory_order_relaxed);
  std::vector<TdPlan> plans;
  for (TreeDecomposition& td : EnumerateTds(q, options.decompose)) {
    plans.push_back(MakePlanFromTd(q, db, std::move(td), options));
  }
  // Structural cost is a heuristic: treat plans within a factor of two as
  // equivalent and let the data-aware order cost decide among them —
  // exactly the role the paper assigns to the Chu et al. model.
  const auto bucket = [](double cost) {
    return static_cast<int>(std::floor(std::log2(std::max(1.0, cost))));
  };
  std::stable_sort(plans.begin(), plans.end(),
                   [&bucket](const TdPlan& a, const TdPlan& b) {
                     const int ba = bucket(a.structural_cost);
                     const int bb = bucket(b.structural_cost);
                     if (ba != bb) return ba < bb;
                     if (a.cached_cost != b.cached_cost) {
                       return a.cached_cost < b.cached_cost;
                     }
                     return a.structural_cost < b.structural_cost;
                   });
  return plans;
}

TdPlan PlanQuery(const Query& q, const Database& db,
                 const PlannerOptions& options) {
  std::vector<TdPlan> plans = EnumeratePlans(q, db, options);
  CLFTJ_CHECK(!plans.empty());
  return std::move(plans.front());
}

}  // namespace clftj
