#ifndef CLFTJ_TD_DECOMPOSE_H_
#define CLFTJ_TD_DECOMPOSE_H_

#include <vector>

#include "query/query.h"
#include "td/tree_decomposition.h"

namespace clftj {

/// Knobs for GenericDecompose / EnumerateTds (Section 4.3: bound the
/// adhesion size in the separator enumeration, cap the number of generated
/// decompositions).
struct DecomposeOptions {
  /// Separators larger than this are never used (they would become cache
  /// dimensions; the paper's implementation supports up to 2).
  int max_adhesion_size = 2;
  /// How many separators are tried at each recursion node when enumerating.
  int branch = 8;
  /// Cap on the number of decompositions returned by EnumerateTds.
  int max_tds = 40;
};

/// The paper's GenericDecompose (Figure 4): recursively splits the Gaifman
/// graph along the smallest C-constrained separating set, producing an
/// ordered TD whose adhesions are the chosen separators. Falls back to the
/// singleton decomposition when no separator within the adhesion bound
/// exists (e.g. cliques). Redundant bags are eliminated.
TreeDecomposition GenericDecompose(const Query& q,
                                   const DecomposeOptions& options = {});

/// Enumerates multiple TDs by exploring alternative separators (by
/// increasing size, via ConstrainedSeparatorEnumerator) at every recursion
/// node, depth-first, deduplicated, capped at options.max_tds. The first
/// element equals GenericDecompose's result. Every returned TD is valid for
/// q (checked).
std::vector<TreeDecomposition> EnumerateTds(
    const Query& q, const DecomposeOptions& options = {});

}  // namespace clftj

#endif  // CLFTJ_TD_DECOMPOSE_H_
