#ifndef CLFTJ_TD_TREE_DECOMPOSITION_H_
#define CLFTJ_TD_TREE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "util/common.h"

namespace clftj {

/// A rooted, ordered tree decomposition of a query (Section 2.3 of the
/// paper): every node carries a bag of variables; child order matters
/// because the preorder ≺pre both defines variable ownership and must agree
/// with the join's variable order (strong compatibility).
class TreeDecomposition {
 public:
  TreeDecomposition() = default;

  /// Adds a node with the given bag (deduplicated, kept sorted). `parent`
  /// must be an existing node id or kNone for the root (only one root
  /// allowed). Children keep insertion order. Returns the new node id.
  NodeId AddNode(std::vector<VarId> bag, NodeId parent);

  int num_nodes() const { return static_cast<int>(bags_.size()); }
  NodeId root() const { return root_; }
  NodeId parent(NodeId v) const { return parents_[v]; }
  const std::vector<NodeId>& children(NodeId v) const { return children_[v]; }
  const std::vector<VarId>& bag(NodeId v) const { return bags_[v]; }

  /// Node ids in preorder (root first, children in order).
  std::vector<NodeId> Preorder() const;

  /// The parent adhesion χ(v) ∩ χ(parent(v)), sorted. Empty for the root.
  std::vector<VarId> Adhesion(NodeId v) const;

  /// owner(x) for every variable: the ≺pre-minimal node whose bag contains
  /// x, or kNone if no bag contains x. `num_vars` sizes the result.
  std::vector<NodeId> Owners(int num_vars) const;

  /// Depth of the tree (root = 1). 0 for an empty decomposition.
  int Depth() const;

  /// Verifies the TD properties for `q`: (1) every atom's variables are
  /// contained in some bag; (2) for every variable the bags containing it
  /// induce a connected subtree. On failure returns false and, if non-null,
  /// fills `why`.
  bool IsValidFor(const Query& q, std::string* why = nullptr) const;

  /// Compatibility of this TD with a variable order (Joglekar et al.):
  /// owner(x_i) parent of owner(x_j) implies i < j.
  bool IsCompatibleWith(const std::vector<VarId>& order) const;

  /// Strong compatibility (Section 2.3): owner(x_i) ≺pre owner(x_j)
  /// implies i < j. Implies compatibility. Requires every variable in the
  /// order to be owned by some node.
  bool IsStronglyCompatibleWith(const std::vector<VarId>& order) const;

  /// Removes redundant bags (a bag contained in its parent's or a child's
  /// bag) by contracting the edge, reattaching children; preserves TD
  /// validity and child order. Returns the number of bags removed.
  int EliminateRedundantBags();

  /// Renders e.g. "{x1,x2}[{x2}{x2,x3}]" for debugging.
  std::string ToString(const Query& q) const;

 private:
  /// Rebuilds internal arrays after bag contraction, dropping dead nodes.
  void Compact();

  NodeId root_ = kNone;
  std::vector<std::vector<VarId>> bags_;
  std::vector<NodeId> parents_;
  std::vector<std::vector<NodeId>> children_;
};

/// Builds the canonical strongly-compatible variable order of an ordered TD:
/// walk nodes in preorder and append each node's owned variables. Within a
/// node, owned variables keep ascending VarId order unless `within_bag_rank`
/// is provided (smaller rank first). All query variables must be owned.
std::vector<VarId> StronglyCompatibleOrder(
    const TreeDecomposition& td, int num_vars,
    const std::vector<int>* within_bag_rank = nullptr);

}  // namespace clftj

#endif  // CLFTJ_TD_TREE_DECOMPOSITION_H_
