#ifndef CLFTJ_TD_COST_MODEL_H_
#define CLFTJ_TD_COST_MODEL_H_

#include <vector>

#include "data/database.h"
#include "query/query.h"
#include "td/tree_decomposition.h"

namespace clftj {

/// Weights of the structural TD cost (Section 4.3): wide bags are
/// exponentially bad (a bag is solved with a WCOJ whose cost grows with bag
/// width, and a singleton decomposition disables caching entirely), small
/// adhesions are good (low-dimension cache keys hit more often), shallow
/// trees are good. Splitting into more, narrower bags lowers the dominant
/// exponential term, which is exactly the paper's "many bags are better"
/// preference.
struct StructuralCostWeights {
  double bag_exp_base = 3.0;  // Σ base^|bag| over all bags
  double adhesion = 1.0;      // per squared adhesion cardinality
  double depth = 0.5;         // penalty per level of tree depth
};

/// Heuristic cost of a TD as a caching scheme; lower is better. `q` is
/// used to detect "Cartesian" bags — bags containing variables that no
/// atom inside the bag constrains; enumerating such a bag degenerates to a
/// cross product, so each uncovered variable multiplies the bag's
/// exponential term.
double StructuralTdCost(const Query& q, const TreeDecomposition& td,
                        const StructuralCostWeights& weights = {});

/// Cache-aware cost of a full CLFTJ plan: models that each TD node's
/// subtree is computed once per *distinct* adhesion assignment (later
/// occurrences hit the cache). The number of distinct assignments is
/// estimated per adhesion variable with the collision-based "effective
/// distinct count" (Σf)²/Σf² of its column histogram, which shrinks under
/// skew — this is what makes the planner prefer caching on skewed
/// attributes (the paper's Section 4.3 discussion and Figure 13). Lower is
/// better.
double CachedPlanCost(const Query& q, const Database& db,
                      const TreeDecomposition& td,
                      const std::vector<VarId>& order);

/// Cardinality-based cost of a variable elimination order in the style of
/// Chu, Balazinska and Suciu (SIGMOD'15): estimates the number of partial
/// assignments the trie join materializes at each depth,
///
///   N_0 = 1,  N_d = N_{d-1} * min over atoms A containing x_d of the
///   average trie branching factor of A at x_d's level,
///
/// and returns sum_d N_d. Branching factors come from the actual per-atom
/// trie level cardinalities under this order, so the estimate reflects the
/// data, not just the query shape. Lower is better.
double ChuOrderCost(const Query& q, const Database& db,
                    const std::vector<VarId>& order);

}  // namespace clftj

#endif  // CLFTJ_TD_COST_MODEL_H_
