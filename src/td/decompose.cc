#include "td/decompose.h"

#include <algorithm>
#include <set>
#include <string>

#include "td/separators.h"
#include "util/check.h"

namespace clftj {

namespace {

// A decomposition fragment over global variable ids, easier to graft
// recursively than TreeDecomposition.
struct Frag {
  std::vector<VarId> bag;
  std::vector<Frag> children;
};

// Induced subgraph of the global adjacency on `nodes` (sorted global ids),
// expressed over local indices 0..|nodes|-1.
AdjacencyList InducedSubgraph(const AdjacencyList& global,
                              const std::vector<int>& nodes) {
  const int n = static_cast<int>(nodes.size());
  std::vector<int> local_of(global.size(), -1);
  for (int i = 0; i < n; ++i) local_of[nodes[i]] = i;
  AdjacencyList adj(n);
  for (int i = 0; i < n; ++i) {
    for (const int u : global[nodes[i]]) {
      if (local_of[u] != -1 && local_of[u] != i) {
        adj[i].push_back(local_of[u]);
      }
    }
  }
  return adj;
}

// Components of adj minus `removed` (local indices): list of sorted lists.
std::vector<std::vector<int>> ComponentsOf(const AdjacencyList& adj,
                                           const std::vector<bool>& removed) {
  const int n = static_cast<int>(adj.size());
  std::vector<int> label(n, -1);
  std::vector<std::vector<int>> comps;
  for (int s = 0; s < n; ++s) {
    if (removed[s] || label[s] != -1) continue;
    comps.emplace_back();
    std::vector<int> stack = {s};
    label[s] = static_cast<int>(comps.size()) - 1;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      comps.back().push_back(v);
      for (const int u : adj[v]) {
        if (!removed[u] && label[u] == -1) {
          label[u] = label[s];
          stack.push_back(u);
        }
      }
    }
    std::sort(comps.back().begin(), comps.back().end());
  }
  return comps;
}

std::vector<int> SortedUnion(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

class FragBuilder {
 public:
  FragBuilder(const AdjacencyList& global, const DecomposeOptions& options)
      : global_(global), options_(options) {}

  // RecursiveTD over global node set `nodes` (sorted) with constraint C
  // (sorted, subset of nodes). Returns up to `budget` alternative fragments,
  // each a TD of the induced subgraph whose root bag contains C.
  std::vector<Frag> Build(const std::vector<int>& nodes,
                          const std::vector<int>& constraint, int budget) {
    CLFTJ_CHECK(budget >= 1);
    const AdjacencyList local = InducedSubgraph(global_, nodes);
    std::vector<int> local_constraint;
    {
      std::vector<int> local_of(global_.size(), -1);
      for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
        local_of[nodes[i]] = i;
      }
      for (const int c : constraint) {
        CLFTJ_CHECK(local_of[c] != -1);
        local_constraint.push_back(local_of[c]);
      }
      std::sort(local_constraint.begin(), local_constraint.end());
    }

    std::vector<Frag> results;
    ConstrainedSeparatorEnumerator enumerator(local, local_constraint);
    for (int tried = 0; tried < options_.branch; ++tried) {
      std::optional<std::vector<int>> sep_local = enumerator.Next();
      if (!sep_local.has_value() ||
          static_cast<int>(sep_local->size()) > options_.max_adhesion_size) {
        break;  // enumeration is by increasing size: nothing smaller left
      }
      BuildWithSeparator(nodes, constraint, local, *sep_local,
                         budget - static_cast<int>(results.size()),
                         &results);
      if (static_cast<int>(results.size()) >= budget) break;
    }
    if (results.empty()) {
      // No usable separator: the singleton decomposition (Figure 4 line 3).
      results.push_back(Frag{nodes, {}});
    }
    return results;
  }

 private:
  void BuildWithSeparator(const std::vector<int>& nodes,
                          const std::vector<int>& constraint,
                          const AdjacencyList& local,
                          const std::vector<int>& sep_local, int budget,
                          std::vector<Frag>* results) {
    if (budget <= 0) return;
    // Map separator back to global ids.
    std::vector<int> sep;
    for (const int s : sep_local) sep.push_back(nodes[s]);
    std::sort(sep.begin(), sep.end());

    // Components of the induced graph minus the separator; U is the union
    // of components intersecting C (or an arbitrary one when C ⊆ S).
    std::vector<bool> removed(local.size(), false);
    for (const int s : sep_local) removed[s] = true;
    const std::vector<std::vector<int>> comps = ComponentsOf(local, removed);
    CLFTJ_CHECK(comps.size() >= 2);  // sep is a separating set
    std::vector<bool> in_c(local.size(), false);
    {
      std::vector<int> local_of(global_.size(), -1);
      for (int i = 0; i < static_cast<int>(nodes.size()); ++i) {
        local_of[nodes[i]] = i;
      }
      for (const int c : constraint) {
        if (!removed[local_of[c]]) in_c[local_of[c]] = true;
      }
    }
    std::vector<int> u_side;          // local indices
    std::vector<std::vector<int>> rest;  // local indices per component
    for (const auto& comp : comps) {
      const bool touches_c = std::any_of(comp.begin(), comp.end(),
                                         [&in_c](int v) { return in_c[v]; });
      if (touches_c) {
        u_side.insert(u_side.end(), comp.begin(), comp.end());
      } else {
        rest.push_back(comp);
      }
    }
    if (u_side.empty()) {
      // C ⊆ S (or C empty): pick an arbitrary component as U.
      u_side = rest.front();
      rest.erase(rest.begin());
    }
    CLFTJ_CHECK(!rest.empty());  // the C-constrained property guarantees this

    const auto to_global = [&nodes](const std::vector<int>& locals) {
      std::vector<int> out;
      out.reserve(locals.size());
      for (const int v : locals) out.push_back(nodes[v]);
      std::sort(out.begin(), out.end());
      return out;
    };

    const std::vector<int> u_nodes = SortedUnion(to_global(u_side), sep);
    const std::vector<int> c_and_s = SortedUnion(constraint, sep);
    const int sub_budget = std::max(1, budget / 2);
    const std::vector<Frag> roots = Build(u_nodes, c_and_s, sub_budget);
    std::vector<std::vector<Frag>> child_alts;
    for (const auto& comp : rest) {
      child_alts.push_back(
          Build(SortedUnion(to_global(comp), sep), sep, sub_budget));
    }

    // Zip alternatives index-wise (alternative j uses variant j of each
    // part, clamped) — diverse without a cartesian blowup.
    std::size_t variants = roots.size();
    for (const auto& alts : child_alts) {
      variants = std::max(variants, alts.size());
    }
    for (std::size_t j = 0; j < variants && budget > 0; ++j, --budget) {
      Frag frag = roots[std::min(j, roots.size() - 1)];
      for (const auto& alts : child_alts) {
        frag.children.push_back(alts[std::min(j, alts.size() - 1)]);
      }
      results->push_back(std::move(frag));
    }
  }

  const AdjacencyList& global_;
  DecomposeOptions options_;
};

void FragToTd(const Frag& frag, NodeId parent, TreeDecomposition* td) {
  const NodeId v = td->AddNode(frag.bag, parent);
  for (const Frag& child : frag.children) FragToTd(child, v, td);
}

std::string CanonicalString(const TreeDecomposition& td) {
  std::string out;
  const std::vector<NodeId> pre = td.Preorder();
  for (const NodeId v : pre) {
    out += "(";
    for (const VarId x : td.bag(v)) out += std::to_string(x) + ",";
    out += "|" + std::to_string(td.parent(v)) + ")";
  }
  return out;
}

}  // namespace

TreeDecomposition GenericDecompose(const Query& q,
                                   const DecomposeOptions& options) {
  std::vector<TreeDecomposition> all = EnumerateTds(q, options);
  CLFTJ_CHECK(!all.empty());
  return all.front();
}

std::vector<TreeDecomposition> EnumerateTds(const Query& q,
                                            const DecomposeOptions& options) {
  const AdjacencyList gaifman = q.GaifmanGraph();
  std::vector<int> all_nodes(q.num_vars());
  for (int i = 0; i < q.num_vars(); ++i) all_nodes[i] = i;

  FragBuilder builder(gaifman, options);
  const std::vector<Frag> frags =
      builder.Build(all_nodes, {}, std::max(1, options.max_tds));

  std::vector<TreeDecomposition> tds;
  std::set<std::string> seen;
  for (const Frag& frag : frags) {
    TreeDecomposition td;
    FragToTd(frag, kNone, &td);
    td.EliminateRedundantBags();
    CLFTJ_CHECK_MSG(td.IsValidFor(q), "GenericDecompose produced invalid TD");
    if (seen.insert(CanonicalString(td)).second) {
      tds.push_back(std::move(td));
    }
    if (static_cast<int>(tds.size()) >= options.max_tds) break;
  }
  return tds;
}

}  // namespace clftj
