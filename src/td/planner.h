#ifndef CLFTJ_TD_PLANNER_H_
#define CLFTJ_TD_PLANNER_H_

#include <vector>

#include "data/database.h"
#include "query/query.h"
#include "td/cost_model.h"
#include "td/decompose.h"
#include "td/tree_decomposition.h"

namespace clftj {

/// A fully resolved caching plan for CLFTJ (and YTD): an ordered TD plus a
/// variable order the TD is strongly compatible with.
struct TdPlan {
  TreeDecomposition td;
  std::vector<VarId> order;
  double structural_cost = 0.0;
  /// Chu et al. order cost (cache-oblivious; reported for analysis).
  double order_cost = 0.0;
  /// Cache-aware plan cost (CachedPlanCost) — the planner's ranking key
  /// within a structural-cost bucket.
  double cached_cost = 0.0;
};

struct PlannerOptions {
  DecomposeOptions decompose;
  StructuralCostWeights weights;
  /// Whether to break structural-cost ties with the data-aware Chu order
  /// cost (this is what separates the isomorphic TD1/TD2 of Figure 13).
  bool use_order_cost = true;
};

/// Builds a TdPlan from an explicit TD: derives the canonical strongly
/// compatible order and fills in costs. Aborts if the TD is invalid for q.
TdPlan MakePlanFromTd(const Query& q, const Database& db,
                      TreeDecomposition td,
                      const PlannerOptions& options = {});

/// Enumerates candidate TDs (Section 4), scores each (structural cost
/// first, Chu order cost as tie-break/secondary), and returns the best
/// plan. Always succeeds: for indecomposable queries (cliques) the plan is
/// the singleton TD, under which CLFTJ degenerates to plain LFTJ.
TdPlan PlanQuery(const Query& q, const Database& db,
                 const PlannerOptions& options = {});

/// All scored candidate plans, best first (for analysis and benches).
std::vector<TdPlan> EnumeratePlans(const Query& q, const Database& db,
                                   const PlannerOptions& options = {});

/// Process-wide number of planner searches (EnumeratePlans invocations)
/// since startup. Observability for the serving loop's plan cache: a warm
/// request must not move this counter — tests pin "0 TD enumerations on a
/// repeat" on its delta.
std::uint64_t PlannerSearchCount();

}  // namespace clftj

#endif  // CLFTJ_TD_PLANNER_H_
