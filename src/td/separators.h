#ifndef CLFTJ_TD_SEPARATORS_H_
#define CLFTJ_TD_SEPARATORS_H_

#include <optional>
#include <vector>

#include "util/common.h"

namespace clftj {

/// Undirected graph on nodes 0..n-1 as adjacency lists (as produced by
/// Query::GaifmanGraph). Lists must be symmetric; self loops are ignored.
using AdjacencyList = std::vector<std::vector<int>>;

/// A C-constrained separating set of g (Section 4 of the paper): a set S of
/// nodes such that g - S is disconnected and at least one connected
/// component of g - S is disjoint from C.
///
/// Checks the definition directly (used by tests and by the enumerator's
/// own postconditions).
bool IsConstrainedSeparator(const AdjacencyList& g,
                            const std::vector<int>& constraint_set,
                            const std::vector<int>& separator);

/// Finds a minimum-cardinality C-constrained separating set subject to
/// membership constraints: S must contain every node of `include` and no
/// node of `exclude`. Returns nullopt if no such separator exists. This is
/// the polynomial-time oracle of Lemma 4.3, implemented by reduction to
/// minimum vertex cut (node-split max-flow / Menger).
std::optional<std::vector<int>> MinConstrainedSeparator(
    const AdjacencyList& g, const std::vector<int>& constraint_set,
    const std::vector<int>& include, const std::vector<int>& exclude);

/// Enumerates all C-constrained separating sets of g by non-decreasing size
/// with polynomial delay and no repetitions (Theorem 4.4), via the
/// Lawler–Murty procedure over MinConstrainedSeparator.
class ConstrainedSeparatorEnumerator {
 public:
  ConstrainedSeparatorEnumerator(AdjacencyList g,
                                 std::vector<int> constraint_set);

  /// Returns the next separator (sorted), or nullopt when exhausted.
  /// Successive results never decrease in size.
  std::optional<std::vector<int>> Next();

 private:
  struct Subproblem {
    std::vector<int> include;
    std::vector<int> exclude;
    std::vector<int> solution;
    std::uint64_t tiebreak = 0;  // insertion order, for determinism
  };
  struct SubproblemOrder {
    bool operator()(const Subproblem& a, const Subproblem& b) const {
      if (a.solution.size() != b.solution.size()) {
        return a.solution.size() > b.solution.size();  // min-heap by size
      }
      return a.tiebreak > b.tiebreak;
    }
  };

  AdjacencyList g_;
  std::vector<int> constraint_set_;
  std::vector<Subproblem> heap_;
  std::uint64_t next_tiebreak_ = 0;

  void Push(std::vector<int> include, std::vector<int> exclude);
};

}  // namespace clftj

#endif  // CLFTJ_TD_SEPARATORS_H_
