#include "td/cost_model.h"

#include <algorithm>
#include <cmath>

#include "trie/trie.h"
#include "util/check.h"

namespace clftj {

double StructuralTdCost(const Query& q, const TreeDecomposition& td,
                        const StructuralCostWeights& weights) {
  double cost = 0.0;
  for (NodeId v = 0; v < td.num_nodes(); ++v) {
    const std::vector<VarId>& bag = td.bag(v);
    // A bag variable constrained by no atom within the bag is enumerated
    // as a cross product over its whole active domain; treat each such
    // variable as doubling the bag's effective width.
    int uncovered = 0;
    for (const VarId x : bag) {
      bool covered = false;
      for (const Atom& atom : q.atoms()) {
        std::vector<VarId> vars = atom.Vars();
        std::sort(vars.begin(), vars.end());
        const bool contained =
            std::includes(bag.begin(), bag.end(), vars.begin(), vars.end());
        if (contained &&
            std::find(vars.begin(), vars.end(), x) != vars.end()) {
          covered = true;
          break;
        }
      }
      if (!covered) ++uncovered;
    }
    const double width = std::min(
        30.0, static_cast<double>(bag.size() + uncovered));
    cost += std::pow(weights.bag_exp_base, width);
    if (v != td.root()) {
      const double a = static_cast<double>(td.Adhesion(v).size());
      cost += weights.adhesion * a * a;
    }
  }
  cost += weights.depth * static_cast<double>(td.Depth());
  return cost;
}

double ChuOrderCost(const Query& q, const Database& db,
                    const std::vector<VarId>& order) {
  CLFTJ_CHECK(static_cast<int>(order.size()) == q.num_vars());
  std::vector<int> var_rank(q.num_vars(), kNone);
  for (int d = 0; d < static_cast<int>(order.size()); ++d) {
    var_rank[order[d]] = d;
  }

  // Per-atom trie level statistics under this order.
  struct AtomStats {
    std::vector<VarId> level_vars;
    std::vector<double> level_counts;  // distinct prefixes per level
  };
  std::vector<AtomStats> stats;
  for (const Atom& atom : q.atoms()) {
    const Relation& rel = db.Get(atom.relation);
    const AtomView view = BuildAtomView(rel, atom, var_rank);
    AtomStats s;
    s.level_vars = view.level_vars;
    for (int l = 0; l < view.trie->depth(); ++l) {
      s.level_counts.push_back(
          static_cast<double>(view.trie->values(l).size()));
    }
    if (view.trie->depth() == 0 || view.trie->num_tuples() == 0) {
      return 0.0;  // empty view: the join is empty, any order is free
    }
    stats.push_back(std::move(s));
  }

  double cost = 0.0;
  double prefix_count = 1.0;
  for (const VarId x : order) {
    double best_branch = -1.0;
    for (const AtomStats& s : stats) {
      for (std::size_t l = 0; l < s.level_vars.size(); ++l) {
        if (s.level_vars[l] != x) continue;
        const double denom = l == 0 ? 1.0 : s.level_counts[l - 1];
        const double branch = s.level_counts[l] / std::max(1.0, denom);
        best_branch =
            best_branch < 0.0 ? branch : std::min(best_branch, branch);
      }
    }
    CLFTJ_CHECK_MSG(best_branch >= 0.0, "variable not covered by any atom");
    prefix_count *= best_branch;
    cost += prefix_count;
  }
  return cost;
}

namespace {

// Per-atom trie level statistics under an order (shared by the two
// data-aware cost models). Returns false if some view is empty (join is
// empty, cost 0).
struct AtomLevelStats {
  std::vector<VarId> level_vars;
  std::vector<double> level_counts;
};

bool CollectAtomStats(const Query& q, const Database& db,
                      const std::vector<int>& var_rank,
                      std::vector<AtomLevelStats>* stats) {
  for (const Atom& atom : q.atoms()) {
    const Relation& rel = db.Get(atom.relation);
    const AtomView view = BuildAtomView(rel, atom, var_rank);
    if (view.trie->depth() == 0 || view.trie->num_tuples() == 0) return false;
    AtomLevelStats s;
    s.level_vars = view.level_vars;
    for (int l = 0; l < view.trie->depth(); ++l) {
      s.level_counts.push_back(
          static_cast<double>(view.trie->values(l).size()));
    }
    stats->push_back(std::move(s));
  }
  return true;
}

// Minimum branching factor of any atom at the depth of variable x.
double MinBranch(const std::vector<AtomLevelStats>& stats, VarId x) {
  double best = -1.0;
  for (const AtomLevelStats& s : stats) {
    for (std::size_t l = 0; l < s.level_vars.size(); ++l) {
      if (s.level_vars[l] != x) continue;
      const double denom = l == 0 ? 1.0 : s.level_counts[l - 1];
      const double branch = s.level_counts[l] / std::max(1.0, denom);
      best = best < 0.0 ? branch : std::min(best, branch);
    }
  }
  CLFTJ_CHECK_MSG(best >= 0.0, "variable not covered by any atom");
  return best;
}

// Collision-based effective distinct count of variable x's values: the
// minimum over the base columns where x occurs of (Σf)² / Σf². Equals the
// true distinct count for uniform data and shrinks sharply under skew —
// skewed adhesion values recur, so fewer distinct cache keys are seen.
// The per-column value is Relation's memoized ColumnStats, so the planner
// can re-ask for every candidate TD and order without re-scanning data.
double EffectiveDistinct(const Query& q, const Database& db, VarId x) {
  double best = -1.0;
  for (const Atom& atom : q.atoms()) {
    for (std::size_t pos = 0; pos < atom.terms.size(); ++pos) {
      if (!atom.terms[pos].is_variable || atom.terms[pos].var != x) continue;
      const double eff =
          db.Get(atom.relation).Stats(static_cast<int>(pos)).effective_distinct;
      best = best < 0.0 ? eff : std::min(best, eff);
    }
  }
  return best < 0.0 ? 1.0 : std::max(1.0, best);
}

}  // namespace

double CachedPlanCost(const Query& q, const Database& db,
                      const TreeDecomposition& td,
                      const std::vector<VarId>& order) {
  CLFTJ_CHECK(static_cast<int>(order.size()) == q.num_vars());
  std::vector<int> var_rank(q.num_vars(), kNone);
  for (int d = 0; d < static_cast<int>(order.size()); ++d) {
    var_rank[order[d]] = d;
  }
  std::vector<AtomLevelStats> stats;
  if (!CollectAtomStats(q, db, var_rank, &stats)) return 0.0;

  const std::vector<NodeId> owners = td.Owners(q.num_vars());
  // Owned depths per node, in order.
  std::vector<std::vector<VarId>> owned(td.num_nodes());
  for (const VarId x : order) owned[owners[x]].push_back(x);

  // reach[v]: estimated number of times execution enters v (cache lookups);
  // distinct[v]: estimated distinct adhesion assignments (cache misses, each
  // paying the node's local enumeration).
  double total = 0.0;
  std::vector<double> reach(td.num_nodes(), 1.0);
  std::vector<double> end_count(td.num_nodes(), 1.0);
  for (const NodeId v : td.Preorder()) {
    const NodeId parent = td.parent(v);
    reach[v] = parent == kNone
                   ? 1.0
                   : reach[parent] * end_count[parent];
    double distinct = reach[v];
    if (parent != kNone) {
      double keys = 1.0;
      for (const VarId x : td.Adhesion(v)) {
        keys *= EffectiveDistinct(q, db, x);
      }
      distinct = std::min(distinct, keys);
    }
    // Local enumeration cost per distinct adhesion assignment.
    double n = 1.0;
    double local_work = 0.0;
    for (const VarId x : owned[v]) {
      n *= MinBranch(stats, x);
      local_work += n;
    }
    end_count[v] = n;
    total += distinct * local_work + reach[v];  // misses + lookup traffic
  }
  return total;
}

}  // namespace clftj
