#include "data/dictionary.h"

#include <mutex>

#include "util/check.h"

namespace clftj {

Value Dictionary::Encode(std::string_view s) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const Value id = static_cast<Value>(entries_.size());
  entries_.emplace_back(s);
  index_.emplace(std::string_view(entries_.back()), id);
  string_bytes_ += entries_.back().capacity();
  return id;
}

std::optional<Value> Dictionary::Lookup(std::string_view s) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string_view Dictionary::Decode(Value id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  CLFTJ_CHECK(id >= 0 && static_cast<std::size_t>(id) < entries_.size());
  return entries_[static_cast<std::size_t>(id)];
}

std::size_t Dictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

std::size_t Dictionary::MemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  // String payloads + one deque slot and one hash-table bucket per entry.
  return string_bytes_ +
         entries_.size() * (sizeof(std::string) + sizeof(std::string_view) +
                            sizeof(Value) + sizeof(void*)) +
         index_.bucket_count() * sizeof(void*);
}

}  // namespace clftj
