#ifndef CLFTJ_DATA_RELATION_H_
#define CLFTJ_DATA_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/common.h"

namespace clftj {

/// An in-memory relation: a named bag of fixed-arity tuples stored in a
/// single flattened row-major vector. The storage is deliberately simple —
/// all index structure lives in the Trie module, which builds sorted
/// "cascading vector" tries over arbitrary column permutations of a
/// Relation. Relations are set-semantics after Normalize().
class Relation {
 public:
  /// Creates an empty relation. Requires arity >= 1.
  Relation(std::string name, int arity);

  /// Appends one tuple. Requires tuple.size() == arity().
  void Add(const Tuple& tuple);

  /// Appends the tuple (a, b); convenience for binary edge relations.
  void AddPair(Value a, Value b);

  /// Sorts tuples lexicographically and removes duplicates (set semantics).
  void Normalize();

  /// Returns the i-th tuple as a copy. Requires i < size().
  Tuple TupleAt(std::size_t i) const;

  /// Returns the value at (row, column) without copying.
  Value At(std::size_t row, int col) const {
    return data_[row * arity_ + col];
  }

  /// Number of tuples.
  std::size_t size() const { return arity_ == 0 ? 0 : data_.size() / arity_; }

  bool empty() const { return data_.empty(); }
  int arity() const { return arity_; }
  const std::string& name() const { return name_; }

  /// The flattened row-major payload (size() * arity() values).
  const std::vector<Value>& data() const { return data_; }

  /// Number of distinct values in the given column (O(n log n)).
  std::size_t DistinctInColumn(int col) const;

  /// Maximum number of occurrences of any single value in `col` — the data
  /// "skew" statistic used by caching policies and the planner.
  std::size_t MaxFrequencyInColumn(int col) const;

 private:
  std::string name_;
  int arity_;
  std::vector<Value> data_;
};

}  // namespace clftj

#endif  // CLFTJ_DATA_RELATION_H_
