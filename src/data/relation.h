#ifndef CLFTJ_DATA_RELATION_H_
#define CLFTJ_DATA_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/common.h"

namespace clftj {

/// Zero-copy view of one column of a Relation: a contiguous, borrowed
/// `const Value*` range. Spans are invalidated by any mutation of the
/// owning Relation (Add/AddPair/Normalize) and must not outlive it — they
/// are meant for streaming consumers (trie builds, support scans, frequency
/// histograms) that read a whole column within one call.
class ColumnSpan {
 public:
  ColumnSpan() = default;
  ColumnSpan(const Value* data, std::size_t size) : data_(data), size_(size) {}

  const Value* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const Value* begin() const { return data_; }
  const Value* end() const { return data_ + size_; }

  Value operator[](std::size_t i) const { return data_[i]; }
  Value front() const { return data_[0]; }
  Value back() const { return data_[size_ - 1]; }

 private:
  const Value* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Memoized per-column summary statistics, computed lazily on first use and
/// kept until the next mutation (see Relation::Stats). One O(n log n) sort
/// pass produces all fields, so the planner, cost model, and cache policies
/// can consult them repeatedly for free.
struct ColumnStats {
  /// Number of distinct values in the column.
  std::size_t distinct = 0;
  /// Maximum occurrence count of any single value — the data "skew"
  /// statistic used by caching policies and the planner.
  std::size_t max_frequency = 0;
  /// Smallest / largest value; meaningless (0) when the column is empty.
  Value min = 0;
  Value max = 0;
  /// Collision-based effective distinct count (Σf)² / Σf²: equals the true
  /// distinct count for uniform data and shrinks sharply under skew. 0 for
  /// an empty column. Consumed by the cached-plan cost model.
  double effective_distinct = 0.0;
};

/// Process-wide thread budget for Normalize's permutation sort (part of
/// the SIMD/parallel hot-path surface, see docs/simd.md). 0 (the default)
/// means auto: min(4, hardware_concurrency). Values are clamped to [0, 16];
/// negative values restore auto. Takes effect on the next Normalize call —
/// small relations (below an internal row floor) always sort serially, and
/// the sharded sort produces value-identical columns to the serial one
/// (equal rows are interchangeable, and the merge is stable).
void SetNormalizeParallelism(int threads);

/// The configured setting (0 = auto), not the resolved thread count.
int NormalizeParallelism();

/// Outcome of one Relation::ApplyDelta call.
struct DeltaResult {
  std::size_t applied_adds = 0;     ///< tuples that became visible
  std::size_t applied_deletes = 0;  ///< tuples that stopped being visible
  bool compacted = false;           ///< the batch triggered a compaction
};

/// An in-memory relation stored column-major: one contiguous vector of
/// values per column, so every whole-column consumer — trie builds over
/// arbitrary column permutations, admission-filter support scans, cost-model
/// frequency passes — streams cache-line-contiguous data via ColumnSpan
/// instead of a strided row-major gather. All index structure lives in the
/// Trie module. Relations are set-semantics after Normalize().
///
/// Incremental maintenance (see docs/incremental.md): ApplyDelta keeps the
/// relation in a two-tier state — an immutable sorted *main* tier (what
/// long-lived trie substrates are built from) plus small sorted *added* and
/// *deleted* (tombstone) tiers. Column()/size() always expose the merged
/// visible image, so every consumer that doesn't know about deltas stays
/// correct; delta-aware consumers read MainColumn()/AddedColumn()/
/// DeletedColumn() and overlay. When the delta tiers outgrow
/// compaction_threshold(), Compact() folds them into a new main tier and
/// bumps compactions() — the signal for overlay-holding caches to rebuild.
///
/// Statistics: DistinctInColumn / MaxFrequencyInColumn / Stats are memoized
/// per column (installed at most once between mutations); any Add or
/// Normalize invalidates the memo. The memo is mutex-guarded (the compute
/// itself runs outside the lock), so concurrent *readers* of one relation
/// are safe; mutation is not safe against concurrent access, like any
/// container.
class Relation {
 public:
  /// Creates an empty relation. Requires arity >= 1.
  Relation(std::string name, int arity);

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  /// Moves leave `other` as a consistent arity-0 empty shell: no column or
  /// row index is valid on it, so only the observers (size/arity/empty/
  /// name), destruction and assignment remain in contract.
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  /// Appends one tuple. Requires tuple.size() == arity().
  void Add(const Tuple& tuple);

  /// Appends the tuple (a, b); convenience for binary edge relations.
  void AddPair(Value a, Value b);

  /// Pre-allocates column storage for `rows` tuples.
  void Reserve(std::size_t rows);

  /// Bulk construction from ready-made columns (moved in): columns[c][i] is
  /// the value of row i in column c; all columns must have equal length.
  /// Requires at least one column.
  static Relation FromColumns(std::string name,
                              std::vector<std::vector<Value>> columns);

  /// As above, with an explicit per-column type schema (size == #columns).
  static Relation FromColumns(std::string name,
                              std::vector<std::vector<Value>> columns,
                              std::vector<ColumnType> types);

  /// Sorts tuples lexicographically and removes duplicates (set semantics).
  /// Implemented as a permutation sort: an index vector is sorted against
  /// the columns and applied to each column, so rows never materialize.
  void Normalize();

  /// Zero-copy view of one column. Invalidated by any mutation.
  ColumnSpan Column(int col) const {
    return ColumnSpan(columns_[col].data(), num_rows_);
  }

  /// Memoized statistics of one column; computed on first use after a
  /// mutation, O(1) afterwards. The reference stays valid until the next
  /// mutation.
  const ColumnStats& Stats(int col) const;

  /// Returns the i-th tuple as a copy. Requires i < size(). Compatibility
  /// shim: hot paths should stream Column(c) instead.
  Tuple TupleAt(std::size_t i) const;

  /// Returns the value at (row, column). Compatibility shim over the
  /// columnar storage; whole-column consumers should use Column(col).
  Value At(std::size_t row, int col) const { return columns_[col][row]; }

  /// Number of tuples.
  std::size_t size() const { return num_rows_; }

  bool empty() const { return num_rows_ == 0; }
  int arity() const { return arity_; }
  const std::string& name() const { return name_; }

  /// Logical type of one column (kInt unless a schema marked it kString).
  /// The physical storage is Value either way; the type only tells the
  /// output/save boundary whether values are Dictionary ids to decode.
  ColumnType column_type(int col) const {
    return types_[static_cast<std::size_t>(col)];
  }

  /// The full per-column type schema (size == arity()).
  const std::vector<ColumnType>& column_types() const { return types_; }

  /// Installs a per-column type schema. Requires types.size() == arity().
  /// Purely metadata: does not touch the stored values or the stats memo.
  void set_column_types(std::vector<ColumnType> types);

  /// True if any column is kString (i.e. rendering this relation needs a
  /// Dictionary).
  bool has_string_columns() const;

  /// Number of distinct values in the given column (memoized; O(n log n)
  /// on first use per column, O(1) afterwards).
  std::size_t DistinctInColumn(int col) const { return Stats(col).distinct; }

  /// Maximum number of occurrences of any single value in `col` (memoized).
  std::size_t MaxFrequencyInColumn(int col) const {
    return Stats(col).max_frequency;
  }

  /// Approximate heap footprint of the column storage in bytes.
  std::size_t MemoryBytes() const;

  /// Number of per-column stats blocks computed since construction — each
  /// column contributes at most one between mutations. Exposed so tests can
  /// pin the memoization contract.
  std::uint64_t stats_builds() const;

  // --- Incremental maintenance (two-tier storage) ---------------------------

  /// Applies one incremental batch: `deletes` first (a tuple that is not
  /// visible is a no-op), then `adds` (a tuple that is already visible is a
  /// no-op). Every tuple must have arity() values. Invariants afterwards:
  /// deleted ⊆ main, added ∩ main = ∅, visible = (main − deleted) ∪ added,
  /// all tiers sorted sets. The visible image (Column()/size()) is re-merged
  /// eagerly — O(size()) per batch, no sort — while the main tier stays
  /// byte-identical until the delta outgrows compaction_threshold() and the
  /// batch ends in a Compact(). Like every mutator, invalidates spans/stats
  /// and requires exclusive access.
  DeltaResult ApplyDelta(const std::vector<Tuple>& adds,
                         const std::vector<Tuple>& deletes);

  /// True while the added/deleted tiers are non-empty (the relation is in
  /// two-tier state and MainColumn() differs from Column()).
  bool has_delta() const { return add_rows_ + del_rows_ > 0; }

  /// The immutable main tier (== Column(col) when !has_delta()). This is
  /// what substrate registries key long-lived tries on: it only changes on
  /// classic mutation or compaction, never on ApplyDelta.
  ColumnSpan MainColumn(int col) const {
    return delta_engaged_
               ? ColumnSpan(main_columns_[col].data(), main_rows_)
               : Column(col);
  }
  std::size_t main_size() const {
    return delta_engaged_ ? main_rows_ : num_rows_;
  }

  /// The added tier: visible tuples not in main, as a sorted set.
  ColumnSpan AddedColumn(int col) const {
    return delta_engaged_ ? ColumnSpan(add_columns_[col].data(), add_rows_)
                          : ColumnSpan();
  }
  std::size_t added_size() const { return add_rows_; }

  /// The tombstone tier: main tuples no longer visible, as a sorted set.
  ColumnSpan DeletedColumn(int col) const {
    return delta_engaged_ ? ColumnSpan(del_columns_[col].data(), del_rows_)
                          : ColumnSpan();
  }
  std::size_t deleted_size() const { return del_rows_; }

  /// Bumped by every ApplyDelta call; overlay tries cached against one
  /// delta_version are stale once it moves.
  std::uint64_t delta_version() const { return delta_version_; }

  /// Bumped whenever the main tier is replaced wholesale: by Compact() and
  /// by any classic mutation (Add/AddPair/Normalize) on a two-tier
  /// relation. Caches keyed on the main tier must key on this too.
  std::uint64_t compactions() const { return compactions_; }

  /// Delta rows (added + deleted) beyond which ApplyDelta compacts. The
  /// default policy is max(64, main/8); set_compaction_threshold overrides
  /// it (0 restores the default).
  std::size_t compaction_threshold() const;
  void set_compaction_threshold(std::size_t rows) {
    compaction_threshold_ = rows;
  }

  /// Folds the delta tiers into a new main tier (the visible image is
  /// already merged, so this is O(1) bookkeeping) and bumps compactions().
  /// No-op when not in two-tier state.
  void Compact();

 private:
  void InvalidateStats();
  /// Enters two-tier state: snapshots the (normalized) visible image as the
  /// main tier. No-op if already engaged.
  void EngageDelta();
  /// Leaves two-tier state because a classic mutator re-baselined the
  /// visible image; counts as a main-tier replacement.
  void AbandonDelta();
  /// Recomputes columns_ = (main − deleted) ∪ added, a linear 3-way merge.
  void RebuildVisible();
  /// True if rows are strictly increasing lexicographically (sorted set).
  bool IsNormalized() const;

  std::string name_;
  int arity_;
  std::size_t num_rows_ = 0;
  std::vector<std::vector<Value>> columns_;  // arity_ vectors of num_rows_
  std::vector<ColumnType> types_;            // arity_ entries, default kInt

  // Two-tier state (valid iff delta_engaged_): columns_ then holds the
  // merged visible image while main/add/del hold the tiers.
  bool delta_engaged_ = false;
  std::vector<std::vector<Value>> main_columns_;
  std::size_t main_rows_ = 0;
  std::vector<std::vector<Value>> add_columns_;
  std::size_t add_rows_ = 0;
  std::vector<std::vector<Value>> del_columns_;
  std::size_t del_rows_ = 0;
  std::uint64_t delta_version_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t compaction_threshold_ = 0;  // 0 = default policy

  // Lazily built per-column stats; mutex guards lazy engagement so
  // concurrent readers (e.g. plan resolution on several threads over one
  // shared Database) are safe.
  mutable std::mutex stats_mutex_;
  mutable std::vector<std::optional<ColumnStats>> stats_;
  mutable std::uint64_t stats_builds_ = 0;
  // Fast-path flag so per-row Add calls skip the invalidation lock while no
  // stats are memoized. Only mutators read it, and mutation is exclusive by
  // contract, so the unsynchronized read is safe.
  mutable bool stats_present_ = false;
};

}  // namespace clftj

#endif  // CLFTJ_DATA_RELATION_H_
