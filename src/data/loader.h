#ifndef CLFTJ_DATA_LOADER_H_
#define CLFTJ_DATA_LOADER_H_

#include <optional>
#include <string>
#include <vector>

#include "data/dictionary.h"
#include "data/relation.h"
#include "util/common.h"

namespace clftj {

/// Diagnostic for a failed load: which file, which line (1-based; 0 for a
/// file-level failure such as an unreadable path), which field (0-based
/// column index; kNone for a row-level failure such as an arity mismatch),
/// and a human-readable message. Every loader entry point fills this on
/// failure when a non-null pointer is passed.
struct LoadError {
  std::string path;
  std::size_t line = 0;
  int field = kNone;
  std::string message;

  /// "path:line: message (field N)" rendering for logs and CLI errors.
  std::string ToString() const;
};

/// Loads a whitespace/comma-separated text file of integer rows into a
/// relation of the given arity. Lines starting with '#' or '%' (the SNAP
/// header convention) and blank lines are skipped. Returns nullopt on I/O
/// failure or any malformed row, with diagnostics in *error if non-null.
std::optional<Relation> LoadRelationFromFile(const std::string& path,
                                             const std::string& name,
                                             int arity,
                                             LoadError* error = nullptr);

/// Typed-schema load: `schema` gives the column count and per-column types.
/// Integer columns parse as before; string columns intern each field
/// through *dict (required non-null iff the schema has a kString column)
/// and store the dense id, so text keys ride the integer join core
/// unchanged. Fields may be double-quoted to protect separators ("" inside
/// a quoted field is a literal quote) — the form SaveRelationToFile emits.
/// The loaded relation carries the schema via Relation::column_types().
std::optional<Relation> LoadRelationFromFile(const std::string& path,
                                             const std::string& name,
                                             const std::vector<ColumnType>& schema,
                                             Dictionary* dict,
                                             LoadError* error = nullptr);

/// Auto-detection load: sniffs the column count from the first data row and
/// each column's type from the whole file — a column is kInt iff every one
/// of its fields parses fully as an integer *and* none of them is quoted
/// (a quoted field is deliberately textual: "2017" is a string label,
/// bare 2017 an integer — which is how numeric-looking labels survive a
/// save/load round trip). Encodes string columns through *dict exactly
/// like the explicit-schema overload. The detected schema is reported
/// through *schema_out if non-null.
std::optional<Relation> LoadRelationAuto(const std::string& path,
                                         const std::string& name,
                                         Dictionary* dict,
                                         LoadError* error = nullptr,
                                         std::vector<ColumnType>* schema_out = nullptr);

/// Loads a SNAP-style edge list ("u v" per line) as a binary relation.
std::optional<Relation> LoadEdgeList(const std::string& path,
                                     const std::string& name,
                                     LoadError* error = nullptr);

/// Writes the relation as a text file, one tuple per line, fields separated
/// by a single tab. String-typed columns are decoded through *dict (must be
/// non-null if the relation has any); decoded fields that contain
/// separators, quotes or a leading comment character are double-quoted so
/// the file loads back verbatim (string labels whose text parses as an
/// integer are quoted too, so auto-detection re-reads them as strings).
/// Returns false on I/O failure, or if a decoded field contains a newline
/// (the line-based format cannot round-trip one); the newline check runs
/// before the file is opened, so a refusal writes nothing.
bool SaveRelationToFile(const Relation& relation, const std::string& path,
                        const Dictionary* dict = nullptr);

}  // namespace clftj

#endif  // CLFTJ_DATA_LOADER_H_
