#ifndef CLFTJ_DATA_LOADER_H_
#define CLFTJ_DATA_LOADER_H_

#include <optional>
#include <string>

#include "data/relation.h"

namespace clftj {

/// Loads a whitespace/comma-separated text file of integer rows into a
/// relation of the given arity. Lines starting with '#' or '%' (the SNAP
/// header convention) and blank lines are skipped. Returns nullopt on I/O
/// failure or if any row has the wrong number of fields.
std::optional<Relation> LoadRelationFromFile(const std::string& path,
                                             const std::string& name,
                                             int arity);

/// Loads a SNAP-style edge list ("u v" per line) as a binary relation.
std::optional<Relation> LoadEdgeList(const std::string& path,
                                     const std::string& name);

/// Writes the relation as a text file, one tuple per line, fields separated
/// by a single tab. Returns false on I/O failure.
bool SaveRelationToFile(const Relation& relation, const std::string& path);

}  // namespace clftj

#endif  // CLFTJ_DATA_LOADER_H_
