#include "data/snap_profiles.h"

#include "data/generators.h"
#include "query/query.h"
#include "util/check.h"

namespace clftj {

std::vector<DatasetProfile> SnapProfiles() {
  // Sizes are scaled so that the slowest paper configuration (vanilla LFTJ
  // on a 7-path over the most skewed graph) hits the bench timeout rather
  // than running for hours, mirroring the paper's crisscrossed timeout bars.
  return {
      {"wiki-Vote", /*num_nodes=*/600, /*param=*/9, /*balanced=*/false,
       /*triad_p=*/0.3, 11},
      {"p2p-Gnutella04", /*num_nodes=*/800, /*param=*/2400,
       /*balanced=*/true, /*triad_p=*/0.0, 12},
      {"ca-GrQc", /*num_nodes=*/550, /*param=*/7, /*balanced=*/false,
       /*triad_p=*/0.8, 13},
      {"ego-Facebook", /*num_nodes=*/600, /*param=*/10, /*balanced=*/false,
       /*triad_p=*/0.6, 14},
      {"ego-Twitter", /*num_nodes=*/1200, /*param=*/12, /*balanced=*/false,
       /*triad_p=*/0.5, 15},
  };
}

Relation MakeSnapGraph(const DatasetProfile& profile) {
  if (profile.balanced) {
    return NearRegularGraph("E", profile.num_nodes, profile.param,
                            profile.seed);
  }
  return ClusteredPowerLawGraph("E", profile.num_nodes, profile.param,
                                profile.triad_p, profile.seed);
}

Database MakeSnapDatabase(const DatasetProfile& profile) {
  Database db;
  db.Put(MakeSnapGraph(profile));
  return db;
}

DatasetProfile SnapProfileByLabel(const std::string& label) {
  for (const DatasetProfile& p : SnapProfiles()) {
    if (p.label == label) return p;
  }
  CLFTJ_CHECK_MSG(false, ("unknown dataset profile: " + label).c_str());
  return {};
}

Database MakeImdbDatabase() {
  Database db;
  // person_id (left) is strongly Zipf-skewed — prolific actors appear in
  // many movies; movie_id (right) is mildly skewed. Two tables as in the
  // paper's partition of cast_info into male and female cast.
  db.Put(BipartiteZipf("MC", /*left_nodes=*/1500, /*right_nodes=*/1200,
                       /*num_edges=*/7000, /*left_skew=*/1.1,
                       /*right_skew=*/0.35, /*seed=*/21));
  db.Put(BipartiteZipf("FC", /*left_nodes=*/1500, /*right_nodes=*/1200,
                       /*num_edges=*/7000, /*left_skew=*/1.1,
                       /*right_skew=*/0.35, /*seed=*/22));
  return db;
}

Query ImdbCycleQuery(int persons) {
  CLFTJ_CHECK(persons >= 2);
  Query q;
  std::vector<VarId> p(persons);
  std::vector<VarId> m(persons);
  for (int i = 0; i < persons; ++i) {
    p[i] = q.AddVariable("p" + std::to_string(i + 1));
    m[i] = q.AddVariable("m" + std::to_string(i + 1));
  }
  const auto add = [&q](const std::string& rel, VarId person, VarId movie) {
    Atom atom;
    atom.relation = rel;
    atom.terms = {Term::Var(person), Term::Var(movie)};
    q.AddAtom(std::move(atom));
  };
  for (int i = 0; i < persons; ++i) {
    const std::string rel = i % 2 == 0 ? "MC" : "FC";
    add(rel, p[i], m[i]);                            // edge p_i - m_i
    add(rel, p[i], m[(i + persons - 1) % persons]);  // edge p_i - m_{i-1}
  }
  return q;
}

}  // namespace clftj
