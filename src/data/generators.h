#ifndef CLFTJ_DATA_GENERATORS_H_
#define CLFTJ_DATA_GENERATORS_H_

#include <cstdint>
#include <string>

#include "data/dictionary.h"
#include "data/relation.h"

namespace clftj {

/// Synthetic graph/relation generators. All generators are deterministic in
/// their seed, emit normalized relations, and store each undirected edge in
/// both directions (the symmetric-closure convention used by the paper's
/// path/cycle pattern queries; a k-path E(a,b),E(b,c),... over a symmetric
/// edge relation matches undirected walks exactly like the SNAP setup).

/// G(n, p) Erdős–Rényi graph: every unordered pair is an edge independently
/// with probability p. No self loops, symmetric closure.
Relation ErdosRenyiGraph(const std::string& name, int num_nodes, double p,
                         std::uint64_t seed);

/// Preferential-attachment (Barabási–Albert style) graph: nodes arrive one
/// at a time and attach `edges_per_node` edges to existing nodes chosen
/// proportionally to current degree. Produces the power-law degree skew that
/// characterizes wiki-Vote / ego-Facebook / ego-Twitter / ca-GrQc. Symmetric
/// closure, no self loops, no parallel edges.
Relation PreferentialAttachmentGraph(const std::string& name, int num_nodes,
                                     int edges_per_node, std::uint64_t seed);

/// Near-regular random graph: `num_edges` edges sampled uniformly over all
/// node pairs (rejection-sampled against duplicates/self loops). Degree
/// distribution is binomial-concentrated — the balanced profile of
/// p2p-Gnutella04, where the paper found caching gains to be moderate.
Relation NearRegularGraph(const std::string& name, int num_nodes,
                          int num_edges, std::uint64_t seed);

/// Holme–Kim clustered power-law graph: preferential attachment where each
/// subsequent edge of a new node follows a "triad formation" step with
/// probability `triad_p` (attach to a random neighbor of the previous
/// target, closing a triangle). Produces both the degree skew and the high
/// clustering of collaboration/ego networks (ca-GrQc, ego-Facebook) —
/// clustering is what makes cycle-query caches hit. triad_p = 0 degrades
/// to plain preferential attachment.
Relation ClusteredPowerLawGraph(const std::string& name, int num_nodes,
                                int edges_per_node, double triad_p,
                                std::uint64_t seed);

/// Bipartite (left_id, right_id) relation with Zipf-skewed endpoint choice:
/// left endpoints drawn Zipf(left_nodes, left_skew), right endpoints
/// Zipf(right_nodes, right_skew). Used for the IMDB cast_info substitute
/// where person_id (left) is markedly more skewed than movie_id (right).
Relation BipartiteZipf(const std::string& name, int left_nodes,
                       int right_nodes, int num_edges, double left_skew,
                       double right_skew, std::uint64_t seed);

/// String-keyed twin of an integer relation: every value v in every column
/// is replaced by the dictionary id of the label "<prefix><v>" and every
/// column is marked kString — the synthetic stand-in for a text-keyed
/// dataset (author names, titles, IRIs) that shares the integer relation's
/// exact join structure. Ids are interned walking rows in storage order,
/// fields left to right, so the assignment is deterministic given the
/// dictionary's prior contents. The result is normalized (id order differs
/// from value order, so row order changes).
Relation StringKeyed(const Relation& rel, const std::string& prefix,
                     Dictionary* dict);

}  // namespace clftj

#endif  // CLFTJ_DATA_GENERATORS_H_
