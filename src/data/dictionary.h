#ifndef CLFTJ_DATA_DICTIONARY_H_
#define CLFTJ_DATA_DICTIONARY_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/common.h"

namespace clftj {

/// Append-only interned string table mapping each distinct string to a
/// dense Value id (0, 1, 2, ... in first-encode order) and back. This is
/// how text-keyed datasets enter the integer Value domain at the load
/// boundary: the loader calls Encode per string field, the join core runs
/// on the dense ids exactly as it does on native integers, and the output
/// boundary calls Decode to render results. Ids are never reused or
/// remapped, so an encoded Relation stays valid for the dictionary's
/// lifetime.
///
/// Thread safety: guarded by a shared mutex — Encode takes the exclusive
/// lock, Decode/Lookup/size take the shared lock — so any number of
/// concurrent Decodes (e.g. CLFTJ-P workers rendering shards of a
/// factorized result) run in parallel, and a stray concurrent Encode is
/// serialized rather than a race. Decoded views point into a std::deque
/// whose elements never move, so a returned string_view stays valid for
/// the dictionary's lifetime even across later Encodes.
class Dictionary {
 public:
  Dictionary() = default;

  // The intern map keys its string_views into entries_'s stable storage;
  // copying/moving would require re-keying, and nothing needs it — share a
  // Dictionary by pointer (Database hands out shared_ptr access).
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Interns `s` and returns its dense id; returns the existing id if the
  /// string was seen before. Amortized O(1).
  Value Encode(std::string_view s);

  /// Returns the id of `s` if it is interned, without interning. O(1).
  std::optional<Value> Lookup(std::string_view s) const;

  /// Returns the string for a dense id. The view stays valid for the
  /// dictionary's lifetime. Requires 0 <= id < size(). O(1).
  std::string_view Decode(Value id) const;

  /// Number of interned strings (== the smallest unused id).
  std::size_t size() const;

  bool empty() const { return size() == 0; }

  /// Approximate retained heap footprint: string bytes plus table/index
  /// overhead. Charged by Database::MemoryBytes.
  std::size_t MemoryBytes() const;

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> entries_;  // id -> string; element addresses stable
  // string_view keys point into entries_; safe because entries are
  // append-only and deque elements never relocate.
  std::unordered_map<std::string_view, Value> index_;
  std::size_t string_bytes_ = 0;
};

}  // namespace clftj

#endif  // CLFTJ_DATA_DICTIONARY_H_
