#ifndef CLFTJ_DATA_DATABASE_H_
#define CLFTJ_DATA_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "data/relation.h"

namespace clftj {

/// A named collection of relations (the instance D that queries run over).
class Database {
 public:
  Database() = default;

  /// Adds (or replaces) a relation under its own name. The relation is
  /// normalized on insertion so all engines see set semantics.
  void Put(Relation relation);

  /// Returns the relation with the given name, or nullptr if absent.
  const Relation* Find(const std::string& name) const;

  /// Returns the relation with the given name; aborts if absent.
  const Relation& Get(const std::string& name) const;

  /// Whether a relation with this name exists.
  bool Contains(const std::string& name) const;

  /// Names of all stored relations (sorted).
  std::vector<std::string> Names() const;

  /// Total number of tuples across all relations.
  std::size_t TotalTuples() const;

  /// Approximate heap footprint of all relations' column storage in bytes.
  std::size_t MemoryBytes() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace clftj

#endif  // CLFTJ_DATA_DATABASE_H_
