#ifndef CLFTJ_DATA_DATABASE_H_
#define CLFTJ_DATA_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dictionary.h"
#include "data/relation.h"

namespace clftj {

/// A named collection of relations (the instance D that queries run over),
/// plus one shared Dictionary interning every string key that appears in
/// any of them. String-typed columns across relations draw ids from this
/// single table, so a name loaded into two relations encodes to the same
/// Value and joins across them just work.
class Database {
 public:
  Database() : dict_(std::make_shared<Dictionary>()) {}

  /// Adds (or replaces) a relation under its own name. The relation is
  /// normalized on insertion so all engines see set semantics. Bumps the
  /// database generation: any cross-query state keyed on the old generation
  /// (cached plans, shared tries, persistent result caches) is invalidated.
  void Put(Relation relation);

  /// Monotone data-version counter, starting at 1 and bumped by every
  /// Put(). Cross-query reuse layers key their entries on (generation,
  /// shape) so a data change invalidates them without any callback wiring.
  std::uint64_t generation() const { return generation_; }

  /// Returns the relation with the given name, or nullptr if absent.
  const Relation* Find(const std::string& name) const;

  /// Returns the relation with the given name; aborts if absent.
  const Relation& Get(const std::string& name) const;

  /// Whether a relation with this name exists.
  bool Contains(const std::string& name) const;

  /// Names of all stored relations (sorted).
  std::vector<std::string> Names() const;

  /// Total number of tuples across all relations.
  std::size_t TotalTuples() const;

  /// Approximate heap footprint of all relations' column storage plus the
  /// dictionary's retained string table, in bytes.
  std::size_t MemoryBytes() const;

  /// The database-wide string dictionary. The loader encodes through it;
  /// the output boundary decodes through it. Always non-null; empty for
  /// pure-integer databases. Copying a Database shares the dictionary
  /// (append-only ids make sharing safe and keep encoded relations valid
  /// across copies).
  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }

 private:
  std::map<std::string, Relation> relations_;
  std::shared_ptr<Dictionary> dict_;
  std::uint64_t generation_ = 1;
};

}  // namespace clftj

#endif  // CLFTJ_DATA_DATABASE_H_
