#ifndef CLFTJ_DATA_DATABASE_H_
#define CLFTJ_DATA_DATABASE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/dictionary.h"
#include "data/relation.h"

namespace clftj {

/// One incremental mutation request: tuples to append to and delete from a
/// single relation, applied atomically under one minor-version bump.
/// Deletes apply before adds (see Relation::ApplyDelta).
struct DeltaBatch {
  std::string relation;
  std::vector<Tuple> adds;
  std::vector<Tuple> deletes;
};

/// One applied batch as remembered by the bounded delta log — everything a
/// reuse layer needs to invalidate in a targeted way instead of wholesale.
struct DeltaLogEntry {
  std::uint64_t minor = 0;  ///< minor_version() right after this batch
  std::string relation;
  /// The requested adds ∪ deletes. Over-approximate on purpose (no-op
  /// tuples are included): consumers treat it as "values that may have
  /// changed", where a superset only costs extra eviction, never
  /// correctness.
  std::vector<Tuple> changed;
  bool compacted = false;  ///< the batch ended in a main-tier compaction
};

/// A named collection of relations (the instance D that queries run over),
/// plus one shared Dictionary interning every string key that appears in
/// any of them. String-typed columns across relations draw ids from this
/// single table, so a name loaded into two relations encodes to the same
/// Value and joins across them just work.
class Database {
 public:
  Database() : dict_(std::make_shared<Dictionary>()) {}

  /// Adds (or replaces) a relation under its own name. The relation is
  /// normalized on insertion so all engines see set semantics. Bumps the
  /// database generation: any cross-query state keyed on the old generation
  /// (cached plans, shared tries, persistent result caches) is invalidated.
  void Put(Relation relation);

  /// Monotone data-version counter, starting at 1 and bumped by every
  /// Put(). Cross-query reuse layers key their entries on (generation,
  /// shape) so a data change invalidates them without any callback wiring.
  std::uint64_t generation() const { return generation_; }

  /// Applies an incremental batch to an existing relation, bumping
  /// minor_version() but NOT generation(): reuse state keyed on the
  /// generation survives and gets patched or invalidated in a targeted way
  /// (see docs/incremental.md). Returns false with *error set (nothing
  /// applied, no version bump) when the relation does not exist or a tuple
  /// arity mismatches. Mutation requires exclusive access to the database,
  /// like any container (QueryService interlocks this with running
  /// queries).
  bool ApplyDelta(const DeltaBatch& batch, std::string* error = nullptr,
                  DeltaResult* result = nullptr);

  /// Monotone minor data-version, starting at 0 and bumped by every
  /// successful ApplyDelta(). Never reset — a (generation, minor) pair
  /// identifies a data state unambiguously.
  std::uint64_t minor_version() const { return minor_version_; }

  /// Collects pointers to the delta log entries with minor > since, oldest
  /// first. Returns false when the bounded log no longer reaches back that
  /// far (trimmed, or reset by a Put()): the caller cannot know what
  /// changed and must fall back to full invalidation. The pointers are
  /// invalidated by the next mutation.
  bool DeltasSince(std::uint64_t since,
                   std::vector<const DeltaLogEntry*>* out) const;

  /// Mutable access for per-relation configuration (compaction thresholds,
  /// column types). Data mutation must go through Put()/ApplyDelta() so the
  /// version counters advance. Returns nullptr if absent.
  Relation* FindMutable(const std::string& name);

  /// Returns the relation with the given name, or nullptr if absent.
  const Relation* Find(const std::string& name) const;

  /// Returns the relation with the given name; aborts if absent.
  const Relation& Get(const std::string& name) const;

  /// Whether a relation with this name exists.
  bool Contains(const std::string& name) const;

  /// Names of all stored relations (sorted).
  std::vector<std::string> Names() const;

  /// Total number of tuples across all relations.
  std::size_t TotalTuples() const;

  /// Approximate heap footprint of all relations' column storage plus the
  /// dictionary's retained string table, in bytes.
  std::size_t MemoryBytes() const;

  /// The database-wide string dictionary. The loader encodes through it;
  /// the output boundary decodes through it. Always non-null; empty for
  /// pure-integer databases. Copying a Database shares the dictionary
  /// (append-only ids make sharing safe and keep encoded relations valid
  /// across copies).
  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }

 private:
  /// Bound on the delta log: far more batches than any reuse layer falls
  /// behind by in practice, small enough that the log never matters for
  /// memory accounting.
  static constexpr std::size_t kMaxDeltaLog = 64;

  std::map<std::string, Relation> relations_;
  std::shared_ptr<Dictionary> dict_;
  std::uint64_t generation_ = 1;
  std::uint64_t minor_version_ = 0;
  std::deque<DeltaLogEntry> delta_log_;
  /// Every entry with minor > delta_log_floor_ is present in delta_log_.
  std::uint64_t delta_log_floor_ = 0;
};

}  // namespace clftj

#endif  // CLFTJ_DATA_DATABASE_H_
