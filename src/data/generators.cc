#include "data/generators.h"

#include <set>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace clftj {

namespace {

// Materializes a set of undirected edges as a symmetric binary relation,
// staging the two columns directly for the columnar bulk constructor.
Relation SymmetricClosure(const std::string& name,
                          const std::set<std::pair<Value, Value>>& edges) {
  std::vector<Value> src, dst;
  src.reserve(2 * edges.size());
  dst.reserve(2 * edges.size());
  for (const auto& [a, b] : edges) {
    src.push_back(a);
    dst.push_back(b);
    src.push_back(b);
    dst.push_back(a);
  }
  Relation rel =
      Relation::FromColumns(name, {std::move(src), std::move(dst)});
  rel.Normalize();
  return rel;
}

}  // namespace

Relation ErdosRenyiGraph(const std::string& name, int num_nodes, double p,
                         std::uint64_t seed) {
  CLFTJ_CHECK(num_nodes >= 0);
  CLFTJ_CHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  std::set<std::pair<Value, Value>> edges;
  for (int a = 0; a < num_nodes; ++a) {
    for (int b = a + 1; b < num_nodes; ++b) {
      if (rng.Flip(p)) edges.emplace(a, b);
    }
  }
  return SymmetricClosure(name, edges);
}

Relation PreferentialAttachmentGraph(const std::string& name, int num_nodes,
                                     int edges_per_node, std::uint64_t seed) {
  CLFTJ_CHECK(num_nodes >= 2);
  CLFTJ_CHECK(edges_per_node >= 1);
  Rng rng(seed);
  std::set<std::pair<Value, Value>> edges;
  // endpoint multiset: each edge contributes both endpoints, so sampling a
  // uniform element of `endpoints` is degree-proportional sampling.
  std::vector<Value> endpoints;
  edges.emplace(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (int v = 2; v < num_nodes; ++v) {
    const int m = std::min(edges_per_node, v);
    int attached = 0;
    int attempts = 0;
    while (attached < m && attempts < 20 * m) {
      ++attempts;
      const Value target = endpoints[rng.Uniform(endpoints.size())];
      if (target == v) continue;
      const auto edge = target < v ? std::make_pair(target, Value(v))
                                   : std::make_pair(Value(v), target);
      if (edges.insert(edge).second) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++attached;
      }
    }
    if (attached == 0) {
      // Degenerate fallback: attach to a uniform node to keep connectivity.
      const Value target = static_cast<Value>(rng.Uniform(v));
      edges.emplace(std::min<Value>(target, v), std::max<Value>(target, v));
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return SymmetricClosure(name, edges);
}

Relation NearRegularGraph(const std::string& name, int num_nodes,
                          int num_edges, std::uint64_t seed) {
  CLFTJ_CHECK(num_nodes >= 2);
  CLFTJ_CHECK(num_edges >= 0);
  const long long max_edges =
      static_cast<long long>(num_nodes) * (num_nodes - 1) / 2;
  CLFTJ_CHECK(num_edges <= max_edges);
  Rng rng(seed);
  std::set<std::pair<Value, Value>> edges;
  while (static_cast<int>(edges.size()) < num_edges) {
    const Value a = static_cast<Value>(rng.Uniform(num_nodes));
    const Value b = static_cast<Value>(rng.Uniform(num_nodes));
    if (a == b) continue;
    edges.emplace(std::min(a, b), std::max(a, b));
  }
  return SymmetricClosure(name, edges);
}

Relation ClusteredPowerLawGraph(const std::string& name, int num_nodes,
                                int edges_per_node, double triad_p,
                                std::uint64_t seed) {
  CLFTJ_CHECK(num_nodes >= 2);
  CLFTJ_CHECK(edges_per_node >= 1);
  CLFTJ_CHECK(triad_p >= 0.0 && triad_p <= 1.0);
  Rng rng(seed);
  std::set<std::pair<Value, Value>> edges;
  std::vector<std::vector<Value>> adj(num_nodes);
  std::vector<Value> endpoints;
  const auto add_edge = [&edges, &adj, &endpoints](Value a, Value b) {
    if (a == b) return false;
    const auto e = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    if (!edges.insert(e).second) return false;
    adj[a].push_back(b);
    adj[b].push_back(a);
    endpoints.push_back(a);
    endpoints.push_back(b);
    return true;
  };
  add_edge(0, 1);
  for (int v = 2; v < num_nodes; ++v) {
    const int m = std::min(edges_per_node, v);
    Value last_target = kNone;
    int attached = 0;
    int attempts = 0;
    while (attached < m && attempts < 30 * m) {
      ++attempts;
      Value target = kNone;
      if (last_target != kNone && !adj[last_target].empty() &&
          rng.Flip(triad_p)) {
        // Triad formation: pick a neighbor of the previous target.
        target = adj[last_target][rng.Uniform(adj[last_target].size())];
      } else {
        target = endpoints[rng.Uniform(endpoints.size())];
      }
      if (add_edge(v, target)) {
        last_target = target;
        ++attached;
      }
    }
    if (attached == 0) {
      add_edge(v, static_cast<Value>(rng.Uniform(v)));
    }
  }
  return SymmetricClosure(name, edges);
}

Relation BipartiteZipf(const std::string& name, int left_nodes,
                       int right_nodes, int num_edges, double left_skew,
                       double right_skew, std::uint64_t seed) {
  CLFTJ_CHECK(left_nodes > 0 && right_nodes > 0);
  CLFTJ_CHECK(num_edges >= 0);
  Rng rng(seed);
  const ZipfSampler left(static_cast<std::size_t>(left_nodes), left_skew);
  const ZipfSampler right(static_cast<std::size_t>(right_nodes), right_skew);
  Relation rel(name, 2);
  rel.Reserve(static_cast<std::size_t>(num_edges));
  std::set<std::pair<Value, Value>> seen;
  int emitted = 0;
  int attempts = 0;
  const int max_attempts = 50 * num_edges + 100;
  while (emitted < num_edges && attempts < max_attempts) {
    ++attempts;
    const Value l = static_cast<Value>(left.Sample(rng));
    const Value r = static_cast<Value>(right.Sample(rng));
    if (seen.emplace(l, r).second) {
      rel.AddPair(l, r);
      ++emitted;
    }
  }
  rel.Normalize();
  return rel;
}

Relation StringKeyed(const Relation& rel, const std::string& prefix,
                     Dictionary* dict) {
  CLFTJ_CHECK(dict != nullptr);
  const int k = rel.arity();
  std::vector<ColumnSpan> src;
  src.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) src.push_back(rel.Column(c));
  std::vector<std::vector<Value>> columns(static_cast<std::size_t>(k));
  for (auto& column : columns) column.reserve(rel.size());
  for (std::size_t i = 0; i < rel.size(); ++i) {
    for (int c = 0; c < k; ++c) {
      columns[static_cast<std::size_t>(c)].push_back(
          dict->Encode(prefix + std::to_string(src[c][i])));
    }
  }
  Relation out = Relation::FromColumns(
      rel.name(), std::move(columns),
      std::vector<ColumnType>(static_cast<std::size_t>(k),
                              ColumnType::kString));
  out.Normalize();
  return out;
}

}  // namespace clftj
