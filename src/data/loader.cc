#include "data/loader.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace clftj {

namespace {

// Splits a line on spaces, tabs and commas; returns false on a malformed
// field (non-integer).
bool ParseRow(const std::string& line, Tuple* out) {
  out->clear();
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    while (i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == ',' ||
                     line[i] == '\r')) {
      ++i;
    }
    if (i >= n) break;
    std::size_t j = i;
    while (j < n && line[j] != ' ' && line[j] != '\t' && line[j] != ',' &&
           line[j] != '\r') {
      ++j;
    }
    const std::string field = line.substr(i, j - i);
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(field, &pos);
      if (pos != field.size()) return false;
      out->push_back(static_cast<Value>(v));
    } catch (...) {
      return false;
    }
    i = j;
  }
  return true;
}

}  // namespace

std::optional<Relation> LoadRelationFromFile(const std::string& path,
                                             const std::string& name,
                                             int arity) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Relation rel(name, arity);
  std::string line;
  Tuple row;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (!ParseRow(line, &row)) return std::nullopt;
    if (row.empty()) continue;
    if (static_cast<int>(row.size()) != arity) return std::nullopt;
    rel.Add(row);
  }
  rel.Normalize();
  return rel;
}

std::optional<Relation> LoadEdgeList(const std::string& path,
                                     const std::string& name) {
  return LoadRelationFromFile(path, name, /*arity=*/2);
}

bool SaveRelationToFile(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  // Resolve the column spans once and walk them row-wise; the per-cell
  // work is the formatting, not the storage access.
  std::vector<ColumnSpan> cols;
  cols.reserve(relation.arity());
  for (int c = 0; c < relation.arity(); ++c) cols.push_back(relation.Column(c));
  for (std::size_t i = 0; i < relation.size(); ++i) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      if (c > 0) out << '\t';
      out << cols[c][i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace clftj
