#include "data/loader.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/check.h"

namespace clftj {

namespace {

bool IsSeparator(char c) {
  return c == ' ' || c == '\t' || c == ',' || c == '\r';
}

void SetError(LoadError* error, const std::string& path, std::size_t line,
              int field, std::string message) {
  if (error == nullptr) return;
  error->path = path;
  error->line = line;
  error->field = field;
  error->message = std::move(message);
}

// Splits a line into raw text fields on spaces, tabs and commas. A field
// starting with '"' is quoted: separators lose their meaning until the
// closing quote, and a doubled "" inside is a literal quote. *quoted
// records which fields were quoted — auto-detection treats a quoted field
// as a string even when its text parses as an integer (the CSV convention,
// and what lets a numeric-looking label survive a save/load round trip).
// On a malformed quoted field, returns false with *bad_field set to its
// index.
bool SplitFields(const std::string& line, std::vector<std::string>* out,
                 std::vector<bool>* quoted, int* bad_field,
                 std::string* message) {
  out->clear();
  quoted->clear();
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n) {
    while (i < n && IsSeparator(line[i])) ++i;
    if (i >= n) break;
    std::string field;
    bool was_quoted = false;
    if (line[i] == '"') {
      was_quoted = true;
      ++i;  // opening quote
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {
            field.push_back('"');
            i += 2;
          } else {
            ++i;  // closing quote
            closed = true;
            break;
          }
        } else {
          field.push_back(line[i]);
          ++i;
        }
      }
      if (!closed) {
        *bad_field = static_cast<int>(out->size());
        *message = "unterminated quoted field";
        return false;
      }
      if (i < n && !IsSeparator(line[i])) {
        *bad_field = static_cast<int>(out->size());
        *message = "unexpected character after closing quote";
        return false;
      }
    } else {
      while (i < n && !IsSeparator(line[i])) {
        field.push_back(line[i]);
        ++i;
      }
    }
    out->push_back(std::move(field));
    quoted->push_back(was_quoted);
  }
  return true;
}

// Full-match integer parse ("-?[0-9]+" within int64 range).
bool ParseInt(const std::string& field, Value* out) {
  if (field.empty()) return false;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(field, &pos);
    if (pos != field.size()) return false;
    *out = static_cast<Value>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool SkippableLine(const std::string& line) {
  return line.empty() || line[0] == '#' || line[0] == '%';
}

// Shared driver: streams the file once, feeding each data row's raw fields
// and their was-quoted flags (with the 1-based line number) to `row_fn`,
// which returns false to abort (having set *error itself). Returns false
// on I/O or tokenization failure.
template <typename RowFn>
bool ForEachRow(const std::string& path, LoadError* error, RowFn row_fn) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, path, 0, kNone, "cannot open file");
    return false;
  }
  std::string line;
  std::vector<std::string> fields;
  std::vector<bool> quoted;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (SkippableLine(line)) continue;
    int bad_field = kNone;
    std::string message;
    if (!SplitFields(line, &fields, &quoted, &bad_field, &message)) {
      SetError(error, path, line_no, bad_field, std::move(message));
      return false;
    }
    if (fields.empty()) continue;  // whitespace-only line
    if (!row_fn(line_no, fields, quoted)) return false;
  }
  return true;
}

// Encodes one row of raw fields against a schema into *tuple.
bool EncodeRow(const std::string& path, std::size_t line_no,
               const std::vector<std::string>& fields,
               const std::vector<ColumnType>& schema, Dictionary* dict,
               Tuple* tuple, LoadError* error) {
  if (fields.size() != schema.size()) {
    std::ostringstream msg;
    msg << "expected " << schema.size() << " fields, got " << fields.size();
    SetError(error, path, line_no, kNone, msg.str());
    return false;
  }
  tuple->clear();
  for (std::size_t c = 0; c < fields.size(); ++c) {
    if (schema[c] == ColumnType::kInt) {
      Value v = 0;
      if (!ParseInt(fields[c], &v)) {
        SetError(error, path, line_no, static_cast<int>(c),
                 "not an integer: '" + fields[c] + "'");
        return false;
      }
      tuple->push_back(v);
    } else {
      tuple->push_back(dict->Encode(fields[c]));
    }
  }
  return true;
}

}  // namespace

std::string LoadError::ToString() const {
  std::ostringstream out;
  out << (path.empty() ? "<unknown>" : path);
  if (line > 0) out << ":" << line;
  out << ": " << message;
  if (field != kNone) out << " (field " << field << ")";
  return out.str();
}

std::optional<Relation> LoadRelationFromFile(const std::string& path,
                                             const std::string& name,
                                             int arity, LoadError* error) {
  CLFTJ_CHECK(arity >= 1);
  const std::vector<ColumnType> schema(static_cast<std::size_t>(arity),
                                       ColumnType::kInt);
  return LoadRelationFromFile(path, name, schema, /*dict=*/nullptr, error);
}

std::optional<Relation> LoadRelationFromFile(
    const std::string& path, const std::string& name,
    const std::vector<ColumnType>& schema, Dictionary* dict,
    LoadError* error) {
  CLFTJ_CHECK(!schema.empty());
  bool needs_dict = false;
  for (const ColumnType t : schema) needs_dict |= (t == ColumnType::kString);
  CLFTJ_CHECK(!needs_dict || dict != nullptr);

  Relation rel(name, static_cast<int>(schema.size()));
  Tuple row;
  const bool ok = ForEachRow(
      path, error,
      [&](std::size_t line_no, const std::vector<std::string>& fields,
          const std::vector<bool>& /*quoted*/) {
        if (!EncodeRow(path, line_no, fields, schema, dict, &row, error)) {
          return false;
        }
        rel.Add(row);
        return true;
      });
  if (!ok) return std::nullopt;
  rel.set_column_types(schema);
  rel.Normalize();
  return rel;
}

std::optional<Relation> LoadRelationAuto(const std::string& path,
                                         const std::string& name,
                                         Dictionary* dict, LoadError* error,
                                         std::vector<ColumnType>* schema_out) {
  // Pass 1: stream the file once to settle the column count and each
  // column's type; nothing is buffered, so a SNAP-scale edge list costs
  // the same constant memory it did under the integer-only loader.
  std::size_t arity = 0;
  std::size_t data_rows = 0;
  std::vector<bool> is_int;
  const bool detected = ForEachRow(
      path, error,
      [&](std::size_t line_no, const std::vector<std::string>& fields,
          const std::vector<bool>& quoted) {
        if (data_rows == 0) {
          arity = fields.size();
          is_int.assign(arity, true);
        } else if (fields.size() != arity) {
          std::ostringstream msg;
          msg << "expected " << arity << " fields, got " << fields.size();
          SetError(error, path, line_no, kNone, msg.str());
          return false;
        }
        ++data_rows;
        Value ignored = 0;
        for (std::size_t c = 0; c < arity; ++c) {
          // Quoting marks a field as deliberately textual, so "2017"
          // stays a string label where bare 2017 would be an integer.
          if (is_int[c] && (quoted[c] || !ParseInt(fields[c], &ignored))) {
            is_int[c] = false;
          }
        }
        return true;
      });
  if (!detected) return std::nullopt;
  if (data_rows == 0) {
    SetError(error, path, 0, kNone, "no data rows (cannot detect a schema)");
    return std::nullopt;
  }

  std::vector<ColumnType> schema(arity, ColumnType::kInt);
  bool needs_dict = false;
  for (std::size_t c = 0; c < arity; ++c) {
    if (!is_int[c]) {
      schema[c] = ColumnType::kString;
      needs_dict = true;
    }
  }
  if (needs_dict && dict == nullptr) {
    SetError(error, path, 0, kNone,
             "file has string columns but no dictionary was provided");
    return std::nullopt;
  }

  // Pass 2: re-stream with the settled schema. Dictionary ids are assigned
  // in row order here, so a numeric-looking field in a string column still
  // encodes as a string.
  auto rel = LoadRelationFromFile(path, name, schema, dict, error);
  if (rel.has_value() && schema_out != nullptr) *schema_out = std::move(schema);
  return rel;
}

std::optional<Relation> LoadEdgeList(const std::string& path,
                                     const std::string& name,
                                     LoadError* error) {
  return LoadRelationFromFile(path, name, /*arity=*/2, error);
}

namespace {

bool NeedsQuoting(std::string_view field) {
  if (field.empty()) return true;
  if (field[0] == '#' || field[0] == '%') return true;
  for (const char c : field) {
    if (IsSeparator(c) || c == '"') return true;
  }
  // A string label that reads as an integer must save quoted, or
  // auto-detection would reclassify its column as kInt on reload and the
  // values would silently change meaning from dictionary ids to integers.
  // Shape scan, not ParseInt: no allocation, no exception machinery, and
  // deliberately a superset (it quotes out-of-int64-range digit runs and
  // leading-whitespace forms that stoll would also consume).
  std::size_t i = 0;
  if (std::isspace(static_cast<unsigned char>(field[0]))) return true;
  if (field[i] == '+' || field[i] == '-') ++i;
  if (i == field.size()) return false;  // bare sign: not integer-like
  while (i < field.size() &&
         std::isdigit(static_cast<unsigned char>(field[i]))) {
    ++i;
  }
  return i == field.size();  // all digits after the optional sign
}

void WriteField(std::ofstream& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (const char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

bool SaveRelationToFile(const Relation& relation, const std::string& path,
                        const Dictionary* dict) {
  CLFTJ_CHECK(!relation.has_string_columns() || dict != nullptr);
  // Resolve the column spans once and walk them row-wise; the per-cell
  // work is the formatting, not the storage access.
  std::vector<ColumnSpan> cols;
  cols.reserve(relation.arity());
  for (int c = 0; c < relation.arity(); ++c) cols.push_back(relation.Column(c));
  // The format is line-based, so an embedded newline cannot round-trip
  // even quoted (the reader tokenizes one getline at a time). Refuse such
  // content *before* opening the stream — a mid-write abort would leave a
  // truncated-but-loadable partial file behind (clobbering any previous
  // good file at the path).
  for (int c = 0; c < relation.arity(); ++c) {
    if (relation.column_type(c) != ColumnType::kString) continue;
    for (std::size_t i = 0; i < relation.size(); ++i) {
      if (dict->Decode(cols[c][i]).find('\n') != std::string_view::npos) {
        return false;
      }
    }
  }
  std::ofstream out(path);
  if (!out) return false;
  for (std::size_t i = 0; i < relation.size(); ++i) {
    for (int c = 0; c < relation.arity(); ++c) {
      if (c > 0) out << '\t';
      if (relation.column_type(c) == ColumnType::kString) {
        WriteField(out, dict->Decode(cols[c][i]));
      } else {
        out << cols[c][i];
      }
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace clftj
