#ifndef CLFTJ_DATA_SNAP_PROFILES_H_
#define CLFTJ_DATA_SNAP_PROFILES_H_

#include <string>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "query/query.h"

namespace clftj {

/// Scaled-down synthetic stand-ins for the paper's workloads (Section 5.2.1).
/// The real SNAP/IMDB files are not available offline; each profile matches
/// the property that drives the paper's results — the *degree-skew regime* —
/// at a size where the whole benchmark suite runs in minutes:
///
///   wiki-Vote        heavy skew   (votes concentrate on few admins)
///   ca-GrQc          moderate skew, small collaboration network
///   p2p-Gnutella04   balanced degrees (caching gains are moderate here)
///   ego-Facebook     heavy skew, denser
///   ego-Twitter      heaviest skew, largest
///   IMDB cast        bipartite, person_id much more skewed than movie_id
///
/// The returned edge relation is named "E" (the name used by the paper's
/// path/cycle/random pattern queries).

/// Identifies one synthetic dataset profile.
struct DatasetProfile {
  std::string label;        // e.g. "wiki-Vote"
  int num_nodes = 0;
  int param = 0;            // edges-per-node (skewed) or #edges (balanced)
  bool balanced = false;    // near-regular instead of preferential attachment
  double triad_p = 0.0;     // Holme–Kim triangle-closure probability
  std::uint64_t seed = 0;
};

/// The five SNAP stand-ins used throughout the benches, in paper order.
std::vector<DatasetProfile> SnapProfiles();

/// Generates the edge relation "E" for one profile.
Relation MakeSnapGraph(const DatasetProfile& profile);

/// Database holding just the "E" relation of a profile.
Database MakeSnapDatabase(const DatasetProfile& profile);

/// Looks up a profile by label ("wiki-Vote", ...); aborts if unknown.
DatasetProfile SnapProfileByLabel(const std::string& label);

/// IMDB stand-in: two bipartite relations "MC" (male cast) and "FC" (female
/// cast) over (person_id, movie_id), with person_id markedly more skewed
/// than movie_id — the asymmetry behind the paper's Figure 13.
Database MakeImdbDatabase();

/// The IMDB 2k-cycle of the paper's Figure 14: k persons alternating
/// between the male and female cast tables around the cycle
/// p1 - m1 - p2 - m2 - ... - pk - mk - p1. Variables are registered in the
/// order p1, m1, p2, m2, ... Requires persons >= 2.
Query ImdbCycleQuery(int persons);

}  // namespace clftj

#endif  // CLFTJ_DATA_SNAP_PROFILES_H_
