#include "data/database.h"

#include <utility>

#include "util/check.h"

namespace clftj {

void Database::Put(Relation relation) {
  relation.Normalize();
  const std::string name = relation.name();
  relations_.insert_or_assign(name, std::move(relation));
  ++generation_;
  // A generation bump invalidates every reuse layer wholesale, so the delta
  // history up to here is useless — drop it and move the floor so stale
  // DeltasSince callers are told to do a full reset.
  delta_log_.clear();
  delta_log_floor_ = minor_version_;
}

bool Database::ApplyDelta(const DeltaBatch& batch, std::string* error,
                          DeltaResult* result) {
  const auto it = relations_.find(batch.relation);
  if (it == relations_.end()) {
    if (error != nullptr) *error = "unknown relation: " + batch.relation;
    return false;
  }
  Relation& rel = it->second;
  const int arity = rel.arity();
  for (const auto* tuples : {&batch.adds, &batch.deletes}) {
    for (const Tuple& t : *tuples) {
      if (static_cast<int>(t.size()) != arity) {
        if (error != nullptr) {
          *error = "arity mismatch for relation " + batch.relation;
        }
        return false;
      }
    }
  }
  const DeltaResult res = rel.ApplyDelta(batch.adds, batch.deletes);
  ++minor_version_;
  DeltaLogEntry entry;
  entry.minor = minor_version_;
  entry.relation = batch.relation;
  entry.changed.reserve(batch.adds.size() + batch.deletes.size());
  entry.changed.insert(entry.changed.end(), batch.adds.begin(),
                       batch.adds.end());
  entry.changed.insert(entry.changed.end(), batch.deletes.begin(),
                       batch.deletes.end());
  entry.compacted = res.compacted;
  delta_log_.push_back(std::move(entry));
  while (delta_log_.size() > kMaxDeltaLog) {
    delta_log_floor_ = delta_log_.front().minor;
    delta_log_.pop_front();
  }
  if (result != nullptr) *result = res;
  return true;
}

bool Database::DeltasSince(std::uint64_t since,
                           std::vector<const DeltaLogEntry*>* out) const {
  if (since < delta_log_floor_) return false;
  for (const DeltaLogEntry& entry : delta_log_) {
    if (entry.minor > since) out->push_back(&entry);
  }
  return true;
}

Relation* Database::FindMutable(const std::string& name) {
  const auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

const Relation* Database::Find(const std::string& name) const {
  const auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

const Relation& Database::Get(const std::string& name) const {
  const Relation* r = Find(name);
  CLFTJ_CHECK_MSG(r != nullptr, name.c_str());
  return *r;
}

bool Database::Contains(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

std::size_t Database::TotalTuples() const {
  std::size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel.size();
  return total;
}

std::size_t Database::MemoryBytes() const {
  std::size_t total = dict_->MemoryBytes();
  for (const auto& [name, rel] : relations_) total += rel.MemoryBytes();
  return total;
}

}  // namespace clftj
