#include "data/database.h"

#include <utility>

#include "util/check.h"

namespace clftj {

void Database::Put(Relation relation) {
  relation.Normalize();
  const std::string name = relation.name();
  relations_.insert_or_assign(name, std::move(relation));
  ++generation_;
}

const Relation* Database::Find(const std::string& name) const {
  const auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

const Relation& Database::Get(const std::string& name) const {
  const Relation* r = Find(name);
  CLFTJ_CHECK_MSG(r != nullptr, name.c_str());
  return *r;
}

bool Database::Contains(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

std::size_t Database::TotalTuples() const {
  std::size_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel.size();
  return total;
}

std::size_t Database::MemoryBytes() const {
  std::size_t total = dict_->MemoryBytes();
  for (const auto& [name, rel] : relations_) total += rel.MemoryBytes();
  return total;
}

}  // namespace clftj
