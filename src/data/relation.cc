#include "data/relation.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace clftj {

Relation::Relation(std::string name, int arity)
    : name_(std::move(name)), arity_(arity) {
  CLFTJ_CHECK(arity >= 1);
}

void Relation::Add(const Tuple& tuple) {
  CLFTJ_CHECK(static_cast<int>(tuple.size()) == arity_);
  data_.insert(data_.end(), tuple.begin(), tuple.end());
}

void Relation::AddPair(Value a, Value b) {
  CLFTJ_CHECK(arity_ == 2);
  data_.push_back(a);
  data_.push_back(b);
}

void Relation::Normalize() {
  const std::size_t n = size();
  if (n <= 1) return;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const int k = arity_;
  const Value* d = data_.data();
  std::sort(order.begin(), order.end(),
            [d, k](std::size_t a, std::size_t b) {
              return std::lexicographical_compare(d + a * k, d + a * k + k,
                                                  d + b * k, d + b * k + k);
            });
  std::vector<Value> out;
  out.reserve(data_.size());
  for (std::size_t idx = 0; idx < n; ++idx) {
    const Value* row = d + order[idx] * k;
    if (!out.empty() &&
        std::equal(row, row + k, out.end() - k, out.end())) {
      continue;  // duplicate of previous emitted row
    }
    out.insert(out.end(), row, row + k);
  }
  data_ = std::move(out);
}

Tuple Relation::TupleAt(std::size_t i) const {
  CLFTJ_CHECK(i < size());
  return Tuple(data_.begin() + i * arity_, data_.begin() + (i + 1) * arity_);
}

std::size_t Relation::DistinctInColumn(int col) const {
  CLFTJ_CHECK(col >= 0 && col < arity_);
  std::vector<Value> vals;
  vals.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) vals.push_back(At(i, col));
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals.size();
}

std::size_t Relation::MaxFrequencyInColumn(int col) const {
  CLFTJ_CHECK(col >= 0 && col < arity_);
  std::vector<Value> vals;
  vals.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) vals.push_back(At(i, col));
  std::sort(vals.begin(), vals.end());
  std::size_t best = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    run = (i > 0 && vals[i] == vals[i - 1]) ? run + 1 : 1;
    best = std::max(best, run);
  }
  return best;
}

}  // namespace clftj
