#include "data/relation.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/simd.h"

namespace clftj {

namespace {

std::atomic<int> g_normalize_threads{0};  // 0 = auto

// Sharding a sort below this row count costs more in thread spawn than the
// sort itself; such loads (and every single-threaded resolution) stay on
// the serial path, which is also the reference arm the sharded result is
// differentially tested against.
constexpr std::size_t kNormalizeShardFloor = 1u << 12;

int ResolvedNormalizeThreads() {
  int t = g_normalize_threads.load(std::memory_order_relaxed);
  if (t <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    t = static_cast<int>(hw == 0 ? 1 : std::min(hw, 4u));
  }
  return t;
}

}  // namespace

void SetNormalizeParallelism(int threads) {
  if (threads < 0) threads = 0;
  if (threads > 16) threads = 16;
  g_normalize_threads.store(threads, std::memory_order_relaxed);
}

int NormalizeParallelism() {
  return g_normalize_threads.load(std::memory_order_relaxed);
}

Relation::Relation(std::string name, int arity)
    : name_(std::move(name)),
      arity_(arity),
      columns_(static_cast<std::size_t>(arity)),
      types_(static_cast<std::size_t>(arity), ColumnType::kInt),
      stats_(static_cast<std::size_t>(arity)) {
  CLFTJ_CHECK(arity >= 1);
}

Relation::Relation(const Relation& other)
    : name_(other.name_),
      arity_(other.arity_),
      num_rows_(other.num_rows_),
      columns_(other.columns_),
      types_(other.types_),
      delta_engaged_(other.delta_engaged_),
      main_columns_(other.main_columns_),
      main_rows_(other.main_rows_),
      add_columns_(other.add_columns_),
      add_rows_(other.add_rows_),
      del_columns_(other.del_columns_),
      del_rows_(other.del_rows_),
      delta_version_(other.delta_version_),
      compactions_(other.compactions_),
      compaction_threshold_(other.compaction_threshold_) {
  std::lock_guard<std::mutex> lock(other.stats_mutex_);
  stats_ = other.stats_;
  stats_builds_ = other.stats_builds_;
  stats_present_ = other.stats_present_;
}

namespace {

// Leaves a moved-from relation as a consistent arity-0 shell without
// allocating (the move operations are noexcept, so they may neither lock —
// mutation requires exclusive access to both operands by contract anyway —
// nor allocate): its moved-from vectors are empty, and with arity 0 and
// size 0 the shell has no valid column or row index, so the element
// accessors' preconditions (col < arity(), i < size()) are unsatisfiable —
// observers (size/arity/empty/name), destruction and assignment are the
// only operations in contract, and they are all safe.
void ResetMovedFrom(std::size_t* num_rows, int* arity,
                    std::uint64_t* stats_builds,
                    bool* stats_present) noexcept {
  *num_rows = 0;
  *arity = 0;
  *stats_builds = 0;
  *stats_present = false;
}

}  // namespace

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      arity_(other.arity_),
      num_rows_(other.num_rows_),
      columns_(std::move(other.columns_)),
      types_(std::move(other.types_)),
      delta_engaged_(other.delta_engaged_),
      main_columns_(std::move(other.main_columns_)),
      main_rows_(other.main_rows_),
      add_columns_(std::move(other.add_columns_)),
      add_rows_(other.add_rows_),
      del_columns_(std::move(other.del_columns_)),
      del_rows_(other.del_rows_),
      delta_version_(other.delta_version_),
      compactions_(other.compactions_),
      compaction_threshold_(other.compaction_threshold_),
      stats_(std::move(other.stats_)),
      stats_builds_(other.stats_builds_),
      stats_present_(other.stats_present_) {
  other.delta_engaged_ = false;
  other.main_rows_ = other.add_rows_ = other.del_rows_ = 0;
  ResetMovedFrom(&other.num_rows_, &other.arity_, &other.stats_builds_,
                 &other.stats_present_);
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  columns_ = other.columns_;
  types_ = other.types_;
  delta_engaged_ = other.delta_engaged_;
  main_columns_ = other.main_columns_;
  main_rows_ = other.main_rows_;
  add_columns_ = other.add_columns_;
  add_rows_ = other.add_rows_;
  del_columns_ = other.del_columns_;
  del_rows_ = other.del_rows_;
  delta_version_ = other.delta_version_;
  compactions_ = other.compactions_;
  compaction_threshold_ = other.compaction_threshold_;
  std::scoped_lock lock(stats_mutex_, other.stats_mutex_);
  stats_ = other.stats_;
  stats_builds_ = other.stats_builds_;
  stats_present_ = other.stats_present_;
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  columns_ = std::move(other.columns_);
  types_ = std::move(other.types_);
  delta_engaged_ = other.delta_engaged_;
  main_columns_ = std::move(other.main_columns_);
  main_rows_ = other.main_rows_;
  add_columns_ = std::move(other.add_columns_);
  add_rows_ = other.add_rows_;
  del_columns_ = std::move(other.del_columns_);
  del_rows_ = other.del_rows_;
  delta_version_ = other.delta_version_;
  compactions_ = other.compactions_;
  compaction_threshold_ = other.compaction_threshold_;
  stats_ = std::move(other.stats_);
  stats_builds_ = other.stats_builds_;
  stats_present_ = other.stats_present_;
  other.delta_engaged_ = false;
  other.main_rows_ = other.add_rows_ = other.del_rows_ = 0;
  ResetMovedFrom(&other.num_rows_, &other.arity_, &other.stats_builds_,
                 &other.stats_present_);
  return *this;
}

void Relation::Add(const Tuple& tuple) {
  CLFTJ_CHECK(static_cast<int>(tuple.size()) == arity_);
  AbandonDelta();
  for (int c = 0; c < arity_; ++c) columns_[c].push_back(tuple[c]);
  ++num_rows_;
  InvalidateStats();
}

void Relation::AddPair(Value a, Value b) {
  CLFTJ_CHECK(arity_ == 2);
  AbandonDelta();
  columns_[0].push_back(a);
  columns_[1].push_back(b);
  ++num_rows_;
  InvalidateStats();
}

void Relation::Reserve(std::size_t rows) {
  for (auto& column : columns_) column.reserve(rows);
}

Relation Relation::FromColumns(std::string name,
                               std::vector<std::vector<Value>> columns) {
  CLFTJ_CHECK(!columns.empty());
  Relation rel(std::move(name), static_cast<int>(columns.size()));
  rel.num_rows_ = columns.front().size();
  for (const auto& column : columns) {
    CLFTJ_CHECK(column.size() == rel.num_rows_);
  }
  rel.columns_ = std::move(columns);
  return rel;
}

Relation Relation::FromColumns(std::string name,
                               std::vector<std::vector<Value>> columns,
                               std::vector<ColumnType> types) {
  Relation rel = FromColumns(std::move(name), std::move(columns));
  rel.set_column_types(std::move(types));
  return rel;
}

void Relation::set_column_types(std::vector<ColumnType> types) {
  CLFTJ_CHECK(static_cast<int>(types.size()) == arity_);
  types_ = std::move(types);
}

bool Relation::has_string_columns() const {
  for (const ColumnType t : types_) {
    if (t == ColumnType::kString) return true;
  }
  return false;
}

void Relation::Normalize() {
  AbandonDelta();
  InvalidateStats();
  const std::size_t n = num_rows_;
  if (n <= 1) return;
  const int k = arity_;

  // Sort a permutation of row indices against the columns: the columns
  // stay put, only indices move. The column base pointers are hoisted so
  // the comparator does no double indirection through the outer vector.
  std::vector<const Value*> cols(k);
  for (int c = 0; c < k; ++c) cols[c] = columns_[c].data();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const auto row_less = [&cols, k](std::size_t a, std::size_t b) {
    for (int c = 0; c < k; ++c) {
      const Value va = cols[c][a];
      const Value vb = cols[c][b];
      if (va != vb) return va < vb;
    }
    return false;
  };
  const int shards =
      n >= kNormalizeShardFloor ? ResolvedNormalizeThreads() : 1;
  if (shards <= 1) {
    std::sort(order.begin(), order.end(), row_less);
  } else {
    // Sharded sort for bulk loads: sort `shards` contiguous slices of the
    // index vector concurrently, then fold them with a pairwise stable
    // merge tree. Ties (duplicate rows) may land in a different index
    // order than the serial sort, but equal rows carry equal values in
    // every column, so the deduplicated output columns are value-identical
    // either way (pinned by the sharded-vs-serial suite in simd_test.cc).
    std::vector<std::size_t> bounds(static_cast<std::size_t>(shards) + 1);
    for (int s = 0; s <= shards; ++s) {
      bounds[s] = n * static_cast<std::size_t>(s) /
                  static_cast<std::size_t>(shards);
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(shards) - 1);
    for (int s = 1; s < shards; ++s) {
      workers.emplace_back([&order, &bounds, &row_less, s] {
        std::sort(order.begin() + static_cast<std::ptrdiff_t>(bounds[s]),
                  order.begin() + static_cast<std::ptrdiff_t>(bounds[s + 1]),
                  row_less);
      });
    }
    std::sort(order.begin(),
              order.begin() + static_cast<std::ptrdiff_t>(bounds[1]),
              row_less);
    for (std::thread& w : workers) w.join();
    for (int step = 1; step < shards; step *= 2) {
      for (int s = 0; s + step < shards; s += 2 * step) {
        const int hi = std::min(s + 2 * step, shards);
        std::inplace_merge(
            order.begin() + static_cast<std::ptrdiff_t>(bounds[s]),
            order.begin() + static_cast<std::ptrdiff_t>(bounds[s + step]),
            order.begin() + static_cast<std::ptrdiff_t>(bounds[hi]),
            row_less);
      }
    }
  }

  // Keep one representative per run of equal rows (sorted order makes
  // duplicates adjacent). Dispatched: the AVX2 arm gathers 4 adjacent
  // (row, predecessor) pairs per column and emits differing lanes, with
  // the same keep list bit for bit as the scalar arm (simd_test.cc).
  std::vector<std::size_t> keep;
  keep.reserve(n);
  simd::DedupRows(cols.data(), k, order.data(), n, &keep);

  // Apply the deduplicated permutation to each column independently.
  for (int c = 0; c < k; ++c) {
    std::vector<Value> out;
    out.reserve(keep.size());
    const Value* src = columns_[c].data();
    for (const std::size_t row : keep) out.push_back(src[row]);
    columns_[c] = std::move(out);
  }
  num_rows_ = keep.size();
}

Tuple Relation::TupleAt(std::size_t i) const {
  CLFTJ_CHECK(i < num_rows_);
  Tuple t(arity_);
  for (int c = 0; c < arity_; ++c) t[c] = columns_[c][i];
  return t;
}

namespace {

// One sorted pass produces every ColumnStats field.
ColumnStats ComputeColumnStats(const std::vector<Value>& column) {
  ColumnStats s;
  if (column.empty()) return s;
  std::vector<Value> vals(column);
  std::sort(vals.begin(), vals.end());
  s.min = vals.front();
  s.max = vals.back();
  std::size_t run = 0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i > 0 && vals[i] == vals[i - 1]) {
      ++run;
    } else {
      if (run > 0) sum_sq += static_cast<double>(run) * run;
      run = 1;
      ++s.distinct;
    }
    s.max_frequency = std::max(s.max_frequency, run);
  }
  sum_sq += static_cast<double>(run) * run;
  const double n = static_cast<double>(vals.size());
  s.effective_distinct = (n * n) / sum_sq;
  return s;
}

}  // namespace

const ColumnStats& Relation::Stats(int col) const {
  CLFTJ_CHECK(col >= 0 && col < arity_);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (stats_[col].has_value()) return *stats_[col];
  }
  // Compute outside the lock so a cold O(n log n) build of one column never
  // stalls memoized reads of the others. Two concurrent first readers may
  // rarely duplicate the compute; only one result is installed and counted.
  ColumnStats fresh = ComputeColumnStats(columns_[col]);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  std::optional<ColumnStats>& slot = stats_[col];
  if (!slot.has_value()) {
    slot = std::move(fresh);
    ++stats_builds_;
    stats_present_ = true;
  }
  return *slot;
}

std::size_t Relation::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& column : columns_) {
    bytes += column.capacity() * sizeof(Value);
  }
  for (const auto* tier : {&main_columns_, &add_columns_, &del_columns_}) {
    for (const auto& column : *tier) {
      bytes += column.capacity() * sizeof(Value);
    }
  }
  return bytes;
}

namespace {

// Lexicographic compare of row `a` of `ca` against row `b` of `cb`.
int CompareRows(const std::vector<std::vector<Value>>& ca, std::size_t a,
                const std::vector<std::vector<Value>>& cb, std::size_t b) {
  for (std::size_t c = 0; c < ca.size(); ++c) {
    const Value va = ca[c][a];
    const Value vb = cb[c][b];
    if (va != vb) return va < vb ? -1 : 1;
  }
  return 0;
}

// Binary search for tuple `t` among the first `n` (sorted, deduplicated)
// rows of `cols`.
bool ColumnsContainRow(const std::vector<std::vector<Value>>& cols,
                       std::size_t n, const Tuple& t) {
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    int cmp = 0;
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const Value v = cols[c][mid];
      if (v != t[c]) {
        cmp = v < t[c] ? -1 : 1;
        break;
      }
    }
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

// Columnar tier -> sorted row-tuple working set and back (delta tiers are
// small, so the round trip is cheap and keeps the edit logic readable).
std::vector<Tuple> RowsOf(const std::vector<std::vector<Value>>& cols,
                          std::size_t n, int arity) {
  std::vector<Tuple> rows(n, Tuple(arity));
  for (std::size_t i = 0; i < n; ++i) {
    for (int c = 0; c < arity; ++c) rows[i][c] = cols[c][i];
  }
  return rows;
}

void StoreRows(const std::vector<Tuple>& rows, int arity,
               std::vector<std::vector<Value>>* cols, std::size_t* n) {
  cols->assign(arity, {});
  for (int c = 0; c < arity; ++c) {
    (*cols)[c].reserve(rows.size());
    for (const Tuple& t : rows) (*cols)[c].push_back(t[c]);
  }
  *n = rows.size();
}

// Sorted-set insert/erase over the working sets; both report whether the
// set changed.
bool SortedInsert(std::vector<Tuple>* set, const Tuple& t) {
  const auto it = std::lower_bound(set->begin(), set->end(), t);
  if (it != set->end() && *it == t) return false;
  set->insert(it, t);
  return true;
}

bool SortedErase(std::vector<Tuple>* set, const Tuple& t) {
  const auto it = std::lower_bound(set->begin(), set->end(), t);
  if (it == set->end() || *it != t) return false;
  set->erase(it);
  return true;
}

}  // namespace

bool Relation::IsNormalized() const {
  for (std::size_t i = 1; i < num_rows_; ++i) {
    if (CompareRows(columns_, i - 1, columns_, i) >= 0) return false;
  }
  return true;
}

void Relation::EngageDelta() {
  if (delta_engaged_) return;
  if (!IsNormalized()) Normalize();
  main_columns_ = columns_;
  main_rows_ = num_rows_;
  add_columns_.assign(static_cast<std::size_t>(arity_), {});
  del_columns_.assign(static_cast<std::size_t>(arity_), {});
  add_rows_ = del_rows_ = 0;
  delta_engaged_ = true;
}

void Relation::AbandonDelta() {
  if (!delta_engaged_) return;
  main_columns_.clear();
  add_columns_.clear();
  del_columns_.clear();
  main_rows_ = add_rows_ = del_rows_ = 0;
  delta_engaged_ = false;
  ++compactions_;  // the main tier is gone: overlay holders must rebuild
}

void Relation::RebuildVisible() {
  const int k = arity_;
  std::vector<std::vector<Value>> out(static_cast<std::size_t>(k));
  const std::size_t visible = main_rows_ - del_rows_ + add_rows_;
  for (auto& column : out) column.reserve(visible);
  std::size_t m = 0;
  std::size_t d = 0;
  std::size_t a = 0;
  while (m < main_rows_ || a < add_rows_) {
    bool take_main;
    if (m >= main_rows_) {
      take_main = false;
    } else if (a >= add_rows_) {
      take_main = true;
    } else {
      // Never equal: the added tier is disjoint from main by invariant.
      take_main = CompareRows(main_columns_, m, add_columns_, a) < 0;
    }
    if (take_main) {
      if (d < del_rows_ &&
          CompareRows(main_columns_, m, del_columns_, d) == 0) {
        ++m;  // tombstoned
        ++d;
        continue;
      }
      for (int c = 0; c < k; ++c) out[c].push_back(main_columns_[c][m]);
      ++m;
    } else {
      for (int c = 0; c < k; ++c) out[c].push_back(add_columns_[c][a]);
      ++a;
    }
  }
  num_rows_ = out[0].size();
  columns_ = std::move(out);
}

DeltaResult Relation::ApplyDelta(const std::vector<Tuple>& adds,
                                 const std::vector<Tuple>& deletes) {
  for (const Tuple& t : adds) {
    CLFTJ_CHECK(static_cast<int>(t.size()) == arity_);
  }
  for (const Tuple& t : deletes) {
    CLFTJ_CHECK(static_cast<int>(t.size()) == arity_);
  }
  EngageDelta();
  std::vector<Tuple> add_set = RowsOf(add_columns_, add_rows_, arity_);
  std::vector<Tuple> del_set = RowsOf(del_columns_, del_rows_, arity_);
  DeltaResult res;
  for (const Tuple& t : deletes) {
    if (SortedErase(&add_set, t)) {
      ++res.applied_deletes;
      continue;
    }
    if (ColumnsContainRow(main_columns_, main_rows_, t) &&
        SortedInsert(&del_set, t)) {
      ++res.applied_deletes;
    }
  }
  for (const Tuple& t : adds) {
    if (SortedErase(&del_set, t)) {  // un-tombstone: visible again
      ++res.applied_adds;
      continue;
    }
    if (ColumnsContainRow(main_columns_, main_rows_, t)) continue;
    if (SortedInsert(&add_set, t)) ++res.applied_adds;
  }
  StoreRows(add_set, arity_, &add_columns_, &add_rows_);
  StoreRows(del_set, arity_, &del_columns_, &del_rows_);
  RebuildVisible();
  ++delta_version_;
  InvalidateStats();
  if (add_rows_ + del_rows_ > compaction_threshold()) {
    Compact();
    res.compacted = true;
  }
  return res;
}

std::size_t Relation::compaction_threshold() const {
  if (compaction_threshold_ != 0) return compaction_threshold_;
  const std::size_t base = delta_engaged_ ? main_rows_ : num_rows_;
  return std::max<std::size_t>(64, base / 8);
}

void Relation::Compact() {
  if (!delta_engaged_) return;
  // columns_ already holds the merged visible image as a sorted set; it
  // simply becomes the next main tier.
  main_columns_.clear();
  add_columns_.clear();
  del_columns_.clear();
  main_rows_ = add_rows_ = del_rows_ = 0;
  delta_engaged_ = false;
  ++compactions_;
}

std::uint64_t Relation::stats_builds() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_builds_;
}

void Relation::InvalidateStats() {
  if (!stats_present_) return;  // nothing memoized: skip the lock
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (auto& slot : stats_) slot.reset();
  stats_present_ = false;
}

}  // namespace clftj
