#include "data/relation.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/check.h"

namespace clftj {

Relation::Relation(std::string name, int arity)
    : name_(std::move(name)),
      arity_(arity),
      columns_(static_cast<std::size_t>(arity)),
      types_(static_cast<std::size_t>(arity), ColumnType::kInt),
      stats_(static_cast<std::size_t>(arity)) {
  CLFTJ_CHECK(arity >= 1);
}

Relation::Relation(const Relation& other)
    : name_(other.name_),
      arity_(other.arity_),
      num_rows_(other.num_rows_),
      columns_(other.columns_),
      types_(other.types_) {
  std::lock_guard<std::mutex> lock(other.stats_mutex_);
  stats_ = other.stats_;
  stats_builds_ = other.stats_builds_;
  stats_present_ = other.stats_present_;
}

namespace {

// Leaves a moved-from relation as a consistent arity-0 shell without
// allocating (the move operations are noexcept, so they may neither lock —
// mutation requires exclusive access to both operands by contract anyway —
// nor allocate): its moved-from vectors are empty, and with arity 0 and
// size 0 the shell has no valid column or row index, so the element
// accessors' preconditions (col < arity(), i < size()) are unsatisfiable —
// observers (size/arity/empty/name), destruction and assignment are the
// only operations in contract, and they are all safe.
void ResetMovedFrom(std::size_t* num_rows, int* arity,
                    std::uint64_t* stats_builds,
                    bool* stats_present) noexcept {
  *num_rows = 0;
  *arity = 0;
  *stats_builds = 0;
  *stats_present = false;
}

}  // namespace

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      arity_(other.arity_),
      num_rows_(other.num_rows_),
      columns_(std::move(other.columns_)),
      types_(std::move(other.types_)),
      stats_(std::move(other.stats_)),
      stats_builds_(other.stats_builds_),
      stats_present_(other.stats_present_) {
  ResetMovedFrom(&other.num_rows_, &other.arity_, &other.stats_builds_,
                 &other.stats_present_);
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  columns_ = other.columns_;
  types_ = other.types_;
  std::scoped_lock lock(stats_mutex_, other.stats_mutex_);
  stats_ = other.stats_;
  stats_builds_ = other.stats_builds_;
  stats_present_ = other.stats_present_;
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  arity_ = other.arity_;
  num_rows_ = other.num_rows_;
  columns_ = std::move(other.columns_);
  types_ = std::move(other.types_);
  stats_ = std::move(other.stats_);
  stats_builds_ = other.stats_builds_;
  stats_present_ = other.stats_present_;
  ResetMovedFrom(&other.num_rows_, &other.arity_, &other.stats_builds_,
                 &other.stats_present_);
  return *this;
}

void Relation::Add(const Tuple& tuple) {
  CLFTJ_CHECK(static_cast<int>(tuple.size()) == arity_);
  for (int c = 0; c < arity_; ++c) columns_[c].push_back(tuple[c]);
  ++num_rows_;
  InvalidateStats();
}

void Relation::AddPair(Value a, Value b) {
  CLFTJ_CHECK(arity_ == 2);
  columns_[0].push_back(a);
  columns_[1].push_back(b);
  ++num_rows_;
  InvalidateStats();
}

void Relation::Reserve(std::size_t rows) {
  for (auto& column : columns_) column.reserve(rows);
}

Relation Relation::FromColumns(std::string name,
                               std::vector<std::vector<Value>> columns) {
  CLFTJ_CHECK(!columns.empty());
  Relation rel(std::move(name), static_cast<int>(columns.size()));
  rel.num_rows_ = columns.front().size();
  for (const auto& column : columns) {
    CLFTJ_CHECK(column.size() == rel.num_rows_);
  }
  rel.columns_ = std::move(columns);
  return rel;
}

Relation Relation::FromColumns(std::string name,
                               std::vector<std::vector<Value>> columns,
                               std::vector<ColumnType> types) {
  Relation rel = FromColumns(std::move(name), std::move(columns));
  rel.set_column_types(std::move(types));
  return rel;
}

void Relation::set_column_types(std::vector<ColumnType> types) {
  CLFTJ_CHECK(static_cast<int>(types.size()) == arity_);
  types_ = std::move(types);
}

bool Relation::has_string_columns() const {
  for (const ColumnType t : types_) {
    if (t == ColumnType::kString) return true;
  }
  return false;
}

void Relation::Normalize() {
  InvalidateStats();
  const std::size_t n = num_rows_;
  if (n <= 1) return;
  const int k = arity_;

  // Sort a permutation of row indices against the columns: the columns
  // stay put, only indices move. The column base pointers are hoisted so
  // the comparator does no double indirection through the outer vector.
  std::vector<const Value*> cols(k);
  for (int c = 0; c < k; ++c) cols[c] = columns_[c].data();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&cols, k](std::size_t a, std::size_t b) {
              for (int c = 0; c < k; ++c) {
                const Value va = cols[c][a];
                const Value vb = cols[c][b];
                if (va != vb) return va < vb;
              }
              return false;
            });

  // Keep one representative per run of equal rows (sorted order makes
  // duplicates adjacent).
  std::vector<std::size_t> keep;
  keep.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = order[i];
    if (i > 0) {
      const std::size_t prev = order[i - 1];
      bool equal = true;
      for (int c = 0; c < k && equal; ++c) {
        equal = cols[c][row] == cols[c][prev];
      }
      if (equal) continue;
    }
    keep.push_back(row);
  }

  // Apply the deduplicated permutation to each column independently.
  for (int c = 0; c < k; ++c) {
    std::vector<Value> out;
    out.reserve(keep.size());
    const Value* src = columns_[c].data();
    for (const std::size_t row : keep) out.push_back(src[row]);
    columns_[c] = std::move(out);
  }
  num_rows_ = keep.size();
}

Tuple Relation::TupleAt(std::size_t i) const {
  CLFTJ_CHECK(i < num_rows_);
  Tuple t(arity_);
  for (int c = 0; c < arity_; ++c) t[c] = columns_[c][i];
  return t;
}

namespace {

// One sorted pass produces every ColumnStats field.
ColumnStats ComputeColumnStats(const std::vector<Value>& column) {
  ColumnStats s;
  if (column.empty()) return s;
  std::vector<Value> vals(column);
  std::sort(vals.begin(), vals.end());
  s.min = vals.front();
  s.max = vals.back();
  std::size_t run = 0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (i > 0 && vals[i] == vals[i - 1]) {
      ++run;
    } else {
      if (run > 0) sum_sq += static_cast<double>(run) * run;
      run = 1;
      ++s.distinct;
    }
    s.max_frequency = std::max(s.max_frequency, run);
  }
  sum_sq += static_cast<double>(run) * run;
  const double n = static_cast<double>(vals.size());
  s.effective_distinct = (n * n) / sum_sq;
  return s;
}

}  // namespace

const ColumnStats& Relation::Stats(int col) const {
  CLFTJ_CHECK(col >= 0 && col < arity_);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (stats_[col].has_value()) return *stats_[col];
  }
  // Compute outside the lock so a cold O(n log n) build of one column never
  // stalls memoized reads of the others. Two concurrent first readers may
  // rarely duplicate the compute; only one result is installed and counted.
  ColumnStats fresh = ComputeColumnStats(columns_[col]);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  std::optional<ColumnStats>& slot = stats_[col];
  if (!slot.has_value()) {
    slot = std::move(fresh);
    ++stats_builds_;
    stats_present_ = true;
  }
  return *slot;
}

std::size_t Relation::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& column : columns_) {
    bytes += column.capacity() * sizeof(Value);
  }
  return bytes;
}

std::uint64_t Relation::stats_builds() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_builds_;
}

void Relation::InvalidateStats() {
  if (!stats_present_) return;  // nothing memoized: skip the lock
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (auto& slot : stats_) slot.reset();
  stats_present_ = false;
}

}  // namespace clftj
