#include "baseline/generic_join.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>

#include "trie/trie.h"
#include "util/check.h"
#include "util/hash.h"

namespace clftj {

namespace {

// Hash index of one atom under a variable order: for each level l (the
// atom's l-th variable in global order), a map from the length-l prefix to
// the sorted distinct values extending it.
struct AtomIndex {
  std::vector<VarId> level_vars;
  std::vector<std::unordered_map<Tuple, std::vector<Value>, TupleHash>> maps;
  bool non_empty = false;
};

AtomIndex BuildIndex(const Database& db, const Atom& atom,
                     const std::vector<int>& var_rank) {
  // The filtered/projected tuples come out of BuildAtomView, which streams
  // the relation's columns; this walk only re-shapes the sorted trie into
  // per-prefix hash buckets.
  const AtomView view = BuildAtomView(db.Get(atom.relation), atom, var_rank);
  AtomIndex index;
  index.level_vars = view.level_vars;
  index.non_empty = view.non_empty;
  const Trie& trie = *view.trie;
  index.maps.resize(trie.depth());
  Tuple prefix;
  const std::function<void(int, std::size_t, std::size_t)> walk =
      [&](int level, std::size_t begin, std::size_t end) {
        auto& values = index.maps[level][prefix];
        for (std::size_t i = begin; i < end; ++i) {
          const Value v = trie.values(level)[i];
          values.push_back(v);  // trie order is sorted already
          if (level + 1 < trie.depth()) {
            prefix.push_back(v);
            walk(level + 1, trie.starts(level)[i], trie.starts(level)[i + 1]);
            prefix.pop_back();
          }
        }
      };
  if (trie.depth() > 0) walk(0, 0, trie.values(0).size());
  return index;
}

class Run {
 public:
  Run(const Query& q, const Database& db, const std::vector<VarId>& order,
      const RunLimits& limits, ExecStats* stats)
      : order_(order),
        deadline_(limits.timeout_seconds, limits.cancel),
        stats_(stats) {
    CLFTJ_CHECK(q.AllVarsCovered());
    var_rank_.assign(q.num_vars(), kNone);
    for (int d = 0; d < static_cast<int>(order.size()); ++d) {
      var_rank_[order[d]] = d;
    }
    for (const Atom& atom : q.atoms()) {
      indexes_.push_back(BuildIndex(db, atom, var_rank_));
      if (!indexes_.back().non_empty) empty_ = true;
    }
    // Participants per depth: (atom, level) pairs.
    at_depth_.resize(order.size());
    for (std::size_t a = 0; a < indexes_.size(); ++a) {
      for (std::size_t l = 0; l < indexes_[a].level_vars.size(); ++l) {
        at_depth_[var_rank_[indexes_[a].level_vars[l]]].push_back(
            {static_cast<int>(a), static_cast<int>(l)});
      }
    }
    prefixes_.resize(indexes_.size());
  }

  template <typename Emit>
  bool Go(const Emit& emit) {
    if (empty_) return true;
    Tuple assignment(var_rank_.size(), kNullValue);
    return Rec(0, &assignment, emit);
  }

  bool timed_out() const { return timed_out_; }

 private:
  template <typename Emit>
  bool Rec(int d, Tuple* assignment, const Emit& emit) {
    if (d == static_cast<int>(order_.size())) {
      emit(*assignment);
      return true;
    }
    // Pick the participating atom with the fewest extensions.
    const std::vector<Value>* candidates = nullptr;
    for (const auto& [a, l] : at_depth_[d]) {
      stats_->memory_accesses += 1;
      const auto it = indexes_[a].maps[l].find(prefixes_[a]);
      const std::vector<Value>* values =
          it == indexes_[a].maps[l].end() ? nullptr : &it->second;
      if (values == nullptr) return true;  // no extension: dead branch
      if (candidates == nullptr || values->size() < candidates->size()) {
        candidates = values;
      }
    }
    CLFTJ_CHECK(candidates != nullptr);
    for (const Value v : *candidates) {
      if (deadline_.Expired()) {
        timed_out_ = true;
        return false;
      }
      // Verify v against all other participants via hash membership.
      bool ok = true;
      for (const auto& [a, l] : at_depth_[d]) {
        stats_->memory_accesses += 1;
        const auto it = indexes_[a].maps[l].find(prefixes_[a]);
        if (it == indexes_[a].maps[l].end() ||
            !std::binary_search(it->second.begin(), it->second.end(), v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      (*assignment)[order_[d]] = v;
      for (const auto& [a, l] : at_depth_[d]) prefixes_[a].push_back(v);
      const bool keep_going = Rec(d + 1, assignment, emit);
      for (const auto& [a, l] : at_depth_[d]) prefixes_[a].pop_back();
      (*assignment)[order_[d]] = kNullValue;
      if (!keep_going) return false;
    }
    return true;
  }

  std::vector<VarId> order_;
  std::vector<int> var_rank_;
  std::vector<AtomIndex> indexes_;
  std::vector<std::vector<std::pair<int, int>>> at_depth_;
  std::vector<Tuple> prefixes_;  // per atom: values of its bound variables
  DeadlineChecker deadline_;
  ExecStats* stats_;
  bool empty_ = false;
  bool timed_out_ = false;
};

std::vector<VarId> ResolveOrder(const Query& q,
                                const std::vector<VarId>& requested) {
  if (!requested.empty()) return requested;
  std::vector<VarId> order(q.num_vars());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace

RunResult GenericJoin::Count(const Query& q, const Database& db,
                             const RunLimits& limits) {
  RunResult result;
  Timer timer;
  Run run(q, db, ResolveOrder(q, options_.order), limits, &result.stats);
  std::uint64_t count = 0;
  run.Go([&count](const Tuple&) { ++count; });
  result.count = count;
  result.SetStatus(MergeRunStatus(run.timed_out(), /*any_out_of_memory=*/false,
                                  limits.cancel));
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

RunResult GenericJoin::Evaluate(const Query& q, const Database& db,
                                const TupleCallback& cb,
                                const RunLimits& limits) {
  RunResult result;
  Timer timer;
  Run run(q, db, ResolveOrder(q, options_.order), limits, &result.stats);
  std::uint64_t count = 0;
  run.Go([&count, &cb](const Tuple& t) {
    ++count;
    cb(t);
  });
  result.count = count;
  result.SetStatus(MergeRunStatus(run.timed_out(), /*any_out_of_memory=*/false,
                                  limits.cancel));
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace clftj
