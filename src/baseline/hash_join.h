#ifndef CLFTJ_BASELINE_HASH_JOIN_H_
#define CLFTJ_BASELINE_HASH_JOIN_H_

#include "engine/engine.h"

namespace clftj {

/// Pairwise hash-join engine — the PostgreSQL stand-in of the experimental
/// study (Section 5.2.3). A greedy left-deep optimizer orders atoms
/// (maximize shared variables with the bound set, then smaller relations
/// first); each step hash-joins the materialized intermediate with the next
/// atom. Because full CQs have no projection, intermediates can vastly
/// exceed the final result — the classic weakness worst-case-optimal joins
/// fix, visible in the bench output.
class PairwiseHashJoin : public JoinEngine {
 public:
  std::string name() const override { return "PairwiseHJ"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;
};

}  // namespace clftj

#endif  // CLFTJ_BASELINE_HASH_JOIN_H_
