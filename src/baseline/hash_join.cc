#include "baseline/hash_join.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "trie/trie.h"
#include "util/check.h"
#include "util/hash.h"

namespace clftj {

namespace {

// One materialized intermediate: rows over `columns` (VarIds in first-bound
// order).
struct Intermediate {
  std::vector<VarId> columns;
  std::vector<Tuple> rows;
};

// The atom's filtered/projected tuples and its distinct variables (in
// first-occurrence order). Reuses the trie builder's filtering by asking
// for the natural order.
struct AtomTable {
  std::vector<VarId> vars;
  std::vector<Tuple> rows;
};

AtomTable MaterializeAtom(const Query& q, const Database& db,
                          const Atom& atom) {
  std::vector<int> var_rank(q.num_vars());
  for (int i = 0; i < q.num_vars(); ++i) var_rank[i] = i;
  const AtomView view =
      BuildAtomView(db.Get(atom.relation), atom, var_rank);
  AtomTable table;
  table.vars = view.level_vars;
  Tuple row(view.level_vars.size());
  // Walk the trie back into flat rows. The filtering/projection above it
  // streams the relation's columns (BuildAtomView), so this walk is the
  // only row materialization the baseline pays.
  const Trie& trie = *view.trie;
  if (trie.depth() == 0) return table;
  table.rows.reserve(trie.num_tuples());
  const std::function<void(int, std::size_t, std::size_t)> walk =
      [&](int level, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          row[level] = trie.values(level)[i];
          if (level + 1 == trie.depth()) {
            table.rows.push_back(row);
          } else {
            walk(level + 1, trie.starts(level)[i], trie.starts(level)[i + 1]);
          }
        }
      };
  walk(0, 0, trie.values(0).size());
  return table;
}

// Greedy left-deep ordering: start from the smallest atom table; repeatedly
// append the atom sharing the most variables with the bound set (ties:
// smaller table). Disconnected queries fall back to cross products.
std::vector<int> PlanOrder(const Query& q,
                           const std::vector<AtomTable>& tables) {
  const int m = q.num_atoms();
  std::vector<bool> used(m, false);
  std::vector<bool> bound(q.num_vars(), false);
  std::vector<int> order;
  for (int step = 0; step < m; ++step) {
    int best = -1;
    int best_shared = -1;
    for (int i = 0; i < m; ++i) {
      if (used[i]) continue;
      int shared = 0;
      for (const VarId x : tables[i].vars) shared += bound[x] ? 1 : 0;
      if (step == 0) shared = 0;  // first pick purely by size
      if (best == -1 || shared > best_shared ||
          (shared == best_shared &&
           tables[i].rows.size() < tables[best].rows.size())) {
        best = i;
        best_shared = shared;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (const VarId x : tables[best].vars) bound[x] = true;
  }
  return order;
}

// Joins `left` with one atom table by hashing the atom on the shared
// variables and probing with the intermediate rows.
bool JoinStep(Intermediate* left, const AtomTable& atom, ExecStats* stats,
              DeadlineChecker* deadline, std::uint64_t max_rows,
              bool* out_of_memory) {
  std::vector<int> shared_left;   // positions in left->columns
  std::vector<int> shared_right;  // positions in atom.vars
  std::vector<int> extra_right;   // atom positions adding new columns
  for (std::size_t i = 0; i < atom.vars.size(); ++i) {
    const auto it =
        std::find(left->columns.begin(), left->columns.end(), atom.vars[i]);
    if (it == left->columns.end()) {
      extra_right.push_back(static_cast<int>(i));
    } else {
      shared_left.push_back(static_cast<int>(it - left->columns.begin()));
      shared_right.push_back(static_cast<int>(i));
    }
  }
  std::unordered_map<Tuple, std::vector<int>, TupleHash> index;
  for (int r = 0; r < static_cast<int>(atom.rows.size()); ++r) {
    Tuple key;
    for (const int p : shared_right) key.push_back(atom.rows[r][p]);
    index[key].push_back(r);
    stats->memory_accesses += 1 + key.size();
  }
  Intermediate next;
  next.columns = left->columns;
  for (const int p : extra_right) next.columns.push_back(atom.vars[p]);
  for (const Tuple& row : left->rows) {
    if (deadline->Expired()) return false;
    Tuple key;
    for (const int p : shared_left) key.push_back(row[p]);
    stats->memory_accesses += 1 + key.size();
    const auto hit = index.find(key);
    if (hit == index.end()) continue;
    for (const int r : hit->second) {
      Tuple combined = row;
      for (const int p : extra_right) combined.push_back(atom.rows[r][p]);
      stats->memory_accesses += combined.size();
      ++stats->intermediate_tuples;
      next.rows.push_back(std::move(combined));
      if (max_rows > 0 && stats->intermediate_tuples > max_rows) {
        *out_of_memory = true;
        return false;
      }
    }
  }
  *left = std::move(next);
  return true;
}

RunResult RunPairwise(const Query& q, const Database& db,
                      const RunLimits& limits, const TupleCallback* cb) {
  RunResult result;
  Timer timer;
  CLFTJ_CHECK(q.AllVarsCovered());
  DeadlineChecker deadline(limits.timeout_seconds, limits.cancel);

  std::vector<AtomTable> tables;
  tables.reserve(q.num_atoms());
  for (const Atom& atom : q.atoms()) {
    tables.push_back(MaterializeAtom(q, db, atom));
  }
  const std::vector<int> order = PlanOrder(q, tables);

  Intermediate acc;
  acc.columns = tables[order[0]].vars;
  acc.rows = tables[order[0]].rows;
  bool alive = true;
  bool out_of_memory = false;
  for (std::size_t step = 1; step < order.size() && alive; ++step) {
    alive = JoinStep(&acc, tables[order[step]], &result.stats, &deadline,
                     limits.max_intermediate_tuples, &out_of_memory);
  }
  result.SetStatus(
      MergeRunStatus(!alive && !out_of_memory, out_of_memory, limits.cancel));
  if (alive) {
    result.count = acc.rows.size();
    if (cb != nullptr) {
      Tuple assignment(q.num_vars(), kNullValue);
      for (const Tuple& row : acc.rows) {
        for (std::size_t i = 0; i < acc.columns.size(); ++i) {
          assignment[acc.columns[i]] = row[i];
        }
        (*cb)(assignment);
      }
    }
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace

RunResult PairwiseHashJoin::Count(const Query& q, const Database& db,
                                  const RunLimits& limits) {
  return RunPairwise(q, db, limits, nullptr);
}

RunResult PairwiseHashJoin::Evaluate(const Query& q, const Database& db,
                                     const TupleCallback& cb,
                                     const RunLimits& limits) {
  return RunPairwise(q, db, limits, &cb);
}

}  // namespace clftj
