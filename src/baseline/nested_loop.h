#ifndef CLFTJ_BASELINE_NESTED_LOOP_H_
#define CLFTJ_BASELINE_NESTED_LOOP_H_

#include "engine/engine.h"

namespace clftj {

/// Atom-at-a-time backtracking join: scans each atom's relation in turn,
/// extending the partial assignment when consistent. Exponential in the
/// worst case and used as the trusted correctness reference for every other
/// engine's property tests (it is ~30 lines of obviously-correct code).
class NestedLoopJoin : public JoinEngine {
 public:
  std::string name() const override { return "NestedLoop"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;
};

}  // namespace clftj

#endif  // CLFTJ_BASELINE_NESTED_LOOP_H_
