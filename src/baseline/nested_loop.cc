#include "baseline/nested_loop.h"

#include "util/check.h"

namespace clftj {

namespace {

class Run {
 public:
  Run(const Query& q, const Database& db, const RunLimits& limits,
      ExecStats* stats)
      : q_(q),
        deadline_(limits.timeout_seconds, limits.cancel),
        stats_(stats) {
    // Per-atom column spans, resolved once: the scan loop walks contiguous
    // columns instead of re-fetching the relation per recursion level.
    atom_cols_.resize(q.num_atoms());
    for (int a = 0; a < q.num_atoms(); ++a) {
      const Atom& atom = q.atom(a);
      const Relation& rel = db.Get(atom.relation);
      CLFTJ_CHECK(static_cast<int>(atom.terms.size()) == rel.arity());
      for (int p = 0; p < rel.arity(); ++p) {
        atom_cols_[a].push_back(rel.Column(p));
      }
    }
  }

  template <typename Emit>
  bool Go(const Emit& emit) {
    Tuple assignment(q_.num_vars(), kNullValue);
    return Rec(0, &assignment, emit);
  }

  bool timed_out() const { return timed_out_; }

 private:
  template <typename Emit>
  bool Rec(int atom_index, Tuple* assignment, const Emit& emit) {
    if (atom_index == q_.num_atoms()) {
      emit(*assignment);
      return true;
    }
    const Atom& atom = q_.atom(atom_index);
    const std::vector<ColumnSpan>& cols = atom_cols_[atom_index];
    // arity >= 1 is a Relation invariant, so the row count is the first
    // span's size.
    for (std::size_t i = 0; i < cols.front().size(); ++i) {
      if (deadline_.Expired()) {
        timed_out_ = true;
        return false;
      }
      stats_->memory_accesses += atom.terms.size();
      // Check consistency and collect the variables this tuple binds.
      bool ok = true;
      std::vector<VarId> bound;
      for (std::size_t p = 0; p < atom.terms.size() && ok; ++p) {
        const Value value = cols[p][i];
        const Term& t = atom.terms[p];
        if (!t.is_variable) {
          ok = value == t.constant;
        } else if ((*assignment)[t.var] == kNullValue) {
          (*assignment)[t.var] = value;
          bound.push_back(t.var);
        } else {
          ok = (*assignment)[t.var] == value;
        }
      }
      if (ok && !Rec(atom_index + 1, assignment, emit)) {
        for (const VarId x : bound) (*assignment)[x] = kNullValue;
        return false;
      }
      for (const VarId x : bound) (*assignment)[x] = kNullValue;
    }
    return true;
  }

  const Query& q_;
  std::vector<std::vector<ColumnSpan>> atom_cols_;  // per atom, per position
  DeadlineChecker deadline_;
  ExecStats* stats_;
  bool timed_out_ = false;
};

}  // namespace

RunResult NestedLoopJoin::Count(const Query& q, const Database& db,
                                const RunLimits& limits) {
  RunResult result;
  Timer timer;
  CLFTJ_CHECK(q.AllVarsCovered());
  Run run(q, db, limits, &result.stats);
  std::uint64_t count = 0;
  run.Go([&count](const Tuple&) { ++count; });
  result.count = count;
  result.SetStatus(MergeRunStatus(run.timed_out(), /*any_out_of_memory=*/false,
                                  limits.cancel));
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

RunResult NestedLoopJoin::Evaluate(const Query& q, const Database& db,
                                   const TupleCallback& cb,
                                   const RunLimits& limits) {
  RunResult result;
  Timer timer;
  CLFTJ_CHECK(q.AllVarsCovered());
  Run run(q, db, limits, &result.stats);
  std::uint64_t count = 0;
  run.Go([&count, &cb](const Tuple& t) {
    ++count;
    cb(t);
  });
  result.count = count;
  result.SetStatus(MergeRunStatus(run.timed_out(), /*any_out_of_memory=*/false,
                                  limits.cancel));
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace clftj
