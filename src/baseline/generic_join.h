#ifndef CLFTJ_BASELINE_GENERIC_JOIN_H_
#define CLFTJ_BASELINE_GENERIC_JOIN_H_

#include <vector>

#include "engine/engine.h"
#include "query/query.h"

namespace clftj {

/// Hash-based GenericJoin (Ngo, Ré, Rudra — "Skew strikes back"): a
/// worst-case-optimal join that assigns variables in order; at each step it
/// picks the participating atom with the fewest extensions of the current
/// binding and verifies each candidate against the other atoms with hash
/// probes. Algorithmically the same family as LFTJ but with hash indexes in
/// place of sorted tries — this is the SYS1 stand-in: a WCOJ engine with
/// different constant factors and memory behaviour.
class GenericJoin : public JoinEngine {
 public:
  struct Options {
    /// Variable order; empty means the query's natural order.
    std::vector<VarId> order;
  };

  GenericJoin() = default;
  explicit GenericJoin(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "GenericJoin"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;

 private:
  Options options_;
};

}  // namespace clftj

#endif  // CLFTJ_BASELINE_GENERIC_JOIN_H_
