#ifndef CLFTJ_SERVER_SERVER_H_
#define CLFTJ_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/service.h"

namespace clftj {

/// Line-protocol frontend over QueryService on a local (AF_UNIX) stream
/// socket. One connection handler thread per client; requests on a
/// connection are served in order, each answered with TUPLE*/OK|ERR lines
/// (see server/protocol.h). The kRequestBytes fault site corrupts request
/// lines *after* framing and *before* parsing, so chaos runs exercise the
/// full malformed-input path: a corrupted request must come back as a
/// typed BAD-QUERY error, never crash the server or poison the stream.
class QueryServer {
 public:
  /// `service` is borrowed and must outlive the server.
  explicit QueryServer(QueryService* service);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds and listens on `socket_path` (unlinking any stale socket) and
  /// starts the accept loop. Returns false with *error set on failure.
  /// AF_UNIX paths are limited to ~100 bytes — keep them short.
  bool Start(const std::string& socket_path, std::string* error);

  /// Stops accepting, closes live connections and joins all threads.
  /// Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  QueryService* service_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  std::mutex mu_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
  std::thread accept_thread_;
};

}  // namespace clftj

#endif  // CLFTJ_SERVER_SERVER_H_
