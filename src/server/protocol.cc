#include "server/protocol.h"

#include <cstdlib>
#include <sstream>

namespace clftj {

namespace {

bool ParseUint(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* tail = nullptr;
  const std::uint64_t value = std::strtoull(text.c_str(), &tail, 10);
  if (tail == nullptr || *tail != '\0') return false;
  *out = value;
  return true;
}

bool Fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

// Splits "key=value" at the first '='.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

// DELTA tuple lists: values ','-separated within a tuple, tuples
// ';'-separated ("1,2;3,4"). Empty lists format to "" (the token is
// omitted entirely).
std::string FormatTuples(const std::vector<Tuple>& tuples) {
  std::ostringstream out;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out << ';';
    for (std::size_t j = 0; j < tuples[i].size(); ++j) {
      if (j > 0) out << ',';
      out << tuples[i][j];
    }
  }
  return out.str();
}

bool ParseTuples(const std::string& text, std::vector<Tuple>* out) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(';', start);
    if (end == std::string::npos) end = text.size();
    Tuple tuple;
    std::size_t vstart = start;
    for (;;) {
      std::size_t vend = text.find(',', vstart);
      if (vend == std::string::npos || vend > end) vend = end;
      // Empty fields are corruption: "1,,2", "1,", ",1", ";;" and "".
      if (vend == vstart) return false;
      std::uint64_t value = 0;
      if (!ParseUint(text.substr(vstart, vend - vstart), &value)) return false;
      tuple.push_back(static_cast<Value>(value));
      if (vend == end) break;
      vstart = vend + 1;
      if (vstart == end) return false;  // trailing ','
    }
    out->push_back(std::move(tuple));
    if (end == text.size()) break;
    start = end + 1;
  }
  return true;
}

}  // namespace

std::string FormatRequest(const QueryRequest& request) {
  std::ostringstream out;
  if (request.kind == "delta") {
    out << "DELTA relation=" << request.delta.relation;
    if (!request.delta.adds.empty()) {
      out << " add=" << FormatTuples(request.delta.adds);
    }
    if (!request.delta.deletes.empty()) {
      out << " del=" << FormatTuples(request.delta.deletes);
    }
    return out.str();
  }
  out << "RUN mode=" << request.mode;
  if (!request.engine.empty()) out << " engine=" << request.engine;
  out << " timeout_ms=" << request.timeout_ms
      << " max_tuples=" << request.max_tuples << " q=" << request.query_text;
  return out.str();
}

bool ParseRequest(const std::string& line, QueryRequest* request,
                  std::string* error) {
  *request = QueryRequest();
  std::size_t pos = line.find(' ');
  const std::string verb = line.substr(0, pos);
  if (verb == "DELTA") {
    request->kind = "delta";
    while (pos != std::string::npos) {
      const std::size_t start = pos + 1;
      if (start >= line.size()) break;
      pos = line.find(' ', start);
      const std::string token = line.substr(
          start, pos == std::string::npos ? std::string::npos : pos - start);
      if (token.empty()) continue;
      std::string key, value;
      if (!SplitKeyValue(token, &key, &value)) {
        return Fail(error, "malformed request token: " + token);
      }
      if (key == "relation") {
        request->delta.relation = value;
      } else if (key == "add") {
        if (!ParseTuples(value, &request->delta.adds)) {
          return Fail(error, "bad add tuples: " + value);
        }
      } else if (key == "del") {
        if (!ParseTuples(value, &request->delta.deletes)) {
          return Fail(error, "bad del tuples: " + value);
        }
      } else {
        return Fail(error, "unknown request key: " + key);
      }
    }
    if (request->delta.relation.empty()) {
      return Fail(error, "DELTA has no relation=");
    }
    return true;
  }
  if (verb != "RUN") {
    return Fail(error, "expected RUN or DELTA, got: " + verb);
  }
  bool saw_query = false;
  while (pos != std::string::npos && !saw_query) {
    const std::size_t start = pos + 1;
    if (start >= line.size()) break;
    // q= swallows the rest of the line: queries contain spaces.
    if (line.compare(start, 2, "q=") == 0) {
      request->query_text = line.substr(start + 2);
      saw_query = true;
      break;
    }
    pos = line.find(' ', start);
    const std::string token = line.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start);
    if (token.empty()) continue;
    std::string key, value;
    if (!SplitKeyValue(token, &key, &value)) {
      return Fail(error, "malformed request token: " + token);
    }
    if (key == "mode") {
      request->mode = value;
    } else if (key == "engine") {
      request->engine = value;
    } else if (key == "timeout_ms") {
      if (!ParseUint(value, &request->timeout_ms)) {
        return Fail(error, "bad timeout_ms: " + value);
      }
    } else if (key == "max_tuples") {
      if (!ParseUint(value, &request->max_tuples)) {
        return Fail(error, "bad max_tuples: " + value);
      }
    } else {
      return Fail(error, "unknown request key: " + key);
    }
  }
  if (!saw_query || request->query_text.empty()) {
    return Fail(error, "request has no q=<query>");
  }
  return true;
}

std::vector<std::string> FormatResponse(const QueryResponse& response) {
  std::vector<std::string> lines;
  lines.reserve(response.tuples.size() + 1);
  for (const Tuple& tuple : response.tuples) {
    std::ostringstream out;
    out << "TUPLE";
    for (const Value v : tuple) out << ' ' << v;
    lines.push_back(out.str());
  }
  std::ostringstream out;
  if (response.status == RunStatus::kOk) {
    out << "OK count=" << response.count << " seconds=" << response.seconds
        << " stats=" << response.stats.ToWire();
  } else {
    out << "ERR status=" << RunStatusName(response.status)
        << " retry_after_ms=" << response.retry_after_ms
        << " msg=" << response.message;
  }
  lines.push_back(out.str());
  return lines;
}

bool IsTerminalResponseLine(const std::string& line) {
  return line.compare(0, 3, "OK ") == 0 || line == "OK" ||
         line.compare(0, 4, "ERR ") == 0;
}

bool ParseResponse(const std::vector<std::string>& lines,
                   QueryResponse* response, std::string* error) {
  *response = QueryResponse();
  if (lines.empty()) return Fail(error, "empty response");
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.compare(0, 6, "TUPLE ") != 0 && line != "TUPLE") {
      return Fail(error, "expected TUPLE line, got: " + line);
    }
    Tuple tuple;
    std::istringstream in(line.substr(5));
    Value v;
    while (in >> v) tuple.push_back(v);
    // The loop ends either at end-of-line (eof) or on a token that is not
    // a Value — the latter is corruption, not a shorter tuple.
    if (!in.eof()) {
      return Fail(error, "non-numeric TUPLE payload: " + line);
    }
    response->tuples.push_back(std::move(tuple));
  }
  const std::string& last = lines.back();
  if (!IsTerminalResponseLine(last)) {
    return Fail(error, "response not terminated by OK/ERR: " + last);
  }
  // Status starts kOk; an ERR line must carry an explicit status= token
  // (checked below), so a truncated ERR cannot masquerade as success.
  const bool ok = last[0] == 'O';
  std::size_t pos = last.find(' ');
  while (pos != std::string::npos) {
    const std::size_t start = pos + 1;
    if (start >= last.size()) break;
    // msg= swallows the rest of the line, mirroring q= on requests.
    if (last.compare(start, 4, "msg=") == 0) {
      response->message = last.substr(start + 4);
      break;
    }
    pos = last.find(' ', start);
    const std::string token = last.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start);
    if (token.empty()) continue;
    std::string key, value;
    if (!SplitKeyValue(token, &key, &value)) {
      return Fail(error, "malformed response token: " + token);
    }
    if (key == "count") {
      if (!ParseUint(value, &response->count)) {
        return Fail(error, "bad count: " + value);
      }
    } else if (key == "seconds") {
      char* tail = nullptr;
      response->seconds = std::strtod(value.c_str(), &tail);
      if (tail == nullptr || *tail != '\0') {
        return Fail(error, "bad seconds: " + value);
      }
    } else if (key == "status") {
      if (!ParseRunStatus(value, &response->status)) {
        return Fail(error, "unknown status: " + value);
      }
    } else if (key == "retry_after_ms") {
      if (!ParseUint(value, &response->retry_after_ms)) {
        return Fail(error, "bad retry_after_ms: " + value);
      }
    } else if (key == "stats") {
      // Optional (older peers omit it); absent leaves default ExecStats.
      if (!ExecStats::FromWire(value, &response->stats)) {
        return Fail(error, "bad stats: " + value);
      }
    } else {
      return Fail(error, "unknown response key: " + key);
    }
  }
  if (ok && response->status != RunStatus::kOk) {
    return Fail(error, "OK line with non-OK status");
  }
  if (!ok && response->status == RunStatus::kOk) {
    return Fail(error, "ERR line with no status=");
  }
  return true;
}

}  // namespace clftj
