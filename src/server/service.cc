#include "server/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <new>
#include <optional>
#include <utility>

#include "query/parser.h"
#include "query/shape.h"
#include "util/fault.h"
#include "util/timer.h"

namespace clftj {

namespace {

QueryResponse MakeError(RunStatus status, std::string message,
                        std::uint64_t retry_after_ms = 0) {
  QueryResponse response;
  response.status = status;
  response.message = std::move(message);
  response.retry_after_ms = retry_after_ms;
  return response;
}

}  // namespace

QueryService::QueryService(const Database& db, ServiceOptions options)
    : QueryService(db, nullptr, std::move(options)) {}

QueryService::QueryService(Database* db, ServiceOptions options)
    : QueryService(*db, db, std::move(options)) {}

QueryService::QueryService(const Database& db, Database* mutable_db,
                           ServiceOptions options)
    : db_(db), mutable_db_(mutable_db), options_(std::move(options)) {
  const int workers = std::max(1, options_.workers);
  if (options_.reuse.enabled) {
    // Stripe the persistent caches for the worst-case prober count: every
    // worker may run a CLFTJ-P request whose shards all touch the shape's
    // shared table concurrently.
    const int probers =
        workers * std::max(1, options_.engine_options.threads);
    reuse_ = std::make_unique<CrossQueryReuse>(
        options_.reuse, PlannerOptions{}, options_.engine_options.cache,
        probers);
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(/*drain=*/true); }

void QueryService::ResolveLimits(const QueryRequest& request,
                                 RunLimits* limits,
                                 std::uint64_t* charge) const {
  const std::uint64_t timeout_ms =
      request.timeout_ms > 0 ? request.timeout_ms : options_.default_timeout_ms;
  const std::uint64_t max_tuples =
      request.max_tuples > 0 ? request.max_tuples : options_.default_max_tuples;
  limits->timeout_seconds = static_cast<double>(timeout_ms) / 1000.0;
  limits->max_intermediate_tuples = max_tuples;
  if (options_.aggregate_budget_bytes == 0) {
    *charge = 0;
  } else if (max_tuples == 0) {
    // Unlimited materialization: charge the whole budget, so unlimited
    // requests run one at a time instead of overcommitting together.
    *charge = options_.aggregate_budget_bytes;
  } else {
    *charge = max_tuples * sizeof(std::uint64_t);
  }
}

std::future<QueryResponse> QueryService::Submit(const QueryRequest& request) {
  std::promise<QueryResponse> reject;
  std::future<QueryResponse> reject_future = reject.get_future();

  // Parse + validate before taking a queue slot: a malformed request is a
  // client error, not load, and must not push real work out of the queue.
  auto pending = std::make_shared<Pending>();
  if (request.kind == "delta") {
    if (mutable_db_ == nullptr) {
      reject.set_value(MakeError(
          RunStatus::kBadQuery,
          "read-only service: delta requests need a mutable database"));
      return reject_future;
    }
    // Admission-time validation mirrors Database::ApplyDelta's checks (the
    // relation may not disappear later: deltas never add or drop
    // relations). Reads under the shared lock so a concurrent delta worker
    // cannot tear the relation mid-check.
    {
      std::shared_lock<std::shared_mutex> data_lock(data_mu_);
      const Relation* rel = db_.Find(request.delta.relation);
      if (rel == nullptr) {
        reject.set_value(MakeError(
            RunStatus::kBadQuery,
            "unknown relation: " + request.delta.relation));
        return reject_future;
      }
      const int arity = rel->arity();
      for (const auto* tuples : {&request.delta.adds, &request.delta.deletes}) {
        for (const Tuple& t : *tuples) {
          if (static_cast<int>(t.size()) != arity) {
            reject.set_value(MakeError(
                RunStatus::kBadQuery,
                "arity mismatch for relation " + request.delta.relation));
            return reject_future;
          }
        }
      }
    }
    pending->request = request;
    pending->limits.cancel = &pending->cancel;
  } else if (request.kind == "run") {
    std::string error;
    auto query = ParseQuery(request.query_text, &error);
    if (!query.has_value()) {
      reject.set_value(MakeError(RunStatus::kBadQuery, error));
      return reject_future;
    }
    {
      std::shared_lock<std::shared_mutex> data_lock(data_mu_);
      const RunStatus valid = ValidateQueryForDatabase(*query, db_, &error);
      if (valid != RunStatus::kOk) {
        reject.set_value(MakeError(valid, error));
        return reject_future;
      }
    }
    if (request.mode != "count" && request.mode != "eval") {
      reject.set_value(
          MakeError(RunStatus::kBadQuery, "unknown mode: " + request.mode));
      return reject_future;
    }
    const std::string engine_name =
        request.engine.empty() ? options_.engine : request.engine;
    if (!IsKnownEngine(engine_name)) {
      reject.set_value(
          MakeError(RunStatus::kBadQuery, "unknown engine: " + engine_name));
      return reject_future;
    }
    pending->query = std::move(*query);
    pending->request = request;
    pending->request.engine = engine_name;
    ResolveLimits(request, &pending->limits, &pending->charge);
    pending->limits.cancel = &pending->cancel;
    // Batch grouping key. Only CLFTJ-family requests batch: the shared work
    // (plan resolution, substrate acquisition, persistent-cache warming) all
    // lives behind the reuse layer, so without it batching has nothing to
    // share and dispatch stays FIFO.
    if (options_.batch.enabled && options_.batch.max_size > 1 &&
        options_.reuse.enabled &&
        (engine_name == "CLFTJ" || engine_name == "CLFTJ-P")) {
      pending->shape_key = CanonicalShapeKey(pending->query);
    }
  } else {
    reject.set_value(
        MakeError(RunStatus::kBadQuery, "unknown kind: " + request.kind));
    return reject_future;
  }
  std::future<QueryResponse> future = pending->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending->promise.set_value(MakeError(RunStatus::kShed,
                                           "service is shutting down",
                                           options_.retry_after_ms));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      pending->promise.set_value(MakeError(
          RunStatus::kShed, "request queue is full", options_.retry_after_ms));
      return future;
    }
    if (options_.aggregate_budget_bytes > 0 &&
        charged_bytes_ + pending->charge > options_.aggregate_budget_bytes &&
        charged_bytes_ > 0) {
      // First request always admits (a charge can exceed the whole budget
      // by itself — see ResolveLimits); beyond that the sum is the bound.
      pending->promise.set_value(MakeError(RunStatus::kShed,
                                           "aggregate byte budget exceeded",
                                           options_.retry_after_ms));
      return future;
    }
    charged_bytes_ += pending->charge;
    queue_.push_back(std::move(pending));
    if (!collecting_.empty()) {
      // A leader is holding a window open on this condition variable; a
      // single token could wake an idle worker instead, which would leave
      // the arrival undrained until the window times out.
      work_ready_.notify_all();
    } else {
      work_ready_.notify_one();
    }
    return future;
  }
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  return Submit(request).get();
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::vector<std::shared_ptr<Pending>> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      std::deque<std::shared_ptr<Pending>>::iterator take;
      for (;;) {
        work_ready_.wait(lock, [this] {
          return FindPoppableLocked() != queue_.end() ||
                 (stopping_ && queue_.empty());
        });
        take = FindPoppableLocked();
        if (take != queue_.end()) break;
        if (queue_.empty()) return;  // stopping and drained
      }
      std::shared_ptr<Pending> head = std::move(*take);
      queue_.erase(take);
      in_flight_.push_back(head);
      batch.push_back(std::move(head));
      // Pop + collect happen in one critical section: sibling workers can
      // never race the leader to the head's matches and split one batch
      // into several mini-batches.
      if (!batch.front()->shape_key.empty()) CollectBatchLocked(&batch, lock);
    }
    if (batch.size() > 1) {
      RunBatch(batch);
      continue;
    }
    const std::shared_ptr<Pending> pending = std::move(batch.front());

    // Injected slow worker: stalls here build real queue pressure, which is
    // what drives the admission-control chaos scenarios.
    fault::MaybeDelay(fault::Site::kWorkerDelay);

    QueryResponse response;
    if (pending->cancel.Tripped()) {
      response = MakeError(RunStatus::kCancelled,
                           "cancelled while queued");
    } else {
      response = RunRequest(*pending);
    }
    // Release the charge *before* resolving the future: a caller that
    // observes its response must also observe the budget it held as freed
    // (ChargedBytes() settling is part of the response contract).
    {
      std::lock_guard<std::mutex> lock(mu_);
      charged_bytes_ -= pending->charge;
      in_flight_.erase(
          std::find(in_flight_.begin(), in_flight_.end(), pending));
    }
    pending->promise.set_value(std::move(response));
  }
}

std::deque<std::shared_ptr<QueryService::Pending>>::iterator
QueryService::FindPoppableLocked() {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const Pending& p = **it;
    if (p.request.kind == "delta") {
      // Two-sided barrier: the delta runs only from the true head (so it
      // observes every earlier run's admission), and nothing behind it is
      // popped around it (so later runs observe the post-delta database).
      return it == queue_.begin() ? it : queue_.end();
    }
    if (p.shape_key.empty() ||
        std::find(collecting_.begin(), collecting_.end(),
                  p.shape_key + '\x1f' + p.request.mode + '\x1f' +
                      p.request.engine) == collecting_.end()) {
      return it;
    }
    // Claimed by a collecting leader: leave it for that batch.
  }
  return queue_.end();
}

void QueryService::CollectBatchLocked(
    std::vector<std::shared_ptr<Pending>>* batch,
    std::unique_lock<std::mutex>& lock) {
  const std::string shape_key = batch->front()->shape_key;
  const std::string mode = batch->front()->request.mode;
  const std::string engine = batch->front()->request.engine;
  const std::size_t max_size =
      static_cast<std::size_t>(std::max(1, options_.batch.max_size));
  const auto take_matches = [&] {
    for (auto it = queue_.begin();
         it != queue_.end() && batch->size() < max_size;) {
      const Pending& p = **it;
      // Delta barrier: a member admitted after a queued delta must observe
      // the post-delta database, so it can never share a run with members
      // admitted before it. Matches beyond the first delta stay queued.
      if (p.request.kind == "delta") break;
      if (p.shape_key == shape_key && p.request.mode == mode &&
          p.request.engine == engine) {
        in_flight_.push_back(*it);
        batch->push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };
  take_matches();
  if (options_.batch.window_ms == 0) return;
  // Claim the key for the duration of the window: sibling workers skip
  // matching arrivals (FindPoppableLocked) so they join this batch instead
  // of seeding rival mini-batches.
  const std::string claim = shape_key + '\x1f' + mode + '\x1f' + engine;
  collecting_.push_back(claim);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.batch.window_ms);
  while (batch->size() < max_size && !stopping_) {
    if (work_ready_.wait_until(lock, deadline) == std::cv_status::timeout) {
      take_matches();
      break;
    }
    take_matches();
    // The leader may have consumed a wakeup meant for a sibling worker;
    // pass the token along so non-matching work is not starved while the
    // window is open.
    if (!queue_.empty()) work_ready_.notify_one();
  }
  collecting_.erase(std::find(collecting_.begin(), collecting_.end(), claim));
  // Matches beyond max_size (or behind a delta) just became poppable again.
  if (!queue_.empty()) work_ready_.notify_all();
}

void QueryService::RunBatch(std::vector<std::shared_ptr<Pending>>& batch) {
  // One slow-worker fire per member: the injected-fault site observes the
  // same number of dispatches FIFO would have produced.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    fault::MaybeDelay(fault::Site::kWorkerDelay);
  }
  const std::size_t n = batch.size();
  std::vector<QueryResponse> responses(n);
  std::vector<std::size_t> active;
  active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (batch[i]->cancel.Tripped()) {
      responses[i] = MakeError(RunStatus::kCancelled, "cancelled while queued");
    } else {
      active.push_back(i);
    }
  }
  if (!active.empty()) {
    // One shared data-lock hold for the whole batch: every member observes
    // the same database state, exactly as if it had run alone between the
    // same two deltas.
    std::shared_lock<std::shared_mutex> data_lock(data_mu_, std::defer_lock);
    if (mutable_db_ != nullptr) data_lock.lock();
    Pending& head = *batch[active.front()];
    ExecStats reuse_stats;
    CrossQueryReuse::Prepared prepared;
    std::optional<SubstrateRegistry::PinScope> pin;
    bool prepare_ok = true;
    QueryResponse prepare_error;
    try {
      if (reuse_ != nullptr) {
        // Pin the registry for the whole batch so the byte budget cannot
        // evict a view between the shared Prepare and the last member's
        // run; the deferred sweep runs when the pin drops.
        pin.emplace(reuse_->registry());
        prepared = reuse_->Prepare(head.query, db_, &reuse_stats);
      }
    } catch (const std::exception& e) {
      prepare_ok = false;
      prepare_error = MakeError(RunStatus::kInternal, e.what());
    }
    if (!prepare_ok) {
      for (const std::size_t i : active) responses[i] = prepare_error;
    } else {
      // Sub-cohorts: members with identical resolved limits share one
      // engine run (same shape key means identical VarId semantics, so the
      // response is member-interchangeable); a member with stricter limits
      // must be able to trip them itself, so it runs separately.
      std::vector<std::vector<std::size_t>> groups;
      for (const std::size_t i : active) {
        const RunLimits& limits = batch[i]->limits;
        bool placed = false;
        for (std::vector<std::size_t>& group : groups) {
          const RunLimits& first = batch[group.front()]->limits;
          if (first.timeout_seconds == limits.timeout_seconds &&
              first.max_intermediate_tuples == limits.max_intermediate_tuples) {
            group.push_back(i);
            placed = true;
            break;
          }
        }
        if (!placed) groups.push_back({i});
      }
      for (const std::vector<std::size_t>& group : groups) {
        Pending& first = *batch[group.front()];
        try {
          EngineOptions engine_options = options_.engine_options;
          engine_options.prepared_plan = prepared.plan;
          engine_options.prepared_substrate = prepared.substrate;
          if (prepared.caches != nullptr) {
            if (first.request.mode == "count") {
              engine_options.shared_count_cache = &prepared.caches->count;
            } else {
              engine_options.shared_eval_cache = &prepared.caches->eval;
            }
          }
          std::string engine_name = first.request.engine;
          if (options_.batch.parallelize_shared && group.size() >= 2 &&
              engine_name == "CLFTJ" && first.request.mode == "count") {
            // Fan the shared run across shards: N requests' worth of work
            // funneled into one run earns the parallel engine. Counts are
            // bit-identical at any thread count (the PR 2 guarantee); eval
            // is never escalated because the sharded tuple stream is only
            // interleaving-equivalent, not stream-identical.
            engine_name = "CLFTJ-P";
            engine_options.threads = std::max(
                1, std::min(static_cast<int>(group.size()),
                            std::max(1, options_.workers)));
          }
          const std::unique_ptr<JoinEngine> engine =
              MakeEngine(engine_name, engine_options);
          QueryResponse shared;
          RunResult result;
          if (first.request.mode == "count") {
            result = engine->Count(first.query, db_, first.limits);
          } else {
            result = engine->Evaluate(
                first.query, db_,
                [&shared](const Tuple& t) { shared.tuples.push_back(t); },
                first.limits);
          }
          shared.status = result.status;
          shared.message = result.message;
          shared.count = result.count;
          shared.seconds = result.seconds;
          shared.stats = result.stats;
          if (shared.status != RunStatus::kOk) shared.tuples.clear();
          if (group.size() >= 2) shared.stats.batch_shared_execs = 1;
          for (const std::size_t i : group) responses[i] = shared;
        } catch (const std::exception& e) {
          for (const std::size_t i : group) {
            responses[i] = MakeError(RunStatus::kInternal, e.what());
          }
        }
      }
    }
    // Reuse counters ride on the first active member only: the batch did
    // one Prepare, so batch-total counters must read as one request's.
    responses[active.front()].stats.Merge(reuse_stats);
  }
  for (std::size_t i = 0; i < n; ++i) {
    responses[i].stats.batch_size = static_cast<std::uint64_t>(n);
  }
  // Same ordering contract as the single-request path: charges released
  // and in-flight entries retired before any promise resolves.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::shared_ptr<Pending>& member : batch) {
      charged_bytes_ -= member->charge;
      in_flight_.erase(
          std::find(in_flight_.begin(), in_flight_.end(), member));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    batch[i]->promise.set_value(std::move(responses[i]));
  }
}

QueryResponse QueryService::RunRequest(Pending& pending) {
  if (pending.request.kind == "delta") return RunDelta(pending);
  // A read-write service interleaves queries and deltas: queries share the
  // data lock, each delta takes it exclusively. A read-only service has no
  // writers, so the lock is skipped entirely (same hot path as before).
  std::shared_lock<std::shared_mutex> data_lock(data_mu_, std::defer_lock);
  if (mutable_db_ != nullptr) data_lock.lock();
  QueryResponse response;
  try {
    EngineOptions engine_options = options_.engine_options;
    ExecStats reuse_stats;
    // Must outlive the engine run: the engine borrows the striped caches
    // by raw pointer and the plan/substrate by shared_ptr.
    CrossQueryReuse::Prepared prepared;
    if (reuse_ != nullptr && (pending.request.engine == "CLFTJ" ||
                              pending.request.engine == "CLFTJ-P")) {
      // Prepare shares a throw path with the run itself (a cold trie build
      // can fault); inside the try so it maps to kInternal like any other
      // engine-level failure.
      prepared = reuse_->Prepare(pending.query, db_, &reuse_stats);
      engine_options.prepared_plan = prepared.plan;
      engine_options.prepared_substrate = prepared.substrate;
      if (prepared.caches != nullptr) {
        if (pending.request.mode == "count") {
          engine_options.shared_count_cache = &prepared.caches->count;
        } else {
          engine_options.shared_eval_cache = &prepared.caches->eval;
        }
      }
    }
    const std::unique_ptr<JoinEngine> engine =
        MakeEngine(pending.request.engine, engine_options);
    RunResult result;
    if (pending.request.mode == "count") {
      result = engine->Count(pending.query, db_, pending.limits);
    } else {
      result = engine->Evaluate(
          pending.query, db_,
          [&response](const Tuple& t) { response.tuples.push_back(t); },
          pending.limits);
    }
    response.status = result.status;
    response.message = result.message;
    response.count = result.count;
    response.seconds = result.seconds;
    response.stats = result.stats;
    response.stats.Merge(reuse_stats);
    if (response.status != RunStatus::kOk) response.tuples.clear();
  } catch (const std::bad_alloc& e) {
    // Real or injected allocation failure mid-run: the request dies, the
    // worker (and every other request) survives. Transient, so retryable.
    response = MakeError(RunStatus::kInternal, e.what());
    response.tuples.clear();
  } catch (const std::exception& e) {
    response = MakeError(RunStatus::kInternal, e.what());
    response.tuples.clear();
  }
  return response;
}

QueryResponse QueryService::RunDelta(Pending& pending) {
  QueryResponse response;
  Timer timer;
  // Exclusive over the query workers' shared lock: the batch applies as one
  // atomic visibility step — no query observes a half-applied delta.
  std::unique_lock<std::shared_mutex> data_lock(data_mu_);
  std::string error;
  DeltaResult result;
  if (!mutable_db_->ApplyDelta(pending.request.delta, &error, &result)) {
    return MakeError(RunStatus::kBadQuery, std::move(error));
  }
  response.count = result.applied_adds + result.applied_deletes;
  response.seconds = timer.Seconds();
  return response;
}

void QueryService::Shutdown(bool drain) {
  std::deque<std::shared_ptr<Pending>> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!drain) {
      abandoned.swap(queue_);
      for (const auto& pending : in_flight_) {
        pending->cancel.Trip(RunStatus::kCancelled);
      }
    }
  }
  for (const auto& pending : abandoned) {
    pending->cancel.Trip(RunStatus::kCancelled);
    std::lock_guard<std::mutex> lock(mu_);
    charged_bytes_ -= pending->charge;
    pending->promise.set_value(
        MakeError(RunStatus::kCancelled, "cancelled at shutdown"));
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t QueryService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t QueryService::ChargedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_bytes_;
}

}  // namespace clftj
