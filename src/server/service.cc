#include "server/service.h"

#include <algorithm>
#include <exception>
#include <new>
#include <utility>

#include "query/parser.h"
#include "util/fault.h"
#include "util/timer.h"

namespace clftj {

namespace {

QueryResponse MakeError(RunStatus status, std::string message,
                        std::uint64_t retry_after_ms = 0) {
  QueryResponse response;
  response.status = status;
  response.message = std::move(message);
  response.retry_after_ms = retry_after_ms;
  return response;
}

}  // namespace

QueryService::QueryService(const Database& db, ServiceOptions options)
    : QueryService(db, nullptr, std::move(options)) {}

QueryService::QueryService(Database* db, ServiceOptions options)
    : QueryService(*db, db, std::move(options)) {}

QueryService::QueryService(const Database& db, Database* mutable_db,
                           ServiceOptions options)
    : db_(db), mutable_db_(mutable_db), options_(std::move(options)) {
  const int workers = std::max(1, options_.workers);
  if (options_.reuse.enabled) {
    // Stripe the persistent caches for the worst-case prober count: every
    // worker may run a CLFTJ-P request whose shards all touch the shape's
    // shared table concurrently.
    const int probers =
        workers * std::max(1, options_.engine_options.threads);
    reuse_ = std::make_unique<CrossQueryReuse>(
        options_.reuse, PlannerOptions{}, options_.engine_options.cache,
        probers);
  }
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(/*drain=*/true); }

void QueryService::ResolveLimits(const QueryRequest& request,
                                 RunLimits* limits,
                                 std::uint64_t* charge) const {
  const std::uint64_t timeout_ms =
      request.timeout_ms > 0 ? request.timeout_ms : options_.default_timeout_ms;
  const std::uint64_t max_tuples =
      request.max_tuples > 0 ? request.max_tuples : options_.default_max_tuples;
  limits->timeout_seconds = static_cast<double>(timeout_ms) / 1000.0;
  limits->max_intermediate_tuples = max_tuples;
  if (options_.aggregate_budget_bytes == 0) {
    *charge = 0;
  } else if (max_tuples == 0) {
    // Unlimited materialization: charge the whole budget, so unlimited
    // requests run one at a time instead of overcommitting together.
    *charge = options_.aggregate_budget_bytes;
  } else {
    *charge = max_tuples * sizeof(std::uint64_t);
  }
}

std::future<QueryResponse> QueryService::Submit(const QueryRequest& request) {
  std::promise<QueryResponse> reject;
  std::future<QueryResponse> reject_future = reject.get_future();

  // Parse + validate before taking a queue slot: a malformed request is a
  // client error, not load, and must not push real work out of the queue.
  auto pending = std::make_shared<Pending>();
  if (request.kind == "delta") {
    if (mutable_db_ == nullptr) {
      reject.set_value(MakeError(
          RunStatus::kBadQuery,
          "read-only service: delta requests need a mutable database"));
      return reject_future;
    }
    // Admission-time validation mirrors Database::ApplyDelta's checks (the
    // relation may not disappear later: deltas never add or drop
    // relations). Reads under the shared lock so a concurrent delta worker
    // cannot tear the relation mid-check.
    {
      std::shared_lock<std::shared_mutex> data_lock(data_mu_);
      const Relation* rel = db_.Find(request.delta.relation);
      if (rel == nullptr) {
        reject.set_value(MakeError(
            RunStatus::kBadQuery,
            "unknown relation: " + request.delta.relation));
        return reject_future;
      }
      const int arity = rel->arity();
      for (const auto* tuples : {&request.delta.adds, &request.delta.deletes}) {
        for (const Tuple& t : *tuples) {
          if (static_cast<int>(t.size()) != arity) {
            reject.set_value(MakeError(
                RunStatus::kBadQuery,
                "arity mismatch for relation " + request.delta.relation));
            return reject_future;
          }
        }
      }
    }
    pending->request = request;
    pending->limits.cancel = &pending->cancel;
  } else if (request.kind == "run") {
    std::string error;
    auto query = ParseQuery(request.query_text, &error);
    if (!query.has_value()) {
      reject.set_value(MakeError(RunStatus::kBadQuery, error));
      return reject_future;
    }
    {
      std::shared_lock<std::shared_mutex> data_lock(data_mu_);
      const RunStatus valid = ValidateQueryForDatabase(*query, db_, &error);
      if (valid != RunStatus::kOk) {
        reject.set_value(MakeError(valid, error));
        return reject_future;
      }
    }
    if (request.mode != "count" && request.mode != "eval") {
      reject.set_value(
          MakeError(RunStatus::kBadQuery, "unknown mode: " + request.mode));
      return reject_future;
    }
    const std::string engine_name =
        request.engine.empty() ? options_.engine : request.engine;
    if (!IsKnownEngine(engine_name)) {
      reject.set_value(
          MakeError(RunStatus::kBadQuery, "unknown engine: " + engine_name));
      return reject_future;
    }
    pending->query = std::move(*query);
    pending->request = request;
    pending->request.engine = engine_name;
    ResolveLimits(request, &pending->limits, &pending->charge);
    pending->limits.cancel = &pending->cancel;
  } else {
    reject.set_value(
        MakeError(RunStatus::kBadQuery, "unknown kind: " + request.kind));
    return reject_future;
  }
  std::future<QueryResponse> future = pending->promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      pending->promise.set_value(MakeError(RunStatus::kShed,
                                           "service is shutting down",
                                           options_.retry_after_ms));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      pending->promise.set_value(MakeError(
          RunStatus::kShed, "request queue is full", options_.retry_after_ms));
      return future;
    }
    if (options_.aggregate_budget_bytes > 0 &&
        charged_bytes_ + pending->charge > options_.aggregate_budget_bytes &&
        charged_bytes_ > 0) {
      // First request always admits (a charge can exceed the whole budget
      // by itself — see ResolveLimits); beyond that the sum is the bound.
      pending->promise.set_value(MakeError(RunStatus::kShed,
                                           "aggregate byte budget exceeded",
                                           options_.retry_after_ms));
      return future;
    }
    charged_bytes_ += pending->charge;
    queue_.push_back(std::move(pending));
  }
  work_ready_.notify_one();
  return future;
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  return Submit(request).get();
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Pending> pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      pending = std::move(queue_.front());
      queue_.pop_front();
      in_flight_.push_back(pending);
    }

    // Injected slow worker: stalls here build real queue pressure, which is
    // what drives the admission-control chaos scenarios.
    fault::MaybeDelay(fault::Site::kWorkerDelay);

    QueryResponse response;
    if (pending->cancel.Tripped()) {
      response = MakeError(RunStatus::kCancelled,
                           "cancelled while queued");
    } else {
      response = RunRequest(*pending);
    }
    // Release the charge *before* resolving the future: a caller that
    // observes its response must also observe the budget it held as freed
    // (ChargedBytes() settling is part of the response contract).
    {
      std::lock_guard<std::mutex> lock(mu_);
      charged_bytes_ -= pending->charge;
      in_flight_.erase(
          std::find(in_flight_.begin(), in_flight_.end(), pending));
    }
    pending->promise.set_value(std::move(response));
  }
}

QueryResponse QueryService::RunRequest(Pending& pending) {
  if (pending.request.kind == "delta") return RunDelta(pending);
  // A read-write service interleaves queries and deltas: queries share the
  // data lock, each delta takes it exclusively. A read-only service has no
  // writers, so the lock is skipped entirely (same hot path as before).
  std::shared_lock<std::shared_mutex> data_lock(data_mu_, std::defer_lock);
  if (mutable_db_ != nullptr) data_lock.lock();
  QueryResponse response;
  try {
    EngineOptions engine_options = options_.engine_options;
    ExecStats reuse_stats;
    // Must outlive the engine run: the engine borrows the striped caches
    // by raw pointer and the plan/substrate by shared_ptr.
    CrossQueryReuse::Prepared prepared;
    if (reuse_ != nullptr && (pending.request.engine == "CLFTJ" ||
                              pending.request.engine == "CLFTJ-P")) {
      // Prepare shares a throw path with the run itself (a cold trie build
      // can fault); inside the try so it maps to kInternal like any other
      // engine-level failure.
      prepared = reuse_->Prepare(pending.query, db_, &reuse_stats);
      engine_options.prepared_plan = prepared.plan;
      engine_options.prepared_substrate = prepared.substrate;
      if (prepared.caches != nullptr) {
        if (pending.request.mode == "count") {
          engine_options.shared_count_cache = &prepared.caches->count;
        } else {
          engine_options.shared_eval_cache = &prepared.caches->eval;
        }
      }
    }
    const std::unique_ptr<JoinEngine> engine =
        MakeEngine(pending.request.engine, engine_options);
    RunResult result;
    if (pending.request.mode == "count") {
      result = engine->Count(pending.query, db_, pending.limits);
    } else {
      result = engine->Evaluate(
          pending.query, db_,
          [&response](const Tuple& t) { response.tuples.push_back(t); },
          pending.limits);
    }
    response.status = result.status;
    response.message = result.message;
    response.count = result.count;
    response.seconds = result.seconds;
    response.stats = result.stats;
    response.stats.Merge(reuse_stats);
    if (response.status != RunStatus::kOk) response.tuples.clear();
  } catch (const std::bad_alloc& e) {
    // Real or injected allocation failure mid-run: the request dies, the
    // worker (and every other request) survives. Transient, so retryable.
    response = MakeError(RunStatus::kInternal, e.what());
    response.tuples.clear();
  } catch (const std::exception& e) {
    response = MakeError(RunStatus::kInternal, e.what());
    response.tuples.clear();
  }
  return response;
}

QueryResponse QueryService::RunDelta(Pending& pending) {
  QueryResponse response;
  Timer timer;
  // Exclusive over the query workers' shared lock: the batch applies as one
  // atomic visibility step — no query observes a half-applied delta.
  std::unique_lock<std::shared_mutex> data_lock(data_mu_);
  std::string error;
  DeltaResult result;
  if (!mutable_db_->ApplyDelta(pending.request.delta, &error, &result)) {
    return MakeError(RunStatus::kBadQuery, std::move(error));
  }
  response.count = result.applied_adds + result.applied_deletes;
  response.seconds = timer.Seconds();
  return response;
}

void QueryService::Shutdown(bool drain) {
  std::deque<std::shared_ptr<Pending>> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!drain) {
      abandoned.swap(queue_);
      for (const auto& pending : in_flight_) {
        pending->cancel.Trip(RunStatus::kCancelled);
      }
    }
  }
  for (const auto& pending : abandoned) {
    pending->cancel.Trip(RunStatus::kCancelled);
    std::lock_guard<std::mutex> lock(mu_);
    charged_bytes_ -= pending->charge;
    pending->promise.set_value(
        MakeError(RunStatus::kCancelled, "cancelled at shutdown"));
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t QueryService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::uint64_t QueryService::ChargedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_bytes_;
}

}  // namespace clftj
