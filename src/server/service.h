#ifndef CLFTJ_SERVER_SERVICE_H_
#define CLFTJ_SERVER_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/database.h"
#include "engine/engine.h"
#include "engine/reuse.h"

namespace clftj {

/// One request as the service admits it. Text is parsed and validated at
/// admission (a kBadQuery never occupies a queue slot); per-request limits
/// default to the service-wide ones.
struct QueryRequest {
  /// "run" (a query) or "delta" (a mutation applying `delta` to the
  /// service's database; requires the mutable-database constructor).
  std::string kind = "run";
  std::string query_text;
  /// "count" (return |q(D)|) or "eval" (return the result tuples too).
  std::string mode = "count";
  /// Engine name for MakeEngine; empty uses the service default.
  std::string engine;
  /// Wall-clock budget in milliseconds; 0 uses the service default.
  std::uint64_t timeout_ms = 0;
  /// Materialization budget in tuples; 0 uses the service default.
  std::uint64_t max_tuples = 0;
  /// The mutation of a kind == "delta" request (see docs/incremental.md).
  DeltaBatch delta;
};

/// Typed outcome of one request. Exactly one response per admitted
/// request — that is the service's core guarantee: whatever faults fire,
/// a request ends with a RunStatus, never a hang and never a crash.
struct QueryResponse {
  RunStatus status = RunStatus::kOk;
  std::string message;
  std::uint64_t count = 0;
  double seconds = 0.0;
  /// For kShed: how long the client should wait before retrying.
  std::uint64_t retry_after_ms = 0;
  /// Result tuples (eval mode only), indexed by VarId.
  std::vector<Tuple> tuples;
  ExecStats stats;
};

/// Batch-admission configuration (docs/serving.md "Batch admission"): how
/// the serving loop groups co-resident queue entries that share work.
struct BatchOptions {
  /// Master switch. Off = pure FIFO one-per-worker dispatch (the pre-batch
  /// behavior, bit for bit).
  bool enabled = true;
  /// Largest batch one leader may assemble (members, head included).
  int max_size = 32;
  /// How long a leader holds its batch open for late-arriving matches
  /// after draining the co-resident ones. 0 = no wait: only entries
  /// already queued when the head is popped can join. This bounds any
  /// member's extra latency: a batch executes at most window_ms after its
  /// head was dispatched.
  std::uint64_t window_ms = 0;
  /// Escalate a shared count-mode run with >= 2 identical members from
  /// CLFTJ to CLFTJ-P, fanning the batch across shards of one shared run
  /// context (counts are bit-identical at every thread count — the PR 2
  /// guarantee). Eval runs are never escalated: the sharded executor's
  /// tuple stream is only interleaving-identical, and a shared eval run
  /// must hand every member the same stream a FIFO run would have.
  bool parallelize_shared = true;
};

/// Serving-loop configuration.
struct ServiceOptions {
  /// Worker threads executing admitted requests.
  int workers = 2;
  /// Bounded request queue: admissions beyond this depth are shed.
  std::size_t queue_capacity = 64;
  /// Aggregate byte budget across queued + running requests (0 =
  /// unlimited). Each request is charged an estimate of its
  /// materialization footprint at admission (max_tuples * 8 bytes); a
  /// request with an unlimited tuple budget is charged the whole byte
  /// budget, serializing unlimited requests instead of letting several
  /// of them overcommit memory together.
  std::uint64_t aggregate_budget_bytes = 0;
  /// Default per-request limits when the request leaves them 0.
  std::uint64_t default_timeout_ms = 0;
  std::uint64_t default_max_tuples = 0;
  /// Default engine (MakeEngine name) and its construction knobs.
  std::string engine = "CLFTJ";
  EngineOptions engine_options;
  /// Retry-after hint attached to kShed responses.
  std::uint64_t retry_after_ms = 50;
  /// Cross-query reuse (plan cache, shared substrates, persistent striped
  /// caches) for CLFTJ-family requests. Applies per service instance; all
  /// layers default on and results are bit-identical either way.
  ReuseOptions reuse;
  /// Batch admission over the reuse layer (requires reuse.enabled — with
  /// reuse off there is no shared work to batch and dispatch stays FIFO).
  BatchOptions batch;
};

/// The resilient CLFTJ serving loop: a bounded queue in front of a worker
/// pool over MakeEngine, with per-request deadlines and byte budgets wired
/// through RunLimits/AbortFlag, load shedding at admission, and graceful
/// drain on shutdown. Every admitted request receives exactly one typed
/// QueryResponse; engine-level failures (including injected faults) are
/// caught and mapped onto the RunStatus taxonomy.
class QueryService {
 public:
  /// Read-only service: `db` is borrowed and must outlive the service.
  /// DELTA requests are rejected as kBadQuery. Workers start immediately.
  QueryService(const Database& db, ServiceOptions options);

  /// Read-write service over a mutable database: query requests run under
  /// a shared lock, "delta" requests apply their batch under an exclusive
  /// lock, so reads and writes interleave without tearing. The reuse layer
  /// survives deltas — plans and substrates are revalidated, subtree
  /// caches get targeted invalidation (docs/incremental.md).
  QueryService(Database* db, ServiceOptions options);

  /// Drains (finishes queued work) and joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits `request` and returns a future that resolves to its response.
  /// Admission failures (kBadQuery, kShed, shutdown) resolve the future
  /// immediately without occupying a queue slot.
  std::future<QueryResponse> Submit(const QueryRequest& request);

  /// Submit + wait: the synchronous serving path.
  QueryResponse Execute(const QueryRequest& request);

  /// Stops the service. With `drain` every queued request completes
  /// normally first; without it, queued and in-flight requests are
  /// cancelled (kCancelled) — in-flight runs halt within one deadline
  /// stride via their AbortFlag. Idempotent; new Submits after Shutdown
  /// are shed with a "shutting down" message.
  void Shutdown(bool drain = true);

  /// Queue depth right now (observability/tests).
  std::size_t QueueDepth() const;
  /// Aggregate bytes currently charged against the admission budget.
  std::uint64_t ChargedBytes() const;

 private:
  /// Shared body of the two public constructors.
  QueryService(const Database& db, Database* mutable_db,
               ServiceOptions options);

  struct Pending {
    Query query;
    QueryRequest request;
    RunLimits limits;
    std::uint64_t charge = 0;
    /// Canonical shape key for batch grouping; empty when the request is
    /// not batchable (delta, non-CLFTJ engine, reuse/batching off).
    std::string shape_key;
    AbortFlag cancel;
    std::promise<QueryResponse> promise;
  };

  void WorkerLoop();
  QueryResponse RunRequest(Pending& pending);
  QueryResponse RunDelta(Pending& pending);
  /// Resolves the effective limits for a request and its byte charge.
  void ResolveLimits(const QueryRequest& request, RunLimits* limits,
                     std::uint64_t* charge) const;

  /// Batch admission (docs/serving.md "Batch admission"). The worker that
  /// popped `head` is the batch *leader*: under mu_ it drains every
  /// queue-co-resident entry matching (shape, mode, engine) from the
  /// prefix before the first delta (the consistency barrier), optionally
  /// holding the window open for late arrivals, then executes the whole
  /// batch under one shared data-lock hold.
  void CollectBatchLocked(std::vector<std::shared_ptr<Pending>>* batch,
                          std::unique_lock<std::mutex>& lock);
  /// Executes a collected batch (>= 2 members) and resolves every member's
  /// promise. One reuse Prepare, one substrate pin; members with identical
  /// resolved limits share one engine run.
  void RunBatch(std::vector<std::shared_ptr<Pending>>& batch);
  /// First queue entry a non-leader worker may pop: skips entries claimed
  /// by an open batch collection (the leader will drain them), and treats
  /// a delta as a two-sided dispatch barrier — nothing behind one is
  /// popped around it, and the delta itself only runs from the true head.
  std::deque<std::shared_ptr<Pending>>::iterator FindPoppableLocked();

  const Database& db_;
  /// Non-null only for the read-write constructor; same object as db_.
  Database* const mutable_db_ = nullptr;
  /// Readers (query workers) vs writers (delta workers) over db_. Only
  /// taken when mutable_db_ is set — a read-only service has no writers.
  std::shared_mutex data_mu_;
  const ServiceOptions options_;
  /// The cross-query reuse layer (null when options_.reuse.enabled is
  /// false). Lives for the whole service: this is what successive requests
  /// warm for each other.
  std::unique_ptr<CrossQueryReuse> reuse_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<std::shared_ptr<Pending>> queue_;
  /// (shape, mode, engine) keys of batches whose leaders are currently
  /// holding a window open. Arrivals matching one are left in the queue
  /// for that leader instead of being popped into a rival mini-batch.
  std::vector<std::string> collecting_;
  std::vector<std::shared_ptr<Pending>> in_flight_;
  std::uint64_t charged_bytes_ = 0;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace clftj

#endif  // CLFTJ_SERVER_SERVICE_H_
