#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "util/fault.h"

namespace clftj {

namespace {

// Writes all of `data` (best effort; a dead peer just ends the
// connection, it must never take the server down — SIGPIPE is suppressed
// via MSG_NOSIGNAL).
bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(QueryService* service) : service_(service) {}

QueryServer::~QueryServer() { Stop(); }

bool QueryServer::Start(const std::string& socket_path, std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  ::unlink(socket_path.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socket_path_ = socket_path;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    // Short poll timeout so Stop() is observed promptly even with no
    // connection attempts arriving.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void QueryServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load()) {
    if (buffer.find('\n') == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;  // peer closed or connection shut down by Stop()
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }

    // Pipelining: drain every complete line buffered so far and submit
    // them all before writing any response — co-submitted requests reach
    // the service queue together, which is what lets the batch scheduler
    // group them into one shared run. Responses are written in request
    // order, so the wire contract is unchanged from one-at-a-time.
    struct Slot {
      std::future<QueryResponse> future;
      QueryResponse immediate;
      bool submitted = false;
    };
    std::vector<Slot> slots;
    for (std::size_t newline = buffer.find('\n');
         newline != std::string::npos; newline = buffer.find('\n')) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;

      // Chaos hook: corrupt the request after framing, before parsing. The
      // contract under corruption is a typed BAD-QUERY (either the
      // protocol parser or the query parser/validator rejects), never a
      // crash and never a poisoned stream for the next request.
      fault::MaybeCorrupt(fault::Site::kRequestBytes, &line);

      Slot slot;
      QueryRequest request;
      std::string parse_error;
      if (!ParseRequest(line, &request, &parse_error)) {
        slot.immediate.status = RunStatus::kBadQuery;
        slot.immediate.message = parse_error;
      } else {
        slot.future = service_->Submit(request);
        slot.submitted = true;
      }
      slots.push_back(std::move(slot));
    }

    bool write_ok = true;
    for (Slot& slot : slots) {
      const QueryResponse response =
          slot.submitted ? slot.future.get() : std::move(slot.immediate);
      std::string wire;
      for (const std::string& out : FormatResponse(response)) {
        wire += out;
        wire += '\n';
      }
      // A dead peer must not orphan the remaining futures: keep draining
      // them (each resolves exactly once) and just skip the writes.
      if (write_ok && !WriteAll(fd, wire)) write_ok = false;
    }
    if (!write_ok) break;
  }
  ::close(fd);
}

void QueryServer::Stop() {
  if (stopping_.exchange(true)) {
    // A second Stop still needs to join if the first raced; fall through.
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!socket_path_.empty()) ::unlink(socket_path_.c_str());
  }
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fds.swap(connection_fds_);
    threads.swap(connection_threads_);
  }
  // Shutdown unblocks handlers stuck in recv; they observe stopping_ and
  // close their own fd.
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace clftj
