#ifndef CLFTJ_SERVER_CLIENT_H_
#define CLFTJ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/service.h"

namespace clftj {

/// Client retry/backoff policy. Backoff is exponential with
/// deterministic, seeded jitter (util/rng.h): attempt k sleeps a uniform
/// draw from [backoff/2, backoff] where backoff = min(initial *
/// multiplier^k, max), floored at the server's retry_after_ms hint when
/// one was returned. Only transport failures and retryable statuses
/// (IsRetryable: SHED, INTERNAL) are retried; terminal statuses
/// (TIMEOUT, OUT-OF-MEMORY, BAD-QUERY, CANCELLED) return immediately —
/// retrying a budget-driven failure burns server capacity to fail the
/// same way.
struct ClientOptions {
  /// Total tries, including the first (1 = no retries).
  int max_attempts = 4;
  std::uint64_t initial_backoff_ms = 20;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_ms = 2000;
  /// Per-request wall-clock cap on waiting for the response bytes.
  std::uint64_t request_timeout_ms = 30000;
  /// Seed for the jitter Rng: equal seeds replay equal backoff schedules,
  /// which keeps chaos tests deterministic.
  std::uint64_t jitter_seed = 1;
};

/// Outcome of one QueryClient call: the final response plus transport
/// metadata the CLI surfaces.
struct ClientResult {
  /// False only when every attempt failed at the transport layer
  /// (connect/send/recv); `transport_error` then explains.
  bool transport_ok = false;
  std::string transport_error;
  /// Attempts actually made (>= 1 unless max_attempts < 1).
  int attempts = 0;
  QueryResponse response;
};

/// Minimal blocking client for QueryServer's line protocol with timeout,
/// bounded retries and exponential backoff. Each attempt uses a fresh
/// connection: after a shed or a transport error the old connection's
/// state is suspect by definition.
class QueryClient {
 public:
  QueryClient(std::string socket_path, ClientOptions options);

  /// Runs one request to completion under the retry policy.
  ClientResult Run(const QueryRequest& request);

  /// Runs all requests pipelined over ONE connection: every request is
  /// sent before any response is read, so they land in the server's queue
  /// together and the service's batch scheduler can group them into one
  /// shared run. Responses come back in request order. The batch is a
  /// single attempt — no retry policy — because after a mid-batch
  /// transport failure the server may already have executed a prefix
  /// (replaying a delta would double-apply it). On transport failure every
  /// result carries transport_ok=false and the error; responses received
  /// before the failure are preserved.
  std::vector<ClientResult> RunBatch(
      const std::vector<QueryRequest>& requests);

 private:
  /// One attempt: connect, send, read TUPLE*/OK|ERR. Returns false on
  /// transport failure (with *transport_error set).
  bool Attempt(const QueryRequest& request, QueryResponse* response,
               std::string* transport_error);

  std::string socket_path_;
  ClientOptions options_;
};

}  // namespace clftj

#endif  // CLFTJ_SERVER_CLIENT_H_
