#include "server/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "util/rng.h"
#include "util/timer.h"

namespace clftj {

namespace {

bool FailTransport(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

QueryClient::QueryClient(std::string socket_path, ClientOptions options)
    : socket_path_(std::move(socket_path)), options_(options) {}

bool QueryClient::Attempt(const QueryRequest& request,
                          QueryResponse* response,
                          std::string* transport_error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return FailTransport(transport_error, "socket path too long");
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return FailTransport(transport_error, std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return FailTransport(transport_error, "connect: " + why);
  }

  std::string wire = FormatRequest(request);
  wire += '\n';
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return FailTransport(transport_error, "send failed");
    }
    sent += static_cast<std::size_t>(n);
  }

  // Read lines until the terminal OK/ERR, bounded by request_timeout_ms of
  // wall clock across the whole read.
  Timer timer;
  std::vector<std::string> lines;
  std::string buffer;
  char chunk[4096];
  bool done = false;
  while (!done) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      lines.push_back(line);
      done = IsTerminalResponseLine(lines.back());
      continue;
    }
    const double elapsed_ms = timer.Seconds() * 1000.0;
    const double remaining_ms =
        static_cast<double>(options_.request_timeout_ms) - elapsed_ms;
    if (options_.request_timeout_ms > 0 && remaining_ms <= 0) {
      ::close(fd);
      return FailTransport(transport_error, "response timed out");
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int wait_ms =
        options_.request_timeout_ms == 0
            ? -1
            : std::max(1, static_cast<int>(remaining_ms));
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready == 0) {
      ::close(fd);
      return FailTransport(transport_error, "response timed out");
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return FailTransport(transport_error, std::strerror(errno));
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return FailTransport(transport_error,
                           "connection closed before a terminal line");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::string parse_error;
  if (!ParseResponse(lines, response, &parse_error)) {
    return FailTransport(transport_error, "bad response: " + parse_error);
  }
  return true;
}

std::vector<ClientResult> QueryClient::RunBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<ClientResult> results(requests.size());
  if (requests.empty()) return results;
  const auto fail_from = [&results](std::size_t first,
                                    const std::string& why) {
    for (std::size_t i = first; i < results.size(); ++i) {
      results[i].transport_ok = false;
      results[i].transport_error = why;
      results[i].attempts = 1;
    }
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    fail_from(0, "socket path too long");
    return results;
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    fail_from(0, std::strerror(errno));
    return results;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    fail_from(0, "connect: " + why);
    return results;
  }

  // Send every request before reading anything: co-arrival is the point.
  std::string wire;
  for (const QueryRequest& request : requests) {
    wire += FormatRequest(request);
    wire += '\n';
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      fail_from(0, "send failed");
      return results;
    }
    sent += static_cast<std::size_t>(n);
  }

  // Read one terminal line group per request, in order; the whole batch
  // shares a single request_timeout_ms wall-clock budget.
  Timer timer;
  std::string buffer;
  char chunk[4096];
  std::vector<std::string> lines;
  std::size_t next = 0;
  while (next < requests.size()) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      lines.push_back(line);
      if (!IsTerminalResponseLine(lines.back())) continue;
      ClientResult& result = results[next];
      result.attempts = 1;
      std::string parse_error;
      if (ParseResponse(lines, &result.response, &parse_error)) {
        result.transport_ok = true;
      } else {
        result.transport_error = "bad response: " + parse_error;
      }
      lines.clear();
      ++next;
      continue;
    }
    const double elapsed_ms = timer.Seconds() * 1000.0;
    const double remaining_ms =
        static_cast<double>(options_.request_timeout_ms) - elapsed_ms;
    if (options_.request_timeout_ms > 0 && remaining_ms <= 0) {
      ::close(fd);
      fail_from(next, "response timed out");
      return results;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int wait_ms = options_.request_timeout_ms == 0
                            ? -1
                            : std::max(1, static_cast<int>(remaining_ms));
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready == 0) {
      ::close(fd);
      fail_from(next, "response timed out");
      return results;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      fail_from(next, why);
      return results;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      fail_from(next, "connection closed before a terminal line");
      return results;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return results;
}

ClientResult QueryClient::Run(const QueryRequest& request) {
  ClientResult result;
  Rng rng(options_.jitter_seed);
  double backoff_ms = static_cast<double>(options_.initial_backoff_ms);
  for (int attempt = 0; attempt < std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with jitter in [backoff/2, backoff], floored
      // at the server's retry-after hint: spreads synchronized retries
      // (jitter) while honoring explicit server pressure (the floor).
      const std::uint64_t cap = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(backoff_ms));
      std::uint64_t sleep_ms = cap / 2 + rng.Uniform(cap / 2 + 1);
      if (result.transport_ok) {
        sleep_ms = std::max(sleep_ms, result.response.retry_after_ms);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff_ms = std::min(backoff_ms * options_.backoff_multiplier,
                            static_cast<double>(options_.max_backoff_ms));
    }
    ++result.attempts;
    QueryResponse response;
    std::string transport_error;
    if (!Attempt(request, &response, &transport_error)) {
      result.transport_ok = false;
      result.transport_error = transport_error;
      continue;  // transport failures are always retryable
    }
    result.transport_ok = true;
    result.transport_error.clear();
    result.response = std::move(response);
    if (!IsRetryable(result.response.status)) return result;
  }
  return result;
}

}  // namespace clftj
