#ifndef CLFTJ_SERVER_PROTOCOL_H_
#define CLFTJ_SERVER_PROTOCOL_H_

#include <string>
#include <vector>

#include "server/service.h"

namespace clftj {

/// The line-based wire protocol between clftj_server and its clients.
/// One request is one line; one response is zero or more TUPLE lines
/// followed by exactly one terminal OK or ERR line. Everything is plain
/// text so a corrupted byte (the kRequestBytes fault) degrades into a
/// parse failure — a typed kBadQuery — never into undefined framing.
///
///   request:  RUN mode=count engine=CLFTJ timeout_ms=500 max_tuples=0
///             q=E(x,y), E(y,z)
///   mutation: DELTA relation=E add=1,2;3,4 del=5,6
///   success:  TUPLE 1 2
///             TUPLE 1 3
///             OK count=2 seconds=0.004
///   failure:  ERR status=SHED retry_after_ms=50 msg=request queue is full
///
/// `q=` (and `msg=`) swallow the rest of the line, so queries may contain
/// spaces and '=' freely; they must therefore come last. A DELTA line
/// carries its tuples inline: values ','-separated within a tuple, tuples
/// ';'-separated, empty add=/del= omitted; the OK response's count is the
/// number of tuples actually applied (no-ops excluded). Parsing and
/// formatting are pure functions on strings so the whole protocol is
/// testable without a socket.

/// Formats a request as one line (no trailing newline).
std::string FormatRequest(const QueryRequest& request);

/// Parses a request line. On failure returns false and stores a
/// diagnostic in *error (if non-null); the caller maps that to kBadQuery.
bool ParseRequest(const std::string& line, QueryRequest* request,
                  std::string* error);

/// Formats a response as protocol lines (each without trailing newline):
/// TUPLE lines (eval results) then the terminal OK/ERR line.
std::vector<std::string> FormatResponse(const QueryResponse& response);

/// True for lines that terminate a response (OK ... / ERR ...).
bool IsTerminalResponseLine(const std::string& line);

/// Parses a full response (TUPLE* then OK/ERR) back into a QueryResponse.
/// A malformed response yields false; *error explains (if non-null).
bool ParseResponse(const std::vector<std::string>& lines,
                   QueryResponse* response, std::string* error);

}  // namespace clftj

#endif  // CLFTJ_SERVER_PROTOCOL_H_
