#include "lftj/trie_join.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace clftj {

std::vector<int> TrieJoinSubstrate::CheckOrder(const Query& q) const {
  CLFTJ_CHECK_MSG(q.AllVarsCovered(), "query has an atom-free variable");
  CLFTJ_CHECK(static_cast<int>(order_.size()) == q.num_vars());
  std::vector<int> var_rank(q.num_vars(), kNone);
  for (int d = 0; d < static_cast<int>(order_.size()); ++d) {
    CLFTJ_CHECK(order_[d] >= 0 && order_[d] < q.num_vars());
    CLFTJ_CHECK_MSG(var_rank[order_[d]] == kNone,
                    "variable order is not a permutation");
    var_rank[order_[d]] = d;
  }
  return var_rank;
}

void TrieJoinSubstrate::IndexDepths(const std::vector<int>& var_rank) {
  atoms_at_depth_.resize(order_.size());
  for (std::size_t a = 0; a < views_.size(); ++a) {
    for (const VarId v : views_[a].level_vars) {
      atoms_at_depth_[var_rank[v]].push_back(static_cast<int>(a));
    }
  }
  for (std::size_t d = 0; d < order_.size(); ++d) {
    CLFTJ_CHECK_MSG(!atoms_at_depth_[d].empty(),
                    "no atom constrains a variable at this depth");
  }
}

TrieJoinSubstrate::TrieJoinSubstrate(const Query& q, const Database& db,
                                     const std::vector<VarId>& order)
    : order_(order) {
  const std::vector<int> var_rank = CheckOrder(q);
  views_ = BuildAtomViews(q, db, var_rank, &has_empty_atom_);
  IndexDepths(var_rank);
}

TrieJoinSubstrate::TrieJoinSubstrate(const Query& q,
                                     const std::vector<VarId>& order,
                                     std::vector<AtomView> views)
    : order_(order), views_(std::move(views)) {
  const std::vector<int> var_rank = CheckOrder(q);
  CLFTJ_CHECK(views_.size() == static_cast<std::size_t>(q.num_atoms()));
  for (const AtomView& view : views_) {
    CLFTJ_CHECK(view.trie != nullptr);
    if (!view.non_empty) has_empty_atom_ = true;
  }
  IndexDepths(var_rank);
}

TrieJoinContext::TrieJoinContext(const TrieJoinSubstrate& substrate,
                                 ExecStats* stats)
    : substrate_(&substrate) {
  Attach(stats);
}

TrieJoinContext::TrieJoinContext(const Query& q, const Database& db,
                                 const std::vector<VarId>& order,
                                 ExecStats* stats)
    : owned_(std::make_unique<TrieJoinSubstrate>(q, db, order)),
      substrate_(owned_.get()) {
  Attach(stats);
}

void TrieJoinContext::Attach(ExecStats* stats) {
  const std::vector<AtomView>& views = substrate_->views();
  iters_.reserve(views.size());
  for (const AtomView& view : views) {
    // Views with a delta overlay get the merged two-tier cursor; the common
    // single-tier case constructs exactly the plain cursor (null overlays
    // degenerate to it, so counting stays byte-identical).
    iters_.push_back(std::make_unique<TrieIterator>(
        view.trie.get(), view.delta_add.get(), view.delta_del.get(), stats));
  }
  const std::size_t depths = substrate_->order().size();
  at_depth_.resize(depths);
  joins_.resize(depths);
  for (std::size_t d = 0; d < depths; ++d) {
    for (const int a : substrate_->atoms_at_depth()[d]) {
      at_depth_[d].push_back(iters_[a].get());
    }
    joins_[d] = std::make_unique<LeapfrogJoin>(at_depth_[d]);
  }
}

LeapfrogJoin* TrieJoinContext::EnterDepth(int d) {
  for (TrieIterator* it : at_depth_[d]) it->Open();
  joins_[d]->Init();
  return joins_[d].get();
}

void TrieJoinContext::LeaveDepth(int d) {
  for (TrieIterator* it : at_depth_[d]) it->Up();
}

namespace {

// Shared recursive driver for count and evaluation. Emit is called with the
// full assignment when depth n is reached; it returns false to abort.
class LftjRun {
 public:
  LftjRun(TrieJoinContext* ctx, DeadlineChecker* deadline)
      : ctx_(ctx), deadline_(deadline) {}

  // Returns false if the deadline expired.
  template <typename Emit>
  bool Join(int d, Tuple* assignment, const Emit& emit) {
    if (d == ctx_->num_vars()) {
      emit(*assignment);
      return true;
    }
    LeapfrogJoin* join = ctx_->EnterDepth(d);
    bool ok = true;
    while (!join->AtEnd()) {
      if (deadline_->Expired()) {
        ok = false;
        break;
      }
      (*assignment)[ctx_->VarAtDepth(d)] = join->Key();
      if (!Join(d + 1, assignment, emit)) {
        ok = false;
        break;
      }
      join->Next();
    }
    (*assignment)[ctx_->VarAtDepth(d)] = kNullValue;
    ctx_->LeaveDepth(d);
    return ok;
  }

 private:
  TrieJoinContext* ctx_;
  DeadlineChecker* deadline_;
};

std::vector<VarId> ResolveOrder(const Query& q,
                                const std::vector<VarId>& requested) {
  if (!requested.empty()) return requested;
  std::vector<VarId> order(q.num_vars());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace

RunResult LeapfrogTrieJoin::Count(const Query& q, const Database& db,
                                  const RunLimits& limits) {
  RunResult result;
  Timer timer;
  TrieJoinContext ctx(q, db, ResolveOrder(q, options_.order), &result.stats);
  if (!ctx.HasEmptyAtom()) {
    DeadlineChecker deadline(limits.timeout_seconds, limits.cancel);
    LftjRun run(&ctx, &deadline);
    Tuple assignment(q.num_vars(), kNullValue);
    std::uint64_t count = 0;
    const bool ok =
        run.Join(0, &assignment, [&count](const Tuple&) { ++count; });
    result.count = count;
    result.SetStatus(
        MergeRunStatus(!ok, /*any_out_of_memory=*/false, limits.cancel));
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

RunResult LeapfrogTrieJoin::Evaluate(const Query& q, const Database& db,
                                     const TupleCallback& cb,
                                     const RunLimits& limits) {
  RunResult result;
  Timer timer;
  TrieJoinContext ctx(q, db, ResolveOrder(q, options_.order), &result.stats);
  if (!ctx.HasEmptyAtom()) {
    DeadlineChecker deadline(limits.timeout_seconds, limits.cancel);
    LftjRun run(&ctx, &deadline);
    Tuple assignment(q.num_vars(), kNullValue);
    std::uint64_t count = 0;
    ExecStats* stats = &result.stats;
    const bool ok = run.Join(0, &assignment,
                             [&count, &cb, stats](const Tuple& t) {
                               ++count;
                               // Materializing one output row.
                               stats->memory_accesses += t.size();
                               cb(t);
                             });
    result.count = count;
    result.SetStatus(
        MergeRunStatus(!ok, /*any_out_of_memory=*/false, limits.cancel));
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace clftj
