#ifndef CLFTJ_LFTJ_TRIE_JOIN_H_
#define CLFTJ_LFTJ_TRIE_JOIN_H_

#include <memory>
#include <vector>

#include "engine/engine.h"
#include "query/query.h"
#include "trie/leapfrog.h"
#include "trie/trie.h"
#include "trie/trie_iterator.h"

namespace clftj {

/// Vanilla Leapfrog Trie Join (Veldhuizen 2014; Figure 1 of the paper):
/// a worst-case-optimal multiway join that assigns variables one at a time
/// in a fixed order, intersecting the tries of all atoms containing the
/// current variable with a leapfrog merge. Memory footprint is the tries
/// plus O(#vars) cursor state; no intermediate results are stored.
class LeapfrogTrieJoin : public JoinEngine {
 public:
  struct Options {
    /// Variable elimination order; empty means the query's natural order
    /// x1, ..., xn (the paper's "original LFTJ order").
    std::vector<VarId> order;
  };

  LeapfrogTrieJoin() = default;
  explicit LeapfrogTrieJoin(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "LFTJ"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;

 private:
  Options options_;
};

/// The immutable half of a trie-join run: atom views (tries) ordered by a
/// variable order plus the per-depth participation map. Built once per
/// (query, database, order); after construction nothing is ever mutated, so
/// any number of TrieJoinContext cursors — including cursors on concurrent
/// threads — may read one substrate. This is the planning/immutable side of
/// the run/plan state split; all per-run mutable state (iterator positions,
/// leapfrog joins, stats) lives in TrieJoinContext.
class TrieJoinSubstrate {
 public:
  /// Builds tries and the depth participation map. `order` must be a
  /// permutation of the query's variables; the query must cover all its
  /// variables with atoms and all referenced relations must exist in `db`
  /// with matching arities.
  TrieJoinSubstrate(const Query& q, const Database& db,
                    const std::vector<VarId>& order);

  /// Assembles a substrate around externally built views — the
  /// SubstrateRegistry path, where the tries inside the views are shared
  /// with other queries and only the cheap per-query indexing happens
  /// here. `views` must hold one view per atom of `q`, in atom order, each
  /// built for the ranks induced by `order`.
  TrieJoinSubstrate(const Query& q, const std::vector<VarId>& order,
                    std::vector<AtomView> views);

  /// True if some atom's filtered view is empty (the result is empty).
  bool HasEmptyAtom() const { return has_empty_atom_; }

  int num_vars() const { return static_cast<int>(order_.size()); }
  const std::vector<VarId>& order() const { return order_; }
  const std::vector<AtomView>& views() const { return views_; }

  /// Indices into views() of the atoms participating at each depth; every
  /// depth has at least one participant.
  const std::vector<std::vector<int>>& atoms_at_depth() const {
    return atoms_at_depth_;
  }

 private:
  /// Validates that order_ is a permutation of q's variables; returns the
  /// rank (depth) of each variable.
  std::vector<int> CheckOrder(const Query& q) const;
  /// Fills atoms_at_depth_ from views_' level variables.
  void IndexDepths(const std::vector<int>& var_rank);

  std::vector<VarId> order_;
  std::vector<AtomView> views_;
  std::vector<std::vector<int>> atoms_at_depth_;
  bool has_empty_atom_ = false;
};

/// The per-run cursor shared by LFTJ and CLFTJ: one trie iterator per atom
/// and a leapfrog join per depth, over an immutable TrieJoinSubstrate.
/// Exposed so the cached variant (clftj/) reuses the identical substrate —
/// when no caching happens the two algorithms must coincide step for step.
/// A cursor is cheap (O(#atoms + #vars) cursor state, no trie copies), so a
/// parallel executor constructs one per worker over one shared substrate.
class TrieJoinContext {
 public:
  /// Cursor over an externally owned substrate, which must outlive the
  /// context. This is the re-entrant path: many contexts, one substrate.
  TrieJoinContext(const TrieJoinSubstrate& substrate, ExecStats* stats);

  /// Convenience single-run path: builds and owns a private substrate.
  TrieJoinContext(const Query& q, const Database& db,
                  const std::vector<VarId>& order, ExecStats* stats);

  /// True if some atom's filtered view is empty (the result is empty).
  bool HasEmptyAtom() const { return substrate_->HasEmptyAtom(); }

  int num_vars() const { return substrate_->num_vars(); }
  const std::vector<VarId>& order() const { return substrate_->order(); }

  /// The variable at a given depth of the elimination order.
  VarId VarAtDepth(int d) const { return substrate_->order()[d]; }

  /// Opens all iterators participating at depth d and initializes the
  /// leapfrog join. Returns the join (owned by the context).
  LeapfrogJoin* EnterDepth(int d);

  /// Closes depth d (ascends all participating iterators).
  void LeaveDepth(int d);

 private:
  void Attach(ExecStats* stats);

  std::unique_ptr<const TrieJoinSubstrate> owned_;     // convenience path only
  const TrieJoinSubstrate* substrate_;
  std::vector<std::unique_ptr<TrieIterator>> iters_;   // one per atom
  std::vector<std::vector<TrieIterator*>> at_depth_;   // participants per depth
  std::vector<std::unique_ptr<LeapfrogJoin>> joins_;   // one per depth
};

}  // namespace clftj

#endif  // CLFTJ_LFTJ_TRIE_JOIN_H_
