#ifndef CLFTJ_LFTJ_TRIE_JOIN_H_
#define CLFTJ_LFTJ_TRIE_JOIN_H_

#include <memory>
#include <vector>

#include "engine/engine.h"
#include "query/query.h"
#include "trie/leapfrog.h"
#include "trie/trie.h"
#include "trie/trie_iterator.h"

namespace clftj {

/// Vanilla Leapfrog Trie Join (Veldhuizen 2014; Figure 1 of the paper):
/// a worst-case-optimal multiway join that assigns variables one at a time
/// in a fixed order, intersecting the tries of all atoms containing the
/// current variable with a leapfrog merge. Memory footprint is the tries
/// plus O(#vars) cursor state; no intermediate results are stored.
class LeapfrogTrieJoin : public JoinEngine {
 public:
  struct Options {
    /// Variable elimination order; empty means the query's natural order
    /// x1, ..., xn (the paper's "original LFTJ order").
    std::vector<VarId> order;
  };

  LeapfrogTrieJoin() = default;
  explicit LeapfrogTrieJoin(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "LFTJ"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;

 private:
  Options options_;
};

/// The per-run state shared by LFTJ and CLFTJ: atom views trie-ordered by a
/// variable order, per-depth iterator groups, and a leapfrog join per depth.
/// Exposed so the cached variant (clftj/) reuses the identical substrate —
/// when no caching happens the two algorithms must coincide step for step.
class TrieJoinContext {
 public:
  /// Builds tries and iterator groups. `order` must be a permutation of the
  /// query's variables; the query must cover all its variables with atoms
  /// and all referenced relations must exist in `db` with matching arities.
  TrieJoinContext(const Query& q, const Database& db,
                  const std::vector<VarId>& order, ExecStats* stats);

  /// True if some atom's filtered view is empty (the result is empty).
  bool HasEmptyAtom() const { return has_empty_atom_; }

  int num_vars() const { return static_cast<int>(order_.size()); }
  const std::vector<VarId>& order() const { return order_; }

  /// The variable at a given depth of the elimination order.
  VarId VarAtDepth(int d) const { return order_[d]; }

  /// Opens all iterators participating at depth d and initializes the
  /// leapfrog join. Returns the join (owned by the context).
  LeapfrogJoin* EnterDepth(int d);

  /// Closes depth d (ascends all participating iterators).
  void LeaveDepth(int d);

 private:
  std::vector<VarId> order_;
  std::vector<AtomView> views_;
  std::vector<std::unique_ptr<TrieIterator>> iters_;   // one per atom
  std::vector<std::vector<TrieIterator*>> at_depth_;   // participants per depth
  std::vector<std::unique_ptr<LeapfrogJoin>> joins_;   // one per depth
  bool has_empty_atom_ = false;
};

}  // namespace clftj

#endif  // CLFTJ_LFTJ_TRIE_JOIN_H_
