#ifndef CLFTJ_ENGINE_SHARDED_H_
#define CLFTJ_ENGINE_SHARDED_H_

#include <optional>
#include <string>
#include <utility>

#include "clftj/cached_trie_join.h"
#include "engine/engine.h"

namespace clftj {

/// CLFTJ-P — parallel CLFTJ over contiguous shards of the first join
/// variable's domain (the ROADMAP's "parallel sharded execution").
///
/// One run builds the shared immutable state once — CachedPlan and
/// TrieJoinSubstrate, both data-race-free under concurrent reads — then
/// probes the depth-0 leapfrog intersection, splits it into K contiguous
/// near-equal value ranges, and executes each range as an independent
/// CountRun/EvalRun on its own thread with a private TrieJoinContext
/// cursor and private ExecStats. CacheOptions::sharing selects the cache
/// placement: kPrivate gives each worker a CacheManager sized capacity/K
/// (no synchronization, no cross-shard reuse); kStriped gives all workers
/// one StripedCacheManager carrying the undivided global budget, so a
/// subtree computed by any shard is a hit for every other shard — the
/// paper's cache benefit preserved under parallelism at the price of a
/// stripe mutex per cache call. A single shared AbortFlag propagates the
/// first deadline expiry or materialization-budget hit to every worker
/// within one deadline stride.
///
/// Determinism: shards are ascending value intervals and the trie
/// enumerates ascending, so summing counts and concatenating factorized
/// root entries in shard order reproduce the single-thread CLFTJ result —
/// identical counts and identical tuple sets at every thread count and
/// under either sharing mode (cached entries are exact subtree results,
/// so any hit/miss pattern preserves correctness), and a tuple stream
/// that is deterministic for a given thread count under kPrivate (its
/// interleaving can differ from the single-thread stream, because cache
/// hits expand skipped subtrees at the emission point and private shard
/// caches hit differently than one shared cache). Stats under kPrivate
/// are fully deterministic (each shard's traversal is fixed; the merged
/// stats report the shard sum, with cache peaks summed because the
/// private caches coexist). Under kStriped the merge procedure stays
/// deterministic — per-stripe counters aggregated in ascending stripe
/// order after the join — but the counter *values* can vary slightly
/// across runs: whether shard B hits a subtree shard A computes depends
/// on which worker inserted first, so hit/miss splits and memory-access
/// sums are interleaving-dependent (counts and tuple sets are not).
class ShardedCachedTrieJoin : public JoinEngine {
 public:
  struct Options {
    /// Worker count; <= 0 means one per hardware thread. The effective
    /// shard count is min(threads, depth-0 intersection size), so a domain
    /// smaller than the thread count simply runs fewer shards.
    int threads = 0;
    /// Explicit plan / planner / cache knobs, as in CachedTrieJoin. The
    /// cache options describe the *global* budget: under Sharing::kPrivate
    /// each shard receives capacity/K (and capacity_bytes/K); under
    /// Sharing::kStriped the undivided budget goes to one shared striped
    /// table whose per-stripe slices sum to it.
    std::optional<TdPlan> plan;
    PlannerOptions planner;
    CacheOptions cache;

    // Cross-query reuse injection, as in CachedTrieJoin::Options: shared
    // plan/substrate replace the run's own resolution/build, and an
    // injected striped cache (borrowed, must outlive the run) replaces the
    // run-owned cache so all workers of all requests of this shape share
    // one table. An injected cache wins over `cache.sharing` — it *is*
    // striped sharing, owned by the serving loop instead of the run.
    std::shared_ptr<const CachedPlan> prepared_plan;
    std::shared_ptr<const TrieJoinSubstrate> prepared_substrate;
    StripedCacheManager<std::uint64_t>* shared_count_cache = nullptr;
    StripedCacheManager<FactorizedSetPtr>* shared_eval_cache = nullptr;
  };

  ShardedCachedTrieJoin() = default;
  explicit ShardedCachedTrieJoin(Options options)
      : options_(std::move(options)) {}

  std::string name() const override { return "CLFTJ-P"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  /// Emission is deterministic: each worker buffers its shard's tuples and
  /// the buffers are drained through `cb` in shard order after the workers
  /// join — the same stream for every run at a given thread count, and the
  /// same tuple *set* as single-thread CLFTJ (see the class comment on
  /// ordering). Buffered tuples and intermediate entries draw on one
  /// run-wide limits.max_intermediate_tuples budget shared by all workers
  /// (a single atomic counter) — the same total budget a single-thread run
  /// gets, but deliberately *stricter* in that single-thread CLFTJ streams
  /// outputs without materializing them: a parallel run whose buffered
  /// output would exceed the budget reports out_of_memory where CLFTJ
  /// would have streamed through. Callers that need unbounded streaming of
  /// huge results should use CLFTJ, or EvaluateFactorized (whose
  /// factorized root is usually far smaller than the flat result).
  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;

  /// Parallel counterpart of CachedTrieJoin::EvaluateFactorized: the merged
  /// root set is the shard roots' entries concatenated in shard order.
  std::optional<FactorizedQueryResult> EvaluateFactorized(
      const Query& q, const Database& db, const RunLimits& limits,
      RunResult* run);

 private:
  int EffectiveThreads() const;

  /// Returns the prepared plan if injected, else resolves into *local.
  const CachedPlan* PlanFor(const Query& q, const Database& db,
                            std::optional<CachedPlan>* local) const;
  /// Returns the prepared substrate if injected (checking its order matches
  /// the plan), else builds a private one into *local.
  const TrieJoinSubstrate* SubstrateFor(
      const Query& q, const Database& db, const CachedPlan& plan,
      std::optional<TrieJoinSubstrate>* local) const;

  Options options_;
};

}  // namespace clftj

#endif  // CLFTJ_ENGINE_SHARDED_H_
