#include "engine/printer.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace clftj {

std::vector<ColumnType> VariableTypes(const Query& q, const Database& db) {
  std::vector<ColumnType> types(static_cast<std::size_t>(q.num_vars()),
                                ColumnType::kInt);
  for (const Atom& atom : q.atoms()) {
    const Relation* rel = db.Find(atom.relation);
    if (rel == nullptr) continue;
    // An atom wider than its relation is a malformed query the engine will
    // reject on its own; don't index past the schema here.
    const std::size_t positions =
        std::min(atom.terms.size(), static_cast<std::size_t>(rel->arity()));
    for (std::size_t p = 0; p < positions; ++p) {
      const Term& term = atom.terms[p];
      if (!term.is_variable) continue;
      if (rel->column_type(static_cast<int>(p)) == ColumnType::kString) {
        types[static_cast<std::size_t>(term.var)] = ColumnType::kString;
      }
    }
  }
  return types;
}

std::string FormatValue(Value v, ColumnType type, const Dictionary* dict) {
  if (type == ColumnType::kString) {
    CLFTJ_CHECK(dict != nullptr);
    return std::string(dict->Decode(v));
  }
  return std::to_string(v);
}

TuplePrinter::TuplePrinter(const Query& q, const Database& db,
                           std::ostream& out)
    : out_(out), types_(VariableTypes(q, db)), dict_(&db.dict()) {}

void TuplePrinter::Print(const Tuple& t) {
  for (std::size_t v = 0; v < types_.size(); ++v) {
    if (v > 0) out_ << '\t';
    if (types_[v] == ColumnType::kString) {
      out_ << dict_->Decode(t[v]);
    } else {
      out_ << t[v];
    }
  }
  out_ << '\n';
}

void PrintFactorized(const FactorizedQueryResult& result, const Query& q,
                     const Database& db, std::ostream& out) {
  TuplePrinter printer(q, db, out);
  result.Enumerate([&printer](const Tuple& t) { printer.Print(t); });
}

}  // namespace clftj
