#ifndef CLFTJ_ENGINE_REUSE_H_
#define CLFTJ_ENGINE_REUSE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "clftj/cache.h"
#include "clftj/factorized.h"
#include "clftj/plan.h"
#include "clftj/plan_cache.h"
#include "data/database.h"
#include "engine/substrate_registry.h"
#include "query/query.h"
#include "td/planner.h"
#include "util/stats.h"

namespace clftj {

/// Knobs for the serving loop's cross-query reuse layer. Every layer can be
/// switched off independently so the cold path stays testable; `enabled`
/// is the master switch (off = every request plans, builds and caches from
/// scratch, exactly the pre-reuse behavior).
struct ReuseOptions {
  bool enabled = true;
  /// LRU of resolved CachedPlans keyed on (shape, generation).
  bool plan_cache = true;
  std::size_t plan_cache_capacity = 64;
  /// Long-lived shared tries (SubstrateRegistry).
  bool share_substrates = true;
  /// Byte budget for retained tries; 0 = unbounded.
  std::uint64_t substrate_budget_bytes = 0;
  /// Persistent striped subtree-result caches, one per shape, that
  /// successive requests warm for each other. NodeId keyspaces are
  /// per-plan, which is why the caches are per-shape — sharing one table
  /// across shapes would mix keyspaces. A generation bump (bulk Put) drops
  /// them all; an ApplyDelta evicts only entries whose adhesion key may
  /// touch the changed values (docs/incremental.md).
  bool persistent_cache = true;
  std::size_t max_shape_caches = 32;
  /// Lock-free seqlock read path for hot stripes of the persistent caches
  /// (StripedCacheManager hot_reads) — batch members polling the same hot
  /// subtree stop serializing on the stripe mutex.
  bool hot_stripe_reads = true;
  /// Cross-shape count-cache seeding: when a shape goes cold, copy count
  /// entries from resident shapes whose cacheable nodes have identical
  /// subjoin signatures (SubtreeSignatures — e.g. a warm 4-cycle seeds a
  /// cold 5-cycle's shared 2-path subtree). Count mode only: eval payloads
  /// are plan-structured and never cross plans. Charged as
  /// batch_prefix_seeds on the request that warmed the shape.
  bool cross_shape_seed = true;
};

/// The persistent cache pair of one query shape: the count-mode and the
/// eval-mode striped tables. Both are keyed by (NodeId, adhesion key)
/// under the shape's plan; eval payloads are FactorizedSets frozen before
/// insert (the PR 3 invariant that makes cross-request sharing safe).
struct ShapeCaches {
  StripedCacheManager<std::uint64_t> count;
  StripedCacheManager<FactorizedSetPtr> eval;

  ShapeCaches(int num_nodes, const CacheOptions& options, int stripes_hint,
              bool hot_reads = false)
      : count(num_nodes, options, stripes_hint, hot_reads),
        eval(num_nodes, options, stripes_hint, hot_reads) {}
};

/// The cross-query reuse layer under QueryService (and clftj_cli --repeat):
/// one object that owns the plan cache, the substrate registry and the
/// per-shape persistent caches, bound to a single (planner, cache-options)
/// configuration. Prepare() is called once per request before engine
/// construction; the returned handles are injected through EngineOptions.
/// Results are bit-identical warm vs cold — reuse changes where immutable
/// inputs come from, never what they contain.
class CrossQueryReuse {
 public:
  /// `stripes_hint` sizes the persistent striped caches (number of
  /// concurrent probers to expect, e.g. worker count x shard count);
  /// <= 0 lets the cache pick.
  CrossQueryReuse(const ReuseOptions& options, PlannerOptions planner,
                  CacheOptions cache, int stripes_hint = 0);

  /// Everything Prepare resolved for one request. Null fields mean "the
  /// engine does that part itself" (the corresponding layer is off).
  struct Prepared {
    std::shared_ptr<const CachedPlan> plan;
    std::shared_ptr<const TrieJoinSubstrate> substrate;
    std::shared_ptr<ShapeCaches> caches;
  };

  /// Resolves the reusable state for `q` at db's current generation,
  /// charging the reuse counters to *stats (may be null). Thread-safe; may
  /// throw if a cold trie build throws (injected faults) — already-cached
  /// state is unaffected.
  Prepared Prepare(const Query& q, const Database& db, ExecStats* stats);

  const ReuseOptions& options() const { return options_; }
  SubstrateRegistry& registry() { return registry_; }
  PlanCache& plan_cache() { return plan_cache_; }

 private:
  struct CacheEntry {
    std::string key;
    /// The plan the tables' NodeId keyspace belongs to, plus the shape's
    /// atoms — both needed to decide, per delta, which entries a data
    /// change can actually touch (see docs/incremental.md).
    std::shared_ptr<const CachedPlan> plan;
    std::vector<Atom> atoms;
    std::shared_ptr<ShapeCaches> caches;
    /// Per-node subjoin signatures (SubtreeSignatures) for cross-shape
    /// count-cache seeding; "" = never matchable.
    std::vector<std::string> signatures;
  };

  std::shared_ptr<ShapeCaches> AcquireShapeCaches(
      const Query& q, const Database& db,
      const std::shared_ptr<const CachedPlan>& plan, ExecStats* stats);

  /// Copies count entries from resident shapes into the freshly created
  /// `target` wherever subjoin signatures match (called under mu_, with
  /// `target` already in cache_lru_). Charges batch_prefix_seeds to *stats
  /// (may be null).
  void SeedFromResidentShapes(CacheEntry& target, ExecStats* stats);

  /// Targeted invalidation after ApplyDelta batches: evicts only cache
  /// entries whose adhesion key may intersect the changed values. Called
  /// under mu_.
  void InvalidateForDeltas(const std::vector<const DeltaLogEntry*>& deltas);

  const ReuseOptions options_;
  const PlannerOptions planner_;
  const CacheOptions cache_;
  const int stripes_hint_;
  PlanCache plan_cache_;
  SubstrateRegistry registry_;

  std::mutex mu_;
  std::uint64_t caches_generation_ = 0;
  std::uint64_t caches_minor_ = 0;
  std::list<CacheEntry> cache_lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<CacheEntry>::iterator>
      cache_index_;
};

}  // namespace clftj

#endif  // CLFTJ_ENGINE_REUSE_H_
