#include "engine/reuse.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "query/shape.h"
#include "util/timer.h"

namespace clftj {

CrossQueryReuse::CrossQueryReuse(const ReuseOptions& options,
                                 PlannerOptions planner, CacheOptions cache,
                                 int stripes_hint)
    : options_(options),
      planner_(planner),
      cache_(cache),
      stripes_hint_(std::max(stripes_hint, 0)),
      plan_cache_(options.plan_cache_capacity),
      registry_(SubstrateRegistry::Options{options.substrate_budget_bytes}) {}

CrossQueryReuse::Prepared CrossQueryReuse::Prepare(const Query& q,
                                                   const Database& db,
                                                   ExecStats* stats) {
  Prepared out;
  if (!options_.enabled) return out;
  const bool needs_plan =
      options_.plan_cache || options_.share_substrates ||
      options_.persistent_cache;
  if (!needs_plan) return out;

  if (options_.plan_cache) {
    out.plan = plan_cache_.Resolve(q, db, planner_, cache_, stats);
  } else {
    // Plan caching is off but a later layer needs the resolved order /
    // node count; resolve fresh without charging the plan-cache counters.
    Timer timer;
    out.plan = std::make_shared<const CachedPlan>(
        CachedPlan::Resolve(q, db, std::nullopt, planner_, cache_));
    if (stats != nullptr) {
      stats->plan_resolve_ns +=
          static_cast<std::uint64_t>(timer.Seconds() * 1e9);
    }
  }

  if (options_.share_substrates) {
    out.substrate = registry_.Acquire(q, db, out.plan->order, stats);
  }
  if (options_.persistent_cache) {
    out.caches = AcquireShapeCaches(
        q, db, static_cast<int>(out.plan->cacheable.size()));
  }
  return out;
}

std::shared_ptr<ShapeCaches> CrossQueryReuse::AcquireShapeCaches(
    const Query& q, const Database& db, int num_nodes) {
  const std::uint64_t generation = db.generation();
  const std::string key =
      std::to_string(generation) + "|" + CanonicalShapeKey(q);

  std::lock_guard<std::mutex> lock(mu_);
  if (caches_generation_ != generation) {
    // Data changed: every persistent cache keyed under the old generation
    // is stale. Drop them eagerly rather than waiting for LRU turnover —
    // outstanding shared_ptrs keep in-flight requests' caches alive.
    cache_index_.clear();
    cache_lru_.clear();
    caches_generation_ = generation;
  }
  const auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->caches;
  }
  auto caches = std::make_shared<ShapeCaches>(num_nodes, cache_,
                                              std::max(stripes_hint_, 1));
  cache_lru_.push_front(CacheEntry{key, caches});
  cache_index_[key] = cache_lru_.begin();
  while (options_.max_shape_caches > 0 &&
         cache_lru_.size() > options_.max_shape_caches) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
  return caches;
}

}  // namespace clftj
