#include "engine/reuse.h"

#include <algorithm>
#include <array>
#include <optional>
#include <utility>

#include "query/shape.h"
#include "util/timer.h"

namespace clftj {

namespace {

// A small fixed-size Bloom filter over the changed values of one adhesion
// dimension (4096 bits, two independent bit positions per value). Only used
// for eviction decisions, where a false positive merely over-evicts — the
// next query recomputes the entry — so membership may be approximate while
// absence must be exact, which is exactly a Bloom filter's contract.
struct ValueBloom {
  std::array<std::uint64_t, 64> bits{};

  static std::uint64_t Mix(std::uint64_t x) {
    // splitmix64 finalizer: cheap, well-distributed for sequential ids.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void Set(std::uint64_t h) {
    const std::uint64_t b = h & 4095;
    bits[b >> 6] |= 1ull << (b & 63);
  }

  bool Test(std::uint64_t h) const {
    const std::uint64_t b = h & 4095;
    return (bits[b >> 6] >> (b & 63)) & 1;
  }

  void Insert(Value v) {
    const std::uint64_t h1 = Mix(static_cast<std::uint64_t>(v));
    Set(h1);
    Set(Mix(h1));
  }

  bool MayContain(Value v) const {
    const std::uint64_t h1 = Mix(static_cast<std::uint64_t>(v));
    return Test(h1) && Test(Mix(h1));
  }
};

// What one delta means for the entries cached at one TD node.
enum class NodeAction { kKeep, kEvictAll, kTargeted };

struct NodeRule {
  NodeAction action = NodeAction::kKeep;
  std::vector<ValueBloom> dims;  // kTargeted: one filter per adhesion dim
};

// Derives the per-node eviction rule for a change to relation `delta`'s
// tuples under `plan`. Soundness argument (docs/incremental.md): the entry
// cached at node n summarizes the subtree owned by depths
// [first_depth[n], subtree_last_depth[n]] as a function of (participating
// atoms' data, adhesion assignment). So:
//  - no atom over the changed relation participates in the subtree: no
//    entry at n can change — keep them all;
//  - every participating changed-relation atom contains all of n's
//    adhesion variables: a changed tuple pins each adhesion value at that
//    variable's term position, so only entries whose key matches some
//    changed tuple in *every* dimension can change — evict exactly those
//    (per-dimension Bloom membership, AND across dimensions);
//  - otherwise a changed tuple can affect entries under any key — evict
//    everything at n.
std::vector<NodeRule> RulesFor(const CachedPlan& plan,
                               const std::vector<Atom>& atoms,
                               const DeltaLogEntry& delta) {
  const int num_nodes = static_cast<int>(plan.cacheable.size());
  std::vector<NodeRule> rules(num_nodes);
  std::vector<const Atom*> r_atoms;
  for (const Atom& atom : atoms) {
    if (atom.relation == delta.relation) r_atoms.push_back(&atom);
  }
  if (r_atoms.empty()) return rules;  // all kKeep
  for (NodeId n = 0; n < num_nodes; ++n) {
    if (!plan.cacheable[n]) continue;  // no entries exist at n
    const int lo = plan.first_depth[n];
    const int hi = plan.subtree_last_depth[n];
    std::vector<const Atom*> participating;
    for (const Atom* atom : r_atoms) {
      for (const Term& term : atom->terms) {
        if (!term.is_variable) continue;
        const int rank = plan.var_rank[term.var];
        if (rank >= lo && rank <= hi) {
          participating.push_back(atom);
          break;
        }
      }
    }
    if (participating.empty()) continue;  // kKeep
    NodeRule& rule = rules[n];
    const std::vector<VarId>& avars = plan.adhesion_vars[n];
    rule.dims.resize(avars.size());
    bool targeted = true;
    for (const Atom* atom : participating) {
      std::vector<int> pos(avars.size(), -1);
      for (std::size_t i = 0; i < avars.size(); ++i) {
        for (std::size_t p = 0; p < atom->terms.size(); ++p) {
          if (atom->terms[p].is_variable && atom->terms[p].var == avars[i]) {
            pos[i] = static_cast<int>(p);
            break;
          }
        }
        if (pos[i] < 0) {
          targeted = false;
          break;
        }
      }
      if (!targeted) break;
      for (const Tuple& t : delta.changed) {
        for (std::size_t i = 0; i < avars.size(); ++i) {
          rule.dims[i].Insert(t[pos[i]]);
        }
      }
    }
    rule.action = targeted ? NodeAction::kTargeted : NodeAction::kEvictAll;
    if (!targeted) rule.dims.clear();
  }
  return rules;
}

}  // namespace

CrossQueryReuse::CrossQueryReuse(const ReuseOptions& options,
                                 PlannerOptions planner, CacheOptions cache,
                                 int stripes_hint)
    : options_(options),
      planner_(planner),
      cache_(cache),
      stripes_hint_(std::max(stripes_hint, 0)),
      plan_cache_(options.plan_cache_capacity),
      registry_(SubstrateRegistry::Options{options.substrate_budget_bytes}) {}

CrossQueryReuse::Prepared CrossQueryReuse::Prepare(const Query& q,
                                                   const Database& db,
                                                   ExecStats* stats) {
  Prepared out;
  if (!options_.enabled) return out;
  const bool needs_plan =
      options_.plan_cache || options_.share_substrates ||
      options_.persistent_cache;
  if (!needs_plan) return out;

  if (options_.plan_cache) {
    out.plan = plan_cache_.Resolve(q, db, planner_, cache_, stats);
  } else {
    // Plan caching is off but a later layer needs the resolved order /
    // node count; resolve fresh without charging the plan-cache counters.
    Timer timer;
    out.plan = std::make_shared<const CachedPlan>(
        CachedPlan::Resolve(q, db, std::nullopt, planner_, cache_));
    if (stats != nullptr) {
      stats->plan_resolve_ns +=
          static_cast<std::uint64_t>(timer.Seconds() * 1e9);
    }
  }

  if (options_.share_substrates) {
    out.substrate = registry_.Acquire(q, db, out.plan->order, stats);
  }
  if (options_.persistent_cache) {
    out.caches = AcquireShapeCaches(q, db, out.plan, stats);
  }
  return out;
}

void CrossQueryReuse::InvalidateForDeltas(
    const std::vector<const DeltaLogEntry*>& deltas) {
  for (CacheEntry& entry : cache_lru_) {
    for (const DeltaLogEntry* delta : deltas) {
      const std::vector<NodeRule> rules =
          RulesFor(*entry.plan, entry.atoms, *delta);
      bool any = false;
      for (const NodeRule& rule : rules) {
        if (rule.action != NodeAction::kKeep) {
          any = true;
          break;
        }
      }
      if (!any) continue;
      const auto pred = [&rules](NodeId node, const Value* values, int dims) {
        const NodeRule& rule = rules[node];
        switch (rule.action) {
          case NodeAction::kKeep:
            return false;
          case NodeAction::kEvictAll:
            return true;
          case NodeAction::kTargeted:
            break;
        }
        if (static_cast<std::size_t>(dims) != rule.dims.size()) return true;
        for (int i = 0; i < dims; ++i) {
          if (!rule.dims[i].MayContain(values[i])) return false;
        }
        return true;  // key may match a changed tuple in every dimension
      };
      entry.caches->count.EvictIf(pred);
      entry.caches->eval.EvictIf(pred);
    }
  }
}

void CrossQueryReuse::SeedFromResidentShapes(CacheEntry& target,
                                             ExecStats* stats) {
  // For each matchable node of the cold shape, scan the resident shapes
  // MRU-first and copy count entries from the first node whose subjoin
  // signature matches. Equal signatures mean both nodes cache, per adhesion
  // key, the count of the same subjoin over the same data — the payloads
  // are interchangeable (plan_cache.h). Only count mode: eval payloads are
  // factorized sets structured by their own plan. Admission policies may
  // differ between plans, but admission only gates *inserts*; a seeded
  // entry the target would not have admitted is still a correct value, and
  // targeted invalidation evaluates entries against the target plan's own
  // rules, so delta soundness is unaffected.
  std::uint64_t seeded = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(target.signatures.size()); ++n) {
    const std::string& sig = target.signatures[n];
    if (sig.empty()) continue;
    for (CacheEntry& source : cache_lru_) {
      if (&source == &target) continue;
      bool copied = false;
      for (NodeId m = 0; m < static_cast<NodeId>(source.signatures.size());
           ++m) {
        if (source.signatures[m] != sig) continue;
        source.caches->count.ForEach([&](NodeId node, const Value* values,
                                         int dims, std::uint64_t value) {
          if (node != m) return;
          target.caches->count.Insert(n, PackedKey::Pack(values, dims), value);
          ++seeded;
        });
        copied = true;
        break;
      }
      if (copied) break;
    }
  }
  if (stats != nullptr) stats->batch_prefix_seeds += seeded;
}

std::shared_ptr<ShapeCaches> CrossQueryReuse::AcquireShapeCaches(
    const Query& q, const Database& db,
    const std::shared_ptr<const CachedPlan>& plan, ExecStats* stats) {
  const std::uint64_t generation = db.generation();
  const std::uint64_t minor = db.minor_version();
  const std::string key = CanonicalShapeKey(q);

  std::lock_guard<std::mutex> lock(mu_);
  if (caches_generation_ != generation) {
    // Bulk data change: every persistent cache is stale. Drop them eagerly
    // rather than waiting for LRU turnover — outstanding shared_ptrs keep
    // in-flight requests' caches alive.
    cache_index_.clear();
    cache_lru_.clear();
    caches_generation_ = generation;
    caches_minor_ = minor;
  } else if (caches_minor_ != minor) {
    // Delta-only change: evict just the entries the deltas can touch. Fall
    // back to dropping everything when the delta log no longer reaches back
    // to our sync point or a compaction replaced a main tier.
    std::vector<const DeltaLogEntry*> deltas;
    bool targeted = db.DeltasSince(caches_minor_, &deltas);
    if (targeted) {
      for (const DeltaLogEntry* delta : deltas) {
        if (delta->compacted) {
          targeted = false;
          break;
        }
      }
    }
    if (targeted) {
      InvalidateForDeltas(deltas);
    } else {
      cache_index_.clear();
      cache_lru_.clear();
    }
    caches_minor_ = minor;
  }
  const auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    if (it->second->plan == plan) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      return it->second->caches;
    }
    // Same shape, re-resolved plan (statistics drifted past the plan
    // cache's bound): the old tables belong to the old plan's NodeId
    // keyspace and must not be probed under the new one.
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
  }
  auto caches = std::make_shared<ShapeCaches>(
      static_cast<int>(plan->cacheable.size()), cache_,
      std::max(stripes_hint_, 1), options_.hot_stripe_reads);
  std::vector<std::string> signatures =
      options_.cross_shape_seed ? SubtreeSignatures(*plan, q.atoms())
                                : std::vector<std::string>();
  cache_lru_.push_front(
      CacheEntry{key, plan, q.atoms(), caches, std::move(signatures)});
  cache_index_[key] = cache_lru_.begin();
  if (options_.cross_shape_seed) {
    SeedFromResidentShapes(cache_lru_.front(), stats);
  }
  while (options_.max_shape_caches > 0 &&
         cache_lru_.size() > options_.max_shape_caches) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
  }
  return caches;
}

}  // namespace clftj
