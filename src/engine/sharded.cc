#include "engine/sharded.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "util/check.h"

namespace clftj {

namespace {

// The shard layout of one parallel run: the per-shard first-variable
// ranges and the per-shard cache budget.
struct ShardSetup {
  std::vector<FirstVarRange> shards;
  CacheOptions cache;
};

// Splits the first variable's domain into at most `threads` contiguous
// shards and derives the per-shard cache budget. Under Sharing::kPrivate
// the global entry and byte budgets are split evenly over K private caches
// (floored, min 1 so a tiny budget over many shards still caches
// something). Under Sharing::kStriped the budgets are left whole: the
// run-wide StripedCacheManager carries the global budget itself (split
// across its stripes, not across shards), and the per-run cache options
// only configure admission/eviction policy.
//
// The boundaries come from an O(K) index split of one depth-0 atom's
// top-level sibling array — the smallest one, since the intersection is a
// subset of each participant. No leapfrog pass, no key buffer, no deadline
// concern: the old probe materialized the whole depth-0 intersection
// serially (O(n) accesses before any worker started), which dominated the
// serial prelude on very large domains. The split is near-equal in that
// atom's value array, not in the intersection, so shards can be less
// balanced than the exact split — the price of an O(K) prelude. A single
// thread needs no boundaries at all and runs the one unbounded shard
// (byte-for-byte the sequential execution).
ShardSetup PrepareShards(const TrieJoinSubstrate& substrate, int threads,
                         const CacheOptions& global_cache) {
  ShardSetup setup;
  setup.cache = global_cache;
  if (threads <= 1) {
    setup.shards.emplace_back();  // whole domain
    return setup;
  }

  const std::vector<int>& participants = substrate.atoms_at_depth()[0];
  const std::vector<Value>* split = nullptr;
  for (const int a : participants) {
    const std::vector<Value>& top = substrate.views()[a].trie->values(0);
    if (split == nullptr || top.size() < split->size()) split = &top;
  }
  CLFTJ_CHECK(split != nullptr);
  // Two-tier views split on the main tier's top level only (the intervals
  // partition the whole value space, so added values land in some shard
  // regardless). A view whose main tier is empty but whose overlay is not
  // offers no boundaries at all — run the one unbounded shard.
  if (split->empty()) {
    setup.shards.emplace_back();
    return setup;
  }
  const std::size_t n = split->size();
  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(threads), n);
  setup.shards.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    const std::size_t begin = s * n / k;
    const std::size_t end = (s + 1) * n / k;
    if (begin == end) continue;  // k <= n makes this unreachable; belt+braces
    FirstVarRange range;
    // Sibling arrays hold distinct sorted values, so consecutive [begin,
    // end) index windows yield disjoint half-open value intervals that
    // jointly cover the atom's whole top level — and therefore every
    // depth-0 intersection key. The first shard is left unbounded below
    // and the last unbounded above for the same reason.
    if (s > 0) range.lo = (*split)[begin];
    if (end < n) {
      range.has_hi = true;
      range.hi = (*split)[end];
    }
    setup.shards.push_back(range);
  }
  if (setup.cache.sharing == CacheOptions::Sharing::kPrivate) {
    if (k > 1 && setup.cache.capacity > 0) {
      setup.cache.capacity =
          std::max<std::uint64_t>(1, setup.cache.capacity / k);
    }
    if (k > 1 && setup.cache.capacity_bytes > 0) {
      setup.cache.capacity_bytes =
          std::max<std::uint64_t>(1, setup.cache.capacity_bytes / k);
    }
  }
  return setup;
}

// Builds the run-wide striped shared cache when the options select it
// (Sharing::kStriped); null otherwise. The manager carries the *global*
// budget — split across its stripes, never across shards — and every
// worker of the run probes and fills it through its RunCache.
template <typename V>
std::unique_ptr<StripedCacheManager<V>> MaybeStriped(const CacheOptions& cache,
                                                     const CachedPlan& plan,
                                                     std::size_t workers) {
  if (cache.sharing != CacheOptions::Sharing::kStriped) return nullptr;
  return std::make_unique<StripedCacheManager<V>>(
      static_cast<int>(plan.cacheable.size()), cache,
      static_cast<int>(workers));
}

// Runs work(0..n-1): shard 0 on the calling thread, the rest on their own
// threads. n == 1 stays entirely thread-free so the single-shard path is
// byte-for-byte the sequential execution.
void RunShards(std::size_t n, const std::function<void(std::size_t)>& work) {
  if (n <= 1) {
    if (n == 1) work(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n - 1);
  for (std::size_t s = 1; s < n; ++s) pool.emplace_back(work, s);
  work(0);
  for (std::thread& t : pool) t.join();
}

// Merges per-shard stats into `into`: counters sum (ExecStats::Merge), but
// cache peaks are re-accumulated as sums because the K private caches
// coexist — the run's true peak footprint is the sum of shard peaks, not
// their max.
void MergeShardStats(ExecStats* into, const std::vector<ExecStats>& shards) {
  std::uint64_t entries_peak = into->cache_entries_peak;
  std::uint64_t bytes_peak = into->cache_bytes_peak;
  for (const ExecStats& s : shards) {
    into->Merge(s);
    entries_peak += s.cache_entries_peak;
    bytes_peak += s.cache_bytes_peak;
  }
  into->cache_entries_peak = entries_peak;
  into->cache_bytes_peak = bytes_peak;
}

// The wall-clock budget left after `elapsed` seconds of this run (plan
// resolution, substrate build), preserving 0 = unlimited. Handing workers
// the *remaining* budget instead of the original one keeps the whole run
// inside a single timeout window — setup and workers do not
// each get a fresh timer. A fully consumed budget becomes a tiny positive
// value so downstream DeadlineCheckers trip at their first stride instead
// of reading 0 as "unlimited".
RunLimits RemainingLimits(const RunLimits& limits, const Timer& timer) {
  RunLimits remaining = limits;
  if (limits.timeout_seconds > 0.0) {
    remaining.timeout_seconds =
        std::max(1e-9, limits.timeout_seconds - timer.Seconds());
  }
  return remaining;
}

// The run's shared stop flag: the caller-provided cancel handle when one
// is set (so an external Trip(kCancelled) stops every worker and the run
// reports the typed reason), else a run-local flag. Typed-status folding —
// OOM dominates, then an external cancel, then timeout — lives in
// MergeRunStatus (engine.cc): secondary "timeouts" of workers that only
// observed a sibling's trip are artifacts of the stop signal, not real
// deadlines.
AbortFlag* SharedAbort(const RunLimits& limits, AbortFlag* local) {
  return limits.cancel != nullptr ? limits.cancel : local;
}

}  // namespace

int ShardedCachedTrieJoin::EffectiveThreads() const {
  if (options_.threads > 0) return options_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

const CachedPlan* ShardedCachedTrieJoin::PlanFor(
    const Query& q, const Database& db,
    std::optional<CachedPlan>* local) const {
  if (options_.prepared_plan != nullptr) return options_.prepared_plan.get();
  return &local->emplace(CachedPlan::Resolve(q, db, options_.plan,
                                             options_.planner, options_.cache));
}

const TrieJoinSubstrate* ShardedCachedTrieJoin::SubstrateFor(
    const Query& q, const Database& db, const CachedPlan& plan,
    std::optional<TrieJoinSubstrate>* local) const {
  if (options_.prepared_substrate != nullptr) {
    CLFTJ_CHECK(options_.prepared_substrate->order() == plan.order);
    return options_.prepared_substrate.get();
  }
  return &local->emplace(q, db, plan.order);
}

RunResult ShardedCachedTrieJoin::Count(const Query& q, const Database& db,
                                       const RunLimits& limits) {
  RunResult result;
  Timer timer;
  std::optional<CachedPlan> local_plan;
  const CachedPlan& plan = *PlanFor(q, db, &local_plan);
  std::optional<TrieJoinSubstrate> local_substrate;
  const TrieJoinSubstrate& substrate =
      *SubstrateFor(q, db, plan, &local_substrate);
  if (!substrate.HasEmptyAtom()) {
    const ShardSetup setup =
        PrepareShards(substrate, EffectiveThreads(), options_.cache);
    const std::vector<FirstVarRange>& shards = setup.shards;
    const RunLimits worker_limits = RemainingLimits(limits, timer);

    AbortFlag local_abort;
    AbortFlag* abort = SharedAbort(limits, &local_abort);
    // An injected persistent cache supersedes a run-owned striped table;
    // the run then never calls AggregatedStats (that merge is only sound on
    // a quiescent table, and an injected cache stays live across runs).
    const auto striped_owned =
        options_.shared_count_cache != nullptr
            ? nullptr
            : MaybeStriped<std::uint64_t>(options_.cache, plan, shards.size());
    StripedCacheManager<std::uint64_t>* striped =
        options_.shared_count_cache != nullptr ? options_.shared_count_cache
                                               : striped_owned.get();
    std::vector<std::uint64_t> counts(shards.size(), 0);
    std::vector<ExecStats> stats(shards.size());
    std::vector<char> timed_out(shards.size(), 0);
    RunShards(shards.size(), [&](std::size_t s) {
      TrieJoinContext ctx(substrate, &stats[s]);
      CountRun run(plan, setup.cache, &ctx, &stats[s], worker_limits,
                   shards[s], abort, striped);
      counts[s] = run.Run();
      timed_out[s] = run.timed_out() ? 1 : 0;
    });

    bool any_timed_out = false;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      result.count += counts[s];
      any_timed_out |= timed_out[s] != 0;
    }
    MergeShardStats(&result.stats, stats);
    // Striped mode: the shared table's counters live in per-stripe stats
    // (workers charge cache traffic to the owning stripe, not to their own
    // sinks) — fold the deterministic stripe-order aggregate in after the
    // join. Worker cache peaks are zero here, so Merge's max-merge passes
    // the summed stripe peaks through unchanged.
    if (striped_owned != nullptr) {
      result.stats.Merge(striped_owned->AggregatedStats());
    }
    result.SetStatus(MergeRunStatus(any_timed_out,
                                    /*any_out_of_memory=*/false, abort));
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

RunResult ShardedCachedTrieJoin::Evaluate(const Query& q, const Database& db,
                                          const TupleCallback& cb,
                                          const RunLimits& limits) {
  RunResult result;
  Timer timer;
  std::optional<CachedPlan> local_plan;
  const CachedPlan& plan = *PlanFor(q, db, &local_plan);
  std::optional<TrieJoinSubstrate> local_substrate;
  const TrieJoinSubstrate& substrate =
      *SubstrateFor(q, db, plan, &local_substrate);
  if (!substrate.HasEmptyAtom()) {
    const ShardSetup setup =
        PrepareShards(substrate, EffectiveThreads(), options_.cache);
    const std::vector<FirstVarRange>& shards = setup.shards;
    const RunLimits worker_limits = RemainingLimits(limits, timer);

    struct ShardOutcome {
      std::vector<Tuple> tuples;
      ExecStats stats;
      bool timed_out = false;
      bool out_of_memory = false;
    };
    AbortFlag local_abort;
    AbortFlag* abort = SharedAbort(limits, &local_abort);
    // Injected persistent cache supersedes a run-owned striped table (see
    // Count).
    const auto striped_owned =
        options_.shared_eval_cache != nullptr
            ? nullptr
            : MaybeStriped<FactorizedSetPtr>(options_.cache, plan,
                                             shards.size());
    StripedCacheManager<FactorizedSetPtr>* striped =
        options_.shared_eval_cache != nullptr ? options_.shared_eval_cache
                                              : striped_owned.get();
    std::atomic<std::uint64_t> materialized{0};  // run-wide, all shards
    std::vector<ShardOutcome> out(shards.size());
    RunShards(shards.size(), [&](std::size_t s) {
      ShardOutcome& o = out[s];
      TrieJoinContext ctx(substrate, &o.stats);
      // Deterministic emission: buffer the shard's tuples, drain in shard
      // order below. Buffered tuples draw on the same run-wide
      // materialization budget as the shards' intermediate entries, so
      // parallel evaluation keeps one bounded footprint overall.
      const TupleCallback buffer = [&o, &worker_limits, abort,
                                    &materialized](const Tuple& t) {
        if (worker_limits.max_intermediate_tuples > 0 &&
            materialized.fetch_add(1, std::memory_order_relaxed) + 1 >
                worker_limits.max_intermediate_tuples) {
          if (!o.out_of_memory) {
            o.out_of_memory = true;
            abort->Trip(RunStatus::kOutOfMemory);
          }
          return;
        }
        o.tuples.push_back(t);
      };
      EvalRun run(plan, setup.cache, &ctx, &o.stats, buffer, worker_limits,
                  /*expand_at_leaf=*/true, shards[s], abort, &materialized,
                  striped);
      run.Run();
      o.timed_out = run.timed_out();
      o.out_of_memory |= run.out_of_memory();
    });

    bool any_timed_out = false;
    bool any_oom = false;
    std::vector<ExecStats> stats;
    stats.reserve(out.size());
    for (ShardOutcome& o : out) {
      any_timed_out |= o.timed_out;
      any_oom |= o.out_of_memory;
      stats.push_back(o.stats);
    }
    MergeShardStats(&result.stats, stats);
    if (striped_owned != nullptr) {
      result.stats.Merge(striped_owned->AggregatedStats());
    }
    result.SetStatus(MergeRunStatus(any_timed_out, any_oom, abort));
    // Drain buffers in shard order — ascending first-variable intervals, so
    // the stream is the same for every run at this thread count (its
    // interleaving may differ from the single-thread stream; see the class
    // comment). On a failed run this is a partial prefix-per-shard result,
    // mirroring the partial emission of a timed-out single-thread run.
    for (ShardOutcome& o : out) {
      for (Tuple& t : o.tuples) {
        ++result.count;
        cb(t);
      }
      o.tuples.clear();
    }
  }
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

std::optional<FactorizedQueryResult> ShardedCachedTrieJoin::EvaluateFactorized(
    const Query& q, const Database& db, const RunLimits& limits,
    RunResult* run) {
  CLFTJ_CHECK(run != nullptr);
  *run = RunResult();
  Timer timer;
  // A prepared plan is shared and immutable — copy it before the maintain
  // fill mutates it. The shared striped caches are NOT consulted here:
  // maintain-everything runs build different factorized sets than
  // plan-default runs, so their payloads must not mix (a run-owned striped
  // table per MaybeStriped is still fine — it dies with the run).
  auto plan = options_.prepared_plan != nullptr
                  ? std::make_shared<CachedPlan>(*options_.prepared_plan)
                  : std::make_shared<CachedPlan>(CachedPlan::Resolve(
                        q, db, options_.plan, options_.planner,
                        options_.cache));
  // Intermediate sets must be collected everywhere so the root's set is the
  // complete (factorized) result. Done before workers start: the plan is
  // immutable once shared.
  std::fill(plan->maintain.begin(), plan->maintain.end(), true);
  std::optional<TrieJoinSubstrate> local_substrate;
  const TrieJoinSubstrate& substrate =
      *SubstrateFor(q, db, *plan, &local_substrate);

  auto root = std::make_shared<FactorizedSet>();
  root->node = plan->root;
  if (!substrate.HasEmptyAtom()) {
    const ShardSetup setup =
        PrepareShards(substrate, EffectiveThreads(), options_.cache);
    const std::vector<FirstVarRange>& shards = setup.shards;
    const RunLimits worker_limits = RemainingLimits(limits, timer);

    struct ShardOutcome {
      std::shared_ptr<FactorizedSet> root;
      ExecStats stats;
      bool timed_out = false;
      bool out_of_memory = false;
    };
    AbortFlag local_abort;
    AbortFlag* abort = SharedAbort(limits, &local_abort);
    const auto striped =
        MaybeStriped<FactorizedSetPtr>(options_.cache, *plan, shards.size());
    std::atomic<std::uint64_t> materialized{0};  // run-wide, all shards
    std::vector<ShardOutcome> out(shards.size());
    const TupleCallback noop = [](const Tuple&) {};
    RunShards(shards.size(), [&](std::size_t s) {
      ShardOutcome& o = out[s];
      TrieJoinContext ctx(substrate, &o.stats);
      EvalRun eval(*plan, setup.cache, &ctx, &o.stats, noop, worker_limits,
                   /*expand_at_leaf=*/false, shards[s], abort,
                   &materialized, striped.get());
      eval.Run();
      o.timed_out = eval.timed_out();
      o.out_of_memory = eval.out_of_memory();
      if (!o.timed_out && !o.out_of_memory) o.root = eval.TakeRootSet();
    });

    bool any_timed_out = false;
    bool any_oom = false;
    std::vector<ExecStats> stats;
    stats.reserve(out.size());
    for (const ShardOutcome& o : out) {
      any_timed_out |= o.timed_out;
      any_oom |= o.out_of_memory;
      stats.push_back(o.stats);
    }
    MergeShardStats(&run->stats, stats);
    if (striped != nullptr) run->stats.Merge(striped->AggregatedStats());
    run->SetStatus(MergeRunStatus(any_timed_out, any_oom, abort));
    if (run->ok()) {
      // Concatenate shard roots in shard order: ascending contiguous
      // first-variable intervals reproduce the sequential entry order.
      std::size_t total = 0;
      for (const ShardOutcome& o : out) total += o.root->entries.size();
      root->entries.reserve(total);
      for (ShardOutcome& o : out) {
        std::move(o.root->entries.begin(), o.root->entries.end(),
                  std::back_inserter(root->entries));
        o.root = nullptr;
      }
    }
  }
  run->seconds = timer.Seconds();
  if (!run->ok()) return std::nullopt;
  run->count = FactorizedCount(*root);
  run->stats.output_tuples = run->count;
  return FactorizedQueryResult(std::move(plan),
                               FactorizedSetPtr(std::move(root)));
}

}  // namespace clftj
