#ifndef CLFTJ_ENGINE_SUBSTRATE_REGISTRY_H_
#define CLFTJ_ENGINE_SUBSTRATE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "lftj/trie_join.h"
#include "query/query.h"
#include "trie/trie.h"
#include "util/stats.h"

namespace clftj {

/// Long-lived store of atom-view tries, shared across queries and across
/// concurrent workers — tries stop being per-request throwaways. Entries
/// are keyed on (database generation, relation + its compaction count, term
/// pattern, level permutation): everything the trie's *contents* depend on,
/// with query variable identities erased. Two different queries whose atoms
/// project the same relation the same way (same constants, same
/// repeated-variable pattern, same level ordering) share one immutable
/// Trie; the query-specific parts of an AtomView (level_vars) are assembled
/// per Acquire call, which is O(arity), not O(data).
///
/// Incremental maintenance (docs/incremental.md): the retained trie is
/// built from the relation's *main tier*, and each entry additionally
/// carries the small delta-overlay tries for the relation's current
/// delta_version. An ApplyDelta therefore does not rebuild anything big —
/// the next Acquire reuses the main trie (charged as a substrate reuse) and
/// patches only the overlay, O(delta) work. A compaction replaces the main
/// tier, which shows up as a changed compaction count in the key: the entry
/// goes cold and is swept on the next minor-version turnover.
///
/// Concurrency: lookups take a shared lock and copy out the shared_ptrs, so
/// the read-mostly steady state never serializes workers; builds happen
/// outside any lock and are published one at a time under the exclusive
/// lock (a lost race adopts the winner's tries). A bulk data change bumps
/// the database generation, and the next Acquire drops every stale entry.
///
/// Budget: capacity_bytes bounds the *retained* bytes (Trie::MemoryBytes
/// sums, overlays included). Over budget, least-recently-used entries are
/// dropped from the registry; outstanding shared_ptrs keep evicted tries
/// alive until their last user finishes, so eviction never invalidates a
/// running query.
class SubstrateRegistry {
 public:
  struct Options {
    /// Byte budget for retained tries; 0 = unbounded.
    std::uint64_t capacity_bytes = 0;
  };

  SubstrateRegistry() : SubstrateRegistry(Options{}) {}
  explicit SubstrateRegistry(Options options) : options_(options) {}

  /// Builds (or reuses) every atom view of `q` over `db` for the variable
  /// order `order` and assembles them into a fresh substrate. Charges
  /// substrate_builds / substrate_reuses / substrate_build_ns to *stats
  /// (may be null); a main-tier reuse whose overlay is patched counts as a
  /// reuse, with the overlay build time in substrate_build_ns. Throws
  /// whatever the trie build throws (e.g. injected bad_alloc);
  /// already-published views survive a mid-build failure.
  std::shared_ptr<const TrieJoinSubstrate> Acquire(const Query& q,
                                                   const Database& db,
                                                   const std::vector<VarId>& order,
                                                   ExecStats* stats);

  /// Retained trie bytes / entry count right now (observability, tests).
  std::uint64_t CachedBytes() const;
  std::size_t NumTries() const;

  /// RAII pin for batch admission (docs/serving.md "Batch admission"): while
  /// any PinScope is alive, the byte-budget LRU eviction in Publish is
  /// suspended, so every (relation, pattern, permutation) view a batch
  /// acquires stays resident — and is therefore built at most once — for
  /// the whole batch, even when the batch's working set transiently exceeds
  /// capacity_bytes. The last scope to unwind runs the deferred eviction
  /// sweep. Nestable; cheap (one counter under the exclusive lock).
  class PinScope {
   public:
    explicit PinScope(SubstrateRegistry& registry) : registry_(&registry) {
      registry_->BeginPin();
    }
    ~PinScope() {
      if (registry_ != nullptr) registry_->EndPin();
    }
    PinScope(PinScope&& other) noexcept : registry_(other.registry_) {
      other.registry_ = nullptr;
    }
    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;
    PinScope& operator=(PinScope&&) = delete;

   private:
    SubstrateRegistry* registry_;
  };

 private:
  void BeginPin();
  void EndPin();

  /// Byte-budget LRU sweep; caller holds the exclusive lock. `keep` names
  /// the key that must survive (the entry just published), empty = none.
  void EvictOverBudget(const std::string& keep);

  struct Entry {
    std::string relation;
    std::uint64_t compactions = 0;    // main-tier epoch the key was cut at
    std::shared_ptr<const Trie> trie;  // the relation's main tier
    std::shared_ptr<const Trie> delta_add;  // overlay for delta_version
    std::shared_ptr<const Trie> delta_del;
    std::uint64_t delta_version = 0;
    bool non_empty = false;  // of the merged view
    std::uint64_t bytes = 0;  // main + overlay
    std::atomic<std::uint64_t> tick{0};
  };

  /// Inserts (or adopts, or overlay-patches) the entry for `key` under the
  /// exclusive lock and applies the byte budget. On return *view holds the
  /// retained tries.
  void Publish(const std::string& key, const Relation& rel, AtomView* view);

  static std::uint64_t OverlayBytes(const AtomView& view);

  const Options options_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> tries_;
  int pin_depth_ = 0;  // live PinScopes; >0 suspends budget eviction
  std::uint64_t bytes_ = 0;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> minor_{0};
};

}  // namespace clftj

#endif  // CLFTJ_ENGINE_SUBSTRATE_REGISTRY_H_
