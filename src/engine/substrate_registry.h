#ifndef CLFTJ_ENGINE_SUBSTRATE_REGISTRY_H_
#define CLFTJ_ENGINE_SUBSTRATE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/database.h"
#include "lftj/trie_join.h"
#include "query/query.h"
#include "trie/trie.h"
#include "util/stats.h"

namespace clftj {

/// Long-lived store of atom-view tries, shared across queries and across
/// concurrent workers — tries stop being per-request throwaways. Entries
/// are keyed on (database generation, relation, term pattern, level
/// permutation): everything the trie's *contents* depend on, with query
/// variable identities erased. Two different queries whose atoms project
/// the same relation the same way (same constants, same repeated-variable
/// pattern, same level ordering) share one immutable Trie; the
/// query-specific parts of an AtomView (level_vars) are assembled per
/// Acquire call, which is O(arity), not O(data).
///
/// Concurrency: lookups take a shared lock and copy out the shared_ptr, so
/// the read-mostly steady state never serializes workers; builds happen
/// outside any lock and are published one at a time under the exclusive
/// lock (a lost race adopts the winner's trie). A data change bumps the
/// database generation, and the next Acquire drops every stale entry.
///
/// Budget: capacity_bytes bounds the *retained* bytes (Trie::MemoryBytes
/// sums). Over budget, least-recently-used entries are dropped from the
/// registry; outstanding shared_ptrs keep evicted tries alive until their
/// last user finishes, so eviction never invalidates a running query.
class SubstrateRegistry {
 public:
  struct Options {
    /// Byte budget for retained tries; 0 = unbounded.
    std::uint64_t capacity_bytes = 0;
  };

  SubstrateRegistry() : SubstrateRegistry(Options{}) {}
  explicit SubstrateRegistry(Options options) : options_(options) {}

  /// Builds (or reuses) every atom view of `q` over `db` for the variable
  /// order `order` and assembles them into a fresh substrate. Charges
  /// substrate_builds / substrate_reuses / substrate_build_ns to *stats
  /// (may be null). Throws whatever the trie build throws (e.g. injected
  /// bad_alloc); already-published views survive a mid-build failure.
  std::shared_ptr<const TrieJoinSubstrate> Acquire(const Query& q,
                                                   const Database& db,
                                                   const std::vector<VarId>& order,
                                                   ExecStats* stats);

  /// Retained trie bytes / entry count right now (observability, tests).
  std::uint64_t CachedBytes() const;
  std::size_t NumTries() const;

 private:
  struct Entry {
    std::shared_ptr<const Trie> trie;
    bool non_empty = false;
    std::uint64_t bytes = 0;
    std::atomic<std::uint64_t> tick{0};
  };

  /// Inserts (or adopts) an entry under the exclusive lock and applies the
  /// byte budget. Returns the retained trie.
  std::shared_ptr<const Trie> Publish(const std::string& key,
                                      std::shared_ptr<const Trie> trie,
                                      bool non_empty);

  const Options options_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Entry>> tries_;
  std::uint64_t bytes_ = 0;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace clftj

#endif  // CLFTJ_ENGINE_SUBSTRATE_REGISTRY_H_
