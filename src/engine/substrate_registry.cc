#include "engine/substrate_registry.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"
#include "util/timer.h"

namespace clftj {

namespace {

// The trie of an atom view depends on the relation's data (pinned by the
// generation plus the relation's main-tier epoch — its compaction count),
// which term positions carry which constants, the repeated-variable
// equality pattern, and the level -> term-position mapping — not on the
// query's variable *identities*. The key encodes exactly that: variables as
// indices into the atom's distinct-variable list (first-occurrence order),
// levels as those indices in trie-level order.
std::string ViewKey(std::uint64_t generation, std::uint64_t compactions,
                    const Atom& atom, const std::vector<int>& var_rank) {
  const std::vector<VarId> distinct = atom.Vars();
  const auto local_index = [&distinct](VarId v) {
    for (std::size_t k = 0; k < distinct.size(); ++k) {
      if (distinct[k] == v) return k;
    }
    CLFTJ_CHECK(false);
    return std::size_t{0};
  };
  std::string key = std::to_string(generation);
  key += '#';
  key += std::to_string(compactions);
  key += '|';
  key += atom.relation;
  key += '|';
  for (const Term& term : atom.terms) {
    if (term.is_variable) {
      key += 'v';
      key += std::to_string(local_index(term.var));
    } else {
      key += 'c';
      key += std::to_string(term.constant);
    }
    key += '.';
  }
  key += '|';
  std::vector<VarId> levels = distinct;
  std::sort(levels.begin(), levels.end(), [&var_rank](VarId a, VarId b) {
    return var_rank[a] < var_rank[b];
  });
  for (const VarId v : levels) {
    key += std::to_string(local_index(v));
    key += '.';
  }
  return key;
}

std::vector<VarId> LevelVars(const Atom& atom,
                             const std::vector<int>& var_rank) {
  std::vector<VarId> levels = atom.Vars();
  std::sort(levels.begin(), levels.end(), [&var_rank](VarId a, VarId b) {
    return var_rank[a] < var_rank[b];
  });
  return levels;
}

}  // namespace

std::uint64_t SubstrateRegistry::OverlayBytes(const AtomView& view) {
  std::uint64_t bytes = 0;
  if (view.delta_add != nullptr) bytes += view.delta_add->MemoryBytes();
  if (view.delta_del != nullptr) bytes += view.delta_del->MemoryBytes();
  return bytes;
}

std::shared_ptr<const TrieJoinSubstrate> SubstrateRegistry::Acquire(
    const Query& q, const Database& db, const std::vector<VarId>& order,
    ExecStats* stats) {
  // Generation turnover: drop every stale entry in one sweep. The keys
  // embed the generation too, so a missed sweep is a leak, never a wrong
  // result.
  const std::uint64_t generation = db.generation();
  if (generation_.load(std::memory_order_acquire) != generation) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (generation_.load(std::memory_order_relaxed) != generation) {
      tries_.clear();
      bytes_ = 0;
      generation_.store(generation, std::memory_order_release);
    }
  }
  // Minor-version turnover: entries whose main-tier epoch was replaced by a
  // compaction can never be hit again (their key embeds the old compaction
  // count) — drop them now instead of waiting for the byte budget. Entries
  // on the live epoch survive; only their overlays go stale, and those are
  // patched lazily on Acquire.
  const std::uint64_t minor = db.minor_version();
  if (minor_.load(std::memory_order_acquire) != minor) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (minor_.load(std::memory_order_relaxed) != minor) {
      for (auto it = tries_.begin(); it != tries_.end();) {
        const Relation* rel = db.Find(it->second->relation);
        if (rel == nullptr || rel->compactions() != it->second->compactions) {
          bytes_ -= it->second->bytes;
          it = tries_.erase(it);
        } else {
          ++it;
        }
      }
      minor_.store(minor, std::memory_order_release);
    }
  }

  std::vector<int> var_rank(q.num_vars(), kNone);
  for (int d = 0; d < static_cast<int>(order.size()); ++d) {
    var_rank[order[d]] = d;
  }

  std::vector<AtomView> views;
  views.reserve(q.num_atoms());
  for (const Atom& atom : q.atoms()) {
    const Relation& rel = db.Get(atom.relation);
    const std::string key =
        ViewKey(generation, rel.compactions(), atom, var_rank);
    std::shared_ptr<const Trie> reused_main;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = tries_.find(key);
      if (it != tries_.end()) {
        Entry& entry = *it->second;
        entry.tick.store(ticks_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
        if (entry.delta_version == rel.delta_version()) {
          AtomView view;
          view.level_vars = LevelVars(atom, var_rank);
          view.trie = entry.trie;
          view.delta_add = entry.delta_add;
          view.delta_del = entry.delta_del;
          view.non_empty = entry.non_empty;
          views.push_back(std::move(view));
          if (stats != nullptr) ++stats->substrate_reuses;
          continue;
        }
        // Main tier still current; only the overlay is stale. Keep the big
        // trie, rebuild the small one below.
        reused_main = entry.trie;
      }
    }
    // Cold or overlay-stale view: build outside any lock (can be seconds
    // of work and may throw), publish under the exclusive lock. Views
    // published before a later atom's build fails stay cached — a retried
    // request only redoes the failed build.
    Timer timer;
    AtomView view;
    if (reused_main != nullptr) {
      view.level_vars = LevelVars(atom, var_rank);
      view.trie = std::move(reused_main);
      AttachDeltaOverlay(rel, atom, &view);
      if (stats != nullptr) {
        // The expensive half was reused; only the O(delta) overlay was
        // rebuilt, charged to build time but not as a substrate build.
        ++stats->substrate_reuses;
        stats->substrate_build_ns +=
            static_cast<std::uint64_t>(timer.Seconds() * 1e9);
      }
    } else {
      view = BuildMainAtomView(rel, atom, var_rank);
      AttachDeltaOverlay(rel, atom, &view);
      if (stats != nullptr) {
        ++stats->substrate_builds;
        stats->substrate_build_ns +=
            static_cast<std::uint64_t>(timer.Seconds() * 1e9);
      }
    }
    Publish(key, rel, &view);
    views.push_back(std::move(view));
  }
  return std::make_shared<TrieJoinSubstrate>(q, order, std::move(views));
}

void SubstrateRegistry::Publish(const std::string& key, const Relation& rel,
                                AtomView* view) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = tries_.find(key);
  if (it != tries_.end()) {
    Entry& entry = *it->second;
    if (entry.delta_version == rel.delta_version()) {
      // Lost a build race: adopt the published tries so concurrent queries
      // converge on one instance and the duplicate is freed.
      view->trie = entry.trie;
      view->delta_add = entry.delta_add;
      view->delta_del = entry.delta_del;
      view->non_empty = entry.non_empty;
      return;
    }
    // Patch the stale overlay in place; the main trie is shared already.
    bytes_ -= entry.bytes;
    view->trie = entry.trie;
    entry.delta_add = view->delta_add;
    entry.delta_del = view->delta_del;
    entry.delta_version = rel.delta_version();
    entry.non_empty = view->non_empty;
    entry.bytes = entry.trie->MemoryBytes() + OverlayBytes(*view);
    bytes_ += entry.bytes;
    return;
  }
  auto entry = std::make_unique<Entry>();
  entry->relation = rel.name();
  entry->compactions = rel.compactions();
  entry->trie = view->trie;
  entry->delta_add = view->delta_add;
  entry->delta_del = view->delta_del;
  entry->delta_version = rel.delta_version();
  entry->non_empty = view->non_empty;
  entry->bytes = entry->trie->MemoryBytes() + OverlayBytes(*view);
  entry->tick.store(ticks_.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  bytes_ += entry->bytes;
  tries_.emplace(key, std::move(entry));

  // LRU byte budget: drop the stalest entries (never the one just
  // published) until within budget. Suspended while a batch holds a
  // PinScope — pinned working sets must stay resident so a batch builds
  // each view at most once; the last EndPin runs the deferred sweep.
  if (pin_depth_ == 0) EvictOverBudget(key);
}

void SubstrateRegistry::EvictOverBudget(const std::string& keep) {
  // Evicted tries stay alive through any outstanding shared_ptrs, so
  // running queries are unaffected.
  while (options_.capacity_bytes > 0 && bytes_ > options_.capacity_bytes &&
         tries_.size() > 1) {
    auto victim = tries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto entry_it = tries_.begin(); entry_it != tries_.end(); ++entry_it) {
      if (entry_it->first == keep) continue;
      const std::uint64_t tick =
          entry_it->second->tick.load(std::memory_order_relaxed);
      if (tick < oldest) {
        oldest = tick;
        victim = entry_it;
      }
    }
    if (victim == tries_.end()) break;
    bytes_ -= victim->second->bytes;
    tries_.erase(victim);
  }
}

void SubstrateRegistry::BeginPin() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ++pin_depth_;
}

void SubstrateRegistry::EndPin() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CLFTJ_CHECK(pin_depth_ > 0);
  if (--pin_depth_ == 0) EvictOverBudget(std::string());
}

std::uint64_t SubstrateRegistry::CachedBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return bytes_;
}

std::size_t SubstrateRegistry::NumTries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tries_.size();
}

}  // namespace clftj
