#include "engine/substrate_registry.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"
#include "util/timer.h"

namespace clftj {

namespace {

// The trie of an atom view depends on the relation's data, which term
// positions carry which constants, the repeated-variable equality pattern,
// and the level -> term-position mapping — not on the query's variable
// *identities*. The key encodes exactly that: variables as indices into the
// atom's distinct-variable list (first-occurrence order), levels as those
// indices in trie-level order.
std::string ViewKey(std::uint64_t generation, const Atom& atom,
                    const std::vector<int>& var_rank) {
  const std::vector<VarId> distinct = atom.Vars();
  const auto local_index = [&distinct](VarId v) {
    for (std::size_t k = 0; k < distinct.size(); ++k) {
      if (distinct[k] == v) return k;
    }
    CLFTJ_CHECK(false);
    return std::size_t{0};
  };
  std::string key = std::to_string(generation);
  key += '|';
  key += atom.relation;
  key += '|';
  for (const Term& term : atom.terms) {
    if (term.is_variable) {
      key += 'v';
      key += std::to_string(local_index(term.var));
    } else {
      key += 'c';
      key += std::to_string(term.constant);
    }
    key += '.';
  }
  key += '|';
  std::vector<VarId> levels = distinct;
  std::sort(levels.begin(), levels.end(), [&var_rank](VarId a, VarId b) {
    return var_rank[a] < var_rank[b];
  });
  for (const VarId v : levels) {
    key += std::to_string(local_index(v));
    key += '.';
  }
  return key;
}

std::vector<VarId> LevelVars(const Atom& atom,
                             const std::vector<int>& var_rank) {
  std::vector<VarId> levels = atom.Vars();
  std::sort(levels.begin(), levels.end(), [&var_rank](VarId a, VarId b) {
    return var_rank[a] < var_rank[b];
  });
  return levels;
}

}  // namespace

std::shared_ptr<const TrieJoinSubstrate> SubstrateRegistry::Acquire(
    const Query& q, const Database& db, const std::vector<VarId>& order,
    ExecStats* stats) {
  // Generation turnover: drop every stale entry in one sweep. The keys
  // embed the generation too, so a missed sweep is a leak, never a wrong
  // result.
  const std::uint64_t generation = db.generation();
  if (generation_.load(std::memory_order_acquire) != generation) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (generation_.load(std::memory_order_relaxed) != generation) {
      tries_.clear();
      bytes_ = 0;
      generation_.store(generation, std::memory_order_release);
    }
  }

  std::vector<int> var_rank(q.num_vars(), kNone);
  for (int d = 0; d < static_cast<int>(order.size()); ++d) {
    var_rank[order[d]] = d;
  }

  std::vector<AtomView> views;
  views.reserve(q.num_atoms());
  for (const Atom& atom : q.atoms()) {
    const std::string key = ViewKey(generation, atom, var_rank);
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      const auto it = tries_.find(key);
      if (it != tries_.end()) {
        Entry& entry = *it->second;
        entry.tick.store(ticks_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
        AtomView view;
        view.level_vars = LevelVars(atom, var_rank);
        view.trie = entry.trie;
        view.non_empty = entry.non_empty;
        views.push_back(std::move(view));
        if (stats != nullptr) ++stats->substrate_reuses;
        continue;
      }
    }
    // Cold view: build outside any lock (can be seconds of work and may
    // throw), publish under the exclusive lock. Views published before a
    // later atom's build fails stay cached — a retried request only redoes
    // the failed build.
    Timer timer;
    AtomView view = BuildAtomView(db.Get(atom.relation), atom, var_rank);
    if (stats != nullptr) {
      ++stats->substrate_builds;
      stats->substrate_build_ns +=
          static_cast<std::uint64_t>(timer.Seconds() * 1e9);
    }
    view.trie = Publish(key, std::move(view.trie), view.non_empty);
    views.push_back(std::move(view));
  }
  return std::make_shared<TrieJoinSubstrate>(q, order, std::move(views));
}

std::shared_ptr<const Trie> SubstrateRegistry::Publish(
    const std::string& key, std::shared_ptr<const Trie> trie, bool non_empty) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = tries_.find(key);
  if (it != tries_.end()) {
    // Lost a build race: adopt the published trie so concurrent queries
    // converge on one instance and the duplicate is freed.
    return it->second->trie;
  }
  auto entry = std::make_unique<Entry>();
  entry->trie = std::move(trie);
  entry->non_empty = non_empty;
  entry->bytes = entry->trie->MemoryBytes();
  entry->tick.store(ticks_.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  bytes_ += entry->bytes;
  std::shared_ptr<const Trie> retained = entry->trie;
  tries_.emplace(key, std::move(entry));

  // LRU byte budget: drop the stalest entries (never the one just
  // published) until within budget. Evicted tries stay alive through any
  // outstanding shared_ptrs, so running queries are unaffected.
  while (options_.capacity_bytes > 0 && bytes_ > options_.capacity_bytes &&
         tries_.size() > 1) {
    auto victim = tries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto entry_it = tries_.begin(); entry_it != tries_.end(); ++entry_it) {
      if (entry_it->first == key) continue;
      const std::uint64_t tick =
          entry_it->second->tick.load(std::memory_order_relaxed);
      if (tick < oldest) {
        oldest = tick;
        victim = entry_it;
      }
    }
    if (victim == tries_.end()) break;
    bytes_ -= victim->second->bytes;
    tries_.erase(victim);
  }
  return retained;
}

std::uint64_t SubstrateRegistry::CachedBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return bytes_;
}

std::size_t SubstrateRegistry::NumTries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tries_.size();
}

}  // namespace clftj
