#ifndef CLFTJ_ENGINE_PRINTER_H_
#define CLFTJ_ENGINE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

#include "clftj/factorized.h"
#include "data/database.h"
#include "query/query.h"
#include "util/common.h"

namespace clftj {

/// Infers the logical type of every query variable from the columns it is
/// bound to: variable v is kString iff any atom places it at a
/// string-typed column position of its relation (a variable joining a
/// string column against an int column is almost certainly a modelling
/// error, but rendering the decoded form loses nothing, so string wins).
/// This is the output boundary's view — engines never consult it.
std::vector<ColumnType> VariableTypes(const Query& q, const Database& db);

/// Renders one value: the decimal integer for kInt, the decoded dictionary
/// string for kString (dict must be non-null and own the id then).
std::string FormatValue(Value v, ColumnType type, const Dictionary* dict);

/// Decodes and prints result tuples of a query: tab-separated fields, one
/// tuple per line, string-typed variables rendered through the database's
/// dictionary. This is where dictionary ids leave the Value domain —
/// engines emit raw Values and know nothing of strings.
class TuplePrinter {
 public:
  /// Captures the variable types and the dictionary; q/db must outlive the
  /// printer.
  TuplePrinter(const Query& q, const Database& db, std::ostream& out);

  /// Prints one tuple (indexed by VarId, size num_vars) as a line.
  void Print(const Tuple& t);

  const std::vector<ColumnType>& types() const { return types_; }

 private:
  std::ostream& out_;
  std::vector<ColumnType> types_;
  const Dictionary* dict_;
};

/// Enumerates a factorized result and prints every flat tuple decoded, via
/// TuplePrinter. The factorized set itself stays in the Value domain; the
/// decode happens per emitted tuple at this boundary.
void PrintFactorized(const FactorizedQueryResult& result, const Query& q,
                     const Database& db, std::ostream& out);

}  // namespace clftj

#endif  // CLFTJ_ENGINE_PRINTER_H_
