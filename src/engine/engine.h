#ifndef CLFTJ_ENGINE_ENGINE_H_
#define CLFTJ_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clftj/cache.h"
#include "data/database.h"
#include "query/query.h"
#include "util/stats.h"
#include "util/timer.h"

namespace clftj {

/// Resource limits for one engine run, mirroring the paper's testing
/// protocol (10-hour timeout; 64 GB materialization budget) at laptop scale.
struct RunLimits {
  /// Wall-clock budget in seconds; 0 means unlimited.
  double timeout_seconds = 0.0;
  /// Budget on materialized intermediate/result tuples (YTD's weakness in
  /// the paper's evaluation figures); 0 means unlimited.
  std::uint64_t max_intermediate_tuples = 0;
};

/// Outcome of one engine run. `count` is the number of result tuples (for
/// Count) or the number of tuples emitted (for Evaluate). A run that hits a
/// limit reports partial stats with timed_out/out_of_memory set.
struct RunResult {
  std::uint64_t count = 0;
  bool timed_out = false;
  bool out_of_memory = false;
  double seconds = 0.0;
  ExecStats stats;

  bool ok() const { return !timed_out && !out_of_memory; }
};

/// Receives one full result tuple, indexed by VarId (size = num_vars()).
using TupleCallback = std::function<void(const Tuple&)>;

/// Uniform interface over all join algorithms in the repository.
class JoinEngine {
 public:
  virtual ~JoinEngine() = default;

  /// Short identifier, e.g. "LFTJ", "CLFTJ", "YTD".
  virtual std::string name() const = 0;

  /// Computes |q(D)|.
  virtual RunResult Count(const Query& q, const Database& db,
                          const RunLimits& limits) = 0;

  /// Computes q(D), invoking `cb` once per result tuple.
  virtual RunResult Evaluate(const Query& q, const Database& db,
                             const TupleCallback& cb,
                             const RunLimits& limits) = 0;
};

/// One stop signal shared by every worker of a parallel run: the first
/// worker to hit a limit (deadline, materialization budget) trips the flag
/// and all other workers observe it at their next deadline-check stride.
/// Relaxed ordering suffices — the flag carries no data, only "stop soon".
class AbortFlag {
 public:
  void Trip() { tripped_.store(true, std::memory_order_relaxed); }
  bool Tripped() const { return tripped_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> tripped_{false};
};

/// Cheap cooperative deadline: Expired() samples the clock only once every
/// `kStride` calls so it can sit inside the join's innermost loop. With a
/// shared AbortFlag attached, one checker's expiry trips the flag and every
/// other checker on the flag reports expiry within its own stride — K
/// workers pay one timer discovery total, not K.
class DeadlineChecker {
 public:
  explicit DeadlineChecker(double timeout_seconds, AbortFlag* shared = nullptr)
      : timeout_seconds_(timeout_seconds), shared_(shared) {}

  bool Expired() {
    if (expired_) return true;
    if (timeout_seconds_ <= 0.0 && shared_ == nullptr) return false;
    if ((++calls_ & (kStride - 1)) != 0) return false;
    if (shared_ != nullptr && shared_->Tripped()) {
      expired_ = true;
      return true;
    }
    if (timeout_seconds_ > 0.0 && timer_.Seconds() > timeout_seconds_) {
      expired_ = true;
      if (shared_ != nullptr) shared_->Trip();
    }
    return expired_;
  }

 private:
  static constexpr std::uint64_t kStride = 1 << 14;
  double timeout_seconds_;
  AbortFlag* shared_;
  Timer timer_;
  std::uint64_t calls_ = 0;
  bool expired_ = false;
};

/// Names accepted by MakeEngine, in display order.
std::vector<std::string> EngineNames();

/// Cross-engine construction knobs for MakeEngine. Engines that have no
/// use for a knob ignore it (only CLFTJ consumes `cache`, only CLFTJ-P
/// consumes `threads` — including `cache.sharing`, which selects between
/// private capacity/K shard caches and the striped shared table).
struct EngineOptions {
  /// CLFTJ-P worker count; <= 0 means one per hardware thread.
  int threads = 0;
  /// CLFTJ / CLFTJ-P cache configuration (admission, capacity, eviction,
  /// sharing). Defaults to the unbounded always-admit cache.
  CacheOptions cache;
};

/// Factory over all engines: "LFTJ", "CLFTJ", "CLFTJ-P" (parallel sharded
/// CLFTJ, one worker per hardware thread by default), "YTD", "PairwiseHJ"
/// (the PostgreSQL stand-in), "GenericJoin" (the SYS1 stand-in),
/// "NestedLoop" (the reference). Returns nullptr for an unknown name.
/// Engines built here use their default planning policies.
std::unique_ptr<JoinEngine> MakeEngine(const std::string& name);

/// As above, with explicit thread/cache configuration.
std::unique_ptr<JoinEngine> MakeEngine(const std::string& name,
                                       const EngineOptions& options);

}  // namespace clftj

#endif  // CLFTJ_ENGINE_ENGINE_H_
