#ifndef CLFTJ_ENGINE_ENGINE_H_
#define CLFTJ_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "clftj/cache.h"
#include "data/database.h"
#include "query/query.h"
#include "util/fault.h"
#include "util/stats.h"
#include "util/timer.h"

namespace clftj {

// Reuse-injection handle types. Forward-declared (with the FactorizedSetPtr
// alias duplicated from clftj/factorized.h) because lftj/trie_join.h includes
// this header — pulling the full definitions here would be circular.
struct CachedPlan;
class TrieJoinSubstrate;
struct FactorizedSet;
using FactorizedSetPtr = std::shared_ptr<const FactorizedSet>;

/// Typed outcome of one run — the failure taxonomy every engine and the
/// query service report through. The paper's evaluation protocol already
/// treats timeouts and materialization budgets as first-class outcomes;
/// serving concurrent queries adds admission (kShed), cooperative
/// cancellation (kCancelled), input rejection (kBadQuery) and a catch-all
/// for faults the system survived but could not classify (kInternal).
enum class RunStatus : std::uint8_t {
  kOk = 0,
  /// The wall-clock budget (RunLimits::timeout_seconds) expired.
  kTimeout = 1,
  /// The materialization budget (RunLimits::max_intermediate_tuples) was
  /// exceeded. Terminal: retrying with the same budget fails the same way.
  kOutOfMemory = 2,
  /// Admission control refused the request (queue depth or aggregate byte
  /// budget exceeded). Retryable after the server's retry-after hint.
  kShed = 3,
  /// The run was cancelled from outside (service drain, client gone).
  kCancelled = 4,
  /// The request never ran: unparsable query, unknown relation, arity
  /// mismatch, corrupted request bytes. Terminal.
  kBadQuery = 5,
  /// The run aborted on an unexpected but survived fault (allocation
  /// failure, injected fault, unclassified exception). Retryable: the
  /// fault may be transient.
  kInternal = 6,
};

/// Canonical upper-case wire/display name, e.g. "TIMEOUT". Stable: the
/// line protocol and CLI diagnostics are built from these.
const char* RunStatusName(RunStatus status);

/// Parses a RunStatusName back; false if `text` names no status.
bool ParseRunStatus(const std::string& text, RunStatus* status);

/// Whether a client should retry a request that ended with this status.
/// Retryable: kShed (admission pressure passes) and kInternal (the fault
/// may be transient). Terminal: kTimeout and kOutOfMemory (budget-driven —
/// the same budget fails the same way), kBadQuery, kCancelled.
bool IsRetryable(RunStatus status);

class AbortFlag;

/// Resource limits for one engine run, mirroring the paper's testing
/// protocol (10-hour timeout; 64 GB materialization budget) at laptop scale.
struct RunLimits {
  /// Wall-clock budget in seconds; 0 means unlimited.
  double timeout_seconds = 0.0;
  /// Budget on materialized intermediate/result tuples (YTD's weakness in
  /// the paper's evaluation figures); 0 means unlimited.
  std::uint64_t max_intermediate_tuples = 0;
  /// Optional cooperative cancellation handle (borrowed; may be null). The
  /// owner trips it — with RunStatus::kCancelled for an external cancel —
  /// and the run halts within one deadline-check stride, reporting the
  /// trip reason. Parallel engines use it directly as the workers' shared
  /// stop flag, so one trip stops every shard.
  AbortFlag* cancel = nullptr;
};

/// Outcome of one engine run. `count` is the number of result tuples (for
/// Count) or the number of tuples emitted (for Evaluate). A run that hits a
/// limit reports partial stats with the typed status (and the legacy
/// timed_out/out_of_memory shims) set.
struct RunResult {
  std::uint64_t count = 0;
  /// Typed outcome; kOk unless the run terminated abnormally.
  RunStatus status = RunStatus::kOk;
  /// Human-readable detail for non-kOk statuses (may be empty).
  std::string message;
  /// Legacy shims, kept in sync by SetStatus: prefer `status`.
  bool timed_out = false;
  bool out_of_memory = false;
  double seconds = 0.0;
  ExecStats stats;

  /// Sets the typed status and keeps the legacy bool shims consistent.
  void SetStatus(RunStatus s, std::string msg = std::string()) {
    status = s;
    if (!msg.empty()) message = std::move(msg);
    timed_out = s == RunStatus::kTimeout;
    out_of_memory = s == RunStatus::kOutOfMemory;
  }

  bool ok() const {
    return status == RunStatus::kOk && !timed_out && !out_of_memory;
  }
};

/// Receives one full result tuple, indexed by VarId (size = num_vars()).
using TupleCallback = std::function<void(const Tuple&)>;

/// Uniform interface over all join algorithms in the repository.
class JoinEngine {
 public:
  virtual ~JoinEngine() = default;

  /// Short identifier, e.g. "LFTJ", "CLFTJ", "YTD".
  virtual std::string name() const = 0;

  /// Computes |q(D)|.
  virtual RunResult Count(const Query& q, const Database& db,
                          const RunLimits& limits) = 0;

  /// Computes q(D), invoking `cb` once per result tuple.
  virtual RunResult Evaluate(const Query& q, const Database& db,
                             const TupleCallback& cb,
                             const RunLimits& limits) = 0;
};

/// One stop signal shared by every worker of a parallel run: the first
/// worker to hit a limit (deadline, materialization budget) or an external
/// canceller trips the flag and all other workers observe it at their next
/// deadline-check stride. The flag carries the *first* trip's reason so the
/// run can report a typed status (secondary trips keep the original reason:
/// a worker that "times out" because a sibling tripped the flag is an
/// artifact of the stop signal, not a real deadline). Relaxed ordering
/// suffices — the reason is a one-byte enum published before `tripped_`,
/// and readers only act on it after observing the trip.
class AbortFlag {
 public:
  /// Trips with the given reason; the first trip's reason wins.
  void Trip(RunStatus reason = RunStatus::kTimeout) {
    std::uint8_t expected = 0;  // == kOk: not yet tripped
    reason_.compare_exchange_strong(expected,
                                    static_cast<std::uint8_t>(reason),
                                    std::memory_order_relaxed);
    tripped_.store(true, std::memory_order_release);
  }
  bool Tripped() const { return tripped_.load(std::memory_order_acquire); }

  /// The first trip's reason; kOk when never tripped.
  RunStatus reason() const {
    return static_cast<RunStatus>(reason_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<bool> tripped_{false};
  std::atomic<std::uint8_t> reason_{0};
};

/// Cheap cooperative deadline: Expired() samples the clock only once every
/// `kStride` calls so it can sit inside the join's innermost loop. With a
/// shared AbortFlag attached, one checker's expiry trips the flag and every
/// other checker on the flag reports expiry within its own stride — K
/// workers pay one timer discovery total, not K. A flag tripped *before*
/// this checker's first call is observed immediately (the very first
/// Expired() performs a check), so a fresh run handed an already-cancelled
/// flag terminates before doing any work.
class DeadlineChecker {
 public:
  /// Calls between clock samples / shared-flag checks; the worst-case halt
  /// latency after a trip is one stride of innermost-loop iterations.
  static constexpr std::uint64_t kStride = 1 << 14;

  explicit DeadlineChecker(double timeout_seconds, AbortFlag* shared = nullptr)
      : timeout_seconds_(timeout_seconds), shared_(shared) {}

  bool Expired() {
    if (expired_) return true;
    if (timeout_seconds_ <= 0.0 && shared_ == nullptr) return false;
    if ((calls_++ & (kStride - 1)) != 0) return false;
    if (shared_ != nullptr && shared_->Tripped()) {
      expired_ = true;
      return true;
    }
    if ((timeout_seconds_ > 0.0 && timer_.Seconds() > timeout_seconds_) ||
        fault::Fire(fault::Site::kDeadlineTrip)) {
      expired_ = true;
      if (shared_ != nullptr) shared_->Trip(RunStatus::kTimeout);
    }
    return expired_;
  }

 private:
  double timeout_seconds_;
  AbortFlag* shared_;
  Timer timer_;
  std::uint64_t calls_ = 0;
  bool expired_ = false;
};

/// Folds per-worker failure flags and the shared stop flag into one typed
/// status. Precedence: kOutOfMemory (a real budget violation somewhere)
/// dominates, then an external kCancelled trip, then kTimeout; secondary
/// "timeouts" that are artifacts of the stop signal inherit the trip's
/// reason instead of masquerading as deadlines. `abort` may be null.
RunStatus MergeRunStatus(bool any_timed_out, bool any_out_of_memory,
                         const AbortFlag* abort);

/// Pre-flight request validation: every atom's relation must exist in `db`
/// with matching arity, and every variable must be covered by some atom.
/// Returns kOk or kBadQuery (with a diagnostic in *message). Engines
/// CLFTJ_CHECK these invariants; a serving loop must reject them as typed
/// client errors instead of aborting the process.
RunStatus ValidateQueryForDatabase(const Query& q, const Database& db,
                                   std::string* message);

/// Names accepted by MakeEngine, in display order.
std::vector<std::string> EngineNames();

/// Whether MakeEngine accepts `name`. Lets callers validate a request
/// without constructing (and immediately discarding) an engine.
bool IsKnownEngine(const std::string& name);

/// Cross-engine construction knobs for MakeEngine. Engines that have no
/// use for a knob ignore it (only CLFTJ consumes `cache`, only CLFTJ-P
/// consumes `threads` — including `cache.sharing`, which selects between
/// private capacity/K shard caches and the striped shared table).
struct EngineOptions {
  /// CLFTJ-P worker count; <= 0 means one per hardware thread.
  int threads = 0;
  /// CLFTJ / CLFTJ-P cache configuration (admission, capacity, eviction,
  /// sharing). Defaults to the unbounded always-admit cache.
  CacheOptions cache;

  // Cross-query reuse injection (CLFTJ / CLFTJ-P only; others ignore it).
  // All borrowed from the serving loop's CrossQueryReuse::Prepared, which
  // must outlive the engine run. Null = the engine resolves/builds its own,
  // exactly the pre-reuse behavior.

  /// Pre-resolved plan for the query's shape. Must match the query the
  /// engine is run with (same shape at the same database generation).
  std::shared_ptr<const CachedPlan> prepared_plan;
  /// Pre-built trie substrate for prepared_plan->order.
  std::shared_ptr<const TrieJoinSubstrate> prepared_substrate;
  /// Persistent subtree-result caches warmed across requests of this shape.
  /// At most one is consulted per run (count mode vs eval mode).
  StripedCacheManager<std::uint64_t>* shared_count_cache = nullptr;
  StripedCacheManager<FactorizedSetPtr>* shared_eval_cache = nullptr;
};

/// Factory over all engines: "LFTJ", "CLFTJ", "CLFTJ-P" (parallel sharded
/// CLFTJ, one worker per hardware thread by default), "YTD", "PairwiseHJ"
/// (the PostgreSQL stand-in), "GenericJoin" (the SYS1 stand-in),
/// "NestedLoop" (the reference). Returns nullptr for an unknown name.
/// Engines built here use their default planning policies.
std::unique_ptr<JoinEngine> MakeEngine(const std::string& name);

/// As above, with explicit thread/cache configuration.
std::unique_ptr<JoinEngine> MakeEngine(const std::string& name,
                                       const EngineOptions& options);

}  // namespace clftj

#endif  // CLFTJ_ENGINE_ENGINE_H_
