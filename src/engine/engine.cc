#include "engine/engine.h"

#include "baseline/generic_join.h"
#include "baseline/hash_join.h"
#include "baseline/nested_loop.h"
#include "clftj/cached_trie_join.h"
#include "engine/sharded.h"
#include "lftj/trie_join.h"
#include "yannakakis/ytd.h"

namespace clftj {

std::vector<std::string> EngineNames() {
  return {"LFTJ",       "CLFTJ",       "CLFTJ-P",
          "YTD",        "PairwiseHJ",  "GenericJoin",
          "NestedLoop"};
}

std::unique_ptr<JoinEngine> MakeEngine(const std::string& name) {
  if (name == "LFTJ") return std::make_unique<LeapfrogTrieJoin>();
  if (name == "CLFTJ") return std::make_unique<CachedTrieJoin>();
  if (name == "CLFTJ-P") return std::make_unique<ShardedCachedTrieJoin>();
  if (name == "YTD") return std::make_unique<YannakakisTd>();
  if (name == "PairwiseHJ") return std::make_unique<PairwiseHashJoin>();
  if (name == "GenericJoin") return std::make_unique<GenericJoin>();
  if (name == "NestedLoop") return std::make_unique<NestedLoopJoin>();
  return nullptr;
}

}  // namespace clftj
