#include "engine/engine.h"

#include "baseline/generic_join.h"
#include "baseline/hash_join.h"
#include "baseline/nested_loop.h"
#include "clftj/cached_trie_join.h"
#include "engine/sharded.h"
#include "lftj/trie_join.h"
#include "yannakakis/ytd.h"

namespace clftj {

std::vector<std::string> EngineNames() {
  return {"LFTJ",       "CLFTJ",       "CLFTJ-P",
          "YTD",        "PairwiseHJ",  "GenericJoin",
          "NestedLoop"};
}

std::unique_ptr<JoinEngine> MakeEngine(const std::string& name) {
  return MakeEngine(name, EngineOptions{});
}

std::unique_ptr<JoinEngine> MakeEngine(const std::string& name,
                                       const EngineOptions& options) {
  if (name == "LFTJ") return std::make_unique<LeapfrogTrieJoin>();
  if (name == "CLFTJ") {
    CachedTrieJoin::Options engine_options;
    engine_options.cache = options.cache;
    return std::make_unique<CachedTrieJoin>(engine_options);
  }
  if (name == "CLFTJ-P") {
    ShardedCachedTrieJoin::Options engine_options;
    engine_options.threads = options.threads;
    engine_options.cache = options.cache;
    return std::make_unique<ShardedCachedTrieJoin>(engine_options);
  }
  if (name == "YTD") return std::make_unique<YannakakisTd>();
  if (name == "PairwiseHJ") return std::make_unique<PairwiseHashJoin>();
  if (name == "GenericJoin") return std::make_unique<GenericJoin>();
  if (name == "NestedLoop") return std::make_unique<NestedLoopJoin>();
  return nullptr;
}

}  // namespace clftj
