#include "engine/engine.h"

#include "baseline/generic_join.h"
#include "baseline/hash_join.h"
#include "baseline/nested_loop.h"
#include "clftj/cached_trie_join.h"
#include "engine/sharded.h"
#include "lftj/trie_join.h"
#include "yannakakis/ytd.h"

namespace clftj {

const char* RunStatusName(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "OK";
    case RunStatus::kTimeout:
      return "TIMEOUT";
    case RunStatus::kOutOfMemory:
      return "OUT-OF-MEMORY";
    case RunStatus::kShed:
      return "SHED";
    case RunStatus::kCancelled:
      return "CANCELLED";
    case RunStatus::kBadQuery:
      return "BAD-QUERY";
    case RunStatus::kInternal:
      return "INTERNAL";
  }
  return "INTERNAL";  // unreachable; keeps -Wreturn-type quiet
}

bool ParseRunStatus(const std::string& text, RunStatus* status) {
  static constexpr RunStatus kAll[] = {
      RunStatus::kOk,        RunStatus::kTimeout,  RunStatus::kOutOfMemory,
      RunStatus::kShed,      RunStatus::kCancelled, RunStatus::kBadQuery,
      RunStatus::kInternal};
  for (const RunStatus s : kAll) {
    if (text == RunStatusName(s)) {
      if (status != nullptr) *status = s;
      return true;
    }
  }
  return false;
}

bool IsRetryable(RunStatus status) {
  return status == RunStatus::kShed || status == RunStatus::kInternal;
}

RunStatus MergeRunStatus(bool any_timed_out, bool any_out_of_memory,
                         const AbortFlag* abort) {
  if (any_out_of_memory) return RunStatus::kOutOfMemory;
  if (abort != nullptr && abort->Tripped()) {
    const RunStatus reason = abort->reason();
    // An external cancel makes every worker's deadline checker report
    // expiry; those are artifacts of the stop signal, not real deadlines.
    if (reason == RunStatus::kCancelled) return RunStatus::kCancelled;
    if (reason == RunStatus::kOutOfMemory) return RunStatus::kOutOfMemory;
  }
  if (any_timed_out) return RunStatus::kTimeout;
  return RunStatus::kOk;
}

RunStatus ValidateQueryForDatabase(const Query& q, const Database& db,
                                   std::string* message) {
  const auto fail = [message](std::string why) {
    if (message != nullptr) *message = std::move(why);
    return RunStatus::kBadQuery;
  };
  if (q.num_atoms() == 0) return fail("query has no atoms");
  for (const Atom& atom : q.atoms()) {
    const Relation* rel = db.Find(atom.relation);
    if (rel == nullptr) {
      return fail("unknown relation: " + atom.relation);
    }
    if (rel->arity() != static_cast<int>(atom.terms.size())) {
      return fail("arity mismatch for " + atom.relation + ": relation has " +
                  std::to_string(rel->arity()) + " columns, atom has " +
                  std::to_string(atom.terms.size()));
    }
  }
  if (!q.AllVarsCovered()) {
    return fail("a query variable occurs in no atom (unbounded domain)");
  }
  if (message != nullptr) message->clear();
  return RunStatus::kOk;
}

std::vector<std::string> EngineNames() {
  return {"LFTJ",       "CLFTJ",       "CLFTJ-P",
          "YTD",        "PairwiseHJ",  "GenericJoin",
          "NestedLoop"};
}

bool IsKnownEngine(const std::string& name) {
  for (const std::string& known : EngineNames()) {
    if (name == known) return true;
  }
  return false;
}

std::unique_ptr<JoinEngine> MakeEngine(const std::string& name) {
  return MakeEngine(name, EngineOptions{});
}

std::unique_ptr<JoinEngine> MakeEngine(const std::string& name,
                                       const EngineOptions& options) {
  if (name == "LFTJ") return std::make_unique<LeapfrogTrieJoin>();
  if (name == "CLFTJ") {
    CachedTrieJoin::Options engine_options;
    engine_options.cache = options.cache;
    engine_options.prepared_plan = options.prepared_plan;
    engine_options.prepared_substrate = options.prepared_substrate;
    engine_options.shared_count_cache = options.shared_count_cache;
    engine_options.shared_eval_cache = options.shared_eval_cache;
    return std::make_unique<CachedTrieJoin>(engine_options);
  }
  if (name == "CLFTJ-P") {
    ShardedCachedTrieJoin::Options engine_options;
    engine_options.threads = options.threads;
    engine_options.cache = options.cache;
    engine_options.prepared_plan = options.prepared_plan;
    engine_options.prepared_substrate = options.prepared_substrate;
    engine_options.shared_count_cache = options.shared_count_cache;
    engine_options.shared_eval_cache = options.shared_eval_cache;
    return std::make_unique<ShardedCachedTrieJoin>(engine_options);
  }
  if (name == "YTD") return std::make_unique<YannakakisTd>();
  if (name == "PairwiseHJ") return std::make_unique<PairwiseHashJoin>();
  if (name == "GenericJoin") return std::make_unique<GenericJoin>();
  if (name == "NestedLoop") return std::make_unique<NestedLoopJoin>();
  return nullptr;
}

}  // namespace clftj
