#ifndef CLFTJ_YANNAKAKIS_YTD_H_
#define CLFTJ_YANNAKAKIS_YTD_H_

#include <optional>

#include "engine/engine.h"
#include "td/planner.h"

namespace clftj {

/// YTD — Yannakakis's acyclic-join algorithm over a tree decomposition
/// (Gottlob et al.; the DunceCap/EmptyHeaded execution model the paper
/// compares against): each bag's subquery is materialized with a
/// worst-case-optimal join, then the bag relations are combined along the
/// tree. For counting, only adhesion-grouped counts are stored per bag (the
/// paper's optimization); for evaluation, subtree joins are materialized
/// bottom-up after a full semijoin reduction — which is exactly where YTD's
/// memory consumption explodes on large outputs (Figures 8–9).
class YannakakisTd : public JoinEngine {
 public:
  struct Options {
    /// Explicit TD; when absent, PlanQuery chooses one per query.
    std::optional<TreeDecomposition> td;
    PlannerOptions planner;
  };

  YannakakisTd() = default;
  explicit YannakakisTd(Options options) : options_(std::move(options)) {}

  std::string name() const override { return "YTD"; }

  RunResult Count(const Query& q, const Database& db,
                  const RunLimits& limits) override;

  RunResult Evaluate(const Query& q, const Database& db,
                     const TupleCallback& cb, const RunLimits& limits) override;

 private:
  TreeDecomposition ResolveTd(const Query& q, const Database& db) const;

  Options options_;
};

}  // namespace clftj

#endif  // CLFTJ_YANNAKAKIS_YTD_H_
