#include "yannakakis/bag_solver.h"

#include <algorithm>
#include <string>

#include "lftj/trie_join.h"
#include "util/check.h"

namespace clftj {

BagRelation SolveBag(const Query& q, const Database& db,
                     const std::vector<VarId>& bag_vars, ExecStats* stats,
                     const RunLimits& limits) {
  BagRelation out;
  out.columns = bag_vars;
  CLFTJ_CHECK(std::is_sorted(bag_vars.begin(), bag_vars.end()));

  // Local query over reindexed variables 0..|bag|-1.
  std::vector<int> local_of(q.num_vars(), kNone);
  Query local;
  for (std::size_t i = 0; i < bag_vars.size(); ++i) {
    local_of[bag_vars[i]] = static_cast<int>(i);
    local.AddVariable(q.var_name(bag_vars[i]));
  }
  Database local_db;
  std::vector<bool> covered(bag_vars.size(), false);
  for (const Atom& atom : q.atoms()) {
    const std::vector<VarId> vars = atom.Vars();
    const bool contained =
        std::all_of(vars.begin(), vars.end(),
                    [&local_of](VarId x) { return local_of[x] != kNone; });
    if (!contained) continue;
    Atom remapped;
    remapped.relation = atom.relation;
    for (const Term& t : atom.terms) {
      remapped.terms.push_back(
          t.is_variable ? Term::Var(local_of[t.var]) : t);
    }
    local.AddAtom(std::move(remapped));
    if (!local_db.Contains(atom.relation)) {
      local_db.Put(db.Get(atom.relation));
    }
    for (const VarId x : vars) covered[local_of[x]] = true;
  }
  // Domain views for uncovered bag variables: project the first position of
  // the variable in some covering atom. Sound (a superset constraint) and
  // finite.
  for (std::size_t i = 0; i < bag_vars.size(); ++i) {
    if (covered[i]) continue;
    const VarId x = bag_vars[i];
    bool made = false;
    for (const Atom& atom : q.atoms()) {
      for (std::size_t p = 0; p < atom.terms.size() && !made; ++p) {
        if (!atom.terms[p].is_variable || atom.terms[p].var != x) continue;
        const Relation& rel = db.Get(atom.relation);
        const std::string dom_name = "__dom_" + q.var_name(x);
        // One contiguous column copy; Put() normalizes it into a set.
        const ColumnSpan col = rel.Column(static_cast<int>(p));
        Relation dom = Relation::FromColumns(
            dom_name, {std::vector<Value>(col.begin(), col.end())});
        local_db.Put(std::move(dom));
        Atom dom_atom;
        dom_atom.relation = dom_name;
        dom_atom.terms = {Term::Var(static_cast<VarId>(i))};
        local.AddAtom(std::move(dom_atom));
        made = true;
      }
      if (made) break;
    }
    CLFTJ_CHECK_MSG(made, "bag variable not covered by any atom");
  }

  LeapfrogTrieJoin lftj;
  const RunResult r = lftj.Evaluate(
      local, local_db,
      [&out](const Tuple& t) { out.rows.push_back(t); }, limits);
  out.timed_out = r.timed_out;
  stats->Merge(r.stats);
  stats->intermediate_tuples += out.rows.size();
  return out;
}

}  // namespace clftj
