#include "yannakakis/ytd.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.h"
#include "util/hash.h"
#include "yannakakis/bag_solver.h"

namespace clftj {

namespace {

// Positions of `key_vars` within `columns` (both sorted VarId lists).
std::vector<int> KeyPositions(const std::vector<VarId>& columns,
                              const std::vector<VarId>& key_vars) {
  std::vector<int> pos;
  pos.reserve(key_vars.size());
  for (const VarId x : key_vars) {
    const auto it = std::find(columns.begin(), columns.end(), x);
    CLFTJ_CHECK(it != columns.end());
    pos.push_back(static_cast<int>(it - columns.begin()));
  }
  return pos;
}

Tuple Project(const Tuple& row, const std::vector<int>& positions) {
  Tuple key;
  key.reserve(positions.size());
  for (const int p : positions) key.push_back(row[p]);
  return key;
}

using KeyCountMap = std::unordered_map<Tuple, std::uint64_t, TupleHash>;
using KeyRowsMap = std::unordered_map<Tuple, std::vector<int>, TupleHash>;

}  // namespace

TreeDecomposition YannakakisTd::ResolveTd(const Query& q,
                                          const Database& db) const {
  if (options_.td.has_value()) return *options_.td;
  return PlanQuery(q, db, options_.planner).td;
}

RunResult YannakakisTd::Count(const Query& q, const Database& db,
                              const RunLimits& limits) {
  RunResult result;
  Timer timer;
  const TreeDecomposition td = ResolveTd(q, db);
  std::string why;
  CLFTJ_CHECK_MSG(td.IsValidFor(q, &why), why.c_str());
  DeadlineChecker deadline(limits.timeout_seconds, limits.cancel);

  // Bottom-up dynamic program: per bag tuple, the number of subtree
  // extensions; children are folded in as adhesion-grouped count maps, so
  // only counts (not intermediate relations) are stored — the paper's
  // count-mode YTD.
  const std::vector<NodeId> preorder = td.Preorder();
  std::vector<KeyCountMap> folded(td.num_nodes());  // adhesion -> sum count
  for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
    const NodeId v = *it;
    const BagRelation bag =
        SolveBag(q, db, td.bag(v), &result.stats, limits);
    if (bag.timed_out) {
      result.timed_out = true;
      break;
    }
    if (limits.max_intermediate_tuples > 0 &&
        result.stats.intermediate_tuples > limits.max_intermediate_tuples) {
      result.out_of_memory = true;
      break;
    }
    // Child fold maps keyed by the child's adhesion (its intersection with
    // this bag).
    std::vector<std::vector<int>> child_positions;
    for (const NodeId c : td.children(v)) {
      child_positions.push_back(KeyPositions(bag.columns, td.Adhesion(c)));
    }
    const std::vector<int> own_adhesion_positions =
        KeyPositions(bag.columns, td.Adhesion(v));
    KeyCountMap& mine = folded[v];
    for (const Tuple& row : bag.rows) {
      if (deadline.Expired()) {
        result.timed_out = true;
        break;
      }
      std::uint64_t count = 1;
      std::size_t child_index = 0;
      for (const NodeId c : td.children(v)) {
        result.stats.memory_accesses += 1;
        const auto hit = folded[c].find(Project(row, child_positions[child_index]));
        count = hit == folded[c].end() ? 0 : count * hit->second;
        ++child_index;
        if (count == 0) break;
      }
      if (count == 0) continue;
      result.stats.memory_accesses += 1;
      mine[Project(row, own_adhesion_positions)] += count;
    }
    if (result.timed_out) break;
    // Child maps are no longer needed.
    for (const NodeId c : td.children(v)) folded[c].clear();
  }
  if (result.ok()) {
    // The root's adhesion is empty: a single entry keyed by the empty tuple.
    const auto& root_map = folded[td.root()];
    for (const auto& [key, count] : root_map) result.count += count;
  }
  result.SetStatus(
      MergeRunStatus(result.timed_out, result.out_of_memory, limits.cancel));
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

RunResult YannakakisTd::Evaluate(const Query& q, const Database& db,
                                 const TupleCallback& cb,
                                 const RunLimits& limits) {
  RunResult result;
  Timer timer;
  const TreeDecomposition td = ResolveTd(q, db);
  std::string why;
  CLFTJ_CHECK_MSG(td.IsValidFor(q, &why), why.c_str());
  DeadlineChecker deadline(limits.timeout_seconds, limits.cancel);

  const auto over_memory = [&result, &limits]() {
    if (limits.max_intermediate_tuples > 0 &&
        result.stats.intermediate_tuples > limits.max_intermediate_tuples) {
      result.out_of_memory = true;
    }
    return result.out_of_memory;
  };

  // Stage 1: materialize all bag relations.
  const std::vector<NodeId> preorder = td.Preorder();
  std::vector<BagRelation> bags(td.num_nodes());
  for (const NodeId v : preorder) {
    bags[v] = SolveBag(q, db, td.bag(v), &result.stats, limits);
    if (bags[v].timed_out) result.timed_out = true;
    if (result.timed_out || over_memory()) break;
  }

  // Stage 2: full reducer. Bottom-up then top-down semijoins on adhesions
  // guarantee no dangling tuples, so stage 3 joins never shrink.
  if (result.ok()) {
    const auto semijoin = [&result](BagRelation* target,
                                    const BagRelation& source,
                                    const std::vector<VarId>& on) {
      const std::vector<int> tpos = KeyPositions(target->columns, on);
      const std::vector<int> spos = KeyPositions(source.columns, on);
      std::unordered_set<Tuple, TupleHash> keys;
      for (const Tuple& row : source.rows) {
        keys.insert(Project(row, spos));
        result.stats.memory_accesses += 1;
      }
      std::vector<Tuple> kept;
      for (Tuple& row : target->rows) {
        result.stats.memory_accesses += 1;
        if (keys.count(Project(row, tpos)) > 0) {
          kept.push_back(std::move(row));
        }
      }
      target->rows = std::move(kept);
    };
    for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
      const NodeId v = *it;
      for (const NodeId c : td.children(v)) {
        semijoin(&bags[v], bags[c], td.Adhesion(c));
      }
    }
    for (const NodeId v : preorder) {
      for (const NodeId c : td.children(v)) {
        semijoin(&bags[c], bags[v], td.Adhesion(c));
      }
    }
  }

  // Stage 3: bottom-up join, materializing each subtree relation — the
  // memory-hungry part the paper's evaluation figures highlight.
  std::vector<BagRelation> joined(td.num_nodes());
  if (result.ok()) {
    for (auto it = preorder.rbegin(); it != preorder.rend(); ++it) {
      const NodeId v = *it;
      BagRelation current = std::move(bags[v]);
      for (const NodeId c : td.children(v)) {
        const std::vector<VarId> on = td.Adhesion(c);
        BagRelation& child = joined[c];
        // Group child rows by adhesion key.
        const std::vector<int> cpos = KeyPositions(child.columns, on);
        KeyRowsMap groups;
        for (int r = 0; r < static_cast<int>(child.rows.size()); ++r) {
          groups[Project(child.rows[r], cpos)].push_back(r);
          result.stats.memory_accesses += 1;
        }
        // Child columns not already present in `current`.
        std::vector<int> extra_positions;
        std::vector<VarId> extra_vars;
        for (std::size_t i = 0; i < child.columns.size(); ++i) {
          if (std::find(current.columns.begin(), current.columns.end(),
                        child.columns[i]) == current.columns.end()) {
            extra_positions.push_back(static_cast<int>(i));
            extra_vars.push_back(child.columns[i]);
          }
        }
        const std::vector<int> my_on = KeyPositions(current.columns, on);
        BagRelation next;
        next.columns = current.columns;
        next.columns.insert(next.columns.end(), extra_vars.begin(),
                            extra_vars.end());
        for (const Tuple& row : current.rows) {
          if (deadline.Expired()) {
            result.timed_out = true;
            break;
          }
          result.stats.memory_accesses += 1;
          const auto hit = groups.find(Project(row, my_on));
          if (hit == groups.end()) continue;  // cannot happen after reducer
          for (const int r : hit->second) {
            Tuple combined = row;
            for (const int p : extra_positions) {
              combined.push_back(child.rows[r][p]);
            }
            result.stats.memory_accesses += combined.size();
            ++result.stats.intermediate_tuples;
            next.rows.push_back(std::move(combined));
            if (over_memory()) break;
          }
          if (over_memory()) break;
        }
        child.rows.clear();
        current = std::move(next);
        if (result.timed_out || over_memory()) break;
      }
      joined[v] = std::move(current);
      if (result.timed_out || over_memory()) break;
    }
  }

  if (result.ok()) {
    // Emit root rows re-indexed by VarId. The union of all bags covers all
    // query variables, so the root's joined relation is the full result.
    const BagRelation& root = joined[td.root()];
    CLFTJ_CHECK(static_cast<int>(root.columns.size()) == q.num_vars());
    Tuple assignment(q.num_vars(), kNullValue);
    for (const Tuple& row : root.rows) {
      for (std::size_t i = 0; i < root.columns.size(); ++i) {
        assignment[root.columns[i]] = row[i];
      }
      ++result.count;
      cb(assignment);
    }
  }
  result.SetStatus(
      MergeRunStatus(result.timed_out, result.out_of_memory, limits.cancel));
  result.stats.output_tuples = result.count;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace clftj
