#ifndef CLFTJ_YANNAKAKIS_BAG_SOLVER_H_
#define CLFTJ_YANNAKAKIS_BAG_SOLVER_H_

#include <vector>

#include "data/database.h"
#include "engine/engine.h"
#include "query/query.h"
#include "util/common.h"

namespace clftj {

/// The materialized join of one TD bag: tuples over `columns` (the bag's
/// variables, sorted by VarId).
struct BagRelation {
  std::vector<VarId> columns;
  std::vector<Tuple> rows;
  bool timed_out = false;
};

/// Computes the bag relation for `bag_vars` (sorted VarIds): the join of
/// all query atoms whose variables are contained in the bag, extended with
/// unary domain views (a projection of some covering atom) for bag
/// variables no contained atom covers — this keeps every bag join finite
/// even for "connector" bags. Solved with the worst-case-optimal trie join
/// (the paper's YTD uses GenericJoin per bag). Stats are merged into
/// `stats`.
BagRelation SolveBag(const Query& q, const Database& db,
                     const std::vector<VarId>& bag_vars, ExecStats* stats,
                     const RunLimits& limits);

}  // namespace clftj

#endif  // CLFTJ_YANNAKAKIS_BAG_SOLVER_H_
