#ifndef CLFTJ_TRIE_TRIE_ITERATOR_H_
#define CLFTJ_TRIE_TRIE_ITERATOR_H_

#include <vector>

#include "trie/trie.h"
#include "util/common.h"
#include "util/stats.h"

namespace clftj {

/// The LFTJ linear-iterator interface over one Trie (Veldhuizen §3): a
/// cursor that walks one trie level at a time. At any moment the iterator
/// sits at some depth within a sibling group; Open() descends into the
/// children of the current value, Up() ascends. Next()/Seek() move within
/// the sibling group and may move past its end (AtEnd() becomes true, the
/// position stays recoverable via Up()).
///
/// Every value comparison increments stats->memory_accesses (if a stats
/// sink is attached), which is how the paper-style memory-traffic numbers
/// are produced.
class TrieIterator {
 public:
  /// Creates an iterator at the (virtual) root of the trie — depth -1.
  /// The trie must outlive the iterator. `stats` may be null.
  explicit TrieIterator(const Trie* trie, ExecStats* stats = nullptr);

  /// Current depth: -1 at the root, 0..depth-1 inside the trie.
  int depth() const { return depth_; }

  /// True if positioned past the last sibling at the current depth.
  bool AtEnd() const { return at_end_; }

  /// The value at the current position. Requires depth() >= 0 && !AtEnd().
  Value Key() const;

  /// Descends to the first child of the current value (or to the first
  /// root-level value when at the root). Requires !AtEnd(); requires the
  /// current depth to have a next level. The first child always exists —
  /// tries have no dangling internal nodes.
  void Open();

  /// Ascends one level; recovers from AtEnd. Requires depth() >= 0.
  void Up();

  /// Moves to the next sibling; may set AtEnd. Requires !AtEnd().
  void Next();

  /// Moves to the least sibling whose value is >= bound (galloping +
  /// binary search, amortized O(1 + log of distance)); may set AtEnd.
  /// Requires !AtEnd() and bound >= Key() (seeks never go backwards).
  void Seek(Value bound);

 private:
  // Sibling-group bounds at each depth d: positions pos_[d] within
  // [group_begin_[d], group_end_[d]) of trie_->values(d).
  const Trie* trie_;
  ExecStats* stats_;
  int depth_ = -1;
  bool at_end_ = false;
  std::vector<std::size_t> pos_;
  std::vector<std::size_t> group_begin_;
  std::vector<std::size_t> group_end_;

  void Touch(std::uint64_t n = 1) const {
    if (stats_ != nullptr) stats_->memory_accesses += n;
  }
};

}  // namespace clftj

#endif  // CLFTJ_TRIE_TRIE_ITERATOR_H_
