#ifndef CLFTJ_TRIE_TRIE_ITERATOR_H_
#define CLFTJ_TRIE_TRIE_ITERATOR_H_

#include <vector>

#include "trie/trie.h"
#include "util/common.h"
#include "util/stats.h"

namespace clftj {

/// The LFTJ linear-iterator interface over one Trie (Veldhuizen §3): a
/// cursor that walks one trie level at a time. At any moment the iterator
/// sits at some depth within a sibling group; Open() descends into the
/// children of the current value, Up() ascends. Next()/Seek() move within
/// the sibling group and may move past its end (AtEnd() becomes true, the
/// position stays recoverable via Up()).
///
/// Every value comparison increments stats->memory_accesses (if a stats
/// sink is attached), which is how the paper-style memory-traffic numbers
/// are produced.
class TrieIterator {
 public:
  /// Creates an iterator at the (virtual) root of the trie — depth -1.
  /// The trie must outlive the iterator. `stats` may be null.
  explicit TrieIterator(const Trie* trie, ExecStats* stats = nullptr);

  /// Merged two-tier cursor (see docs/incremental.md): presents the view
  /// (main − del) ∪ add as one logical trie without materializing it. `add`
  /// and `del` may each be null (absent tier); when both are, this is
  /// exactly the single-trie cursor. Requires the tier invariants of
  /// AtomView: del's tuples ⊆ main's, add's tuples disjoint from main's,
  /// and all three tries of equal depth. A main value whose subtree is
  /// fully tombstoned is skipped; partially tombstoned values are exposed
  /// and the filtering recurses on descent. The single-trie constructor's
  /// memory-access counting is unchanged — the merged mode charges its own
  /// (deterministic) probe counts.
  TrieIterator(const Trie* main, const Trie* add, const Trie* del,
               ExecStats* stats = nullptr);

  /// Current depth: -1 at the root, 0..depth-1 inside the trie.
  int depth() const { return depth_; }

  /// True if positioned past the last sibling at the current depth.
  bool AtEnd() const { return at_end_; }

  /// The value at the current position. Requires depth() >= 0 && !AtEnd().
  Value Key() const;

  /// Descends to the first child of the current value (or to the first
  /// root-level value when at the root). Requires !AtEnd(); requires the
  /// current depth to have a next level. The first child always exists —
  /// tries have no dangling internal nodes.
  void Open();

  /// Ascends one level; recovers from AtEnd. Requires depth() >= 0.
  void Up();

  /// Moves to the next sibling; may set AtEnd. Requires !AtEnd().
  void Next();

  /// Moves to the least sibling whose value is >= bound (galloping +
  /// binary search, amortized O(1 + log of distance)); may set AtEnd.
  /// Requires !AtEnd() and bound >= Key() (seeks never go backwards).
  void Seek(Value bound);

 private:
  // Sibling-group bounds at each depth d: positions pos_[d] within
  // [group_begin_[d], group_end_[d]) of trie_->values(d).
  const Trie* trie_;
  ExecStats* stats_;
  int depth_ = -1;
  bool at_end_ = false;
  std::vector<std::size_t> pos_;
  std::vector<std::size_t> group_begin_;
  std::vector<std::size_t> group_end_;

  // --- Merged two-tier mode (engaged only by the 3-trie constructor) ------
  // Three sub-cursors walk main (m_), add (a_) and tombstone (t_) tries in
  // lockstep; the merged key at each depth is the least value among the
  // surviving main value and the add value. All state is per-depth so Up()
  // restores it for free, mirroring the single-trie cursor.
  bool merged_ = false;
  const Trie* add_ = nullptr;  // may be null: no added tier
  const Trie* del_ = nullptr;  // may be null: no tombstone tier
  // active: the source has a sibling group at this depth (its parent value
  // was present in the source). here: the source's current value equals the
  // merged key. key: the merged key.
  std::vector<std::size_t> m_pos_, m_begin_, m_end_;
  std::vector<std::size_t> a_pos_, a_begin_, a_end_;
  std::vector<std::size_t> t_pos_, t_begin_, t_end_;
  std::vector<char> m_active_, a_active_, t_active_;
  std::vector<char> m_here_, a_here_, t_here_;
  std::vector<Value> key_;

  void MergedOpen();
  void MergedNext();
  void MergedSeek(Value bound);
  /// Skips main values at depth d whose subtrees are fully tombstoned,
  /// keeping the tombstone cursor positioned at the main value.
  void AdvanceMainToSurviving(int d);
  /// Recomputes key_[d] / *_here_[d] / at_end_ from the sub-cursors.
  void MergedPosition(int d);

  void Touch(std::uint64_t n = 1) const {
    if (stats_ != nullptr) stats_->memory_accesses += n;
  }
};

}  // namespace clftj

#endif  // CLFTJ_TRIE_TRIE_ITERATOR_H_
