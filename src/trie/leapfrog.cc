#include "trie/leapfrog.h"

#include <algorithm>

#include "util/check.h"

namespace clftj {

LeapfrogJoin::LeapfrogJoin(std::vector<TrieIterator*> iters)
    : iters_(std::move(iters)) {
  CLFTJ_CHECK(!iters_.empty());
}

void LeapfrogJoin::Init() {
  at_end_ = false;
  for (TrieIterator* it : iters_) {
    if (it->AtEnd()) {
      at_end_ = true;
      return;
    }
  }
  std::sort(iters_.begin(), iters_.end(),
            [](const TrieIterator* a, const TrieIterator* b) {
              return a->Key() < b->Key();
            });
  p_ = 0;
  Search();
}

void LeapfrogJoin::Search() {
  const std::size_t k = iters_.size();
  Value max_key = iters_[(p_ + k - 1) % k]->Key();
  while (true) {
    TrieIterator* it = iters_[p_];
    const Value key = it->Key();
    if (key == max_key) {
      key_ = max_key;
      return;  // all k iterators agree
    }
    it->Seek(max_key);
    if (it->AtEnd()) {
      at_end_ = true;
      return;
    }
    max_key = it->Key();
    p_ = (p_ + 1) % k;
  }
}

void LeapfrogJoin::Next() {
  CLFTJ_DCHECK(!at_end_);
  TrieIterator* it = iters_[p_];
  it->Next();
  if (it->AtEnd()) {
    at_end_ = true;
    return;
  }
  p_ = (p_ + 1) % iters_.size();
  Search();
}

void LeapfrogJoin::Seek(Value bound) {
  CLFTJ_DCHECK(!at_end_);
  if (bound <= key_) return;
  TrieIterator* it = iters_[p_];
  it->Seek(bound);
  if (it->AtEnd()) {
    at_end_ = true;
    return;
  }
  p_ = (p_ + 1) % iters_.size();
  Search();
}

}  // namespace clftj
