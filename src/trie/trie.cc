#include "trie/trie.h"

#include <algorithm>

#include "util/check.h"

namespace clftj {

Trie Trie::Build(int depth, std::vector<Tuple> rows) {
  CLFTJ_CHECK(depth >= 0);
  for (const Tuple& r : rows) {
    CLFTJ_CHECK(static_cast<int>(r.size()) == depth);
  }
  Trie trie;
  trie.depth_ = depth;
  if (depth == 0) {
    trie.num_tuples_ = rows.empty() ? 0 : 1;
    return trie;
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  trie.num_tuples_ = rows.size();
  trie.values_.resize(depth);
  trie.starts_.resize(depth - 1);

  // Single pass: a new value is emitted at level l whenever the prefix of
  // length l+1 changes; child boundaries are recorded at the same moment.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    int first_diff = 0;
    if (i > 0) {
      while (first_diff < depth && rows[i][first_diff] == rows[i - 1][first_diff]) {
        ++first_diff;
      }
    }
    for (int l = (i == 0 ? 0 : first_diff); l < depth; ++l) {
      if (l + 1 < depth) {
        // A fresh node at level l opens a new child group at level l+1.
        trie.starts_[l].push_back(
            static_cast<std::uint32_t>(trie.values_[l + 1].size()));
      }
      trie.values_[l].push_back(rows[i][l]);
    }
  }
  // Sentinels: starts_[l] has one entry per level-l value plus one.
  for (int l = 0; l + 1 < depth; ++l) {
    trie.starts_[l].push_back(
        static_cast<std::uint32_t>(trie.values_[l + 1].size()));
    CLFTJ_CHECK(trie.starts_[l].size() == trie.values_[l].size() + 1);
  }
  return trie;
}

std::size_t Trie::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& v : values_) bytes += v.size() * sizeof(Value);
  for (const auto& s : starts_) bytes += s.size() * sizeof(std::uint32_t);
  return bytes;
}

AtomView BuildAtomView(const Relation& relation, const Atom& atom,
                       const std::vector<int>& var_rank) {
  CLFTJ_CHECK(static_cast<int>(atom.terms.size()) == relation.arity());
  AtomView view;
  // Distinct variables sorted by global rank become the trie levels.
  view.level_vars = atom.Vars();
  std::sort(view.level_vars.begin(), view.level_vars.end(),
            [&var_rank](VarId a, VarId b) {
              return var_rank[a] < var_rank[b];
            });
  // For each level variable, the first term position where it occurs.
  std::vector<int> level_pos(view.level_vars.size(), kNone);
  for (std::size_t l = 0; l < view.level_vars.size(); ++l) {
    for (std::size_t p = 0; p < atom.terms.size(); ++p) {
      if (atom.terms[p].is_variable && atom.terms[p].var == view.level_vars[l]) {
        level_pos[l] = static_cast<int>(p);
        break;
      }
    }
    CLFTJ_CHECK(level_pos[l] != kNone);
  }

  std::vector<Tuple> rows;
  Tuple row(view.level_vars.size());
  for (std::size_t i = 0; i < relation.size(); ++i) {
    bool ok = true;
    // Constant filters.
    for (std::size_t p = 0; ok && p < atom.terms.size(); ++p) {
      if (!atom.terms[p].is_variable &&
          relation.At(i, static_cast<int>(p)) != atom.terms[p].constant) {
        ok = false;
      }
    }
    // Repeated-variable equality filters: every occurrence of a variable
    // must carry the same value as its first occurrence.
    for (std::size_t p = 0; ok && p < atom.terms.size(); ++p) {
      if (!atom.terms[p].is_variable) continue;
      for (std::size_t l = 0; l < view.level_vars.size(); ++l) {
        if (atom.terms[p].var == view.level_vars[l] &&
            relation.At(i, static_cast<int>(p)) !=
                relation.At(i, level_pos[l])) {
          ok = false;
          break;
        }
      }
    }
    if (!ok) continue;
    for (std::size_t l = 0; l < view.level_vars.size(); ++l) {
      row[l] = relation.At(i, level_pos[l]);
    }
    rows.push_back(row);
  }
  view.non_empty = !rows.empty();
  view.trie = Trie::Build(static_cast<int>(view.level_vars.size()),
                          std::move(rows));
  return view;
}

}  // namespace clftj
