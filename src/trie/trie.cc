#include "trie/trie.h"

#include <algorithm>

#include "util/check.h"
#include "util/fault.h"
#include "util/simd.h"

namespace clftj {

Trie Trie::Build(int depth, std::vector<Tuple> rows) {
  CLFTJ_CHECK(depth >= 0);
  for (const Tuple& r : rows) {
    CLFTJ_CHECK(static_cast<int>(r.size()) == depth);
  }
  std::vector<std::vector<Value>> columns(depth);
  for (int l = 0; l < depth; ++l) {
    columns[l].reserve(rows.size());
    for (const Tuple& r : rows) columns[l].push_back(r[l]);
  }
  return FromColumns(depth, rows.size(), std::move(columns));
}

Trie Trie::FromColumns(int depth, std::size_t num_rows,
                       std::vector<std::vector<Value>> columns) {
  // Injected allocation failure while building the trie substrate: the
  // throw unwinds through substrate construction, which callers must treat
  // as a transient internal failure (nothing partial is published).
  fault::MaybeThrowAlloc(fault::Site::kTrieBuild);
  CLFTJ_CHECK(depth >= 0);
  CLFTJ_CHECK(static_cast<int>(columns.size()) == depth);
  for (const auto& column : columns) {
    CLFTJ_CHECK(column.size() == num_rows);
  }
  Trie trie;
  trie.depth_ = depth;
  if (depth == 0) {
    trie.num_tuples_ = num_rows == 0 ? 0 : 1;
    return trie;
  }
  CLFTJ_CHECK(num_rows < 0xFFFFFFFFull);

  // Sort a permutation of row indices instead of the rows themselves: the
  // columns stay put, only 4-byte indices move.
  std::vector<std::uint32_t> perm(num_rows);
  for (std::size_t i = 0; i < num_rows; ++i) {
    perm[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(perm.begin(), perm.end(),
            [&columns, depth](std::uint32_t a, std::uint32_t b) {
              for (int l = 0; l < depth; ++l) {
                const Value va = columns[l][a];
                const Value vb = columns[l][b];
                if (va != vb) return va < vb;
              }
              return false;
            });

  trie.values_.resize(depth);
  trie.starts_.resize(depth - 1);

  // Single pass over the sorted permutation: a new value is emitted at
  // level l whenever the prefix of length l+1 changes; child boundaries
  // are recorded at the same moment. Rows fully equal to their predecessor
  // (first_diff == depth) are duplicates and contribute nothing.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < num_rows; ++i) {
    const std::uint32_t row = perm[i];
    int first_diff = 0;
    if (i > 0) {
      const std::uint32_t prev = perm[i - 1];
      while (first_diff < depth &&
             columns[first_diff][row] == columns[first_diff][prev]) {
        ++first_diff;
      }
      if (first_diff == depth) continue;  // duplicate row
    }
    ++kept;
    for (int l = first_diff; l < depth; ++l) {
      if (l + 1 < depth) {
        // A fresh node at level l opens a new child group at level l+1.
        trie.starts_[l].push_back(
            static_cast<std::uint32_t>(trie.values_[l + 1].size()));
      }
      trie.values_[l].push_back(columns[l][row]);
    }
  }
  trie.num_tuples_ = kept;
  // Sentinels: starts_[l] has one entry per level-l value plus one.
  for (int l = 0; l + 1 < depth; ++l) {
    trie.starts_[l].push_back(
        static_cast<std::uint32_t>(trie.values_[l + 1].size()));
    CLFTJ_CHECK(trie.starts_[l].size() == trie.values_[l].size() + 1);
  }
  return trie;
}

std::size_t Trie::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& v : values_) bytes += v.size() * sizeof(Value);
  for (const auto& s : starts_) bytes += s.size() * sizeof(std::uint32_t);
  return bytes;
}

namespace {

// The atom's distinct variables sorted by global rank (the trie levels).
std::vector<VarId> LevelVarsFor(const Atom& atom,
                                const std::vector<int>& var_rank) {
  std::vector<VarId> level_vars = atom.Vars();
  std::sort(level_vars.begin(), level_vars.end(),
            [&var_rank](VarId a, VarId b) {
              return var_rank[a] < var_rank[b];
            });
  return level_vars;
}

// For each level variable, the first term position where it occurs.
std::vector<int> LevelPosFor(const Atom& atom,
                             const std::vector<VarId>& level_vars) {
  std::vector<int> level_pos(level_vars.size(), kNone);
  for (std::size_t l = 0; l < level_vars.size(); ++l) {
    for (std::size_t p = 0; p < atom.terms.size(); ++p) {
      if (atom.terms[p].is_variable && atom.terms[p].var == level_vars[l]) {
        level_pos[l] = static_cast<int>(p);
        break;
      }
    }
    CLFTJ_CHECK(level_pos[l] != kNone);
  }
  return level_pos;
}

// The filter + projection core shared by the visible, main-tier, and
// overlay builds: applies the atom's constant and repeated-variable
// filters to `total_rows` rows given per-term source columns, projects to
// the level variables, and builds the trie. The same rows fed through this
// function always produce the same view tuples — and because dropped
// columns are either constants (pinned by the filter) or repeated
// variables (pinned to their first occurrence), distinct filtered rows
// project to *distinct* view tuples. That injectivity is what lets
// relation-level tier invariants (deleted ⊆ main, added ∩ main = ∅) carry
// over to the per-atom overlay tries.
Trie BuildFilteredTrie(const Atom& atom, const std::vector<VarId>& level_vars,
                       const std::vector<int>& level_pos,
                       const std::vector<ColumnSpan>& term_col,
                       std::size_t total_rows) {
  const std::size_t levels = level_vars.size();
  // An atom with only distinct variables (no constants, no repeats) keeps
  // every row: each level column is a straight contiguous copy.
  const bool plain = levels == atom.terms.size() &&
                     std::all_of(atom.terms.begin(), atom.terms.end(),
                                 [](const Term& t) { return t.is_variable; });
  std::vector<std::vector<Value>> columns(levels);
  std::size_t num_rows = 0;
  if (plain) {
    for (std::size_t l = 0; l < levels; ++l) {
      const ColumnSpan src = term_col[level_pos[l]];
      columns[l].assign(src.begin(), src.end());
    }
    num_rows = total_rows;
  } else {
    // Compile the atom's predicates into a simd::RowFilter — one
    // constant-term predicate per non-variable position and one equality
    // predicate per repeated occurrence of a variable (pinned to its first
    // occurrence at level_pos) — then run the dispatched compare+compress
    // kernel to a keep list and project the surviving rows columnwise.
    // Both kernel arms emit the same ascending keep list, so the view
    // tuples are bit-identical across dispatch modes.
    std::vector<simd::ConstPredicate> consts;
    std::vector<simd::EqPredicate> eqs;
    for (std::size_t p = 0; p < atom.terms.size(); ++p) {
      if (!atom.terms[p].is_variable) {
        consts.push_back({term_col[p].data(), atom.terms[p].constant});
        continue;
      }
      for (std::size_t l = 0; l < levels; ++l) {
        if (atom.terms[p].var == level_vars[l] &&
            static_cast<int>(p) != level_pos[l]) {
          eqs.push_back(
              {term_col[p].data(), term_col[level_pos[l]].data()});
          break;
        }
      }
    }
    const simd::RowFilter filter = {consts.data(), consts.size(), eqs.data(),
                                    eqs.size()};
    std::vector<std::uint32_t> keep;
    simd::FilterRows(filter, total_rows, &keep);
    // No reserve on the columns: this is exactly the path where filters
    // drop rows, and pre-allocating levels x total_rows would spike memory
    // for selective atoms (e.g. a constant over a large relation).
    for (std::size_t l = 0; l < levels; ++l) {
      const ColumnSpan src = term_col[level_pos[l]];
      for (const std::uint32_t i : keep) columns[l].push_back(src[i]);
    }
    num_rows = keep.size();
  }
  return Trie::FromColumns(static_cast<int>(levels), num_rows,
                           std::move(columns));
}

enum class Tier { kVisible, kMain };

AtomView BuildAtomViewFromTier(const Relation& relation, const Atom& atom,
                               const std::vector<int>& var_rank, Tier tier) {
  CLFTJ_CHECK(static_cast<int>(atom.terms.size()) == relation.arity());
  AtomView view;
  view.level_vars = LevelVarsFor(atom, var_rank);
  const std::vector<int> level_pos = LevelPosFor(atom, view.level_vars);

  // Columnar staging: one value vector per trie level instead of one heap
  // tuple per row, feeding Trie::FromColumns' permutation sort. The source
  // columns are streamed as contiguous ColumnSpans.
  const std::size_t total_rows =
      tier == Tier::kMain ? relation.main_size() : relation.size();
  std::vector<ColumnSpan> term_col(atom.terms.size());
  for (std::size_t p = 0; p < atom.terms.size(); ++p) {
    term_col[p] = tier == Tier::kMain
                      ? relation.MainColumn(static_cast<int>(p))
                      : relation.Column(static_cast<int>(p));
  }
  view.trie = std::make_shared<Trie>(BuildFilteredTrie(
      atom, view.level_vars, level_pos, term_col, total_rows));
  view.non_empty = view.trie->num_tuples() > 0;
  return view;
}

}  // namespace

AtomView BuildAtomView(const Relation& relation, const Atom& atom,
                       const std::vector<int>& var_rank) {
  return BuildAtomViewFromTier(relation, atom, var_rank, Tier::kVisible);
}

AtomView BuildMainAtomView(const Relation& relation, const Atom& atom,
                           const std::vector<int>& var_rank) {
  return BuildAtomViewFromTier(relation, atom, var_rank, Tier::kMain);
}

void AttachDeltaOverlay(const Relation& relation, const Atom& atom,
                        AtomView* view) {
  CLFTJ_CHECK(static_cast<int>(atom.terms.size()) == relation.arity());
  if (!relation.has_delta()) {
    view->delta_add.reset();
    view->delta_del.reset();
    view->non_empty = view->trie->num_tuples() > 0;
    return;
  }
  const std::vector<int> level_pos = LevelPosFor(atom, view->level_vars);
  std::vector<ColumnSpan> term_col(atom.terms.size());
  for (std::size_t p = 0; p < atom.terms.size(); ++p) {
    term_col[p] = relation.AddedColumn(static_cast<int>(p));
  }
  Trie add = BuildFilteredTrie(atom, view->level_vars, level_pos, term_col,
                               relation.added_size());
  for (std::size_t p = 0; p < atom.terms.size(); ++p) {
    term_col[p] = relation.DeletedColumn(static_cast<int>(p));
  }
  Trie del = BuildFilteredTrie(atom, view->level_vars, level_pos, term_col,
                               relation.deleted_size());
  // Because the view projection is injective on filtered rows, the view
  // tuple counts subtract and add exactly like the relation tiers do.
  const std::size_t merged = view->trie->num_tuples() - del.num_tuples() +
                             add.num_tuples();
  view->delta_add = add.num_tuples() > 0
                        ? std::make_shared<Trie>(std::move(add))
                        : nullptr;
  view->delta_del = del.num_tuples() > 0
                        ? std::make_shared<Trie>(std::move(del))
                        : nullptr;
  view->non_empty = merged > 0;
}

std::vector<AtomView> BuildAtomViews(const Query& q, const Database& db,
                                     const std::vector<int>& var_rank,
                                     bool* any_empty) {
  std::vector<AtomView> views;
  views.reserve(q.num_atoms());
  *any_empty = false;
  for (const Atom& atom : q.atoms()) {
    views.push_back(BuildAtomView(db.Get(atom.relation), atom, var_rank));
    if (!views.back().non_empty) *any_empty = true;
  }
  return views;
}

}  // namespace clftj
