#ifndef CLFTJ_TRIE_TRIE_H_
#define CLFTJ_TRIE_TRIE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/database.h"
#include "data/relation.h"
#include "query/query.h"
#include "util/common.h"

namespace clftj {

/// A sorted trie over fixed-arity tuples, stored as "cascading vectors"
/// (CSR-style level arrays), the layout the paper uses for its YTD
/// implementation and which also serves LFTJ:
///
///   values_[l]  — all values at trie level l, grouped by parent; each
///                 sibling group is sorted ascending.
///   starts_[l]  — for l < depth-1: starts_[l][i]..starts_[l][i+1] is the
///                 child range in values_[l+1] of the i-th value at level l
///                 (one sentinel entry at the end).
///
/// Every root-to-leaf path is a distinct tuple and vice versa. Sibling
/// groups support O(log n) seekLowerBound via binary/galloping search, which
/// is what gives LFTJ its amortized complexity guarantee.
///
/// Thread safety: a built Trie is immutable — every accessor is const and
/// touches only data laid down by Build/FromColumns, so any number of
/// threads (each with its own TrieIterator cursor) may read one Trie
/// concurrently. This is what lets the sharded executor share one set of
/// atom views across all workers.
class Trie {
 public:
  /// Creates an empty trie of depth 0; use Build() for real tries.
  Trie() = default;

  /// Builds a trie of the given depth from rows (each of size depth). Rows
  /// may be unsorted and contain duplicates. depth == 0 yields a trie whose
  /// only information is whether any (empty) row exists. Convenience
  /// wrapper over FromColumns for tests and small inputs.
  static Trie Build(int depth, std::vector<Tuple> rows);

  /// Builds a trie from columnar data: columns[l][i] is the level-l value
  /// of row i; every column has num_rows entries. This is the bulk path —
  /// instead of materializing and sorting row tuples (one heap vector per
  /// row), it sorts a single permutation index over the columns and emits
  /// the level arrays in one pass, so construction allocates O(depth)
  /// vectors regardless of row count.
  static Trie FromColumns(int depth, std::size_t num_rows,
                          std::vector<std::vector<Value>> columns);

  int depth() const { return depth_; }

  /// Number of tuples (root-to-leaf paths).
  std::size_t num_tuples() const { return num_tuples_; }

  /// All values at a level. Requires 0 <= level < depth().
  const std::vector<Value>& values(int level) const { return values_[level]; }

  /// Child-range boundaries between level and level+1.
  const std::vector<std::uint32_t>& starts(int level) const {
    return starts_[level];
  }

  /// Approximate heap footprint in bytes (for memory-budget accounting).
  std::size_t MemoryBytes() const;

 private:
  int depth_ = 0;
  std::size_t num_tuples_ = 0;
  std::vector<std::vector<Value>> values_;
  std::vector<std::vector<std::uint32_t>> starts_;
};

/// The per-atom view an engine joins over: the atom's relation filtered by
/// its constant arguments and repeated-variable equalities, projected to its
/// distinct variables, and trie-ordered by a global variable order.
struct AtomView {
  /// The atom's distinct variables in trie-level order (sorted by their
  /// position in the global variable order).
  std::vector<VarId> level_vars;
  /// Shared, immutable: a long-lived SubstrateRegistry hands the same Trie
  /// to every query (and every concurrent worker) whose atom projects to
  /// the same filtered, ordered view of the relation — level_vars stay
  /// query-specific while the expensive part is built once. Never null
  /// after BuildAtomView.
  std::shared_ptr<const Trie> trie;
  /// Optional LSM-style overlay (see docs/incremental.md): when set, `trie`
  /// holds the relation's *main tier* only and the logical view is
  /// (trie − delta_del) ∪ delta_add, presented by the merged TrieIterator.
  /// delta_del ⊆ trie tuple-for-tuple and delta_add is disjoint from trie
  /// (both built by the same filter + projection as the main build — the
  /// projection is injective on filtered rows, so the relation-level tier
  /// invariants carry over to the views). Null when the view is single-tier.
  std::shared_ptr<const Trie> delta_add;
  std::shared_ptr<const Trie> delta_del;
  /// False iff the filtered view (after overlay merge, if any) is empty —
  /// in particular a fully-constant atom that matched no tuple, which makes
  /// the whole query empty.
  bool non_empty = false;
};

/// Builds the AtomView of `atom` over `relation` for a global variable order
/// given as ranks: var_rank[v] = position of variable v in the order. Always
/// builds from the merged *visible* image (Relation::Column), so the result
/// is a single-tier view regardless of the relation's delta state.
AtomView BuildAtomView(const Relation& relation, const Atom& atom,
                       const std::vector<int>& var_rank);

/// Builds the atom view over the relation's *main tier only*, with no
/// overlay attached: the long-lived half of a two-tier view. Equals
/// BuildAtomView when the relation has no delta.
AtomView BuildMainAtomView(const Relation& relation, const Atom& atom,
                           const std::vector<int>& var_rank);

/// Builds the small overlay tries from the relation's added/tombstone tiers
/// (filtered and projected exactly like the main build) and attaches them to
/// *view, recomputing non_empty for the merged image. Clears the overlay
/// when the relation has no delta. `view` must have been built over the same
/// relation/atom with the same level order.
void AttachDeltaOverlay(const Relation& relation, const Atom& atom,
                        AtomView* view);

/// Builds every atom's view of `q` over `db` in atom order (the bulk path
/// used by TrieJoinSubstrate). Sets *any_empty to true iff some filtered
/// view is empty (the query result is then empty). The returned views are
/// immutable after this call and safe for concurrent shared reads.
std::vector<AtomView> BuildAtomViews(const Query& q, const Database& db,
                                     const std::vector<int>& var_rank,
                                     bool* any_empty);

}  // namespace clftj

#endif  // CLFTJ_TRIE_TRIE_H_
