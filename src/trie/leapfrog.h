#ifndef CLFTJ_TRIE_LEAPFROG_H_
#define CLFTJ_TRIE_LEAPFROG_H_

#include <vector>

#include "trie/trie_iterator.h"
#include "util/common.h"

namespace clftj {

/// Leapfrog join over k >= 1 trie iterators positioned at the same logical
/// variable (each at its own trie level): a multi-way sort-merge
/// intersection of their sibling groups (Veldhuizen §3.1). The caller must
/// Open() all iterators to the variable's level before Init() and is
/// responsible for the matching Up() calls afterwards.
class LeapfrogJoin {
 public:
  /// Wraps the iterators; does not take ownership. Requires non-empty.
  explicit LeapfrogJoin(std::vector<TrieIterator*> iters);

  /// Positions all iterators at the first common value, if any.
  void Init();

  /// True when the intersection is exhausted.
  bool AtEnd() const { return at_end_; }

  /// The current common value. Requires !AtEnd().
  Value Key() const { return key_; }

  /// Advances to the next common value.
  void Next();

  /// Advances to the least common value >= bound.
  void Seek(Value bound);

 private:
  void Search();  // leapfrog_search of the paper

  std::vector<TrieIterator*> iters_;
  std::size_t p_ = 0;  // index of the iterator with the smallest key
  Value key_ = 0;
  bool at_end_ = false;
};

}  // namespace clftj

#endif  // CLFTJ_TRIE_LEAPFROG_H_
