#ifndef CLFTJ_TRIE_LEAPFROG_H_
#define CLFTJ_TRIE_LEAPFROG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trie/trie_iterator.h"
#include "util/common.h"

namespace clftj {

/// Branch-free 4-way unrolled galloping lower bound over the sorted range
/// vals[pos..end): returns the least index in (pos, end] whose value is
/// >= bound (end if none). Preconditions: pos < end and vals[pos] < bound
/// (callers fast-path the already-positioned case).
///
/// This is the leapfrog Seek's hot search, restructured for ILP: each
/// round issues the next four doubling probes (offsets 2s-1, 4s-1, 8s-1,
/// 16s-1 past `pos`, out-of-range probes clamped to end-1) as independent
/// loads, folds the four comparisons into one mask, and either advances
/// 16x or drops into a branch-free binary search of the bracketed run —
/// one data-dependent branch per round instead of one per probe, and no
/// unpredictable branch at all in the binary phase (the halving updates
/// compile to conditional moves).
///
/// Counting contract: *comparisons is advanced by exactly the probes the
/// sequential gallop + binary search would execute — over-fetched
/// speculative probes past the first failure are issued for ILP (mirroring
/// hardware speculation) but not charged. Seek's memory-access counters
/// are therefore bit-identical to the scalar implementation's, which is
/// what keeps the recorded bench baselines comparable across PRs (pinned
/// by TrieIterator.SeekCountsMatchScalarReference in tests/trie_test.cc).
inline std::size_t GallopingLowerBound(const Value* vals, std::size_t pos,
                                       std::size_t end, Value bound,
                                       std::uint64_t* comparisons) {
  std::uint64_t probes = 0;
  std::size_t lo = pos;  // invariant: vals[lo] < bound
  std::size_t hi = end;  // bracket end: vals[hi] >= bound, or hi == end
  std::size_t s = 1;     // round stride; probe k sits at pos + 2^k - 1
  const std::size_t last = end - 1;
  while (true) {
    const std::size_t idx[4] = {pos + 2 * s - 1, pos + 4 * s - 1,
                                pos + 8 * s - 1, pos + 16 * s - 1};
    bool ok[4];
    for (int j = 0; j < 4; ++j) {
      const bool in_range = idx[j] < end;
      const Value v = vals[in_range ? idx[j] : last];  // clamped load
      ok[j] = in_range & (v < bound);
    }
    const unsigned mask = static_cast<unsigned>(ok[0]) |
                          static_cast<unsigned>(ok[1]) << 1 |
                          static_cast<unsigned>(ok[2]) << 2 |
                          static_cast<unsigned>(ok[3]) << 3;
    if (mask == 0xF) {  // all four probes below bound: next round, 16x on
      probes += 4;
      lo = idx[3];
      s <<= 4;
      continue;
    }
    // Sortedness makes the mask a prefix of ones: the number of trailing
    // ones is the count of successful probes this round, and the next
    // probe is the first failure.
    static constexpr unsigned char kTrailingOnes[16] = {0, 1, 0, 2, 0, 1, 0, 3,
                                                        0, 1, 0, 2, 0, 1, 0, 4};
    const unsigned n = kTrailingOnes[mask];
    probes += n;
    if (n > 0) lo = idx[n - 1];
    const std::size_t fail = idx[n];
    if (fail < end) {
      ++probes;  // the failing comparison is a real probe
      hi = fail;
    }  // else: past the end — the scalar loop exits without comparing
    break;
  }
  // Branch-free binary search of (lo, hi]: same count/first evolution (and
  // so the same comparison count) as the classic halving loop, with the
  // updates as conditional selects.
  std::size_t count = hi - lo - 1;
  std::size_t first = lo + 1;
  while (count > 0) {
    ++probes;
    const std::size_t half = count >> 1;
    const std::size_t mid = first + half;
    const bool less = vals[mid] < bound;
    first = less ? mid + 1 : first;
    count = less ? count - half - 1 : half;
  }
  *comparisons += probes;
  return first;
}

/// AVX2 arm of the gallop: the four doubling probes of each round become
/// one vector compare + movemask over the same positions, and the binary
/// tail is the identical halving loop — the probe sequence matches the
/// scalar kernel's exactly, so the counting contract above holds bit for
/// bit. Defined only in src/util/simd_avx2.cc (the sole -mavx2 TU) — reach
/// it through the simd::SeekLowerBound dispatch point, never directly;
/// forced-scalar builds leave this symbol undefined so a stray direct call
/// fails at link time. Pinned against the scalar arm by the randomized
/// differential suite in tests/simd_test.cc.
std::size_t GallopingLowerBoundAvx2(const Value* vals, std::size_t pos,
                                    std::size_t end, Value bound,
                                    std::uint64_t* comparisons);

/// Leapfrog join over k >= 1 trie iterators positioned at the same logical
/// variable (each at its own trie level): a multi-way sort-merge
/// intersection of their sibling groups (Veldhuizen §3.1). The caller must
/// Open() all iterators to the variable's level before Init() and is
/// responsible for the matching Up() calls afterwards.
class LeapfrogJoin {
 public:
  /// Wraps the iterators; does not take ownership. Requires non-empty.
  explicit LeapfrogJoin(std::vector<TrieIterator*> iters);

  /// Positions all iterators at the first common value, if any.
  void Init();

  /// True when the intersection is exhausted.
  bool AtEnd() const { return at_end_; }

  /// The current common value. Requires !AtEnd().
  Value Key() const { return key_; }

  /// Advances to the next common value.
  void Next();

  /// Advances to the least common value >= bound.
  void Seek(Value bound);

 private:
  void Search();  // leapfrog_search of the paper

  std::vector<TrieIterator*> iters_;
  std::size_t p_ = 0;  // index of the iterator with the smallest key
  Value key_ = 0;
  bool at_end_ = false;
};

}  // namespace clftj

#endif  // CLFTJ_TRIE_LEAPFROG_H_
