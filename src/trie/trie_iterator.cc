#include "trie/trie_iterator.h"

#include <algorithm>

#include "trie/leapfrog.h"
#include "util/check.h"

namespace clftj {

TrieIterator::TrieIterator(const Trie* trie, ExecStats* stats)
    : trie_(trie), stats_(stats) {
  CLFTJ_CHECK(trie != nullptr);
  const int d = trie->depth();
  pos_.resize(d, 0);
  group_begin_.resize(d, 0);
  group_end_.resize(d, 0);
}

Value TrieIterator::Key() const {
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  return trie_->values(depth_)[pos_[depth_]];
}

void TrieIterator::Open() {
  CLFTJ_DCHECK(!at_end_);
  CLFTJ_DCHECK(depth_ + 1 < trie_->depth());
  std::size_t begin = 0;
  std::size_t end = 0;
  if (depth_ < 0) {
    end = trie_->values(0).size();
  } else {
    const auto& starts = trie_->starts(depth_);
    begin = starts[pos_[depth_]];
    end = starts[pos_[depth_] + 1];
  }
  ++depth_;
  group_begin_[depth_] = begin;
  group_end_[depth_] = end;
  pos_[depth_] = begin;
  at_end_ = begin >= end;
  CLFTJ_DCHECK(!at_end_);  // tries have no dangling internal nodes
  Touch();                 // loading the first child
}

void TrieIterator::Up() {
  CLFTJ_CHECK(depth_ >= 0);
  --depth_;
  at_end_ = false;
}

void TrieIterator::Next() {
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  ++pos_[depth_];
  at_end_ = pos_[depth_] >= group_end_[depth_];
  Touch();
}

void TrieIterator::Seek(Value bound) {
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  const std::vector<Value>& vals = trie_->values(depth_);
  const std::size_t lo = pos_[depth_];
  const std::size_t end = group_end_[depth_];
  if (vals[lo] >= bound) {
    Touch();
    return;
  }
  // Galloping lower bound (4-way unrolled, branch-free; see leapfrog.h):
  // double the probe stride until overshooting, then binary search the
  // bracketed range. This gives the amortized bound LFTJ's worst-case
  // optimality relies on.
  std::uint64_t comparisons = 0;
  const std::size_t first =
      GallopingLowerBound(vals.data(), lo, end, bound, &comparisons);
  Touch(comparisons);
  pos_[depth_] = first;
  at_end_ = first >= end;
}

}  // namespace clftj
