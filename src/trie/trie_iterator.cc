#include "trie/trie_iterator.h"

#include <algorithm>

#include "trie/leapfrog.h"
#include "util/check.h"
#include "util/simd.h"

namespace clftj {

namespace {

// Number of leaves under the subtree rooted at the level-`level` value at
// index `idx`: walk the CSR start arrays down to the leaf level. O(depth).
std::size_t SubtreeLeafCount(const Trie& trie, int level, std::size_t idx) {
  std::size_t lo = idx;
  std::size_t hi = idx + 1;
  for (int l = level; l + 1 < trie.depth(); ++l) {
    lo = trie.starts(l)[lo];
    hi = trie.starts(l)[hi];
  }
  return hi - lo;
}

}  // namespace

TrieIterator::TrieIterator(const Trie* trie, ExecStats* stats)
    : trie_(trie), stats_(stats) {
  CLFTJ_CHECK(trie != nullptr);
  const int d = trie->depth();
  pos_.resize(d, 0);
  group_begin_.resize(d, 0);
  group_end_.resize(d, 0);
}

TrieIterator::TrieIterator(const Trie* main, const Trie* add, const Trie* del,
                           ExecStats* stats)
    : TrieIterator(main, stats) {
  if (add == nullptr && del == nullptr) return;  // plain single-trie cursor
  merged_ = true;
  add_ = add;
  del_ = del;
  if (add_ != nullptr) CLFTJ_CHECK(add_->depth() == main->depth());
  if (del_ != nullptr) CLFTJ_CHECK(del_->depth() == main->depth());
  const std::size_t d = static_cast<std::size_t>(main->depth());
  m_pos_.resize(d, 0);
  m_begin_.resize(d, 0);
  m_end_.resize(d, 0);
  a_pos_.resize(d, 0);
  a_begin_.resize(d, 0);
  a_end_.resize(d, 0);
  t_pos_.resize(d, 0);
  t_begin_.resize(d, 0);
  t_end_.resize(d, 0);
  m_active_.resize(d, 0);
  a_active_.resize(d, 0);
  t_active_.resize(d, 0);
  m_here_.resize(d, 0);
  a_here_.resize(d, 0);
  t_here_.resize(d, 0);
  key_.resize(d, 0);
}

Value TrieIterator::Key() const {
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  if (merged_) return key_[depth_];
  return trie_->values(depth_)[pos_[depth_]];
}

void TrieIterator::Open() {
  if (merged_) {
    MergedOpen();
    return;
  }
  CLFTJ_DCHECK(!at_end_);
  CLFTJ_DCHECK(depth_ + 1 < trie_->depth());
  std::size_t begin = 0;
  std::size_t end = 0;
  if (depth_ < 0) {
    end = trie_->values(0).size();
  } else {
    const auto& starts = trie_->starts(depth_);
    begin = starts[pos_[depth_]];
    end = starts[pos_[depth_] + 1];
  }
  ++depth_;
  group_begin_[depth_] = begin;
  group_end_[depth_] = end;
  pos_[depth_] = begin;
  at_end_ = begin >= end;
  CLFTJ_DCHECK(!at_end_);  // tries have no dangling internal nodes
  Touch();                 // loading the first child
}

void TrieIterator::Up() {
  CLFTJ_CHECK(depth_ >= 0);
  --depth_;
  at_end_ = false;
}

void TrieIterator::Next() {
  if (merged_) {
    MergedNext();
    return;
  }
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  ++pos_[depth_];
  at_end_ = pos_[depth_] >= group_end_[depth_];
  Touch();
}

void TrieIterator::Seek(Value bound) {
  if (merged_) {
    MergedSeek(bound);
    return;
  }
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  const std::vector<Value>& vals = trie_->values(depth_);
  const std::size_t lo = pos_[depth_];
  const std::size_t end = group_end_[depth_];
  if (vals[lo] >= bound) {
    Touch();
    return;
  }
  // Galloping lower bound (4-way unrolled, branch-free; see leapfrog.h),
  // via the runtime-dispatched kernel (scalar or AVX2 — both charge the
  // same probe count): double the probe stride until overshooting, then
  // binary search the bracketed range. This gives the amortized bound
  // LFTJ's worst-case optimality relies on.
  std::uint64_t comparisons = 0;
  const std::size_t first =
      simd::SeekLowerBound(vals.data(), lo, end, bound, &comparisons);
  Touch(comparisons);
  pos_[depth_] = first;
  at_end_ = first >= end;
}

// --- Merged two-tier mode ---------------------------------------------------

void TrieIterator::AdvanceMainToSurviving(int d) {
  if (!m_active_[d]) return;
  const std::vector<Value>& mvals = trie_->values(d);
  while (m_pos_[d] < m_end_[d]) {
    const Value v = mvals[m_pos_[d]];
    Touch();
    if (!t_active_[d]) {
      t_here_[d] = 0;
      return;
    }
    // Position the tombstone cursor at the first deleted value >= v. Both
    // cursors only move forward within the group, so this stays amortized.
    const std::vector<Value>& tvals = del_->values(d);
    if (t_pos_[d] < t_end_[d] && tvals[t_pos_[d]] < v) {
      std::uint64_t comparisons = 0;
      t_pos_[d] = simd::SeekLowerBound(tvals.data(), t_pos_[d], t_end_[d], v,
                                       &comparisons);
      Touch(comparisons);
    }
    if (t_pos_[d] >= t_end_[d] || tvals[t_pos_[d]] != v) {
      t_here_[d] = 0;  // untouched by deletion: survives whole
      return;
    }
    // v is tombstoned at least partially: it survives iff some leaf under
    // it does. Equal leaf counts mean the whole subtree is gone (the
    // tombstone view is a subset of the main view, so counts compare
    // exactly) — skip the value.
    const std::size_t full = SubtreeLeafCount(*trie_, d, m_pos_[d]);
    const std::size_t dead = SubtreeLeafCount(*del_, d, t_pos_[d]);
    Touch(2);
    if (dead < full) {
      t_here_[d] = 1;  // partially deleted: descend will filter deeper
      return;
    }
    ++m_pos_[d];
  }
}

void TrieIterator::MergedPosition(int d) {
  const bool m_ok = m_active_[d] != 0 && m_pos_[d] < m_end_[d];
  const bool a_ok = a_active_[d] != 0 && a_pos_[d] < a_end_[d];
  if (!m_ok && !a_ok) {
    m_here_[d] = a_here_[d] = 0;
    at_end_ = true;
    return;
  }
  const Value mk = m_ok ? trie_->values(d)[m_pos_[d]] : Value{};
  const Value ak = a_ok ? add_->values(d)[a_pos_[d]] : Value{};
  if (m_ok && (!a_ok || mk <= ak)) {
    key_[d] = mk;
    m_here_[d] = 1;
    a_here_[d] = (a_ok && ak == mk) ? 1 : 0;
  } else {
    key_[d] = ak;
    a_here_[d] = 1;
    m_here_[d] = 0;
    t_here_[d] = 0;  // tombstones only shadow main values
  }
  at_end_ = false;
}

void TrieIterator::MergedOpen() {
  CLFTJ_DCHECK(!at_end_);
  CLFTJ_DCHECK(depth_ + 1 < trie_->depth());
  const int nd = depth_ + 1;
  if (depth_ < 0) {
    m_begin_[nd] = 0;
    m_end_[nd] = trie_->values(0).size();
    m_active_[nd] = m_end_[nd] > 0 ? 1 : 0;
    a_begin_[nd] = 0;
    a_end_[nd] = add_ != nullptr ? add_->values(0).size() : 0;
    a_active_[nd] = a_end_[nd] > 0 ? 1 : 0;
    t_begin_[nd] = 0;
    t_end_[nd] = del_ != nullptr ? del_->values(0).size() : 0;
    t_active_[nd] = t_end_[nd] > 0 ? 1 : 0;
  } else {
    const int d = depth_;
    if (m_here_[d] != 0) {
      const auto& starts = trie_->starts(d);
      m_begin_[nd] = starts[m_pos_[d]];
      m_end_[nd] = starts[m_pos_[d] + 1];
      m_active_[nd] = 1;
    } else {
      m_active_[nd] = 0;
    }
    if (a_here_[d] != 0) {
      const auto& starts = add_->starts(d);
      a_begin_[nd] = starts[a_pos_[d]];
      a_end_[nd] = starts[a_pos_[d] + 1];
      a_active_[nd] = 1;
    } else {
      a_active_[nd] = 0;
    }
    if (m_here_[d] != 0 && t_here_[d] != 0) {
      const auto& starts = del_->starts(d);
      t_begin_[nd] = starts[t_pos_[d]];
      t_end_[nd] = starts[t_pos_[d] + 1];
      t_active_[nd] = 1;
    } else {
      t_active_[nd] = 0;
    }
  }
  m_pos_[nd] = m_begin_[nd];
  a_pos_[nd] = a_begin_[nd];
  t_pos_[nd] = t_begin_[nd];
  ++depth_;
  Touch();  // loading the first child
  AdvanceMainToSurviving(nd);
  MergedPosition(nd);
  // A surviving parent value guarantees a surviving child (subtree leaf
  // counts are how survival is defined), so the merged group is never
  // empty on open.
  CLFTJ_DCHECK(!at_end_);
}

void TrieIterator::MergedNext() {
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  const int d = depth_;
  if (m_here_[d] != 0) {
    ++m_pos_[d];
    Touch();
    AdvanceMainToSurviving(d);
  }
  if (a_here_[d] != 0) {
    ++a_pos_[d];
    Touch();
  }
  MergedPosition(d);
}

void TrieIterator::MergedSeek(Value bound) {
  CLFTJ_DCHECK(depth_ >= 0 && !at_end_);
  const int d = depth_;
  if (key_[d] >= bound) {
    Touch();
    return;
  }
  // Each tier cursor fast-paths when already positioned at or past the
  // bound (no probe charged — the merged key check above already paid for
  // the load) and otherwise gallops through the dispatched kernel, so both
  // tiers ride the same scalar/AVX2 arm as plain Seek.
  if (m_active_[d] != 0 && m_pos_[d] < m_end_[d]) {
    const std::vector<Value>& mvals = trie_->values(d);
    if (mvals[m_pos_[d]] < bound) {
      std::uint64_t comparisons = 0;
      m_pos_[d] = simd::SeekLowerBound(mvals.data(), m_pos_[d], m_end_[d],
                                       bound, &comparisons);
      Touch(comparisons);
    }
    AdvanceMainToSurviving(d);
  }
  if (a_active_[d] != 0 && a_pos_[d] < a_end_[d]) {
    const std::vector<Value>& avals = add_->values(d);
    if (avals[a_pos_[d]] < bound) {
      std::uint64_t comparisons = 0;
      a_pos_[d] = simd::SeekLowerBound(avals.data(), a_pos_[d], a_end_[d],
                                       bound, &comparisons);
      Touch(comparisons);
    }
  }
  MergedPosition(d);
}

}  // namespace clftj
