#ifndef CLFTJ_UTIL_COMMON_H_
#define CLFTJ_UTIL_COMMON_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace clftj {

/// A single attribute value. The library is domain-agnostic: graph node ids,
/// person ids, etc. are all encoded as 64-bit integers. String-keyed data
/// enters the Value domain through the per-database Dictionary
/// (src/data/dictionary.h), which interns each distinct string to a dense
/// id at load time; the join core never sees a string.
using Value = std::int64_t;

/// Logical type of one relation column. The physical storage is always the
/// integer Value domain; kString marks a column whose values are dictionary
/// ids and must be decoded at the output boundary. Carried on Relation (and
/// through it on Database); the index/join layers ignore it entirely.
enum class ColumnType : std::uint8_t {
  kInt = 0,     // values are plain integers
  kString = 1,  // values are Dictionary ids (decode for display/save)
};

/// A tuple of attribute values (one row of a relation).
using Tuple = std::vector<Value>;

/// Index of a query variable in the query's canonical variable list.
using VarId = int;

/// Index of an atom within a query.
using AtomId = int;

/// Index of a node within a tree decomposition.
using NodeId = int;

/// Sentinel for "no variable" / "no node".
inline constexpr int kNone = -1;

/// Sentinel value used for unassigned variables (the paper's ⊥).
inline constexpr Value kNullValue = std::numeric_limits<Value>::min();

}  // namespace clftj

#endif  // CLFTJ_UTIL_COMMON_H_
