#ifndef CLFTJ_UTIL_PACKED_KEY_H_
#define CLFTJ_UTIL_PACKED_KEY_H_

#include <cstdint>

#include "util/common.h"
#include "util/hash.h"

namespace clftj {

/// Fixed-size encoding of an adhesion assignment (the cache key of CLFTJ).
///
/// The paper's implementation caps adhesion keys at two dimensions
/// (CacheOptions::max_dimension = 2), so the common case fits entirely in
/// two 64-bit words and key construction, hashing and comparison never
/// touch the heap. Keys wider than kInlineDims take the *spill path*: the
/// PackedKey carries a borrowed pointer to the caller's value buffer, and
/// the cache interns the values into its own arena on insert. This keeps
/// max_dimension raisable without giving up the allocation-free hot path
/// for the configurations the paper actually runs.
///
/// A PackedKey is a value type; for wide keys the pointed-to buffer must
/// outlive every cache call the key is passed to (per-node key buffers in
/// the join runners guarantee this: a node is never re-entered while one of
/// its own activations is live).
struct PackedKey {
  static constexpr int kInlineDims = 2;

  std::uint64_t lo = 0;  // dims >= 1: value 0       | wide: borrowed pointer
  std::uint64_t hi = 0;  // dims == 2: value 1       | wide: unused
  std::uint32_t dims = 0;

  bool wide() const { return dims > kInlineDims; }

  const Value* wide_data() const {
    return reinterpret_cast<const Value*>(static_cast<std::uintptr_t>(lo));
  }

  /// Encodes `n` values. For n <= kInlineDims the values are copied inline;
  /// otherwise the key borrows `values` (see class comment).
  static PackedKey Pack(const Value* values, int n) {
    // Pack/At/Hash hardcode the two-word inline layout. Raising kInlineDims
    // without widening lo/hi would silently truncate keys (distinct
    // adhesion assignments comparing equal); widen the payload first.
    static_assert(kInlineDims == 2,
                  "inline layout stores exactly two values in lo/hi");
    PackedKey key;
    key.dims = static_cast<std::uint32_t>(n);
    if (n > kInlineDims) {
      key.lo = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(values));
      return key;
    }
    if (n >= 1) key.lo = static_cast<std::uint64_t>(values[0]);
    if (n == 2) key.hi = static_cast<std::uint64_t>(values[1]);
    return key;
  }

  /// The i-th key value (0 <= i < dims), regardless of representation.
  Value At(int i) const {
    if (wide()) return wide_data()[i];
    return static_cast<Value>(i == 0 ? lo : hi);
  }

  /// Hash of the key *values* (never of the borrowed pointer), mixed over
  /// `seed`. Inline and spilled keys of equal content and width hash alike.
  std::uint64_t Hash(std::uint64_t seed) const {
    std::uint64_t h = HashCombine(seed, dims);
    if (wide()) {
      const Value* v = wide_data();
      for (std::uint32_t i = 0; i < dims; ++i) {
        h = HashCombine(h, static_cast<std::uint64_t>(v[i]));
      }
      return h;
    }
    if (dims >= 1) h = HashCombine(h, lo);
    if (dims == 2) h = HashCombine(h, hi);
    return h;
  }
};

}  // namespace clftj

#endif  // CLFTJ_UTIL_PACKED_KEY_H_
