#ifndef CLFTJ_UTIL_RNG_H_
#define CLFTJ_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace clftj {

/// Deterministic 64-bit PRNG (xorshift128+ seeded via splitmix64). All data
/// generators take explicit seeds so every experiment in the repository is
/// bit-reproducible across platforms (std::mt19937 distributions are not
/// guaranteed identical across standard libraries).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams everywhere.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64 random bits.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t Uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Bernoulli trial with success probability p.
  bool Flip(double p) { return UniformReal() < p; }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

/// Samples from a Zipf(n, s) distribution over {0, ..., n-1}: rank r is
/// drawn with probability proportional to 1 / (r+1)^s. Used to synthesize
/// the skewed value distributions of the SNAP and IMDB workloads.
class ZipfSampler {
 public:
  /// Precomputes the CDF. Requires n > 0 and s >= 0.
  ZipfSampler(std::size_t n, double s);

  /// Draws one rank in [0, n).
  std::size_t Sample(Rng& rng) const;

  /// Number of distinct ranks.
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative probabilities
};

}  // namespace clftj

#endif  // CLFTJ_UTIL_RNG_H_
