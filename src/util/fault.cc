#include "util/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace clftj {
namespace fault {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

struct State {
  Config config;
  std::array<std::atomic<std::uint64_t>, kNumSites> seen{};
  std::array<std::atomic<std::uint64_t>, kNumSites> fired{};
};

State& GlobalState() {
  static State state;
  return state;
}

// splitmix64: the repository's standard bit mixer (util/rng.cc seeds the
// same way), giving a platform-independent pseudo-random firing pattern.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void ResetCounters(State& state) {
  for (auto& c : state.seen) c.store(0, std::memory_order_relaxed);
  for (auto& c : state.fired) c.store(0, std::memory_order_relaxed);
}

bool AnyArmed(const Config& config) {
  for (const std::uint64_t p : config.period) {
    if (p > 0) return true;
  }
  return false;
}

}  // namespace

namespace internal {

bool FireSlow(Site site) {
  State& state = GlobalState();
  const int s = static_cast<int>(site);
  const std::uint64_t period = state.config.period[s];
  // Every opportunity is counted, even at disabled sites, so tests can
  // assert a site was reached at all.
  const std::uint64_t index =
      state.seen[s].fetch_add(1, std::memory_order_relaxed);
  if (period == 0) return false;
  const std::uint64_t draw =
      Mix(state.config.seed ^ (0x51edu + 0x9e37u * (s + 1)) ^ (index * 2u));
  if (draw % period != 0) return false;
  state.fired[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace internal

void Configure(const Config& config) {
  State& state = GlobalState();
  state.config = config;
  ResetCounters(state);
  internal::g_enabled.store(AnyArmed(config), std::memory_order_relaxed);
}

void Disable() { Configure(Config{}); }

Config ActiveConfig() { return GlobalState().config; }

bool ConfigureFromEnv() {
  const char* raw = std::getenv("CLFTJ_FAULTS");
  if (raw == nullptr || raw[0] == '\0') return false;
  Config config;
  std::string text(raw);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = item.substr(0, eq);
    char* tail = nullptr;
    const std::uint64_t value =
        std::strtoull(item.c_str() + eq + 1, &tail, 10);
    if (tail == nullptr || *tail != '\0') return false;
    if (key == "seed") {
      config.seed = value;
    } else if (key == "delay_ms") {
      config.delay_ms = value;
    } else if (key == "trie_build") {
      config.period[static_cast<int>(Site::kTrieBuild)] = value;
    } else if (key == "cache_insert") {
      config.period[static_cast<int>(Site::kCacheInsert)] = value;
    } else if (key == "materialize") {
      config.period[static_cast<int>(Site::kMaterialize)] = value;
    } else if (key == "deadline") {
      config.period[static_cast<int>(Site::kDeadlineTrip)] = value;
    } else if (key == "worker_delay") {
      config.period[static_cast<int>(Site::kWorkerDelay)] = value;
    } else if (key == "request_bytes") {
      config.period[static_cast<int>(Site::kRequestBytes)] = value;
    } else {
      return false;
    }
  }
  Configure(config);
  return Enabled();
}

std::uint64_t Fired(Site site) {
  return GlobalState()
      .fired[static_cast<int>(site)]
      .load(std::memory_order_relaxed);
}

std::uint64_t Seen(Site site) {
  return GlobalState()
      .seen[static_cast<int>(site)]
      .load(std::memory_order_relaxed);
}

void MaybeThrowAlloc(Site site) {
  if (Fire(site)) throw InjectedFault();
}

bool MaybeDelay(Site site) {
  if (!Fire(site)) return false;
  const std::uint64_t ms = GlobalState().config.delay_ms;
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  return true;
}

bool MaybeCorrupt(Site site, std::string* bytes) {
  if (bytes == nullptr || bytes->empty()) return false;
  if (!Fire(site)) return false;
  State& state = GlobalState();
  const std::uint64_t base = Mix(
      state.config.seed ^ Fired(site) ^ (bytes->size() * 0x9e3779b9ull));
  // Flip up to three seed-chosen bytes; never produce '\n' (the framing
  // byte) so a corrupted request stays one corrupted *line*, the failure
  // mode the parser must survive, rather than silently becoming two.
  const int flips = 1 + static_cast<int>(base % 3);
  for (int i = 0; i < flips; ++i) {
    const std::uint64_t draw = Mix(base + i);
    const std::size_t at = draw % bytes->size();
    char c = static_cast<char>((*bytes)[at] ^ (0x01 + (draw >> 8) % 0x7f));
    if (c == '\n' || c == '\r') c = '#';
    (*bytes)[at] = c;
  }
  return true;
}

ScopedFaults::ScopedFaults(const Config& config)
    : previous_(ActiveConfig()), was_enabled_(Enabled()) {
  Configure(config);
}

ScopedFaults::~ScopedFaults() {
  if (was_enabled_) {
    Configure(previous_);
  } else {
    Disable();
  }
}

}  // namespace fault
}  // namespace clftj
