#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace clftj {

namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  s0_ = SplitMix64(state);
  s1_ = SplitMix64(state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift128+ must not be all-zero
}

std::uint64_t Rng::Next() {
  std::uint64_t x = s0_;
  const std::uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  CLFTJ_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % bound + 1) % bound;
  std::uint64_t r = Next();
  while (r > limit) r = Next();
  return r % bound;
}

double Rng::UniformReal() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  CLFTJ_CHECK(n > 0);
  CLFTJ_CHECK(s >= 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = acc;
  }
  for (std::size_t r = 0; r < n; ++r) cdf_[r] /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformReal();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace clftj
