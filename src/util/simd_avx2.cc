// The repository's single AVX2 translation unit: the only file compiled
// with -mavx2 (see CMakeLists.txt), so no other TU can accidentally emit
// AVX2 instructions and the scalar dispatch arm stays runnable on any
// x86-64. Under -DCLFTJ_DISABLE_AVX2 (the forced-scalar CI lane) or a
// non-x86 toolchain this file compiles down to a null registration.
//
// Both kernels here are lane-for-lane translations of their scalar
// reference twins and follow the counting contract of docs/simd.md: they
// charge exactly the probes the scalar implementation would consume, so
// ExecStats (memory_accesses included) is bit-identical across dispatch
// arms. Pinned by the randomized differential suite in tests/simd_test.cc.

#include "util/simd.h"

#if defined(__AVX2__) && !defined(CLFTJ_DISABLE_AVX2)

#include <immintrin.h>

#include "trie/leapfrog.h"

namespace clftj {

namespace {

// Sortedness makes every 4-probe compare mask a prefix of ones; the number
// of trailing ones is the count of probes below the bound (same table as
// the scalar unroll in leapfrog.h).
constexpr unsigned char kTrailingOnes[16] = {0, 1, 0, 2, 0, 1, 0, 3,
                                             0, 1, 0, 2, 0, 1, 0, 4};

// Four scattered 64-bit loads folded into one vector. The indices are
// pre-clamped by the caller, so every load is in range; set_epi64x compiles
// to plain loads + inserts, which beats vpgatherqq latency on most cores
// for this access pattern.
inline __m256i Load4(const Value* vals, std::size_t i0, std::size_t i1,
                     std::size_t i2, std::size_t i3) {
  return _mm256_set_epi64x(static_cast<long long>(vals[i3]),
                           static_cast<long long>(vals[i2]),
                           static_cast<long long>(vals[i1]),
                           static_cast<long long>(vals[i0]));
}

// 4-bit mask of lanes with value < bound. Value is signed int64, so the
// signed vpcmpgtq is the exact `<`.
inline unsigned LessMask(__m256i v, __m256i vbound) {
  const __m256i lt = _mm256_cmpgt_epi64(vbound, v);
  return static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(lt)));
}

}  // namespace

std::size_t GallopingLowerBoundAvx2(const Value* vals, std::size_t pos,
                                    std::size_t end, Value bound,
                                    std::uint64_t* comparisons) {
  std::uint64_t probes = 0;
  std::size_t lo = pos;  // invariant: vals[lo] < bound
  std::size_t hi = end;  // bracket end: vals[hi] >= bound, or hi == end
  std::size_t s = 1;     // round stride; probe k sits at pos + 2^k - 1
  const std::size_t last = end - 1;
  const __m256i vbound = _mm256_set1_epi64x(bound);
  while (true) {
    // The scalar unroll's four independent clamped loads become one vector
    // load set + one signed compare + one movemask; the in-range mask (a
    // prefix, since the indices increase) squashes the clamped lanes
    // exactly like the scalar `in_range &` did. The probe positions are
    // identical to the scalar round's, so charging is the same
    // trailing-ones decode — the vector is just a cheaper way to issue and
    // combine the same four comparisons.
    const std::size_t idx[4] = {pos + 2 * s - 1, pos + 4 * s - 1,
                                pos + 8 * s - 1, pos + 16 * s - 1};
    const unsigned in_range =
        static_cast<unsigned>(idx[0] < end) |
        static_cast<unsigned>(idx[1] < end) << 1 |
        static_cast<unsigned>(idx[2] < end) << 2 |
        static_cast<unsigned>(idx[3] < end) << 3;
    const __m256i v =
        Load4(vals, idx[0] < end ? idx[0] : last, idx[1] < end ? idx[1] : last,
              idx[2] < end ? idx[2] : last, idx[3] < end ? idx[3] : last);
    const unsigned mask = LessMask(v, vbound) & in_range;
    if (mask == 0xF) {  // all four probes below bound: next round, 16x on
      probes += 4;
      lo = idx[3];
      s <<= 4;
      continue;
    }
    const unsigned n = kTrailingOnes[mask];
    probes += n;
    if (n > 0) lo = idx[n - 1];
    const std::size_t fail = idx[n];
    if (fail < end) {
      ++probes;  // the failing comparison is a real probe
      hi = fail;
    }  // else: past the end — the scalar loop exits without comparing
    break;
  }

  // Branch-free binary tail, identical to the scalar kernel's — same
  // halving sequence, same loads, one charged probe per iteration, so the
  // counting contract holds by construction. Wider tails were evaluated
  // and rejected: a 4-way fan-out (one vector of scattered pivots per
  // round, ~log5 rounds) measures ~2x SLOWER than this loop on
  // cache-resident brackets, because four scattered lane loads + mask
  // decode cost far more per round than the halving step's single load,
  // and the memory-level parallelism it buys only pays when probes miss
  // all cache levels (see docs/simd.md and the bench_seek profiles).
  std::size_t first = lo + 1;
  std::size_t count = hi - lo - 1;
  while (count > 0) {
    ++probes;
    const std::size_t half = count >> 1;
    const std::size_t mid = first + half;
    const bool less = vals[mid] < bound;
    first = less ? mid + 1 : first;
    count = less ? count - half - 1 : half;
  }
  *comparisons += probes;
  return first;
}

namespace simd {

namespace {

// Compare + compress over 4-row blocks: the predicate conjunction is
// evaluated as vector compares ANDed into one pass mask, failing blocks are
// skipped wholesale (testz), and surviving lanes are emitted through the
// movemask bits in ascending order — the same keep list the scalar arm
// builds row by row. Rows beyond the last full block take the scalar tail.
void FilterRowsAvx2(const RowFilter& filter, std::size_t rows,
                    std::vector<std::uint32_t>* keep) {
  std::size_t i = 0;
  for (; i + 4 <= rows; i += 4) {
    __m256i pass = _mm256_set1_epi64x(-1);
    for (std::size_t c = 0; c < filter.num_consts; ++c) {
      const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          filter.consts[c].column + i));
      pass = _mm256_and_si256(
          pass, _mm256_cmpeq_epi64(
                    v, _mm256_set1_epi64x(filter.consts[c].constant)));
      if (_mm256_testz_si256(pass, pass)) break;  // block fully filtered out
    }
    if (!_mm256_testz_si256(pass, pass)) {
      for (std::size_t e = 0; e < filter.num_eqs; ++e) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(filter.eqs[e].left + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(filter.eqs[e].right + i));
        pass = _mm256_and_si256(pass, _mm256_cmpeq_epi64(a, b));
        if (_mm256_testz_si256(pass, pass)) break;
      }
    }
    unsigned mask =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(pass)));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      keep->push_back(static_cast<std::uint32_t>(i + lane));
      mask &= mask - 1;
    }
  }
  for (; i < rows; ++i) {
    bool ok = true;
    for (std::size_t c = 0; ok && c < filter.num_consts; ++c) {
      ok = filter.consts[c].column[i] == filter.consts[c].constant;
    }
    for (std::size_t e = 0; ok && e < filter.num_eqs; ++e) {
      ok = filter.eqs[e].left[i] == filter.eqs[e].right[i];
    }
    if (ok) keep->push_back(static_cast<std::uint32_t>(i));
  }
}

// Adjacent-equal dedup over the merged sort permutation: for each 4-row
// block the current rows {order[i..i+3]} and their predecessors
// {order[i-1..i+2]} are gathered (the permutation scatters rows, so this is
// a genuine gather pattern), compared per column, and the per-lane
// equal-to-predecessor mask ANDed across columns; lanes that differ are
// emitted in ascending order — the same keep list the scalar arm builds.
// order[0] is unconditionally kept, so blocks start at i = 1.
void DedupRowsAvx2(const Value* const* cols, int k, const std::size_t* order,
                   std::size_t n, std::vector<std::size_t>* keep) {
  if (n == 0) return;
  keep->push_back(order[0]);
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const __m256i cur_idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(order + i));
    const __m256i prev_idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(order + i - 1));
    __m256i equal = _mm256_set1_epi64x(-1);
    for (int c = 0; c < k; ++c) {
      const long long* base = reinterpret_cast<const long long*>(cols[c]);
      const __m256i cur = _mm256_i64gather_epi64(base, cur_idx, 8);
      const __m256i prev = _mm256_i64gather_epi64(base, prev_idx, 8);
      equal = _mm256_and_si256(equal, _mm256_cmpeq_epi64(cur, prev));
      if (_mm256_testz_si256(equal, equal)) break;  // all 4 rows differ
    }
    unsigned keep_mask =
        static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(equal))) ^ 0xFu;
    while (keep_mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(keep_mask));
      keep->push_back(order[i + lane]);
      keep_mask &= keep_mask - 1;
    }
  }
  for (; i < n; ++i) {
    const std::size_t row = order[i];
    const std::size_t prev = order[i - 1];
    bool equal = true;
    for (int c = 0; c < k && equal; ++c) {
      equal = cols[c][row] == cols[c][prev];
    }
    if (!equal) keep->push_back(row);
  }
}

constexpr Kernels kAvx2Kernels = {
    "avx2",
    &GallopingLowerBoundAvx2,
    &FilterRowsAvx2,
    &DedupRowsAvx2,
};

}  // namespace

const Kernels* Avx2KernelsOrNull() { return &kAvx2Kernels; }

}  // namespace simd
}  // namespace clftj

#else  // !__AVX2__ || CLFTJ_DISABLE_AVX2

namespace clftj {
namespace simd {

// Forced-scalar build: no AVX2 arm to register. GallopingLowerBoundAvx2 is
// declared (trie/leapfrog.h) but deliberately undefined, so a direct call
// that bypassed the dispatch table would fail at link time instead of
// silently running the wrong arm.
const Kernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace simd
}  // namespace clftj

#endif
