#include "util/simd.h"

#include <atomic>

#include "trie/leapfrog.h"  // the scalar seek reference implementation

namespace clftj {
namespace simd {

namespace {

// Scalar reference arm of the row filter. Kept branchy-per-predicate with
// early exit, mirroring the loop BuildFilteredTrie ran before the kernel
// split; the keep list is a pure conjunction either way, so both arms emit
// identical indices.
void FilterRowsScalar(const RowFilter& filter, std::size_t rows,
                      std::vector<std::uint32_t>* keep) {
  for (std::size_t i = 0; i < rows; ++i) {
    bool ok = true;
    for (std::size_t c = 0; ok && c < filter.num_consts; ++c) {
      ok = filter.consts[c].column[i] == filter.consts[c].constant;
    }
    for (std::size_t e = 0; ok && e < filter.num_eqs; ++e) {
      ok = filter.eqs[e].left[i] == filter.eqs[e].right[i];
    }
    if (ok) keep->push_back(static_cast<std::uint32_t>(i));
  }
}

// Scalar reference arm of the dedup pass: the exact loop Normalize ran
// before the kernel split. Row order[0] is always kept; row order[i] is
// kept iff it differs from order[i-1] in at least one column.
void DedupRowsScalar(const Value* const* cols, int k, const std::size_t* order,
                     std::size_t n, std::vector<std::size_t>* keep) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = order[i];
    if (i > 0) {
      const std::size_t prev = order[i - 1];
      bool equal = true;
      for (int c = 0; c < k && equal; ++c) {
        equal = cols[c][row] == cols[c][prev];
      }
      if (equal) continue;
    }
    keep->push_back(row);
  }
}

constexpr Kernels kScalarKernels = {
    "scalar",
    &GallopingLowerBound,
    &FilterRowsScalar,
    &DedupRowsScalar,
};

std::atomic<int> g_mode{static_cast<int>(Mode::kAuto)};

const Kernels* ResolveFor(Mode mode) {
  switch (mode) {
    case Mode::kScalar:
      return &kScalarKernels;
    case Mode::kAvx2:
      return Avx2Available() ? Avx2KernelsOrNull() : nullptr;
    case Mode::kAuto:
      return Avx2Available() ? Avx2KernelsOrNull() : &kScalarKernels;
  }
  return nullptr;
}

}  // namespace

namespace internal {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels& ResolveActive() {
  const Kernels* k = ResolveFor(CurrentMode());
  if (k == nullptr) k = &kScalarKernels;  // defensive; cannot happen
  // Several threads may race the first resolution; they all compute the
  // same answer, so last-write-wins is harmless.
  g_active.store(k, std::memory_order_relaxed);
  return *k;
}

}  // namespace internal

const Kernels& ScalarKernels() { return kScalarKernels; }

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

bool Avx2Available() {
  return CpuSupportsAvx2() && Avx2KernelsOrNull() != nullptr;
}

bool SetMode(Mode mode) {
  const Kernels* k = ResolveFor(mode);
  if (k == nullptr) return false;  // kAvx2 requested, arm unavailable
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
  internal::g_active.store(k, std::memory_order_relaxed);
  return true;
}

Mode CurrentMode() {
  return static_cast<Mode>(g_mode.load(std::memory_order_relaxed));
}

bool ParseMode(const std::string& text, Mode* out) {
  if (text == "auto") {
    *out = Mode::kAuto;
  } else if (text == "avx2") {
    *out = Mode::kAvx2;
  } else if (text == "scalar") {
    *out = Mode::kScalar;
  } else {
    return false;
  }
  return true;
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kAuto:
      return "auto";
    case Mode::kAvx2:
      return "avx2";
    case Mode::kScalar:
      return "scalar";
  }
  return "?";
}

std::string Describe() {
  std::string out = Active().name;
  out += " (mode=";
  out += ModeName(CurrentMode());
  out += ", cpu avx2: ";
  out += CpuSupportsAvx2() ? "yes" : "no";
  out += ", avx2 kernels: ";
  out += Avx2KernelsOrNull() != nullptr ? "compiled" : "compiled out";
  out += ")";
  return out;
}

}  // namespace simd
}  // namespace clftj
