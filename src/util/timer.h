#ifndef CLFTJ_UTIL_TIMER_H_
#define CLFTJ_UTIL_TIMER_H_

#include <chrono>

namespace clftj {

/// Wall-clock stopwatch used by benches and examples.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the stopwatch to zero.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace clftj

#endif  // CLFTJ_UTIL_TIMER_H_
