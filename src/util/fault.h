#ifndef CLFTJ_UTIL_FAULT_H_
#define CLFTJ_UTIL_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <new>
#include <string>

namespace clftj {
namespace fault {

/// Deterministic, seeded fault injection points. Compiled in always —
/// the disabled fast path is a single relaxed atomic load — and enabled
/// either programmatically (tests: ScopedFaults) or via the CLFTJ_FAULTS
/// environment variable (chaos runs against real binaries). Each site
/// fires on a pseudo-random subset of its opportunities, derived purely
/// from (seed, site, opportunity index): equal configs replay equal fault
/// patterns, which is what lets the chaos suite assert that a retry after
/// a transient fault reproduces the fault-free result bit-identically.
enum class Site : int {
  /// Allocation failure while building a trie (Trie::FromColumns): throws
  /// InjectedFault (a std::bad_alloc). Exercises exception safety of every
  /// engine's substrate build; the service maps it to RunStatus::kInternal.
  kTrieBuild = 0,
  /// Allocation failure on a cache insert: the insert is dropped (counted
  /// as a cache_reject). Graceful degradation — correctness never depends
  /// on an entry being cached, so results must stay bit-identical.
  kCacheInsert = 1,
  /// Allocation failure while materializing an intermediate/result tuple:
  /// reported as the materialization budget (RunStatus::kOutOfMemory).
  kMaterialize = 2,
  /// Forced deadline trip inside DeadlineChecker's stride check:
  /// reported as RunStatus::kTimeout.
  kDeadlineTrip = 3,
  /// Service worker sleeps Config::delay_ms before executing a request —
  /// builds queue pressure so admission control sheds load.
  kWorkerDelay = 4,
  /// The server corrupts one request line before parsing it (deterministic
  /// byte flips): must surface as RunStatus::kBadQuery, never a crash.
  kRequestBytes = 5,
};

inline constexpr int kNumSites = 6;

/// Per-site firing configuration. `period[site]` == 0 disables the site;
/// N > 0 fires on roughly one out of every N opportunities, on a
/// seed-derived pseudo-random pattern (not a fixed modulus, which would
/// synchronize with loop structure and miss interleavings). period == 1
/// fires on every opportunity.
struct Config {
  std::uint64_t seed = 0;
  std::array<std::uint64_t, kNumSites> period{};  // all zero: disabled
  /// Sleep per kWorkerDelay firing, in milliseconds.
  std::uint64_t delay_ms = 5;
};

namespace internal {
/// Armed flag, exposed so the hooks' disabled fast path inlines to one
/// relaxed load + predictable branch. Everything else lives in fault.cc.
extern std::atomic<bool> g_enabled;
bool FireSlow(Site site);
}  // namespace internal

/// True when any site is armed. The inline fast path for every hook.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Installs `config` (replacing any previous one) and arms injection if
/// any site has a nonzero period. Thread-safe only while no concurrent
/// Fire() runs — configure before starting workers, or between requests.
void Configure(const Config& config);

/// Disarms all sites and resets occurrence counters.
void Disable();

/// Parses CLFTJ_FAULTS (e.g. "seed=7,cache_insert=64,deadline=100,
/// worker_delay=2,delay_ms=10,trie_build=32,materialize=16,
/// request_bytes=8") and installs it. Returns false (leaving injection
/// disabled) when the variable is unset or unparsable.
bool ConfigureFromEnv();

/// The active config (meaningful while Enabled()).
Config ActiveConfig();

/// One opportunity at `site`: returns true when the fault fires.
/// Deterministic in the per-site opportunity index; counters are atomic so
/// concurrent workers each draw distinct indices.
inline bool Fire(Site site) {
  if (!Enabled()) return false;
  return internal::FireSlow(site);
}

/// How many times `site` fired / was consulted since the last Configure.
std::uint64_t Fired(Site site);
std::uint64_t Seen(Site site);

/// The exception thrown by injected allocation failures. Derives
/// std::bad_alloc so handlers written for real allocation failure catch
/// injected ones identically.
struct InjectedFault : std::bad_alloc {
  const char* what() const noexcept override {
    return "injected allocation failure (clftj::fault)";
  }
};

/// Throws InjectedFault when `site` fires; no-op otherwise. For sites that
/// model allocation failure at a point where the code would really throw.
void MaybeThrowAlloc(Site site);

/// Sleeps Config::delay_ms when `site` fires (kWorkerDelay). Returns
/// whether it slept.
bool MaybeDelay(Site site);

/// Deterministically corrupts `*bytes` in place when `site` fires
/// (kRequestBytes): flips a few seed-chosen byte positions. Returns
/// whether it corrupted. Empty strings are left alone.
bool MaybeCorrupt(Site site, std::string* bytes);

/// RAII config swap for tests: installs `config` on construction and
/// restores the previous state (including counters reset) on destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(const Config& config);
  ~ScopedFaults();
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;

 private:
  Config previous_;
  bool was_enabled_;
};

}  // namespace fault
}  // namespace clftj

#endif  // CLFTJ_UTIL_FAULT_H_
