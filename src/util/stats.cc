#include "util/stats.h"

#include <algorithm>
#include <sstream>

namespace clftj {

void ExecStats::Merge(const ExecStats& other) {
  memory_accesses += other.memory_accesses;
  intermediate_tuples += other.intermediate_tuples;
  output_tuples += other.output_tuples;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_inserts += other.cache_inserts;
  cache_rejects += other.cache_rejects;
  cache_evictions += other.cache_evictions;
  cache_entries_peak = std::max(cache_entries_peak, other.cache_entries_peak);
  cache_bytes_peak = std::max(cache_bytes_peak, other.cache_bytes_peak);
}

std::string ExecStats::ToString() const {
  std::ostringstream os;
  os << "mem_accesses=" << memory_accesses
     << " intermediates=" << intermediate_tuples
     << " outputs=" << output_tuples << " cache_hits=" << cache_hits
     << " cache_misses=" << cache_misses << " cache_inserts=" << cache_inserts
     << " cache_rejects=" << cache_rejects
     << " cache_evictions=" << cache_evictions
     << " cache_peak=" << cache_entries_peak
     << " cache_bytes_peak=" << cache_bytes_peak;
  return os.str();
}

}  // namespace clftj
