#include "util/stats.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace clftj {

void ExecStats::Merge(const ExecStats& other) {
  memory_accesses += other.memory_accesses;
  intermediate_tuples += other.intermediate_tuples;
  output_tuples += other.output_tuples;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_inserts += other.cache_inserts;
  cache_rejects += other.cache_rejects;
  cache_evictions += other.cache_evictions;
  cache_entries_peak = std::max(cache_entries_peak, other.cache_entries_peak);
  cache_bytes_peak = std::max(cache_bytes_peak, other.cache_bytes_peak);
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  substrate_builds += other.substrate_builds;
  substrate_reuses += other.substrate_reuses;
  plan_resolve_ns += other.plan_resolve_ns;
  substrate_build_ns += other.substrate_build_ns;
  batch_size += other.batch_size;
  batch_shared_execs += other.batch_shared_execs;
  batch_prefix_seeds += other.batch_prefix_seeds;
}

std::string ExecStats::ToString() const {
  std::ostringstream os;
  os << "mem_accesses=" << memory_accesses
     << " intermediates=" << intermediate_tuples
     << " outputs=" << output_tuples << " cache_hits=" << cache_hits
     << " cache_misses=" << cache_misses << " cache_inserts=" << cache_inserts
     << " cache_rejects=" << cache_rejects
     << " cache_evictions=" << cache_evictions
     << " cache_peak=" << cache_entries_peak
     << " cache_bytes_peak=" << cache_bytes_peak
     << " plan_cache_hits=" << plan_cache_hits
     << " plan_cache_misses=" << plan_cache_misses
     << " substrate_builds=" << substrate_builds
     << " substrate_reuses=" << substrate_reuses
     << " plan_resolve_ns=" << plan_resolve_ns
     << " substrate_build_ns=" << substrate_build_ns
     << " batch_size=" << batch_size
     << " batch_shared_execs=" << batch_shared_execs
     << " batch_prefix_seeds=" << batch_prefix_seeds;
  return os.str();
}

namespace {

// Wire keys, short on purpose: the stats token rides on every OK response.
struct WireField {
  const char* key;
  std::uint64_t ExecStats::*member;
};

constexpr WireField kWireFields[] = {
    {"ma", &ExecStats::memory_accesses},
    {"it", &ExecStats::intermediate_tuples},
    {"ot", &ExecStats::output_tuples},
    {"ch", &ExecStats::cache_hits},
    {"cm", &ExecStats::cache_misses},
    {"ci", &ExecStats::cache_inserts},
    {"cr", &ExecStats::cache_rejects},
    {"ce", &ExecStats::cache_evictions},
    {"cep", &ExecStats::cache_entries_peak},
    {"cbp", &ExecStats::cache_bytes_peak},
    {"pch", &ExecStats::plan_cache_hits},
    {"pcm", &ExecStats::plan_cache_misses},
    {"sb", &ExecStats::substrate_builds},
    {"sr", &ExecStats::substrate_reuses},
    {"prn", &ExecStats::plan_resolve_ns},
    {"sbn", &ExecStats::substrate_build_ns},
    {"bsz", &ExecStats::batch_size},
    {"bse", &ExecStats::batch_shared_execs},
    {"bps", &ExecStats::batch_prefix_seeds},
};

}  // namespace

std::string ExecStats::ToWire() const {
  std::ostringstream os;
  bool first = true;
  for (const WireField& f : kWireFields) {
    if (!first) os << ',';
    first = false;
    os << f.key << ':' << this->*f.member;
  }
  return os.str();
}

bool ExecStats::FromWire(const std::string& text, ExecStats* out) {
  ExecStats parsed;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::size_t colon = text.find(':', pos);
    if (colon == std::string::npos || colon >= end || colon == pos ||
        colon + 1 == end) {
      return false;
    }
    const std::string key = text.substr(pos, colon - pos);
    const std::string value = text.substr(colon + 1, end - colon - 1);
    char* tail = nullptr;
    const std::uint64_t number = std::strtoull(value.c_str(), &tail, 10);
    if (tail == nullptr || *tail != '\0') return false;
    for (const WireField& f : kWireFields) {
      if (key == f.key) {
        parsed.*f.member = number;
        break;
      }
    }
    pos = end + 1;
  }
  *out = parsed;
  return true;
}

}  // namespace clftj
