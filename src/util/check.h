#ifndef CLFTJ_UTIL_CHECK_H_
#define CLFTJ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight precondition/invariant macros. The library does not use
// exceptions; contract violations abort with a source location, which is the
// appropriate failure mode for programming errors in an embedded join
// library (mirrors the CHECK idiom of large C++ database codebases).

#define CLFTJ_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CLFTJ_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define CLFTJ_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CLFTJ_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Cheap enough to keep on in release builds; hot loops use CLFTJ_DCHECK.
#ifndef NDEBUG
#define CLFTJ_DCHECK(cond) CLFTJ_CHECK(cond)
#else
#define CLFTJ_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // CLFTJ_UTIL_CHECK_H_
