#ifndef CLFTJ_UTIL_HASH_H_
#define CLFTJ_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

#include "util/common.h"

namespace clftj {

/// Mixes `v` into the running hash `seed` (boost::hash_combine style, with a
/// 64-bit splitmix finalizer for better dispersion of small integer keys).
inline std::size_t HashCombine(std::size_t seed, std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ull;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  v ^= v >> 31;
  return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
}

/// Hash functor for Tuple, suitable for unordered_map keys.
struct TupleHash {
  std::size_t operator()(const Tuple& t) const {
    std::size_t h = 0x2545f4914f6cdd1dull;
    for (Value v : t) h = HashCombine(h, static_cast<std::uint64_t>(v));
    return h;
  }
};

}  // namespace clftj

#endif  // CLFTJ_UTIL_HASH_H_
