#ifndef CLFTJ_UTIL_STATS_H_
#define CLFTJ_UTIL_STATS_H_

#include <cstdint>
#include <string>

namespace clftj {

/// Execution counters shared by all join engines. The paper's evaluation is
/// partly framed in terms of memory traffic (Section 1: 45e9 accesses for
/// LFTJ vs 1.4e9 for CLFTJ on a 5-cycle), so every engine threads an
/// ExecStats through its data-structure touches:
///   * trie element comparisons and pointer chases -> memory_accesses
///   * hash table probes and inserts               -> memory_accesses
///   * intermediate tuples materialized            -> intermediate_tuples
/// The counters are a deterministic proxy for DRAM traffic: they count data
/// touches rather than cache-miss events, which is what makes the paper's
/// cross-algorithm comparison reproducible on any host.
struct ExecStats {
  std::uint64_t memory_accesses = 0;
  std::uint64_t intermediate_tuples = 0;
  std::uint64_t output_tuples = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_rejects = 0;     // insert refused by policy/capacity
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries_peak = 0;
  /// Peak payload bytes held by the cache (byte-budget mode only; stays 0
  /// in entry-count mode).
  std::uint64_t cache_bytes_peak = 0;

  // Cross-query reuse counters (the serving loop's plan cache and shared
  // trie substrate). These are charged by CrossQueryReuse::Prepare, not by
  // the engines, so a cold standalone run leaves them all zero.
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  /// Trie builds performed / avoided for this request's atom views. A fully
  /// warm request has substrate_builds == 0: every view came from the
  /// registry.
  std::uint64_t substrate_builds = 0;
  std::uint64_t substrate_reuses = 0;
  /// Wall-clock nanoseconds spent resolving the plan (TD enumeration +
  /// lowering) and building tries — the work reuse amortizes away.
  std::uint64_t plan_resolve_ns = 0;
  std::uint64_t substrate_build_ns = 0;

  // Batch-admission counters (the serving loop's shared-scan scheduler;
  // see docs/serving.md "Batch admission"). Charged by QueryService, not by
  // the engines: a standalone run leaves them zero.
  /// Number of requests grouped into the batch that served this request
  /// (0 on the unbatched FIFO path, >= 1 on the batched path).
  std::uint64_t batch_size = 0;
  /// 1 when this response was answered by a run shared with other
  /// identical batch members (its engine counters are the shared run's,
  /// reported verbatim to every member).
  std::uint64_t batch_shared_execs = 0;
  /// Count-cache entries seeded into this request's shape from another
  /// resident shape with matching subjoin signatures (cross-shape reuse).
  std::uint64_t batch_prefix_seeds = 0;

  /// Resets all counters to zero.
  void Reset() { *this = ExecStats(); }

  /// Merges counters from another run (peaks are max-merged: right for
  /// sequential reuse of one cache). Parallel shards whose private caches
  /// coexist must instead *sum* per-shard peaks — ShardedCachedTrieJoin
  /// does that explicitly after merging.
  void Merge(const ExecStats& other);

  /// Human-readable one-line summary for logs and benches.
  std::string ToString() const;

  /// Compact single-token wire encoding ("ma:1,it:2,...", no spaces) for
  /// the line protocol's OK response. Every counter is emitted.
  std::string ToWire() const;

  /// Parses a ToWire() token. Unknown keys are ignored (a newer server may
  /// emit counters an older client does not know); malformed syntax or a
  /// non-numeric value returns false with *out untouched.
  static bool FromWire(const std::string& text, ExecStats* out);
};

}  // namespace clftj

#endif  // CLFTJ_UTIL_STATS_H_
