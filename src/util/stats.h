#ifndef CLFTJ_UTIL_STATS_H_
#define CLFTJ_UTIL_STATS_H_

#include <cstdint>
#include <string>

namespace clftj {

/// Execution counters shared by all join engines. The paper's evaluation is
/// partly framed in terms of memory traffic (Section 1: 45e9 accesses for
/// LFTJ vs 1.4e9 for CLFTJ on a 5-cycle), so every engine threads an
/// ExecStats through its data-structure touches:
///   * trie element comparisons and pointer chases -> memory_accesses
///   * hash table probes and inserts               -> memory_accesses
///   * intermediate tuples materialized            -> intermediate_tuples
/// The counters are a deterministic proxy for DRAM traffic: they count data
/// touches rather than cache-miss events, which is what makes the paper's
/// cross-algorithm comparison reproducible on any host.
struct ExecStats {
  std::uint64_t memory_accesses = 0;
  std::uint64_t intermediate_tuples = 0;
  std::uint64_t output_tuples = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_rejects = 0;     // insert refused by policy/capacity
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries_peak = 0;
  /// Peak payload bytes held by the cache (byte-budget mode only; stays 0
  /// in entry-count mode).
  std::uint64_t cache_bytes_peak = 0;

  /// Resets all counters to zero.
  void Reset() { *this = ExecStats(); }

  /// Merges counters from another run (peaks are max-merged: right for
  /// sequential reuse of one cache). Parallel shards whose private caches
  /// coexist must instead *sum* per-shard peaks — ShardedCachedTrieJoin
  /// does that explicitly after merging.
  void Merge(const ExecStats& other);

  /// Human-readable one-line summary for logs and benches.
  std::string ToString() const;
};

}  // namespace clftj

#endif  // CLFTJ_UTIL_STATS_H_
