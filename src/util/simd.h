#ifndef CLFTJ_UTIL_SIMD_H_
#define CLFTJ_UTIL_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace clftj {
namespace simd {

/// Runtime CPU dispatch for the data-parallel hot-path kernels (see
/// docs/simd.md). The engine's three compute kernels — the leapfrog Seek's
/// galloping lower bound, BuildAtomView's row filters, and (by the same
/// override surface, though it is thread- not lane-parallel) Normalize's
/// sharded permutation sort — are reached through a table of function
/// pointers selected once per process:
///
///   * the *scalar* arm is the reference implementation (the exact code the
///     recorded bench baselines were produced under);
///   * the *AVX2* arm is a lane-for-lane translation compiled in a single
///     separately-flagged TU (src/util/simd_avx2.cc, the only file built
///     with -mavx2), selected only when cpuid reports AVX2 support.
///
/// Counting contract: every kernel charges exactly the probes its scalar
/// twin would consume, so ExecStats — including memory_accesses — is
/// bit-identical across arms and the cross-PR bench baselines stay
/// comparable. Over-fetched speculative lanes are issued but not charged
/// (the same policy the 4-way scalar unroll already follows; rationale in
/// docs/simd.md).
///
/// The selection is overridable (--simd on clftj_cli, CLFTJ_SIMD on
/// clftj_server, SetMode from code) and forced-scalar builds
/// (-DCLFTJ_DISABLE_AVX2) compile the AVX2 TU down to an empty registration,
/// so non-AVX2 hosts and CI lanes run the reference arm untouched.

/// Seek kernel: least index in (pos, end] of the sorted range vals[pos..end)
/// whose value is >= bound (end if none). Preconditions and the probe
/// counting contract are those of GallopingLowerBound (trie/leapfrog.h).
using SeekLowerBoundFn = std::size_t (*)(const Value* vals, std::size_t pos,
                                         std::size_t end, Value bound,
                                         std::uint64_t* comparisons);

/// One constant-term predicate of an atom filter: row i passes iff
/// column[i] == constant.
struct ConstPredicate {
  const Value* column;
  Value constant;
};

/// One repeated-variable predicate: row i passes iff left[i] == right[i]
/// (every occurrence of a variable must equal its first occurrence).
struct EqPredicate {
  const Value* left;
  const Value* right;
};

/// A conjunction of row predicates over parallel columns. Pointers are
/// borrowed; every column must have at least `rows` entries when applied.
struct RowFilter {
  const ConstPredicate* consts = nullptr;
  std::size_t num_consts = 0;
  const EqPredicate* eqs = nullptr;
  std::size_t num_eqs = 0;
};

/// Filter kernel: appends to *keep the index of every row in [0, rows) that
/// satisfies all predicates, in ascending order. Both arms produce the same
/// keep list bit for bit (the predicate is a pure conjunction). Requires
/// rows < 2^32 (trie builds already enforce this bound upstream).
using FilterRowsFn = void (*)(const RowFilter& filter, std::size_t rows,
                              std::vector<std::uint32_t>* keep);

/// Dedup kernel for Relation::Normalize: given k parallel columns and a
/// sort permutation `order` over n rows (adjacent-equal rows are adjacent
/// in `order`), appends to *keep the row ids of the first member of every
/// run of duplicate rows, in permutation order. Charges no ExecStats (the
/// build-side dedup is not part of the paper's memory-access metric). Both
/// arms produce the same keep list bit for bit.
using DedupRowsFn = void (*)(const Value* const* cols, int k,
                             const std::size_t* order, std::size_t n,
                             std::vector<std::size_t>* keep);

/// One dispatch arm: a named table of kernel entry points.
struct Kernels {
  const char* name;  // "scalar" or "avx2"
  SeekLowerBoundFn seek_lower_bound;
  FilterRowsFn filter_rows;
  DedupRowsFn dedup_rows;
};

/// The reference arm; always available.
const Kernels& ScalarKernels();

/// The AVX2 arm, or null when the AVX2 TU was compiled out
/// (-DCLFTJ_DISABLE_AVX2 or a compiler without -mavx2). Availability of the
/// *table* says nothing about the *CPU* — pair with CpuSupportsAvx2().
const Kernels* Avx2KernelsOrNull();

/// True iff the running CPU reports AVX2 (cpuid; cached after first probe).
bool CpuSupportsAvx2();

/// True iff the AVX2 arm can actually run here: compiled in AND the CPU
/// supports it. This is what Mode::kAuto selects on.
bool Avx2Available();

/// Dispatch override. kAuto probes the CPU; kAvx2 / kScalar force an arm.
enum class Mode : int { kAuto = 0, kAvx2 = 1, kScalar = 2 };

/// Installs a dispatch mode for the whole process. Returns false (and
/// changes nothing) iff kAvx2 was requested but Avx2Available() is false.
/// Thread-safe, but intended for startup: kernels already inlined into a
/// running query keep their arm until its next dispatch-point call.
bool SetMode(Mode mode);

/// The mode most recently installed (kAuto until the first SetMode).
Mode CurrentMode();

/// Parses "auto" / "avx2" / "scalar". Returns false on anything else.
bool ParseMode(const std::string& text, Mode* out);

const char* ModeName(Mode mode);

/// One-line human-readable dispatch summary for --mode info and server
/// startup logs, e.g. "avx2 (mode=auto, cpu avx2: yes, avx2 kernels:
/// compiled)".
std::string Describe();

namespace internal {
extern std::atomic<const Kernels*> g_active;
/// Slow path: resolves the auto arm, installs it, returns it.
const Kernels& ResolveActive();
}  // namespace internal

/// The active arm. Hot path: one relaxed load and a predictable branch.
inline const Kernels& Active() {
  const Kernels* k = internal::g_active.load(std::memory_order_relaxed);
  return k != nullptr ? *k : internal::ResolveActive();
}

/// Dispatched seek lower bound (TrieIterator::Seek and the merged overlay
/// cursor route every gallop through this).
inline std::size_t SeekLowerBound(const Value* vals, std::size_t pos,
                                  std::size_t end, Value bound,
                                  std::uint64_t* comparisons) {
  return Active().seek_lower_bound(vals, pos, end, bound, comparisons);
}

/// Dispatched row filter (BuildAtomView's non-plain column filters).
inline void FilterRows(const RowFilter& filter, std::size_t rows,
                       std::vector<std::uint32_t>* keep) {
  Active().filter_rows(filter, rows, keep);
}

/// Dispatched adjacent-duplicate elimination (Normalize's dedup pass over
/// the merged sort permutation).
inline void DedupRows(const Value* const* cols, int k,
                      const std::size_t* order, std::size_t n,
                      std::vector<std::size_t>* keep) {
  Active().dedup_rows(cols, k, order, n, keep);
}

}  // namespace simd
}  // namespace clftj

#endif  // CLFTJ_UTIL_SIMD_H_
