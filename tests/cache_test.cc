#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clftj/cache.h"
#include "clftj/cached_trie_join.h"
#include "clftj/factorized.h"
#include "data/generators.h"
#include "tests/test_util.h"
#include "util/hash.h"
#include "util/packed_key.h"

namespace clftj {
namespace {

// Packs an inline (<= 2 dimension) key from a literal. Wide keys must use
// named storage — PackedKey borrows the buffer beyond kInlineDims.
PackedKey PK(const Tuple& t) {
  return PackedKey::Pack(t.data(), static_cast<int>(t.size()));
}

TEST(PackedKey, InlineRoundTrip) {
  const Tuple t = {42, -7};
  const PackedKey k = PK(t);
  EXPECT_FALSE(k.wide());
  EXPECT_EQ(k.dims, 2u);
  EXPECT_EQ(k.At(0), 42);
  EXPECT_EQ(k.At(1), -7);
}

TEST(PackedKey, WideRoundTrip) {
  const Tuple t = {1, 2, 3, 4};
  const PackedKey k = PK(t);
  EXPECT_TRUE(k.wide());
  EXPECT_EQ(k.dims, 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(k.At(i), t[i]);
}

TEST(PackedKey, HashDependsOnWidthAndContent) {
  // {5} vs {5,0}: same leading value, different width — the keys (and their
  // hashes, with overwhelming probability) must differ.
  const PackedKey one = PK({5});
  const PackedKey two = PK({5, 0});
  EXPECT_NE(one.dims, two.dims);
  EXPECT_NE(one.Hash(1), two.Hash(1));
  EXPECT_EQ(one.Hash(1), PK({5}).Hash(1));
}

TEST(CacheManager, MissThenHit) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(2, CacheOptions{}, &stats);
  EXPECT_EQ(cache.Lookup(0, PK({5})), nullptr);
  cache.Insert(0, PK({5}), 42);
  const std::uint64_t* hit = cache.Lookup(0, PK({5}));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_inserts, 1u);
}

TEST(CacheManager, NodesAreIsolated) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(2, CacheOptions{}, &stats);
  cache.Insert(0, PK({5}), 1);
  EXPECT_EQ(cache.Lookup(1, PK({5})), nullptr)
      << "same key under another node must not hit";
}

TEST(CacheManager, SameInlineBitsDifferentWidthAreDistinct) {
  // {5} packs as lo=5,hi=0 and {5,0} packs identically except for dims;
  // the dims field must keep them apart.
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  cache.Insert(0, PK({5}), 1);
  cache.Insert(0, PK({5, 0}), 2);
  cache.Insert(0, PK({}), 3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(*cache.Lookup(0, PK({5})), 1u);
  EXPECT_EQ(*cache.Lookup(0, PK({5, 0})), 2u);
  EXPECT_EQ(*cache.Lookup(0, PK({})), 3u);
}

TEST(CacheManager, EmptyKeySupported) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  cache.Insert(0, PK({}), 7);
  const std::uint64_t* hit = cache.Lookup(0, PK({}));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7u);
}

TEST(CacheManager, NegativeValuesInKeys) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  cache.Insert(0, PK({-3, -9}), 11);
  ASSERT_NE(cache.Lookup(0, PK({-3, -9})), nullptr);
  EXPECT_EQ(cache.Lookup(0, PK({-3, 9})), nullptr);
}

TEST(CacheManager, InsertReplacesValue) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  cache.Insert(0, PK({1}), 10);
  cache.Insert(0, PK({1}), 20);
  EXPECT_EQ(*cache.Lookup(0, PK({1})), 20u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheManager, RejectNewAtCapacity) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  options.eviction = CacheOptions::Eviction::kRejectNew;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, PK({1}), 1);
  cache.Insert(0, PK({2}), 2);
  cache.Insert(0, PK({3}), 3);  // rejected
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(stats.cache_rejects, 1u);
  EXPECT_EQ(cache.Lookup(0, PK({3})), nullptr);
  EXPECT_NE(cache.Lookup(0, PK({1})), nullptr);
}

TEST(CacheManager, LruEvictsLeastRecentlyUsed) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  options.eviction = CacheOptions::Eviction::kLru;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, PK({1}), 1);
  cache.Insert(0, PK({2}), 2);
  cache.Lookup(0, PK({1}));        // refresh key {1}
  cache.Insert(0, PK({3}), 3);     // evicts {2}
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_EQ(cache.Lookup(0, PK({2})), nullptr);
  EXPECT_NE(cache.Lookup(0, PK({1})), nullptr);
  EXPECT_NE(cache.Lookup(0, PK({3})), nullptr);
}

TEST(CacheManager, LruEvictionIsGlobalAcrossNodes) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  options.eviction = CacheOptions::Eviction::kLru;
  CacheManager<std::uint64_t> cache(3, options, &stats);
  cache.Insert(0, PK({1}), 1);
  cache.Insert(1, PK({1}), 2);
  cache.Insert(2, PK({1}), 3);  // evicts node 0's entry (oldest globally)
  EXPECT_EQ(cache.Lookup(0, PK({1})), nullptr);
  EXPECT_NE(cache.Lookup(1, PK({1})), nullptr);
  EXPECT_NE(cache.Lookup(2, PK({1})), nullptr);
}

TEST(CacheManager, LruEvictionOrderFollowsRecencyExactly) {
  // Fill a budget of 3 across nodes, refresh in a known pattern, then keep
  // inserting and check the eviction sequence is exactly recency order.
  ExecStats stats;
  CacheOptions options;
  options.capacity = 3;
  CacheManager<std::uint64_t> cache(2, options, &stats);
  cache.Insert(0, PK({1}), 1);   // order (MRU->LRU): 1
  cache.Insert(1, PK({2}), 2);   // 2 1
  cache.Insert(0, PK({3}), 3);   // 3 2 1
  cache.Lookup(0, PK({1}));      // 1 3 2
  cache.Lookup(1, PK({2}));      // 2 1 3
  cache.Insert(0, PK({4}), 4);   // evicts {3}: 4 2 1
  EXPECT_EQ(cache.Lookup(0, PK({3})), nullptr);
  cache.Insert(0, PK({5}), 5);   // evicts {1}: 5 4 2
  EXPECT_EQ(cache.Lookup(0, PK({1})), nullptr);
  cache.Insert(0, PK({6}), 6);   // evicts node 1's {2}: 6 5 4
  EXPECT_EQ(cache.Lookup(1, PK({2})), nullptr);
  EXPECT_NE(cache.Lookup(0, PK({4})), nullptr);
  EXPECT_NE(cache.Lookup(0, PK({5})), nullptr);
  EXPECT_NE(cache.Lookup(0, PK({6})), nullptr);
  EXPECT_EQ(stats.cache_evictions, 3u);
}

TEST(CacheManager, CapacityOne) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 1;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, PK({1}), 1);
  cache.Insert(0, PK({2}), 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup(0, PK({2})), nullptr);
}

TEST(CacheManager, PeakTracksHighWaterMark) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  for (Value v = 0; v < 10; ++v) cache.Insert(0, PK({v}), 1);
  EXPECT_EQ(stats.cache_entries_peak, 10u);
}

TEST(CacheManager, BoundedReplaceDoesNotEvict) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, PK({1}), 1);
  cache.Insert(0, PK({2}), 2);
  cache.Insert(0, PK({1}), 99);  // replace, not a new entry
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_EQ(*cache.Lookup(0, PK({1})), 99u);
}

TEST(CacheManager, SurvivesGrowthRehash) {
  // Push far past the initial table size so the flat table rehashes several
  // times; every entry must stay reachable with its value.
  ExecStats stats;
  CacheManager<std::uint64_t> cache(4, CacheOptions{}, &stats);
  constexpr Value kN = 20000;
  for (Value v = 0; v < kN; ++v) {
    cache.Insert(static_cast<NodeId>(v & 3), PK({v, v * 31}),
                 static_cast<std::uint64_t>(v) + 1);
  }
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kN));
  for (Value v = 0; v < kN; ++v) {
    const std::uint64_t* hit =
        cache.Lookup(static_cast<NodeId>(v & 3), PK({v, v * 31}));
    ASSERT_NE(hit, nullptr) << v;
    EXPECT_EQ(*hit, static_cast<std::uint64_t>(v) + 1);
  }
}

TEST(CacheManager, LruOrderSurvivesGrowthRehash) {
  // Recency must be preserved across genuine rehashes. Bounded caches
  // pre-size for their budget and never grow, so drive an unbounded cache
  // through several doublings (16 -> 1024+ slots) and assert the chain is
  // still exact reverse insertion order afterwards — Rehash's MRU-first
  // re-link walk is what this pins.
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  constexpr Value kN = 1000;
  for (Value v = 0; v < kN; ++v) {
    cache.Insert(0, PK({v}), static_cast<std::uint64_t>(v));
  }
  const std::vector<std::uint64_t> order = cache.LruOrderForTest();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  for (Value v = 0; v < kN; ++v) {
    EXPECT_EQ(order[v], static_cast<std::uint64_t>(kN - 1 - v)) << v;
  }
}

TEST(CacheManager, LruOrderSurvivesEvictionBackwardShift) {
  // Backward-shift deletion physically moves slots; the moved entries'
  // chain links must be re-pointed. Keep a bounded cache churning, then
  // compare the full chain against expected recency.
  ExecStats stats;
  CacheOptions options;
  options.capacity = 4;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  for (Value v = 0; v < 100; ++v) {
    cache.Insert(0, PK({v}), static_cast<std::uint64_t>(v));
    if (v >= 2) cache.Lookup(0, PK({v - 2}));  // refresh an older entry
  }
  // After the loop: inserts 96..99 with refreshes of 95..97 interleaved.
  // Chain (MRU->LRU): lookup(97), insert(99), lookup(96), insert(98).
  const std::vector<std::uint64_t> order = cache.LruOrderForTest();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{97, 99, 96, 98}));
}

// --- Spill path: keys wider than PackedKey::kInlineDims -------------------

TEST(CacheManager, WideKeysRoundTrip) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(2, CacheOptions{}, &stats);
  const Tuple a = {1, 2, 3};
  const Tuple b = {1, 2, 4};
  cache.Insert(0, PK(a), 10);
  cache.Insert(0, PK(b), 20);
  EXPECT_EQ(*cache.Lookup(0, PK(a)), 10u);
  EXPECT_EQ(*cache.Lookup(0, PK(b)), 20u);
  const Tuple c = {1, 2, 5};
  EXPECT_EQ(cache.Lookup(0, PK(c)), nullptr);
  // The cache interned the values: the probe buffer can be reused freely.
  Tuple probe = a;
  EXPECT_EQ(*cache.Lookup(0, PK(probe)), 10u);
}

TEST(CacheManager, WideKeyEvictionChurnCompactsArena) {
  // A tiny bounded cache fed a stream of distinct wide keys: the interning
  // arena must keep reclaiming space (and stay correct) under churn.
  ExecStats stats;
  CacheOptions options;
  options.capacity = 4;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  for (Value v = 0; v < 3000; ++v) {
    const Tuple key = {v, v + 1, v + 2, v + 3};
    cache.Insert(0, PK(key), static_cast<std::uint64_t>(v));
  }
  EXPECT_EQ(cache.size(), 4u);
  for (Value v = 2996; v < 3000; ++v) {
    const Tuple key = {v, v + 1, v + 2, v + 3};
    const std::uint64_t* hit = cache.Lookup(0, PK(key));
    ASSERT_NE(hit, nullptr) << v;
    EXPECT_EQ(*hit, static_cast<std::uint64_t>(v));
  }
}

TEST(CacheManager, MixedInlineAndWideKeys) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  const Tuple wide = {7, 8, 9};
  cache.Insert(0, PK({7}), 1);
  cache.Insert(0, PK({7, 8}), 2);
  cache.Insert(0, PK(wide), 3);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(*cache.Lookup(0, PK({7})), 1u);
  EXPECT_EQ(*cache.Lookup(0, PK({7, 8})), 2u);
  EXPECT_EQ(*cache.Lookup(0, PK(wide)), 3u);
}

// --- Differential test against a map-based oracle -------------------------

/// Reference implementation with the semantics the flat cache must match:
/// a map per (node, key tuple) plus an explicit recency list (this is
/// essentially the seed's std::list-based cache).
class OracleCache {
 public:
  explicit OracleCache(const CacheOptions& options) : options_(options) {}

  const std::uint64_t* Lookup(NodeId node, const Tuple& key) {
    const auto it = map_.find({node, key});
    if (it == map_.end()) return nullptr;
    if (options_.capacity > 0) {
      recency_.splice(recency_.begin(), recency_, it->second);
    }
    return &it->second->value;
  }

  bool Insert(NodeId node, const Tuple& key, std::uint64_t value) {
    const auto it = map_.find({node, key});
    if (it != map_.end()) {
      it->second->value = value;
      if (options_.capacity > 0) {
        recency_.splice(recency_.begin(), recency_, it->second);
      }
      return true;
    }
    if (options_.capacity > 0 && map_.size() >= options_.capacity) {
      if (options_.eviction == CacheOptions::Eviction::kRejectNew) {
        return false;
      }
      map_.erase(recency_.back().id);
      recency_.pop_back();
    }
    recency_.push_front({{node, key}, value});
    map_[{node, key}] = recency_.begin();
    return true;
  }

  std::size_t size() const { return map_.size(); }

 private:
  struct Id {
    NodeId node;
    Tuple key;
    bool operator==(const Id& o) const {
      return node == o.node && key == o.key;
    }
  };
  struct IdHash {
    std::size_t operator()(const Id& id) const {
      return HashCombine(TupleHash()(id.key),
                         static_cast<std::uint64_t>(id.node));
    }
  };
  struct Entry {
    Id id;
    std::uint64_t value;
  };
  CacheOptions options_;
  std::list<Entry> recency_;
  std::unordered_map<Id, std::list<Entry>::iterator, IdHash> map_;
};

class CacheDifferentialTest : public ::testing::TestWithParam<int> {};

CacheOptions DifferentialConfig(int index) {
  CacheOptions options;
  switch (index) {
    case 0: break;  // unbounded
    case 1:
      options.capacity = 8;
      options.eviction = CacheOptions::Eviction::kLru;
      break;
    case 2:
      options.capacity = 8;
      options.eviction = CacheOptions::Eviction::kRejectNew;
      break;
    case 3:
      options.capacity = 1;
      break;
    default:
      options.capacity = 100;
      break;
  }
  return options;
}

TEST_P(CacheDifferentialTest, RandomizedWorkloadMatchesOracle) {
  const CacheOptions options = DifferentialConfig(GetParam());
  ExecStats stats;
  CacheManager<std::uint64_t> cache(4, options, &stats);
  OracleCache oracle(options);
  std::mt19937_64 rng(12345 + GetParam());
  // Small domains force key reuse, collisions, replacement and (bounded)
  // heavy eviction; dims 0..3 also exercises the wide-key spill path.
  std::uniform_int_distribution<int> node_dist(0, 3);
  std::uniform_int_distribution<int> dims_dist(0, 3);
  std::uniform_int_distribution<Value> value_dist(0, 11);
  std::uniform_int_distribution<int> op_dist(0, 2);
  for (int step = 0; step < 50000; ++step) {
    const NodeId node = node_dist(rng);
    Tuple key(dims_dist(rng));
    for (Value& v : key) v = value_dist(rng);
    const PackedKey packed = PK(key);
    if (op_dist(rng) == 0) {
      const std::uint64_t payload = static_cast<std::uint64_t>(step);
      cache.Insert(node, packed, payload);
      oracle.Insert(node, key, payload);
    } else {
      const std::uint64_t* got = cache.Lookup(node, packed);
      const std::uint64_t* want = oracle.Lookup(node, key);
      ASSERT_EQ(got == nullptr, want == nullptr)
          << "step " << step << " presence diverged";
      if (got != nullptr) {
        ASSERT_EQ(*got, *want) << "step " << step << " value diverged";
      }
    }
    ASSERT_EQ(cache.size(), oracle.size()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, CacheDifferentialTest,
                         ::testing::Range(0, 5));

TEST(CacheOptions, ToStringDescribesPolicy) {
  CacheOptions options;
  EXPECT_NE(options.ToString().find("unbounded"), std::string::npos);
  options.capacity = 100;
  options.admission = CacheOptions::Admission::kSupportThreshold;
  options.support_threshold = 5;
  const std::string s = options.ToString();
  EXPECT_NE(s.find("100"), std::string::npos);
  EXPECT_NE(s.find("support>=5"), std::string::npos);
  options.enabled = false;
  EXPECT_EQ(options.ToString(), "cache=off");
}

// --- Byte-budget capacity (CacheOptions::capacity_bytes) ------------------

TEST(CacheByteBudget, EvictsByPayloadBytesNeverExceedingBudget) {
  ExecStats stats;
  CacheOptions options;
  options.capacity_bytes = 64;  // 8 uint64 payloads
  CacheManager<std::uint64_t> cache(1, options, &stats);
  for (Value v = 0; v < 50; ++v) cache.Insert(0, PK({v}), 1000 + v);
  EXPECT_LE(cache.payload_bytes(), options.capacity_bytes);
  EXPECT_LE(stats.cache_bytes_peak, options.capacity_bytes);
  EXPECT_GT(stats.cache_bytes_peak, 0u);
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_EQ(cache.size(), 8u);  // budget / sizeof(payload)
  // LRU semantics carry over: the most recent keys survive.
  EXPECT_NE(cache.Lookup(0, PK({49})), nullptr);
  EXPECT_EQ(cache.Lookup(0, PK({0})), nullptr);
}

TEST(CacheByteBudget, RejectNewStopsAtBudget) {
  ExecStats stats;
  CacheOptions options;
  options.capacity_bytes = 16;  // two uint64 payloads
  options.eviction = CacheOptions::Eviction::kRejectNew;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, PK({1}), 1);
  cache.Insert(0, PK({2}), 2);
  cache.Insert(0, PK({3}), 3);  // would overshoot: rejected
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(stats.cache_rejects, 1u);
  EXPECT_LE(cache.payload_bytes(), options.capacity_bytes);
}

TEST(CacheByteBudget, OversizedPayloadIsRejectedOutright) {
  ExecStats stats;
  CacheOptions options;
  options.capacity_bytes = 64;
  CacheManager<FactorizedSetPtr> cache(1, options, &stats);
  auto big = std::make_shared<FactorizedSet>();
  big->entries.resize(100);  // entry array alone dwarfs the budget
  ASSERT_GT(CachePayloadBytes(FactorizedSetPtr(big)), options.capacity_bytes);
  cache.Insert(0, PK({1}), big);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(stats.cache_rejects, 1u);
  EXPECT_EQ(stats.cache_bytes_peak, 0u);
}

TEST(CacheByteBudget, GrownReplacementShedsLruEntries) {
  auto small = std::make_shared<FactorizedSet>();
  small->entries.resize(1);
  auto grown = std::make_shared<FactorizedSet>();
  grown->entries.resize(5);
  const std::uint64_t small_bytes = CachePayloadBytes(FactorizedSetPtr(small));
  const std::uint64_t grown_bytes = CachePayloadBytes(FactorizedSetPtr(grown));

  ExecStats stats;
  CacheOptions options;
  options.capacity_bytes = 8 * small_bytes;  // exactly eight small payloads
  ASSERT_LE(grown_bytes, options.capacity_bytes);
  ASSERT_GT(7 * small_bytes + grown_bytes, options.capacity_bytes);
  CacheManager<FactorizedSetPtr> cache(1, options, &stats);
  for (Value v = 0; v < 8; ++v) cache.Insert(0, PK({v}), small);
  ASSERT_EQ(cache.size(), 8u);
  cache.Insert(0, PK({0}), grown);  // replacement grows the charge
  EXPECT_LE(cache.payload_bytes(), options.capacity_bytes);
  EXPECT_LE(stats.cache_bytes_peak, options.capacity_bytes);
  EXPECT_GT(stats.cache_evictions, 0u);
  // The refreshed entry is MRU and must survive the shedding.
  ASSERT_NE(cache.Lookup(0, PK({0})), nullptr);
  EXPECT_EQ((*cache.Lookup(0, PK({0})))->entries.size(), 5u);
}

// Accounting-contract pin (docs/cache.md): a cached factorized set is
// charged its *retained closure* — the set plus every child set kept alive
// through its entries' shared_ptrs — not just its own top-level storage.
// Before the DeepMemoryBytes charge, a child retained only by a cached
// parent was invisible to the budget.
TEST(CacheByteBudget, ChargesRetainedChildClosure) {
  auto child = std::make_shared<FactorizedSet>();
  child->entries.resize(16);
  for (auto& e : child->entries) e.local.assign(4, 7);

  auto parent = std::make_shared<FactorizedSet>();
  parent->entries.resize(2);
  for (auto& e : parent->entries) {
    e.local.assign(1, 3);
    // Two pointers to the same child: the closure walk must count the
    // shared set once, not per reference.
    e.children.push_back(child);
    e.children.push_back(child);
  }

  const FactorizedSetPtr parent_ptr(parent);
  const FactorizedSetPtr child_ptr(child);
  const std::uint64_t shallow = sizeof(FactorizedSet) + parent->MemoryBytes();
  const std::uint64_t deep = parent->DeepMemoryBytes();
  EXPECT_EQ(deep, shallow + sizeof(FactorizedSet) + child->MemoryBytes());
  EXPECT_EQ(CachePayloadBytes(parent_ptr), sizeof(FactorizedSetPtr) + deep);

  // A budget that fits the parent's own storage but not its retained child
  // must reject the insert — the child's bytes are retained either way, and
  // the budget's contract is to bound retained heap.
  ExecStats stats;
  CacheOptions options;
  options.capacity_bytes = shallow + sizeof(FactorizedSetPtr);
  ASSERT_LT(options.capacity_bytes, CachePayloadBytes(parent_ptr));
  CacheManager<FactorizedSetPtr> tight(1, options, &stats);
  tight.Insert(0, PK({1}), parent_ptr);
  EXPECT_EQ(tight.size(), 0u);
  EXPECT_EQ(stats.cache_rejects, 1u);

  // With room for the closure, the charge recorded against the budget
  // covers the child the entry retains.
  ExecStats roomy_stats;
  CacheOptions roomy_options;
  roomy_options.capacity_bytes = 2 * CachePayloadBytes(parent_ptr);
  CacheManager<FactorizedSetPtr> roomy(1, roomy_options, &roomy_stats);
  roomy.Insert(0, PK({1}), parent_ptr);
  ASSERT_EQ(roomy.size(), 1u);
  EXPECT_GE(roomy.payload_bytes(), deep);
  EXPECT_LE(roomy.payload_bytes(), roomy_options.capacity_bytes);
}

// Fig10-style integration pin: a byte-bounded CLFTJ evaluation run must
// never let the cache's payload footprint exceed the budget, while still
// producing the exact unbounded-run result.
TEST(CacheByteBudget, BoundedEvalRunStaysWithinBudgetAndCorrect) {
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 80, 4, /*seed=*/17));
  const Query q = testing::Q("E(x,y), E(y,z), E(z,w), E(w,x)");

  CachedTrieJoin unbounded;
  const std::uint64_t want = unbounded.Count(q, db, {}).count;

  CachedTrieJoin::Options options;
  options.cache.capacity_bytes = 16 * 1024;
  CachedTrieJoin bounded(options);
  RunResult run;
  const auto result = bounded.EvaluateFactorized(q, db, {}, &run);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->Count(), want);
  EXPECT_GT(run.stats.cache_bytes_peak, 0u);
  EXPECT_LE(run.stats.cache_bytes_peak, options.cache.capacity_bytes);
}

}  // namespace
}  // namespace clftj
