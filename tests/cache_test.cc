#include <gtest/gtest.h>

#include "clftj/cache.h"

namespace clftj {
namespace {

TEST(CacheManager, MissThenHit) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(2, CacheOptions{}, &stats);
  EXPECT_EQ(cache.Lookup(0, {5}), nullptr);
  cache.Insert(0, {5}, 42);
  const std::uint64_t* hit = cache.Lookup(0, {5});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_inserts, 1u);
}

TEST(CacheManager, NodesAreIsolated) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(2, CacheOptions{}, &stats);
  cache.Insert(0, {5}, 1);
  EXPECT_EQ(cache.Lookup(1, {5}), nullptr)
      << "same key under another node must not hit";
}

TEST(CacheManager, EmptyKeySupported) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  cache.Insert(0, {}, 7);
  const std::uint64_t* hit = cache.Lookup(0, {});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7u);
}

TEST(CacheManager, InsertReplacesValue) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  cache.Insert(0, {1}, 10);
  cache.Insert(0, {1}, 20);
  EXPECT_EQ(*cache.Lookup(0, {1}), 20u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheManager, RejectNewAtCapacity) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  options.eviction = CacheOptions::Eviction::kRejectNew;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, {1}, 1);
  cache.Insert(0, {2}, 2);
  cache.Insert(0, {3}, 3);  // rejected
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(stats.cache_rejects, 1u);
  EXPECT_EQ(cache.Lookup(0, {3}), nullptr);
  EXPECT_NE(cache.Lookup(0, {1}), nullptr);
}

TEST(CacheManager, LruEvictsLeastRecentlyUsed) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  options.eviction = CacheOptions::Eviction::kLru;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, {1}, 1);
  cache.Insert(0, {2}, 2);
  cache.Lookup(0, {1});        // refresh key {1}
  cache.Insert(0, {3}, 3);     // evicts {2}
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_EQ(cache.Lookup(0, {2}), nullptr);
  EXPECT_NE(cache.Lookup(0, {1}), nullptr);
  EXPECT_NE(cache.Lookup(0, {3}), nullptr);
}

TEST(CacheManager, LruEvictionIsGlobalAcrossNodes) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  options.eviction = CacheOptions::Eviction::kLru;
  CacheManager<std::uint64_t> cache(3, options, &stats);
  cache.Insert(0, {1}, 1);
  cache.Insert(1, {1}, 2);
  cache.Insert(2, {1}, 3);  // evicts node 0's entry (oldest globally)
  EXPECT_EQ(cache.Lookup(0, {1}), nullptr);
  EXPECT_NE(cache.Lookup(1, {1}), nullptr);
  EXPECT_NE(cache.Lookup(2, {1}), nullptr);
}

TEST(CacheManager, CapacityOne) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 1;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, {1}, 1);
  cache.Insert(0, {2}, 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Lookup(0, {2}), nullptr);
}

TEST(CacheManager, PeakTracksHighWaterMark) {
  ExecStats stats;
  CacheManager<std::uint64_t> cache(1, CacheOptions{}, &stats);
  for (Value v = 0; v < 10; ++v) cache.Insert(0, {v}, 1);
  EXPECT_EQ(stats.cache_entries_peak, 10u);
}

TEST(CacheManager, BoundedReplaceDoesNotEvict) {
  ExecStats stats;
  CacheOptions options;
  options.capacity = 2;
  CacheManager<std::uint64_t> cache(1, options, &stats);
  cache.Insert(0, {1}, 1);
  cache.Insert(0, {2}, 2);
  cache.Insert(0, {1}, 99);  // replace, not a new entry
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_EQ(*cache.Lookup(0, {1}), 99u);
}

TEST(CacheOptions, ToStringDescribesPolicy) {
  CacheOptions options;
  EXPECT_NE(options.ToString().find("unbounded"), std::string::npos);
  options.capacity = 100;
  options.admission = CacheOptions::Admission::kSupportThreshold;
  options.support_threshold = 5;
  const std::string s = options.ToString();
  EXPECT_NE(s.find("100"), std::string::npos);
  EXPECT_NE(s.find("support>=5"), std::string::npos);
  options.enabled = false;
  EXPECT_EQ(options.ToString(), "cache=off");
}

}  // namespace
}  // namespace clftj
