#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/common.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/timer.h"

namespace clftj {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformReal();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRoughlyBalanced) {
  Rng rng(13);
  const int n = 100000;
  int low = 0;
  for (int i = 0; i < n; ++i) low += rng.Uniform(2) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(low) / n, 0.5, 0.02);
}

TEST(Zipf, SampleRangeRespected) {
  Rng rng(3);
  ZipfSampler zipf(10, 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 10u);
}

TEST(Zipf, SkewConcentratesOnLowRanks) {
  Rng rng(5);
  ZipfSampler zipf(1000, 1.2);
  const int n = 20000;
  int rank0 = 0;
  for (int i = 0; i < n; ++i) rank0 += zipf.Sample(rng) == 0 ? 1 : 0;
  // Rank 0 should receive far more than the uniform share 1/1000 of draws.
  EXPECT_GT(rank0, n / 100);
}

TEST(Zipf, ZeroSkewIsUniformish) {
  Rng rng(6);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.03);
  }
}

TEST(Hash, TupleHashDistinguishesOrderAndLength) {
  TupleHash h;
  EXPECT_NE(h(Tuple{1, 2}), h(Tuple{2, 1}));
  EXPECT_NE(h(Tuple{1}), h(Tuple{1, 0}));
  EXPECT_EQ(h(Tuple{5, 6, 7}), h(Tuple{5, 6, 7}));
}

TEST(Stats, MergeAddsCountersAndMaxesPeak) {
  ExecStats a;
  a.memory_accesses = 10;
  a.cache_hits = 3;
  a.cache_entries_peak = 5;
  ExecStats b;
  b.memory_accesses = 7;
  b.cache_hits = 2;
  b.cache_entries_peak = 9;
  a.Merge(b);
  EXPECT_EQ(a.memory_accesses, 17u);
  EXPECT_EQ(a.cache_hits, 5u);
  EXPECT_EQ(a.cache_entries_peak, 9u);
}

TEST(Stats, ResetClearsEverything) {
  ExecStats s;
  s.memory_accesses = 5;
  s.cache_inserts = 2;
  s.Reset();
  EXPECT_EQ(s.memory_accesses, 0u);
  EXPECT_EQ(s.cache_inserts, 0u);
}

TEST(Stats, ToStringMentionsCounters) {
  ExecStats s;
  s.memory_accesses = 123;
  EXPECT_NE(s.ToString().find("mem_accesses=123"), std::string::npos);
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  EXPECT_GE(t.Seconds(), 0.0);
  t.Reset();
  EXPECT_GE(t.Millis(), 0.0);
}

}  // namespace
}  // namespace clftj
