#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/generators.h"
#include "data/snap_profiles.h"
#include "query/parser.h"
#include "query/patterns.h"
#include "td/cost_model.h"
#include "td/decompose.h"
#include "td/planner.h"
#include "td/tree_decomposition.h"
#include "tests/test_util.h"

namespace clftj {
namespace {

using ::clftj::testing::Q;

// The paper's Figure 3 decomposition of the example query.
// Query: R(x1,x2), R(x2,x3), R(x2,x4), R(x3,x5), R(x4,x6).
Query Fig3Query() {
  return Q("R(x1,x2), R(x2,x3), R(x2,x4), R(x3,x5), R(x4,x6)");
}

TreeDecomposition Fig3Td(const Query& q) {
  TreeDecomposition td;
  const VarId x1 = q.FindVariable("x1");
  const VarId x2 = q.FindVariable("x2");
  const VarId x3 = q.FindVariable("x3");
  const VarId x4 = q.FindVariable("x4");
  const VarId x5 = q.FindVariable("x5");
  const VarId x6 = q.FindVariable("x6");
  const NodeId root = td.AddNode({x1, x2}, kNone);
  const NodeId v = td.AddNode({x2, x3, x4}, root);
  td.AddNode({x3, x5}, v);
  td.AddNode({x4, x6}, v);
  return td;
}

TEST(TreeDecomposition, Fig3IsValidAndStronglyCompatible) {
  const Query q = Fig3Query();
  const TreeDecomposition td = Fig3Td(q);
  std::string why;
  EXPECT_TRUE(td.IsValidFor(q, &why)) << why;
  // Natural order x1..x6 is strongly compatible with this ordered TD.
  std::vector<VarId> order = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(td.IsStronglyCompatibleWith(order));
  EXPECT_TRUE(td.IsCompatibleWith(order));
}

TEST(TreeDecomposition, AdhesionsOfFig3) {
  const Query q = Fig3Query();
  const TreeDecomposition td = Fig3Td(q);
  EXPECT_TRUE(td.Adhesion(td.root()).empty());
  EXPECT_EQ(td.Adhesion(1), (std::vector<VarId>{q.FindVariable("x2")}));
  EXPECT_EQ(td.Adhesion(2), (std::vector<VarId>{q.FindVariable("x3")}));
  EXPECT_EQ(td.Adhesion(3), (std::vector<VarId>{q.FindVariable("x4")}));
}

TEST(TreeDecomposition, OwnersFollowPreorder) {
  const Query q = Fig3Query();
  const TreeDecomposition td = Fig3Td(q);
  const auto owners = td.Owners(q.num_vars());
  EXPECT_EQ(owners[q.FindVariable("x1")], 0);
  EXPECT_EQ(owners[q.FindVariable("x2")], 0);  // first bag in preorder
  EXPECT_EQ(owners[q.FindVariable("x3")], 1);
  EXPECT_EQ(owners[q.FindVariable("x5")], 2);
  EXPECT_EQ(owners[q.FindVariable("x6")], 3);
}

TEST(TreeDecomposition, PreorderAndDepth) {
  const Query q = Fig3Query();
  const TreeDecomposition td = Fig3Td(q);
  EXPECT_EQ(td.Preorder(), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(td.Depth(), 3);
}

TEST(TreeDecomposition, StrongCompatibilityRejectsBadOrder) {
  const Query q = Fig3Query();
  const TreeDecomposition td = Fig3Td(q);
  // x5 (owned by a leaf) before x3 (owned by its parent) breaks preorder.
  std::vector<VarId> bad = {0, 1, 4, 2, 3, 5};
  EXPECT_FALSE(td.IsStronglyCompatibleWith(bad));
}

TEST(TreeDecomposition, ValidityCatchesMissingAtomCoverage) {
  const Query q = Q("E(x,y), E(y,z), E(x,z)");  // triangle
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1}, kNone);
  td.AddNode({1, 2}, root);
  std::string why;
  EXPECT_FALSE(td.IsValidFor(q, &why));  // E(x,z) covered by no bag
  EXPECT_NE(why.find("atom"), std::string::npos);
}

TEST(TreeDecomposition, ValidityCatchesDisconnectedOccurrences) {
  const Query q = Q("E(x,y), E(y,z)");
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1}, kNone);
  const NodeId mid = td.AddNode({1, 2}, root);
  td.AddNode({0, 1}, mid);  // x reappears below without being in `mid`
  std::string why;
  EXPECT_FALSE(td.IsValidFor(q, &why));
  EXPECT_NE(why.find("connected"), std::string::npos);
}

TEST(TreeDecomposition, EliminateRedundantBagsContractsSubsets) {
  const Query q = Q("E(x,y), E(y,z)");
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1}, kNone);
  const NodeId small = td.AddNode({1}, root);  // redundant: subset of root
  td.AddNode({1, 2}, small);
  EXPECT_GT(td.EliminateRedundantBags(), 0);
  EXPECT_EQ(td.num_nodes(), 2);
  std::string why;
  EXPECT_TRUE(td.IsValidFor(q, &why)) << why;
  // Every node must own a variable now.
  const auto owners = td.Owners(q.num_vars());
  std::set<NodeId> owning(owners.begin(), owners.end());
  EXPECT_EQ(static_cast<int>(owning.size()), td.num_nodes());
}

TEST(TreeDecomposition, StronglyCompatibleOrderCoversAllVars) {
  const Query q = Fig3Query();
  const TreeDecomposition td = Fig3Td(q);
  const auto order = StronglyCompatibleOrder(td, q.num_vars());
  EXPECT_EQ(static_cast<int>(order.size()), q.num_vars());
  EXPECT_TRUE(td.IsStronglyCompatibleWith(order));
}

// --- GenericDecompose / EnumerateTds ---

TEST(Decompose, ProducesValidTdsForQueryZoo) {
  const std::vector<Query> zoo = {
      PathQuery(3),    PathQuery(5),      PathQuery(7),
      CycleQuery(4),   CycleQuery(5),     CycleQuery(6),
      LollipopQuery(3, 2), Fig3Query(),
      RandomPatternQuery(5, 0.4, 1), RandomPatternQuery(6, 0.6, 2),
  };
  for (const Query& q : zoo) {
    const auto tds = EnumerateTds(q);
    ASSERT_FALSE(tds.empty()) << q.ToString();
    for (const TreeDecomposition& td : tds) {
      std::string why;
      EXPECT_TRUE(td.IsValidFor(q, &why)) << q.ToString() << ": " << why;
      const auto order = StronglyCompatibleOrder(td, q.num_vars());
      EXPECT_TRUE(td.IsStronglyCompatibleWith(order));
    }
  }
}

TEST(Decompose, CliqueFallsBackToSingleton) {
  const Query q = CliqueQuery(4);
  const TreeDecomposition td = GenericDecompose(q);
  EXPECT_EQ(td.num_nodes(), 1);
  EXPECT_EQ(td.bag(td.root()).size(), 4u);
}

TEST(Decompose, PathGetsManySmallBags) {
  const Query q = PathQuery(6);
  const TreeDecomposition td = GenericDecompose(q);
  EXPECT_GE(td.num_nodes(), 3);
  for (NodeId v = 0; v < td.num_nodes(); ++v) {
    if (v != td.root()) {
      EXPECT_LE(td.Adhesion(v).size(), 1u);  // paths decompose on single vars
    }
  }
}

TEST(Decompose, CycleAdhesionsAreAtMostTwo) {
  const Query q = CycleQuery(6);
  for (const TreeDecomposition& td : EnumerateTds(q)) {
    for (NodeId v = 0; v < td.num_nodes(); ++v) {
      EXPECT_LE(td.Adhesion(v).size(), 2u);
    }
  }
}

TEST(Decompose, EnumerationRespectsMaxTds) {
  DecomposeOptions options;
  options.max_tds = 3;
  const auto tds = EnumerateTds(PathQuery(7), options);
  EXPECT_LE(tds.size(), 3u);
  EXPECT_GE(tds.size(), 1u);
}

TEST(Decompose, EnumerationYieldsDistinctTds) {
  const Query q = CycleQuery(6);
  const auto tds = EnumerateTds(q);
  std::set<std::string> reprs;
  for (const auto& td : tds) {
    EXPECT_TRUE(reprs.insert(td.ToString(q)).second) << "duplicate TD";
  }
  EXPECT_GE(tds.size(), 2u);  // cycles admit multiple decompositions
}

TEST(Decompose, DisconnectedQuerySupported) {
  const Query q = Q("E(a,b), E(c,d)");
  const auto tds = EnumerateTds(q);
  ASSERT_FALSE(tds.empty());
  std::string why;
  EXPECT_TRUE(tds.front().IsValidFor(q, &why)) << why;
}

// --- Cost model & planner ---

TEST(CostModel, StructuralPrefersSmallAdhesions) {
  const Query q = CycleQuery(6);
  // A TD with adhesion sizes {2} vs one with a huge bag.
  TreeDecomposition fat;
  fat.AddNode({0, 1, 2, 3, 4, 5}, kNone);
  const TreeDecomposition good = GenericDecompose(q);
  EXPECT_LT(StructuralTdCost(q, good), StructuralTdCost(q, fat));
}

TEST(CostModel, ChuCostPositiveAndOrderSensitive) {
  const Query q = PathQuery(4);
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 80, 3, 7));
  const double natural = ChuOrderCost(q, db, {0, 1, 2, 3});
  EXPECT_GT(natural, 0.0);
  // Any permutation gives a finite positive cost too.
  const double other = ChuOrderCost(q, db, {3, 2, 1, 0});
  EXPECT_GT(other, 0.0);
}

TEST(CostModel, ChuCostZeroOnEmptyData) {
  const Query q = PathQuery(3);
  Database db;
  db.Put(Relation("E", 2));
  EXPECT_EQ(ChuOrderCost(q, db, {0, 1, 2}), 0.0);
}

TEST(Planner, AlwaysReturnsAPlan) {
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 60, 3, 9));
  for (const Query& q :
       {PathQuery(5), CycleQuery(5), CliqueQuery(4), LollipopQuery(3, 2)}) {
    const TdPlan plan = PlanQuery(q, db);
    std::string why;
    EXPECT_TRUE(plan.td.IsValidFor(q, &why)) << why;
    EXPECT_TRUE(plan.td.IsStronglyCompatibleWith(plan.order));
  }
}

TEST(Planner, EnumeratePlansSortedByCost) {
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 60, 3, 9));
  const auto plans = EnumeratePlans(CycleQuery(6), db);
  ASSERT_GE(plans.size(), 2u);
  // Ranking: non-decreasing structural-cost buckets (factor-of-two
  // granularity); within a bucket, non-decreasing cache-aware cost.
  const auto bucket = [](double cost) {
    return static_cast<int>(std::floor(std::log2(std::max(1.0, cost))));
  };
  for (std::size_t i = 1; i < plans.size(); ++i) {
    const int prev = bucket(plans[i - 1].structural_cost);
    const int curr = bucket(plans[i].structural_cost);
    EXPECT_LE(prev, curr);
    if (prev == curr) {
      EXPECT_LE(plans[i - 1].cached_cost, plans[i].cached_cost);
    }
  }
}

TEST(Planner, CacheAwareCostPrefersSkewedAdhesions) {
  // The IMDB 4-cycle: the person-keyed TD must get a lower cache-aware
  // cost than the isomorphic movie-keyed TD because person_id is far more
  // skewed (Section 4.3 / Figure 13).
  const Database db = MakeImdbDatabase();
  const Query q = ImdbCycleQuery(2);
  TreeDecomposition person;
  person.AddNode({0, 2, 3}, person.AddNode({0, 1, 2}, kNone));
  TreeDecomposition movie;
  movie.AddNode({1, 2, 3}, movie.AddNode({0, 1, 3}, kNone));
  const TdPlan pp = MakePlanFromTd(q, db, std::move(person));
  const TdPlan mp = MakePlanFromTd(q, db, std::move(movie));
  EXPECT_LT(pp.cached_cost, mp.cached_cost);
}

TEST(Planner, MakePlanFromExplicitTd) {
  const Query q = Fig3Query();
  Database db;
  Relation r("R", 2);
  r.AddPair(1, 1);
  r.AddPair(1, 2);
  r.AddPair(2, 1);
  r.AddPair(2, 2);
  db.Put(std::move(r));
  const TdPlan plan = MakePlanFromTd(q, db, Fig3Td(q));
  EXPECT_EQ(plan.order.size(), 6u);
  EXPECT_TRUE(plan.td.IsStronglyCompatibleWith(plan.order));
}

}  // namespace
}  // namespace clftj
