// Unit tests for the cooperative stop machinery: AbortFlag's typed
// first-trip-wins reason, DeadlineChecker's stride contract (fresh
// checkers observe an already-tripped flag immediately; K workers halt
// within one stride of a trip), and MergeRunStatus's precedence.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "test_util.h"

namespace clftj {
namespace {

TEST(AbortFlag, StartsUntripped) {
  AbortFlag flag;
  EXPECT_FALSE(flag.Tripped());
  EXPECT_EQ(flag.reason(), RunStatus::kOk);
}

TEST(AbortFlag, TripCarriesReason) {
  AbortFlag flag;
  flag.Trip(RunStatus::kOutOfMemory);
  EXPECT_TRUE(flag.Tripped());
  EXPECT_EQ(flag.reason(), RunStatus::kOutOfMemory);
}

TEST(AbortFlag, FirstTripWins) {
  // A worker that "times out" because a sibling already tripped the flag
  // must not overwrite the original reason — the secondary timeout is an
  // artifact of the stop signal.
  AbortFlag flag;
  flag.Trip(RunStatus::kCancelled);
  flag.Trip(RunStatus::kTimeout);
  flag.Trip(RunStatus::kOutOfMemory);
  EXPECT_EQ(flag.reason(), RunStatus::kCancelled);
}

TEST(AbortFlag, ConcurrentTripsSettleOnExactlyOneReason) {
  for (int round = 0; round < 20; ++round) {
    AbortFlag flag;
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    const RunStatus reasons[] = {RunStatus::kTimeout, RunStatus::kOutOfMemory,
                                 RunStatus::kCancelled};
    for (const RunStatus reason : reasons) {
      threads.emplace_back([&flag, &ready, reason] {
        ready.fetch_add(1);
        while (ready.load() < 3) {
        }
        flag.Trip(reason);
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_TRUE(flag.Tripped());
    const RunStatus got = flag.reason();
    EXPECT_TRUE(got == RunStatus::kTimeout ||
                got == RunStatus::kOutOfMemory ||
                got == RunStatus::kCancelled);
  }
}

TEST(DeadlineChecker, FreshCheckerObservesTrippedFlagImmediately) {
  // A run handed an already-cancelled flag must terminate before doing any
  // work: the very FIRST Expired() call performs a check, not call kStride.
  AbortFlag flag;
  flag.Trip(RunStatus::kCancelled);
  DeadlineChecker checker(/*timeout_seconds=*/0.0, &flag);
  EXPECT_TRUE(checker.Expired());
}

TEST(DeadlineChecker, NoTimeoutNoFlagNeverExpires) {
  DeadlineChecker checker(/*timeout_seconds=*/0.0);
  for (std::uint64_t i = 0; i < 3 * DeadlineChecker::kStride; ++i) {
    ASSERT_FALSE(checker.Expired());
  }
}

TEST(DeadlineChecker, ObservesTripWithinOneStride) {
  AbortFlag flag;
  DeadlineChecker checker(/*timeout_seconds=*/0.0, &flag);
  EXPECT_FALSE(checker.Expired());  // call 0 checked: flag still clear
  flag.Trip(RunStatus::kCancelled);
  std::uint64_t calls = 0;
  while (!checker.Expired()) {
    ++calls;
    ASSERT_LE(calls, DeadlineChecker::kStride) << "trip not observed "
                                                  "within one stride";
  }
  EXPECT_LE(calls, DeadlineChecker::kStride);
}

TEST(DeadlineChecker, KWorkersAllHaltWithinOneStrideOfATrip) {
  constexpr int kWorkers = 4;
  AbortFlag flag;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::uint64_t> calls_after_trip(kWorkers, 0);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      DeadlineChecker checker(/*timeout_seconds=*/0.0, &flag);
      ready.fetch_add(1);
      while (!go.load()) {
      }
      // Spin the checker like an innermost join loop until it reports
      // expiry; every worker must stop within one stride of the trip.
      std::uint64_t calls = 0;
      while (!checker.Expired()) {
        if (flag.Tripped()) ++calls;  // count only post-trip iterations
        if (calls > 2 * DeadlineChecker::kStride) break;  // fail below
      }
      calls_after_trip[w] = calls;
    });
  }
  while (ready.load() < kWorkers) {
  }
  go.store(true);
  flag.Trip(RunStatus::kTimeout);
  for (std::thread& t : workers) t.join();
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_LE(calls_after_trip[w], DeadlineChecker::kStride)
        << "worker " << w << " overran the stride bound";
  }
}

TEST(DeadlineChecker, ExpiryTripsSharedFlagAsTimeout) {
  AbortFlag flag;
  DeadlineChecker checker(/*timeout_seconds=*/1e-9, &flag);
  while (!checker.Expired()) {
  }
  EXPECT_TRUE(flag.Tripped());
  EXPECT_EQ(flag.reason(), RunStatus::kTimeout);
}

TEST(MergeRunStatus, OkWhenNothingFailed) {
  AbortFlag flag;
  EXPECT_EQ(MergeRunStatus(false, false, nullptr), RunStatus::kOk);
  EXPECT_EQ(MergeRunStatus(false, false, &flag), RunStatus::kOk);
}

TEST(MergeRunStatus, OomDominatesTimeout) {
  // One worker blew the materialization budget, siblings "timed out" on
  // the stop signal: the run is out-of-memory, not a deadline miss.
  AbortFlag flag;
  flag.Trip(RunStatus::kOutOfMemory);
  EXPECT_EQ(MergeRunStatus(/*any_timed_out=*/true,
                           /*any_out_of_memory=*/true, &flag),
            RunStatus::kOutOfMemory);
  EXPECT_EQ(MergeRunStatus(/*any_timed_out=*/true,
                           /*any_out_of_memory=*/false, &flag),
            RunStatus::kOutOfMemory);
}

TEST(MergeRunStatus, CancelReasonOverridesSecondaryTimeouts) {
  AbortFlag flag;
  flag.Trip(RunStatus::kCancelled);
  EXPECT_EQ(MergeRunStatus(/*any_timed_out=*/true,
                           /*any_out_of_memory=*/false, &flag),
            RunStatus::kCancelled);
  // ...but a real budget violation still dominates the cancel.
  EXPECT_EQ(MergeRunStatus(/*any_timed_out=*/true,
                           /*any_out_of_memory=*/true, &flag),
            RunStatus::kOutOfMemory);
}

TEST(MergeRunStatus, PlainTimeoutStaysTimeout) {
  AbortFlag flag;
  flag.Trip(RunStatus::kTimeout);
  EXPECT_EQ(MergeRunStatus(true, false, &flag), RunStatus::kTimeout);
  EXPECT_EQ(MergeRunStatus(true, false, nullptr), RunStatus::kTimeout);
}

TEST(RunStatusNames, RoundTrip) {
  const RunStatus all[] = {RunStatus::kOk,        RunStatus::kTimeout,
                           RunStatus::kOutOfMemory, RunStatus::kShed,
                           RunStatus::kCancelled, RunStatus::kBadQuery,
                           RunStatus::kInternal};
  for (const RunStatus s : all) {
    RunStatus parsed;
    ASSERT_TRUE(ParseRunStatus(RunStatusName(s), &parsed))
        << RunStatusName(s);
    EXPECT_EQ(parsed, s);
  }
  EXPECT_FALSE(ParseRunStatus("NOT-A-STATUS", nullptr));
}

TEST(RunStatusNames, RetryTaxonomy) {
  EXPECT_TRUE(IsRetryable(RunStatus::kShed));
  EXPECT_TRUE(IsRetryable(RunStatus::kInternal));
  EXPECT_FALSE(IsRetryable(RunStatus::kOk));
  EXPECT_FALSE(IsRetryable(RunStatus::kTimeout));
  EXPECT_FALSE(IsRetryable(RunStatus::kOutOfMemory));
  EXPECT_FALSE(IsRetryable(RunStatus::kBadQuery));
  EXPECT_FALSE(IsRetryable(RunStatus::kCancelled));
}

TEST(RunResult, SetStatusKeepsLegacyShimsInSync) {
  RunResult result;
  result.SetStatus(RunStatus::kTimeout);
  EXPECT_TRUE(result.timed_out);
  EXPECT_FALSE(result.out_of_memory);
  EXPECT_FALSE(result.ok());
  result.SetStatus(RunStatus::kOutOfMemory, "budget blown");
  EXPECT_FALSE(result.timed_out);
  EXPECT_TRUE(result.out_of_memory);
  EXPECT_EQ(result.message, "budget blown");
  result.SetStatus(RunStatus::kOk);
  EXPECT_FALSE(result.timed_out);
  EXPECT_FALSE(result.out_of_memory);
  EXPECT_TRUE(result.ok());
}

// External cancellation through RunLimits::cancel terminates a real
// engine run with a typed kCancelled, for both single-threaded CLFTJ and
// the sharded executor (where the flag doubles as the workers' shared
// stop signal).
TEST(ExternalCancel, PreCancelledRunReportsCancelledImmediately) {
  const Database db = testing::SmallSkewedDb(7);
  const Query q = testing::Q("E(x,y), E(y,z), E(z,x)");
  for (const char* name : {"CLFTJ", "CLFTJ-P", "LFTJ", "YTD", "PairwiseHJ",
                           "GenericJoin", "NestedLoop"}) {
    AbortFlag cancel;
    cancel.Trip(RunStatus::kCancelled);
    RunLimits limits;
    limits.cancel = &cancel;
    const auto engine = MakeEngine(name);
    const RunResult result = engine->Count(q, db, limits);
    EXPECT_EQ(result.status, RunStatus::kCancelled) << name;
    EXPECT_FALSE(result.ok()) << name;
  }
}

TEST(ExternalCancel, ValidateQueryForDatabaseRejectsBadQueries) {
  const Database db = testing::SmallSkewedDb(7);
  std::string message;
  EXPECT_EQ(ValidateQueryForDatabase(testing::Q("E(x,y)"), db, &message),
            RunStatus::kOk);
  EXPECT_TRUE(message.empty());
  EXPECT_EQ(ValidateQueryForDatabase(testing::Q("Nope(x,y)"), db, &message),
            RunStatus::kBadQuery);
  EXPECT_NE(message.find("Nope"), std::string::npos);
  EXPECT_EQ(ValidateQueryForDatabase(testing::Q("E(x,y,z)"), db, &message),
            RunStatus::kBadQuery);
  EXPECT_NE(message.find("arity"), std::string::npos);
}

}  // namespace
}  // namespace clftj
