// Differential and failure-propagation tests for CLFTJ-P, the parallel
// sharded executor: at every thread count the sharded run must reproduce
// single-thread CLFTJ bit for bit — counts, emission order, and factorized
// structure — and a limit hit in any worker must stop and be reported by
// the whole run. Also exercises the re-entrant run states directly
// (FirstVarRange shard arithmetic over one shared plan/substrate).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "clftj/cached_trie_join.h"
#include "engine/sharded.h"
#include "query/patterns.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;
using ::clftj::testing::Q;

constexpr int kThreadCounts[] = {1, 2, 3, 8};

struct Instance {
  Query query;
  Database db;
};

Instance MakeInstance(std::uint64_t seed) {
  Rng rng(seed * 6271 + 5);
  const int num_vars = 3 + static_cast<int>(rng.Uniform(4));  // 3..6
  const double p = 0.35 + 0.1 * static_cast<double>(rng.Uniform(5));
  Instance inst{RandomPatternQuery(num_vars, p, seed + 1), Database()};
  const int nodes = 25 + static_cast<int>(rng.Uniform(40));
  if (rng.Flip(0.5)) {
    inst.db.Put(PreferentialAttachmentGraph(
        "E", nodes, 2 + static_cast<int>(rng.Uniform(3)), seed + 2));
  } else {
    inst.db.Put(NearRegularGraph("E", nodes, nodes * 2, seed + 2));
  }
  return inst;
}

ShardedCachedTrieJoin MakeSharded(int threads, CacheOptions cache = {}) {
  ShardedCachedTrieJoin::Options options;
  options.threads = threads;
  options.cache = cache;
  return ShardedCachedTrieJoin(options);
}

// Unsorted collection: pins the emission *order*, not just the set.
std::vector<Tuple> RawTuples(JoinEngine& engine, const Query& q,
                             const Database& db) {
  std::vector<Tuple> out;
  engine.Evaluate(q, db, [&out](const Tuple& t) { out.push_back(t); }, {});
  return out;
}

class ShardedDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedDifferentialTest, CountsMatchAtAllThreadCounts) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin single;
  const RunResult anchor = single.Count(inst.query, inst.db, {});
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin parallel = MakeSharded(threads);
    const RunResult got = parallel.Count(inst.query, inst.db, {});
    EXPECT_EQ(got.count, anchor.count)
        << inst.query.ToString() << " threads=" << threads;
    EXPECT_TRUE(got.ok());
  }
}

TEST_P(ShardedDifferentialTest, TupleSetsMatchAtAllThreadCounts) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin single;
  // Raw emission order is reproducible only at one shard: cache hits expand
  // skipped subtrees at the emission point, so the interleaving depends on
  // the hit pattern, and private shard caches hit differently than the one
  // shared cache. The result *set* is identical at every thread count.
  const std::vector<Tuple> raw_anchor = RawTuples(single, inst.query, inst.db);
  ShardedCachedTrieJoin one_shard = MakeSharded(1);
  EXPECT_EQ(RawTuples(one_shard, inst.query, inst.db), raw_anchor)
      << inst.query.ToString();

  const std::vector<Tuple> anchor = CollectTuples(single, inst.query, inst.db);
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin parallel = MakeSharded(threads);
    EXPECT_EQ(CollectTuples(parallel, inst.query, inst.db), anchor)
        << inst.query.ToString() << " threads=" << threads;
  }
}

TEST_P(ShardedDifferentialTest, FactorizedResultMatchesSingleThread) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin single;
  RunResult single_run;
  const auto anchor =
      single.EvaluateFactorized(inst.query, inst.db, {}, &single_run);
  ASSERT_TRUE(anchor.has_value());
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin parallel = MakeSharded(threads);
    RunResult run;
    const auto got = parallel.EvaluateFactorized(inst.query, inst.db, {}, &run);
    ASSERT_TRUE(got.has_value()) << "threads=" << threads;
    EXPECT_EQ(got->Count(), anchor->Count()) << "threads=" << threads;
    // The flat expansion must agree tuple for tuple in enumeration order.
    // NumEntries is *not* compared: it counts distinct shared sets, and
    // sub-structure sharing follows the cache hit pattern, which private
    // shard caches legitimately change.
    std::vector<Tuple> anchor_tuples;
    anchor->Enumerate([&](const Tuple& t) { anchor_tuples.push_back(t); });
    std::vector<Tuple> got_tuples;
    got->Enumerate([&](const Tuple& t) { got_tuples.push_back(t); });
    std::sort(anchor_tuples.begin(), anchor_tuples.end());
    std::sort(got_tuples.begin(), got_tuples.end());
    EXPECT_EQ(got_tuples, anchor_tuples) << "threads=" << threads;
  }
}

TEST_P(ShardedDifferentialTest, BoundedPrivateCachesStayCorrect) {
  const Instance inst = MakeInstance(GetParam());
  CacheOptions cache;
  cache.capacity = 16;  // split to 16/K per shard
  CachedTrieJoin::Options single_options;
  single_options.cache = cache;
  CachedTrieJoin single(single_options);
  const std::uint64_t anchor = single.Count(inst.query, inst.db, {}).count;
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin parallel = MakeSharded(threads, cache);
    EXPECT_EQ(parallel.Count(inst.query, inst.db, {}).count, anchor)
        << inst.query.ToString() << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferentialTest,
                         ::testing::Range(0, 12));

TEST(Sharded, DomainSmallerThanThreadCount) {
  // Three edges — the first variable's depth-0 intersection has at most 3
  // values, so 8 requested workers collapse to <= 3 shards.
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  e.AddPair(3, 1);
  Database db;
  db.Put(std::move(e));
  const Query q = Q("E(x,y), E(y,z), E(z,x)");
  CachedTrieJoin single;
  const std::uint64_t anchor = single.Count(q, db, {}).count;
  EXPECT_EQ(anchor, 3u);  // the 3 rotations of the directed triangle
  ShardedCachedTrieJoin parallel = MakeSharded(8);
  const RunResult got = parallel.Count(q, db, {});
  EXPECT_EQ(got.count, anchor);
  EXPECT_TRUE(got.ok());
}

TEST(Sharded, EmptyResultAndEmptyIntersection) {
  // E has tuples but no (y,x) partner: the depth-0 intersection of the
  // triangle-closing pair is empty, so MakeShards finds nothing to run.
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(3, 4);
  Database db;
  db.Put(std::move(e));
  const Query q = Q("E(x,y), E(y,x)");
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin parallel = MakeSharded(threads);
    const RunResult got = parallel.Count(q, db, {});
    EXPECT_EQ(got.count, 0u);
    EXPECT_TRUE(got.ok());
    std::vector<Tuple> tuples = CollectTuples(parallel, q, db);
    EXPECT_TRUE(tuples.empty());
  }
}

TEST(Sharded, EmptyShardRangeYieldsNothing) {
  // Drives the re-entrant run state directly over a shared plan and
  // substrate: a shard whose value interval contains no first-variable
  // value must contribute zero, and disjoint shard ranges must partition
  // the full count.
  Database db = testing::SmallSkewedDb(7);
  const Query q = Q("E(x,y), E(y,z)");
  const CachedPlan plan =
      CachedPlan::Resolve(q, db, std::nullopt, {}, CacheOptions{});
  const TrieJoinSubstrate substrate(q, db, plan.order);
  ASSERT_FALSE(substrate.HasEmptyAtom());

  ExecStats stats;
  auto count_range = [&](const FirstVarRange& range) {
    TrieJoinContext ctx(substrate, &stats);
    CountRun run(plan, CacheOptions{}, &ctx, &stats, RunLimits{}, range);
    return run.Run();
  };

  const std::uint64_t all = count_range(FirstVarRange{});
  EXPECT_EQ(all, testing::ReferenceCount(q, db));

  FirstVarRange empty;
  empty.lo = 1u << 20;  // beyond every node id in the small graph
  EXPECT_EQ(count_range(empty), 0u);

  FirstVarRange low, high;
  low.has_hi = true;
  low.hi = 30;  // split the node-id domain at an arbitrary boundary
  high.lo = 30;
  EXPECT_EQ(count_range(low) + count_range(high), all);
}

TEST(Sharded, TimeoutPropagatesToAllWorkers) {
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 800, 5, /*seed=*/3));
  const Query q = CycleQuery(5);
  RunLimits limits;
  limits.timeout_seconds = 1e-9;  // expires at the first stride sample
  ShardedCachedTrieJoin parallel = MakeSharded(4);
  const RunResult got = parallel.Count(q, db, limits);
  EXPECT_TRUE(got.timed_out);
  EXPECT_FALSE(got.ok());
}

TEST(Sharded, OutOfMemoryInOneWorkerFailsTheRun) {
  Database db = testing::SmallSkewedDb(11, /*nodes=*/80, /*edges_per_node=*/4);
  const Query q = CycleQuery(4);
  RunLimits limits;
  limits.max_intermediate_tuples = 5;  // far below the real intermediate load
  ShardedCachedTrieJoin parallel = MakeSharded(4);
  RunResult run;
  const auto got = parallel.EvaluateFactorized(q, db, limits, &run);
  EXPECT_FALSE(got.has_value());
  EXPECT_TRUE(run.out_of_memory);
  // OOM dominates the secondary abort-flag "timeouts" of sibling workers.
  EXPECT_FALSE(run.timed_out);
}

TEST(Sharded, EvaluateBufferRespectsMaterializationBudget) {
  Database db = testing::SmallSkewedDb(13, /*nodes=*/80, /*edges_per_node=*/4);
  const Query q = Q("E(x,y), E(y,z)");
  RunLimits limits;
  limits.max_intermediate_tuples = 10;  // the 2-path result is much larger
  ShardedCachedTrieJoin parallel = MakeSharded(2);
  std::uint64_t emitted = 0;
  const RunResult got = parallel.Evaluate(
      q, db, [&emitted](const Tuple&) { ++emitted; }, limits);
  EXPECT_TRUE(got.out_of_memory);
  // The budget is run-wide: both shards together stay within it.
  EXPECT_LE(emitted, limits.max_intermediate_tuples);
}

TEST(Sharded, MemoryAccessSumIsReportedAndSane) {
  Instance inst{Q("E(x,y), E(y,z), E(x,z)"), testing::SmallSkewedDb(42)};
  CacheOptions no_cache;
  no_cache.enabled = false;
  CachedTrieJoin::Options nocache_options;
  nocache_options.cache = no_cache;
  CachedTrieJoin nocache_single(nocache_options);
  const std::uint64_t nocache_accesses =
      nocache_single.Count(inst.query, inst.db, {}).stats.memory_accesses;

  const int threads = 4;
  ShardedCachedTrieJoin parallel = MakeSharded(threads);
  const RunResult got = parallel.Count(inst.query, inst.db, {});
  const std::uint64_t sum = got.stats.memory_accesses;
  EXPECT_GT(sum, 0u);
  // Private caches duplicate work the shared cache would have skipped, but
  // each shard's traversal is a sub-range of the cache-free traversal plus
  // bounded probe overhead: the sum can never blow past K cache-free runs.
  EXPECT_LE(sum, 3 * static_cast<std::uint64_t>(threads) * nocache_accesses +
                     1000u);
}

}  // namespace
}  // namespace clftj
