// QueryService behaviour: correct results through the serving path,
// typed admission failures (kBadQuery without a queue slot, kShed with a
// retry-after hint), per-request deadlines and budgets, aggregate byte
// budget accounting, and both shutdown modes.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "server/service.h"
#include "test_util.h"
#include "util/fault.h"

namespace clftj {
namespace {

constexpr const char* kTriangle = "E(x,y), E(y,z), E(z,x)";

QueryRequest CountReq(const std::string& text) {
  QueryRequest request;
  request.query_text = text;
  request.mode = "count";
  return request;
}

TEST(QueryService, CountMatchesReference) {
  const Database db = testing::SmallSkewedDb(11);
  QueryService service(db, ServiceOptions{});
  const QueryResponse response = service.Execute(CountReq(kTriangle));
  EXPECT_EQ(response.status, RunStatus::kOk);
  EXPECT_EQ(response.count,
            testing::ReferenceCount(testing::Q(kTriangle), db));
  EXPECT_TRUE(response.tuples.empty());  // count mode returns no tuples
}

TEST(QueryService, EvalReturnsReferenceTuples) {
  const Database db = testing::SmallSkewedDb(11);
  QueryService service(db, ServiceOptions{});
  QueryRequest request = CountReq(kTriangle);
  request.mode = "eval";
  QueryResponse response = service.Execute(request);
  ASSERT_EQ(response.status, RunStatus::kOk);
  std::vector<Tuple> got = response.tuples;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, testing::ReferenceTuples(testing::Q(kTriangle), db));
  EXPECT_EQ(response.count, got.size());
}

TEST(QueryService, EveryEngineServesTheSameCount) {
  const Database db = testing::SmallSkewedDb(3);
  QueryService service(db, ServiceOptions{});
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  for (const char* name : {"CLFTJ", "CLFTJ-P", "LFTJ", "YTD", "PairwiseHJ",
                           "GenericJoin"}) {
    QueryRequest request = CountReq(kTriangle);
    request.engine = name;
    const QueryResponse response = service.Execute(request);
    EXPECT_EQ(response.status, RunStatus::kOk) << name;
    EXPECT_EQ(response.count, want) << name;
  }
}

TEST(QueryService, BadQueryNeverOccupiesAQueueSlot) {
  const Database db = testing::SmallSkewedDb(5);
  QueryService service(db, ServiceOptions{});
  const struct {
    const char* text;
    const char* mode;
    const char* engine;
  } cases[] = {
      {"E(x,y) nonsense", "count", ""},   // parse error
      {"Missing(x,y)", "count", ""},      // unknown relation
      {"E(x,y,z)", "count", ""},          // arity mismatch
      {kTriangle, "frobnicate", ""},      // unknown mode
      {kTriangle, "count", "NoSuchEngine"},
  };
  for (const auto& c : cases) {
    QueryRequest request;
    request.query_text = c.text;
    request.mode = c.mode;
    request.engine = c.engine;
    const QueryResponse response = service.Execute(request);
    EXPECT_EQ(response.status, RunStatus::kBadQuery) << c.text;
    EXPECT_FALSE(response.message.empty()) << c.text;
    EXPECT_EQ(service.QueueDepth(), 0u) << c.text;
  }
}

TEST(QueryService, ShedsWhenTheQueueIsFull) {
  const Database db = testing::SmallSkewedDb(9, /*nodes=*/120,
                                             /*edges_per_node=*/4);
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.retry_after_ms = 123;
  QueryService service(db, options);

  // Slow every admitted request down so the single worker stays busy while
  // we overfill the queue.
  fault::Config faults;
  faults.seed = 42;
  faults.period[static_cast<int>(fault::Site::kWorkerDelay)] = 1;
  faults.delay_ms = 100;
  fault::ScopedFaults scoped(faults);

  std::vector<std::future<QueryResponse>> futures;
  int sheds = 0;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.Submit(CountReq(kTriangle)));
  }
  std::uint64_t ok_count = 0;
  for (auto& f : futures) {
    const QueryResponse response = f.get();
    if (response.status == RunStatus::kShed) {
      ++sheds;
      EXPECT_EQ(response.retry_after_ms, 123u);
      EXPECT_TRUE(IsRetryable(response.status));
    } else {
      ASSERT_EQ(response.status, RunStatus::kOk);
      ok_count = response.count;
    }
  }
  EXPECT_GT(sheds, 0) << "8 submits into capacity-1 queue never shed";
  EXPECT_EQ(ok_count, testing::ReferenceCount(testing::Q(kTriangle), db));
}

TEST(QueryService, AggregateByteBudgetShedsAndCredits) {
  const Database db = testing::SmallSkewedDb(5);
  ServiceOptions options;
  options.workers = 1;
  options.aggregate_budget_bytes = 1024;  // room for one 64-tuple request
  QueryService service(db, options);

  // Hold the worker so charges stay outstanding while we probe admission.
  fault::Config faults;
  faults.seed = 1;
  faults.period[static_cast<int>(fault::Site::kWorkerDelay)] = 1;
  faults.delay_ms = 150;
  std::vector<std::future<QueryResponse>> kept;
  int shed = 0;
  {
    fault::ScopedFaults scoped(faults);
    QueryRequest request = CountReq(kTriangle);
    request.max_tuples = 64;  // charged 64 * 8 = 512 bytes
    kept.push_back(service.Submit(request));  // 512 charged
    kept.push_back(service.Submit(request));  // 1024 charged
    EXPECT_EQ(service.ChargedBytes(), 1024u);
    const QueryResponse third = service.Execute(request);  // would be 1536
    EXPECT_EQ(third.status, RunStatus::kShed);
    ++shed;
    for (auto& f : kept) f.get();  // drain so ScopedFaults can restore
  }
  EXPECT_EQ(shed, 1);
  // Completed requests credit their charge back.
  EXPECT_EQ(service.ChargedBytes(), 0u);
  // ...and with the budget free again, the same request admits fine.
  EXPECT_EQ(service.Execute(CountReq(kTriangle)).status, RunStatus::kOk);
}

TEST(QueryService, UnlimitedRequestChargesTheWholeBudget) {
  const Database db = testing::SmallSkewedDb(5);
  ServiceOptions options;
  options.workers = 1;
  options.aggregate_budget_bytes = 4096;
  QueryService service(db, options);
  fault::Config faults;
  faults.seed = 2;
  faults.period[static_cast<int>(fault::Site::kWorkerDelay)] = 1;
  faults.delay_ms = 150;
  {
    fault::ScopedFaults scoped(faults);
    // max_tuples == 0 → charged the whole budget. The first request always
    // admits (the service would otherwise deadlock on oversize charges)...
    auto first = service.Submit(CountReq(kTriangle));
    EXPECT_EQ(service.ChargedBytes(), 4096u);
    // ...but a second unlimited request must wait its turn: shed.
    EXPECT_EQ(service.Execute(CountReq(kTriangle)).status, RunStatus::kShed);
    EXPECT_EQ(first.get().status, RunStatus::kOk);
  }
  EXPECT_EQ(service.ChargedBytes(), 0u);
}

TEST(QueryService, PerRequestTimeoutReportsTimeout) {
  // A large-ish db plus a 4-atom cycle gives the deadline a chance to trip
  // mid-run even on fast machines; 1ms is far below the full runtime.
  const Database db = testing::SmallSkewedDb(13, /*nodes=*/4000,
                                             /*edges_per_node=*/24);
  QueryService service(db, ServiceOptions{});
  QueryRequest request = CountReq("E(a,b), E(b,c), E(c,d), E(d,a)");
  request.timeout_ms = 1;
  const QueryResponse response = service.Execute(request);
  EXPECT_EQ(response.status, RunStatus::kTimeout);
  EXPECT_FALSE(IsRetryable(response.status));
}

TEST(QueryService, TupleBudgetReportsOutOfMemory) {
  const Database db = testing::SmallSkewedDb(13, /*nodes=*/500,
                                             /*edges_per_node=*/6);
  QueryService service(db, ServiceOptions{});
  QueryRequest request = CountReq(kTriangle);
  request.engine = "PairwiseHJ";  // materializes intermediates
  request.max_tuples = 4;
  const QueryResponse response = service.Execute(request);
  EXPECT_EQ(response.status, RunStatus::kOutOfMemory);
}

TEST(QueryService, EvalTuplesClearedOnFailure) {
  const Database db = testing::SmallSkewedDb(13, /*nodes=*/500,
                                             /*edges_per_node=*/6);
  QueryService service(db, ServiceOptions{});
  QueryRequest request = CountReq(kTriangle);
  request.mode = "eval";
  request.engine = "PairwiseHJ";
  request.max_tuples = 4;
  const QueryResponse response = service.Execute(request);
  EXPECT_NE(response.status, RunStatus::kOk);
  EXPECT_TRUE(response.tuples.empty())
      << "partial tuples must not leak out of a failed run";
}

TEST(QueryService, DrainShutdownCompletesQueuedWork) {
  const Database db = testing::SmallSkewedDb(7);
  ServiceOptions options;
  options.workers = 1;
  QueryService service(db, options);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(CountReq(kTriangle)));
  }
  service.Shutdown(/*drain=*/true);
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  for (auto& f : futures) {
    const QueryResponse response = f.get();
    EXPECT_EQ(response.status, RunStatus::kOk);
    EXPECT_EQ(response.count, want);
  }
  // New submits after shutdown are shed, typed and retryable (another
  // replica might be up), not silently dropped.
  const QueryResponse late = service.Execute(CountReq(kTriangle));
  EXPECT_EQ(late.status, RunStatus::kShed);
  EXPECT_NE(late.message.find("shutting down"), std::string::npos);
}

TEST(QueryService, ImmediateShutdownCancelsQueuedWork) {
  const Database db = testing::SmallSkewedDb(7, /*nodes=*/3000,
                                             /*edges_per_node=*/24);
  ServiceOptions options;
  options.workers = 1;
  QueryService service(db, options);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        service.Submit(CountReq("E(a,b), E(b,c), E(c,d), E(d,a)")));
  }
  service.Shutdown(/*drain=*/false);
  int cancelled = 0;
  for (auto& f : futures) {
    const QueryResponse response = f.get();  // must resolve — no hangs
    if (response.status == RunStatus::kCancelled) ++cancelled;
  }
  // At least the queued (not yet started) requests must be cancelled; an
  // in-flight one may have finished before the flag tripped.
  EXPECT_GE(cancelled, 4);
  EXPECT_EQ(service.ChargedBytes(), 0u);
}

TEST(QueryService, ShutdownIsIdempotent) {
  const Database db = testing::SmallSkewedDb(7);
  QueryService service(db, ServiceOptions{});
  service.Shutdown(true);
  service.Shutdown(false);
  service.Shutdown(true);  // no crash, no hang
}

TEST(QueryService, ConcurrentSubmittersAllGetTypedResponses) {
  const Database db = testing::SmallSkewedDb(17);
  ServiceOptions options;
  options.workers = 3;
  options.queue_capacity = 4;
  QueryService service(db, options);
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  constexpr int kThreads = 6;
  constexpr int kPerThread = 10;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const QueryResponse r = service.Execute(CountReq(kTriangle));
        if (r.status == RunStatus::kOk) {
          EXPECT_EQ(r.count, want);
          ok.fetch_add(1);
        } else if (r.status == RunStatus::kShed) {
          shed.fetch_add(1);
        } else {
          other.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load() + shed.load() + other.load(), kThreads * kPerThread);
  EXPECT_EQ(other.load(), 0) << "unexpected non-OK/SHED statuses";
  EXPECT_GT(ok.load(), 0);
}

}  // namespace
}  // namespace clftj
