#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/generators.h"
#include "query/parser.h"
#include "trie/leapfrog.h"
#include "trie/trie.h"
#include "trie/trie_iterator.h"
#include "util/rng.h"

namespace clftj {
namespace {

// Recovers all tuples from a trie by full iterator traversal.
std::vector<Tuple> Flatten(const Trie& trie) {
  std::vector<Tuple> out;
  if (trie.depth() == 0) return out;
  TrieIterator it(&trie);
  Tuple row(trie.depth());
  // Depth-first traversal with the iterator API only.
  std::vector<bool> opened(trie.depth(), false);
  it.Open();
  int level = 0;
  while (level >= 0) {
    if (it.AtEnd()) {
      it.Up();
      --level;
      if (level >= 0) it.Next();
      continue;
    }
    row[level] = it.Key();
    if (level + 1 == trie.depth()) {
      out.push_back(row);
      it.Next();
    } else {
      it.Open();
      ++level;
    }
  }
  return out;
}

TEST(Trie, BuildSortsAndDeduplicates) {
  const Trie trie = Trie::Build(2, {{3, 4}, {1, 2}, {3, 4}, {1, 5}});
  EXPECT_EQ(trie.num_tuples(), 3u);
  EXPECT_EQ(Flatten(trie), (std::vector<Tuple>{{1, 2}, {1, 5}, {3, 4}}));
}

TEST(Trie, DepthZero) {
  const Trie empty = Trie::Build(0, {});
  EXPECT_EQ(empty.num_tuples(), 0u);
  const Trie nonempty = Trie::Build(0, {{}});
  EXPECT_EQ(nonempty.num_tuples(), 1u);
}

TEST(Trie, EmptyRelation) {
  const Trie trie = Trie::Build(3, {});
  EXPECT_EQ(trie.num_tuples(), 0u);
  EXPECT_TRUE(trie.values(0).empty());
}

TEST(Trie, SingleColumn) {
  const Trie trie = Trie::Build(1, {{5}, {2}, {5}, {9}});
  EXPECT_EQ(Flatten(trie), (std::vector<Tuple>{{2}, {5}, {9}}));
}

TEST(Trie, RandomRoundTripMatchesSet) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    const int depth = 1 + static_cast<int>(rng.Uniform(4));
    std::set<Tuple> expected;
    std::vector<Tuple> rows;
    const int n = static_cast<int>(rng.Uniform(200));
    for (int i = 0; i < n; ++i) {
      Tuple t;
      for (int d = 0; d < depth; ++d) {
        t.push_back(static_cast<Value>(rng.Uniform(12)));
      }
      expected.insert(t);
      rows.push_back(t);
    }
    const Trie trie = Trie::Build(depth, rows);
    EXPECT_EQ(trie.num_tuples(), expected.size());
    const std::vector<Tuple> got = Flatten(trie);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin(),
                           expected.end()));
  }
}

TEST(Trie, FromColumnsMatchesRowBuild) {
  // The columnar bulk path and the row wrapper must produce identical
  // tries, including under duplicates and unsorted input.
  Rng rng(123);
  for (int round = 0; round < 20; ++round) {
    const int depth = 1 + static_cast<int>(rng.Uniform(4));
    const int n = static_cast<int>(rng.Uniform(150));
    std::vector<Tuple> rows;
    std::vector<std::vector<Value>> columns(depth);
    for (int i = 0; i < n; ++i) {
      Tuple t;
      for (int d = 0; d < depth; ++d) {
        t.push_back(static_cast<Value>(rng.Uniform(8)));
      }
      for (int d = 0; d < depth; ++d) columns[d].push_back(t[d]);
      rows.push_back(std::move(t));
    }
    const Trie from_rows = Trie::Build(depth, rows);
    const Trie from_columns =
        Trie::FromColumns(depth, rows.size(), std::move(columns));
    EXPECT_EQ(from_rows.num_tuples(), from_columns.num_tuples());
    EXPECT_EQ(Flatten(from_rows), Flatten(from_columns));
  }
}

TEST(Trie, FromColumnsEmpty) {
  const Trie trie = Trie::FromColumns(2, 0, {{}, {}});
  EXPECT_EQ(trie.num_tuples(), 0u);
  EXPECT_TRUE(trie.values(0).empty());
}

TEST(Trie, MemoryBytesGrowsWithData) {
  const Trie small = Trie::Build(2, {{1, 2}});
  const Trie big = Trie::Build(2, {{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(TrieIterator, SeekFindsLowerBound) {
  const Trie trie = Trie::Build(1, {{2}, {5}, {9}, {13}, {20}});
  TrieIterator it(&trie);
  it.Open();
  it.Seek(6);
  EXPECT_EQ(it.Key(), 9);
  it.Seek(9);
  EXPECT_EQ(it.Key(), 9);
  it.Seek(14);
  EXPECT_EQ(it.Key(), 20);
  it.Seek(21);
  EXPECT_TRUE(it.AtEnd());
}

TEST(TrieIterator, SeekWithinChildGroupOnly) {
  // Children of 1 are {3,7}; children of 2 are {4}.
  const Trie trie = Trie::Build(2, {{1, 3}, {1, 7}, {2, 4}});
  TrieIterator it(&trie);
  it.Open();        // level 0 at 1
  EXPECT_EQ(it.Key(), 1);
  it.Open();        // level 1 at 3
  EXPECT_EQ(it.Key(), 3);
  it.Seek(5);
  EXPECT_EQ(it.Key(), 7);
  it.Next();
  EXPECT_TRUE(it.AtEnd());  // group of parent 1 exhausted; 4 not visible
  it.Up();
  it.Next();
  EXPECT_EQ(it.Key(), 2);
  it.Open();
  EXPECT_EQ(it.Key(), 4);
}

TEST(TrieIterator, UpRecoversFromAtEnd) {
  const Trie trie = Trie::Build(1, {{1}, {2}});
  TrieIterator it(&trie);
  it.Open();
  it.Next();
  it.Next();
  EXPECT_TRUE(it.AtEnd());
  it.Up();
  EXPECT_EQ(it.depth(), -1);
  it.Open();
  EXPECT_EQ(it.Key(), 1);
}

TEST(TrieIterator, CountsMemoryAccesses) {
  const Trie trie = Trie::Build(1, {{1}, {2}, {3}, {4}, {5}});
  ExecStats stats;
  TrieIterator it(&trie, &stats);
  it.Open();
  it.Seek(5);
  EXPECT_GT(stats.memory_accesses, 0u);
}

TEST(TrieIterator, SeekOnLongSortedRun) {
  std::vector<Tuple> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back({2 * i});
  const Trie trie = Trie::Build(1, rows);
  TrieIterator it(&trie);
  it.Open();
  for (int target = 1; target < 1998; target += 97) {
    it.Seek(target);
    ASSERT_FALSE(it.AtEnd());
    EXPECT_EQ(it.Key(), target % 2 == 0 ? target : target + 1);
  }
}

TEST(Leapfrog, IntersectsSortedSets) {
  const Trie a = Trie::Build(1, {{1}, {3}, {5}, {7}, {9}});
  const Trie b = Trie::Build(1, {{2}, {3}, {5}, {8}, {9}});
  const Trie c = Trie::Build(1, {{0}, {3}, {5}, {9}, {11}});
  TrieIterator ia(&a), ib(&b), ic(&c);
  ia.Open();
  ib.Open();
  ic.Open();
  LeapfrogJoin join({&ia, &ib, &ic});
  join.Init();
  std::vector<Value> got;
  while (!join.AtEnd()) {
    got.push_back(join.Key());
    join.Next();
  }
  EXPECT_EQ(got, (std::vector<Value>{3, 5, 9}));
}

TEST(Leapfrog, EmptyIntersection) {
  const Trie a = Trie::Build(1, {{1}, {2}});
  const Trie b = Trie::Build(1, {{3}, {4}});
  TrieIterator ia(&a), ib(&b);
  ia.Open();
  ib.Open();
  LeapfrogJoin join({&ia, &ib});
  join.Init();
  EXPECT_TRUE(join.AtEnd());
}

TEST(Leapfrog, SingleIteratorEnumeratesAll) {
  const Trie a = Trie::Build(1, {{4}, {8}, {15}});
  TrieIterator ia(&a);
  ia.Open();
  LeapfrogJoin join({&ia});
  join.Init();
  std::vector<Value> got;
  while (!join.AtEnd()) {
    got.push_back(join.Key());
    join.Next();
  }
  EXPECT_EQ(got, (std::vector<Value>{4, 8, 15}));
}

TEST(Leapfrog, SeekSkipsAhead) {
  const Trie a = Trie::Build(1, {{1}, {5}, {10}, {15}});
  const Trie b = Trie::Build(1, {{1}, {5}, {10}, {15}});
  TrieIterator ia(&a), ib(&b);
  ia.Open();
  ib.Open();
  LeapfrogJoin join({&ia, &ib});
  join.Init();
  join.Seek(7);
  ASSERT_FALSE(join.AtEnd());
  EXPECT_EQ(join.Key(), 10);
}

TEST(Leapfrog, RandomizedAgainstStdSetIntersection) {
  Rng rng(123);
  for (int round = 0; round < 30; ++round) {
    const int k = 2 + static_cast<int>(rng.Uniform(3));
    std::vector<std::set<Value>> sets(k);
    for (auto& s : sets) {
      const int n = 1 + static_cast<int>(rng.Uniform(60));
      for (int i = 0; i < n; ++i) {
        s.insert(static_cast<Value>(rng.Uniform(40)));
      }
    }
    std::set<Value> expected = sets[0];
    for (int i = 1; i < k; ++i) {
      std::set<Value> next;
      std::set_intersection(expected.begin(), expected.end(),
                            sets[i].begin(), sets[i].end(),
                            std::inserter(next, next.begin()));
      expected = std::move(next);
    }
    std::vector<Trie> tries;
    tries.reserve(k);
    for (const auto& s : sets) {
      std::vector<Tuple> rows;
      for (const Value v : s) rows.push_back({v});
      tries.push_back(Trie::Build(1, rows));
    }
    std::vector<TrieIterator> iters;
    iters.reserve(k);
    for (const Trie& t : tries) iters.emplace_back(&t);
    std::vector<TrieIterator*> ptrs;
    for (auto& it : iters) {
      it.Open();
      ptrs.push_back(&it);
    }
    LeapfrogJoin join(ptrs);
    join.Init();
    std::vector<Value> got;
    while (!join.AtEnd()) {
      got.push_back(join.Key());
      join.Next();
    }
    EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin(),
                           expected.end()))
        << "round " << round;
  }
}

// --- AtomView ---

TEST(AtomView, ProjectsByGlobalOrder) {
  Relation r("R", 2);
  r.AddPair(1, 10);
  r.AddPair(2, 20);
  r.Normalize();
  const auto q = ParseQuery("R(x,y)");
  ASSERT_TRUE(q.has_value());
  // Reverse order: y before x — trie levels must flip.
  const std::vector<int> rank = {1, 0};  // x -> 1, y -> 0
  const AtomView view = BuildAtomView(r, q->atom(0), rank);
  ASSERT_EQ(view.level_vars.size(), 2u);
  EXPECT_EQ(view.level_vars[0], q->FindVariable("y"));
  EXPECT_EQ(view.level_vars[1], q->FindVariable("x"));
  EXPECT_EQ(Flatten(*view.trie),
            (std::vector<Tuple>{{10, 1}, {20, 2}}));
}

TEST(AtomView, ConstantFilter) {
  Relation r("R", 2);
  r.AddPair(1, 10);
  r.AddPair(2, 20);
  r.AddPair(2, 30);
  r.Normalize();
  const auto q = ParseQuery("R(2,y)");
  ASSERT_TRUE(q.has_value());
  const std::vector<int> rank = {0};
  const AtomView view = BuildAtomView(r, q->atom(0), rank);
  EXPECT_TRUE(view.non_empty);
  EXPECT_EQ(Flatten(*view.trie), (std::vector<Tuple>{{20}, {30}}));
}

TEST(AtomView, ConstantFilterCanEmpty) {
  Relation r("R", 2);
  r.AddPair(1, 10);
  r.Normalize();
  const auto q = ParseQuery("R(7,y)");
  ASSERT_TRUE(q.has_value());
  const std::vector<int> rank = {0};
  const AtomView view = BuildAtomView(r, q->atom(0), rank);
  EXPECT_FALSE(view.non_empty);
}

TEST(AtomView, RepeatedVariableKeepsDiagonal) {
  Relation r("R", 2);
  r.AddPair(1, 1);
  r.AddPair(1, 2);
  r.AddPair(3, 3);
  r.Normalize();
  const auto q = ParseQuery("R(x,x)");
  ASSERT_TRUE(q.has_value());
  const std::vector<int> rank = {0};
  const AtomView view = BuildAtomView(r, q->atom(0), rank);
  EXPECT_EQ(Flatten(*view.trie), (std::vector<Tuple>{{1}, {3}}));
}

TEST(AtomView, AllConstantAtom) {
  Relation r("R", 2);
  r.AddPair(1, 2);
  r.Normalize();
  const auto hit = ParseQuery("R(1,2), R(x,y)");
  ASSERT_TRUE(hit.has_value());
  const std::vector<int> rank = {0, 1};
  const AtomView present = BuildAtomView(r, hit->atom(0), rank);
  EXPECT_TRUE(present.non_empty);
  EXPECT_EQ(present.trie->depth(), 0);
  const auto miss = ParseQuery("R(2,1), R(x,y)");
  const AtomView absent = BuildAtomView(r, miss->atom(0), rank);
  EXPECT_FALSE(absent.non_empty);
}

// Reference implementation of the sequential galloping lower bound that
// TrieIterator::Seek used before the 4-way unroll, counting one comparison
// per executed probe — the counting contract GallopingLowerBound pins
// itself to (see leapfrog.h). Any divergence in either the found position
// or the comparison count is a regression.
std::size_t ScalarGallopLowerBound(const std::vector<Value>& vals,
                                   std::size_t lo, std::size_t end,
                                   Value bound, std::uint64_t* comparisons) {
  std::size_t step = 1;
  std::size_t hi = lo + 1;
  while (hi < end && vals[hi] < bound) {
    ++*comparisons;
    lo = hi;
    step <<= 1;
    hi = std::min(end, lo + step);
  }
  if (hi < end) ++*comparisons;
  std::size_t count = hi - lo - 1;
  std::size_t first = lo + 1;
  while (count > 0) {
    ++*comparisons;
    const std::size_t half = count / 2;
    const std::size_t mid = first + half;
    if (vals[mid] < bound) {
      first = mid + 1;
      count -= half + 1;
    } else {
      count = half;
    }
  }
  return first;
}

TEST(GallopingLowerBound, MatchesStdLowerBoundAndScalarCounts) {
  Rng rng(20260730);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.Uniform(2000);
    std::vector<Value> vals;
    vals.reserve(n);
    Value v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v += 1 + static_cast<Value>(rng.Uniform(5));  // sorted, gappy
      vals.push_back(v);
    }
    for (int probe = 0; probe < 50; ++probe) {
      const std::size_t pos = rng.Uniform(n);
      // Any bound above vals[pos], frequently past the end.
      const Value bound =
          vals[pos] + 1 + static_cast<Value>(rng.Uniform(vals.back() + 4));
      std::uint64_t unrolled_cmp = 0;
      std::uint64_t scalar_cmp = 0;
      const std::size_t got =
          GallopingLowerBound(vals.data(), pos, n, bound, &unrolled_cmp);
      const std::size_t want =
          ScalarGallopLowerBound(vals, pos, n, bound, &scalar_cmp);
      ASSERT_EQ(got, want) << "pos=" << pos << " bound=" << bound;
      ASSERT_EQ(got, static_cast<std::size_t>(
                         std::lower_bound(vals.begin() + pos, vals.end(),
                                          bound) -
                         vals.begin()));
      ASSERT_EQ(unrolled_cmp, scalar_cmp)
          << "pos=" << pos << " bound=" << bound << " n=" << n;
    }
  }
}

TEST(TrieIterator, SeekCountsMatchScalarReference) {
  // Counter-pinned regression test for the unrolled Seek: a fixed seek
  // sequence over a fixed sibling group must charge exactly the accesses
  // the sequential implementation did (the recorded bench baselines in
  // docs/bench_pr*/ were produced under that counting).
  std::vector<Tuple> rows;
  for (int i = 0; i < 10000; ++i) rows.push_back({3 * i});
  const Trie trie = Trie::Build(1, rows);
  ExecStats stats;
  TrieIterator it(&trie, &stats);
  it.Open();
  const std::uint64_t after_open = stats.memory_accesses;

  std::vector<Value> vals;
  for (const Tuple& t : rows) vals.push_back(t[0]);
  std::uint64_t expected = 0;
  std::size_t pos = 0;
  for (const Value bound : {1, 2, 10, 500, 501, 7777, 25000, 29990}) {
    if (vals[pos] >= bound) {
      ++expected;  // Seek's already-positioned fast path
    } else {
      pos = ScalarGallopLowerBound(vals, pos, vals.size(), bound, &expected);
    }
    it.Seek(bound);
    ASSERT_FALSE(it.AtEnd());
    EXPECT_EQ(it.Key(), vals[pos]);
  }
  EXPECT_EQ(stats.memory_accesses - after_open, expected);
  // Literal pin so a change to either implementation trips loudly.
  EXPECT_EQ(expected, 88u);
}

}  // namespace
}  // namespace clftj
