#include <gtest/gtest.h>

#include "query/patterns.h"
#include "tests/test_util.h"
#include "yannakakis/bag_solver.h"
#include "yannakakis/ytd.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;
using ::clftj::testing::Q;
using ::clftj::testing::ReferenceCount;
using ::clftj::testing::ReferenceTuples;
using ::clftj::testing::SmallBalancedDb;
using ::clftj::testing::SmallSkewedDb;

TEST(BagSolver, MaterializesContainedAtoms) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  db.Put(std::move(e));
  const Query q = Q("E(x,y), E(y,z)");
  ExecStats stats;
  const BagRelation bag = SolveBag(q, db, {0, 1}, &stats, {});  // {x,y}
  EXPECT_EQ(bag.columns, (std::vector<VarId>{0, 1}));
  EXPECT_EQ(bag.rows.size(), 2u);  // just E itself
}

TEST(BagSolver, JoinsMultipleAtomsInBag) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  e.AddPair(1, 3);
  db.Put(std::move(e));
  const Query q = Q("E(x,y), E(y,z), E(x,z)");
  ExecStats stats;
  const BagRelation bag = SolveBag(q, db, {0, 1, 2}, &stats, {});
  EXPECT_EQ(bag.rows.size(), 1u);  // the single directed triangle 1-2-3
}

TEST(BagSolver, UncoveredVariableGetsDomainView) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(3, 4);
  db.Put(std::move(e));
  const Query q = Q("E(x,y), E(y,z)");
  // Bag {x, z}: no atom is contained, both variables get domain views.
  ExecStats stats;
  const BagRelation bag = SolveBag(q, db, {0, 2}, &stats, {});
  // x ranges over column-0 values {1,3}; z over column-1 values {2,4}.
  EXPECT_EQ(bag.rows.size(), 4u);
}

TEST(Ytd, CountMatchesReferenceOnZoo) {
  const Database skewed = SmallSkewedDb(41, 50, 3);
  const Database balanced = SmallBalancedDb(43, 50, 110);
  YannakakisTd ytd;
  for (const Database* db : {&skewed, &balanced}) {
    for (const Query& q :
         {PathQuery(3), PathQuery(5), CycleQuery(4), CycleQuery(5),
          LollipopQuery(3, 2), RandomPatternQuery(5, 0.4, 9)}) {
      EXPECT_EQ(ytd.Count(q, *db, {}).count, ReferenceCount(q, *db))
          << q.ToString();
    }
  }
}

TEST(Ytd, CliqueHandledViaSingletonTd) {
  const Database db = SmallSkewedDb(45, 40, 3);
  YannakakisTd ytd;
  EXPECT_EQ(ytd.Count(CliqueQuery(3), db, {}).count,
            ReferenceCount(CliqueQuery(3), db));
}

TEST(Ytd, EvaluateMatchesReferenceTuples) {
  const Database db = SmallSkewedDb(47, 40, 2);
  YannakakisTd ytd;
  for (const Query& q : {PathQuery(3), PathQuery(4), CycleQuery(4)}) {
    EXPECT_EQ(CollectTuples(ytd, q, db), ReferenceTuples(q, db))
        << q.ToString();
  }
}

TEST(Ytd, ExplicitTdIsHonored) {
  Database db;
  Relation r("R", 2);
  r.AddPair(1, 1);
  r.AddPair(1, 2);
  r.AddPair(2, 1);
  r.AddPair(2, 2);
  db.Put(std::move(r));
  const Query q = Q("R(x1,x2), R(x2,x3), R(x2,x4), R(x3,x5), R(x4,x6)");
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1}, kNone);
  const NodeId v = td.AddNode({1, 2, 3}, root);
  td.AddNode({2, 4}, v);
  td.AddNode({3, 5}, v);
  YannakakisTd::Options options;
  options.td = std::move(td);
  YannakakisTd ytd(options);
  EXPECT_EQ(ytd.Count(q, db, {}).count, 64u);
}

TEST(Ytd, EvalRowLimitTriggersOutOfMemory) {
  const Database db = SmallSkewedDb(49, 150, 6);
  YannakakisTd ytd;
  RunLimits limits;
  limits.max_intermediate_tuples = 10;
  const RunResult r =
      ytd.Evaluate(PathQuery(5), db, [](const Tuple&) {}, limits);
  EXPECT_TRUE(r.out_of_memory);
  EXPECT_FALSE(r.ok());
}

TEST(Ytd, CountStoresOnlyGroupedCounts) {
  // Count mode should materialize far fewer intermediates than eval mode
  // on a query with a large output (the paper's count-mode optimization).
  const Database db = SmallSkewedDb(51, 80, 4);
  const Query q = PathQuery(5);
  YannakakisTd ytd;
  const RunResult count_run = ytd.Count(q, db, {});
  const RunResult eval_run = ytd.Evaluate(q, db, [](const Tuple&) {}, {});
  ASSERT_EQ(count_run.count, eval_run.count);
  EXPECT_LT(count_run.stats.intermediate_tuples,
            eval_run.stats.intermediate_tuples);
}

TEST(Ytd, EmptyRelationYieldsZero) {
  Database db;
  db.Put(Relation("E", 2));
  YannakakisTd ytd;
  EXPECT_EQ(ytd.Count(PathQuery(4), db, {}).count, 0u);
  std::vector<Tuple> got;
  ytd.Evaluate(PathQuery(4), db, [&got](const Tuple& t) { got.push_back(t); },
               {});
  EXPECT_TRUE(got.empty());
}

TEST(Ytd, ConstantsInQuery) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  e.AddPair(3, 4);
  db.Put(std::move(e));
  const Query q = Q("E(1,y), E(y,z)");
  YannakakisTd ytd;
  EXPECT_EQ(ytd.Count(q, db, {}).count, ReferenceCount(q, db));
}

TEST(Ytd, DisconnectedQuery) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(3, 4);
  db.Put(std::move(e));
  const Query q = Q("E(a,b), E(c,d)");
  YannakakisTd ytd;
  EXPECT_EQ(ytd.Count(q, db, {}).count, 4u);
}

}  // namespace
}  // namespace clftj
