#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/parser.h"
#include "query/patterns.h"
#include "query/query.h"

namespace clftj {
namespace {

TEST(Query, AddVariableDeduplicates) {
  Query q;
  const VarId x = q.AddVariable("x");
  const VarId y = q.AddVariable("y");
  EXPECT_NE(x, y);
  EXPECT_EQ(q.AddVariable("x"), x);
  EXPECT_EQ(q.num_vars(), 2);
  EXPECT_EQ(q.FindVariable("y"), y);
  EXPECT_EQ(q.FindVariable("zzz"), kNone);
}

TEST(Query, AtomVarsDistinctInOrder) {
  Query q;
  const VarId x = q.AddVariable("x");
  const VarId y = q.AddVariable("y");
  Atom a;
  a.relation = "R";
  a.terms = {Term::Var(y), Term::Const(5), Term::Var(x), Term::Var(y)};
  q.AddAtom(a);
  EXPECT_EQ(q.atom(0).Vars(), (std::vector<VarId>{y, x}));
}

TEST(Query, AtomsWithVar) {
  const auto q = ParseQuery("E(x,y), E(y,z)");
  ASSERT_TRUE(q.has_value());
  const VarId y = q->FindVariable("y");
  EXPECT_EQ(q->AtomsWithVar(y), (std::vector<AtomId>{0, 1}));
  const VarId x = q->FindVariable("x");
  EXPECT_EQ(q->AtomsWithVar(x), (std::vector<AtomId>{0}));
}

TEST(Query, GaifmanGraphOfPath) {
  const auto q = ParseQuery("E(x,y), E(y,z)");
  ASSERT_TRUE(q.has_value());
  const auto adj = q->GaifmanGraph();
  const VarId x = q->FindVariable("x");
  const VarId y = q->FindVariable("y");
  const VarId z = q->FindVariable("z");
  EXPECT_EQ(adj[x], (std::vector<VarId>{y}));
  EXPECT_EQ(adj[y], (std::vector<VarId>{x, z}));
  EXPECT_EQ(adj[z], (std::vector<VarId>{y}));
}

TEST(Query, GaifmanGraphOfTernaryAtomIsClique) {
  const auto q = ParseQuery("T(a,b,c)");
  ASSERT_TRUE(q.has_value());
  const auto adj = q->GaifmanGraph();
  for (int v = 0; v < 3; ++v) EXPECT_EQ(adj[v].size(), 2u);
}

TEST(Query, ToStringRoundTripsThroughParser) {
  const auto q = ParseQuery("E(x, y),E(y,z), R(z, 7)");
  ASSERT_TRUE(q.has_value());
  const auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.has_value());
  EXPECT_EQ(q2->ToString(), q->ToString());
}

// --- Parser ---

TEST(Parser, ParsesConstantsAndVariables) {
  const auto q = ParseQuery("R(x, -42, y, 7)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->num_vars(), 2);
  ASSERT_EQ(q->atom(0).terms.size(), 4u);
  EXPECT_FALSE(q->atom(0).terms[1].is_variable);
  EXPECT_EQ(q->atom(0).terms[1].constant, -42);
  EXPECT_EQ(q->atom(0).terms[3].constant, 7);
}

TEST(Parser, WhitespaceInsensitive) {
  const auto a = ParseQuery("E(x,y),E(y,z)");
  const auto b = ParseQuery("  E( x , y ) ,\n\tE(y, z)  ");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(Parser, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseQuery("", &error).has_value());
  EXPECT_FALSE(ParseQuery("E(x,y", &error).has_value());
  EXPECT_FALSE(ParseQuery("E(x,,y)", &error).has_value());
  EXPECT_FALSE(ParseQuery("E(x y)", &error).has_value());
  EXPECT_FALSE(ParseQuery("(x,y)", &error).has_value());
  EXPECT_FALSE(ParseQuery("E(x,y) E(y,z)", &error).has_value());
  EXPECT_FALSE(ParseQuery("E()", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Parser, ErrorIncludesOffset) {
  std::string error;
  EXPECT_FALSE(ParseQuery("E(x,y), E(x,", &error).has_value());
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(Parser, UnderscoreIdentifiers) {
  const auto q = ParseQuery("my_rel(_x, x_1)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->atom(0).relation, "my_rel");
  EXPECT_EQ(q->num_vars(), 2);
}

// --- Pattern generators ---

TEST(Patterns, PathQueryShape) {
  const Query q = PathQuery(5);
  EXPECT_EQ(q.num_vars(), 5);
  EXPECT_EQ(q.num_atoms(), 4);
  EXPECT_EQ(q.ToString(), "E(x1,x2), E(x2,x3), E(x3,x4), E(x4,x5)");
}

TEST(Patterns, CycleQueryShape) {
  const Query q = CycleQuery(4);
  EXPECT_EQ(q.num_vars(), 4);
  EXPECT_EQ(q.num_atoms(), 4);
  EXPECT_EQ(q.ToString(), "E(x1,x2), E(x2,x3), E(x3,x4), E(x1,x4)");
}

TEST(Patterns, CliqueQueryShape) {
  const Query q = CliqueQuery(4);
  EXPECT_EQ(q.num_vars(), 4);
  EXPECT_EQ(q.num_atoms(), 6);  // C(4,2)
}

TEST(Patterns, LollipopQueryShape) {
  const Query q = LollipopQuery(3, 2);
  EXPECT_EQ(q.num_vars(), 5);
  EXPECT_EQ(q.num_atoms(), 3 + 2);  // triangle + 2-edge tail
  // The tail hangs off x3: x3-x4, x4-x5.
  const auto adj = q.GaifmanGraph();
  EXPECT_EQ(adj[q.FindVariable("x5")], (std::vector<VarId>{3}));
}

TEST(Patterns, CustomRelationName) {
  const Query q = PathQuery(3, "Edge");
  EXPECT_EQ(q.atom(0).relation, "Edge");
}

TEST(Patterns, RandomPatternIsConnectedAndDeterministic) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Query q = RandomPatternQuery(5, 0.4, seed);
    EXPECT_EQ(q.num_vars(), 5);
    EXPECT_GE(q.num_atoms(), 4);  // connectivity needs >= n-1 edges
    EXPECT_TRUE(q.AllVarsCovered());
    const Query again = RandomPatternQuery(5, 0.4, seed);
    EXPECT_EQ(q.ToString(), again.ToString());
  }
}

TEST(Patterns, RandomPatternDensityGrowsWithP) {
  int sparse = 0;
  int dense = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sparse += RandomPatternQuery(6, 0.4, seed).num_atoms();
    dense += RandomPatternQuery(6, 0.9, seed).num_atoms();
  }
  EXPECT_LT(sparse, dense);
}

TEST(Patterns, AllVarsCoveredAcrossZoo) {
  EXPECT_TRUE(PathQuery(7).AllVarsCovered());
  EXPECT_TRUE(CycleQuery(6).AllVarsCovered());
  EXPECT_TRUE(CliqueQuery(5).AllVarsCovered());
  EXPECT_TRUE(LollipopQuery(4, 3).AllVarsCovered());
}

}  // namespace
}  // namespace clftj
