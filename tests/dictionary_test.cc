#include "data/dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace clftj {
namespace {

TEST(Dictionary, EncodeAssignsDenseIdsInFirstEncodeOrder) {
  Dictionary dict;
  EXPECT_TRUE(dict.empty());
  EXPECT_EQ(dict.Encode("alice"), 0);
  EXPECT_EQ(dict.Encode("bob"), 1);
  EXPECT_EQ(dict.Encode("carol"), 2);
  EXPECT_EQ(dict.size(), 3u);
  // Re-encoding an interned string returns its existing id.
  EXPECT_EQ(dict.Encode("bob"), 1);
  EXPECT_EQ(dict.Encode("alice"), 0);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(Dictionary, DecodeInvertsEncode) {
  Dictionary dict;
  const std::vector<std::string> names = {"alice", "bob", "", "名前",
                                          "with space", "\"quoted\""};
  std::vector<Value> ids;
  for (const auto& n : names) ids.push_back(dict.Encode(n));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(dict.Decode(ids[i]), names[i]);
  }
}

TEST(Dictionary, LookupDoesNotIntern) {
  Dictionary dict;
  dict.Encode("present");
  EXPECT_EQ(dict.Lookup("present"), std::optional<Value>(0));
  EXPECT_EQ(dict.Lookup("absent"), std::nullopt);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(Dictionary, DecodedViewsStayValidAcrossLaterEncodes) {
  Dictionary dict;
  const Value first = dict.Encode("stable");
  const std::string_view view = dict.Decode(first);
  // Grow the table well past any small-size optimization or rehash point.
  for (int i = 0; i < 10000; ++i) dict.Encode("filler_" + std::to_string(i));
  EXPECT_EQ(view, "stable");  // deque storage: the element never moved
  EXPECT_EQ(dict.Decode(first), "stable");
}

TEST(Dictionary, MemoryBytesGrowsWithContent) {
  Dictionary dict;
  const std::size_t empty_bytes = dict.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    dict.Encode("some_rather_long_interned_label_" + std::to_string(i));
  }
  EXPECT_GE(dict.MemoryBytes(), empty_bytes + 30'000u);
}

TEST(Dictionary, ConcurrentDecodeIsSafe) {
  // The contract the re-entrant output boundary relies on: any number of
  // threads may Decode concurrently (CLFTJ-P workers rendering shards of
  // one result). Run under TSan in CI.
  Dictionary dict;
  constexpr int kStrings = 20000;
  std::vector<Value> ids;
  ids.reserve(kStrings);
  for (int i = 0; i < kStrings; ++i) {
    ids.push_back(dict.Encode("value_" + std::to_string(i)));
  }
  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&dict, &ids, &mismatches, t] {
      for (int i = t; i < kStrings; i += 3) {  // overlapping strides
        const std::string expect = "value_" + std::to_string(i);
        if (dict.Decode(ids[i]) != expect) ++mismatches[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const int m : mismatches) EXPECT_EQ(m, 0);
}

TEST(Dictionary, ConcurrentEncodeAndDecodeSerialize) {
  // Encodes are exclusive-locked; decodes of already-stable ids proceed
  // under the shared lock while a writer appends. Ids must stay dense and
  // consistent.
  Dictionary dict;
  constexpr int kBase = 5000;
  std::vector<Value> ids;
  for (int i = 0; i < kBase; ++i) {
    ids.push_back(dict.Encode("base_" + std::to_string(i)));
  }
  std::thread writer([&dict] {
    for (int i = 0; i < 5000; ++i) dict.Encode("new_" + std::to_string(i));
  });
  int mismatches = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < kBase; ++i) {
      if (dict.Decode(ids[i]) != "base_" + std::to_string(i)) ++mismatches;
    }
  }
  writer.join();
  EXPECT_EQ(mismatches, 0);
  EXPECT_EQ(dict.size(), 10000u);
}

}  // namespace
}  // namespace clftj
