// Cross-query reuse: canonical shape keys, the plan cache, the shared
// substrate registry, persistent striped caches in the serving loop, the
// ExecStats wire format, and warm-vs-cold result identity. The concurrent
// tests double as the TSan workload for the shared reuse structures.

#include <algorithm>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "clftj/plan_cache.h"
#include "engine/engine.h"
#include "engine/reuse.h"
#include "engine/substrate_registry.h"
#include "query/shape.h"
#include "server/service.h"
#include "td/planner.h"
#include "test_util.h"
#include "util/stats.h"

namespace clftj {
namespace {

constexpr const char* kTriangle = "E(x,y), E(y,z), E(z,x)";
constexpr const char* kFourCycle = "E(x,y), E(y,z), E(z,w), E(w,x)";

TEST(ShapeKey, RenamedVariablesShareAKey) {
  EXPECT_EQ(CanonicalShapeKey(testing::Q(kTriangle)),
            CanonicalShapeKey(testing::Q("E(a,b), E(b,c), E(c,a)")));
  // Argument-flipped atoms are the same shape when the occurrence pattern
  // matches: E(y,x) canonicalizes to E(~0,~1) just like E(x,y).
  EXPECT_EQ(CanonicalShapeKey(testing::Q("E(x,y)")),
            CanonicalShapeKey(testing::Q("E(u,v)")));
}

TEST(ShapeKey, StructureAndConstantsDistinguish) {
  const std::string triangle = CanonicalShapeKey(testing::Q(kTriangle));
  EXPECT_NE(triangle, CanonicalShapeKey(testing::Q("E(x,y), E(y,z)")));
  EXPECT_NE(triangle, CanonicalShapeKey(testing::Q(kFourCycle)));
  EXPECT_NE(CanonicalShapeKey(testing::Q("E(x,5)")),
            CanonicalShapeKey(testing::Q("E(x,6)")));
  EXPECT_NE(CanonicalShapeKey(testing::Q("E(x,x)")),
            CanonicalShapeKey(testing::Q("E(x,y)")));
}

TEST(ShapeKey, NonIdentityNumberingGetsItsOwnKey) {
  // Parser-built queries register variables in first-occurrence order, so
  // they take the bare key. A hand-built query whose VarIds do not match
  // first-occurrence order must NOT share it: VarId-indexed plan arrays
  // would not transfer.
  Query hand;
  const VarId x = hand.AddVariable("x");  // id 0
  const VarId y = hand.AddVariable("y");  // id 1
  Atom atom;
  atom.relation = "E";
  atom.terms = {Term::Var(y), Term::Var(x)};  // first occurrence: y, x
  hand.AddAtom(atom);
  EXPECT_NE(CanonicalShapeKey(hand),
            CanonicalShapeKey(testing::Q("E(y,x)")));
}

TEST(PlanCache, SecondResolveIsAHitWithNoPlannerSearch) {
  const Database db = testing::SmallSkewedDb(11);
  PlanCache cache;
  ExecStats stats;
  const auto first = cache.Resolve(testing::Q(kTriangle), db,
                                   PlannerOptions{}, CacheOptions{}, &stats);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 0u);
  EXPECT_GT(stats.plan_resolve_ns, 0u);

  const std::uint64_t searches_before = PlannerSearchCount();
  // Renamed variables, same shape: must hit without re-planning.
  const auto second =
      cache.Resolve(testing::Q("E(a,b), E(b,c), E(c,a)"), db,
                    PlannerOptions{}, CacheOptions{}, &stats);
  EXPECT_EQ(PlannerSearchCount(), searches_before);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(first.get(), second.get()) << "hit must share the one instance";
  EXPECT_EQ(cache.Size(), 1u);
}

TEST(PlanCache, CapacityEvictsLeastRecentlyUsed) {
  const Database db = testing::SmallSkewedDb(11);
  PlanCache cache(/*capacity=*/2);
  ExecStats stats;
  cache.Resolve(testing::Q("E(x,y)"), db, PlannerOptions{}, CacheOptions{},
                &stats);
  cache.Resolve(testing::Q("E(x,y), E(y,z)"), db, PlannerOptions{},
                CacheOptions{}, &stats);
  cache.Resolve(testing::Q(kTriangle), db, PlannerOptions{}, CacheOptions{},
                &stats);
  EXPECT_EQ(cache.Size(), 2u);
  // The single-edge shape was evicted: resolving it again is a miss.
  cache.Resolve(testing::Q("E(x,y)"), db, PlannerOptions{}, CacheOptions{},
                &stats);
  EXPECT_EQ(stats.plan_cache_misses, 4u);
  EXPECT_EQ(stats.plan_cache_hits, 0u);
}

TEST(SubstrateRegistry, SecondAcquireBuildsNothingAndSharesTries) {
  const Database db = testing::SmallSkewedDb(11);
  const Query q = testing::Q(kTriangle);
  const CachedPlan plan =
      CachedPlan::Resolve(q, db, std::nullopt, PlannerOptions{},
                          CacheOptions{});
  SubstrateRegistry registry;

  ExecStats cold;
  const auto first = registry.Acquire(q, db, plan.order, &cold);
  EXPECT_GT(cold.substrate_builds, 0u);
  EXPECT_EQ(cold.substrate_builds + cold.substrate_reuses,
            static_cast<std::uint64_t>(q.num_atoms()));
  EXPECT_GT(cold.substrate_build_ns, 0u);

  ExecStats warm;
  const auto second = registry.Acquire(q, db, plan.order, &warm);
  EXPECT_EQ(warm.substrate_builds, 0u);
  EXPECT_EQ(warm.substrate_reuses, static_cast<std::uint64_t>(q.num_atoms()));
  for (int a = 0; a < q.num_atoms(); ++a) {
    EXPECT_EQ(first->views()[a].trie.get(), second->views()[a].trie.get())
        << "atom " << a << " must share one trie instance";
  }
  EXPECT_GT(registry.CachedBytes(), 0u);
}

TEST(SubstrateRegistry, ByteBudgetEvictsLeastRecentlyUsed) {
  const Database db = testing::SmallSkewedDb(11);
  const Query q = testing::Q(kTriangle);
  const CachedPlan plan =
      CachedPlan::Resolve(q, db, std::nullopt, PlannerOptions{},
                          CacheOptions{});
  // A 1-byte budget can never hold two tries: every publish evicts the
  // previous entry (but never the just-published one).
  SubstrateRegistry registry(SubstrateRegistry::Options{1});
  ExecStats cold;
  registry.Acquire(q, db, plan.order, &cold);
  EXPECT_GT(cold.substrate_builds, 0u);
  EXPECT_EQ(registry.NumTries(), 1u);

  // Nothing useful survives for a second pass over a shape that needs the
  // evicted views — it rebuilds instead of failing.
  ExecStats again;
  const auto substrate = registry.Acquire(q, db, plan.order, &again);
  EXPECT_GT(again.substrate_builds, 0u);
  EXPECT_FALSE(substrate->HasEmptyAtom());
}

TEST(SubstrateRegistry, DataGenerationBumpDropsStaleTries) {
  Database db = testing::SmallSkewedDb(11);
  const Query q = testing::Q(kTriangle);
  const CachedPlan plan =
      CachedPlan::Resolve(q, db, std::nullopt, PlannerOptions{},
                          CacheOptions{});
  SubstrateRegistry registry;
  ExecStats cold;
  registry.Acquire(q, db, plan.order, &cold);
  const std::size_t before = registry.NumTries();
  EXPECT_GT(before, 0u);

  db.Put(PreferentialAttachmentGraph("E", 40, 2, 99));  // bumps generation
  ExecStats after;
  registry.Acquire(q, db, plan.order, &after);
  // Exactly a cold acquire again: the same builds as the first pass (any
  // reuses are intra-acquire sharing between same-pattern atoms, never a
  // stale pre-bump trie).
  EXPECT_EQ(after.substrate_builds, cold.substrate_builds)
      << "stale tries must not serve the new data generation";
  EXPECT_EQ(after.substrate_reuses, cold.substrate_reuses);
}

TEST(ExecStatsWire, RoundTripsEveryCounter) {
  ExecStats stats;
  stats.memory_accesses = 1;
  stats.intermediate_tuples = 2;
  stats.output_tuples = 3;
  stats.cache_hits = 4;
  stats.cache_misses = 5;
  stats.cache_inserts = 6;
  stats.cache_rejects = 7;
  stats.cache_evictions = 8;
  stats.cache_entries_peak = 9;
  stats.cache_bytes_peak = 10;
  stats.plan_cache_hits = 11;
  stats.plan_cache_misses = 12;
  stats.substrate_builds = 13;
  stats.substrate_reuses = 14;
  stats.plan_resolve_ns = 15;
  stats.substrate_build_ns = 16;
  stats.batch_size = 17;
  stats.batch_shared_execs = 18;
  stats.batch_prefix_seeds = 19;

  ExecStats parsed;
  ASSERT_TRUE(ExecStats::FromWire(stats.ToWire(), &parsed));
  EXPECT_EQ(parsed.memory_accesses, 1u);
  EXPECT_EQ(parsed.intermediate_tuples, 2u);
  EXPECT_EQ(parsed.output_tuples, 3u);
  EXPECT_EQ(parsed.cache_hits, 4u);
  EXPECT_EQ(parsed.cache_misses, 5u);
  EXPECT_EQ(parsed.cache_inserts, 6u);
  EXPECT_EQ(parsed.cache_rejects, 7u);
  EXPECT_EQ(parsed.cache_evictions, 8u);
  EXPECT_EQ(parsed.cache_entries_peak, 9u);
  EXPECT_EQ(parsed.cache_bytes_peak, 10u);
  EXPECT_EQ(parsed.plan_cache_hits, 11u);
  EXPECT_EQ(parsed.plan_cache_misses, 12u);
  EXPECT_EQ(parsed.substrate_builds, 13u);
  EXPECT_EQ(parsed.substrate_reuses, 14u);
  EXPECT_EQ(parsed.plan_resolve_ns, 15u);
  EXPECT_EQ(parsed.substrate_build_ns, 16u);
  EXPECT_EQ(parsed.batch_size, 17u);
  EXPECT_EQ(parsed.batch_shared_execs, 18u);
  EXPECT_EQ(parsed.batch_prefix_seeds, 19u);
}

TEST(ExecStatsWire, UnknownKeysIgnoredMalformedRejected) {
  ExecStats parsed;
  EXPECT_TRUE(ExecStats::FromWire("zz:5,ma:3", &parsed));
  EXPECT_EQ(parsed.memory_accesses, 3u);

  ExecStats untouched;
  untouched.memory_accesses = 42;
  EXPECT_FALSE(ExecStats::FromWire("ma:x", &untouched));
  EXPECT_FALSE(ExecStats::FromWire("garbage", &untouched));
  EXPECT_FALSE(ExecStats::FromWire("ma", &untouched));
  EXPECT_EQ(untouched.memory_accesses, 42u) << "failure must not clobber";
}

// --- Serving-loop reuse -----------------------------------------------------

QueryRequest Req(const std::string& text, const std::string& mode,
                 const std::string& engine = "") {
  QueryRequest request;
  request.query_text = text;
  request.mode = mode;
  request.engine = engine;
  return request;
}

TEST(ServiceReuse, WarmAndColdAreBitIdenticalAcrossEnginesAndWorkers) {
  const Database db = testing::SmallSkewedDb(13);
  const std::uint64_t want_count =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  const std::vector<Tuple> want_tuples =
      testing::ReferenceTuples(testing::Q(kTriangle), db);

  for (const int workers : {1, 2, 8}) {
    ServiceOptions warm_options;
    warm_options.workers = workers;
    QueryService warm(db, warm_options);

    ServiceOptions cold_options = warm_options;
    cold_options.reuse.enabled = false;
    QueryService cold(db, cold_options);

    for (const char* engine : {"CLFTJ", "CLFTJ-P", "LFTJ", "YTD",
                               "PairwiseHJ", "GenericJoin"}) {
      // Twice against the warm service: the second request runs fully warm
      // (plan, tries, persistent cache) and must not change a single tuple.
      for (int round = 0; round < 2; ++round) {
        QueryResponse count = warm.Execute(Req(kTriangle, "count", engine));
        ASSERT_EQ(count.status, RunStatus::kOk)
            << engine << " workers=" << workers;
        EXPECT_EQ(count.count, want_count)
            << engine << " workers=" << workers << " round=" << round;

        QueryResponse eval = warm.Execute(Req(kTriangle, "eval", engine));
        ASSERT_EQ(eval.status, RunStatus::kOk);
        std::sort(eval.tuples.begin(), eval.tuples.end());
        EXPECT_EQ(eval.tuples, want_tuples)
            << engine << " workers=" << workers << " round=" << round;
      }
      const QueryResponse cold_count =
          cold.Execute(Req(kTriangle, "count", engine));
      ASSERT_EQ(cold_count.status, RunStatus::kOk);
      EXPECT_EQ(cold_count.count, want_count);
    }
  }
}

TEST(ServiceReuse, CoreCountersMatchColdWhenPersistentCacheIsOff) {
  const Database db = testing::SmallSkewedDb(13);
  ServiceOptions warm_options;
  warm_options.workers = 1;
  warm_options.reuse.persistent_cache = false;  // isolate plan+substrate reuse
  QueryService warm(db, warm_options);

  ServiceOptions cold_options;
  cold_options.workers = 1;
  cold_options.reuse.enabled = false;
  QueryService cold(db, cold_options);

  const QueryResponse c = cold.Execute(Req(kFourCycle, "count", "CLFTJ"));
  warm.Execute(Req(kFourCycle, "count", "CLFTJ"));  // warm the registry
  const QueryResponse w = warm.Execute(Req(kFourCycle, "count", "CLFTJ"));
  ASSERT_EQ(c.status, RunStatus::kOk);
  ASSERT_EQ(w.status, RunStatus::kOk);
  EXPECT_EQ(w.count, c.count);
  // Reuse changes where immutable inputs come from, never the traversal:
  // with the persistent cache off, every core counter must be identical.
  EXPECT_EQ(w.stats.memory_accesses, c.stats.memory_accesses);
  EXPECT_EQ(w.stats.intermediate_tuples, c.stats.intermediate_tuples);
  EXPECT_EQ(w.stats.output_tuples, c.stats.output_tuples);
  EXPECT_EQ(w.stats.cache_hits, c.stats.cache_hits);
  EXPECT_EQ(w.stats.cache_misses, c.stats.cache_misses);
  EXPECT_EQ(w.stats.cache_inserts, c.stats.cache_inserts);
  // ... while the reuse counters prove the warm path actually engaged.
  EXPECT_EQ(w.stats.plan_cache_hits, 1u);
  EXPECT_EQ(w.stats.substrate_builds, 0u);
}

TEST(ServiceReuse, SecondIdenticalRequestDoesNoPlanningOrTrieBuilds) {
  const Database db = testing::SmallSkewedDb(13);
  ServiceOptions options;
  options.workers = 1;
  QueryService service(db, options);

  const QueryResponse first = service.Execute(Req(kTriangle, "count"));
  ASSERT_EQ(first.status, RunStatus::kOk);
  EXPECT_EQ(first.stats.plan_cache_misses, 1u);
  EXPECT_EQ(first.stats.plan_cache_hits, 0u);
  EXPECT_GT(first.stats.substrate_builds, 0u);

  const std::uint64_t searches_before = PlannerSearchCount();
  const QueryResponse second = service.Execute(Req(kTriangle, "count"));
  ASSERT_EQ(second.status, RunStatus::kOk);
  EXPECT_EQ(second.count, first.count);
  EXPECT_EQ(PlannerSearchCount(), searches_before)
      << "warm request must not enumerate decompositions";
  EXPECT_EQ(second.stats.plan_cache_hits, 1u);
  EXPECT_EQ(second.stats.plan_cache_misses, 0u);
  EXPECT_EQ(second.stats.substrate_builds, 0u);
  EXPECT_EQ(second.stats.substrate_reuses,
            static_cast<std::uint64_t>(testing::Q(kTriangle).num_atoms()));
}

TEST(ServiceReuse, PersistentCacheWarmsAcrossRequests) {
  const Database db = testing::SmallSkewedDb(13);
  ServiceOptions options;
  options.workers = 1;
  QueryService service(db, options);

  // The 4-cycle decomposes with a nontrivial adhesion, so CLFTJ caches
  // subtree counts. The first request fills the shape's persistent striped
  // table; the second probes the very same keys, hits immediately, and
  // skips whole subtree scans. Cache hit/miss counters are charged to the
  // persistent table's stripes (not visible in per-request stats while the
  // table stays live), so the observable evidence is the traversal itself:
  // strictly fewer data touches on the warm run, same count. workers=1
  // keeps both traversals deterministic.
  const QueryResponse first = service.Execute(Req(kFourCycle, "count"));
  ASSERT_EQ(first.status, RunStatus::kOk);
  const QueryResponse second = service.Execute(Req(kFourCycle, "count"));
  ASSERT_EQ(second.status, RunStatus::kOk);
  EXPECT_EQ(second.count, first.count);
  EXPECT_LT(second.stats.memory_accesses, first.stats.memory_accesses)
      << "the warmed cache must cut the warm run's subtree scans";
}

TEST(ServiceReuse, DataChangeInvalidatesEveryReuseLayer) {
  Database db = testing::SmallSkewedDb(13);
  ServiceOptions options;
  options.workers = 1;
  QueryService service(db, options);

  const QueryResponse before = service.Execute(Req(kTriangle, "count"));
  ASSERT_EQ(before.status, RunStatus::kOk);

  db.Put(PreferentialAttachmentGraph("E", 40, 2, 99));
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  const QueryResponse after = service.Execute(Req(kTriangle, "count"));
  ASSERT_EQ(after.status, RunStatus::kOk);
  EXPECT_EQ(after.count, want)
      << "stale plan/tries/cache must not survive a data change";
  EXPECT_EQ(after.stats.plan_cache_misses, 1u);
  EXPECT_GT(after.stats.substrate_builds, 0u);
}

TEST(ServiceReuse, ConcurrentWorkersShareSubstrateAndCacheSafely) {
  const Database db = testing::SmallSkewedDb(13);
  ServiceOptions options;
  options.workers = 8;
  options.queue_capacity = 256;
  QueryService service(db, options);

  const std::uint64_t want_triangle =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  const std::uint64_t want_cycle =
      testing::ReferenceCount(testing::Q(kFourCycle), db);
  const std::vector<Tuple> want_tuples =
      testing::ReferenceTuples(testing::Q(kTriangle), db);

  // A burst of overlapping requests over two shapes: all 8 workers race on
  // the plan cache, the substrate registry and the persistent striped
  // tables at once (cold, so build/publish races are exercised too).
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 48; ++i) {
    switch (i % 3) {
      case 0:
        futures.push_back(service.Submit(Req(kTriangle, "count")));
        break;
      case 1:
        futures.push_back(service.Submit(Req(kFourCycle, "count", "CLFTJ-P")));
        break;
      default:
        futures.push_back(service.Submit(Req(kTriangle, "eval")));
        break;
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    QueryResponse response = futures[i].get();
    ASSERT_EQ(response.status, RunStatus::kOk) << "request " << i;
    switch (i % 3) {
      case 0:
        EXPECT_EQ(response.count, want_triangle) << "request " << i;
        break;
      case 1:
        EXPECT_EQ(response.count, want_cycle) << "request " << i;
        break;
      default: {
        std::sort(response.tuples.begin(), response.tuples.end());
        EXPECT_EQ(response.tuples, want_tuples) << "request " << i;
        break;
      }
    }
  }
}

}  // namespace
}  // namespace clftj
