// Differential tests for the SIMD dispatch layer (docs/simd.md): the AVX2
// kernels must be indistinguishable from their scalar reference twins on
// results AND on every deterministic ExecStats counter. Tests that need the
// AVX2 arm GTEST_SKIP on hosts (or forced-scalar builds) where it is
// unavailable, so the whole file stays green on both CI lanes.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/database.h"
#include "data/generators.h"
#include "data/relation.h"
#include "engine/engine.h"
#include "tests/test_util.h"
#include "trie/leapfrog.h"
#include "trie/trie.h"
#include "util/simd.h"

namespace clftj {
namespace {

using testing::CollectTuples;
using testing::Q;
using testing::SmallSkewedDb;

// Restores the process-wide dispatch mode (and Normalize parallelism) on
// scope exit so tests cannot leak configuration into each other.
class DispatchGuard {
 public:
  DispatchGuard()
      : mode_(simd::CurrentMode()), threads_(NormalizeParallelism()) {}
  ~DispatchGuard() {
    simd::SetMode(mode_);
    SetNormalizeParallelism(threads_);
  }

 private:
  simd::Mode mode_;
  int threads_;
};

// The sequential gallop + classic binary search both arms are charged
// against (mirrors ScalarGallopLowerBound in trie_test.cc).
std::size_t ReferenceLowerBound(const std::vector<Value>& vals,
                                std::size_t pos, std::size_t end, Value bound,
                                std::uint64_t* comparisons) {
  std::uint64_t cmp = 0;
  std::size_t lo = pos;
  std::size_t step = 1;
  std::size_t hi = std::min(end, lo + step);
  while (hi < end && vals[hi] < bound) {
    ++cmp;
    lo = hi;
    step <<= 1;
    hi = std::min(end, lo + step);
  }
  if (hi < end) ++cmp;
  std::size_t first = lo + 1;
  std::size_t count = hi - lo - 1;
  while (count > 0) {
    ++cmp;
    const std::size_t half = count >> 1;
    const std::size_t mid = first + half;
    if (vals[mid] < bound) {
      first = mid + 1;
      count -= half + 1;
    } else {
      count = half;
    }
  }
  *comparisons += cmp;
  return first;
}

// One differential case: both arms (and the sequential reference) must
// agree on the result index and the charged probe count. The AVX2 arm is
// reached through its kernel table (never a direct symbol reference, which
// would not link on forced-scalar builds).
void CheckSeekCase(const std::vector<Value>& vals, std::size_t pos,
                   std::size_t end, Value bound) {
  ASSERT_LT(pos, end);
  ASSERT_LT(vals[pos], bound);
  const simd::Kernels* avx2 = simd::Avx2KernelsOrNull();
  ASSERT_NE(avx2, nullptr);
  std::uint64_t scalar_cmp = 0;
  const std::size_t scalar_idx =
      GallopingLowerBound(vals.data(), pos, end, bound, &scalar_cmp);
  std::uint64_t avx2_cmp = 0;
  const std::size_t avx2_idx =
      avx2->seek_lower_bound(vals.data(), pos, end, bound, &avx2_cmp);
  ASSERT_EQ(scalar_idx, avx2_idx)
      << "pos=" << pos << " end=" << end << " bound=" << bound;
  ASSERT_EQ(scalar_cmp, avx2_cmp)
      << "pos=" << pos << " end=" << end << " bound=" << bound;
  std::uint64_t ref_cmp = 0;
  ASSERT_EQ(ReferenceLowerBound(vals, pos, end, bound, &ref_cmp), avx2_idx);
  ASSERT_EQ(ref_cmp, avx2_cmp);
}

TEST(SimdSeek, RandomizedDifferential) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  std::mt19937_64 rng(20260808);
  int cases = 0;
  while (cases < 10000) {
    // Mix tiny ranges (where the clamped edge probes dominate) with runs
    // long enough to reach several gallop rounds and a deep binary tail.
    const std::size_t n = 1 + rng() % (cases % 3 == 0 ? 9 : 3000);
    std::vector<Value> vals(n);
    const Value stride = 1 + static_cast<Value>(rng() % 7);
    Value v = static_cast<Value>(rng() % 100);
    for (std::size_t i = 0; i < n; ++i) {
      v += (rng() % 3 == 0) ? 0 : (1 + static_cast<Value>(rng() % stride));
      vals[i] = v;
    }
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    const std::size_t end = vals.size();
    const std::size_t pos = rng() % end;
    // Bound strictly above vals[pos]; occasionally past the maximum so the
    // all-below-bound / bound-past-end paths get continuous coverage.
    Value bound;
    if (cases % 5 == 0) {
      bound = vals.back() + 1 + static_cast<Value>(rng() % 10);
    } else {
      const Value lo = vals[pos] + 1;
      const Value hi = vals.back() + 2;
      bound = lo + static_cast<Value>(rng() % static_cast<std::uint64_t>(
                                                  hi - lo + 1));
    }
    if (vals[pos] >= bound) continue;  // precondition guard
    CheckSeekCase(vals, pos, end, bound);
    if (::testing::Test::HasFatalFailure()) return;
    ++cases;
  }
}

TEST(SimdSeek, EdgeCases) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  // Dense run, bound just past the end: every gallop probe lands in-range
  // and succeeds until the clamp.
  std::vector<Value> dense(1000);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    dense[i] = static_cast<Value>(i);
  }
  CheckSeekCase(dense, 0, dense.size(), 1000);   // all below bound
  CheckSeekCase(dense, 0, dense.size(), 999);    // last element exactly
  CheckSeekCase(dense, 997, dense.size(), 999);  // clamped edge, tiny range
  CheckSeekCase(dense, 998, dense.size(), 1000);
  // Two-element and one-past cases.
  const std::vector<Value> tiny = {5, 9};
  CheckSeekCase(tiny, 0, tiny.size(), 6);
  CheckSeekCase(tiny, 0, tiny.size(), 9);
  CheckSeekCase(tiny, 0, tiny.size(), 10);
  CheckSeekCase(tiny, 1, tiny.size(), 100);
  const std::vector<Value> one = {3};
  CheckSeekCase(one, 0, one.size(), 4);
  // Exact powers of two around the probe offsets 2s-1..16s-1.
  for (const std::size_t n : {2u, 3u, 4u, 7u, 8u, 15u, 16u, 17u, 31u, 32u,
                              33u, 255u, 256u, 257u}) {
    std::vector<Value> vals(n);
    for (std::size_t i = 0; i < n; ++i) vals[i] = static_cast<Value>(2 * i);
    for (const std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
      for (const Value bound : {static_cast<Value>(2 * n - 3),
                                static_cast<Value>(2 * n)}) {
        if (vals[pos] < bound) CheckSeekCase(vals, pos, n, bound);
      }
    }
  }
}

TEST(SimdFilter, RandomizedDifferential) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  const simd::Kernels* avx2 = simd::Avx2KernelsOrNull();
  ASSERT_NE(avx2, nullptr);
  std::mt19937_64 rng(424242);
  for (int c = 0; c < 300; ++c) {
    const std::size_t rows = rng() % 200;  // covers tails of every length
    const int ncols = 1 + static_cast<int>(rng() % 4);
    std::vector<std::vector<Value>> cols(ncols);
    for (auto& col : cols) {
      col.resize(rows);
      for (auto& x : col) x = static_cast<Value>(rng() % 5);  // dense ties
    }
    std::vector<simd::ConstPredicate> consts;
    std::vector<simd::EqPredicate> eqs;
    if (rng() % 2 == 0) {
      consts.push_back(
          {cols[0].data(), static_cast<Value>(rng() % 5)});
    }
    if (ncols >= 2 && rng() % 2 == 0) {
      eqs.push_back({cols[0].data(), cols[1].data()});
    }
    if (ncols >= 3 && rng() % 3 == 0) {
      consts.push_back({cols[2].data(), static_cast<Value>(rng() % 5)});
    }
    const simd::RowFilter filter = {consts.data(), consts.size(), eqs.data(),
                                    eqs.size()};
    std::vector<std::uint32_t> scalar_keep;
    simd::ScalarKernels().filter_rows(filter, rows, &scalar_keep);
    std::vector<std::uint32_t> avx2_keep;
    avx2->filter_rows(filter, rows, &avx2_keep);
    ASSERT_EQ(scalar_keep, avx2_keep) << "case " << c << " rows=" << rows;
  }
}

// Scalar and AVX2 dedup kernels must produce bit-identical keep lists: the
// same surviving indices in the same ascending order, whatever the mix of
// adjacent duplicates along the permutation.
void CheckDedupCase(const std::vector<std::vector<Value>>& cols,
                    const std::vector<std::size_t>& order) {
  const simd::Kernels* avx2 = simd::Avx2KernelsOrNull();
  ASSERT_NE(avx2, nullptr);
  std::vector<const Value*> ptrs;
  for (const auto& col : cols) ptrs.push_back(col.data());
  std::vector<std::size_t> scalar_keep;
  simd::ScalarKernels().dedup_rows(ptrs.data(), static_cast<int>(ptrs.size()),
                                   order.data(), order.size(), &scalar_keep);
  std::vector<std::size_t> avx2_keep;
  avx2->dedup_rows(ptrs.data(), static_cast<int>(ptrs.size()), order.data(),
                   order.size(), &avx2_keep);
  ASSERT_EQ(scalar_keep, avx2_keep) << "n=" << order.size();
}

TEST(SimdDedup, RandomizedDifferential) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  std::mt19937_64 rng(20260808);
  for (int c = 0; c < 500; ++c) {
    const std::size_t rows = rng() % 300;  // covers every tail length
    const int ncols = 1 + static_cast<int>(rng() % 4);
    std::vector<std::vector<Value>> cols(ncols);
    for (auto& col : cols) {
      col.resize(rows);
      // Dense ties so adjacent-equal runs of every length occur.
      for (auto& x : col) x = static_cast<Value>(rng() % 4);
    }
    std::vector<std::size_t> order(rows);
    for (std::size_t i = 0; i < rows; ++i) order[i] = i;
    // Normalize hands the kernel a sort permutation; the contract only
    // needs adjacent comparisons, so any permutation is a valid case.
    if (rng() % 2 == 0) {
      std::shuffle(order.begin(), order.end(), rng);
    } else {
      std::sort(order.begin(), order.end(),
                [&cols](std::size_t a, std::size_t b) {
                  for (const auto& col : cols) {
                    if (col[a] != col[b]) return col[a] < col[b];
                  }
                  return false;
                });
    }
    CheckDedupCase(cols, order);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SimdDedup, EdgeCases) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  // Empty input: both arms must keep nothing.
  CheckDedupCase({{}}, {});
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 17u}) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    // All-equal rows: only the first survives.
    CheckDedupCase({std::vector<Value>(n, 7)}, order);
    // All-distinct rows: everything survives.
    std::vector<Value> distinct(n);
    for (std::size_t i = 0; i < n; ++i) distinct[i] = static_cast<Value>(i);
    CheckDedupCase({distinct}, order);
    // Equal in the first column, breaking ties in the second — exercises
    // the per-column early-break.
    std::vector<Value> ties(n, 3);
    CheckDedupCase({ties, distinct}, order);
    CheckDedupCase({ties, ties}, order);
  }
}

// A filtered atom (constant + repeated variable) builds bit-identical tries
// under both dispatch arms.
TEST(SimdFilter, AtomViewTrieIdentical) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  DispatchGuard guard;
  Database db = SmallSkewedDb(7, 80, 4);
  const Query q = Q("E(x,x), E(x,y)");
  const std::vector<int> var_rank = {0, 1};
  ASSERT_TRUE(simd::SetMode(simd::Mode::kScalar));
  const AtomView scalar_view =
      BuildAtomView(db.Get("E"), q.atoms()[0], var_rank);
  ASSERT_TRUE(simd::SetMode(simd::Mode::kAvx2));
  const AtomView avx2_view =
      BuildAtomView(db.Get("E"), q.atoms()[0], var_rank);
  ASSERT_EQ(scalar_view.trie->depth(), avx2_view.trie->depth());
  ASSERT_EQ(scalar_view.trie->num_tuples(), avx2_view.trie->num_tuples());
  for (int l = 0; l < scalar_view.trie->depth(); ++l) {
    ASSERT_EQ(scalar_view.trie->values(l), avx2_view.trie->values(l));
    if (l + 1 < scalar_view.trie->depth()) {
      ASSERT_EQ(scalar_view.trie->starts(l), avx2_view.trie->starts(l));
    }
  }
}

Relation DirtyRelation(std::uint64_t seed, std::size_t rows) {
  std::mt19937_64 rng(seed);
  std::vector<std::vector<Value>> cols(2);
  for (auto& col : cols) {
    col.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      col.push_back(static_cast<Value>(rng() % (rows / 4 + 1)));
    }
  }
  return Relation::FromColumns("R", std::move(cols));
}

TEST(SimdNormalize, ShardedMatchesSerial) {
  DispatchGuard guard;
  // Above the internal shard floor (4096 rows) with plenty of duplicates,
  // so the sharded path, the merge tree and the dedup all engage.
  for (const std::size_t rows : {std::size_t{5000}, std::size_t{70000}}) {
    Relation serial = DirtyRelation(rows, rows);
    Relation sharded = serial;
    SetNormalizeParallelism(1);
    serial.Normalize();
    SetNormalizeParallelism(4);
    sharded.Normalize();
    ASSERT_EQ(serial.size(), sharded.size());
    for (std::size_t i = 1; i < sharded.size(); ++i) {
      ASSERT_LT(sharded.TupleAt(i - 1), sharded.TupleAt(i));  // sorted set
    }
    for (int c = 0; c < serial.arity(); ++c) {
      const ColumnSpan a = serial.Column(c);
      const ColumnSpan b = sharded.Column(c);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "rows=" << rows << " col=" << c;
    }
  }
}

TEST(SimdDedup, NormalizeBitIdenticalAcrossArms) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  DispatchGuard guard;
  for (const std::size_t rows : {std::size_t{257}, std::size_t{6000}}) {
    Relation scalar_rel = DirtyRelation(rows, rows);
    Relation avx2_rel = scalar_rel;
    ASSERT_TRUE(simd::SetMode(simd::Mode::kScalar));
    scalar_rel.Normalize();
    ASSERT_TRUE(simd::SetMode(simd::Mode::kAvx2));
    avx2_rel.Normalize();
    ASSERT_EQ(scalar_rel.size(), avx2_rel.size());
    for (int c = 0; c < scalar_rel.arity(); ++c) {
      const ColumnSpan a = scalar_rel.Column(c);
      const ColumnSpan b = avx2_rel.Column(c);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "rows=" << rows << " col=" << c;
    }
  }
}

TEST(SimdNormalize, ShardedInvalidatesStats) {
  DispatchGuard guard;
  SetNormalizeParallelism(4);
  Relation rel = DirtyRelation(99, 6000);
  rel.Stats(0);
  const std::uint64_t before = rel.stats_builds();
  rel.Normalize();  // sharded path must invalidate the memo like serial
  rel.Stats(0);
  EXPECT_EQ(rel.stats_builds(), before + 1);
}

TEST(SimdNormalize, ParallelismSettingClamps) {
  DispatchGuard guard;
  SetNormalizeParallelism(100);
  EXPECT_EQ(NormalizeParallelism(), 16);
  SetNormalizeParallelism(-3);
  EXPECT_EQ(NormalizeParallelism(), 0);  // negative restores auto
  SetNormalizeParallelism(2);
  EXPECT_EQ(NormalizeParallelism(), 2);
}

// Deterministic counters only: the two _ns fields are wall clock.
void ExpectStatsIdentical(const ExecStats& a, const ExecStats& b) {
  EXPECT_EQ(a.memory_accesses, b.memory_accesses);
  EXPECT_EQ(a.intermediate_tuples, b.intermediate_tuples);
  EXPECT_EQ(a.output_tuples, b.output_tuples);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.cache_misses, b.cache_misses);
  EXPECT_EQ(a.cache_inserts, b.cache_inserts);
  EXPECT_EQ(a.cache_rejects, b.cache_rejects);
  EXPECT_EQ(a.cache_evictions, b.cache_evictions);
  EXPECT_EQ(a.cache_entries_peak, b.cache_entries_peak);
  EXPECT_EQ(a.cache_bytes_peak, b.cache_bytes_peak);
  EXPECT_EQ(a.plan_cache_hits, b.plan_cache_hits);
  EXPECT_EQ(a.plan_cache_misses, b.plan_cache_misses);
  EXPECT_EQ(a.substrate_builds, b.substrate_builds);
  EXPECT_EQ(a.substrate_reuses, b.substrate_reuses);
}

// Full-engine bit-identity: same tuples, same deterministic counters,
// whichever dispatch arm runs — across engines, thread counts, and a
// post-delta (merged 3-cursor overlay) pass.
TEST(SimdDispatch, EnginesBitIdenticalAcrossArms) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 arm unavailable";
  DispatchGuard guard;
  const Query q = Q("E(x,y), E(y,z), E(x,z)");
  const DeltaBatch batch = {"E", {{1, 2}, {2, 3}, {1, 3}, {0, 5}}, {{0, 1}}};
  struct Config {
    const char* engine;
    int threads;
  };
  const Config configs[] = {
      {"LFTJ", 1}, {"CLFTJ", 1}, {"CLFTJ-P", 1}, {"CLFTJ-P", 2},
      {"CLFTJ-P", 8},
  };
  for (const Config& config : configs) {
    SCOPED_TRACE(::testing::Message()
                 << config.engine << " threads=" << config.threads);
    std::vector<Tuple> tuples[2];
    ExecStats cold[2], warm[2];
    for (int arm = 0; arm < 2; ++arm) {
      ASSERT_TRUE(simd::SetMode(arm == 0 ? simd::Mode::kScalar
                                         : simd::Mode::kAvx2));
      Database db = SmallSkewedDb(11, 70, 3);
      EngineOptions options;
      options.threads = config.threads;
      const auto engine = MakeEngine(config.engine, options);
      RunResult r = engine->Count(q, db, RunLimits{});
      ASSERT_TRUE(r.ok());
      cold[arm] = r.stats;
      // Delta pass: exercises the merged 3-cursor overlay seeks.
      ASSERT_TRUE(db.ApplyDelta(batch));
      tuples[arm] = CollectTuples(*engine, q, db);
      r = engine->Count(q, db, RunLimits{});
      ASSERT_TRUE(r.ok());
      warm[arm] = r.stats;
    }
    EXPECT_EQ(tuples[0], tuples[1]);
    ExpectStatsIdentical(cold[0], cold[1]);
    ExpectStatsIdentical(warm[0], warm[1]);
  }
}

TEST(SimdDispatch, ModeRoundTrip) {
  DispatchGuard guard;
  simd::Mode mode;
  EXPECT_TRUE(simd::ParseMode("auto", &mode));
  EXPECT_EQ(mode, simd::Mode::kAuto);
  EXPECT_TRUE(simd::ParseMode("avx2", &mode));
  EXPECT_EQ(mode, simd::Mode::kAvx2);
  EXPECT_TRUE(simd::ParseMode("scalar", &mode));
  EXPECT_EQ(mode, simd::Mode::kScalar);
  EXPECT_FALSE(simd::ParseMode("sse9", &mode));
  ASSERT_TRUE(simd::SetMode(simd::Mode::kScalar));
  EXPECT_EQ(simd::CurrentMode(), simd::Mode::kScalar);
  EXPECT_STREQ(simd::Active().name, "scalar");
  if (simd::Avx2Available()) {
    ASSERT_TRUE(simd::SetMode(simd::Mode::kAvx2));
    EXPECT_STREQ(simd::Active().name, "avx2");
    ASSERT_TRUE(simd::SetMode(simd::Mode::kAuto));
    EXPECT_STREQ(simd::Active().name, "avx2");  // auto resolves to AVX2
  } else {
    EXPECT_FALSE(simd::SetMode(simd::Mode::kAvx2));
    // A refused SetMode must leave the previous mode in place.
    EXPECT_EQ(simd::CurrentMode(), simd::Mode::kScalar);
    ASSERT_TRUE(simd::SetMode(simd::Mode::kAuto));
    EXPECT_STREQ(simd::Active().name, "scalar");
  }
  EXPECT_FALSE(simd::Describe().empty());
}

}  // namespace
}  // namespace clftj
