#include <gtest/gtest.h>

#include "baseline/generic_join.h"
#include "baseline/hash_join.h"
#include "baseline/nested_loop.h"
#include "query/patterns.h"
#include "tests/test_util.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;
using ::clftj::testing::Q;
using ::clftj::testing::ReferenceCount;
using ::clftj::testing::ReferenceTuples;
using ::clftj::testing::SmallBalancedDb;
using ::clftj::testing::SmallSkewedDb;

TEST(NestedLoop, HandComputedJoin) {
  Database db;
  Relation r("R", 2);
  r.AddPair(1, 2);
  r.AddPair(2, 3);
  r.AddPair(2, 4);
  db.Put(std::move(r));
  NestedLoopJoin nl;
  EXPECT_EQ(nl.Count(Q("R(x,y), R(y,z)"), db, {}).count, 2u);
}

TEST(NestedLoop, ConstantsAndRepeatedVars) {
  Database db;
  Relation r("R", 2);
  r.AddPair(1, 1);
  r.AddPair(1, 2);
  db.Put(std::move(r));
  NestedLoopJoin nl;
  EXPECT_EQ(nl.Count(Q("R(x,x)"), db, {}).count, 1u);
  EXPECT_EQ(nl.Count(Q("R(1,y)"), db, {}).count, 2u);
  EXPECT_EQ(nl.Count(Q("R(2,y)"), db, {}).count, 0u);
}

TEST(NestedLoop, TimeoutStopsRun) {
  const Database db = SmallSkewedDb(61, 200, 6);
  NestedLoopJoin nl;
  RunLimits limits;
  limits.timeout_seconds = 1e-9;
  EXPECT_TRUE(nl.Count(PathQuery(6), db, limits).timed_out);
}

TEST(PairwiseHJ, CountMatchesReferenceOnZoo) {
  const Database skewed = SmallSkewedDb(63, 50, 3);
  const Database balanced = SmallBalancedDb(65, 50, 110);
  PairwiseHashJoin engine;
  for (const Database* db : {&skewed, &balanced}) {
    for (const Query& q :
         {PathQuery(3), PathQuery(4), CycleQuery(3), CycleQuery(4),
          LollipopQuery(3, 1), RandomPatternQuery(5, 0.5, 8)}) {
      EXPECT_EQ(engine.Count(q, *db, {}).count, ReferenceCount(q, *db))
          << q.ToString();
    }
  }
}

TEST(PairwiseHJ, EvaluateMatchesReference) {
  const Database db = SmallSkewedDb(67, 40, 2);
  PairwiseHashJoin engine;
  for (const Query& q : {PathQuery(3), CycleQuery(4)}) {
    EXPECT_EQ(CollectTuples(engine, q, db), ReferenceTuples(q, db))
        << q.ToString();
  }
}

TEST(PairwiseHJ, MaterializesIntermediates) {
  const Database db = SmallSkewedDb(69, 60, 3);
  PairwiseHashJoin engine;
  const RunResult r = engine.Count(PathQuery(4), db, {});
  EXPECT_GT(r.stats.intermediate_tuples, 0u)
      << "pairwise joins must materialize intermediate results";
}

TEST(PairwiseHJ, RowLimitTriggersOutOfMemory) {
  const Database db = SmallSkewedDb(71, 150, 6);
  PairwiseHashJoin engine;
  RunLimits limits;
  limits.max_intermediate_tuples = 5;
  const RunResult r = engine.Count(PathQuery(5), db, limits);
  EXPECT_TRUE(r.out_of_memory);
}

TEST(PairwiseHJ, ConstantsAndSelfJoins) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  e.AddPair(1, 3);
  db.Put(std::move(e));
  PairwiseHashJoin engine;
  for (const char* text :
       {"E(1,y), E(y,z)", "E(x,y), E(y,x)", "E(x,x), E(x,y)"}) {
    const Query q = Q(text);
    EXPECT_EQ(engine.Count(q, db, {}).count, ReferenceCount(q, db)) << text;
  }
}

TEST(PairwiseHJ, DisconnectedQueryCrossProduct) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(3, 4);
  db.Put(std::move(e));
  PairwiseHashJoin engine;
  EXPECT_EQ(engine.Count(Q("E(a,b), E(c,d)"), db, {}).count, 4u);
}

TEST(GenericJoin, CountMatchesReferenceOnZoo) {
  const Database skewed = SmallSkewedDb(73, 50, 3);
  const Database balanced = SmallBalancedDb(75, 50, 110);
  GenericJoin engine;
  for (const Database* db : {&skewed, &balanced}) {
    for (const Query& q :
         {PathQuery(3), PathQuery(5), CycleQuery(4), CycleQuery(5),
          CliqueQuery(3), RandomPatternQuery(5, 0.6, 4)}) {
      EXPECT_EQ(engine.Count(q, *db, {}).count, ReferenceCount(q, *db))
          << q.ToString();
    }
  }
}

TEST(GenericJoin, EvaluateMatchesReference) {
  const Database db = SmallSkewedDb(77, 40, 2);
  GenericJoin engine;
  for (const Query& q : {PathQuery(4), CycleQuery(4)}) {
    EXPECT_EQ(CollectTuples(engine, q, db), ReferenceTuples(q, db))
        << q.ToString();
  }
}

TEST(GenericJoin, AgreesWithCustomOrder) {
  const Database db = SmallSkewedDb(79, 50, 3);
  const Query q = CycleQuery(4);
  const std::uint64_t expected = ReferenceCount(q, db);
  GenericJoin::Options options;
  options.order = {3, 1, 0, 2};
  GenericJoin engine(options);
  EXPECT_EQ(engine.Count(q, db, {}).count, expected);
}

TEST(GenericJoin, EmptyRelation) {
  Database db;
  db.Put(Relation("E", 2));
  GenericJoin engine;
  EXPECT_EQ(engine.Count(PathQuery(3), db, {}).count, 0u);
}

TEST(GenericJoin, TimeoutStopsRun) {
  const Database db = SmallSkewedDb(81, 200, 8);
  GenericJoin engine;
  RunLimits limits;
  limits.timeout_seconds = 1e-9;
  EXPECT_TRUE(engine.Count(PathQuery(6), db, limits).timed_out);
}

TEST(GenericJoin, ConstantsInAtoms) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  db.Put(std::move(e));
  GenericJoin engine;
  const Query q = Q("E(1,y), E(y,z)");
  EXPECT_EQ(engine.Count(q, db, {}).count, 1u);
}

}  // namespace
}  // namespace clftj
