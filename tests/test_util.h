#ifndef CLFTJ_TESTS_TEST_UTIL_H_
#define CLFTJ_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "baseline/nested_loop.h"
#include "data/database.h"
#include "data/generators.h"
#include "engine/engine.h"
#include "query/parser.h"
#include "query/query.h"

namespace clftj::testing {

/// Parses a query, aborting the test process on failure.
inline Query Q(const std::string& text) {
  std::string error;
  auto q = ParseQuery(text, &error);
  if (!q.has_value()) {
    std::fprintf(stderr, "bad test query '%s': %s\n", text.c_str(),
                 error.c_str());
    std::abort();
  }
  return *q;
}

/// Small random graph database with relation "E" (symmetric edges).
inline Database SmallSkewedDb(std::uint64_t seed, int nodes = 60,
                              int edges_per_node = 3) {
  Database db;
  db.Put(PreferentialAttachmentGraph("E", nodes, edges_per_node, seed));
  return db;
}

inline Database SmallBalancedDb(std::uint64_t seed, int nodes = 60,
                                int edges = 140) {
  Database db;
  db.Put(NearRegularGraph("E", nodes, edges, seed));
  return db;
}

/// Runs Evaluate and returns the sorted list of result tuples.
inline std::vector<Tuple> CollectTuples(JoinEngine& engine, const Query& q,
                                        const Database& db,
                                        const RunLimits& limits = {}) {
  std::vector<Tuple> out;
  engine.Evaluate(q, db, [&out](const Tuple& t) { out.push_back(t); },
                  limits);
  std::sort(out.begin(), out.end());
  return out;
}

/// Reference count via the nested-loop engine.
inline std::uint64_t ReferenceCount(const Query& q, const Database& db) {
  NestedLoopJoin reference;
  return reference.Count(q, db, RunLimits{}).count;
}

/// Reference tuples via the nested-loop engine (sorted).
inline std::vector<Tuple> ReferenceTuples(const Query& q,
                                          const Database& db) {
  NestedLoopJoin reference;
  return CollectTuples(reference, q, db);
}

}  // namespace clftj::testing

#endif  // CLFTJ_TESTS_TEST_UTIL_H_
