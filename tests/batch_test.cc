// Batch admission (docs/serving.md "Batch admission"): the scheduler that
// groups co-resident same-shape requests into one shared run must be
// invisible in results — tuple sets and typed statuses bit-identical to
// sequential FIFO dispatch, including under fault injection and around
// mid-batch DELTA writes — while provably eliminating duplicated work
// (one plan resolution, one substrate acquisition per batch).

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "server/service.h"
#include "td/planner.h"
#include "test_util.h"
#include "util/fault.h"

namespace clftj {
namespace {

constexpr const char* kTriangle = "E(x,y), E(y,z), E(z,x)";
constexpr const char* kFiveCycle = "E(a,b), E(b,c), E(c,d), E(d,e), E(e,a)";

QueryRequest CountReq(const std::string& text) {
  QueryRequest request;
  request.query_text = text;
  request.mode = "count";
  return request;
}

// One worker plus a generous window: the first popped request leads and
// holds the batch open until max_size members arrived, so every request
// submitted below deterministically lands in one batch.
ServiceOptions BatchedOptions(int max_size, std::uint64_t window_ms = 2000) {
  ServiceOptions options;
  options.workers = 1;
  options.batch.max_size = max_size;
  options.batch.window_ms = window_ms;
  return options;
}

ServiceOptions FifoOptions() {
  ServiceOptions options;
  options.workers = 1;
  options.batch.enabled = false;
  return options;
}

std::vector<QueryResponse> SubmitAll(QueryService& service,
                                     const std::vector<QueryRequest>& reqs) {
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(reqs.size());
  for (const QueryRequest& request : reqs) {
    futures.push_back(service.Submit(request));
  }
  std::vector<QueryResponse> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  return responses;
}

TEST(BatchAdmission, IdenticalShapeBatchSharesAllResolutionWork) {
  const Database db = testing::SmallSkewedDb(11);
  QueryService service(db, BatchedOptions(/*max_size=*/8));

  // Anchor: the same request set through a FIFO service.
  QueryService fifo(db, FifoOptions());
  const QueryResponse anchor = fifo.Execute(CountReq(kFiveCycle));
  ASSERT_EQ(anchor.status, RunStatus::kOk);

  const std::uint64_t searches_before = PlannerSearchCount();
  const std::vector<QueryRequest> reqs(8, CountReq(kFiveCycle));
  const std::vector<QueryResponse> responses = SubmitAll(service, reqs);
  const std::uint64_t searches_after = PlannerSearchCount();

  std::uint64_t total_misses = 0;
  std::uint64_t total_builds = 0;
  for (const QueryResponse& response : responses) {
    ASSERT_EQ(response.status, RunStatus::kOk);
    EXPECT_EQ(response.count, anchor.count);
    EXPECT_EQ(response.stats.batch_size, 8u);
    EXPECT_EQ(response.stats.batch_shared_execs, 1u);
    total_misses += response.stats.plan_cache_misses;
    total_builds += response.stats.substrate_builds;
  }
  // The whole batch did exactly one cold request's worth of resolution:
  // one plan-cache miss and one cold run's substrate builds (the 5-cycle
  // needs two E permutations) — not 8x. Planner-search accounting has its
  // own strict test below.
  EXPECT_EQ(total_misses, 1u);
  EXPECT_GT(searches_after, searches_before);
  EXPECT_EQ(total_builds, anchor.stats.substrate_builds);

  // A second identical batch is fully warm: no new planner searches and no
  // new substrate builds at all.
  const std::uint64_t warm_before = PlannerSearchCount();
  const std::vector<QueryResponse> warm = SubmitAll(service, reqs);
  EXPECT_EQ(PlannerSearchCount(), warm_before);
  for (const QueryResponse& response : warm) {
    ASSERT_EQ(response.status, RunStatus::kOk);
    EXPECT_EQ(response.count, anchor.count);
    EXPECT_EQ(response.stats.substrate_builds, 0u);
  }
}

TEST(BatchAdmission, PlannerSearchedOnceForTheWholeBatch) {
  const Database db = testing::SmallSkewedDb(11);
  // Measure one cold resolve's planner searches on a throwaway service.
  const std::uint64_t lone_before = PlannerSearchCount();
  {
    QueryService lone(db, FifoOptions());
    ASSERT_EQ(lone.Execute(CountReq(kFiveCycle)).status, RunStatus::kOk);
  }
  const std::uint64_t lone_searches = PlannerSearchCount() - lone_before;

  QueryService service(db, BatchedOptions(/*max_size=*/8));
  const std::uint64_t batch_before = PlannerSearchCount();
  const std::vector<QueryResponse> responses =
      SubmitAll(service, std::vector<QueryRequest>(8, CountReq(kFiveCycle)));
  for (const QueryResponse& response : responses) {
    ASSERT_EQ(response.status, RunStatus::kOk);
  }
  EXPECT_EQ(PlannerSearchCount() - batch_before, lone_searches)
      << "a batch of 8 must plan exactly once, like one lone request";
}

TEST(BatchAdmission, EvalBatchReturnsBitIdenticalTupleStreams) {
  const Database db = testing::SmallSkewedDb(11);
  QueryService fifo(db, FifoOptions());
  QueryRequest request = CountReq(kTriangle);
  request.mode = "eval";
  const QueryResponse anchor = fifo.Execute(request);
  ASSERT_EQ(anchor.status, RunStatus::kOk);
  ASSERT_FALSE(anchor.tuples.empty());

  QueryService service(db, BatchedOptions(/*max_size=*/4));
  const std::vector<QueryResponse> responses =
      SubmitAll(service, std::vector<QueryRequest>(4, request));
  for (const QueryResponse& response : responses) {
    ASSERT_EQ(response.status, RunStatus::kOk);
    EXPECT_EQ(response.stats.batch_size, 4u);
    // Bit-identical stream, not just the same set: eval batches are never
    // escalated to the sharded engine precisely so the order matches what
    // a sequential run would have produced.
    EXPECT_EQ(response.tuples, anchor.tuples);
    EXPECT_EQ(response.count, anchor.count);
  }
}

TEST(BatchAdmission, MixedShapesFormSeparateBatches) {
  const Database db = testing::SmallSkewedDb(11);
  const std::uint64_t triangle_count =
      testing::ReferenceCount(testing::Q(kTriangle), db);

  QueryService fifo(db, FifoOptions());
  const std::uint64_t five_count = fifo.Execute(CountReq(kFiveCycle)).count;

  // Interleaved shapes: the leader only drains its own shape, so the two
  // shapes group into two batches of 4 (max_size 4 closes each window as
  // soon as the 4th member arrives).
  QueryService service(db, BatchedOptions(/*max_size=*/4));
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(CountReq(kTriangle));
    reqs.push_back(CountReq(kFiveCycle));
  }
  const std::vector<QueryResponse> responses = SubmitAll(service, reqs);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, RunStatus::kOk) << i;
    EXPECT_EQ(responses[i].count,
              i % 2 == 0 ? triangle_count : five_count)
        << i;
  }
}

TEST(BatchAdmission, BatchedMatchesFifoUnderInjectedFaults) {
  const Database db = testing::SmallSkewedDb(13);
  fault::Config faults;
  faults.seed = 7;
  faults.period[static_cast<int>(fault::Site::kCacheInsert)] = 3;
  faults.period[static_cast<int>(fault::Site::kWorkerDelay)] = 2;
  faults.delay_ms = 2;

  // Dropped cache inserts degrade capacity, never correctness, and worker
  // delays only slow dispatch — so both sides must still answer every
  // request kOk with the true count.
  std::vector<QueryResponse> batched;
  {
    fault::ScopedFaults scoped(faults);
    QueryService service(db, BatchedOptions(/*max_size=*/8));
    batched = SubmitAll(service,
                        std::vector<QueryRequest>(8, CountReq(kFiveCycle)));
  }
  std::vector<QueryResponse> sequential;
  {
    fault::ScopedFaults scoped(faults);
    QueryService service(db, FifoOptions());
    sequential = SubmitAll(
        service, std::vector<QueryRequest>(8, CountReq(kFiveCycle)));
  }
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].status, sequential[i].status) << i;
    ASSERT_EQ(batched[i].status, RunStatus::kOk) << i;
    EXPECT_EQ(batched[i].count, sequential[i].count) << i;
  }
}

TEST(BatchAdmission, DeltaIsABatchBarrier) {
  Database db = testing::SmallSkewedDb(11);
  ServiceOptions options = BatchedOptions(/*max_size=*/8, /*window_ms=*/100);
  QueryService service(&db, options);

  const std::uint64_t pre = service.Execute(CountReq(kFiveCycle)).count;

  // Adds a fresh directed 5-cycle on unused node ids, so the count must
  // change — which is what makes a barrier violation observable.
  QueryRequest delta;
  delta.kind = "delta";
  delta.delta.relation = "E";
  delta.delta.adds = {{1000, 1001}, {1001, 1002}, {1002, 1003},
                      {1003, 1004}, {1004, 1000}};

  std::vector<QueryRequest> reqs(4, CountReq(kFiveCycle));
  reqs.push_back(delta);
  for (int i = 0; i < 4; ++i) reqs.push_back(CountReq(kFiveCycle));
  const std::vector<QueryResponse> responses = SubmitAll(service, reqs);

  const std::uint64_t post = service.Execute(CountReq(kFiveCycle)).count;
  ASSERT_NE(pre, post) << "the delta must change the count for this test";

  // FIFO + barrier semantics: every request admitted before the delta
  // observes the pre-delta database, every one after it the post-delta
  // database — whatever batches formed. A leader that dragged a post-delta
  // member across the barrier would hand it `pre` and fail here.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(responses[i].status, RunStatus::kOk) << i;
    EXPECT_EQ(responses[i].count, pre) << i;
  }
  ASSERT_EQ(responses[4].status, RunStatus::kOk);
  EXPECT_EQ(responses[4].count, 5u);  // applied adds
  for (int i = 5; i < 9; ++i) {
    ASSERT_EQ(responses[i].status, RunStatus::kOk) << i;
    EXPECT_EQ(responses[i].count, post) << i;
  }
}

TEST(BatchAdmission, PerRequestLimitsSplitSubCohorts) {
  const Database db = testing::SmallSkewedDb(13);
  QueryService service(db, BatchedOptions(/*max_size=*/4));

  // Same shape, different materialization budgets: the tiny-budget member
  // must still trip kOutOfMemory on its own cold run instead of riding a
  // shared run with the unconstrained members' limits. It leads the batch,
  // so its sub-cohort executes first — before the roomy run can warm the
  // persistent cache and make the budget unreachable. Eval mode because
  // only eval materializes factorized entries against the budget.
  QueryRequest roomy = CountReq(kFiveCycle);
  roomy.mode = "eval";
  QueryRequest tiny = roomy;
  tiny.max_tuples = 1;
  const std::vector<QueryResponse> responses =
      SubmitAll(service, {tiny, roomy, roomy, roomy});
  EXPECT_EQ(responses[0].status, RunStatus::kOutOfMemory);
  EXPECT_TRUE(responses[0].tuples.empty());
  EXPECT_EQ(responses[1].status, RunStatus::kOk);
  EXPECT_EQ(responses[2].status, RunStatus::kOk);
  EXPECT_EQ(responses[3].status, RunStatus::kOk);
  EXPECT_EQ(responses[1].tuples, responses[3].tuples);
}

TEST(BatchAdmission, CrossShapeSeedingWarmsAColdLongerQuery) {
  const Database db = testing::SmallSkewedDb(11);
  QueryService service(db, BatchedOptions(/*max_size=*/4));

  // Warm the 2-path shape; its deepest cacheable node has the same subjoin
  // signature as the 3-path's, so creating the 3-path's caches copies
  // those entries across (charged as batch_prefix_seeds).
  ASSERT_EQ(service.Execute(CountReq("E(x,y), E(y,z)")).status,
            RunStatus::kOk);
  const QueryResponse cold =
      service.Execute(CountReq("E(u,v), E(v,w), E(w,t)"));
  ASSERT_EQ(cold.status, RunStatus::kOk);
  EXPECT_GT(cold.stats.batch_prefix_seeds, 0u)
      << "no subjoin signature matched between 2-path and 3-path";
  EXPECT_EQ(cold.count,
            testing::ReferenceCount(testing::Q("E(u,v), E(v,w), E(w,t)"), db));
}

TEST(BatchAdmission, ImmediateShutdownCancelsCollectedMembers) {
  const Database db = testing::SmallSkewedDb(7, /*nodes=*/3000,
                                             /*edges_per_node=*/6);
  auto service = std::make_unique<QueryService>(
      db, BatchedOptions(/*max_size=*/8, /*window_ms=*/30000));
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service->Submit(CountReq(kFiveCycle)));
  }
  // The leader is holding the window open waiting for 4 more members;
  // immediate shutdown must cancel the whole collected batch promptly
  // instead of waiting out the 30s window.
  service->Shutdown(/*drain=*/false);
  for (auto& f : futures) {
    const QueryResponse response = f.get();
    EXPECT_TRUE(response.status == RunStatus::kCancelled ||
                response.status == RunStatus::kOk)
        << RunStatusName(response.status);
  }
  service.reset();
}

}  // namespace
}  // namespace clftj
