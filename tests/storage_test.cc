// Differential coverage for the columnar Relation storage swap: every
// engine must produce bit-identical query counts and tuple sets over the
// column-major storage, Normalize must implement exact set semantics, and
// the loader round-trip must be lossless. The reference semantics are
// computed independently of Relation's internals (std::set of tuples and
// the nested-loop engine), so these tests would catch any storage-layer
// divergence — ordering bugs in the permutation sort, dedup misses,
// column misalignment — as a visible result difference.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baseline/generic_join.h"
#include "baseline/hash_join.h"
#include "baseline/nested_loop.h"
#include "clftj/cached_trie_join.h"
#include "data/database.h"
#include "data/generators.h"
#include "data/loader.h"
#include "data/relation.h"
#include "engine/sharded.h"
#include "lftj/trie_join.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace clftj {
namespace {

using testing::CollectTuples;
using testing::Q;

// A random relation with duplicates and negative values, plus the same
// rows as a tuple list for reference computations.
struct RandomRelation {
  Relation relation;
  std::vector<Tuple> rows;
};

RandomRelation MakeRandomRelation(const std::string& name, int arity,
                                  int rows, Value domain, Rng* rng) {
  RandomRelation out{Relation(name, arity), {}};
  for (int i = 0; i < rows; ++i) {
    Tuple t(arity);
    for (int c = 0; c < arity; ++c) {
      t[c] = static_cast<Value>(rng->Uniform(static_cast<std::size_t>(domain)))
             - domain / 2;
    }
    out.relation.Add(t);
    out.rows.push_back(std::move(t));
  }
  return out;
}

// --- Normalize: exact set semantics against an independent reference ----

TEST(Storage, NormalizeMatchesSetSemantics) {
  Rng rng(7);
  for (int arity = 1; arity <= 4; ++arity) {
    for (int round = 0; round < 8; ++round) {
      RandomRelation r = MakeRandomRelation("R", arity, 120, 9, &rng);
      r.relation.Normalize();
      const std::set<Tuple> reference(r.rows.begin(), r.rows.end());
      ASSERT_EQ(r.relation.size(), reference.size())
          << "arity=" << arity << " round=" << round;
      std::size_t i = 0;
      for (const Tuple& expected : reference) {
        EXPECT_EQ(r.relation.TupleAt(i), expected)
            << "arity=" << arity << " row " << i;
        ++i;
      }
      // Idempotent.
      Relation again = r.relation;
      again.Normalize();
      ASSERT_EQ(again.size(), r.relation.size());
      for (std::size_t j = 0; j < again.size(); ++j) {
        EXPECT_EQ(again.TupleAt(j), r.relation.TupleAt(j));
      }
    }
  }
}

TEST(Storage, NormalizeKeepsColumnsAligned) {
  Rng rng(13);
  RandomRelation r = MakeRandomRelation("R", 3, 200, 6, &rng);
  r.relation.Normalize();
  // Re-zip the columns into rows: they must be exactly the sorted set.
  const ColumnSpan c0 = r.relation.Column(0);
  const ColumnSpan c1 = r.relation.Column(1);
  const ColumnSpan c2 = r.relation.Column(2);
  ASSERT_EQ(c0.size(), r.relation.size());
  for (std::size_t i = 0; i < r.relation.size(); ++i) {
    EXPECT_EQ((Tuple{c0[i], c1[i], c2[i]}), r.relation.TupleAt(i)) << i;
  }
}

// --- Loader round-trip ---------------------------------------------------

TEST(Storage, LoaderRoundTripIsLossless) {
  Rng rng(29);
  for (const int arity : {1, 2, 3}) {
    const std::string path = ::testing::TempDir() + "clftj_storage_rt_" +
                             std::to_string(arity) + ".tsv";
    RandomRelation r = MakeRandomRelation("R", arity, 150, 40, &rng);
    r.relation.Normalize();
    ASSERT_TRUE(SaveRelationToFile(r.relation, path));
    const auto loaded = LoadRelationFromFile(path, "R", arity);
    ASSERT_TRUE(loaded.has_value()) << "arity=" << arity;
    ASSERT_EQ(loaded->size(), r.relation.size());
    for (std::size_t i = 0; i < loaded->size(); ++i) {
      EXPECT_EQ(loaded->TupleAt(i), r.relation.TupleAt(i))
          << "arity=" << arity << " row " << i;
    }
    std::remove(path.c_str());
  }
}

// --- Concurrent readers over one shared relation --------------------------

// Exercises the documented concurrent-reader contract of the lazily
// memoized stats: many threads race the *first* Stats call on cold columns
// (the compute-outside-lock install path) while others stream spans. This
// is the surface the TSan CI job watches.
TEST(Storage, ConcurrentStatsReadersAgree) {
  Rng rng(57);
  const RandomRelation source = MakeRandomRelation("R", 3, 5000, 300, &rng);
  for (int round = 0; round < 4; ++round) {
    Relation rel = source.relation;  // fresh memo every round
    constexpr int kThreads = 8;
    std::vector<std::array<std::size_t, 3>> distinct(kThreads);
    std::vector<Value> span_sum(kThreads, 0);
    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([t, &rel, &distinct, &span_sum]() {
        for (int c = 0; c < 3; ++c) {
          // Rotate the starting column per thread so different columns'
          // first computations race each other, not just one.
          const int col = (t + c) % 3;
          distinct[t][col] = rel.DistinctInColumn(col);
          Value sum = 0;
          for (const Value v : rel.Column(col)) sum += v;
          span_sum[t] += sum;
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(distinct[t], distinct[0]) << "thread " << t;
      EXPECT_EQ(span_sum[t], span_sum[0]) << "thread " << t;
    }
    // Install-once: racing first readers may duplicate a compute, but each
    // column's block is installed and counted exactly once.
    EXPECT_EQ(rel.stats_builds(), 3u);
  }
}

// --- Cross-engine differential over the columnar storage -----------------

struct EngineCase {
  std::string label;
  std::unique_ptr<JoinEngine> engine;
};

std::vector<EngineCase> AllEngines() {
  std::vector<EngineCase> engines;
  engines.push_back({"HashJoin", std::make_unique<PairwiseHashJoin>()});
  engines.push_back({"GenericJoin", std::make_unique<GenericJoin>()});
  engines.push_back({"LFTJ", std::make_unique<LeapfrogTrieJoin>()});
  engines.push_back({"CLFTJ", std::make_unique<CachedTrieJoin>()});
  for (const int threads : {1, 2, 8}) {
    ShardedCachedTrieJoin::Options options;
    options.threads = threads;
    engines.push_back(
        {"CLFTJ-P/" + std::to_string(threads),
         std::make_unique<ShardedCachedTrieJoin>(options)});
  }
  return engines;
}

class StorageDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StorageDifferentialTest, AllEnginesAgreeOnColumnarStorage) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 7919 + 1);
  Database db;
  db.Put(MakeRandomRelation("E", 2, 220, 25, &rng).relation);
  db.Put(MakeRandomRelation("F", 2, 180, 25, &rng).relation);

  const std::vector<Query> queries = {
      Q("E(x,y), E(y,z)"),
      Q("E(x,y), F(y,z), E(z,x)"),
      Q("E(x,y), E(y,z), F(z,w)"),
      Q("E(x,x)"),
  };
  for (const Query& q : queries) {
    const std::uint64_t expected_count = testing::ReferenceCount(q, db);
    const std::vector<Tuple> expected = testing::ReferenceTuples(q, db);
    for (EngineCase& e : AllEngines()) {
      EXPECT_EQ(e.engine->Count(q, db, {}).count, expected_count)
          << e.label << " on " << q.ToString();
      EXPECT_EQ(CollectTuples(*e.engine, q, db), expected)
          << e.label << " on " << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageDifferentialTest,
                         ::testing::Range(0, 6));

// The skewed graph instances exercise the cache-heavy CLFTJ paths; the
// counts and tuple sets must agree with the nested-loop reference and
// across thread counts.
TEST(Storage, SkewedGraphDifferential) {
  for (const std::uint64_t seed : {3u, 17u}) {
    Database db = testing::SmallSkewedDb(seed, /*nodes=*/40,
                                         /*edges_per_node=*/3);
    const Query q = Q("E(x,y), E(y,z), E(z,x)");
    const std::uint64_t expected_count = testing::ReferenceCount(q, db);
    const std::vector<Tuple> expected = testing::ReferenceTuples(q, db);
    for (EngineCase& e : AllEngines()) {
      EXPECT_EQ(e.engine->Count(q, db, {}).count, expected_count)
          << e.label << " seed=" << seed;
      EXPECT_EQ(CollectTuples(*e.engine, q, db), expected)
          << e.label << " seed=" << seed;
    }
  }
}

// Constants and repeated variables flow through the filtered (non-plain)
// atom-view build path; pin it against the reference engine too.
TEST(Storage, FilteredAtomViewsDifferential) {
  Rng rng(101);
  Database db;
  db.Put(MakeRandomRelation("E", 2, 200, 12, &rng).relation);
  db.Put(MakeRandomRelation("T", 3, 150, 8, &rng).relation);
  const Value c = db.Get("E").Column(0)[0];  // a constant that exists
  std::vector<Query> queries = {
      Q("E(x,x), E(x,y)"),
      Q("T(x,y,x), E(y,z)"),
      Q("T(x,x,y)"),
  };
  // A query with an explicit constant argument.
  {
    Query q;
    const VarId x = q.AddVariable("x");
    const VarId y = q.AddVariable("y");
    Atom a;
    a.relation = "E";
    a.terms = {Term::Const(c), Term::Var(x)};
    q.AddAtom(std::move(a));
    Atom b;
    b.relation = "E";
    b.terms = {Term::Var(x), Term::Var(y)};
    q.AddAtom(std::move(b));
    queries.push_back(std::move(q));
  }
  for (const Query& q : queries) {
    const std::uint64_t expected_count = testing::ReferenceCount(q, db);
    const std::vector<Tuple> expected = testing::ReferenceTuples(q, db);
    for (EngineCase& e : AllEngines()) {
      EXPECT_EQ(e.engine->Count(q, db, {}).count, expected_count)
          << e.label << " on " << q.ToString();
      EXPECT_EQ(CollectTuples(*e.engine, q, db), expected)
          << e.label << " on " << q.ToString();
    }
  }
}

}  // namespace
}  // namespace clftj
