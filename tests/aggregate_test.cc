#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "clftj/aggregate_join.h"
#include "clftj/cached_trie_join.h"
#include "clftj/semiring.h"
#include "query/patterns.h"
#include "tests/test_util.h"

namespace clftj {
namespace {

using ::clftj::testing::Q;
using ::clftj::testing::ReferenceTuples;
using ::clftj::testing::SmallBalancedDb;
using ::clftj::testing::SmallSkewedDb;

// Edge weight derived deterministically from the atom's endpoint values so
// brute force and the engine agree without shared state.
double EdgeWeight(const Query& q, AtomId a, const Tuple& mu) {
  double w = 1.0;
  for (const Term& t : q.atom(a).terms) {
    if (t.is_variable) w += 0.01 * static_cast<double>(mu[t.var] % 17);
  }
  return w;
}

// Brute-force semiring aggregate over the reference tuple set.
template <typename S>
typename S::Value BruteAggregate(const Query& q, const Database& db) {
  typename S::Value total = S::Zero();
  for (const Tuple& t : ReferenceTuples(q, db)) {
    typename S::Value prod = S::One();
    for (AtomId a = 0; a < q.num_atoms(); ++a) {
      prod = S::Times(prod, static_cast<typename S::Value>(
                                EdgeWeight(q, a, t)));
    }
    total = S::Plus(total, prod);
  }
  return total;
}

TEST(Aggregate, CountingSemiringMatchesCount) {
  const Database db = SmallSkewedDb(101, 50, 3);
  for (const Query& q : {PathQuery(4), CycleQuery(4), LollipopQuery(3, 2)}) {
    AggregatingCachedTrieJoin<CountingSemiring> agg;
    CachedTrieJoin counter;
    EXPECT_EQ(agg.Aggregate(q, db).value, counter.Count(q, db, {}).count)
        << q.ToString();
  }
}

TEST(Aggregate, RealSemiringMatchesBruteForce) {
  const Database db = SmallSkewedDb(103, 40, 2);
  for (const Query& q : {PathQuery(3), PathQuery(4), CycleQuery(4)}) {
    AggregatingCachedTrieJoin<RealSemiring> agg;
    const double got =
        agg.Aggregate(q, db,
                      [&q](AtomId a, const Tuple& mu) {
                        return EdgeWeight(q, a, mu);
                      })
            .value;
    const double expected = BruteAggregate<RealSemiring>(q, db);
    EXPECT_NEAR(got, expected, 1e-6 * std::max(1.0, std::fabs(expected)))
        << q.ToString();
  }
}

TEST(Aggregate, MaxPlusFindsHeaviestInstance) {
  const Database db = SmallSkewedDb(105, 40, 2);
  const Query q = PathQuery(4);
  AggregatingCachedTrieJoin<MaxPlusSemiring> agg;
  const double got =
      agg.Aggregate(q, db,
                    [&q](AtomId a, const Tuple& mu) {
                      return EdgeWeight(q, a, mu);
                    })
          .value;
  // Brute force: max over tuples of the sum of atom weights.
  double expected = -std::numeric_limits<double>::infinity();
  for (const Tuple& t : ReferenceTuples(q, db)) {
    double sum = 0;
    for (AtomId a = 0; a < q.num_atoms(); ++a) sum += EdgeWeight(q, a, t);
    expected = std::max(expected, sum);
  }
  EXPECT_NEAR(got, expected, 1e-9);
}

TEST(Aggregate, MinPlusFindsLightestInstance) {
  const Database db = SmallSkewedDb(107, 40, 2);
  const Query q = CycleQuery(4);
  AggregatingCachedTrieJoin<MinPlusSemiring> agg;
  const double got =
      agg.Aggregate(q, db,
                    [&q](AtomId a, const Tuple& mu) {
                      return EdgeWeight(q, a, mu);
                    })
          .value;
  double expected = std::numeric_limits<double>::infinity();
  for (const Tuple& t : ReferenceTuples(q, db)) {
    double sum = 0;
    for (AtomId a = 0; a < q.num_atoms(); ++a) sum += EdgeWeight(q, a, t);
    expected = std::min(expected, sum);
  }
  EXPECT_NEAR(got, expected, 1e-9);
}

TEST(Aggregate, BooleanSemiringIsSatisfiability) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  db.Put(std::move(e));
  AggregatingCachedTrieJoin<BooleanSemiring> agg;
  EXPECT_TRUE(agg.Aggregate(Q("E(x,y), E(y,z)"), db).value);
  EXPECT_FALSE(agg.Aggregate(Q("E(x,y), E(y,x)"), db).value);
}

TEST(Aggregate, EmptySemiringResultIsZero) {
  Database db;
  db.Put(Relation("E", 2));
  AggregatingCachedTrieJoin<RealSemiring> agg;
  EXPECT_EQ(agg.Aggregate(PathQuery(3), db).value, 0.0);
}

TEST(Aggregate, CachePoliciesPreserveAggregates) {
  const Database db = SmallSkewedDb(109, 45, 3);
  const Query q = PathQuery(5);
  const auto weight = [&q](AtomId a, const Tuple& mu) {
    return EdgeWeight(q, a, mu);
  };
  AggregatingCachedTrieJoin<RealSemiring> unbounded;
  const double expected = unbounded.Aggregate(q, db, weight).value;
  for (int policy = 0; policy < 3; ++policy) {
    AggregatingCachedTrieJoin<RealSemiring>::Options options;
    switch (policy) {
      case 0:
        options.cache.capacity = 4;
        options.cache.eviction = CacheOptions::Eviction::kLru;
        break;
      case 1:
        options.cache.enabled = false;
        break;
      default:
        options.cache.admission = CacheOptions::Admission::kSupportThreshold;
        options.cache.support_threshold = 4;
        break;
    }
    AggregatingCachedTrieJoin<RealSemiring> engine(options);
    const double got = engine.Aggregate(q, db, weight).value;
    EXPECT_NEAR(got, expected, 1e-6 * std::max(1.0, std::fabs(expected)))
        << "policy " << policy;
  }
}

TEST(Aggregate, ExplicitPlanHonored) {
  const Database db = SmallSkewedDb(111, 40, 2);
  const Query q = PathQuery(4);
  AggregatingCachedTrieJoin<CountingSemiring>::Options options;
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1}, kNone);
  const NodeId mid = td.AddNode({1, 2}, root);
  td.AddNode({2, 3}, mid);
  options.plan = MakePlanFromTd(q, db, std::move(td));
  AggregatingCachedTrieJoin<CountingSemiring> engine(options);
  CachedTrieJoin counter;
  EXPECT_EQ(engine.Aggregate(q, db).value, counter.Count(q, db, {}).count);
}

TEST(Aggregate, TimeoutReported) {
  const Database db = SmallSkewedDb(113, 200, 8);
  AggregatingCachedTrieJoin<CountingSemiring>::Options options;
  options.cache.enabled = false;
  AggregatingCachedTrieJoin<CountingSemiring> engine(options);
  RunLimits limits;
  limits.timeout_seconds = 1e-9;
  EXPECT_TRUE(engine.Aggregate(PathQuery(6), db, nullptr, limits).timed_out);
}

TEST(Aggregate, CachingActuallyHappens) {
  const Database db = SmallSkewedDb(115, 60, 3);
  AggregatingCachedTrieJoin<RealSemiring> engine;
  const Query q = PathQuery(5);
  const auto result = engine.Aggregate(q, db, [&q](AtomId a, const Tuple& mu) {
    return EdgeWeight(q, a, mu);
  });
  EXPECT_GT(result.stats.cache_hits, 0u);
}

}  // namespace
}  // namespace clftj
