#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "query/patterns.h"
#include "td/separators.h"
#include "util/rng.h"

namespace clftj {
namespace {

AdjacencyList PathGraph(int n) {
  AdjacencyList g(n);
  for (int i = 0; i + 1 < n; ++i) {
    g[i].push_back(i + 1);
    g[i + 1].push_back(i);
  }
  return g;
}

AdjacencyList CycleGraph(int n) {
  AdjacencyList g = PathGraph(n);
  g[0].push_back(n - 1);
  g[n - 1].push_back(0);
  return g;
}

AdjacencyList CompleteGraph(int n) {
  AdjacencyList g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) g[i].push_back(j);
    }
  }
  return g;
}

AdjacencyList RandomGraph(int n, double p, std::uint64_t seed) {
  Rng rng(seed);
  AdjacencyList g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Flip(p)) {
        g[i].push_back(j);
        g[j].push_back(i);
      }
    }
  }
  return g;
}

// All C-constrained separators by exhaustive subset enumeration.
std::vector<std::vector<int>> BruteForceSeparators(const AdjacencyList& g,
                                                   const std::vector<int>& c) {
  const int n = static_cast<int>(g.size());
  std::vector<std::vector<int>> result;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<int> s;
    for (int v = 0; v < n; ++v) {
      if (mask & (1 << v)) s.push_back(v);
    }
    if (IsConstrainedSeparator(g, c, s)) result.push_back(s);
  }
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return result;
}

TEST(IsConstrainedSeparator, PathMiddleNode) {
  const AdjacencyList g = PathGraph(3);  // 0-1-2
  EXPECT_TRUE(IsConstrainedSeparator(g, {}, {1}));
  EXPECT_FALSE(IsConstrainedSeparator(g, {}, {0}));
  EXPECT_FALSE(IsConstrainedSeparator(g, {}, {}));
  EXPECT_FALSE(IsConstrainedSeparator(g, {}, {0, 1, 2}));  // nothing left
}

TEST(IsConstrainedSeparator, ConstraintSideMatters) {
  // 0-1-2-3; S={1} separates {0} from {2,3}.
  const AdjacencyList g = PathGraph(4);
  // With C={0}: component {2,3} is disjoint from C -> constrained.
  EXPECT_TRUE(IsConstrainedSeparator(g, {0}, {1}));
  // With C={0,2}: components {0} and {2,3} both touch C -> not constrained.
  EXPECT_FALSE(IsConstrainedSeparator(g, {0, 2}, {1}));
  // C nodes inside S do not count as touched components.
  EXPECT_TRUE(IsConstrainedSeparator(g, {1}, {1}));
}

TEST(IsConstrainedSeparator, DisconnectedGraphHasEmptySeparator) {
  AdjacencyList g(4);  // 0-1  2-3
  g[0].push_back(1);
  g[1].push_back(0);
  g[2].push_back(3);
  g[3].push_back(2);
  EXPECT_TRUE(IsConstrainedSeparator(g, {}, {}));
  EXPECT_TRUE(IsConstrainedSeparator(g, {0}, {}));
}

TEST(IsConstrainedSeparator, CliqueHasNone) {
  const AdjacencyList g = CompleteGraph(4);
  const auto all = BruteForceSeparators(g, {});
  EXPECT_TRUE(all.empty());
}

TEST(MinConstrainedSeparator, PathMinimum) {
  const AdjacencyList g = PathGraph(5);
  const auto s = MinConstrainedSeparator(g, {}, {}, {});
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->size(), 1u);
}

TEST(MinConstrainedSeparator, CycleNeedsTwo) {
  const AdjacencyList g = CycleGraph(6);
  const auto s = MinConstrainedSeparator(g, {}, {}, {});
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->size(), 2u);
  EXPECT_TRUE(IsConstrainedSeparator(g, {}, *s));
}

TEST(MinConstrainedSeparator, CliqueInfeasible) {
  const AdjacencyList g = CompleteGraph(5);
  EXPECT_FALSE(MinConstrainedSeparator(g, {}, {}, {}).has_value());
}

TEST(MinConstrainedSeparator, HonorsIncludeExclude) {
  const AdjacencyList g = PathGraph(5);  // separators: {1},{2},{3},...
  const auto s = MinConstrainedSeparator(g, {}, {3}, {});
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(std::count(s->begin(), s->end(), 3) == 1);
  const auto t = MinConstrainedSeparator(g, {}, {}, {2});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(std::count(t->begin(), t->end(), 2) == 0);
  // Contradictory constraints.
  EXPECT_FALSE(MinConstrainedSeparator(g, {}, {2}, {2}).has_value());
}

TEST(MinConstrainedSeparator, MatchesBruteForceMinimum) {
  Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const int n = 4 + static_cast<int>(rng.Uniform(4));
    const AdjacencyList g = RandomGraph(n, 0.45, 1000 + round);
    std::vector<int> c;
    for (int v = 0; v < n; ++v) {
      if (rng.Flip(0.3)) c.push_back(v);
    }
    const auto brute = BruteForceSeparators(g, c);
    const auto fast = MinConstrainedSeparator(g, c, {}, {});
    if (brute.empty()) {
      EXPECT_FALSE(fast.has_value()) << "round " << round;
    } else {
      ASSERT_TRUE(fast.has_value()) << "round " << round;
      EXPECT_EQ(fast->size(), brute.front().size()) << "round " << round;
      EXPECT_TRUE(IsConstrainedSeparator(g, c, *fast));
    }
  }
}

TEST(Enumerator, PathEnumeratesAllBySize) {
  const AdjacencyList g = PathGraph(4);
  ConstrainedSeparatorEnumerator e(g, {});
  const auto brute = BruteForceSeparators(g, {});
  std::vector<std::vector<int>> got;
  while (auto s = e.Next()) got.push_back(*s);
  ASSERT_EQ(got.size(), brute.size());
  // Non-decreasing sizes.
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].size(), got[i].size());
  }
  // Same sets.
  std::set<std::vector<int>> a(got.begin(), got.end());
  std::set<std::vector<int>> b(brute.begin(), brute.end());
  EXPECT_EQ(a, b);
}

TEST(Enumerator, NoRepetitions) {
  const AdjacencyList g = CycleGraph(5);
  ConstrainedSeparatorEnumerator e(g, {});
  std::set<std::vector<int>> seen;
  while (auto s = e.Next()) {
    EXPECT_TRUE(seen.insert(*s).second) << "duplicate separator";
  }
}

TEST(Enumerator, CliqueYieldsNothing) {
  ConstrainedSeparatorEnumerator e(CompleteGraph(4), {});
  EXPECT_FALSE(e.Next().has_value());
}

TEST(Enumerator, CompleteAgainstBruteForceRandomized) {
  for (int round = 0; round < 25; ++round) {
    const int n = 4 + (round % 3);
    const AdjacencyList g = RandomGraph(n, 0.5, 500 + round);
    Rng rng(round);
    std::vector<int> c;
    for (int v = 0; v < n; ++v) {
      if (rng.Flip(0.25)) c.push_back(v);
    }
    const auto brute = BruteForceSeparators(g, c);
    ConstrainedSeparatorEnumerator e(g, c);
    std::vector<std::vector<int>> got;
    while (auto s = e.Next()) {
      EXPECT_TRUE(IsConstrainedSeparator(g, c, *s));
      got.push_back(*s);
    }
    ASSERT_EQ(got.size(), brute.size()) << "round " << round;
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].size(), got[i].size());
    }
    EXPECT_EQ(std::set<std::vector<int>>(got.begin(), got.end()),
              std::set<std::vector<int>>(brute.begin(), brute.end()));
  }
}

TEST(Enumerator, FirstResultIsMinimum) {
  for (int round = 0; round < 15; ++round) {
    const AdjacencyList g = RandomGraph(6, 0.5, 900 + round);
    const auto brute = BruteForceSeparators(g, {});
    ConstrainedSeparatorEnumerator e(g, {});
    const auto first = e.Next();
    if (brute.empty()) {
      EXPECT_FALSE(first.has_value());
    } else {
      ASSERT_TRUE(first.has_value());
      EXPECT_EQ(first->size(), brute.front().size());
    }
  }
}

TEST(Enumerator, GaifmanGraphOfCycleQuery) {
  // End-to-end: the 5-cycle query's Gaifman graph has exactly the
  // "opposite-ish pair" separators of size 2.
  const Query q = CycleQuery(5);
  ConstrainedSeparatorEnumerator e(q.GaifmanGraph(), {});
  const auto first = e.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 2u);
}

}  // namespace
}  // namespace clftj
