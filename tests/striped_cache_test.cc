// Tests for CacheOptions::Sharing::kStriped — the lock-striped shared
// cache of CLFTJ-P. Three layers:
//   * StripedCacheManager unit tests: stripe budget slices sum exactly to
//     the global budget, stripe-count clamping, per-stripe eviction, and
//     the copy-out lookup contract.
//   * Randomized differential tests: striped CLFTJ-P must reproduce
//     single-thread CLFTJ and private CLFTJ-P bit for bit — counts, tuple
//     sets and factorized expansions — at 1/2/3/8 threads, unbounded and
//     under entry/byte budgets.
//   * A many-thread contention stress (the TSan target in CI): concurrent
//     lookup/insert churn over few stripes with a deterministic
//     key -> value function, so torn reads or lost updates surface as
//     value mismatches even without a race detector.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "clftj/cache.h"
#include "clftj/cached_trie_join.h"
#include "engine/sharded.h"
#include "query/patterns.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;
using ::clftj::testing::Q;

constexpr int kThreadCounts[] = {1, 2, 3, 8};

PackedKey PK(const Tuple& t) {
  return PackedKey::Pack(t.data(), static_cast<int>(t.size()));
}

CacheOptions Striped(std::uint64_t capacity = 0, int stripes = 0,
                     std::uint64_t capacity_bytes = 0) {
  CacheOptions options;
  options.sharing = CacheOptions::Sharing::kStriped;
  options.capacity = capacity;
  options.capacity_bytes = capacity_bytes;
  options.stripes = stripes;
  return options;
}

// --- StripedCacheManager unit tests ---------------------------------------

TEST(StripedCacheManager, MissThenHitCopiesPayloadOut) {
  StripedCacheManager<std::uint64_t> cache(2, Striped(), /*workers=*/4);
  std::uint64_t out = 0;
  EXPECT_FALSE(cache.Lookup(0, PK({5}), &out));
  cache.Insert(0, PK({5}), 42);
  ASSERT_TRUE(cache.Lookup(0, PK({5}), &out));
  EXPECT_EQ(out, 42u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(StripedCacheManager, NodesAreIsolated) {
  StripedCacheManager<std::uint64_t> cache(2, Striped(), 4);
  cache.Insert(0, PK({5}), 1);
  std::uint64_t out = 0;
  EXPECT_FALSE(cache.Lookup(1, PK({5}), &out))
      << "same key under another node must not hit";
}

TEST(StripedCacheManager, StripeBudgetsSumExactlyToGlobalCapacity) {
  // 100 entries over 8 stripes: 100/8 = 12 each with remainder 4 spread to
  // the first four stripes — no flooring slack, the slices *are* the
  // budget.
  StripedCacheManager<std::uint64_t> cache(2, Striped(100, /*stripes=*/8), 4);
  EXPECT_EQ(cache.stripe_count(), 8);
  std::uint64_t total = 0;
  for (const auto& [cap, cap_bytes] : cache.StripeBudgetsForTest()) {
    EXPECT_GE(cap, 1u) << "a bounded stripe with a zero slice would be "
                          "unbounded (0 means no limit)";
    EXPECT_EQ(cap_bytes, 0u);
    total += cap;
  }
  EXPECT_EQ(total, 100u);
}

TEST(StripedCacheManager, StripeByteBudgetsSumExactlyToGlobalBytes) {
  StripedCacheManager<std::uint64_t> cache(
      2, Striped(0, /*stripes=*/8, /*capacity_bytes=*/1001), 4);
  std::uint64_t total = 0;
  for (const auto& [cap, cap_bytes] : cache.StripeBudgetsForTest()) {
    EXPECT_EQ(cap, 0u);
    EXPECT_GE(cap_bytes, 1u);
    total += cap_bytes;
  }
  EXPECT_EQ(total, 1001u);
}

TEST(StripedCacheManager, StripeCountClampsToTinyBudgets) {
  // capacity 3 cannot feed 8 stripes at >= 1 entry each: the count halves
  // until every stripe's slice is positive.
  StripedCacheManager<std::uint64_t> tiny(2, Striped(3, /*stripes=*/8), 8);
  EXPECT_LE(tiny.stripe_count(), 2);
  std::uint64_t total = 0;
  for (const auto& [cap, cap_bytes] : tiny.StripeBudgetsForTest()) {
    EXPECT_GE(cap, 1u);
    total += cap;
  }
  EXPECT_EQ(total, 3u);
}

TEST(StripedCacheManager, ChooseStripesPolicy) {
  // Auto: smallest power of two >= 2x workers, in [1, 64].
  EXPECT_EQ(StripedCacheManager<std::uint64_t>::ChooseStripes(Striped(), 1),
            2);
  EXPECT_EQ(StripedCacheManager<std::uint64_t>::ChooseStripes(Striped(), 4),
            8);
  EXPECT_EQ(StripedCacheManager<std::uint64_t>::ChooseStripes(Striped(), 48),
            64);
  // Explicit request wins, rounded up to a power of two.
  EXPECT_EQ(
      StripedCacheManager<std::uint64_t>::ChooseStripes(Striped(0, 5), 1), 8);
  // The budget clamp applies to explicit requests too.
  EXPECT_EQ(
      StripedCacheManager<std::uint64_t>::ChooseStripes(Striped(2, 16), 4),
      2);
}

TEST(StripedCacheManager, GlobalEntryBudgetHoldsUnderEvictionChurn) {
  const std::uint64_t capacity = 32;
  StripedCacheManager<std::uint64_t> cache(2, Striped(capacity, 4), 4);
  for (Value k = 0; k < 1000; ++k) {
    cache.Insert(0, PK({k}), static_cast<std::uint64_t>(k));
    EXPECT_LE(cache.size(), capacity);
  }
  const ExecStats stats = cache.AggregatedStats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LE(stats.cache_entries_peak, capacity)
      << "summed per-stripe peaks exceed the summed per-stripe budgets";
}

TEST(StripedCacheManager, AggregatedStatsSumStripeCounters) {
  StripedCacheManager<std::uint64_t> cache(2, Striped(0, 4), 4);
  std::uint64_t out;
  const int kKeys = 100;
  for (Value k = 0; k < kKeys; ++k) EXPECT_FALSE(cache.Lookup(0, PK({k}), &out));
  for (Value k = 0; k < kKeys; ++k) cache.Insert(0, PK({k}), 1);
  for (Value k = 0; k < kKeys; ++k) EXPECT_TRUE(cache.Lookup(0, PK({k}), &out));
  const ExecStats stats = cache.AggregatedStats();
  EXPECT_EQ(stats.cache_misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.cache_hits, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.cache_inserts, static_cast<std::uint64_t>(kKeys));
  EXPECT_GT(stats.memory_accesses, 0u);
}

// --- Randomized differential tests ----------------------------------------

struct Instance {
  Query query;
  Database db;
};

Instance MakeInstance(std::uint64_t seed) {
  Rng rng(seed * 9341 + 17);
  const int num_vars = 3 + static_cast<int>(rng.Uniform(4));  // 3..6
  const double p = 0.35 + 0.1 * static_cast<double>(rng.Uniform(5));
  Instance inst{RandomPatternQuery(num_vars, p, seed + 1), Database()};
  const int nodes = 25 + static_cast<int>(rng.Uniform(40));
  if (rng.Flip(0.5)) {
    inst.db.Put(PreferentialAttachmentGraph(
        "E", nodes, 2 + static_cast<int>(rng.Uniform(3)), seed + 2));
  } else {
    inst.db.Put(NearRegularGraph("E", nodes, nodes * 2, seed + 2));
  }
  return inst;
}

ShardedCachedTrieJoin MakeSharded(int threads, CacheOptions cache) {
  ShardedCachedTrieJoin::Options options;
  options.threads = threads;
  options.cache = cache;
  return ShardedCachedTrieJoin(options);
}

class StripedDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StripedDifferentialTest, CountsMatchPrivateAndSingleThread) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin single;
  const std::uint64_t anchor = single.Count(inst.query, inst.db, {}).count;
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin striped = MakeSharded(threads, Striped());
    const RunResult got = striped.Count(inst.query, inst.db, {});
    EXPECT_EQ(got.count, anchor)
        << inst.query.ToString() << " threads=" << threads;
    EXPECT_TRUE(got.ok());
    ShardedCachedTrieJoin priv = MakeSharded(threads, CacheOptions{});
    EXPECT_EQ(priv.Count(inst.query, inst.db, {}).count, anchor)
        << inst.query.ToString() << " threads=" << threads;
  }
}

TEST_P(StripedDifferentialTest, TupleSetsMatchSingleThread) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin single;
  const std::vector<Tuple> anchor = CollectTuples(single, inst.query, inst.db);
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin striped = MakeSharded(threads, Striped());
    EXPECT_EQ(CollectTuples(striped, inst.query, inst.db), anchor)
        << inst.query.ToString() << " threads=" << threads;
  }
}

TEST_P(StripedDifferentialTest, FactorizedExpansionMatchesSingleThread) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin single;
  RunResult single_run;
  const auto anchor =
      single.EvaluateFactorized(inst.query, inst.db, {}, &single_run);
  ASSERT_TRUE(anchor.has_value());
  std::vector<Tuple> anchor_tuples;
  anchor->Enumerate([&](const Tuple& t) { anchor_tuples.push_back(t); });
  std::sort(anchor_tuples.begin(), anchor_tuples.end());
  for (const int threads : kThreadCounts) {
    ShardedCachedTrieJoin striped = MakeSharded(threads, Striped());
    RunResult run;
    const auto got =
        striped.EvaluateFactorized(inst.query, inst.db, {}, &run);
    ASSERT_TRUE(got.has_value()) << "threads=" << threads;
    EXPECT_EQ(got->Count(), anchor->Count()) << "threads=" << threads;
    std::vector<Tuple> got_tuples;
    got->Enumerate([&](const Tuple& t) { got_tuples.push_back(t); });
    std::sort(got_tuples.begin(), got_tuples.end());
    EXPECT_EQ(got_tuples, anchor_tuples) << "threads=" << threads;
  }
}

TEST_P(StripedDifferentialTest, BoundedStripedCacheStaysCorrect) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin single;
  const std::uint64_t anchor = single.Count(inst.query, inst.db, {}).count;
  for (const int threads : kThreadCounts) {
    // A tight global entry budget (forces eviction churn in every stripe)
    // and a tight byte budget must both preserve the result.
    ShardedCachedTrieJoin tight = MakeSharded(threads, Striped(16));
    EXPECT_EQ(tight.Count(inst.query, inst.db, {}).count, anchor)
        << inst.query.ToString() << " threads=" << threads;
    ShardedCachedTrieJoin bytes =
        MakeSharded(threads, Striped(0, 0, /*capacity_bytes=*/2048));
    EXPECT_EQ(bytes.Count(inst.query, inst.db, {}).count, anchor)
        << inst.query.ToString() << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StripedDifferentialTest,
                         ::testing::Range(0, 12));

// --- Engine-level budget pins ---------------------------------------------

TEST(StripedSharing, BytePeakStaysWithinGlobalBudget) {
  Database db = testing::SmallSkewedDb(19, /*nodes=*/70, /*edges_per_node=*/3);
  const Query q = CycleQuery(4);
  const std::uint64_t budget = 16 * 1024;
  ShardedCachedTrieJoin striped =
      MakeSharded(4, Striped(0, 0, /*capacity_bytes=*/budget));
  RunResult run;
  const auto got = striped.EvaluateFactorized(q, db, {}, &run);
  ASSERT_TRUE(got.has_value());
  EXPECT_GT(run.stats.cache_inserts, 0u);
  EXPECT_LE(run.stats.cache_bytes_peak, budget)
      << "summed per-stripe byte peaks must stay within the summed "
         "per-stripe budgets = the global budget";
}

TEST(StripedSharing, EntryPeakStaysWithinGlobalBudget) {
  Database db = testing::SmallSkewedDb(23, /*nodes=*/70, /*edges_per_node=*/3);
  const Query q = CycleQuery(5);
  const std::uint64_t capacity = 64;
  ShardedCachedTrieJoin striped = MakeSharded(4, Striped(capacity));
  const RunResult got = striped.Count(q, db, {});
  EXPECT_TRUE(got.ok());
  EXPECT_GT(got.stats.cache_inserts, 0u);
  EXPECT_LE(got.stats.cache_entries_peak, capacity);
}

TEST(StripedSharing, SharedTableClosesTheMemoryAccessGap) {
  // The whole point of kStriped: shards reuse each other's subtree results
  // instead of recomputing them, so the summed memory accesses of a
  // parallel run come back down toward (and must at least beat) the
  // private-cache configuration on a cache-friendly workload.
  Database db = testing::SmallSkewedDb(31, /*nodes=*/90, /*edges_per_node=*/4);
  const Query q = CycleQuery(5);
  CachedTrieJoin single;
  const RunResult anchor = single.Count(q, db, {});
  ASSERT_GT(anchor.stats.cache_hits, 0u) << "workload must exercise the cache";

  const int threads = 4;
  const RunResult priv = MakeSharded(threads, CacheOptions{}).Count(q, db, {});
  const RunResult striped = MakeSharded(threads, Striped()).Count(q, db, {});
  EXPECT_EQ(priv.count, anchor.count);
  EXPECT_EQ(striped.count, anchor.count);
  EXPECT_LT(striped.stats.memory_accesses, priv.stats.memory_accesses)
      << "shared striped table must beat private capacity/K caches";
}

TEST(StripedSharing, TimeoutPropagates) {
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 800, 5, /*seed=*/3));
  const Query q = CycleQuery(5);
  RunLimits limits;
  limits.timeout_seconds = 1e-9;  // expires at the first stride sample
  ShardedCachedTrieJoin striped = MakeSharded(4, Striped());
  const RunResult got = striped.Count(q, db, limits);
  EXPECT_TRUE(got.timed_out);
  EXPECT_FALSE(got.ok());
}

// --- Contention stress (the TSan target) ----------------------------------

TEST(StripedStress, ConcurrentChurnKeepsValuesConsistent) {
  // 8 threads hammer a 2-stripe bounded table over a small key range, so
  // every operation contends and eviction churns constantly. Values are a
  // deterministic function of the key: any hit returning something else
  // means a torn read, a lost update or cross-key corruption. Run under
  // TSan in CI (see .github/workflows/ci.yml).
  const auto value_of = [](NodeId node, Value k) {
    return static_cast<std::uint64_t>(node) * 0x9E3779B97F4A7C15ull +
           static_cast<std::uint64_t>(k) * 0xC2B2AE3D27D4EB4Full;
  };
  StripedCacheManager<std::uint64_t> cache(4, Striped(24, /*stripes=*/2), 8);
  ASSERT_EQ(cache.stripe_count(), 2);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  constexpr Value kKeyRange = 64;
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const NodeId node = static_cast<NodeId>(rng.Uniform(4));
        const Value k = static_cast<Value>(rng.Uniform(kKeyRange));
        const Value pair[2] = {k, k + 1};
        const PackedKey key = PackedKey::Pack(pair, 2);
        std::uint64_t out = 0;
        if (cache.Lookup(node, key, &out)) {
          if (out != value_of(node, k)) bad.fetch_add(1);
        } else {
          cache.Insert(node, key, value_of(node, k));
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_LE(cache.size(), 24u);
  const ExecStats stats = cache.AggregatedStats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(stats.cache_entries_peak, 24u);
}

// --- Lock-free hot-read path (seqlock slots) ------------------------------

TEST(StripedCacheManager, HotReadsServeSameValuesAsLockedPath) {
  StripedCacheManager<std::uint64_t> cache(2, Striped(), /*workers=*/4,
                                           /*hot_reads=*/true);
  ASSERT_TRUE(cache.hot_reads_enabled());
  for (Value k = 0; k < 32; ++k) {
    cache.Insert(0, PK({k, k + 1}), static_cast<std::uint64_t>(k) * 3 + 1);
  }
  // Inserts publish to the hot slots, so re-reads can resolve without the
  // stripe mutex — and must return exactly the locked path's values.
  std::uint64_t out = 0;
  for (int round = 0; round < 3; ++round) {
    for (Value k = 0; k < 32; ++k) {
      ASSERT_TRUE(cache.Lookup(0, PK({k, k + 1}), &out));
      EXPECT_EQ(out, static_cast<std::uint64_t>(k) * 3 + 1);
    }
  }
  EXPECT_GT(cache.HotHits(), 0u);
}

TEST(StripedCacheManager, EvictIfClearsHotSlots) {
  // Targeted invalidation must reach the hot slots: a seqlock read serving
  // an entry EvictIf removed would resurrect stale pre-delta state.
  StripedCacheManager<std::uint64_t> cache(1, Striped(), /*workers=*/4,
                                           /*hot_reads=*/true);
  cache.Insert(0, PK({7, 8}), 99);
  std::uint64_t out = 0;
  ASSERT_TRUE(cache.Lookup(0, PK({7, 8}), &out));  // hot after this
  cache.EvictIf([](NodeId, const Value*, int) { return true; });
  EXPECT_FALSE(cache.Lookup(0, PK({7, 8}), &out));
}

TEST(StripedStress, HotReadsEightThreadsAgainstWriterChurn) {
  // 8 readers hammer a hot key set through the seqlock path while a writer
  // keeps inserting (publishing) and bulk-evicting (clearing hot slots).
  // Values are a deterministic function of the key, so a torn seqlock read
  // or a stale post-evict hot hit surfaces as a value mismatch. Run under
  // TSan in CI (see .github/workflows/ci.yml).
  const auto value_of = [](Value k) {
    return static_cast<std::uint64_t>(k) * 0xC2B2AE3D27D4EB4Full + 5;
  };
  StripedCacheManager<std::uint64_t> cache(2, Striped(0, /*stripes=*/2), 8,
                                           /*hot_reads=*/true);
  constexpr Value kKeyRange = 48;
  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(2000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const Value k = static_cast<Value>(rng.Uniform(kKeyRange));
        const Value pair[2] = {k, k + 1};
        std::uint64_t out = 0;
        if (cache.Lookup(0, PackedKey::Pack(pair, 2), &out)) {
          if (out != value_of(k)) bad.fetch_add(1);
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int round = 0; round < 400; ++round) {
    for (Value k = 0; k < kKeyRange; ++k) {
      const Value pair[2] = {k, k + 1};
      cache.Insert(0, PackedKey::Pack(pair, 2), value_of(k));
    }
    if (round % 16 == 15) {
      cache.EvictIf([](NodeId, const Value*, int) { return true; });
    }
  }
  // Leave the cache warm and keep readers spinning until the fast path has
  // provably engaged: on a single core the churn loop above can finish (its
  // last round evicts everything) before any reader was ever scheduled.
  for (Value k = 0; k < kKeyRange; ++k) {
    const Value pair[2] = {k, k + 1};
    cache.Insert(0, PackedKey::Pack(pair, 2), value_of(k));
  }
  for (int spin = 0; spin < 5000 && (hits.load() == 0 || cache.HotHits() == 0);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(hits.load(), 0u);
  EXPECT_GT(cache.HotHits(), 0u) << "seqlock fast path never engaged";
}

TEST(StripedStress, ManyThreadEngineRunsStayCorrect) {
  // End-to-end contention: 8 workers over one striped table with a tight
  // budget, repeated; each run must reproduce the single-thread count.
  Database db = testing::SmallSkewedDb(47, /*nodes=*/80, /*edges_per_node=*/3);
  const Query q = CycleQuery(5);
  CachedTrieJoin single;
  const std::uint64_t anchor = single.Count(q, db, {}).count;
  for (int round = 0; round < 3; ++round) {
    ShardedCachedTrieJoin striped = MakeSharded(8, Striped(32, /*stripes=*/2));
    EXPECT_EQ(striped.Count(q, db, {}).count, anchor) << "round " << round;
  }
}

}  // namespace
}  // namespace clftj
