#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "data/snap_profiles.h"
#include "engine/engine.h"
#include "query/patterns.h"
#include "tests/test_util.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;
using ::clftj::testing::Q;

TEST(EngineFactory, AllNamesConstruct) {
  for (const std::string& name : EngineNames()) {
    const auto engine = MakeEngine(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->name(), name);
  }
  EXPECT_EQ(MakeEngine("NoSuchEngine"), nullptr);
}

// Cross-engine agreement on a downscaled version of each SNAP profile.
// (Profiles themselves are too large for the exponential reference, so the
// engines are checked against each other — LFTJ acts as the anchor, and is
// itself checked against the nested-loop reference in lftj_test.)
class CrossEngineTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

Query IntegrationQuery(int index) {
  switch (index) {
    case 0: return PathQuery(4);
    case 1: return CycleQuery(4);
    case 2: return CycleQuery(5);
    case 3: return RandomPatternQuery(5, 0.4, 11);
    default: return LollipopQuery(3, 2);
  }
}

Database ScaledDb(const std::string& label) {
  DatasetProfile profile = SnapProfileByLabel(label);
  profile.num_nodes = std::max(60, profile.num_nodes / 10);
  if (profile.balanced) profile.param = profile.param / 10;
  return MakeSnapDatabase(profile);
}

TEST_P(CrossEngineTest, AllEnginesAgreeOnCount) {
  const auto [label, query_index] = GetParam();
  const Database db = ScaledDb(label);
  const Query q = IntegrationQuery(query_index);
  const std::uint64_t anchor = MakeEngine("LFTJ")->Count(q, db, {}).count;
  for (const std::string& name :
       {std::string("CLFTJ"), std::string("YTD"), std::string("PairwiseHJ"),
        std::string("GenericJoin")}) {
    const auto engine = MakeEngine(name);
    EXPECT_EQ(engine->Count(q, db, {}).count, anchor)
        << name << " on " << q.ToString() << " over " << label;
  }
}

TEST_P(CrossEngineTest, EvalEnginesAgreeOnTuples) {
  const auto [label, query_index] = GetParam();
  const Database db = ScaledDb(label);
  const Query q = IntegrationQuery(query_index);
  const auto lftj = MakeEngine("LFTJ");
  const auto anchor = CollectTuples(*lftj, q, db);
  for (const std::string& name : {std::string("CLFTJ"), std::string("YTD")}) {
    const auto engine = MakeEngine(name);
    EXPECT_EQ(CollectTuples(*engine, q, db), anchor)
        << name << " on " << q.ToString() << " over " << label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndQueries, CrossEngineTest,
    ::testing::Combine(::testing::Values("wiki-Vote", "p2p-Gnutella04",
                                         "ca-GrQc", "ego-Facebook"),
                       ::testing::Range(0, 5)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      std::string label = std::get<0>(info.param);
      for (char& c : label) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return label + "_q" + std::to_string(std::get<1>(info.param));
    });

TEST(Integration, ImdbCycleQueriesAgreeAcrossEngines) {
  Database db = MakeImdbDatabase();
  // Shrink for test runtime: resample smaller tables.
  db = Database();
  db.Put(BipartiteZipf("MC", 300, 200, 1500, 1.1, 0.35, 91));
  db.Put(BipartiteZipf("FC", 300, 200, 1500, 1.1, 0.35, 92));
  const Query q4 =
      Q("MC(p1,m1), FC(p2,m1), FC(p2,m2), MC(p1,m2)");
  const std::uint64_t anchor = MakeEngine("LFTJ")->Count(q4, db, {}).count;
  EXPECT_GT(anchor, 0u);
  EXPECT_EQ(MakeEngine("CLFTJ")->Count(q4, db, {}).count, anchor);
  EXPECT_EQ(MakeEngine("YTD")->Count(q4, db, {}).count, anchor);
}

TEST(Integration, ClftjBeatsLftjOnMemoryTrafficForSkewedPaths) {
  // The intro-level claim of the paper at test scale: on a skewed dataset,
  // CLFTJ generates a fraction of LFTJ's memory accesses for path queries.
  const Database db = ScaledDb("wiki-Vote");
  const Query q = PathQuery(5);
  const auto lftj = MakeEngine("LFTJ")->Count(q, db, {});
  const auto clftj = MakeEngine("CLFTJ")->Count(q, db, {});
  ASSERT_EQ(lftj.count, clftj.count);
  EXPECT_LT(clftj.stats.memory_accesses, lftj.stats.memory_accesses / 2);
}

TEST(Integration, TimeoutShapesMatchPaperProtocol) {
  // A run that times out must say so and still return cleanly.
  const Database db = MakeSnapDatabase(SnapProfileByLabel("wiki-Vote"));
  RunLimits limits;
  limits.timeout_seconds = 0.05;
  const auto r = MakeEngine("LFTJ")->Count(PathQuery(7), db, limits);
  EXPECT_TRUE(r.timed_out);
  EXPECT_GT(r.seconds, 0.0);
}

}  // namespace
}  // namespace clftj
