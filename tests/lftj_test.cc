#include <gtest/gtest.h>

#include <numeric>

#include "lftj/trie_join.h"
#include "query/patterns.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;
using ::clftj::testing::Q;
using ::clftj::testing::ReferenceCount;
using ::clftj::testing::ReferenceTuples;
using ::clftj::testing::SmallBalancedDb;
using ::clftj::testing::SmallSkewedDb;

TEST(Lftj, TriangleCountOnTinyGraph) {
  Database db;
  Relation e("E", 2);
  // A triangle 1-2-3 plus a pendant edge, symmetric closure.
  for (const auto& [a, b] : std::vector<std::pair<Value, Value>>{
           {1, 2}, {2, 3}, {1, 3}, {3, 4}}) {
    e.AddPair(a, b);
    e.AddPair(b, a);
  }
  db.Put(std::move(e));
  LeapfrogTrieJoin lftj;
  // Each undirected triangle is counted 6 times (orderings).
  EXPECT_EQ(lftj.Count(CliqueQuery(3), db, {}).count, 6u);
}

TEST(Lftj, PathCountMatchesHandComputation) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  e.AddPair(2, 4);
  db.Put(std::move(e));
  LeapfrogTrieJoin lftj;
  // Directed 2-paths: 1->2->3, 1->2->4.
  EXPECT_EQ(lftj.Count(Q("E(x,y), E(y,z)"), db, {}).count, 2u);
}

TEST(Lftj, CountMatchesReferenceOnQueryZoo) {
  const Database skewed = SmallSkewedDb(5);
  const Database balanced = SmallBalancedDb(6);
  LeapfrogTrieJoin lftj;
  for (const Database* db : {&skewed, &balanced}) {
    for (const Query& q :
         {PathQuery(3), PathQuery(4), CycleQuery(3), CycleQuery(4),
          LollipopQuery(3, 1), RandomPatternQuery(4, 0.5, 3)}) {
      EXPECT_EQ(lftj.Count(q, *db, {}).count, ReferenceCount(q, *db))
          << q.ToString();
    }
  }
}

TEST(Lftj, EvaluateMatchesReferenceTuples) {
  const Database db = SmallSkewedDb(11, 40, 2);
  LeapfrogTrieJoin lftj;
  for (const Query& q : {PathQuery(3), CycleQuery(4)}) {
    EXPECT_EQ(CollectTuples(lftj, q, db), ReferenceTuples(q, db))
        << q.ToString();
  }
}

TEST(Lftj, CountInvariantUnderVariableOrder) {
  const Database db = SmallSkewedDb(13, 50, 3);
  const Query q = CycleQuery(4);
  std::vector<VarId> order(q.num_vars());
  std::iota(order.begin(), order.end(), 0);
  const std::uint64_t expected =
      LeapfrogTrieJoin().Count(q, db, {}).count;
  // All 24 permutations must give the same count.
  std::sort(order.begin(), order.end());
  do {
    LeapfrogTrieJoin::Options options;
    options.order = order;
    LeapfrogTrieJoin engine(options);
    EXPECT_EQ(engine.Count(q, db, {}).count, expected);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(Lftj, EmptyRelationYieldsZero) {
  Database db;
  db.Put(Relation("E", 2));
  LeapfrogTrieJoin lftj;
  EXPECT_EQ(lftj.Count(PathQuery(3), db, {}).count, 0u);
}

TEST(Lftj, ConstantsInAtoms) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(1, 3);
  e.AddPair(2, 3);
  db.Put(std::move(e));
  LeapfrogTrieJoin lftj;
  EXPECT_EQ(lftj.Count(Q("E(1,y), E(y,z)"), db, {}).count, 1u);  // 1->2->3
  EXPECT_EQ(lftj.Count(Q("E(x,y), E(1,2)"), db, {}).count, 3u);  // guard true
  EXPECT_EQ(lftj.Count(Q("E(x,y), E(3,1)"), db, {}).count, 0u);  // guard false
}

TEST(Lftj, RepeatedVariableInAtom) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 1);
  e.AddPair(1, 2);
  e.AddPair(2, 2);
  db.Put(std::move(e));
  LeapfrogTrieJoin lftj;
  // Self loops joined with outgoing edges.
  const std::uint64_t got = lftj.Count(Q("E(x,x), E(x,y)"), db, {}).count;
  EXPECT_EQ(got, ReferenceCount(Q("E(x,x), E(x,y)"), db));
  EXPECT_EQ(got, 3u);  // (1,1),(1,2),(2,2)
}

TEST(Lftj, DisconnectedQueryIsCrossProduct) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(3, 4);
  db.Put(std::move(e));
  LeapfrogTrieJoin lftj;
  EXPECT_EQ(lftj.Count(Q("E(a,b), E(c,d)"), db, {}).count, 4u);
}

TEST(Lftj, SelfJoinWithTwoRelations) {
  Database db;
  Relation r("R", 2);
  r.AddPair(1, 2);
  r.AddPair(2, 3);
  db.Put(std::move(r));
  Relation s("S", 2);
  s.AddPair(2, 9);
  db.Put(std::move(s));
  LeapfrogTrieJoin lftj;
  EXPECT_EQ(lftj.Count(Q("R(x,y), S(y,z)"), db, {}).count, 1u);
}

TEST(Lftj, TernaryRelation) {
  Database db;
  Relation t("T", 3);
  t.Add({1, 2, 3});
  t.Add({1, 2, 4});
  t.Add({2, 2, 3});
  db.Put(std::move(t));
  LeapfrogTrieJoin lftj;
  const Query q = Q("T(a,b,c), T(c,b,d)");
  EXPECT_EQ(lftj.Count(q, db, {}).count, ReferenceCount(q, db));
}

TEST(Lftj, TimeoutReportsPartialRun) {
  const Database db = SmallSkewedDb(17, 200, 8);
  LeapfrogTrieJoin lftj;
  RunLimits limits;
  limits.timeout_seconds = 1e-9;  // expire immediately
  const RunResult r = lftj.Count(PathQuery(6), db, limits);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.ok());
}

TEST(Lftj, StatsCountOutputsAndAccesses) {
  const Database db = SmallSkewedDb(19, 40, 2);
  LeapfrogTrieJoin lftj;
  const RunResult r = lftj.Count(PathQuery(3), db, {});
  EXPECT_EQ(r.stats.output_tuples, r.count);
  EXPECT_GT(r.stats.memory_accesses, 0u);
}

TEST(Lftj, EvaluateEmitsVarIdIndexedTuples) {
  Database db;
  Relation e("E", 2);
  e.AddPair(7, 8);
  db.Put(std::move(e));
  LeapfrogTrieJoin lftj;
  const Query q = Q("E(x,y)");
  std::vector<Tuple> got;
  lftj.Evaluate(q, db, [&got](const Tuple& t) { got.push_back(t); }, {});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0][q.FindVariable("x")], 7);
  EXPECT_EQ(got[0][q.FindVariable("y")], 8);
}

}  // namespace
}  // namespace clftj
