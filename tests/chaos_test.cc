// Chaos suite: deterministic fault injection against the serving loop.
//
// The invariants under test, per ISSUE: whatever faults fire, the service
// (a) never crashes or hangs, (b) answers every request with a typed
// RunStatus, and (c) a retry after a transient fault reproduces the
// fault-free result bit-identically.

#include <algorithm>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "server/service.h"
#include "test_util.h"
#include "util/fault.h"

namespace clftj {
namespace {

constexpr const char* kTriangle = "E(x,y), E(y,z), E(z,x)";
// A triangle's tree decomposition is a single bag — CLFTJ has nothing to
// cache or maintain for it. The 4-cycle decomposes into two bags, so it
// drives the cache-insert and materialize sites.
constexpr const char* kFourCycle = "E(x,y), E(y,z), E(z,w), E(w,x)";

fault::Config FaultAt(fault::Site site, std::uint64_t period,
                      std::uint64_t seed = 99) {
  fault::Config config;
  config.seed = seed;
  config.period[static_cast<int>(site)] = period;
  return config;
}

TEST(FaultInjection, DisabledByDefaultAndCostsNothing) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::Fire(fault::Site::kTrieBuild));
}

TEST(FaultInjection, EqualConfigsReplayEqualPatterns) {
  std::vector<bool> first, second;
  {
    fault::ScopedFaults scoped(FaultAt(fault::Site::kCacheInsert, 4));
    for (int i = 0; i < 256; ++i) {
      first.push_back(fault::Fire(fault::Site::kCacheInsert));
    }
  }
  {
    fault::ScopedFaults scoped(FaultAt(fault::Site::kCacheInsert, 4));
    for (int i = 0; i < 256; ++i) {
      second.push_back(fault::Fire(fault::Site::kCacheInsert));
    }
  }
  EXPECT_EQ(first, second);
  const auto fired = std::count(first.begin(), first.end(), true);
  // Period 4 fires ~1/4 of opportunities on a pseudo-random pattern.
  EXPECT_GT(fired, 256 / 8);
  EXPECT_LT(fired, 256 / 2);
}

TEST(FaultInjection, DifferentSeedsDiffer) {
  std::vector<bool> a, b;
  {
    fault::ScopedFaults scoped(FaultAt(fault::Site::kCacheInsert, 4, 1));
    for (int i = 0; i < 256; ++i)
      a.push_back(fault::Fire(fault::Site::kCacheInsert));
  }
  {
    fault::ScopedFaults scoped(FaultAt(fault::Site::kCacheInsert, 4, 2));
    for (int i = 0; i < 256; ++i)
      b.push_back(fault::Fire(fault::Site::kCacheInsert));
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjection, ScopedFaultsRestoresDisabledState) {
  ASSERT_FALSE(fault::Enabled());
  {
    fault::ScopedFaults scoped(FaultAt(fault::Site::kTrieBuild, 1));
    EXPECT_TRUE(fault::Enabled());
  }
  EXPECT_FALSE(fault::Enabled());
}

// (c) above, for the graceful-degradation site: dropped cache inserts may
// cost hit rate but never correctness — results stay bit-identical.
TEST(Chaos, CacheInsertFaultsKeepResultsBitIdentical) {
  const Database db = testing::SmallSkewedDb(31, /*nodes=*/200,
                                             /*edges_per_node=*/5);
  const Query q = testing::Q(kFourCycle);
  const auto clean_engine = MakeEngine("CLFTJ");
  const std::vector<Tuple> want =
      testing::CollectTuples(*clean_engine, q, db);
  const std::uint64_t want_count =
      clean_engine->Count(q, db, RunLimits{}).count;

  fault::ScopedFaults scoped(FaultAt(fault::Site::kCacheInsert, 2));
  const auto faulty_engine = MakeEngine("CLFTJ");
  const RunResult count = faulty_engine->Count(q, db, RunLimits{});
  EXPECT_EQ(count.status, RunStatus::kOk);
  EXPECT_EQ(count.count, want_count);
  EXPECT_GT(fault::Fired(fault::Site::kCacheInsert), 0u)
      << "fault site never consulted — the test is vacuous";
  const auto eval_engine = MakeEngine("CLFTJ");
  EXPECT_EQ(testing::CollectTuples(*eval_engine, q, db), want);
}

TEST(Chaos, CacheInsertFaultsKeepShardedResultsBitIdentical) {
  const Database db = testing::SmallSkewedDb(31, /*nodes=*/200,
                                             /*edges_per_node=*/5);
  const Query q = testing::Q(kFourCycle);
  const std::uint64_t want = testing::ReferenceCount(q, db);
  fault::ScopedFaults scoped(FaultAt(fault::Site::kCacheInsert, 2));
  EngineOptions options;
  options.threads = 4;
  const auto engine = MakeEngine("CLFTJ-P", options);
  const RunResult result = engine->Count(q, db, RunLimits{});
  EXPECT_EQ(result.status, RunStatus::kOk);
  EXPECT_EQ(result.count, want);
}

// Trie-build allocation failures surface as a typed retryable kInternal
// through the service, and a later attempt (fault pattern moved on)
// returns the fault-free answer.
TEST(Chaos, TrieBuildFaultIsTypedInternalAndRetryable) {
  const Database db = testing::SmallSkewedDb(7);
  // Reuse off: with the substrate registry on, the first clean build gets
  // cached and later iterations present no trie-build fault opportunities,
  // so the period-3 fault could never fire again.
  ServiceOptions options;
  options.reuse.enabled = false;
  QueryService service(db, options);
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  QueryRequest request;
  request.query_text = kTriangle;

  fault::ScopedFaults scoped(FaultAt(fault::Site::kTrieBuild, 3));
  bool saw_internal = false;
  bool saw_ok = false;
  for (int i = 0; i < 32 && !(saw_internal && saw_ok); ++i) {
    const QueryResponse response = service.Execute(request);
    if (response.status == RunStatus::kInternal) {
      saw_internal = true;
      EXPECT_TRUE(IsRetryable(response.status));
      EXPECT_FALSE(response.message.empty());
    } else {
      ASSERT_EQ(response.status, RunStatus::kOk);
      EXPECT_EQ(response.count, want) << "post-fault retry must be "
                                         "bit-identical to fault-free";
      saw_ok = true;
    }
  }
  EXPECT_TRUE(saw_internal) << "period-3 trie fault never fired in 32 runs";
  EXPECT_TRUE(saw_ok);
}

TEST(Chaos, DeadlineFaultIsTypedTimeout) {
  const Database db = testing::SmallSkewedDb(7, /*nodes=*/200,
                                             /*edges_per_node=*/5);
  QueryService service(db, ServiceOptions{});
  QueryRequest request;
  request.query_text = kTriangle;
  request.timeout_ms = 60000;  // a real timeout must not be the cause
  fault::ScopedFaults scoped(FaultAt(fault::Site::kDeadlineTrip, 1));
  const QueryResponse response = service.Execute(request);
  EXPECT_EQ(response.status, RunStatus::kTimeout);
  EXPECT_FALSE(IsRetryable(response.status));
}

TEST(Chaos, MaterializeFaultIsTypedOutOfMemory) {
  const Database db = testing::SmallSkewedDb(7, /*nodes=*/200,
                                             /*edges_per_node=*/5);
  QueryService service(db, ServiceOptions{});
  QueryRequest request;
  request.query_text = kFourCycle;  // multi-bag plan: EvalRun materializes
  request.mode = "eval";  // the materialize site sits in CLFTJ's EvalRun
  fault::ScopedFaults scoped(FaultAt(fault::Site::kMaterialize, 1));
  const QueryResponse response = service.Execute(request);
  EXPECT_EQ(response.status, RunStatus::kOutOfMemory);
  EXPECT_TRUE(response.tuples.empty());
}

// The full loop: worker delays build queue pressure, admission sheds, the
// client backs off and retries, and the answer it finally gets is the
// fault-free one.
TEST(Chaos, RetryAfterShedIsBitIdenticalToFaultFree) {
  const Database db = testing::SmallSkewedDb(23);
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.retry_after_ms = 10;
  QueryService service(db, options);
  fault::Config faults = FaultAt(fault::Site::kWorkerDelay, 2);
  faults.delay_ms = 30;
  fault::ScopedFaults scoped(faults);

  QueryRequest request;
  request.query_text = kTriangle;
  int sheds = 0;
  for (int i = 0; i < 40; ++i) {
    const QueryResponse response = service.Execute(request);
    if (response.status == RunStatus::kShed) {
      ++sheds;
      continue;
    }
    ASSERT_EQ(response.status, RunStatus::kOk) << "iteration " << i;
    ASSERT_EQ(response.count, want) << "iteration " << i;
  }
  // Synchronous Execute can't overfill the queue by itself; sheds come
  // from concurrent pressure, so don't require them here — the invariant
  // is that every response is typed OK or SHED and OKs are exact.
  (void)sheds;
}

// Corrupted request bytes over a real socket: typed BAD-QUERY, stream
// survives, and once the fault pattern passes the request succeeds with
// the fault-free answer.
TEST(Chaos, CorruptedRequestBytesSurfaceAsBadQueryOverTheSocket) {
  const Database db = testing::SmallSkewedDb(19);
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);
  QueryService service(db, ServiceOptions{});
  QueryServer server(&service);
  const std::string socket_path =
      "/tmp/clftj_chaos_" + std::to_string(getpid()) + ".sock";
  std::string error;
  ASSERT_TRUE(server.Start(socket_path, &error)) << error;

  {
    fault::ScopedFaults scoped(FaultAt(fault::Site::kRequestBytes, 2));
    ClientOptions client_options;
    client_options.max_attempts = 1;  // observe each raw outcome
    QueryClient client(socket_path, client_options);
    QueryRequest request;
    request.query_text = kTriangle;
    int bad = 0, ok = 0;
    for (int i = 0; i < 24; ++i) {
      const ClientResult result = client.Run(request);
      ASSERT_TRUE(result.transport_ok)
          << "corruption must parse-fail, not break framing: "
          << result.transport_error;
      if (result.response.status == RunStatus::kBadQuery) {
        ++bad;
      } else {
        ASSERT_EQ(result.response.status, RunStatus::kOk);
        ASSERT_EQ(result.response.count, want);
        ++ok;
      }
    }
    EXPECT_GT(bad, 0) << "period-2 corruption never fired in 24 requests";
    EXPECT_GT(ok, 0) << "corruption fired on every request";
  }
  server.Stop();
  service.Shutdown(true);
  std::remove(socket_path.c_str());
}

// Everything at once: all six sites armed against a served workload. The
// assertions are exactly the resilience contract — no crash, no hang
// (ctest enforces the timeout), every response typed, every OK exact.
TEST(Chaos, AllSitesArmedEveryResponseIsTypedAndOksAreExact) {
  const Database db = testing::SmallSkewedDb(29, /*nodes=*/150,
                                             /*edges_per_node=*/4);
  const std::uint64_t want =
      testing::ReferenceCount(testing::Q(kTriangle), db);

  fault::Config faults;
  faults.seed = 1234;
  faults.period[static_cast<int>(fault::Site::kTrieBuild)] = 7;
  faults.period[static_cast<int>(fault::Site::kCacheInsert)] = 3;
  faults.period[static_cast<int>(fault::Site::kMaterialize)] = 11;
  faults.period[static_cast<int>(fault::Site::kDeadlineTrip)] = 13;
  faults.period[static_cast<int>(fault::Site::kWorkerDelay)] = 5;
  faults.delay_ms = 2;
  fault::ScopedFaults scoped(faults);

  ServiceOptions options;
  options.workers = 2;
  options.queue_capacity = 4;
  QueryService service(db, options);
  QueryRequest request;
  request.query_text = kTriangle;

  int ok = 0;
  for (int i = 0; i < 60; ++i) {
    request.engine = (i % 2 == 0) ? "CLFTJ" : "PairwiseHJ";
    request.mode = (i % 3 == 0) ? "eval" : "count";
    const QueryResponse response = service.Execute(request);
    switch (response.status) {
      case RunStatus::kOk:
        ASSERT_EQ(response.count, want) << "iteration " << i;
        ++ok;
        break;
      case RunStatus::kTimeout:
      case RunStatus::kOutOfMemory:
      case RunStatus::kShed:
      case RunStatus::kInternal:
        break;  // typed failures are the contract under chaos
      default:
        FAIL() << "untyped/unexpected status "
               << RunStatusName(response.status) << " at iteration " << i;
    }
  }
  EXPECT_GT(ok, 0) << "no request ever survived the fault storm";
  service.Shutdown(true);
}

}  // namespace
}  // namespace clftj
