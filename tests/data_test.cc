#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <utility>

#include "data/database.h"
#include "data/generators.h"
#include "data/loader.h"
#include "data/relation.h"
#include "data/snap_profiles.h"

namespace clftj {
namespace {

TEST(Relation, AddAndAccess) {
  Relation r("R", 3);
  r.Add({1, 2, 3});
  r.Add({4, 5, 6});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.arity(), 3);
  EXPECT_EQ(r.At(1, 2), 6);
  EXPECT_EQ(r.TupleAt(0), (Tuple{1, 2, 3}));
}

TEST(Relation, NormalizeSortsAndDeduplicates) {
  Relation r("R", 2);
  r.AddPair(3, 4);
  r.AddPair(1, 2);
  r.AddPair(3, 4);
  r.AddPair(1, 1);
  r.Normalize();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.TupleAt(0), (Tuple{1, 1}));
  EXPECT_EQ(r.TupleAt(1), (Tuple{1, 2}));
  EXPECT_EQ(r.TupleAt(2), (Tuple{3, 4}));
}

TEST(Relation, NormalizeEmptyAndSingle) {
  Relation r("R", 2);
  r.Normalize();
  EXPECT_TRUE(r.empty());
  r.AddPair(9, 9);
  r.Normalize();
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, DistinctInColumn) {
  Relation r("R", 2);
  r.AddPair(1, 5);
  r.AddPair(1, 6);
  r.AddPair(2, 5);
  EXPECT_EQ(r.DistinctInColumn(0), 2u);
  EXPECT_EQ(r.DistinctInColumn(1), 2u);
}

TEST(Relation, MaxFrequencyInColumn) {
  Relation r("R", 2);
  r.AddPair(1, 5);
  r.AddPair(1, 6);
  r.AddPair(1, 7);
  r.AddPair(2, 5);
  EXPECT_EQ(r.MaxFrequencyInColumn(0), 3u);
  EXPECT_EQ(r.MaxFrequencyInColumn(1), 2u);
}

TEST(Relation, ColumnSpansAreContiguousViews) {
  Relation r("R", 3);
  r.Add({1, 2, 3});
  r.Add({4, 5, 6});
  r.Add({7, 8, 9});
  const ColumnSpan c0 = r.Column(0);
  const ColumnSpan c2 = r.Column(2);
  ASSERT_EQ(c0.size(), 3u);
  EXPECT_EQ(c0[0], 1);
  EXPECT_EQ(c0[1], 4);
  EXPECT_EQ(c0[2], 7);
  EXPECT_EQ(c2.front(), 3);
  EXPECT_EQ(c2.back(), 9);
  // The span is a view of the live storage, not a copy.
  EXPECT_EQ(c0.data(), r.Column(0).data());
  std::vector<Value> gathered(c0.begin(), c0.end());
  EXPECT_EQ(gathered, (std::vector<Value>{1, 4, 7}));
}

TEST(Relation, ColumnStatsFields) {
  Relation r("R", 2);
  r.AddPair(5, -1);
  r.AddPair(5, 0);
  r.AddPair(5, 7);
  r.AddPair(2, 7);
  const ColumnStats& s0 = r.Stats(0);
  EXPECT_EQ(s0.distinct, 2u);
  EXPECT_EQ(s0.max_frequency, 3u);
  EXPECT_EQ(s0.min, 2);
  EXPECT_EQ(s0.max, 5);
  // (Σf)²/Σf² = 16 / (9 + 1) = 1.6
  EXPECT_DOUBLE_EQ(s0.effective_distinct, 1.6);
  const ColumnStats& s1 = r.Stats(1);
  EXPECT_EQ(s1.distinct, 3u);
  EXPECT_EQ(s1.max_frequency, 2u);
  EXPECT_EQ(s1.min, -1);
  EXPECT_EQ(s1.max, 7);
}

TEST(Relation, StatsMemoizedOncePerColumnPerNormalize) {
  Relation r("R", 2);
  for (int i = 0; i < 50; ++i) r.AddPair(i % 7, i % 3);
  r.Normalize();
  EXPECT_EQ(r.stats_builds(), 0u);
  // Arbitrarily many stat queries cost exactly one build per column.
  for (int rep = 0; rep < 10; ++rep) {
    (void)r.DistinctInColumn(0);
    (void)r.MaxFrequencyInColumn(0);
    (void)r.Stats(0);
    (void)r.DistinctInColumn(1);
  }
  EXPECT_EQ(r.stats_builds(), 2u);
  // A mutation invalidates; the next query recomputes once.
  r.AddPair(100, 100);
  r.Normalize();
  (void)r.DistinctInColumn(0);
  (void)r.DistinctInColumn(0);
  EXPECT_EQ(r.stats_builds(), 3u);
  // Stats reflect the new data, not the stale memo.
  EXPECT_EQ(r.DistinctInColumn(0), 8u);
}

TEST(Relation, StatsInvalidatedByAddWithoutNormalize) {
  Relation r("R", 1);
  r.Add({1});
  EXPECT_EQ(r.DistinctInColumn(0), 1u);
  r.Add({2});
  EXPECT_EQ(r.DistinctInColumn(0), 2u);
  EXPECT_EQ(r.MaxFrequencyInColumn(0), 1u);
}

TEST(Relation, StatsSurviveCopyAndMove) {
  Relation r("R", 2);
  r.AddPair(1, 2);
  r.AddPair(1, 3);
  (void)r.Stats(0);
  EXPECT_EQ(r.stats_builds(), 1u);
  Relation copy = r;
  EXPECT_EQ(copy.DistinctInColumn(0), 1u);
  EXPECT_EQ(copy.stats_builds(), 1u);  // memo carried over, no recompute
  Relation moved = std::move(copy);
  EXPECT_EQ(moved.DistinctInColumn(0), 1u);
  EXPECT_EQ(moved.stats_builds(), 1u);
}

TEST(Relation, FromColumnsMatchesRowwiseAdds) {
  Relation rows("R", 2);
  rows.AddPair(3, 4);
  rows.AddPair(1, 2);
  Relation cols = Relation::FromColumns("R", {{3, 1}, {4, 2}});
  ASSERT_EQ(cols.size(), rows.size());
  EXPECT_EQ(cols.arity(), 2);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(cols.TupleAt(i), rows.TupleAt(i));
  }
}

TEST(Relation, MemoryBytesTracksColumns) {
  Relation r("R", 2);
  // An empty database charges only its (empty) dictionary's fixed table
  // overhead — a handful of bytes, not a data-bearing footprint.
  EXPECT_LE(Database().MemoryBytes(), 64u);
  for (int i = 0; i < 100; ++i) r.AddPair(i, i);
  EXPECT_GE(r.MemoryBytes(), 200 * sizeof(Value));
  Database db;
  db.Put(std::move(r));
  EXPECT_GE(db.MemoryBytes(), 200 * sizeof(Value));
}

TEST(Database, MemoryBytesChargesDictionary) {
  Database db;
  const std::size_t before = db.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    db.dict().Encode("some_rather_long_interned_label_" + std::to_string(i));
  }
  // 1000 strings of 30+ chars: at least the raw string payload is charged.
  EXPECT_GE(db.MemoryBytes(), before + 30'000u);
}

TEST(Database, PutNormalizesAndFinds) {
  Database db;
  Relation r("E", 2);
  r.AddPair(2, 1);
  r.AddPair(2, 1);
  db.Put(std::move(r));
  ASSERT_TRUE(db.Contains("E"));
  EXPECT_EQ(db.Get("E").size(), 1u);
  EXPECT_EQ(db.Find("nope"), nullptr);
  EXPECT_EQ(db.Names(), std::vector<std::string>{"E"});
  EXPECT_EQ(db.TotalTuples(), 1u);
}

TEST(Database, PutReplacesExisting) {
  Database db;
  Relation a("E", 2);
  a.AddPair(1, 2);
  db.Put(std::move(a));
  Relation b("E", 2);
  b.AddPair(1, 2);
  b.AddPair(3, 4);
  db.Put(std::move(b));
  EXPECT_EQ(db.Get("E").size(), 2u);
}

TEST(Loader, RoundTrip) {
  const std::string path = ::testing::TempDir() + "clftj_loader_rt.tsv";
  Relation r("R", 2);
  r.AddPair(10, 20);
  r.AddPair(-3, 7);
  r.Normalize();
  ASSERT_TRUE(SaveRelationToFile(r, path));
  const auto loaded = LoadRelationFromFile(path, "R", 2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->TupleAt(0), (Tuple{-3, 7}));
  std::remove(path.c_str());
}

TEST(Loader, SkipsCommentsAndBlankLines) {
  const std::string path = ::testing::TempDir() + "clftj_loader_c.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# SNAP header\n% other comment\n\n1\t2\n3 4\n5,6\n", f);
  std::fclose(f);
  const auto loaded = LoadEdgeList(path, "E");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 3u);
  std::remove(path.c_str());
}

TEST(Loader, RejectsWrongArity) {
  const std::string path = ::testing::TempDir() + "clftj_loader_bad.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 2 3\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadEdgeList(path, "E").has_value());
  std::remove(path.c_str());
}

TEST(Loader, RejectsNonInteger) {
  const std::string path = ::testing::TempDir() + "clftj_loader_nan.txt";
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("1 abc\n", f);
  std::fclose(f);
  EXPECT_FALSE(LoadEdgeList(path, "E").has_value());
  std::remove(path.c_str());
}

TEST(Loader, MissingFileFails) {
  EXPECT_FALSE(LoadEdgeList("/nonexistent/nope.txt", "E").has_value());
}

// --- Generators: structural properties ---

bool IsSymmetric(const Relation& r) {
  std::set<std::pair<Value, Value>> edges;
  for (std::size_t i = 0; i < r.size(); ++i) {
    edges.emplace(r.At(i, 0), r.At(i, 1));
  }
  for (const auto& [a, b] : edges) {
    if (edges.count({b, a}) == 0) return false;
  }
  return true;
}

bool HasSelfLoop(const Relation& r) {
  for (std::size_t i = 0; i < r.size(); ++i) {
    if (r.At(i, 0) == r.At(i, 1)) return true;
  }
  return false;
}

TEST(Generators, ErdosRenyiSymmetricNoSelfLoops) {
  const Relation g = ErdosRenyiGraph("E", 40, 0.2, 17);
  EXPECT_TRUE(IsSymmetric(g));
  EXPECT_FALSE(HasSelfLoop(g));
  EXPECT_GT(g.size(), 0u);
}

TEST(Generators, ErdosRenyiDeterministic) {
  const Relation a = ErdosRenyiGraph("E", 30, 0.3, 5);
  const Relation b = ErdosRenyiGraph("E", 30, 0.3, 5);
  ASSERT_EQ(a.size(), b.size());
  for (int c = 0; c < 2; ++c) {
    const ColumnSpan ca = a.Column(c);
    const ColumnSpan cb = b.Column(c);
    EXPECT_TRUE(std::equal(ca.begin(), ca.end(), cb.begin(), cb.end()));
  }
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  const int n = 200;
  const double p = 0.1;
  const Relation g = ErdosRenyiGraph("E", n, p, 23);
  const double expected = p * n * (n - 1);  // directed tuples
  EXPECT_NEAR(static_cast<double>(g.size()), expected, 0.25 * expected);
}

TEST(Generators, PreferentialAttachmentIsSkewed) {
  const Relation g = PreferentialAttachmentGraph("E", 300, 4, 31);
  EXPECT_TRUE(IsSymmetric(g));
  EXPECT_FALSE(HasSelfLoop(g));
  // Hub degree should far exceed the average degree.
  const std::size_t hub = g.MaxFrequencyInColumn(0);
  const double avg = static_cast<double>(g.size()) / 300.0;
  EXPECT_GT(static_cast<double>(hub), 4.0 * avg);
}

TEST(Generators, NearRegularIsBalanced) {
  const Relation g = NearRegularGraph("E", 300, 1200, 37);
  EXPECT_TRUE(IsSymmetric(g));
  EXPECT_EQ(g.size(), 2400u);  // both directions
  const std::size_t hub = g.MaxFrequencyInColumn(0);
  const double avg = static_cast<double>(g.size()) / 300.0;
  EXPECT_LT(static_cast<double>(hub), 4.0 * avg);
}

TEST(Generators, BipartiteZipfSkewAsymmetry) {
  const Relation g =
      BipartiteZipf("C", 500, 500, 3000, /*left_skew=*/1.1,
                    /*right_skew=*/0.2, 41);
  EXPECT_EQ(g.size(), 3000u);
  // Left column (high skew) should concentrate much more than right.
  EXPECT_GT(g.MaxFrequencyInColumn(0), 2 * g.MaxFrequencyInColumn(1));
}

TEST(SnapProfiles, AllProfilesGenerate) {
  for (const DatasetProfile& p : SnapProfiles()) {
    const Database db = MakeSnapDatabase(p);
    ASSERT_TRUE(db.Contains("E")) << p.label;
    EXPECT_GT(db.Get("E").size(), 100u) << p.label;
    EXPECT_TRUE(IsSymmetric(db.Get("E"))) << p.label;
  }
}

TEST(SnapProfiles, LookupByLabel) {
  const DatasetProfile p = SnapProfileByLabel("wiki-Vote");
  EXPECT_EQ(p.label, "wiki-Vote");
  EXPECT_FALSE(p.balanced);
  const DatasetProfile g = SnapProfileByLabel("p2p-Gnutella04");
  EXPECT_TRUE(g.balanced);
}

TEST(SnapProfiles, ImdbHasTwoSkewedCastTables) {
  const Database db = MakeImdbDatabase();
  ASSERT_TRUE(db.Contains("MC"));
  ASSERT_TRUE(db.Contains("FC"));
  const Relation& mc = db.Get("MC");
  // person_id (column 0) is much more skewed than movie_id (column 1).
  EXPECT_GT(mc.MaxFrequencyInColumn(0), 2 * mc.MaxFrequencyInColumn(1));
}

}  // namespace
}  // namespace clftj
