#include "data/loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "data/database.h"
#include "data/dictionary.h"
#include "data/relation.h"

namespace clftj {
namespace {

// Writes `content` to a fresh temp file and returns its path; the file is
// removed by the returned guard's destructor.
class TempFile {
 public:
  explicit TempFile(const std::string& content) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("clftj_loader_test_" + std::to_string(counter++) + ".txt"))
                .string();
    std::ofstream out(path_);
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<Tuple> Rows(const Relation& r) {
  std::vector<Tuple> rows;
  for (std::size_t i = 0; i < r.size(); ++i) rows.push_back(r.TupleAt(i));
  return rows;
}

TEST(Loader, IntegerLoadStillWorks) {
  const TempFile f("# header\n1 2\n3,4\n% footer comment\n\n5\t6\n");
  const auto rel = LoadRelationFromFile(f.path(), "E", 2);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(Rows(*rel), (std::vector<Tuple>{{1, 2}, {3, 4}, {5, 6}}));
  EXPECT_EQ(rel->column_types(),
            (std::vector<ColumnType>{ColumnType::kInt, ColumnType::kInt}));
}

TEST(Loader, MissingFileReportsFileLevelError) {
  LoadError err;
  EXPECT_FALSE(
      LoadRelationFromFile("/nonexistent/nope.txt", "E", 2, &err).has_value());
  EXPECT_EQ(err.path, "/nonexistent/nope.txt");
  EXPECT_EQ(err.line, 0u);
  EXPECT_EQ(err.field, kNone);
  EXPECT_NE(err.message.find("cannot open"), std::string::npos);
}

TEST(Loader, MalformedIntegerReportsLineAndField) {
  const TempFile f("1 2\n3 oops\n5 6\n");
  LoadError err;
  EXPECT_FALSE(LoadRelationFromFile(f.path(), "E", 2, &err).has_value());
  EXPECT_EQ(err.line, 2u);
  EXPECT_EQ(err.field, 1);
  EXPECT_NE(err.message.find("oops"), std::string::npos);
  EXPECT_NE(err.ToString().find(":2:"), std::string::npos);
}

TEST(Loader, ArityMismatchReportsRowLevelError) {
  const TempFile f("1 2\n3 4 5\n");
  LoadError err;
  EXPECT_FALSE(LoadRelationFromFile(f.path(), "E", 2, &err).has_value());
  EXPECT_EQ(err.line, 2u);
  EXPECT_EQ(err.field, kNone);
  EXPECT_NE(err.message.find("expected 2 fields, got 3"), std::string::npos);
}

TEST(Loader, UnterminatedQuoteReportsError) {
  const TempFile f("\"alice bob\n");
  Dictionary dict;
  LoadError err;
  const std::vector<ColumnType> schema = {ColumnType::kString};
  EXPECT_FALSE(
      LoadRelationFromFile(f.path(), "R", schema, &dict, &err).has_value());
  EXPECT_EQ(err.line, 1u);
  EXPECT_NE(err.message.find("unterminated"), std::string::npos);
}

TEST(Loader, JunkAfterClosingQuoteReportsError) {
  const TempFile f("\"alice\"bob carol\n");
  Dictionary dict;
  LoadError err;
  const std::vector<ColumnType> schema = {ColumnType::kString,
                                          ColumnType::kString};
  EXPECT_FALSE(
      LoadRelationFromFile(f.path(), "R", schema, &dict, &err).has_value());
  EXPECT_NE(err.message.find("after closing quote"), std::string::npos);
}

TEST(Loader, TypedSchemaEncodesStringsThroughDictionary) {
  const TempFile f("alice 10\nbob 20\nalice 30\n");
  Dictionary dict;
  const std::vector<ColumnType> schema = {ColumnType::kString,
                                          ColumnType::kInt};
  const auto rel = LoadRelationFromFile(f.path(), "R", schema, &dict);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->size(), 3u);
  EXPECT_EQ(rel->column_types(), schema);
  EXPECT_TRUE(rel->has_string_columns());
  // Ids are dense, assigned in first-occurrence order during the scan.
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Lookup("alice"), std::optional<Value>(0));
  EXPECT_EQ(dict.Lookup("bob"), std::optional<Value>(1));
  // Both "alice" rows carry the same id.
  EXPECT_EQ(Rows(*rel), (std::vector<Tuple>{{0, 10}, {0, 30}, {1, 20}}));
}

TEST(Loader, QuotedFieldsProtectSeparatorsAndQuotes) {
  const TempFile f(
      "\"Dijkstra, Edsger W.\" 1\n"
      "\"said \"\"go to\"\"\" 2\n"
      "\"#not a comment\" 3\n"
      "\"\" 4\n");
  Dictionary dict;
  const std::vector<ColumnType> schema = {ColumnType::kString,
                                          ColumnType::kInt};
  const auto rel = LoadRelationFromFile(f.path(), "R", schema, &dict);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->size(), 4u);
  EXPECT_TRUE(dict.Lookup("Dijkstra, Edsger W.").has_value());
  EXPECT_TRUE(dict.Lookup("said \"go to\"").has_value());
  EXPECT_TRUE(dict.Lookup("#not a comment").has_value());
  EXPECT_TRUE(dict.Lookup("").has_value());
}

TEST(Loader, AutoDetectInfersPerColumnTypes) {
  // Column 0 is all-integer; column 1 has one non-integer field, so the
  // whole column is kString — including its numeric-looking "42".
  const TempFile f("1 alice\n2 42\n3 bob\n");
  Dictionary dict;
  std::vector<ColumnType> schema;
  const auto rel = LoadRelationAuto(f.path(), "R", &dict, nullptr, &schema);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(schema,
            (std::vector<ColumnType>{ColumnType::kInt, ColumnType::kString}));
  EXPECT_EQ(rel->column_types(), schema);
  EXPECT_TRUE(dict.Lookup("42").has_value());  // encoded as a string
  EXPECT_EQ(dict.size(), 3u);
}

TEST(Loader, AutoDetectAllIntegerNeedsNoDictionary) {
  const TempFile f("1 2\n3 4\n");
  std::vector<ColumnType> schema;
  const auto rel = LoadRelationAuto(f.path(), "E", nullptr, nullptr, &schema);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(schema,
            (std::vector<ColumnType>{ColumnType::kInt, ColumnType::kInt}));
  EXPECT_EQ(Rows(*rel), (std::vector<Tuple>{{1, 2}, {3, 4}}));
}

TEST(Loader, AutoDetectStringColumnsWithoutDictionaryFails) {
  const TempFile f("1 alice\n");
  LoadError err;
  EXPECT_FALSE(LoadRelationAuto(f.path(), "R", nullptr, &err).has_value());
  EXPECT_NE(err.message.find("no dictionary"), std::string::npos);
}

TEST(Loader, AutoDetectEmptyFileFails) {
  const TempFile f("# only comments\n\n");
  LoadError err;
  EXPECT_FALSE(LoadRelationAuto(f.path(), "R", nullptr, &err).has_value());
  EXPECT_NE(err.message.find("no data rows"), std::string::npos);
}

TEST(Loader, AutoDetectRaggedRowsFail) {
  const TempFile f("a b\nc\n");
  Dictionary dict;
  LoadError err;
  EXPECT_FALSE(LoadRelationAuto(f.path(), "R", &dict, &err).has_value());
  EXPECT_EQ(err.line, 2u);
  EXPECT_NE(err.message.find("expected 2 fields, got 1"), std::string::npos);
}

TEST(Loader, SaveDecodesAndRoundTripsStringColumns) {
  // load -> save -> load: the decoded content must survive unchanged, even
  // for labels that need quoting (separators, quotes, comment leaders).
  const TempFile f(
      "\"Kalinsky, Oren\" paper_1 2017\n"
      "\"said \"\"hi\"\"\" paper_2 2018\n"
      "#quoted_leader paper_1 2017\n"  // comment line: skipped on load
      "\"# kept\" paper_3 2019\n"
      "plain paper_3 2019\n");
  Dictionary dict;
  std::vector<ColumnType> schema;
  const auto first = LoadRelationAuto(f.path(), "R", &dict, nullptr, &schema);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(schema, (std::vector<ColumnType>{ColumnType::kString,
                                             ColumnType::kString,
                                             ColumnType::kInt}));
  EXPECT_EQ(first->size(), 4u);

  const std::string saved =
      (std::filesystem::temp_directory_path() / "clftj_loader_roundtrip.txt")
          .string();
  ASSERT_TRUE(SaveRelationToFile(*first, saved, &dict));
  const auto second = LoadRelationFromFile(saved, "R", schema, &dict);
  std::remove(saved.c_str());
  ASSERT_TRUE(second.has_value());

  // Same dictionary on both loads, so equal decoded content means equal
  // encoded rows — compare tuples directly, then spot-check the decode.
  EXPECT_EQ(Rows(*first), Rows(*second));
  EXPECT_EQ(second->column_types(), schema);
  EXPECT_TRUE(dict.Lookup("Kalinsky, Oren").has_value());
  EXPECT_TRUE(dict.Lookup("# kept").has_value());
}

TEST(Loader, SaveRefusesEmbeddedNewlinesWithoutTouchingTheFile) {
  // The format is line-based; a field with a raw newline cannot round-trip
  // even quoted, so save fails instead of writing a file that loads wrong
  // — and the refusal happens before the stream opens, so a pre-existing
  // file at the path survives untouched.
  Dictionary dict;
  Relation r = Relation::FromColumns(
      "R", {{dict.Encode("ok"), dict.Encode("line1\nline2")}},
      {ColumnType::kString});
  const std::string saved =
      (std::filesystem::temp_directory_path() / "clftj_loader_newline.txt")
          .string();
  {
    std::ofstream prior(saved);
    prior << "precious\n";
  }
  EXPECT_FALSE(SaveRelationToFile(r, saved, &dict));
  std::ifstream in(saved);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "precious");
  in.close();
  std::remove(saved.c_str());
}

TEST(Loader, NumericLookingLabelsRoundTripThroughAutoDetect) {
  // A kString column holding labels like "2017" saves quoted, and a quoted
  // field forces kString on auto-detect — so the column's type (and the
  // meaning of its values) survives save -> LoadRelationAuto.
  Dictionary dict;
  Relation r = Relation::FromColumns(
      "R", {{dict.Encode("2017"), dict.Encode("2018")}, {10, 20}},
      {ColumnType::kString, ColumnType::kInt});
  r.Normalize();
  const std::string saved =
      (std::filesystem::temp_directory_path() / "clftj_loader_numeric.txt")
          .string();
  ASSERT_TRUE(SaveRelationToFile(r, saved, &dict));
  std::vector<ColumnType> schema;
  const auto loaded = LoadRelationAuto(saved, "R", &dict, nullptr, &schema);
  std::remove(saved.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(schema,
            (std::vector<ColumnType>{ColumnType::kString, ColumnType::kInt}));
  // Same dictionary, so the reloaded ids equal the originals.
  EXPECT_EQ(Rows(*loaded), Rows(r));
}

TEST(Loader, SaveIntRelationUnchangedFormat) {
  Relation r("E", 2);
  r.AddPair(1, 2);
  r.AddPair(3, 4);
  r.Normalize();
  const std::string saved =
      (std::filesystem::temp_directory_path() / "clftj_loader_int.txt")
          .string();
  ASSERT_TRUE(SaveRelationToFile(r, saved));
  std::ifstream in(saved);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "1\t2");
  in.close();
  std::remove(saved.c_str());
}

TEST(Loader, DatabaseDictionarySharedAcrossRelations) {
  // Two files naming the same person encode to the same id through the
  // database dictionary, so cross-relation joins on names line up.
  const TempFile authored("alice paper_1\nbob paper_2\n");
  const TempFile cited("paper_1 paper_2\n");
  Database db;
  const std::vector<ColumnType> ss = {ColumnType::kString,
                                      ColumnType::kString};
  auto a = LoadRelationFromFile(authored.path(), "A", ss, &db.dict());
  auto c = LoadRelationFromFile(cited.path(), "C", ss, &db.dict());
  ASSERT_TRUE(a.has_value() && c.has_value());
  db.Put(std::move(*a));
  db.Put(std::move(*c));
  const Value paper1 = *db.dict().Lookup("paper_1");
  // "paper_1" in A's column 1 and C's column 0 is the same Value.
  EXPECT_EQ(db.Get("A").At(0, 1), paper1);
  EXPECT_EQ(db.Get("C").At(0, 0), paper1);
}

}  // namespace
}  // namespace clftj
