// Randomized differential testing: every engine must agree with every
// other on randomly generated (query, database) instances. This is the
// broadest correctness net in the suite — any divergence in trie
// construction, leapfrog alignment, TD planning, caching, semijoin
// reduction or hash indexing shows up as a count/tuple mismatch.

#include <gtest/gtest.h>

#include "baseline/generic_join.h"
#include "baseline/hash_join.h"
#include "clftj/aggregate_join.h"
#include "clftj/cached_trie_join.h"
#include "lftj/trie_join.h"
#include "query/patterns.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "yannakakis/ytd.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;

struct Instance {
  Query query;
  Database db;
};

Instance MakeInstance(std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  const int num_vars = 3 + static_cast<int>(rng.Uniform(4));       // 3..6
  const double p = 0.35 + 0.1 * static_cast<double>(rng.Uniform(5));
  Instance inst{RandomPatternQuery(num_vars, p, seed + 1), Database()};
  const int nodes = 25 + static_cast<int>(rng.Uniform(40));
  if (rng.Flip(0.5)) {
    inst.db.Put(PreferentialAttachmentGraph(
        "E", nodes, 2 + static_cast<int>(rng.Uniform(3)), seed + 2));
  } else {
    inst.db.Put(NearRegularGraph("E", nodes, nodes * 2, seed + 2));
  }
  return inst;
}

class FuzzDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzDifferentialTest, AllEnginesAgreeOnCount) {
  const Instance inst = MakeInstance(GetParam());
  LeapfrogTrieJoin lftj;
  const std::uint64_t anchor = lftj.Count(inst.query, inst.db, {}).count;

  CachedTrieJoin clftj;
  EXPECT_EQ(clftj.Count(inst.query, inst.db, {}).count, anchor)
      << inst.query.ToString();
  YannakakisTd ytd;
  EXPECT_EQ(ytd.Count(inst.query, inst.db, {}).count, anchor)
      << inst.query.ToString();
  GenericJoin gj;
  EXPECT_EQ(gj.Count(inst.query, inst.db, {}).count, anchor)
      << inst.query.ToString();
  PairwiseHashJoin hj;
  EXPECT_EQ(hj.Count(inst.query, inst.db, {}).count, anchor)
      << inst.query.ToString();
  AggregatingCachedTrieJoin<CountingSemiring> agg;
  EXPECT_EQ(agg.Aggregate(inst.query, inst.db).value, anchor)
      << inst.query.ToString();
}

TEST_P(FuzzDifferentialTest, EvalTuplesAgree) {
  const Instance inst = MakeInstance(GetParam());
  LeapfrogTrieJoin lftj;
  const auto anchor = CollectTuples(lftj, inst.query, inst.db);
  CachedTrieJoin clftj;
  EXPECT_EQ(CollectTuples(clftj, inst.query, inst.db), anchor)
      << inst.query.ToString();
  YannakakisTd ytd;
  EXPECT_EQ(CollectTuples(ytd, inst.query, inst.db), anchor)
      << inst.query.ToString();
}

TEST_P(FuzzDifferentialTest, FactorizedResultAgrees) {
  const Instance inst = MakeInstance(GetParam());
  CachedTrieJoin clftj;
  RunResult run;
  const auto fact = clftj.EvaluateFactorized(inst.query, inst.db, {}, &run);
  ASSERT_TRUE(fact.has_value());
  LeapfrogTrieJoin lftj;
  EXPECT_EQ(fact->Count(), lftj.Count(inst.query, inst.db, {}).count)
      << inst.query.ToString();
}

TEST_P(FuzzDifferentialTest, EveryEnumeratedPlanGivesTheSameCount) {
  const Instance inst = MakeInstance(GetParam());
  LeapfrogTrieJoin lftj;
  const std::uint64_t anchor = lftj.Count(inst.query, inst.db, {}).count;
  for (const TdPlan& plan : EnumeratePlans(inst.query, inst.db)) {
    CachedTrieJoin::Options options;
    options.plan = plan;
    CachedTrieJoin engine(options);
    EXPECT_EQ(engine.Count(inst.query, inst.db, {}).count, anchor)
        << inst.query.ToString() << " with TD "
        << plan.td.ToString(inst.query);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferentialTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace clftj
