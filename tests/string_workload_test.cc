// The string-workload differential suite: a string-keyed dataset and its
// hand-remapped integer twin (every string replaced by its dictionary id,
// by hand, outside the loader) must be *indistinguishable* to every
// engine — bit-identical execution counters and identical raw tuple sets —
// because the join core never sees a string. The decode boundary is then
// checked separately: decoding the string run's tuples must reproduce the
// original labels. This is the invariant that makes the typed value domain
// a pure boundary refactor.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "clftj/cached_trie_join.h"

#include "data/database.h"
#include "data/dictionary.h"
#include "data/generators.h"
#include "engine/engine.h"
#include "engine/printer.h"
#include "test_util.h"

namespace clftj {
namespace {

using clftj::testing::CollectTuples;
using clftj::testing::Q;

// One engine configuration of the differential matrix.
struct EngineConfig {
  std::string label;
  std::string name;
  int threads = 0;
};

std::vector<EngineConfig> Engines() {
  return {
      {"PairwiseHJ", "PairwiseHJ", 0},
      {"GenericJoin", "GenericJoin", 0},
      {"LFTJ", "LFTJ", 0},
      {"CLFTJ", "CLFTJ", 0},
      {"CLFTJ-P/1", "CLFTJ-P", 1},
      {"CLFTJ-P/2", "CLFTJ-P", 2},
      {"CLFTJ-P/8", "CLFTJ-P", 8},
  };
}

std::unique_ptr<JoinEngine> Make(const EngineConfig& cfg) {
  EngineOptions options;
  options.threads = cfg.threads;
  auto engine = MakeEngine(cfg.name, options);
  EXPECT_NE(engine, nullptr) << cfg.name;
  return engine;
}

void ExpectStatsIdentical(const ExecStats& a, const ExecStats& b,
                          const std::string& context) {
  EXPECT_EQ(a.memory_accesses, b.memory_accesses) << context;
  EXPECT_EQ(a.intermediate_tuples, b.intermediate_tuples) << context;
  EXPECT_EQ(a.output_tuples, b.output_tuples) << context;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << context;
  EXPECT_EQ(a.cache_misses, b.cache_misses) << context;
  EXPECT_EQ(a.cache_inserts, b.cache_inserts) << context;
  EXPECT_EQ(a.cache_rejects, b.cache_rejects) << context;
  EXPECT_EQ(a.cache_evictions, b.cache_evictions) << context;
  EXPECT_EQ(a.cache_entries_peak, b.cache_entries_peak) << context;
  EXPECT_EQ(a.cache_bytes_peak, b.cache_bytes_peak) << context;
}

// Hand-remaps an integer relation through the labels StringKeyed interned:
// value v becomes Lookup("<prefix><v>"). This is the "pre-remapped by
// hand" twin of the ISSUE's acceptance criterion — built without the
// loader or the string twin's columns, only the public dictionary mapping.
Relation HandRemapped(const Relation& rel, const std::string& prefix,
                      const Dictionary& dict) {
  std::vector<std::vector<Value>> columns(
      static_cast<std::size_t>(rel.arity()));
  for (int c = 0; c < rel.arity(); ++c) {
    const ColumnSpan span = rel.Column(c);
    auto& out = columns[static_cast<std::size_t>(c)];
    out.reserve(span.size());
    for (const Value v : span) {
      const auto id = dict.Lookup(prefix + std::to_string(v));
      EXPECT_TRUE(id.has_value());
      out.push_back(*id);
    }
  }
  Relation remapped = Relation::FromColumns(rel.name(), std::move(columns));
  remapped.Normalize();
  return remapped;
}

class StringWorkloadDifferential : public ::testing::Test {
 protected:
  void SetUp() override {
    const Relation ints =
        PreferentialAttachmentGraph("E", /*num_nodes=*/60,
                                    /*edges_per_node=*/3, /*seed=*/7);
    original_int_db_.Put(ints);
    string_db_.Put(StringKeyed(ints, "node_", &string_db_.dict()));
    remapped_db_.Put(HandRemapped(ints, "node_", string_db_.dict()));
  }

  Database original_int_db_;  // the labels' source values
  Database string_db_;        // string-keyed (dictionary-encoded)
  Database remapped_db_;      // integer twin, remapped by hand
};

TEST_F(StringWorkloadDifferential, AllEnginesCountersAndTuplesIdentical) {
  const std::vector<std::string> queries = {
      "E(x,y), E(y,z), E(x,z)",                  // triangle
      "E(a,b), E(b,c), E(c,d)",                  // 3-path
      "E(a,b), E(b,c), E(c,d), E(d,a)",          // 4-cycle
  };
  for (const std::string& text : queries) {
    const Query q = Q(text);
    for (const EngineConfig& cfg : Engines()) {
      const std::string context = cfg.label + " on " + text;
      auto on_strings = Make(cfg);
      auto on_ints = Make(cfg);
      const RunResult rs = on_strings->Count(q, string_db_, {});
      const RunResult ri = on_ints->Count(q, remapped_db_, {});
      EXPECT_EQ(rs.count, ri.count) << context;
      ExpectStatsIdentical(rs.stats, ri.stats, context);

      auto eval_strings = Make(cfg);
      auto eval_ints = Make(cfg);
      EXPECT_EQ(CollectTuples(*eval_strings, q, string_db_),
                CollectTuples(*eval_ints, q, remapped_db_))
          << context;
    }
  }
}

TEST_F(StringWorkloadDifferential, DecodedTuplesMatchOriginalLabels) {
  const Query q = Q("E(x,y), E(y,z), E(x,z)");
  auto clftj_strings = MakeEngine("CLFTJ");
  auto clftj_ints = MakeEngine("CLFTJ");

  // Decode every string-run tuple back to labels.
  const std::vector<ColumnType> types = VariableTypes(q, string_db_);
  ASSERT_EQ(types, (std::vector<ColumnType>{ColumnType::kString,
                                            ColumnType::kString,
                                            ColumnType::kString}));
  std::vector<std::vector<std::string>> decoded;
  for (const Tuple& t : CollectTuples(*clftj_strings, q, string_db_)) {
    std::vector<std::string> row;
    for (std::size_t v = 0; v < t.size(); ++v) {
      row.push_back(FormatValue(t[v], types[v], &string_db_.dict()));
    }
    decoded.push_back(std::move(row));
  }

  // Map the original integer run's tuples through the label scheme.
  std::vector<std::vector<std::string>> expected;
  for (const Tuple& t : CollectTuples(*clftj_ints, q, original_int_db_)) {
    std::vector<std::string> row;
    for (const Value v : t) row.push_back("node_" + std::to_string(v));
    expected.push_back(std::move(row));
  }

  std::sort(decoded.begin(), decoded.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(decoded, expected);
}

TEST_F(StringWorkloadDifferential, FactorizedEnumerationDecodes) {
  // The factorized representation stays in the Value domain; decode
  // happens per emitted tuple inside PrintFactorized. Its output must
  // match printing the flat Evaluate stream through the same printer.
  const Query q = Q("E(x,y), E(y,z), E(x,z)");
  CachedTrieJoin engine;
  RunResult run;
  const auto factorized = engine.EvaluateFactorized(q, string_db_, {}, &run);
  ASSERT_TRUE(factorized.has_value());

  std::ostringstream from_factorized;
  PrintFactorized(*factorized, q, string_db_, from_factorized);

  std::ostringstream from_flat;
  TuplePrinter printer(q, string_db_, from_flat);
  auto flat_engine = MakeEngine("CLFTJ");
  flat_engine->Evaluate(q, string_db_,
                        [&printer](const Tuple& t) { printer.Print(t); }, {});

  // Same multiset of lines (enumeration orders may differ).
  const auto lines = [](const std::string& text) {
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto factorized_lines = lines(from_factorized.str());
  EXPECT_EQ(factorized_lines, lines(from_flat.str()));
  EXPECT_EQ(factorized_lines.size(), factorized->Count());
  ASSERT_FALSE(factorized_lines.empty());
  EXPECT_NE(factorized_lines.front().find("node_"), std::string::npos);
}

TEST(StringWorkloadMixed, MixedTypeColumnsDifferentialAndVariableTypes) {
  // A bipartite relation with a string person column and an integer movie
  // column: only the string column round-trips through the dictionary; the
  // int column's values must pass through untouched.
  const Relation ints = BipartiteZipf("A", /*left_nodes=*/25,
                                      /*right_nodes=*/40, /*num_edges=*/150,
                                      /*left_skew=*/1.0, /*right_skew=*/0.2,
                                      /*seed=*/11);
  Database string_db;
  Database remapped_db;
  {
    std::vector<Value> persons, movies;
    const ColumnSpan p = ints.Column(0);
    const ColumnSpan m = ints.Column(1);
    for (std::size_t i = 0; i < ints.size(); ++i) {
      persons.push_back(
          string_db.dict().Encode("person_" + std::to_string(p[i])));
      movies.push_back(m[i]);
    }
    Relation rel = Relation::FromColumns(
        "A", {std::move(persons), std::move(movies)},
        {ColumnType::kString, ColumnType::kInt});
    rel.Normalize();
    string_db.Put(std::move(rel));
  }
  {
    std::vector<Value> persons, movies;
    const ColumnSpan p = ints.Column(0);
    const ColumnSpan m = ints.Column(1);
    for (std::size_t i = 0; i < ints.size(); ++i) {
      persons.push_back(*string_db.dict().Lookup(
          "person_" + std::to_string(p[i])));
      movies.push_back(m[i]);
    }
    Relation rel = Relation::FromColumns(
        "A", {std::move(persons), std::move(movies)});
    rel.Normalize();
    remapped_db.Put(std::move(rel));
  }

  const Query q = Q("A(p,m), A(q,m)");  // co-cast pairs
  const std::vector<ColumnType> types = VariableTypes(q, string_db);
  EXPECT_EQ(types, (std::vector<ColumnType>{
                       ColumnType::kString,   // p
                       ColumnType::kInt,      // m
                       ColumnType::kString})) // q
      << "variable types must follow the bound columns";

  for (const EngineConfig& cfg : Engines()) {
    auto on_strings = Make(cfg);
    auto on_ints = Make(cfg);
    const RunResult rs = on_strings->Count(q, string_db, {});
    const RunResult ri = on_ints->Count(q, remapped_db, {});
    EXPECT_EQ(rs.count, ri.count) << cfg.label;
    ExpectStatsIdentical(rs.stats, ri.stats, cfg.label);
    auto eval_strings = Make(cfg);
    auto eval_ints = Make(cfg);
    EXPECT_EQ(CollectTuples(*eval_strings, q, string_db),
              CollectTuples(*eval_ints, q, remapped_db))
        << cfg.label;
  }
}

}  // namespace
}  // namespace clftj
