// Incremental maintenance end-to-end (docs/incremental.md): relation delta
// tiers and compaction, database minor versions and the bounded delta log,
// merged (main + add − tombstone) trie cursors via every engine, reuse
// survival across deltas (plans revalidated, substrates patched, subtree
// caches invalidated in a targeted way), and DELTA through the service and
// wire protocol. The randomized differential pins delta application against
// rebuild-from-scratch: bit-identical tuple sets, every engine, every
// worker count.

#include <algorithm>
#include <cstdint>
#include <future>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/database.h"
#include "data/generators.h"
#include "engine/engine.h"
#include "engine/reuse.h"
#include "server/protocol.h"
#include "server/service.h"
#include "td/planner.h"
#include "test_util.h"

namespace clftj {
namespace {

using Edge = std::pair<Value, Value>;

Relation EdgeRelation(const std::string& name,
                      const std::vector<Edge>& edges) {
  Relation rel(name, 2);
  for (const auto& [a, b] : edges) rel.AddPair(a, b);
  rel.Normalize();
  return rel;
}

std::vector<Tuple> VisibleTuples(const Relation& rel) {
  std::vector<Tuple> out;
  for (std::size_t i = 0; i < rel.size(); ++i) out.push_back(rel.TupleAt(i));
  return out;
}

// ---------------------------------------------------------------------------
// Relation: the two-tier delta layer.

TEST(RelationDelta, VisibleImageMergesTiersMainStaysPut) {
  Relation rel = EdgeRelation("E", {{1, 2}, {3, 4}, {5, 6}});
  rel.set_compaction_threshold(1000);

  const DeltaResult result = rel.ApplyDelta({{2, 3}}, {{3, 4}});
  EXPECT_EQ(result.applied_adds, 1u);
  EXPECT_EQ(result.applied_deletes, 1u);
  EXPECT_FALSE(result.compacted);

  EXPECT_TRUE(rel.has_delta());
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_EQ(VisibleTuples(rel),
            (std::vector<Tuple>{{1, 2}, {2, 3}, {5, 6}}));
  // The main tier is byte-stable: overlay consumers key on it.
  EXPECT_EQ(rel.main_size(), 3u);
  EXPECT_EQ(rel.added_size(), 1u);
  EXPECT_EQ(rel.deleted_size(), 1u);
  EXPECT_EQ(rel.compactions(), 0u);
  EXPECT_GT(rel.delta_version(), 0u);
}

TEST(RelationDelta, NoOpAddsAndDeletesAreIgnored) {
  Relation rel = EdgeRelation("E", {{1, 2}});
  rel.set_compaction_threshold(1000);
  // Re-adding a present tuple and deleting an absent one change nothing.
  const DeltaResult result = rel.ApplyDelta({{1, 2}}, {{9, 9}});
  EXPECT_EQ(result.applied_adds, 0u);
  EXPECT_EQ(result.applied_deletes, 0u);
  EXPECT_FALSE(rel.has_delta());
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationDelta, ThresholdTriggersCompaction) {
  Relation rel = EdgeRelation("E", {{1, 2}});
  rel.set_compaction_threshold(2);
  const DeltaResult result = rel.ApplyDelta({{2, 3}, {3, 4}, {4, 5}}, {});
  EXPECT_EQ(result.applied_adds, 3u);
  EXPECT_TRUE(result.compacted);
  EXPECT_FALSE(rel.has_delta());
  EXPECT_EQ(rel.compactions(), 1u);
  EXPECT_EQ(rel.main_size(), 4u);
  EXPECT_EQ(rel.size(), 4u);
}

TEST(RelationDelta, ClassicMutatorAbandonsTheDelta) {
  Relation rel = EdgeRelation("E", {{1, 2}, {3, 4}});
  rel.set_compaction_threshold(1000);
  rel.ApplyDelta({{5, 6}}, {});
  ASSERT_TRUE(rel.has_delta());
  // A bulk mutation replaces the main tier wholesale; overlay holders must
  // see the epoch change.
  const std::uint64_t epochs_before = rel.compactions();
  rel.AddPair(7, 8);
  rel.Normalize();
  EXPECT_FALSE(rel.has_delta());
  EXPECT_GT(rel.compactions(), epochs_before);
  EXPECT_EQ(rel.size(), 4u);
}

// ---------------------------------------------------------------------------
// Database: minor versions and the bounded delta log.

TEST(DatabaseDelta, MinorVersionBumpsWithoutAGenerationBump) {
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}, {2, 3}}));
  const std::uint64_t generation = db.generation();
  const std::uint64_t minor = db.minor_version();

  DeltaBatch batch;
  batch.relation = "E";
  batch.adds = {{3, 4}};
  std::string error;
  DeltaResult result;
  ASSERT_TRUE(db.ApplyDelta(batch, &error, &result)) << error;
  EXPECT_EQ(result.applied_adds, 1u);
  EXPECT_EQ(db.generation(), generation);
  EXPECT_EQ(db.minor_version(), minor + 1);

  std::vector<const DeltaLogEntry*> deltas;
  ASSERT_TRUE(db.DeltasSince(minor, &deltas));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0]->relation, "E");
  EXPECT_EQ(deltas[0]->changed, (std::vector<Tuple>{{3, 4}}));
}

TEST(DatabaseDelta, BadBatchAppliesNothing) {
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}}));
  const std::uint64_t minor = db.minor_version();
  std::string error;

  DeltaBatch unknown;
  unknown.relation = "nope";
  unknown.adds = {{1, 2}};
  EXPECT_FALSE(db.ApplyDelta(unknown, &error));
  EXPECT_FALSE(error.empty());

  DeltaBatch bad_arity;
  bad_arity.relation = "E";
  bad_arity.adds = {{1, 2, 3}};
  EXPECT_FALSE(db.ApplyDelta(bad_arity, &error));

  EXPECT_EQ(db.minor_version(), minor);
  EXPECT_EQ(db.Get("E").size(), 1u);
}

TEST(DatabaseDelta, PutResetsTheDeltaLogFloor) {
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}}));
  const std::uint64_t minor = db.minor_version();
  DeltaBatch batch;
  batch.relation = "E";
  batch.adds = {{2, 3}};
  ASSERT_TRUE(db.ApplyDelta(batch));

  db.Put(EdgeRelation("F", {{7, 8}}));
  // The log no longer reaches back past the Put: consumers synced before it
  // must fall back to full invalidation.
  std::vector<const DeltaLogEntry*> deltas;
  EXPECT_FALSE(db.DeltasSince(minor, &deltas));
  EXPECT_TRUE(db.DeltasSince(db.minor_version(), &deltas));
  EXPECT_TRUE(deltas.empty());
}

// ---------------------------------------------------------------------------
// Differential: delta application vs rebuild-from-scratch, every engine.

struct EngineConfig {
  std::string name;
  int threads = 0;
};

const std::vector<EngineConfig>& AllEngineConfigs() {
  static const std::vector<EngineConfig> configs = {
      {"PairwiseHJ"}, {"GenericJoin"}, {"LFTJ"},          {"CLFTJ"},
      {"CLFTJ-P", 1}, {"CLFTJ-P", 2},  {"CLFTJ-P", 8},
  };
  return configs;
}

std::vector<Tuple> EngineTuples(const EngineConfig& config, const Query& q,
                                const Database& db) {
  EngineOptions options;
  options.threads = config.threads;
  const std::unique_ptr<JoinEngine> engine = MakeEngine(config.name, options);
  return testing::CollectTuples(*engine, q, db);
}

// Applies `rounds` random add/delete batches to a live database while
// mirroring them in a plain set-of-edges model; after every round, every
// engine over the live (overlaid) relation must produce the bit-identical
// tuple set an engine over a rebuilt-from-scratch relation produces.
void RunDifferential(std::uint64_t seed, std::size_t compaction_threshold) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Value> value(0, 24);

  std::set<Edge> model;
  for (int i = 0; i < 120; ++i) model.insert({value(rng), value(rng)});
  Database live;
  live.Put(EdgeRelation("E", {model.begin(), model.end()}));
  live.FindMutable("E")->set_compaction_threshold(compaction_threshold);

  const std::vector<Query> queries = {
      testing::Q("E(x,y), E(y,z)"),
      testing::Q("E(x,y), E(y,z), E(z,x)"),
  };

  for (int round = 0; round < 5; ++round) {
    DeltaBatch batch;
    batch.relation = "E";
    for (int i = 0; i < 8; ++i) {
      batch.adds.push_back({value(rng), value(rng)});
    }
    std::uniform_int_distribution<std::size_t> pick(0, model.size() - 1);
    for (int i = 0; i < 4 && !model.empty(); ++i) {
      auto it = model.begin();
      std::advance(it, pick(rng) % model.size());
      batch.deletes.push_back({it->first, it->second});
    }
    std::string error;
    ASSERT_TRUE(live.ApplyDelta(batch, &error)) << error;
    for (const Tuple& t : batch.deletes) model.erase({t[0], t[1]});
    for (const Tuple& t : batch.adds) model.insert({t[0], t[1]});

    Database rebuilt;
    rebuilt.Put(EdgeRelation("E", {model.begin(), model.end()}));
    ASSERT_EQ(VisibleTuples(live.Get("E")),
              VisibleTuples(rebuilt.Get("E")))
        << "visible image diverged from the model in round " << round;

    for (const Query& q : queries) {
      const std::vector<Tuple> want = testing::ReferenceTuples(q, rebuilt);
      for (const EngineConfig& config : AllEngineConfigs()) {
        EXPECT_EQ(EngineTuples(config, q, live), want)
            << config.name << " threads=" << config.threads << " round "
            << round << " seed " << seed;
      }
    }
  }
}

TEST(DeltaDifferential, OverlaidTriesMatchRebuiltOnes) {
  // Threshold high enough that every round keeps the delta overlay engaged:
  // this is the merged three-cursor iterator under real joins.
  RunDifferential(/*seed=*/7, /*compaction_threshold=*/100000);
}

TEST(DeltaDifferential, CompactionPreservesResults) {
  // Tiny threshold: every round compacts, exercising the epoch-bump path.
  RunDifferential(/*seed=*/8, /*compaction_threshold=*/4);
}

TEST(DeltaDifferential, DeleteEverythingThenReadd) {
  Database live;
  const std::vector<Edge> edges = {{1, 2}, {2, 3}, {3, 1}, {3, 4}};
  live.Put(EdgeRelation("E", edges));
  live.FindMutable("E")->set_compaction_threshold(100000);

  DeltaBatch wipe;
  wipe.relation = "E";
  for (const auto& [a, b] : edges) wipe.deletes.push_back({a, b});
  ASSERT_TRUE(live.ApplyDelta(wipe));
  const Query q = testing::Q("E(x,y), E(y,z), E(z,x)");
  for (const EngineConfig& config : AllEngineConfigs()) {
    EXPECT_TRUE(EngineTuples(config, q, live).empty()) << config.name;
  }

  DeltaBatch readd;
  readd.relation = "E";
  for (const auto& [a, b] : edges) readd.adds.push_back({a, b});
  ASSERT_TRUE(live.ApplyDelta(readd));
  Database rebuilt;
  rebuilt.Put(EdgeRelation("E", edges));
  const std::vector<Tuple> want = testing::ReferenceTuples(q, rebuilt);
  ASSERT_FALSE(want.empty());
  for (const EngineConfig& config : AllEngineConfigs()) {
    EXPECT_EQ(EngineTuples(config, q, live), want) << config.name;
  }
}

// ---------------------------------------------------------------------------
// Reuse survival: plans revalidate, substrates patch, caches evict narrowly.

QueryRequest Req(const std::string& text, const std::string& mode = "count",
                 const std::string& engine = "") {
  QueryRequest request;
  request.query_text = text;
  request.mode = mode;
  request.engine = engine;
  return request;
}

QueryRequest DeltaReq(const std::string& relation, std::vector<Tuple> adds,
                      std::vector<Tuple> deletes = {}) {
  QueryRequest request;
  request.kind = "delta";
  request.delta.relation = relation;
  request.delta.adds = std::move(adds);
  request.delta.deletes = std::move(deletes);
  return request;
}

constexpr const char* kTriangle = "E(x,y), E(y,z), E(z,x)";

TEST(DeltaReuse, PlanAndSubstrateSurviveASmallDelta) {
  Database db = testing::SmallSkewedDb(13);
  db.FindMutable("E")->set_compaction_threshold(100000);
  ServiceOptions options;
  options.workers = 1;
  QueryService service(&db, options);

  const QueryResponse cold = service.Execute(Req(kTriangle));
  ASSERT_EQ(cold.status, RunStatus::kOk);
  EXPECT_EQ(cold.stats.plan_cache_misses, 1u);

  const QueryResponse applied = service.Execute(DeltaReq("E", {{1, 2}}));
  ASSERT_EQ(applied.status, RunStatus::kOk);

  const std::uint64_t searches_before = PlannerSearchCount();
  const QueryResponse warm = service.Execute(Req(kTriangle));
  ASSERT_EQ(warm.status, RunStatus::kOk);
  EXPECT_EQ(warm.count, testing::ReferenceCount(testing::Q(kTriangle), db));
  // The delta must NOT tear down the reuse layer: the plan revalidates as a
  // hit (shape key + stats-drift recheck), the main-tier tries are patched
  // with the delta overlay instead of rebuilt.
  EXPECT_EQ(PlannerSearchCount(), searches_before);
  EXPECT_EQ(warm.stats.plan_cache_hits, 1u);
  EXPECT_EQ(warm.stats.plan_cache_misses, 0u);
  EXPECT_EQ(warm.stats.substrate_builds, 0u);
  EXPECT_EQ(warm.stats.substrate_reuses,
            static_cast<std::uint64_t>(testing::Q(kTriangle).num_atoms()));
}

TEST(DeltaReuse, TargetedInvalidationSparesUntouchedEntries) {
  // Two disjoint fan-outs: y=2 (reached from x=1) and y=6 (reached from
  // x=5) both complete non-empty subtrees, so each caches an entry under
  // its own adhesion key. A delta touching value 2 must spare key 6.
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}, {2, 3}, {2, 4}, {5, 6}, {6, 7}}));
  db.Put(EdgeRelation("F", {{1, 1}}));
  db.FindMutable("E")->set_compaction_threshold(100000);
  db.FindMutable("F")->set_compaction_threshold(100000);

  CrossQueryReuse reuse(ReuseOptions{}, PlannerOptions{}, CacheOptions{},
                        /*stripes_hint=*/1);
  const Query q = testing::Q("E(x,y), E(y,z)");
  ExecStats stats;
  CrossQueryReuse::Prepared warm = reuse.Prepare(q, db, &stats);
  {
    EngineOptions options;
    options.prepared_plan = warm.plan;
    options.prepared_substrate = warm.substrate;
    options.shared_count_cache = &warm.caches->count;
    MakeEngine("CLFTJ", options)->Count(q, db, RunLimits{});
  }
  const auto caches = warm.caches;
  const std::size_t warm_entries = caches->count.size();
  ASSERT_GT(warm_entries, 0u) << "the path query must cache subtree counts";

  // Each Prepare below runs the invalidation pass for the new deltas but no
  // engine, so size() movements are eviction and nothing else.
  // A delta to a relation the query never mentions cannot touch any entry.
  ASSERT_TRUE(db.ApplyDelta({"F", {{2, 2}}, {}}));
  ASSERT_EQ(reuse.Prepare(q, db, &stats).caches.get(), caches.get())
      << "same shape caches instance";
  EXPECT_EQ(caches->count.size(), warm_entries);

  // A delta to E whose values miss every cached adhesion key evicts nothing
  // (per-dimension Bloom membership), yet the data really changed.
  ASSERT_TRUE(db.ApplyDelta({"E", {{40, 41}}, {}}));
  ASSERT_EQ(reuse.Prepare(q, db, &stats).caches.get(), caches.get());
  EXPECT_EQ(caches->count.size(), warm_entries);

  // A delta whose values include a cached adhesion key evicts the matching
  // entries — and only those; untouched keys survive.
  ASSERT_TRUE(db.ApplyDelta({"E", {}, {{2, 3}}}));
  ASSERT_EQ(reuse.Prepare(q, db, &stats).caches.get(), caches.get());
  EXPECT_LT(caches->count.size(), warm_entries);
  EXPECT_GT(caches->count.size(), 0u)
      << "eviction must be targeted, not a full flush";

  // Correctness across all of it: counts match a rebuilt database.
  std::vector<Edge> final_edges;
  for (const Tuple& t : VisibleTuples(db.Get("E"))) {
    final_edges.push_back({t[0], t[1]});
  }
  Database rebuilt;
  rebuilt.Put(EdgeRelation("E", final_edges));
  EXPECT_EQ(MakeEngine("CLFTJ", EngineOptions{})->Count(q, db, RunLimits{})
                .count,
            testing::ReferenceCount(q, rebuilt));
}

TEST(DeltaReuse, TouchingDeltaEvictsTheMatchingEntries) {
  // Tiny, fully-understood instance: E = {(1,2),(2,3)} under the path
  // query caches subtree counts keyed on the adhesion value y. Deleting
  // (2,3) changes the subtree under y=2 (and y=3's emptiness), so the
  // matching keys are evicted; adding a far-away edge first evicts nothing.
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}, {2, 3}}));
  db.FindMutable("E")->set_compaction_threshold(100000);
  CrossQueryReuse reuse(ReuseOptions{}, PlannerOptions{}, CacheOptions{},
                        /*stripes_hint=*/1);
  const Query q = testing::Q("E(x,y), E(y,z)");
  ExecStats stats;
  CrossQueryReuse::Prepared prepared = reuse.Prepare(q, db, &stats);
  {
    EngineOptions options;
    options.prepared_plan = prepared.plan;
    options.prepared_substrate = prepared.substrate;
    options.shared_count_cache = &prepared.caches->count;
    MakeEngine("CLFTJ", options)->Count(q, db, RunLimits{});
  }
  const std::size_t warm_entries = prepared.caches->count.size();
  ASSERT_GT(warm_entries, 0u);

  ASSERT_TRUE(db.ApplyDelta({"E", {{50, 60}}, {}}));
  CrossQueryReuse::Prepared untouched = reuse.Prepare(q, db, &stats);
  ASSERT_EQ(untouched.caches.get(), prepared.caches.get());
  EXPECT_EQ(prepared.caches->count.size(), warm_entries)
      << "values 50/60 match no cached key: nothing to evict";

  ASSERT_TRUE(db.ApplyDelta({"E", {}, {{2, 3}}}));
  CrossQueryReuse::Prepared touched = reuse.Prepare(q, db, &stats);
  ASSERT_EQ(touched.caches.get(), prepared.caches.get());
  EXPECT_LT(prepared.caches->count.size(), warm_entries)
      << "the entry keyed by the changed adhesion value must go";
}

TEST(DeltaReuse, CompactionFallsBackToFullEviction) {
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}, {2, 3}}));
  db.FindMutable("E")->set_compaction_threshold(1);  // every delta compacts
  CrossQueryReuse reuse(ReuseOptions{}, PlannerOptions{}, CacheOptions{},
                        /*stripes_hint=*/1);
  const Query q = testing::Q("E(x,y), E(y,z)");
  ExecStats stats;
  CrossQueryReuse::Prepared prepared = reuse.Prepare(q, db, &stats);
  ASSERT_TRUE(db.ApplyDelta({"E", {{3, 4}, {4, 5}}, {}}));
  CrossQueryReuse::Prepared after = reuse.Prepare(q, db, &stats);
  // The main tier was replaced wholesale: the per-shape caches are rebuilt
  // rather than surgically evicted (new instance), and results stay right.
  EXPECT_NE(after.caches.get(), prepared.caches.get());
  Database rebuilt;
  rebuilt.Put(EdgeRelation("E", {{1, 2}, {2, 3}, {3, 4}, {4, 5}}));
  EXPECT_EQ(MakeEngine("CLFTJ", EngineOptions{})->Count(q, db, RunLimits{})
                .count,
            testing::ReferenceCount(q, rebuilt));
}

// ---------------------------------------------------------------------------
// Service + protocol: writes and reads interleave.

TEST(ServiceDelta, ReadOnlyServiceRejectsDeltas) {
  const Database db = testing::SmallSkewedDb(13);
  QueryService service(db, ServiceOptions{});
  const QueryResponse response = service.Execute(DeltaReq("E", {{1, 2}}));
  EXPECT_EQ(response.status, RunStatus::kBadQuery);
}

TEST(ServiceDelta, DeltaChangesSubsequentResults) {
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}, {2, 3}}));
  db.FindMutable("E")->set_compaction_threshold(100000);
  ServiceOptions options;
  options.workers = 1;
  QueryService service(&db, options);

  const QueryResponse before = service.Execute(Req(kTriangle));
  ASSERT_EQ(before.status, RunStatus::kOk);
  EXPECT_EQ(before.count, 0u);

  const QueryResponse applied = service.Execute(DeltaReq("E", {{3, 1}}));
  ASSERT_EQ(applied.status, RunStatus::kOk);
  EXPECT_EQ(applied.count, 1u);

  const QueryResponse after = service.Execute(Req(kTriangle));
  ASSERT_EQ(after.status, RunStatus::kOk);
  EXPECT_EQ(after.count, testing::ReferenceCount(testing::Q(kTriangle), db));
  EXPECT_GT(after.count, 0u);
}

TEST(ServiceDelta, BadDeltasAreTypedRejections) {
  Database db;
  db.Put(EdgeRelation("E", {{1, 2}}));
  QueryService service(&db, ServiceOptions{});
  EXPECT_EQ(service.Execute(DeltaReq("nope", {{1, 2}})).status,
            RunStatus::kBadQuery);
  EXPECT_EQ(service.Execute(DeltaReq("E", {{1, 2, 3}})).status,
            RunStatus::kBadQuery);
  QueryRequest unknown_kind;
  unknown_kind.kind = "upsert";
  EXPECT_EQ(service.Execute(unknown_kind).status, RunStatus::kBadQuery);
}

TEST(ServiceDelta, ConcurrentWritersAndReadersStayConsistent) {
  Database db = testing::SmallSkewedDb(17);
  db.FindMutable("E")->set_compaction_threshold(100000);
  ServiceOptions options;
  options.workers = 4;
  options.queue_capacity = 256;
  QueryService service(&db, options);

  // Interleave counting readers with appending writers; every request must
  // complete kOk (readers see some consistent prefix of the writes), and
  // once all writes land the count equals the reference on the final data.
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 40; ++i) {
    if (i % 4 == 0) {
      const Value base = 1000 + 2 * i;
      futures.push_back(service.Submit(
          DeltaReq("E", {{base, base + 1}, {base + 1, base}})));
    } else {
      futures.push_back(service.Submit(Req(kTriangle)));
    }
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.get().status, RunStatus::kOk);
  }
  const QueryResponse final_count = service.Execute(Req(kTriangle));
  ASSERT_EQ(final_count.status, RunStatus::kOk);
  EXPECT_EQ(final_count.count,
            testing::ReferenceCount(testing::Q(kTriangle), db));
}

TEST(DeltaProtocol, RequestRoundTrips) {
  QueryRequest request = DeltaReq("E", {{1, 2}, {3, 4}}, {{5, 6}});
  const std::string line = FormatRequest(request);
  EXPECT_EQ(line, "DELTA relation=E add=1,2;3,4 del=5,6");

  QueryRequest parsed;
  std::string error;
  ASSERT_TRUE(ParseRequest(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.kind, "delta");
  EXPECT_EQ(parsed.delta.relation, "E");
  EXPECT_EQ(parsed.delta.adds, request.delta.adds);
  EXPECT_EQ(parsed.delta.deletes, request.delta.deletes);

  // Add-only and delete-only lines omit the empty token entirely.
  EXPECT_EQ(FormatRequest(DeltaReq("E", {{7, 8}})),
            "DELTA relation=E add=7,8");
  EXPECT_EQ(FormatRequest(DeltaReq("E", {}, {{7, 8}})),
            "DELTA relation=E del=7,8");
}

TEST(DeltaProtocol, MalformedLinesFailTyped) {
  QueryRequest parsed;
  std::string error;
  EXPECT_FALSE(ParseRequest("DELTA add=1,2", &parsed, &error));
  EXPECT_FALSE(ParseRequest("DELTA relation=E add=1,;2", &parsed, &error));
  EXPECT_FALSE(ParseRequest("DELTA relation=E add=1,2;;3,4", &parsed,
                            &error));
  EXPECT_FALSE(ParseRequest("DELTA relation=E add=a,b", &parsed, &error));
  EXPECT_FALSE(ParseRequest("DELTA relation=E frob=1", &parsed, &error));
  EXPECT_TRUE(ParseRequest("DELTA relation=E add=1,2", &parsed, &error))
      << error;
}

}  // namespace
}  // namespace clftj
