#include <gtest/gtest.h>

#include <algorithm>

#include "clftj/cached_trie_join.h"
#include "clftj/factorized.h"
#include "query/patterns.h"
#include "tests/test_util.h"

namespace clftj {
namespace {

using ::clftj::testing::Q;
using ::clftj::testing::ReferenceTuples;
using ::clftj::testing::SmallBalancedDb;
using ::clftj::testing::SmallSkewedDb;

std::vector<Tuple> EnumerateSorted(const FactorizedQueryResult& result) {
  std::vector<Tuple> out;
  result.Enumerate([&out](const Tuple& t) { out.push_back(t); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FactorizedResult, CountMatchesFlatEvaluation) {
  const Database db = SmallSkewedDb(201, 50, 3);
  for (const Query& q : {PathQuery(3), PathQuery(4), CycleQuery(4),
                         LollipopQuery(3, 2)}) {
    CachedTrieJoin engine;
    RunResult run;
    const auto result = engine.EvaluateFactorized(q, db, {}, &run);
    ASSERT_TRUE(result.has_value()) << q.ToString();
    EXPECT_EQ(result->Count(), engine.Count(q, db, {}).count) << q.ToString();
    EXPECT_EQ(run.count, result->Count());
  }
}

TEST(FactorizedResult, EnumerationMatchesReference) {
  const Database db = SmallSkewedDb(203, 40, 2);
  for (const Query& q : {PathQuery(3), PathQuery(4), CycleQuery(4)}) {
    CachedTrieJoin engine;
    RunResult run;
    const auto result = engine.EvaluateFactorized(q, db, {}, &run);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(EnumerateSorted(*result), ReferenceTuples(q, db))
        << q.ToString();
  }
}

TEST(FactorizedResult, RepresentationIsSmallerThanFlatOutput) {
  // On a skewed graph, a 5-path's factorized representation must be much
  // smaller than the flat result — that is the point of factorization.
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 200, 4, 205));
  const Query q = PathQuery(5);
  CachedTrieJoin engine;
  RunResult run;
  const auto result = engine.EvaluateFactorized(q, db, {}, &run);
  ASSERT_TRUE(result.has_value());
  ASSERT_GT(result->Count(), 0u);
  EXPECT_LT(result->NumEntries(), result->Count() / 4)
      << "factorization should compress the result";
}

TEST(FactorizedResult, EmptyResult) {
  Database db;
  db.Put(Relation("E", 2));
  CachedTrieJoin engine;
  RunResult run;
  const auto result = engine.EvaluateFactorized(PathQuery(3), db, {}, &run);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->Count(), 0u);
  std::uint64_t emitted = 0;
  result->Enumerate([&emitted](const Tuple&) { ++emitted; });
  EXPECT_EQ(emitted, 0u);
}

TEST(FactorizedResult, RowLimitReturnsNullopt) {
  const Database db = SmallSkewedDb(207, 120, 6);
  CachedTrieJoin engine;
  RunLimits limits;
  limits.max_intermediate_tuples = 3;
  RunResult run;
  const auto result =
      engine.EvaluateFactorized(PathQuery(5), db, limits, &run);
  EXPECT_FALSE(result.has_value());
  EXPECT_TRUE(run.out_of_memory);
}

TEST(FactorizedResult, WorksOnCliquesViaSingletonTd) {
  const Database db = SmallSkewedDb(209, 40, 3);
  const Query q = CliqueQuery(3);
  CachedTrieJoin engine;
  RunResult run;
  const auto result = engine.EvaluateFactorized(q, db, {}, &run);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(EnumerateSorted(*result), ReferenceTuples(q, db));
}

TEST(FactorizedResult, TupleBufferIsVarIdIndexed) {
  Database db;
  Relation e("E", 2);
  e.AddPair(7, 8);
  e.AddPair(8, 9);
  db.Put(std::move(e));
  const Query q = Q("E(x,y), E(y,z)");
  CachedTrieJoin engine;
  RunResult run;
  const auto result = engine.EvaluateFactorized(q, db, {}, &run);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->Count(), 1u);
  result->Enumerate([&q](const Tuple& t) {
    EXPECT_EQ(t[q.FindVariable("x")], 7);
    EXPECT_EQ(t[q.FindVariable("y")], 8);
    EXPECT_EQ(t[q.FindVariable("z")], 9);
  });
}

}  // namespace
}  // namespace clftj
