#include <gtest/gtest.h>

#include <tuple>

#include "clftj/cached_trie_join.h"
#include "clftj/factorized.h"
#include "lftj/trie_join.h"
#include "query/patterns.h"
#include "tests/test_util.h"

namespace clftj {
namespace {

using ::clftj::testing::CollectTuples;
using ::clftj::testing::Q;
using ::clftj::testing::ReferenceCount;
using ::clftj::testing::ReferenceTuples;
using ::clftj::testing::SmallBalancedDb;
using ::clftj::testing::SmallSkewedDb;

// The paper's running example (Example 3.1): query of Figure 3 over the
// complete bipartite R = {1,2} x {1,2}.
Query Fig3Query() {
  return Q("R(x1,x2), R(x2,x3), R(x2,x4), R(x3,x5), R(x4,x6)");
}

Database Fig3Database() {
  Database db;
  Relation r("R", 2);
  r.AddPair(1, 1);
  r.AddPair(1, 2);
  r.AddPair(2, 1);
  r.AddPair(2, 2);
  db.Put(std::move(r));
  return db;
}

TdPlan Fig3Plan(const Query& q, const Database& db) {
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1}, kNone);      // {x1,x2}
  const NodeId v = td.AddNode({1, 2, 3}, root);       // {x2,x3,x4}
  td.AddNode({2, 4}, v);                              // {x3,x5}
  td.AddNode({3, 5}, v);                              // {x4,x6}
  return MakePlanFromTd(q, db, std::move(td));
}

TEST(Clftj, PaperExampleCountIs64) {
  const Query q = Fig3Query();
  const Database db = Fig3Database();
  CachedTrieJoin::Options options;
  options.plan = Fig3Plan(q, db);
  CachedTrieJoin engine(options);
  const RunResult r = engine.Count(q, db, {});
  // 4 choices of (x1,x2) x 16 assignments to x3..x6 each.
  EXPECT_EQ(r.count, 64u);
  // x2 takes each value twice, so the second encounter of each adhesion
  // assignment must hit (the paper's "value 16 is reused" narrative).
  EXPECT_GE(r.stats.cache_hits, 2u);
}

TEST(Clftj, PaperExampleEvaluation) {
  const Query q = Fig3Query();
  const Database db = Fig3Database();
  CachedTrieJoin::Options options;
  options.plan = Fig3Plan(q, db);
  CachedTrieJoin engine(options);
  EXPECT_EQ(CollectTuples(engine, q, db), ReferenceTuples(q, db));
}

// --- Property sweep: CLFTJ must agree with LFTJ everywhere ---

struct SweepCase {
  std::string label;
  Query query;
};

class ClftjAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

Query ZooQuery(int index) {
  switch (index) {
    case 0: return PathQuery(3);
    case 1: return PathQuery(4);
    case 2: return PathQuery(5);
    case 3: return CycleQuery(3);   // clique: CLFTJ degenerates to LFTJ
    case 4: return CycleQuery(4);
    case 5: return CycleQuery(5);
    case 6: return LollipopQuery(3, 2);
    case 7: return RandomPatternQuery(5, 0.4, 42);
    case 8: return RandomPatternQuery(5, 0.6, 43);
    default: return Q("E(x,y), E(y,z), E(z,x), E(z,w)");
  }
}

TEST_P(ClftjAgreementTest, CountAndEvalMatchLftj) {
  const auto [query_index, db_index] = GetParam();
  const Query q = ZooQuery(query_index);
  const Database db =
      db_index == 0 ? SmallSkewedDb(7, 50, 3) : SmallBalancedDb(8, 50, 110);
  LeapfrogTrieJoin lftj;
  CachedTrieJoin clftj;
  const std::uint64_t expected = lftj.Count(q, db, {}).count;
  EXPECT_EQ(clftj.Count(q, db, {}).count, expected);
  EXPECT_EQ(CollectTuples(clftj, q, db), CollectTuples(lftj, q, db));
}

INSTANTIATE_TEST_SUITE_P(
    QueryZoo, ClftjAgreementTest,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Range(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "q" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 0 ? "_skewed" : "_balanced");
    });

// --- Cache policies preserve correctness ---

class CachePolicyTest : public ::testing::TestWithParam<int> {};

CacheOptions PolicyForIndex(int index) {
  CacheOptions options;
  switch (index) {
    case 0:  // cache everything, unbounded
      break;
    case 1:  // tiny LRU cache
      options.capacity = 4;
      options.eviction = CacheOptions::Eviction::kLru;
      break;
    case 2:  // tiny reject-on-full cache
      options.capacity = 4;
      options.eviction = CacheOptions::Eviction::kRejectNew;
      break;
    case 3:  // capacity one
      options.capacity = 1;
      break;
    case 4:  // support threshold admission
      options.admission = CacheOptions::Admission::kSupportThreshold;
      options.support_threshold = 3;
      break;
    case 5:  // threshold so high nothing is admitted
      options.admission = CacheOptions::Admission::kSupportThreshold;
      options.support_threshold = 1000000;
      break;
    case 6:  // caching disabled entirely
      options.enabled = false;
      break;
    default:  // only 1-dimensional caches
      options.max_dimension = 1;
      break;
  }
  return options;
}

TEST_P(CachePolicyTest, CountUnchangedUnderPolicy) {
  const Database db = SmallSkewedDb(21, 60, 3);
  CacheOptions cache = PolicyForIndex(GetParam());
  for (const Query& q : {PathQuery(5), CycleQuery(5), LollipopQuery(3, 2)}) {
    CachedTrieJoin::Options options;
    options.cache = cache;
    CachedTrieJoin engine(options);
    EXPECT_EQ(engine.Count(q, db, {}).count, ReferenceCount(q, db))
        << q.ToString() << " under " << cache.ToString();
  }
}

TEST_P(CachePolicyTest, EvalUnchangedUnderPolicy) {
  const Database db = SmallSkewedDb(23, 45, 2);
  CacheOptions cache = PolicyForIndex(GetParam());
  const Query q = CycleQuery(4);
  CachedTrieJoin::Options options;
  options.cache = cache;
  CachedTrieJoin engine(options);
  EXPECT_EQ(CollectTuples(engine, q, db), ReferenceTuples(q, db))
      << cache.ToString();
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicyTest, ::testing::Range(0, 8));

TEST(Clftj, BoundedCacheRespectsCapacity) {
  const Database db = SmallSkewedDb(25, 80, 4);
  CachedTrieJoin::Options options;
  options.cache.capacity = 8;
  CachedTrieJoin engine(options);
  const RunResult r = engine.Count(PathQuery(5), db, {});
  EXPECT_LE(r.stats.cache_entries_peak, 8u);
  EXPECT_EQ(r.count, ReferenceCount(PathQuery(5), db));
}

TEST(Clftj, DisabledCacheDoesNoCacheWork) {
  const Database db = SmallSkewedDb(27, 40, 2);
  CachedTrieJoin::Options options;
  options.cache.enabled = false;
  CachedTrieJoin engine(options);
  const RunResult r = engine.Count(PathQuery(4), db, {});
  EXPECT_EQ(r.stats.cache_hits + r.stats.cache_misses +
                r.stats.cache_inserts,
            0u);
}

TEST(Clftj, CachingReducesMemoryAccessesOnSkewedData) {
  Database db;
  db.Put(PreferentialAttachmentGraph("E", 250, 4, 29));
  LeapfrogTrieJoin lftj;
  CachedTrieJoin clftj;
  const Query q = PathQuery(5);
  const RunResult plain = lftj.Count(q, db, {});
  const RunResult cached = clftj.Count(q, db, {});
  ASSERT_EQ(plain.count, cached.count);
  EXPECT_LT(cached.stats.memory_accesses, plain.stats.memory_accesses / 2)
      << "caching should cut memory traffic on skewed 5-paths";
}

TEST(Clftj, ZeroCountsAreCachedAndReused) {
  // A graph where many adhesion assignments have no extension: a star.
  Database db;
  Relation e("E", 2);
  for (Value leaf = 1; leaf <= 30; ++leaf) {
    e.AddPair(0, leaf);
    e.AddPair(leaf, 0);
  }
  db.Put(std::move(e));
  CachedTrieJoin engine;
  const Query q = CycleQuery(4);  // star has no 4-cycles
  const RunResult r = engine.Count(q, db, {});
  EXPECT_EQ(r.count, ReferenceCount(q, db));
}

TEST(Clftj, ExplicitPlanWithTwoOneDimCaches) {
  // {3,2}-lollipop with the paper's CS2 structure: triangle root bag, tail
  // split into two bags with 1-dimensional adhesions.
  const Query q = LollipopQuery(3, 2);
  const Database db = SmallSkewedDb(31, 50, 3);
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1, 2}, kNone);
  const NodeId mid = td.AddNode({2, 3}, root);
  td.AddNode({3, 4}, mid);
  CachedTrieJoin::Options options;
  options.plan = MakePlanFromTd(q, db, std::move(td));
  CachedTrieJoin engine(options);
  EXPECT_EQ(engine.Count(q, db, {}).count, ReferenceCount(q, db));
}

TEST(Clftj, CacheableImpliesMaintainedAndEvalInsertIsReachable) {
  // Regression pin for the cacheable/maintain interplay: EvalRun's cache
  // insert lives inside its `entering && maintain[v]` block, so a node with
  // cacheable[v] && !maintain[v] would compute try_cache = true and then
  // silently never insert. CachedPlan::Build must make that state
  // unrepresentable (cacheable[v] implies maintain[v])...
  const Query q = Fig3Query();
  const Database db = Fig3Database();
  const TdPlan td_plan = Fig3Plan(q, db);
  const CachedPlan plan = CachedPlan::Build(q, db, td_plan, CacheOptions{});
  bool any_cacheable = false;
  for (std::size_t v = 0; v < plan.cacheable.size(); ++v) {
    if (plan.cacheable[v]) {
      any_cacheable = true;
      EXPECT_TRUE(plan.maintain[v])
          << "cacheable node " << v << " is not maintained";
    }
  }
  ASSERT_TRUE(any_cacheable) << "test query must have a cacheable node";
  // ...and an evaluation run over such a plan must actually populate and
  // reuse the cache (the insert is reachable, not just intended).
  CachedTrieJoin::Options options;
  options.plan = td_plan;
  CachedTrieJoin engine(options);
  const RunResult r =
      engine.Evaluate(q, db, [](const Tuple&) {}, RunLimits{});
  EXPECT_GT(r.stats.cache_inserts, 0u);
  EXPECT_GT(r.stats.cache_hits, 0u);
}

TEST(Clftj, WideAdhesionKeysWork) {
  // Raising max_dimension beyond PackedKey::kInlineDims must route keys
  // through the spill path and still agree with the reference engine. K4
  // with an explicit TD whose child bag shares three variables with the
  // root gives a 3-dimensional adhesion.
  const Query q = Q("E(a,b), E(a,c), E(b,c), E(a,d), E(b,d), E(c,d)");
  const Database db = SmallSkewedDb(41, 60, 3);
  TreeDecomposition td;
  const NodeId root = td.AddNode({0, 1, 2}, kNone);  // {a,b,c}
  td.AddNode({0, 1, 2, 3}, root);                    // {a,b,c,d}
  CachedTrieJoin::Options options;
  options.plan = MakePlanFromTd(q, db, std::move(td));
  options.cache.max_dimension = 3;
  CachedTrieJoin engine(options);
  const RunResult r = engine.Count(q, db, {});
  EXPECT_EQ(r.count, ReferenceCount(q, db));
  EXPECT_GT(r.stats.cache_inserts, 0u) << "spill-path keys were not cached";
  EXPECT_EQ(CollectTuples(engine, q, db), ReferenceTuples(q, db));
}

TEST(Clftj, TimeoutPropagates) {
  const Database db = SmallSkewedDb(33, 200, 8);
  CachedTrieJoin::Options options;
  options.cache.enabled = false;  // force the full traversal
  CachedTrieJoin engine(options);
  RunLimits limits;
  limits.timeout_seconds = 1e-9;
  const RunResult r = engine.Count(PathQuery(6), db, limits);
  EXPECT_TRUE(r.timed_out);
}

TEST(Clftj, EvalRowLimitTriggersOutOfMemory) {
  const Database db = SmallSkewedDb(35, 120, 6);
  CachedTrieJoin engine;
  RunLimits limits;
  limits.max_intermediate_tuples = 3;
  const RunResult r = engine.Evaluate(
      PathQuery(5), db, [](const Tuple&) {}, limits);
  EXPECT_TRUE(r.out_of_memory);
}

TEST(Clftj, EmptyRelation) {
  Database db;
  db.Put(Relation("E", 2));
  CachedTrieJoin engine;
  EXPECT_EQ(engine.Count(CycleQuery(4), db, {}).count, 0u);
}

TEST(Clftj, ConstantsAndSelfLoops) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 1);
  e.AddPair(1, 2);
  e.AddPair(2, 1);
  e.AddPair(2, 3);
  db.Put(std::move(e));
  CachedTrieJoin engine;
  for (const char* text : {"E(x,y), E(y,z), E(1,x)", "E(x,x), E(x,y)"}) {
    const Query q = Q(text);
    EXPECT_EQ(engine.Count(q, db, {}).count, ReferenceCount(q, db)) << text;
  }
}

TEST(Clftj, DisconnectedQueryUsesEmptyAdhesionCache) {
  Database db;
  Relation e("E", 2);
  e.AddPair(1, 2);
  e.AddPair(2, 3);
  e.AddPair(5, 6);
  db.Put(std::move(e));
  CachedTrieJoin engine;
  const Query q = Q("E(a,b), E(c,d)");
  EXPECT_EQ(engine.Count(q, db, {}).count, 9u);
}

// --- Factorized representation units ---

TEST(Factorized, CountOfFlatSet) {
  FactorizedSet set;
  set.node = 0;
  set.entries.push_back({{1}, {}});
  set.entries.push_back({{2}, {}});
  EXPECT_EQ(FactorizedCount(set), 2u);
}

TEST(Factorized, CountMultipliesChildren) {
  auto leaf = std::make_shared<FactorizedSet>();
  leaf->node = 1;
  leaf->entries.push_back({{10}, {}});
  leaf->entries.push_back({{11}, {}});
  FactorizedSet parent;
  parent.node = 0;
  parent.entries.push_back({{1}, {leaf}});
  parent.entries.push_back({{2}, {leaf}});
  EXPECT_EQ(FactorizedCount(parent), 4u);
}

TEST(Factorized, NullChildMeansZero) {
  FactorizedSet parent;
  parent.node = 0;
  parent.entries.push_back({{1}, {nullptr}});
  EXPECT_EQ(FactorizedCount(parent), 0u);
}

TEST(Factorized, ExpansionMatchesEvalOutput) {
  // End to end: evaluation through a cache-heavy run must produce exactly
  // the reference tuples (expansion correctness is implied), including on a
  // database engineered for many cache hits.
  Database db;
  Relation e("E", 2);
  for (Value hub = 0; hub < 3; ++hub) {
    for (Value leaf = 10; leaf < 16; ++leaf) {
      e.AddPair(hub, leaf);
      e.AddPair(leaf, hub);
    }
  }
  db.Put(std::move(e));
  const Query q = PathQuery(4);
  CachedTrieJoin engine;
  const auto got = CollectTuples(engine, q, db);
  EXPECT_EQ(got, ReferenceTuples(q, db));
  ASSERT_FALSE(got.empty());
}

}  // namespace
}  // namespace clftj
