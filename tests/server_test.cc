// Wire-protocol round-trips (pure string functions, no socket) and
// end-to-end serving over a real AF_UNIX socket: server + client with
// retries, typed errors surviving on a live connection, clean shutdown.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/service.h"
#include "test_util.h"
#include "util/fault.h"

namespace clftj {
namespace {

constexpr const char* kTriangle = "E(x,y), E(y,z), E(z,x)";

// Short unique socket path per test: AF_UNIX caps paths around 100 bytes,
// so build-tree paths are unsafe — use /tmp keyed by pid.
std::string SocketPath(const char* tag) {
  return "/tmp/clftj_" + std::string(tag) + "_" + std::to_string(getpid()) +
         ".sock";
}

// Waits until the worker has popped everything queued so far. Needed when
// stacking fillers into a capacity-1 queue: submitting the second filler
// before the worker picked up the first would shed the *filler* instead of
// the request under test.
void AwaitEmptyQueue(const QueryService& service) {
  while (service.QueueDepth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(Protocol, RequestRoundTrip) {
  QueryRequest request;
  request.query_text = "E(x,y), E(y,z), R(z, x)";  // spaces survive in q=
  request.mode = "eval";
  request.engine = "CLFTJ-P";
  request.timeout_ms = 1500;
  request.max_tuples = 77;
  const std::string line = FormatRequest(request);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  QueryRequest parsed;
  std::string error;
  ASSERT_TRUE(ParseRequest(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.query_text, request.query_text);
  EXPECT_EQ(parsed.mode, request.mode);
  EXPECT_EQ(parsed.engine, request.engine);
  EXPECT_EQ(parsed.timeout_ms, request.timeout_ms);
  EXPECT_EQ(parsed.max_tuples, request.max_tuples);
}

TEST(Protocol, RequestDefaultsOmitEngine) {
  QueryRequest request;
  request.query_text = "E(x,y)";
  QueryRequest parsed;
  std::string error;
  ASSERT_TRUE(ParseRequest(FormatRequest(request), &parsed, &error)) << error;
  EXPECT_EQ(parsed.engine, "");
  EXPECT_EQ(parsed.mode, "count");
  EXPECT_EQ(parsed.timeout_ms, 0u);
}

TEST(Protocol, MalformedRequestsAreRejectedNotCrashes) {
  const char* bad[] = {
      "",                       // empty
      "PING",                   // wrong verb
      "RUN",                    // no q=
      "RUN q=",                 // empty query
      "RUN mode=count",         // still no q=
      "RUN bogus_key=1 q=E(x,y)",
      "RUN timeout_ms=abc q=E(x,y)",
      "RUN timeout_ms= q=E(x,y)",
      "R\x01N mode=count q=E(x,y)",  // corrupted verb bytes
  };
  for (const char* line : bad) {
    QueryRequest parsed;
    std::string error;
    EXPECT_FALSE(ParseRequest(line, &parsed, &error)) << "'" << line << "'";
    EXPECT_FALSE(error.empty()) << "'" << line << "'";
  }
}

TEST(Protocol, SuccessResponseRoundTrip) {
  QueryResponse response;
  response.status = RunStatus::kOk;
  response.count = 3;
  response.seconds = 0.125;
  response.tuples = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const std::vector<std::string> lines = FormatResponse(response);
  ASSERT_EQ(lines.size(), 4u);  // 3 TUPLE + 1 OK
  EXPECT_FALSE(IsTerminalResponseLine(lines[0]));
  EXPECT_TRUE(IsTerminalResponseLine(lines.back()));
  QueryResponse parsed;
  std::string error;
  ASSERT_TRUE(ParseResponse(lines, &parsed, &error)) << error;
  EXPECT_EQ(parsed.status, RunStatus::kOk);
  EXPECT_EQ(parsed.count, 3u);
  EXPECT_DOUBLE_EQ(parsed.seconds, 0.125);
  EXPECT_EQ(parsed.tuples, response.tuples);
}

TEST(Protocol, ErrorResponseRoundTrip) {
  QueryResponse response;
  response.status = RunStatus::kShed;
  response.message = "request queue is full";
  response.retry_after_ms = 50;
  const std::vector<std::string> lines = FormatResponse(response);
  ASSERT_EQ(lines.size(), 1u);
  QueryResponse parsed;
  std::string error;
  ASSERT_TRUE(ParseResponse(lines, &parsed, &error)) << error;
  EXPECT_EQ(parsed.status, RunStatus::kShed);
  EXPECT_EQ(parsed.message, "request queue is full");
  EXPECT_EQ(parsed.retry_after_ms, 50u);
}

TEST(Protocol, TruncatedOrMangledResponsesFailParsing) {
  QueryResponse parsed;
  std::string error;
  // No terminal line.
  EXPECT_FALSE(ParseResponse({"TUPLE 1 2"}, &parsed, &error));
  // ERR without an explicit status can't masquerade as anything.
  EXPECT_FALSE(ParseResponse({"ERR msg=mystery"}, &parsed, &error));
  // Garbage terminal.
  EXPECT_FALSE(ParseResponse({"DONE count=3"}, &parsed, &error));
  // Unknown status name.
  EXPECT_FALSE(ParseResponse({"ERR status=EXPLODED"}, &parsed, &error));
  // Non-numeric tuple payload.
  EXPECT_FALSE(
      ParseResponse({"TUPLE 1 x", "OK count=1 seconds=0"}, &parsed, &error));
  // Empty response.
  EXPECT_FALSE(ParseResponse({}, &parsed, &error));
}

class ServerEndToEnd : public ::testing::Test {
 protected:
  void StartServer(const char* tag, ServiceOptions options = {}) {
    db_ = testing::SmallSkewedDb(21);
    service_ = std::make_unique<QueryService>(db_, options);
    server_ = std::make_unique<QueryServer>(service_.get());
    socket_path_ = SocketPath(tag);
    std::string error;
    ASSERT_TRUE(server_->Start(socket_path_, &error)) << error;
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    if (service_ != nullptr) service_->Shutdown(/*drain=*/true);
    if (!socket_path_.empty()) std::remove(socket_path_.c_str());
  }

  Database db_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<QueryServer> server_;
  std::string socket_path_;
};

TEST_F(ServerEndToEnd, CountOverTheSocketMatchesReference) {
  StartServer("count");
  QueryClient client(socket_path_, ClientOptions{});
  QueryRequest request;
  request.query_text = kTriangle;
  const ClientResult result = client.Run(request);
  ASSERT_TRUE(result.transport_ok) << result.transport_error;
  EXPECT_EQ(result.response.status, RunStatus::kOk);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.response.count,
            testing::ReferenceCount(testing::Q(kTriangle), db_));
}

TEST_F(ServerEndToEnd, EvalOverTheSocketMatchesReference) {
  StartServer("eval");
  QueryClient client(socket_path_, ClientOptions{});
  QueryRequest request;
  request.query_text = kTriangle;
  request.mode = "eval";
  const ClientResult result = client.Run(request);
  ASSERT_TRUE(result.transport_ok) << result.transport_error;
  ASSERT_EQ(result.response.status, RunStatus::kOk);
  std::vector<Tuple> got = result.response.tuples;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, testing::ReferenceTuples(testing::Q(kTriangle), db_));
}

TEST_F(ServerEndToEnd, BadQueryIsTypedAndTheConnectionSurvives) {
  StartServer("badq");
  QueryClient client(socket_path_, ClientOptions{});
  QueryRequest bad;
  bad.query_text = "NoSuchRelation(x,y)";
  const ClientResult first = client.Run(bad);
  ASSERT_TRUE(first.transport_ok) << first.transport_error;
  EXPECT_EQ(first.response.status, RunStatus::kBadQuery);
  EXPECT_EQ(first.attempts, 1) << "BAD-QUERY is terminal, never retried";
  // The server keeps serving after an error response.
  QueryRequest good;
  good.query_text = kTriangle;
  const ClientResult second = client.Run(good);
  ASSERT_TRUE(second.transport_ok) << second.transport_error;
  EXPECT_EQ(second.response.status, RunStatus::kOk);
}

TEST_F(ServerEndToEnd, ShedIsRetriedUntilItSucceeds) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.retry_after_ms = 10;
  StartServer("shed", options);

  // Seed queue pressure directly through the service so the socket client
  // hits a full queue on its first attempt, then succeeds on a retry.
  fault::Config faults;
  faults.seed = 5;
  faults.period[static_cast<int>(fault::Site::kWorkerDelay)] = 1;
  faults.delay_ms = 120;
  std::vector<std::future<QueryResponse>> held;
  int attempts = 0;
  {
    fault::ScopedFaults scoped(faults);
    QueryRequest filler;
    filler.query_text = kTriangle;
    held.push_back(service_->Submit(filler));  // worker busy
    AwaitEmptyQueue(*service_);                // worker popped it, sleeping
    held.push_back(service_->Submit(filler));  // queue slot taken
    ClientOptions client_options;
    client_options.max_attempts = 20;
    client_options.initial_backoff_ms = 30;
    QueryClient client(socket_path_, client_options);
    QueryRequest request;
    request.query_text = kTriangle;
    const ClientResult result = client.Run(request);
    ASSERT_TRUE(result.transport_ok) << result.transport_error;
    EXPECT_EQ(result.response.status, RunStatus::kOk);
    attempts = result.attempts;
    for (auto& f : held) f.get();
  }
  EXPECT_GT(attempts, 1) << "expected at least one shed-then-retry cycle";
}

TEST_F(ServerEndToEnd, ClientGivesUpAfterMaxAttemptsOnPersistentShed) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.retry_after_ms = 5;
  StartServer("giveup", options);
  fault::Config faults;
  faults.seed = 6;
  faults.period[static_cast<int>(fault::Site::kWorkerDelay)] = 1;
  faults.delay_ms = 400;  // longer than the client is willing to wait
  std::vector<std::future<QueryResponse>> held;
  {
    fault::ScopedFaults scoped(faults);
    QueryRequest filler;
    filler.query_text = kTriangle;
    held.push_back(service_->Submit(filler));
    AwaitEmptyQueue(*service_);
    held.push_back(service_->Submit(filler));
    ClientOptions client_options;
    client_options.max_attempts = 3;
    client_options.initial_backoff_ms = 5;
    client_options.max_backoff_ms = 10;
    QueryClient client(socket_path_, client_options);
    QueryRequest request;
    request.query_text = kTriangle;
    const ClientResult result = client.Run(request);
    ASSERT_TRUE(result.transport_ok) << result.transport_error;
    EXPECT_EQ(result.response.status, RunStatus::kShed);
    EXPECT_EQ(result.attempts, 3);
    for (auto& f : held) f.get();
  }
}

TEST_F(ServerEndToEnd, TransportFailureWhenNoServerListens) {
  ClientOptions options;
  options.max_attempts = 2;
  options.initial_backoff_ms = 1;
  QueryClient client("/tmp/clftj_no_such_socket.sock", options);
  QueryRequest request;
  request.query_text = kTriangle;
  const ClientResult result = client.Run(request);
  EXPECT_FALSE(result.transport_ok);
  EXPECT_FALSE(result.transport_error.empty());
  EXPECT_EQ(result.attempts, 2);
}

TEST_F(ServerEndToEnd, StopIsCleanAndIdempotent) {
  StartServer("stop");
  QueryClient client(socket_path_, ClientOptions{});
  QueryRequest request;
  request.query_text = kTriangle;
  ASSERT_TRUE(client.Run(request).transport_ok);
  server_->Stop();
  server_->Stop();  // idempotent
  // After Stop the socket is gone: the client reports transport failure,
  // not a hang.
  ClientOptions fast;
  fast.max_attempts = 1;
  QueryClient late_client(socket_path_, fast);
  const ClientResult late = late_client.Run(request);
  EXPECT_FALSE(late.transport_ok);
}

}  // namespace
}  // namespace clftj
