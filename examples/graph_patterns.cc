// Graph-pattern mining across engines — the workload that motivates the
// paper's introduction: counting paths, cycles and small patterns over
// social-network-shaped graphs, where vanilla worst-case-optimal joins
// recompute the same subtrees over and over.
//
//   $ ./graph_patterns [dataset-label]      (default: wiki-Vote)
//
// Prints a table of count-query runtimes for every engine in the registry,
// with a per-run timeout so the slow ones report TIMEOUT instead of
// hanging — the same protocol as the paper's figures.

#include <cstdio>
#include <string>
#include <vector>

#include "data/snap_profiles.h"
#include "engine/engine.h"
#include "query/patterns.h"

int main(int argc, char** argv) {
  const std::string label = argc > 1 ? argv[1] : "wiki-Vote";
  const clftj::Database db =
      clftj::MakeSnapDatabase(clftj::SnapProfileByLabel(label));
  std::printf("dataset %s: %zu directed edges\n\n", label.c_str(),
              db.Get("E").size());

  struct Workload {
    std::string name;
    clftj::Query query;
  };
  const std::vector<Workload> workloads = {
      {"4-path", clftj::PathQuery(4)},
      {"5-path", clftj::PathQuery(5)},
      {"4-cycle", clftj::CycleQuery(4)},
      {"5-cycle", clftj::CycleQuery(5)},
      {"3-clique", clftj::CliqueQuery(3)},
      {"5-rand(0.5)", clftj::RandomPatternQuery(5, 0.5, 11)},
  };
  const std::vector<std::string> engines = {"LFTJ", "CLFTJ", "YTD",
                                            "PairwiseHJ", "GenericJoin"};

  clftj::RunLimits limits;
  limits.timeout_seconds = 5.0;
  limits.max_intermediate_tuples = 20'000'000;

  std::printf("%-14s", "query");
  for (const auto& e : engines) std::printf(" %14s", e.c_str());
  std::printf("\n");
  for (const Workload& w : workloads) {
    std::printf("%-14s", w.name.c_str());
    std::uint64_t expected = 0;
    bool have_expected = false;
    for (const std::string& name : engines) {
      const auto engine = clftj::MakeEngine(name);
      const clftj::RunResult r = engine->Count(w.query, db, limits);
      if (r.timed_out) {
        std::printf(" %14s", "TIMEOUT");
      } else if (r.out_of_memory) {
        std::printf(" %14s", "OOM");
      } else {
        std::printf(" %12.3fms", r.seconds * 1e3);
        if (!have_expected) {
          expected = r.count;
          have_expected = true;
        } else if (r.count != expected) {
          std::printf("(!)");
        }
      }
    }
    std::printf("\n");
  }
  std::printf("\nAll successful engines agreed on every count "
              "(a '(!)' marker would flag a mismatch).\n");
  return 0;
}
