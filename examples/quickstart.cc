// Quickstart: build a small graph, parse a query, and run it with plain
// LFTJ and with cached CLFTJ — the five-minute tour of the public API.
//
//   $ ./quickstart
//
// Expected output: identical counts from both engines, with CLFTJ showing
// cache hits and (on this skewed input) fewer memory accesses.

#include <iostream>

#include "clftj/cached_trie_join.h"
#include "data/generators.h"
#include "engine/engine.h"
#include "lftj/trie_join.h"
#include "query/parser.h"

int main() {
  // 1. Data: a power-law random graph stored as a symmetric binary
  //    relation "E". Any Relation works; edge lists can also be loaded
  //    from disk with LoadEdgeList (see data/loader.h).
  clftj::Database db;
  db.Put(clftj::PreferentialAttachmentGraph("E", /*num_nodes=*/400,
                                            /*edges_per_node=*/4,
                                            /*seed=*/7));
  std::cout << "graph: " << db.Get("E").size() << " directed edges\n";

  // 2. Query: a full conjunctive query in textual form. Here: directed
  //    4-paths a->b->c->d (over a symmetric E, i.e. undirected walks).
  const auto query = clftj::ParseQuery("E(a,b), E(b,c), E(c,d)");
  if (!query.has_value()) {
    std::cerr << "parse error\n";
    return 1;
  }
  std::cout << "query: " << query->ToString() << "\n\n";

  // 3. Vanilla Leapfrog Trie Join (worst-case optimal, no caching).
  clftj::LeapfrogTrieJoin lftj;
  const clftj::RunResult plain = lftj.Count(*query, db, {});
  std::cout << "LFTJ  count=" << plain.count << "  time=" << plain.seconds
            << "s  " << plain.stats.ToString() << "\n";

  // 4. CLFTJ: the same join with flexible caching. With default options
  //    the planner enumerates tree decompositions of the query, picks one
  //    with small adhesions, and caches intermediate counts keyed on
  //    adhesion assignments.
  clftj::CachedTrieJoin clftj_engine;
  const clftj::RunResult cached = clftj_engine.Count(*query, db, {});
  std::cout << "CLFTJ count=" << cached.count << "  time=" << cached.seconds
            << "s  " << cached.stats.ToString() << "\n\n";

  if (plain.count != cached.count) {
    std::cerr << "BUG: engines disagree!\n";
    return 1;
  }

  // 5. Evaluation mode streams full result tuples through a callback.
  std::uint64_t printed = 0;
  clftj_engine.Evaluate(
      *query, db,
      [&](const clftj::Tuple& t) {
        if (printed < 5) {
          std::cout << "tuple:";
          for (int v = 0; v < query->num_vars(); ++v) {
            std::cout << " " << query->var_name(v) << "=" << t[v];
          }
          std::cout << "\n";
        }
        ++printed;
      },
      {});
  std::cout << "(" << printed << " tuples total; first 5 shown)\n";
  return 0;
}
